// The SIMD backend contract (field/simd.h): every vector kernel must be
// indistinguishable from the scalar path except in wall clock -- same
// canonical elements as both the scalar fast kernels and the frozen seed
// arithmetic (field/reference.h), same logical op counts, at every dispatch
// level, for every tail length n mod lanes, for misaligned operands, and
// composed end-to-end (NTT products, charpoly, the Theorem-4 solver) at any
// worker count with fault injection armed.  The tests sweep set_simd_level /
// set_simd_ifma; on hardware without a level the setter clamps downward and
// the sweep degenerates to re-checking the levels that do exist.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/solver.h"
#include "field/kernels.h"
#include "field/reference.h"
#include "field/simd.h"
#include "field/zp.h"
#include "matrix/gauss.h"
#include "matrix/matmul.h"
#include "matrix/sparse.h"
#include "poly/interp.h"
#include "poly/ntt.h"
#include "pram/parallel_for.h"
#include "seq/newton_identities.h"
#include "util/fault.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp {
namespace {

using field::GFp;
using field::GFpReference;
using field::Zp;
using field::kNttPrime;
using field::kP61;
namespace simd = field::simd;
using simd::SimdLevel;

// All levels the sweep requests; set_simd_level clamps each to the nearest
// available one, so on any hardware the sweep covers scalar plus whatever
// vector levels exist (requesting kNeon on x86 lands on scalar, etc.).
constexpr SimdLevel kSweep[] = {SimdLevel::kScalar, SimdLevel::kNeon,
                                SimdLevel::kAvx2, SimdLevel::kAvx512};

/// Restores the ambient dispatch level (and IFMA flag) on scope exit so a
/// failing assertion cannot leak a forced level into later tests.
struct LevelGuard {
  SimdLevel saved = simd::simd_level();
  bool saved_ifma = simd::simd_ifma();
  ~LevelGuard() {
    simd::set_simd_level(saved);
    simd::set_simd_ifma(saved_ifma);
  }
};

bool same_counts(const util::OpCounts& a, const util::OpCounts& b) {
  return a.add == b.add && a.mul == b.mul && a.div == b.div &&
         a.zero_test == b.zero_test;
}

std::vector<std::uint64_t> random_residues(std::uint64_t p, std::size_t n,
                                           std::uint64_t seed) {
  util::Prng prng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = prng.below(p);
  return v;
}

// ---------------------------------------------------------------------------
// Kernel equivalence: each entry point, every dispatch level and IFMA
// setting, every tail length around the widest lane count, misaligned
// operand bases, against BOTH the forced-scalar kernel path and the seed.

TEST(SimdKernels, DotSumEquivalenceAllLevelsTailsOffsets) {
  LevelGuard guard;
  for (std::uint64_t p :
       {std::uint64_t{65537}, kP61, kNttPrime}) {
    GFp fast(p);
    GFpReference ref(p);
    // Sizes crossing kMinSimdN and covering every n mod 8 (and n mod 16).
    std::vector<std::size_t> sizes = {1, 7, 31, 32, 100};
    for (std::size_t m = 0; m < 16; ++m) sizes.push_back(256 + m);
    for (std::size_t n : sizes) {
      const auto base_a = random_residues(p, n + 8, p % 97 + n);
      const auto base_b = random_residues(p, n + 8, p % 89 + 2 * n);
      for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
        const std::uint64_t* a = base_a.data() + off;
        const std::uint64_t* b = base_b.data() + off;
        // Seed-path reference values.
        std::uint64_t dot_ref = 0;
        for (std::size_t i = 0; i < n; ++i) {
          dot_ref = ref.add(dot_ref, ref.mul(a[i], b[i]));
        }
        for (auto want : kSweep) {
          for (int ifma = 0; ifma < 2; ++ifma) {
            simd::set_simd_level(want);
            simd::set_simd_ifma(ifma != 0);
            util::OpScope sf;
            const auto dot_f = field::kernels::dot(fast, a, b, n);
            const auto cf = sf.counts();
            ASSERT_EQ(dot_f, dot_ref)
                << "dot p=" << p << " n=" << n << " off=" << off
                << " level=" << to_string(simd::simd_level());
            // The kernel contract charges n muls, n-1 adds at every level.
            ASSERT_EQ(cf.mul, n);
            ASSERT_EQ(cf.add, n - 1);
            std::uint64_t sum_ref = 0;
            for (std::size_t i = 0; i < n; ++i) sum_ref = ref.add(sum_ref, a[i]);
            util::OpScope ss;
            const auto sum_f = field::kernels::sum(fast, a, n);
            ASSERT_EQ(sum_f, sum_ref) << "sum p=" << p << " n=" << n;
            ASSERT_EQ(ss.counts().add, n - 1);
          }
        }
      }
    }
  }
}

TEST(SimdKernels, CrossLevelBitIdentityIncludingOpCounts) {
  // Every level must agree with the forced-scalar kernel bit-for-bit AND
  // charge identical counts (the stronger form of the invisibility rule).
  LevelGuard guard;
  for (std::uint64_t p : {std::uint64_t{65537}, kP61, kNttPrime}) {
    GFp fast(p);
    for (std::size_t n : {32u, 33u, 39u, 257u, 4096u}) {
      const auto a = random_residues(p, n, 3 * n + 1);
      auto b = random_residues(p, n, 5 * n + 7);
      b[n / 2] = 0;
      b[0] = 0;
      simd::set_simd_level(SimdLevel::kScalar);
      util::OpScope s0;
      const auto dot0 = field::kernels::dot(fast, b.data(), a.data(), n);
      const auto skip0 = field::kernels::dot_skip_zero(fast, b.data(), a.data(), n);
      const auto c0 = s0.counts();
      for (auto want : {SimdLevel::kNeon, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
        for (int ifma = 0; ifma < 2; ++ifma) {
          simd::set_simd_level(want);
          simd::set_simd_ifma(ifma != 0);
          util::OpScope s1;
          const auto dot1 = field::kernels::dot(fast, b.data(), a.data(), n);
          const auto skip1 =
              field::kernels::dot_skip_zero(fast, b.data(), a.data(), n);
          ASSERT_EQ(dot1, dot0) << p << " " << n;
          ASSERT_EQ(skip1, skip0) << p << " " << n;
          ASSERT_TRUE(same_counts(s1.counts(), c0)) << p << " " << n;
        }
      }
    }
  }
}

TEST(SimdKernels, GatherEquivalenceAllLevels) {
  LevelGuard guard;
  for (std::uint64_t p : {std::uint64_t{65537}, kNttPrime}) {
    GFp fast(p);
    GFpReference ref(p);
    for (std::size_t n : {32u, 37u, 40u, 1000u}) {
      const auto val = random_residues(p, n, n + 11);
      const auto x = random_residues(p, 4 * n, n + 13);
      util::Prng prng(n);
      std::vector<std::size_t> col(n);
      for (auto& c : col) c = prng.below(4 * n);
      std::uint64_t want_val = 0;
      for (std::size_t k = 0; k < n; ++k) {
        want_val = ref.add(want_val, ref.mul(val[k], x[col[k]]));
      }
      util::OpCounts scalar_counts{};
      for (auto want : kSweep) {
        simd::set_simd_level(want);
        util::OpScope s;
        const auto got =
            field::kernels::dot_gather(fast, val.data(), col.data(), x.data(), n);
        ASSERT_EQ(got, want_val)
            << p << " n=" << n << " level=" << to_string(simd::simd_level());
        if (want == SimdLevel::kScalar) {
          scalar_counts = s.counts();
        } else {
          ASSERT_TRUE(same_counts(s.counts(), scalar_counts));
        }
      }
    }
  }
}

TEST(SimdKernels, BatchInverseEquivalenceAllLevels) {
  LevelGuard guard;
  for (std::uint64_t p : {std::uint64_t{65537}, kP61, kNttPrime}) {
    GFp fast(p);
    GFpReference ref(p);
    for (std::size_t n : {1u, 31u, 32u, 33u, 39u, 100u, 4096u}) {
      auto vals = random_residues(p, n, 7 * n + 3);
      for (auto& v : vals) v = 1 + v % (p - 1);  // nonzero
      std::vector<std::uint64_t> want_inv(n);
      util::OpScope sr;
      for (std::size_t i = 0; i < n; ++i) want_inv[i] = ref.inv(vals[i]);
      const auto cr = sr.counts();
      for (auto want : kSweep) {
        simd::set_simd_level(want);
        auto got = vals;
        util::OpScope sf;
        const auto st = field::kernels::batch_inverse(fast, got.data(), n);
        ASSERT_TRUE(st.ok());
        ASSERT_EQ(got, want_inv)
            << p << " n=" << n << " level=" << to_string(simd::simd_level());
        ASSERT_TRUE(same_counts(sf.counts(), cr)) << p << " " << n;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Satellite fix: zero input is a reported failure in every build mode, not
// an assert-only precondition, and the input is left untouched.

TEST(SimdKernels, BatchInverseZeroReportsDivisionByZero) {
  LevelGuard guard;
  GFp fast(kNttPrime);
  for (auto want : kSweep) {
    simd::set_simd_level(want);
    auto vals = random_residues(kNttPrime, 64, 99);
    for (auto& v : vals) v |= 1;
    vals[41] = 0;
    const auto before = vals;
    const auto st = field::kernels::batch_inverse(fast, vals.data(), vals.size());
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.kind(), util::FailureKind::kDivisionByZero);
    EXPECT_EQ(vals, before) << "failed batch_inverse must not mutate input";
  }
}

TEST(SimdKernels, InterpolateStatusReportsCoincidentPoints) {
  GFp fast(65537);
  poly::PolyRing<GFp> ring(fast);
  std::vector<std::uint64_t> pts = {1, 2, 3, 2};  // duplicate
  std::vector<std::uint64_t> vals = {5, 6, 7, 8};
  const auto r = poly::interpolate_status(ring, pts, vals);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().kind(), util::FailureKind::kDivisionByZero);
  // Distinct points still interpolate exactly.
  pts = {1, 2, 3, 4};
  auto good = poly::interpolate_status(ring, pts, vals);
  ASSERT_TRUE(good.ok());
  const auto q = good.take();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(ring.eval(q, pts[i]), vals[i]);
  }
}

// ---------------------------------------------------------------------------
// NTT: full product bit-identity across dispatch levels, sizes spanning the
// small-half permute path and the chunked big-half path.

TEST(SimdNtt, NttMulBitIdenticalAcrossLevels) {
  LevelGuard guard;
  using F = Zp<kNttPrime>;
  F f;
  for (std::size_t n : {8u, 60u, 500u, 2048u, 5000u}) {
    const auto ar = random_residues(kNttPrime, n, n);
    const auto br = random_residues(kNttPrime, n, 2 * n);
    std::vector<std::uint64_t> a(ar), b(br);
    simd::set_simd_level(SimdLevel::kScalar);
    util::OpScope s0;
    const auto want_prod = poly::ntt_mul_prime_field(f, a, b);
    const auto c0 = s0.counts();
    for (auto want : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
      simd::set_simd_level(want);
      util::OpScope s1;
      const auto got = poly::ntt_mul_prime_field(f, a, b);
      ASSERT_EQ(got, want_prod) << "n=" << n
                                << " level=" << to_string(simd::simd_level());
      ASSERT_TRUE(same_counts(s1.counts(), c0)) << n;
    }
  }
}

TEST(SimdNtt, NttWorkerCountAndLevelIndependence) {
  // The vector path must compose with PR 3's thread chunking: identical
  // spectra for 1/2/8 workers x every dispatch level.
  LevelGuard guard;
  using F = Zp<kNttPrime>;
  F f;
  auto& ctx = pram::ExecutionContext::global();
  const std::size_t n = 1 << 15;  // big enough to actually chunk
  const auto ar = random_residues(kNttPrime, n, 4242);
  std::vector<std::uint64_t> expect;
  for (auto want : {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    simd::set_simd_level(want);
    for (std::size_t workers : {1u, 2u, 8u}) {
      ctx.set_worker_limit(workers);
      auto s = poly::ntt_forward(f, ar, n);
      ctx.set_worker_limit(0);
      if (expect.empty()) {
        expect = s.data;
      } else {
        ASSERT_EQ(s.data, expect)
            << "workers=" << workers
            << " level=" << to_string(simd::simd_level());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: charpoly and the Theorem-4 solver are bit-identical with SIMD
// on/off at 1/2/8 workers, including with a fault injected mid-pipeline.

TEST(SimdEndToEnd, CharpolyBitIdenticalAcrossLevelsAndWorkers) {
  LevelGuard guard;
  using F = Zp<kNttPrime>;
  F f;
  auto& ctx = pram::ExecutionContext::global();
  const std::size_t n = 48;
  auto s = random_residues(kNttPrime, n, 777);
  std::vector<std::uint64_t> expect;
  for (auto want : {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    simd::set_simd_level(want);
    for (std::size_t workers : {1u, 2u, 8u}) {
      ctx.set_worker_limit(workers);
      auto cp = seq::charpoly_from_power_sums(
          f, s, seq::NewtonIdentityMethod::kPowerSeriesExp);
      ctx.set_worker_limit(0);
      if (expect.empty()) {
        expect = cp;
      } else {
        ASSERT_EQ(cp, expect) << "workers=" << workers
                              << " level=" << to_string(simd::simd_level());
      }
    }
  }
}

TEST(SimdEndToEnd, SolveBitIdenticalSimdOnOffAcrossWorkers) {
  LevelGuard guard;
  using F = Zp<kNttPrime>;
  F f;
  auto& ctx = pram::ExecutionContext::global();
  const std::size_t n = 24;
  util::Prng setup(2026);
  auto a = matrix::random_matrix(f, n, n, setup);
  std::vector<F::Element> x_true(n);
  for (auto& e : x_true) e = f.random(setup);
  const auto b = matrix::mat_vec(f, a, x_true);
  ASSERT_FALSE(f.is_zero(matrix::det_gauss(f, a)));
  std::vector<F::Element> expect_x;
  F::Element expect_det{};
  for (auto want : {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    simd::set_simd_level(want);
    for (std::size_t workers : {1u, 2u, 8u}) {
      ctx.set_worker_limit(workers);
      util::Prng prng(31337);  // same randomness stream for every config
      auto res = core::kp_solve(f, a, b, prng);
      ctx.set_worker_limit(0);
      ASSERT_TRUE(res.ok);
      if (expect_x.empty()) {
        expect_x = res.x;
        expect_det = res.det;
      } else {
        ASSERT_EQ(res.x, expect_x)
            << "workers=" << workers
            << " level=" << to_string(simd::simd_level());
        ASSERT_EQ(res.det, expect_det);
      }
      ASSERT_EQ(res.x, x_true);
    }
  }
}

TEST(SimdEndToEnd, SolveWithInjectedFaultBitIdenticalSimdOnOff) {
#if !KP_FAULT_INJECTION_ENABLED
  GTEST_SKIP() << "fault injection compiled out";
#else
  // The retry path (redraw after an injected projection fault) must also be
  // SIMD-invisible: same diags, same final answer.
  LevelGuard guard;
  using F = Zp<kNttPrime>;
  F f;
  const std::size_t n = 16;
  util::Prng setup(404);
  auto a = matrix::random_matrix(f, n, n, setup);
  std::vector<F::Element> x_true(n);
  for (auto& e : x_true) e = f.random(setup);
  const auto b = matrix::mat_vec(f, a, x_true);
  ASSERT_FALSE(f.is_zero(matrix::det_gauss(f, a)));
  std::vector<F::Element> expect_x;
  int expect_attempts = 0;
  for (auto want : {SimdLevel::kScalar, SimdLevel::kAvx512}) {
    simd::set_simd_level(want);
    util::fault::ScopedFault fi(util::Stage::kProjection, /*attempt=*/1);
    util::Prng prng(5150);
    auto res = core::kp_solve(f, a, b, prng);
    EXPECT_EQ(fi.fired(), 1u);
    ASSERT_TRUE(res.ok);
    ASSERT_EQ(res.x, x_true);
    if (expect_x.empty()) {
      expect_x = res.x;
      expect_attempts = res.attempts;
    } else {
      ASSERT_EQ(res.x, expect_x);
      ASSERT_EQ(res.attempts, expect_attempts);
    }
  }
#endif
}

// ---------------------------------------------------------------------------
// Dispatch plumbing: clamping, env semantics are covered implicitly (the
// setter IS the env parser's back end); stats move only when vector groups
// actually run.

TEST(SimdDispatch, SetLevelClampsToAvailable) {
  LevelGuard guard;
  const SimdLevel max = simd::simd_max_level();
  for (auto want : kSweep) {
    const SimdLevel got = simd::set_simd_level(want);
    EXPECT_LE(static_cast<int>(got), static_cast<int>(want));
    EXPECT_LE(static_cast<int>(got), static_cast<int>(max));
    EXPECT_EQ(got, simd::simd_level());
  }
  // Scalar is always accepted verbatim.
  EXPECT_EQ(simd::set_simd_level(SimdLevel::kScalar), SimdLevel::kScalar);
}

TEST(SimdDispatch, StatsCountVectorGroupsOnlyWhenVectorPathRuns) {
  LevelGuard guard;
  GFp fast(kNttPrime);
  const std::size_t n = 4096;
  const auto a = random_residues(kNttPrime, n, 1);
  const auto b = random_residues(kNttPrime, n, 2);

  simd::set_simd_level(SimdLevel::kScalar);
  simd::reset_simd_stats();
  (void)field::kernels::dot(fast, a.data(), b.data(), n);
  EXPECT_EQ(simd::simd_stats().dot, 0u) << "scalar run must not bump stats";

  if (simd::simd_max_level() >= SimdLevel::kAvx2) {
    simd::set_simd_level(simd::simd_max_level());
    simd::reset_simd_stats();
    (void)field::kernels::dot(fast, a.data(), b.data(), n);
    EXPECT_GT(simd::simd_stats().dot, 0u);
  }
}

}  // namespace
}  // namespace kp

// Tests for the circuit framework: arena/eval semantics, the symbolic
// CircuitBuilderField, the Baur-Strassen/Kaltofen-Singer gradient transform
// (Theorem 5), and the Theorem-4/6 circuit builders.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "circuit/derivative.h"
#include "circuit/dot.h"
#include "circuit/field.h"
#include "core/baselines.h"
#include "field/zp.h"
#include "matrix/gauss.h"
#include "util/prng.h"

namespace kp {
namespace {

using circuit::Accumulation;
using circuit::Circuit;
using circuit::CircuitBuilderField;
using circuit::NodeId;
using field::Zp;
using matrix::Matrix;

using F = Zp<1000003>;
F f;

// ---------------------------------------------------------------------------
// Arena basics.

TEST(CircuitTest, SizeDepthAndEval) {
  Circuit c;
  const auto x = c.input();
  const auto y = c.input();
  const auto s = c.add(x, y);
  const auto p = c.mul(s, s);
  c.mark_output(p);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.depth(), 2u);
  EXPECT_EQ(c.num_inputs(), 2u);
  auto res = c.evaluate(f, {3, 4}, {});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.outputs, std::vector<F::Element>{49});
}

TEST(CircuitTest, DivisionByZeroIsTheFailureEvent) {
  Circuit c;
  const auto x = c.input();
  const auto y = c.input();
  c.mark_output(c.div(x, y));
  EXPECT_FALSE(c.evaluate(f, {5, 0}, {}).ok);
  auto ok = c.evaluate(f, {10, 5}, {});
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(ok.outputs[0], 2u);
}

TEST(CircuitTest, RandomLeavesConsumeRandomValues) {
  Circuit c;
  const auto x = c.input();
  const auto r = c.random_element();
  c.mark_output(c.mul(x, r));
  EXPECT_EQ(c.num_randoms(), 1u);
  auto res = c.evaluate(f, {7}, {6});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.outputs[0], 42u);
}

TEST(CircuitTest, DotExportContainsEveryNodeAndEdge) {
  Circuit c;
  const auto x = c.input();
  const auto r = c.random_element();
  c.mark_output(c.div(c.add(x, c.constant(3)), r));
  const auto dot = circuit::to_dot(c, "g");
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
  EXPECT_NE(dot.find("label=\"x0\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"r0\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"+\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"/\""), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
  // One edge per operand: 2 for add, 2 for div.
  std::size_t edges = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, 4u);
}

TEST(CircuitTest, ConstantsMaterializeViaFromInt) {
  Circuit c;
  const auto x = c.input();
  c.mark_output(c.add(x, c.constant(-3)));
  auto res = c.evaluate(f, {1}, {});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.outputs[0], f.from_int(-2));
}

// ---------------------------------------------------------------------------
// Symbolic field.

TEST(BuilderFieldTest, PeepholesKeepTrivialOpsFree) {
  Circuit c;
  CircuitBuilderField cf(c);
  util::Prng prng(1);
  const auto x = c.input();
  EXPECT_EQ(cf.add(x, cf.zero()), x);
  EXPECT_EQ(cf.mul(x, cf.one()), x);
  EXPECT_EQ(cf.mul(x, cf.zero()), cf.zero());
  EXPECT_EQ(cf.sub(x, x), cf.zero());
  EXPECT_EQ(cf.div(x, cf.one()), x);
  EXPECT_EQ(c.size(), 0u);  // nothing recorded
  // Constant folding.
  EXPECT_TRUE(cf.eq(cf.add(cf.from_int(2), cf.from_int(3)), cf.from_int(5)));
  EXPECT_EQ(c.size(), 0u);
}

TEST(BuilderFieldTest, RecordedProgramMatchesDirectEvaluation) {
  Circuit c;
  CircuitBuilderField cf(c);
  const auto a = c.input();
  const auto b = c.input();
  // (a + b) * (a - b) + a / b
  const auto expr = cf.add(cf.mul(cf.add(a, b), cf.sub(a, b)), cf.div(a, b));
  c.mark_output(expr);
  auto res = c.evaluate(f, {10, 2}, {});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.outputs[0], f.add(f.mul(12, 8), 5));
}

TEST(BuilderFieldTest, BerkowitzRecordsDivisionFreeDetCircuit) {
  // Berkowitz is generic over a commutative ring, so it runs over the
  // symbolic field and must record NO division nodes.
  const std::size_t n = 4;
  Circuit c;
  CircuitBuilderField cf(c);
  Matrix<CircuitBuilderField> a(n, n, cf.zero());
  for (auto& e : a.data()) e = c.input();
  auto p = core::charpoly_berkowitz(cf, a);
  // det = (-1)^n p(0) = p[0] for n = 4.
  c.mark_output(p[0]);
  for (const auto& node : c.nodes()) {
    EXPECT_NE(node.op, circuit::Op::kDiv);
  }
  // Evaluate and compare against Gaussian elimination.
  util::Prng prng(2);
  auto m = matrix::random_matrix(f, n, n, prng);
  std::vector<F::Element> in(m.data().begin(), m.data().end());
  auto res = c.evaluate(f, in, {});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.outputs[0], matrix::det_gauss(f, m));
}

// ---------------------------------------------------------------------------
// Gradient transform (Theorem 5).

TEST(GradientTest, ProductRule) {
  // f = x*y + z: df/dx = y, df/dy = x, df/dz = 1.
  Circuit c;
  const auto x = c.input();
  const auto y = c.input();
  const auto z = c.input();
  c.mark_output(c.add(c.mul(x, y), z));
  auto g = circuit::gradient(c);
  auto res = g.evaluate(f, {3, 5, 11}, {});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.outputs, (std::vector<F::Element>{26, 5, 3, 1}));
}

TEST(GradientTest, QuotientRule) {
  // f = x/y: df/dx = 1/y, df/dy = -x/y^2.
  Circuit c;
  const auto x = c.input();
  const auto y = c.input();
  c.mark_output(c.div(x, y));
  auto g = circuit::gradient(c);
  util::Prng prng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto xv = f.random(prng);
    auto yv = f.random(prng);
    if (f.is_zero(yv)) yv = f.one();
    auto res = g.evaluate(f, {xv, yv}, {});
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.outputs[0], f.div(xv, yv));
    EXPECT_EQ(res.outputs[1], f.inv(yv));
    EXPECT_EQ(res.outputs[2], f.neg(f.div(xv, f.mul(yv, yv))));
  }
}

TEST(GradientTest, PowerByRepeatedSquaring) {
  // f = x^8 via three squarings: df/dx = 8 x^7.
  Circuit c;
  const auto x = c.input();
  auto p = x;
  for (int i = 0; i < 3; ++i) p = c.mul(p, p);
  c.mark_output(p);
  auto g = circuit::gradient(c);
  const F::Element xv = 7;
  auto res = g.evaluate(f, {xv}, {});
  ASSERT_TRUE(res.ok);
  // 8 * 7^7 mod p.
  auto x7 = f.one();
  for (int i = 0; i < 7; ++i) x7 = f.mul(x7, xv);
  EXPECT_EQ(res.outputs[1], f.mul(8, x7));
}

TEST(GradientTest, UnusedInputGetsZeroGradient) {
  Circuit c;
  const auto x = c.input();
  c.input();  // y: unused
  c.mark_output(c.mul(x, x));
  auto g = circuit::gradient(c);
  auto res = g.evaluate(f, {5, 9}, {});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.outputs[2], f.zero());
}

TEST(GradientTest, DetGradientIsTransposedAdjugate) {
  // d det / d a_ij = adj(A)_ji; via the division-free Berkowitz det circuit.
  const std::size_t n = 4;
  Circuit c;
  CircuitBuilderField cf(c);
  Matrix<CircuitBuilderField> a(n, n, cf.zero());
  for (auto& e : a.data()) e = c.input();
  auto p = core::charpoly_berkowitz(cf, a);
  c.mark_output(p[0]);  // det for even n
  auto g = circuit::gradient(c);

  util::Prng prng(4);
  auto m = matrix::random_matrix(f, n, n, prng);
  auto inv = matrix::inverse_gauss(f, m);
  ASSERT_TRUE(inv.has_value());
  const auto det = matrix::det_gauss(f, m);
  auto res = g.evaluate(f, {m.data().begin(), m.data().end()}, {});
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.outputs[0], det);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // adj(A)_ji = det * (A^{-1})_ji.
      const auto adj_ji = f.mul(det, inv->at(j, i));
      EXPECT_EQ(res.outputs[1 + i * n + j], adj_ji) << i << "," << j;
    }
  }
}

TEST(GradientTest, LengthWithinTheoremBound) {
  // Theorem 5: length(Q) <= 4 * length(P) (+ output bookkeeping).
  for (std::size_t n : {2u, 4u, 6u}) {
    auto p = circuit::build_matmul_circuit(n);
    // Sum the outputs into a scalar so the gradient is defined.
    Circuit c = p;
    const auto outs = c.outputs();
    c.clear_outputs();
    NodeId acc = outs[0];
    for (std::size_t i = 1; i < outs.size(); ++i) acc = c.add(acc, outs[i]);
    c.mark_output(acc);
    auto g = circuit::gradient(c);
    EXPECT_LE(g.size(), 4 * c.size() + 2) << n;
  }
}

TEST(GradientTest, BalancedAccumulationBeatsLinearDepth) {
  // f = prod_i (x + c_i) computed as a BALANCED product tree (depth log t):
  // input x has fan-out t, so the naive adjoint accumulation costs depth
  // ~t while the balanced one stays ~log t (Figure 3 / Hoover).
  const std::size_t t = 64;
  Circuit c;
  const auto x = c.input();
  std::vector<NodeId> layer;
  for (std::size_t i = 1; i <= t; ++i) {
    layer.push_back(c.add(x, c.constant(static_cast<std::int64_t>(i))));
  }
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(c.mul(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  c.mark_output(layer[0]);
  auto glin = circuit::gradient(c, Accumulation::kLinear);
  auto gbal = circuit::gradient(c, Accumulation::kBalanced);
  EXPECT_GT(glin.depth(), 2 * gbal.depth());
  // Both compute the same values.
  auto r1 = glin.evaluate(f, {17}, {});
  auto r2 = gbal.evaluate(f, {17}, {});
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.outputs, r2.outputs);
}

TEST(GradientTest, NoNewZeroDivisions) {
  // The gradient circuit divides only by what the original divides by:
  // evaluations that succeed on P succeed on Q.
  Circuit c;
  const auto x = c.input();
  const auto y = c.input();
  c.mark_output(c.div(c.mul(x, x), c.add(y, c.constant(1))));
  auto g = circuit::gradient(c);
  util::Prng prng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto xv = f.random(prng);
    const auto yv = f.random(prng);
    const bool p_ok = c.evaluate(f, {xv, yv}, {}).ok;
    const bool q_ok = g.evaluate(f, {xv, yv}, {}).ok;
    EXPECT_EQ(p_ok, q_ok);
  }
}

// ---------------------------------------------------------------------------
// Theorem-4/6 circuit builders.

/// Evaluates a randomized circuit, retrying with fresh random leaf values
/// until it avoids the division-by-zero event.
template <class FieldT>
Circuit::Eval<FieldT> eval_with_randoms(const Circuit& c, const FieldT& fld,
                                        const std::vector<typename FieldT::Element>& in,
                                        util::Prng& prng, int attempts = 5) {
  Circuit::Eval<FieldT> res;
  for (int k = 0; k < attempts; ++k) {
    std::vector<typename FieldT::Element> rnd(c.num_randoms());
    for (auto& e : rnd) e = fld.sample(prng, 1u << 20);
    res = c.evaluate(fld, in, rnd);
    if (res.ok) return res;
  }
  return res;
}

TEST(BuildersTest, SolverCircuitSolvesSystems) {
  util::Prng prng(6);
  for (std::size_t n : {1u, 2u, 3u, 5u}) {
    auto c = circuit::build_solver_circuit(n);
    EXPECT_EQ(c.num_inputs(), n * n + n);
    EXPECT_EQ(c.num_outputs(), n);
    auto a = matrix::random_matrix(f, n, n, prng);
    if (f.is_zero(matrix::det_gauss(f, a))) continue;
    std::vector<F::Element> x(n);
    for (auto& e : x) e = f.random(prng);
    auto b = matrix::mat_vec(f, a, x);
    std::vector<F::Element> in(a.data().begin(), a.data().end());
    in.insert(in.end(), b.begin(), b.end());
    auto res = eval_with_randoms(c, f, in, prng);
    ASSERT_TRUE(res.ok) << n;
    EXPECT_EQ(res.outputs, x) << n;
  }
}

TEST(BuildersTest, SolverCircuitUsesLinearlyManyRandoms) {
  // Theorem 4: O(n) random nodes (here: 2n-1 Hankel + n diagonal + 2n
  // projections = 5n - 1).
  for (std::size_t n : {2u, 4u, 8u}) {
    auto c = circuit::build_solver_circuit(n);
    EXPECT_EQ(c.num_randoms(), 5 * n - 1) << n;
  }
}

TEST(BuildersTest, SolverCircuitFailsOnSingularInput) {
  const std::size_t n = 3;
  auto c = circuit::build_solver_circuit(n);
  // Rank-1 A: the circuit must divide by zero (Theorem 4's guarantee).
  Matrix<F> a(n, n, f.zero());
  util::Prng prng(7);
  for (std::size_t j = 0; j < n; ++j) {
    a.at(0, j) = f.random(prng);
    a.at(1, j) = f.mul(a.at(0, j), 2);
    a.at(2, j) = f.mul(a.at(0, j), 3);
  }
  std::vector<F::Element> in(a.data().begin(), a.data().end());
  std::vector<F::Element> b{1, 2, 3};
  in.insert(in.end(), b.begin(), b.end());
  auto res = eval_with_randoms(c, f, in, prng);
  EXPECT_FALSE(res.ok);
}

TEST(BuildersTest, DetCircuitMatchesGauss) {
  util::Prng prng(8);
  for (std::size_t n : {1u, 2u, 4u}) {
    auto c = circuit::build_det_circuit(n);
    auto a = matrix::random_matrix(f, n, n, prng);
    if (f.is_zero(matrix::det_gauss(f, a))) continue;
    auto res = eval_with_randoms(c, f, {a.data().begin(), a.data().end()}, prng);
    ASSERT_TRUE(res.ok) << n;
    EXPECT_EQ(res.outputs[0], matrix::det_gauss(f, a)) << n;
  }
}

TEST(BuildersTest, InverseCircuitMatchesGauss) {
  // Theorem 6 end-to-end: differentiate the det circuit, divide by det.
  util::Prng prng(9);
  for (std::size_t n : {1u, 2u, 3u}) {
    auto c = circuit::build_inverse_circuit(n);
    EXPECT_EQ(c.num_inputs(), n * n);
    EXPECT_EQ(c.num_outputs(), n * n);
    auto a = matrix::random_matrix(f, n, n, prng);
    auto inv = matrix::inverse_gauss(f, a);
    if (!inv) continue;
    auto res = eval_with_randoms(c, f, {a.data().begin(), a.data().end()}, prng);
    ASSERT_TRUE(res.ok) << n;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(res.outputs[i * n + j], inv->at(i, j)) << n << ":" << i << "," << j;
      }
    }
  }
}

TEST(BuildersTest, TransposedSolverCircuit) {
  util::Prng prng(10);
  const std::size_t n = 3;
  auto c = circuit::build_transposed_solver_circuit(n);
  EXPECT_EQ(c.num_outputs(), n);
  auto a = matrix::random_matrix(f, n, n, prng);
  if (f.is_zero(matrix::det_gauss(f, a))) GTEST_SKIP();
  std::vector<F::Element> b(n);
  for (auto& e : b) e = f.random(prng);
  // Inputs: A row-major, then x-slot (unused values fine: gradient does not
  // depend on x), then b.
  std::vector<F::Element> in(a.data().begin(), a.data().end());
  std::vector<F::Element> xdummy(n, f.one());
  in.insert(in.end(), xdummy.begin(), xdummy.end());
  in.insert(in.end(), b.begin(), b.end());
  auto res = eval_with_randoms(c, f, in, prng);
  ASSERT_TRUE(res.ok);
  // res.outputs solves A^T y = b.
  auto check = matrix::mat_vec(f, matrix::mat_transpose(f, a), res.outputs);
  EXPECT_EQ(check, b);
}

TEST(BuildersTest, ToeplitzCharpolyCircuit) {
  util::Prng prng(11);
  for (std::size_t n : {1u, 2u, 4u}) {
    auto c = circuit::build_toeplitz_charpoly_circuit(n);
    EXPECT_EQ(c.num_inputs(), 2 * n - 1);
    EXPECT_EQ(c.num_outputs(), n + 1);
    std::vector<F::Element> diag(2 * n - 1);
    for (auto& v : diag) v = f.random(prng);
    matrix::Toeplitz<F> t(n, diag);
    auto res = c.evaluate(f, diag, {});
    ASSERT_TRUE(res.ok) << n;
    EXPECT_EQ(res.outputs, seq::toeplitz_charpoly(f, t)) << n;
  }
}

TEST(BuildersTest, NttStructuredCircuitEvaluatesCorrectly) {
  // Circuits built for an NTT-friendly target field route polynomial
  // products through the symbolic NTT (roots of unity as constants); the
  // recorded program must still evaluate to the exact answer over that
  // field, and only over it.
  field::GFp fq(field::kNttPrime);
  util::Prng prng(77);
  for (std::size_t n : {8u, 12u}) {  // big enough that the NTT path engages
    auto c = circuit::build_toeplitz_charpoly_circuit(n, field::kNttPrime);
    std::vector<field::GFp::Element> diag(2 * n - 1);
    for (auto& v : diag) v = fq.random(prng);
    matrix::Toeplitz<field::GFp> t(n, diag);
    auto res = c.evaluate(fq, diag, {});
    ASSERT_TRUE(res.ok) << n;
    EXPECT_EQ(res.outputs, seq::toeplitz_charpoly(fq, t)) << n;
  }
}

TEST(BuildersTest, SolverCircuitDepthIsPolylog) {
  // The depth should grow far slower than the size: check that depth at
  // n=8 stays within a small factor of depth at n=4 while size grows ~8x.
  auto c4 = circuit::build_solver_circuit(4);
  auto c8 = circuit::build_solver_circuit(8);
  EXPECT_GT(c8.size(), 4 * c4.size());
  EXPECT_LT(c8.depth(), 3 * c4.depth());
}

}  // namespace
}  // namespace kp

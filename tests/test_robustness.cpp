// Las Vegas hardening tests: the failure taxonomy (util/status.h), the
// stage-targeted retry policy of the Theorem-4 solver, the deterministic
// fault-injection harness (util/fault.h) and its sites across the charpoly /
// Newton-on-Toeplitz / Gohberg-Semencul / preconditioner paths, the
// Status-returning input validation of the public core/ entry points, and
// the singular-input "never a wrong answer" property across routes and
// worker counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/annihilator.h"
#include "core/baselines.h"
#include "core/extensions.h"
#include "core/field_lift.h"
#include "core/krylov.h"
#include "core/solver.h"
#include "core/wiedemann.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/gauss.h"
#include "matrix/sparse.h"
#include "matrix/structured.h"
#include "poly/poly_ring.h"
#include "pram/parallel_for.h"
#include "seq/gohberg_semencul.h"
#include "seq/newton_toeplitz.h"
#include "util/fault.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp {
namespace {

using util::FailureKind;
using util::Stage;
using util::Status;

using F = field::Zp<1000003>;
F f;

// Skips a test when the fault harness is compiled out (-DKP_FAULT_INJECTION=OFF).
#define KP_REQUIRE_FAULT_INJECTION()                             \
  do {                                                           \
    if (!KP_FAULT_INJECTION_ENABLED) {                           \
      GTEST_SKIP() << "fault injection compiled out";            \
    }                                                            \
  } while (0)

matrix::Matrix<F> nonsingular_matrix(std::size_t n, util::Prng& prng) {
  for (;;) {
    auto a = matrix::random_matrix(f, n, n, prng);
    if (!f.is_zero(matrix::det_gauss(f, a))) return a;
  }
}

matrix::Matrix<F> singular_matrix(std::size_t n, util::Prng& prng) {
  auto a = matrix::random_matrix(f, n, n, prng);
  for (std::size_t j = 0; j < n; ++j) a.at(n - 1, j) = a.at(0, j);
  return a;
}

matrix::Sparse<F> sparse_from_dense(const matrix::Matrix<F>& a) {
  std::vector<matrix::Sparse<F>::Entry> entries;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (!f.is_zero(a.at(i, j))) entries.push_back({i, j, a.at(i, j)});
    }
  }
  return matrix::Sparse<F>(f, a.rows(), a.cols(), std::move(entries));
}

// ---------------------------------------------------------------------------
// Status / taxonomy
// ---------------------------------------------------------------------------

TEST(StatusTest, OkFailInjectedAndMessage) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().kind(), FailureKind::kNone);
  EXPECT_EQ(Status::Ok().message(), "ok");

  const auto st = Status::Fail(FailureKind::kZeroConstantTerm,
                               Stage::kCharpoly, "g(0) = 0");
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(st.injected());
  EXPECT_EQ(st.kind(), FailureKind::kZeroConstantTerm);
  EXPECT_EQ(st.stage(), Stage::kCharpoly);
  EXPECT_EQ(st.message(), "zero-constant-term at charpoly: g(0) = 0");

  const auto inj =
      Status::Injected(FailureKind::kDegenerateProjection, Stage::kProjection);
  EXPECT_FALSE(inj.ok());
  EXPECT_TRUE(inj.injected());
  EXPECT_EQ(inj.kind(), FailureKind::kDegenerateProjection);
  EXPECT_EQ(inj.detail(), "injected");
}

TEST(StatusTest, RequireAndStatusOr) {
  EXPECT_TRUE(
      util::Require(true, FailureKind::kInvalidArgument, Stage::kNone, "x")
          .ok());
  const auto bad =
      util::Require(false, FailureKind::kInvalidArgument, Stage::kNone, "x");
  EXPECT_EQ(bad.kind(), FailureKind::kInvalidArgument);

  util::StatusOr<int> good(7);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  util::StatusOr<int> fail(
      Status::Fail(FailureKind::kSampleSetTooSmall, Stage::kLift));
  EXPECT_FALSE(fail.ok());
  EXPECT_EQ(fail.status().kind(), FailureKind::kSampleSetTooSmall);
}

TEST(StatusTest, EveryEnumeratorHasAName) {
  for (int k = 0; k <= static_cast<int>(FailureKind::kInjectedFault); ++k) {
    EXPECT_STRNE(util::to_string(static_cast<FailureKind>(k)), "unknown");
  }
  for (int s = 0; s < util::kStageCount; ++s) {
    EXPECT_STRNE(util::to_string(static_cast<Stage>(s)), "unknown");
  }
}

// ---------------------------------------------------------------------------
// Prng seeding contract
// ---------------------------------------------------------------------------

TEST(PrngTest, RecordsItsSeed) {
  util::Prng a(12345);
  EXPECT_EQ(a.seed(), 12345u);
  a.reseed(42);
  EXPECT_EQ(a.seed(), 42u);
  // A recorded seed replays the stream exactly.
  util::Prng b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(PrngTest, SeedZeroIsNotDegenerate) {
  util::Prng z(0);
  std::uint64_t acc = 0;
  for (int i = 0; i < 8; ++i) acc |= z();
  EXPECT_NE(acc, 0u);  // an all-zero xoshiro state would emit only zeros
}

TEST(PrngTest, ForkIsReproducibleAndDecorrelated) {
  // Same parent seed + same fork sequence replays identically.
  util::Prng p1(999), p2(999);
  auto c1 = p1.fork(0xabc);
  auto c2 = p2.fork(0xabc);
  EXPECT_EQ(c1.seed(), c2.seed());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(c1(), c2());

  // Distinct tags give different streams; successive forks with the SAME
  // tag differ too (each fork consumes one parent output).
  util::Prng p(7);
  auto a = p.fork(1);
  auto b = p.fork(2);
  auto c = p.fork(1);
  EXPECT_NE(a.seed(), b.seed());
  EXPECT_NE(a.seed(), c.seed());

  // Forking does not make the child track the parent.
  util::Prng q(7);
  auto child = q.fork(5);
  EXPECT_NE(child(), q());
}

// ---------------------------------------------------------------------------
// Malformed-input validation at the public core/ entry points
// ---------------------------------------------------------------------------

TEST(ValidationTest, SolverRejectsMalformedInputs) {
  util::Prng prng(1);
  auto rect = matrix::random_matrix(f, 4, 6, prng);
  std::vector<F::Element> b4(4, f.one());
  auto res = core::kp_solve(f, rect, b4, prng);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.status.kind(), FailureKind::kInvalidArgument);
  EXPECT_EQ(res.attempts, 0);

  auto res_det = core::kp_det(f, rect, prng);
  EXPECT_EQ(res_det.status.kind(), FailureKind::kInvalidArgument);

  auto sq = nonsingular_matrix(4, prng);
  std::vector<F::Element> b3(3, f.one());
  auto mismatch = core::kp_solve(f, sq, b3, prng);
  EXPECT_EQ(mismatch.status.kind(), FailureKind::kInvalidArgument);

  core::SolverOptions opt;
  opt.max_attempts = 0;
  auto no_attempts = core::kp_solve(f, sq, b4, prng, opt);
  EXPECT_EQ(no_attempts.status.kind(), FailureKind::kInvalidArgument);
}

TEST(ValidationTest, WiedemannRejectsDimensionMismatch) {
  util::Prng prng(2);
  auto a = nonsingular_matrix(5, prng);
  matrix::DenseBox<F> box(f, a);
  std::vector<F::Element> b_bad(4, f.one());
  auto res = core::wiedemann_solve_status(f, box, b_bad, prng, 1u << 20);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.status.kind(), FailureKind::kInvalidArgument);
  EXPECT_FALSE(core::wiedemann_solve(f, box, b_bad, prng, 1u << 20));

  auto rect = matrix::random_matrix(f, 4, 6, prng);
  auto det = core::wiedemann_det(f, rect, prng, 1u << 20);
  EXPECT_FALSE(det.ok);
  EXPECT_EQ(det.status.kind(), FailureKind::kInvalidArgument);
}

TEST(ValidationTest, KrylovEntryPointsRejectMalformedInputs) {
  util::Prng prng(3);
  auto rect = matrix::random_matrix(f, 4, 6, prng);
  std::vector<F::Element> v4(4, f.one());
  EXPECT_EQ(core::krylov_block(f, rect, v4, 4).rows(), 0u);
  EXPECT_EQ(
      core::validate_krylov_input(f, rect.rows(), rect.cols(), v4.size())
          .kind(),
      FailureKind::kInvalidArgument);

  auto sq = matrix::random_matrix(f, 4, 4, prng);
  std::vector<F::Element> v3(3, f.one());
  EXPECT_EQ(core::krylov_block(f, sq, v3, 4).rows(), 0u);
  matrix::DenseBox<F> box(f, sq);
  EXPECT_EQ(core::krylov_block_iterative(f, box, v3, 4).rows(), 0u);

  const auto block = core::krylov_block(f, sq, v4, 4);
  std::vector<F::Element> too_many(5, f.one());
  EXPECT_TRUE(core::krylov_combine(f, block, too_many).empty());
}

TEST(ValidationTest, AnnihilatorRejectsDegenerateInput) {
  std::vector<F::Element> trivial{f.one()};
  EXPECT_EQ(core::validate_annihilator(f, trivial).kind(),
            FailureKind::kInvalidArgument);
  std::vector<F::Element> zero_const{f.zero(), f.one()};
  EXPECT_EQ(core::validate_annihilator(f, zero_const).kind(),
            FailureKind::kZeroConstantTerm);
  EXPECT_TRUE(core::solution_combination(f, trivial).empty());
  EXPECT_TRUE(core::solution_combination(f, zero_const).empty());

  util::Prng prng(4);
  auto a = nonsingular_matrix(3, prng);
  matrix::DenseBox<F> box(f, a);
  std::vector<F::Element> b(3, f.one());
  EXPECT_TRUE(core::solve_from_annihilator(f, box, zero_const, b).empty());

  std::vector<F::Element> good{f.one(), f.one()};
  EXPECT_TRUE(core::validate_annihilator(f, good).ok());
}

TEST(ValidationTest, CharpolyBaselinesRejectNonSquare) {
  util::Prng prng(5);
  auto rect = matrix::random_matrix(f, 3, 5, prng);
  EXPECT_EQ(core::validate_charpoly_input(f, rect).kind(),
            FailureKind::kInvalidArgument);
  EXPECT_TRUE(core::charpoly_csanky(f, rect).empty());
  EXPECT_TRUE(core::faddeev_leverrier(f, rect).charpoly.empty());
  EXPECT_TRUE(core::charpoly_berkowitz(f, rect).empty());
  EXPECT_TRUE(core::charpoly_chistov(f, rect).empty());
}

TEST(ValidationTest, ExtensionsRejectMalformedInputs) {
  util::Prng prng(6);
  auto rect = matrix::random_matrix(f, 3, 5, prng);
  auto ns = core::nullspace_randomized(f, rect, prng, 1u << 20);
  EXPECT_FALSE(ns.ok);
  EXPECT_EQ(ns.status.kind(), FailureKind::kInvalidArgument);

  // least_squares is meaningful only in characteristic zero: over Zp it is
  // rejected instead of asserting.
  auto sq = matrix::random_matrix(f, 4, 4, prng);
  std::vector<F::Element> b(4, f.one());
  EXPECT_FALSE(core::least_squares(f, sq, b).has_value());
  EXPECT_FALSE(core::least_squares_randomized(f, sq, b, prng).has_value());
}

TEST(ValidationTest, ToeplitzSolveRejectsDimensionMismatch) {
  util::Prng prng(7);
  poly::PolyRing<F> ring(f);
  std::vector<F::Element> diag(2 * 4 - 1);
  for (auto& e : diag) e = f.random(prng);
  matrix::Toeplitz<F> t(4, std::move(diag));
  std::vector<F::Element> b3(3, f.one());
  EXPECT_TRUE(seq::toeplitz_solve_charpoly(f, t, b3, ring).empty());
  auto st = seq::toeplitz_solve_charpoly_status(f, t, b3, ring);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.status().kind(), FailureKind::kInvalidArgument);

  // minpoly_parallel with too few sequence terms is rejected, not UB.
  std::vector<F::Element> short_seq(3, f.one());
  EXPECT_TRUE(seq::minpoly_parallel(f, short_seq, 4, ring).empty());
}

TEST(ValidationTest, LiftDegreeStatus) {
  auto bad_p = core::lift_degree_status(1, 100);
  EXPECT_FALSE(bad_p.ok());
  EXPECT_EQ(bad_p.status().kind(), FailureKind::kInvalidArgument);

  auto ok = core::lift_degree_status(101, 10000);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2u);  // 101^2 = 10201 >= 10000

  auto small = core::lift_degree_status(101, 50);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small.value(), 1u);

  // The target is NOT reachable within a 64-bit word: reported, not
  // silently capped like the legacy lift_degree.
  auto overflow = core::lift_degree_status(2, ~std::uint64_t{0});
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().kind(), FailureKind::kSampleSetTooSmall);
  EXPECT_EQ(overflow.status().stage(), Stage::kLift);
}

// ---------------------------------------------------------------------------
// Fault injection: stage-targeted retries in the Theorem-4 solver
// ---------------------------------------------------------------------------

struct SolveFixture {
  std::size_t n = 12;
  matrix::Matrix<F> a;
  std::vector<F::Element> x_true, b;

  explicit SolveFixture(std::uint64_t seed = 101) : a(1, 1, f.zero()) {
    util::Prng setup(seed);
    a = nonsingular_matrix(n, setup);
    x_true.resize(n);
    for (auto& e : x_true) e = f.random(setup);
    b = matrix::mat_vec(f, a, x_true);
  }
};

TEST(FaultInjectionTest, ProjectionFaultRedrawsOnlyProjection) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  util::fault::ScopedFault fi(Stage::kProjection, /*attempt=*/1);
  util::Prng prng(77);
  auto res = core::kp_solve(f, fx.a, fx.b, prng);
  EXPECT_EQ(fi.fired(), 1u);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2);
  EXPECT_EQ(res.x, fx.x_true);
  ASSERT_EQ(res.diags.size(), 2u);
  EXPECT_EQ(res.diags[0].kind, FailureKind::kDegenerateProjection);
  EXPECT_EQ(res.diags[0].stage, Stage::kProjection);
  EXPECT_TRUE(res.diags[0].injected);
  // The retry re-drew ONLY the projection pair: fresh u, v; H, D kept.
  EXPECT_TRUE(res.diags[1].redrew_projection);
  EXPECT_FALSE(res.diags[1].redrew_precondition);
  EXPECT_EQ(res.diags[1].precondition_seed, res.diags[0].precondition_seed);
  EXPECT_NE(res.diags[1].projection_seed, res.diags[0].projection_seed);
  EXPECT_EQ(res.diags[1].sample_size, res.diags[0].sample_size);  // no restart
}

TEST(FaultInjectionTest, PreconditionFaultRedrawsOnlyPreconditioner) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  util::fault::ScopedFault fi(Stage::kPrecondition, /*attempt=*/1);
  util::Prng prng(78);
  auto res = core::kp_solve(f, fx.a, fx.b, prng);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2);
  EXPECT_EQ(res.x, fx.x_true);
  ASSERT_EQ(res.diags.size(), 2u);
  EXPECT_EQ(res.diags[0].kind, FailureKind::kSingularPrecondition);
  EXPECT_TRUE(res.diags[0].injected);
  EXPECT_TRUE(res.diags[1].redrew_precondition);
  EXPECT_FALSE(res.diags[1].redrew_projection);
  EXPECT_EQ(res.diags[1].projection_seed, res.diags[0].projection_seed);
  EXPECT_NE(res.diags[1].precondition_seed, res.diags[0].precondition_seed);
}

TEST(FaultInjectionTest, CharpolyFaultRedrawsOnlyPreconditioner) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  util::fault::ScopedFault fi(Stage::kCharpoly, /*attempt=*/1);
  util::Prng prng(79);
  auto res = core::kp_solve(f, fx.a, fx.b, prng);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2);
  ASSERT_EQ(res.diags.size(), 2u);
  // g(0) = 0 implicates A-tilde, i.e. the preconditioner (A is fixed).
  EXPECT_EQ(res.diags[0].kind, FailureKind::kZeroConstantTerm);
  EXPECT_TRUE(res.diags[1].redrew_precondition);
  EXPECT_FALSE(res.diags[1].redrew_projection);
}

TEST(FaultInjectionTest, NewtonToeplitzFaultRedrawsOnlyProjection) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  util::fault::ScopedFault fi(Stage::kNewtonToeplitz, /*attempt=*/1);
  util::Prng prng(80);
  auto res = core::kp_solve(f, fx.a, fx.b, prng);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2);
  ASSERT_EQ(res.diags.size(), 2u);
  // det(T) = 0 is the Lemma-2 event: the projection lost information.
  EXPECT_EQ(res.diags[0].kind, FailureKind::kDegenerateProjection);
  EXPECT_EQ(res.diags[0].stage, Stage::kNewtonToeplitz);
  EXPECT_TRUE(res.diags[1].redrew_projection);
  EXPECT_FALSE(res.diags[1].redrew_precondition);
}

TEST(FaultInjectionTest, DeepNewtonToeplitzSiteReportsOrganically) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  // Site 1 of the stage is INSIDE toeplitz_solve_charpoly (the p(0) = 0
  // zero check); the failure then surfaces through the legitimate
  // empty-return path rather than the solver's own injection shortcut.
  util::fault::ScopedFault fi(Stage::kNewtonToeplitz, /*attempt=*/1,
                              /*site_index=*/1);
  util::Prng prng(81);
  auto res = core::kp_solve(f, fx.a, fx.b, prng);
  EXPECT_EQ(fi.fired(), 1u);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2);
  ASSERT_EQ(res.diags.size(), 2u);
  EXPECT_EQ(res.diags[0].kind, FailureKind::kDegenerateProjection);
  EXPECT_FALSE(res.diags[0].injected);  // took the organic det(T) = 0 branch
}

TEST(FaultInjectionTest, VerifyFaultForcesFullRestart) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  util::fault::ScopedFault fi(Stage::kVerify, /*attempt=*/1);
  util::Prng prng(82);
  auto res = core::kp_solve(f, fx.a, fx.b, prng);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2);
  ASSERT_EQ(res.diags.size(), 2u);
  EXPECT_EQ(res.diags[0].kind, FailureKind::kVerifyMismatch);
  // A verify mismatch implicates the PAIR: both re-drawn, |S| escalated.
  EXPECT_TRUE(res.diags[1].redrew_precondition);
  EXPECT_TRUE(res.diags[1].redrew_projection);
  EXPECT_EQ(res.diags[1].sample_size, 2 * res.diags[0].sample_size);
}

TEST(FaultInjectionTest, PreconditionerDetFaultTakesTheGuardedBranch) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  // Site 1 of kPrecondition in the solver attempt is Preconditioner::det:
  // the injected zero exercises the det(H D) = 0 guard, which cannot
  // trigger organically once g(0) != 0.
  util::fault::ScopedFault fi(Stage::kPrecondition, /*attempt=*/1,
                              /*site_index=*/1);
  util::Prng prng(83);
  auto res = core::kp_solve(f, fx.a, fx.b, prng);
  EXPECT_EQ(fi.fired(), 1u);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2);
  ASSERT_EQ(res.diags.size(), 2u);
  EXPECT_EQ(res.diags[0].kind, FailureKind::kSingularPrecondition);
  EXPECT_EQ(res.diags[0].stage, Stage::kPrecondition);
  EXPECT_FALSE(res.diags[0].injected);  // the natural zero-check reported it
}

TEST(FaultInjectionTest, RepeatedTargetedFailureEscalatesToFullRestart) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  core::SolverOptions opt;
  opt.max_attempts = 3;
  // A persistent projection fault: attempt 1 fails, attempt 2 re-draws only
  // u, v and fails AGAIN -- the pair is now implicated, so attempt 3 must be
  // a full restart with an escalated sample set.
  util::fault::ScopedFault fi(Stage::kProjection, /*attempt=*/-1,
                              /*site_index=*/-1, /*one_shot=*/false);
  util::Prng prng(84);
  auto res = core::kp_solve(f, fx.a, fx.b, prng, opt);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.attempts, opt.max_attempts + 1);
  ASSERT_EQ(res.diags.size(), 3u);
  EXPECT_TRUE(res.diags[1].redrew_projection);
  EXPECT_FALSE(res.diags[1].redrew_precondition);
  EXPECT_TRUE(res.diags[2].redrew_projection);
  EXPECT_TRUE(res.diags[2].redrew_precondition);  // escalated
  EXPECT_EQ(res.diags[2].sample_size, 2 * res.diags[0].sample_size);
  EXPECT_EQ(res.status.kind(), FailureKind::kDegenerateProjection);
  EXPECT_EQ(fi.fired(), 3u);
}

TEST(FaultInjectionTest, EveryFailureKindIsReachable) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  const matrix::Sparse<F> sp = sparse_from_dense(fx.a);
  const matrix::SparseBox<F> sbox(f, sp);

  struct Case {
    Stage stage;
    FailureKind kind;
  };
  const Case cases[] = {
      {Stage::kDraw, FailureKind::kInjectedFault},
      {Stage::kPrecondition, FailureKind::kSingularPrecondition},
      {Stage::kProjection, FailureKind::kDegenerateProjection},
      {Stage::kNewtonToeplitz, FailureKind::kDegenerateProjection},
      {Stage::kCharpoly, FailureKind::kZeroConstantTerm},
      {Stage::kSolveFinish, FailureKind::kVerifyMismatch},
      {Stage::kVerify, FailureKind::kVerifyMismatch},
  };
  for (const auto& c : cases) {
    // Dense doubling route.
    {
      util::fault::ScopedFault fi(c.stage, /*attempt=*/1);
      util::Prng prng(90);
      auto res = core::kp_solve(f, fx.a, fx.b, prng);
      ASSERT_TRUE(res.ok) << util::to_string(c.stage);
      EXPECT_EQ(res.attempts, 2) << util::to_string(c.stage);
      ASSERT_GE(res.diags.size(), 1u);
      EXPECT_EQ(res.diags[0].kind, c.kind) << util::to_string(c.stage);
      EXPECT_EQ(res.diags[0].stage, c.stage);
      EXPECT_EQ(res.x, fx.x_true) << util::to_string(c.stage);
    }
    // Sparse iterative route: same sites, same recovery.
    {
      util::fault::ScopedFault fi(c.stage, /*attempt=*/1);
      util::Prng prng(90);
      auto res = core::kp_solve(f, sbox, fx.b, prng);
      ASSERT_TRUE(res.ok) << util::to_string(c.stage) << " (sparse)";
      EXPECT_EQ(res.attempts, 2);
      EXPECT_EQ(res.diags[0].kind, c.kind) << util::to_string(c.stage);
      EXPECT_EQ(res.x, fx.x_true);
    }
  }
}

TEST(FaultInjectionTest, SampleSetTooSmallIsDiagnosedOnExhaustion) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  core::SolverOptions opt;
  opt.sample_size = 4;  // << 3 n^2 = 432: the est.-(2) bound is vacuous
  util::fault::ScopedFault fi(Stage::kCharpoly, /*attempt=*/-1,
                              /*site_index=*/-1, /*one_shot=*/false);
  util::Prng prng(85);
  auto res = core::kp_solve(f, fx.a, fx.b, prng, opt);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.status.kind(), FailureKind::kSampleSetTooSmall);
  EXPECT_EQ(res.status.stage(), Stage::kDraw);
}

TEST(FaultInjectionTest, OpBudgetDegradesToDenseBaseline) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  core::SolverOptions opt;
  opt.op_budget_per_attempt = 1;  // any failed attempt blows the budget
  util::fault::ScopedFault fi(Stage::kProjection, /*attempt=*/-1,
                              /*site_index=*/-1, /*one_shot=*/false);
  util::Prng prng(86);
  auto res = core::kp_solve(f, fx.a, fx.b, prng, opt);
  // The loop stopped after one attempt and the dense baseline settled it.
  ASSERT_TRUE(res.ok);
  EXPECT_TRUE(res.used_fallback);
  EXPECT_EQ(res.attempts, 1);
  EXPECT_EQ(res.x, fx.x_true);
  EXPECT_EQ(res.det, matrix::det_gauss(f, fx.a));
}

TEST(FaultInjectionTest, DenseFallbackProvesSingularInput) {
  util::Prng setup(87);
  const std::size_t n = 8;
  auto a = singular_matrix(n, setup);
  std::vector<F::Element> b(n);
  for (auto& e : b) e = f.random(setup);
  core::SolverOptions opt;
  opt.dense_fallback = true;
  util::Prng prng(88);
  auto res = core::kp_solve(f, a, b, prng, opt);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.used_fallback);
  // Gaussian elimination SEPARATES bad luck from a singular input: the
  // verdict is deterministic.
  EXPECT_EQ(res.status.kind(), FailureKind::kSingularInput);
}

// ---------------------------------------------------------------------------
// Fault injection: seq-layer sites through their own entry points
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, SeqLayerSitesReportThroughTheirOwnApis) {
  KP_REQUIRE_FAULT_INJECTION();
  util::Prng prng(89);
  poly::PolyRing<F> ring(f);
  const std::size_t n = 6;
  std::optional<matrix::Toeplitz<F>> t;
  for (;;) {
    std::vector<F::Element> diag(2 * n - 1);
    for (auto& e : diag) e = f.random(prng);
    matrix::Toeplitz<F> cand(n, std::move(diag));
    // Pick a T that satisfies BOTH Gohberg-Semencul preconditions
    // organically (det(T) != 0 and (T^{-1})_{1,1} != 0), so that only the
    // injected faults below can make the constructors fail.
    if (f.is_zero(matrix::det_gauss(f, cand.to_dense(f)))) continue;
    if (!seq::gs_from_toeplitz_gauss(f, cand).has_value()) continue;
    t.emplace(std::move(cand));
    break;
  }
  std::vector<F::Element> b(n, f.one());

  {
    util::fault::ScopedFault fi(Stage::kNewtonToeplitz);
    EXPECT_TRUE(seq::toeplitz_solve_charpoly(f, *t, b, ring).empty());
    EXPECT_EQ(fi.fired(), 1u);
  }
  {
    util::fault::ScopedFault fi(Stage::kNewtonToeplitz);
    auto st = seq::toeplitz_solve_charpoly_status(f, *t, b, ring);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.status().kind(), FailureKind::kSingularInput);
  }
  EXPECT_FALSE(seq::toeplitz_solve_charpoly(f, *t, b, ring).empty());

  // gs_from_toeplitz: site 0 is the p(0) = 0 check, site 1 the u_1 = 0
  // check of the Gohberg-Semencul precondition.
  {
    util::fault::ScopedFault fi(Stage::kGohbergSemencul, -1, /*site=*/0);
    EXPECT_FALSE(seq::gs_from_toeplitz(f, *t, ring).has_value());
    EXPECT_EQ(fi.fired(), 1u);
  }
  {
    util::fault::ScopedFault fi(Stage::kGohbergSemencul, -1, /*site=*/1);
    EXPECT_FALSE(seq::gs_from_toeplitz(f, *t, ring).has_value());
    EXPECT_EQ(fi.fired(), 1u);
  }
  {
    util::fault::ScopedFault fi(Stage::kGohbergSemencul);
    EXPECT_FALSE(seq::gs_from_toeplitz_gauss(f, *t).has_value());
    EXPECT_EQ(fi.fired(), 1u);
  }
  EXPECT_TRUE(seq::gs_from_toeplitz(f, *t, ring).has_value());
  EXPECT_TRUE(seq::gs_from_toeplitz_gauss(f, *t).has_value());
}

// ---------------------------------------------------------------------------
// Fault injection: Wiedemann's loops
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, WiedemannSolveRetriesWithFreshProjection) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  matrix::DenseBox<F> box(f, fx.a);
  util::fault::ScopedFault fi(Stage::kProjection, /*attempt=*/1);
  util::Prng prng(91);
  auto res = core::wiedemann_solve_status(f, box, fx.b, prng, 1u << 20);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2);
  EXPECT_EQ(res.x, fx.x_true);
  ASSERT_EQ(res.diags.size(), 2u);
  EXPECT_EQ(res.diags[0].kind, FailureKind::kDegenerateProjection);
  EXPECT_TRUE(res.diags[0].injected);
  EXPECT_NE(res.diags[1].projection_seed, res.diags[0].projection_seed);
}

TEST(FaultInjectionTest, WiedemannDetTargetsTheImplicatedComponent) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx;
  // Projection failure: fresh u, b only.
  {
    util::fault::ScopedFault fi(Stage::kProjection, /*attempt=*/1);
    util::Prng prng(92);
    auto res = core::wiedemann_det(f, fx.a, prng, 1u << 20);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.attempts, 2);
    EXPECT_EQ(res.value, matrix::det_gauss(f, fx.a));
    ASSERT_EQ(res.diags.size(), 2u);
    EXPECT_TRUE(res.diags[1].redrew_projection);
    EXPECT_FALSE(res.diags[1].redrew_precondition);
    EXPECT_EQ(res.diags[1].precondition_seed, res.diags[0].precondition_seed);
  }
  // Charpoly failure (g(0) = 0): fresh H, D only.
  {
    util::fault::ScopedFault fi(Stage::kCharpoly, /*attempt=*/1);
    util::Prng prng(93);
    auto res = core::wiedemann_det(f, fx.a, prng, 1u << 20);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.attempts, 2);
    EXPECT_EQ(res.value, matrix::det_gauss(f, fx.a));
    ASSERT_EQ(res.diags.size(), 2u);
    EXPECT_TRUE(res.diags[1].redrew_precondition);
    EXPECT_FALSE(res.diags[1].redrew_projection);
    EXPECT_EQ(res.diags[1].projection_seed, res.diags[0].projection_seed);
  }
  // Preconditioner-det failure (site in Preconditioner::det): fresh H, D.
  {
    util::fault::ScopedFault fi(Stage::kPrecondition, /*attempt=*/1);
    util::Prng prng(94);
    auto res = core::wiedemann_det(f, fx.a, prng, 1u << 20);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.attempts, 2);
    ASSERT_EQ(res.diags.size(), 2u);
    EXPECT_EQ(res.diags[0].kind, FailureKind::kSingularPrecondition);
    EXPECT_TRUE(res.diags[1].redrew_precondition);
  }
}

// ---------------------------------------------------------------------------
// Fault injection: section-5 lift and the adaptive entry point
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, LiftFaultReportsSampleSetTooSmall) {
  KP_REQUIRE_FAULT_INJECTION();
  field::GFp f101(101);
  util::Prng setup(95);
  const std::size_t n = 6;
  matrix::Matrix<field::GFp> a(n, n, f101.zero());
  std::vector<field::GFp::Element> x(n), b;
  for (;;) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a.at(i, j) = f101.random(setup);
    }
    if (!f101.is_zero(matrix::det_gauss(f101, a))) break;
  }
  for (auto& e : x) e = f101.random(setup);
  b = matrix::mat_vec(f101, a, x);

  {
    util::fault::ScopedFault fi(Stage::kLift);
    util::Prng prng(96);
    auto res = core::kp_solve_small_field(f101, a, b, prng);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.status.kind(), FailureKind::kSampleSetTooSmall);
    EXPECT_TRUE(res.status.injected());
  }
  util::Prng prng(96);
  auto res = core::kp_solve_small_field(f101, a, b, prng);
  ASSERT_TRUE(res.ok);
  EXPECT_TRUE(res.status.ok());
  EXPECT_GE(res.extension_degree, 2u);
  EXPECT_GE(res.attempts, 1);
  EXPECT_EQ(res.x, x);

  // The adaptive entry point auto-routes: 3 n^2 = 108 > 101 forces the
  // lift here, while a small enough n stays in the base field.
  util::Prng padapt(97);
  auto adaptive = core::kp_solve_adaptive(f101, a, b, padapt);
  ASSERT_TRUE(adaptive.ok);
  EXPECT_GE(adaptive.extension_degree, 2u);
  EXPECT_EQ(adaptive.x, x);
}

TEST(RobustnessTest, AdaptiveSolveStaysInBaseFieldWhenLargeEnough) {
  // Over Zp with p ~ 10^6 and small n, card(K) >= 3 n^2: no lift.
  SolveFixture fx;
  field::GFp fp(1000003);
  matrix::Matrix<field::GFp> a(fx.n, fx.n, fp.zero());
  for (std::size_t i = 0; i < fx.n; ++i) {
    for (std::size_t j = 0; j < fx.n; ++j) {
      a.at(i, j) = fx.a.at(i, j);
    }
  }
  std::vector<field::GFp::Element> b(fx.b.begin(), fx.b.end());
  util::Prng prng(98);
  auto res = core::kp_solve_adaptive(fp, a, b, prng);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.extension_degree, 1u);
  std::vector<field::GFp::Element> want(fx.x_true.begin(), fx.x_true.end());
  EXPECT_EQ(res.x, want);
}

// ---------------------------------------------------------------------------
// Determinism across worker counts, and the never-a-wrong-answer property
// ---------------------------------------------------------------------------

void expect_same_diags(const std::vector<util::Diag>& a,
                       const std::vector<util::Diag>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].stage, b[i].stage) << i;
    EXPECT_EQ(a[i].attempt, b[i].attempt) << i;
    EXPECT_EQ(a[i].precondition_seed, b[i].precondition_seed) << i;
    EXPECT_EQ(a[i].projection_seed, b[i].projection_seed) << i;
    EXPECT_EQ(a[i].redrew_precondition, b[i].redrew_precondition) << i;
    EXPECT_EQ(a[i].redrew_projection, b[i].redrew_projection) << i;
    EXPECT_EQ(a[i].injected, b[i].injected) << i;
    EXPECT_EQ(a[i].sample_size, b[i].sample_size) << i;
    EXPECT_EQ(a[i].ops.total(), b[i].ops.total()) << i;
  }
}

TEST(FaultInjectionTest, RetryBehaviorIsBitIdenticalAcrossWorkerCounts) {
  KP_REQUIRE_FAULT_INJECTION();
  SolveFixture fx(111);
  auto& ctx = pram::ExecutionContext::global();
  auto run = [&](unsigned workers) {
    ctx.set_worker_limit(workers);
    util::fault::ScopedFault fi(Stage::kProjection, /*attempt=*/1);
    util::Prng prng(314);
    auto res = core::kp_solve(f, fx.a, fx.b, prng);
    ctx.set_worker_limit(0);
    return res;
  };
  const auto r1 = run(1);
  const auto r2 = run(2);
  const auto r8 = run(8);
  ASSERT_TRUE(r1.ok && r2.ok && r8.ok);
  EXPECT_EQ(r1.x, r2.x);
  EXPECT_EQ(r1.x, r8.x);
  EXPECT_EQ(r1.det, r2.det);
  EXPECT_EQ(r1.det, r8.det);
  expect_same_diags(r1.diags, r2.diags);
  expect_same_diags(r1.diags, r8.diags);
}

TEST(RobustnessTest, SingularInputNeverYieldsAWrongAnswer) {
  // The Las Vegas contract on singular inputs: never ok-with-wrong-x; the
  // status always names a detected failure.  Swept over draws, routes, and
  // worker counts.
  auto& ctx = pram::ExecutionContext::global();
  const std::size_t n = 8;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    util::Prng setup(200 + seed);
    const auto a = singular_matrix(n, setup);
    const auto sp = sparse_from_dense(a);
    std::vector<F::Element> b(n);
    for (auto& e : b) e = f.random(setup);

    for (unsigned workers : {1u, 2u, 8u}) {
      ctx.set_worker_limit(workers);
      for (int route = 0; route < 2; ++route) {
        core::SolverOptions opt;
        opt.route = route == 0 ? core::KrylovRoute::kDoubling
                               : core::KrylovRoute::kIterative;
        util::Prng prng(300 + seed);
        auto res = route == 0
                       ? core::kp_solve(f, a, b, prng, opt)
                       : core::kp_solve(f, matrix::SparseBox<F>(f, sp), b,
                                        prng, opt);
        if (res.ok) {
          // Only acceptable if b happened to be consistent: verify.
          EXPECT_EQ(matrix::mat_vec(f, a, res.x), b);
        } else {
          EXPECT_NE(res.status.kind(), FailureKind::kNone);
          const bool plausible =
              res.status.kind() == FailureKind::kDegenerateProjection ||
              res.status.kind() == FailureKind::kZeroConstantTerm ||
              res.status.kind() == FailureKind::kSingularPrecondition ||
              res.status.kind() == FailureKind::kVerifyMismatch ||
              res.status.kind() == FailureKind::kSingularInput;
          EXPECT_TRUE(plausible) << res.status.message();
          EXPECT_EQ(res.attempts, opt.max_attempts + 1);
        }
      }
    }
    ctx.set_worker_limit(0);
  }
}

TEST(RobustnessTest, DiagsRecordEveryAttemptWithOpCosts) {
  SolveFixture fx;
  util::Prng prng(400);
  auto res = core::kp_solve(f, fx.a, fx.b, prng);
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.diags.size(), static_cast<std::size_t>(res.attempts));
  for (const auto& d : res.diags) {
    EXPECT_GT(d.ops.total(), 0u);
    EXPECT_GT(d.sample_size, 0u);
  }
  // Diag collection is optional for hot paths.
  core::SolverOptions opt;
  opt.collect_diag = false;
  util::Prng prng2(400);
  auto res2 = core::kp_solve(f, fx.a, fx.b, prng2, opt);
  ASSERT_TRUE(res2.ok);
  EXPECT_TRUE(res2.diags.empty());
  EXPECT_EQ(res2.x, res.x);
}

}  // namespace
}  // namespace kp

// Tests for the hardened service layer: util/deadline.h tokens,
// core/session.h pinned-transcript sessions, core/service.h admission /
// coalescing / degradation, and the pram::ExecutionContext shutdown
// contract the service relies on.
//
// Everything deterministic runs with dispatchers = 0 (the caller drains
// batches with run_once), so the fault matrix needs no timing assumptions;
// the threaded paths get their own tests plus a randomized soak.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/service.h"
#include "core/session.h"
#include "field/rational.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "matrix/sparse.h"
#include "pram/parallel_for.h"
#include "util/deadline.h"
#include "util/fault.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp {
namespace {

using F = field::Zp<field::kNttPrime>;
using core::DegradationLevel;
using core::ServiceConfig;
using core::Session;
using core::SessionOptions;
using core::SolverService;
using util::CancelFlag;
using util::Deadline;
using util::ExecControl;
using util::FailureKind;
using util::Stage;

F f;

/// Non-singular by construction (triangular, non-zero diagonal).
matrix::Sparse<F> make_operator(std::size_t n, std::uint64_t seed) {
  util::Prng prng(seed);
  std::vector<matrix::Sparse<F>::Entry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    auto d = f.random(prng);
    while (f.is_zero(d)) d = f.random(prng);
    entries.push_back({i, i, d});
    if (i + 1 < n) entries.push_back({i, i + 1, f.random(prng)});
    if (i + 3 < n) entries.push_back({i, i + 3, f.random(prng)});
  }
  return matrix::Sparse<F>(f, n, n, std::move(entries));
}

struct Fixture {
  matrix::Sparse<F> a;
  std::vector<std::vector<F::Element>> b;
  std::vector<std::vector<F::Element>> x;

  explicit Fixture(std::size_t n, std::size_t count = 8,
                   std::uint64_t seed = 11)
      : a(make_operator(n, seed)) {
    matrix::SparseBox<F> box(f, a);
    util::Prng prng(seed + 1);
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<F::Element> xi(n);
      for (auto& e : xi) e = f.random(prng);
      b.push_back(box.apply(xi));
      x.push_back(std::move(xi));
    }
  }

  matrix::AnyBox<F> box() const {
    return matrix::AnyBox<F>(matrix::SparseBox<F>(f, a));
  }
};

// ------------------------------------------------------------------------
// util/deadline.h
// ------------------------------------------------------------------------

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.has_deadline());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), Deadline::Clock::duration::max());
}

TEST(DeadlineTest, AfterExpiresAndReportsRemaining) {
  auto d = Deadline::after(std::chrono::hours(1));
  EXPECT_TRUE(d.has_deadline());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), std::chrono::minutes(59));
  auto past = Deadline::after(std::chrono::nanoseconds(-1));
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remaining(), Deadline::Clock::duration::zero());
}

TEST(DeadlineTest, EarlierPrefersTheFiniteAndSooner) {
  const Deadline never;
  const auto soon = Deadline::after(std::chrono::seconds(1));
  const auto later = Deadline::after(std::chrono::hours(1));
  EXPECT_FALSE(Deadline::earlier(never, never).has_deadline());
  EXPECT_EQ(Deadline::earlier(never, soon).time_point(), soon.time_point());
  EXPECT_EQ(Deadline::earlier(later, soon).time_point(), soon.time_point());
}

TEST(DeadlineTest, CancelFlagIsSharedAndSticky) {
  CancelFlag inert;
  EXPECT_FALSE(inert.can_cancel());
  inert.cancel();  // no-op
  EXPECT_FALSE(inert.cancelled());

  auto flag = CancelFlag::make();
  CancelFlag copy = flag;
  EXPECT_FALSE(copy.cancelled());
  flag.cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(DeadlineTest, ExecControlReportsCancelBeforeDeadline) {
  auto cancel = CancelFlag::make();
  ExecControl ctl(Deadline::after(std::chrono::nanoseconds(-1)), cancel);
  EXPECT_EQ(ctl.check(Stage::kVerify).kind(), FailureKind::kDeadlineExceeded);
  cancel.cancel();
  const auto st = ctl.check(Stage::kVerify);
  EXPECT_EQ(st.kind(), FailureKind::kCancelled);
  EXPECT_EQ(st.stage(), Stage::kVerify);

  EXPECT_EQ(ExecControl::check(nullptr, Stage::kDraw).kind(),
            FailureKind::kNone);
  EXPECT_TRUE(util::is_control_failure(FailureKind::kDeadlineExceeded));
  EXPECT_TRUE(util::is_control_failure(FailureKind::kCancelled));
  EXPECT_TRUE(util::is_control_failure(FailureKind::kShutdown));
  EXPECT_FALSE(util::is_control_failure(FailureKind::kVerifyMismatch));
}

// ------------------------------------------------------------------------
// core/session.h
// ------------------------------------------------------------------------

TEST(SessionTest, SolveOneMatchesKnownSolution) {
  Fixture fx(24);
  Session<F> sess(f, fx.box(), 5);
  ASSERT_TRUE(sess.prepare().ok());
  EXPECT_TRUE(sess.prepared());
  EXPECT_FALSE(f.is_zero(sess.det()));
  for (int i = 0; i < 3; ++i) {
    auto item = sess.solve_one(fx.b[i]);
    ASSERT_TRUE(item.status.ok()) << item.status.message();
    EXPECT_EQ(item.x, fx.x[i]);
    EXPECT_EQ(item.level, DegradationLevel::kSingleRhs);
  }
  EXPECT_EQ(sess.solves_completed(), 3u);
  EXPECT_EQ(sess.prepares(), 1u);  // the transcript stayed pinned
}

TEST(SessionTest, SolveManyBatchIsExact) {
  Fixture fx(24);
  Session<F> sess(f, fx.box(), 5);
  std::vector<const std::vector<F::Element>*> rhs;
  for (const auto& b : fx.b) rhs.push_back(&b);
  auto out = sess.solve_many(rhs);
  ASSERT_EQ(out.items.size(), fx.b.size());
  for (std::size_t i = 0; i < out.items.size(); ++i) {
    ASSERT_TRUE(out.items[i].status.ok()) << out.items[i].status.message();
    EXPECT_EQ(out.items[i].x, fx.x[i]);
    EXPECT_EQ(out.items[i].level, DegradationLevel::kBatched);
  }
}

TEST(SessionTest, DimensionMismatchIsInvalidArgument) {
  Fixture fx(16);
  Session<F> sess(f, fx.box(), 5);
  std::vector<F::Element> wrong(8, f.one());
  std::vector<const std::vector<F::Element>*> rhs{&wrong, &fx.b[0]};
  auto out = sess.solve_many(rhs);
  EXPECT_EQ(out.items[0].status.kind(), FailureKind::kInvalidArgument);
  ASSERT_TRUE(out.items[1].status.ok()) << out.items[1].status.message();
  EXPECT_EQ(out.items[1].x, fx.x[0]);
}

TEST(SessionTest, ExpiredDeadlineFailsAtDrawWithoutRetries) {
  Fixture fx(16);
  Session<F> sess(f, fx.box(), 5);
  ExecControl expired(Deadline::after(std::chrono::nanoseconds(-1)));
  const auto st = sess.prepare(&expired);
  EXPECT_EQ(st.kind(), FailureKind::kDeadlineExceeded);
  EXPECT_EQ(st.stage(), Stage::kDraw);
  EXPECT_FALSE(sess.prepared());
}

TEST(SessionTest, CancelledMemberIsDroppedMidBatchOthersComplete) {
  Fixture fx(24);
  Session<F> sess(f, fx.box(), 5);
  auto cancel = CancelFlag::make();
  cancel.cancel();
  ExecControl cancelled_ctl(Deadline{}, cancel);
  ExecControl live_ctl;
  std::vector<const std::vector<F::Element>*> rhs{&fx.b[0], &fx.b[1],
                                                  &fx.b[2]};
  std::vector<const ExecControl*> members{&live_ctl, &cancelled_ctl,
                                          &live_ctl};
  auto out = sess.solve_many(rhs, nullptr, &members);
  ASSERT_TRUE(out.items[0].status.ok());
  EXPECT_EQ(out.items[0].x, fx.x[0]);
  EXPECT_EQ(out.items[1].status.kind(), FailureKind::kCancelled);
  EXPECT_TRUE(out.items[1].x.empty());
  ASSERT_TRUE(out.items[2].status.ok());
  EXPECT_EQ(out.items[2].x, fx.x[2]);
}

TEST(SessionTest, RationalSessionPinsPrimesAcrossSolves) {
  using field::BigInt;
  using field::Rational;
  field::RationalField q;
  matrix::Matrix<field::RationalField> h(3, 3, q.zero());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      h.at(i, j) =
          Rational(BigInt(1), BigInt(static_cast<std::int64_t>(i + j + 1)));
    }
  }
  core::RationalSession sess(q, h, 123);
  EXPECT_TRUE(sess.pinned_primes().empty());

  std::vector<Rational> b1{Rational(1), Rational(0), Rational(0)};
  auto r1 = sess.solve(b1);
  ASSERT_TRUE(r1.ok) << r1.status.message();
  ASSERT_FALSE(sess.pinned_primes().empty());
  const auto pinned = sess.pinned_primes();
  const auto seed = sess.pinned_transcript_seed();
  EXPECT_NE(seed, 0u);

  // Second solve must replay the pinned transcript (same primes, same
  // seed) and still be exact: x solves H x = b2.
  std::vector<Rational> b2{Rational(0), Rational(1), Rational(2)};
  auto r2 = sess.solve(b2);
  ASSERT_TRUE(r2.ok) << r2.status.message();
  EXPECT_EQ(sess.pinned_transcript_seed(), seed);
  EXPECT_GE(pinned.size(), r2.primes.size());
  for (std::size_t i = 0; i < r2.primes.size(); ++i) {
    EXPECT_EQ(r2.primes[i], pinned[i]) << i;
  }
  for (std::size_t i = 0; i < 3; ++i) {
    Rational acc = q.zero();
    for (std::size_t j = 0; j < 3; ++j) {
      acc = q.add(acc, q.mul(h.at(i, j), r2.x[j]));
    }
    EXPECT_TRUE(q.eq(acc, b2[i])) << i;
  }
}

#if KP_FAULT_INJECTION_ENABLED
TEST(SessionTest, QuarantineTripsOnMismatchStreakAndResets) {
  Fixture fx(16);
  SessionOptions opt;
  opt.retry_budget = 5;
  opt.quarantine_threshold = 3;
  Session<F> sess(f, fx.box(), 5, opt);
  {
    util::fault::ScopedFault fi(Stage::kVerify, /*attempt=*/-1,
                                /*site_index=*/-1, /*one_shot=*/false);
    auto item = sess.solve_one(fx.b[0]);
    EXPECT_EQ(item.status.kind(), FailureKind::kSessionQuarantined);
    EXPECT_TRUE(sess.quarantined());
    EXPECT_EQ(sess.quarantine_diag().kind, FailureKind::kVerifyMismatch);
  }
  // Breaker open: fails fast even though the fault is gone.
  auto fast = sess.solve_one(fx.b[0]);
  EXPECT_EQ(fast.status.kind(), FailureKind::kSessionQuarantined);
  EXPECT_EQ(fast.status.stage(), Stage::kServiceAdmission);

  sess.reset_quarantine();
  EXPECT_FALSE(sess.quarantined());
  auto ok = sess.solve_one(fx.b[0]);
  ASSERT_TRUE(ok.status.ok()) << ok.status.message();
  EXPECT_EQ(ok.x, fx.x[0]);
}

TEST(SessionTest, RetryBudgetSurvivesTransientVerifyFaults) {
  Fixture fx(16);
  SessionOptions opt;
  opt.retry_budget = 3;
  opt.quarantine_threshold = 10;  // keep the breaker out of the way
  Session<F> sess(f, fx.box(), 5, opt);
  util::fault::ScopedFault fi(Stage::kVerify, /*attempt=*/-1,
                              /*site_index=*/-1, /*one_shot=*/true);
  auto item = sess.solve_one(fx.b[0]);
  ASSERT_TRUE(item.status.ok()) << item.status.message();
  EXPECT_EQ(item.x, fx.x[0]);
  EXPECT_EQ(fi.fired(), 1u);
  EXPECT_GE(sess.prepares(), 2u);  // the redraw re-prepared the transcript
}
#endif  // KP_FAULT_INJECTION_ENABLED

// ------------------------------------------------------------------------
// core/service.h -- deterministic run_once mode
// ------------------------------------------------------------------------

ServiceConfig manual_config() {
  ServiceConfig cfg;
  cfg.dispatchers = 0;
  cfg.queue_capacity = 8;
  cfg.max_batch = 4;
  return cfg;
}

TEST(ServiceTest, SolvesExactlyAtEveryWorkerCount) {
  Fixture fx(24);
  for (const unsigned workers : {1u, 2u, 8u}) {
    pram::ExecutionContext::global().set_worker_limit(workers);
    SolverService<F> svc(f, manual_config());
    auto sid = svc.register_operator(fx.box(), 7);
    ASSERT_TRUE(sid.ok()) << sid.status().message();
    auto fut = svc.submit(sid.value(), fx.b[0]);
    EXPECT_EQ(svc.run_once(), 1u);
    auto r = fut.get();
    ASSERT_TRUE(r.status.ok()) << r.status.message();
    EXPECT_EQ(r.x, fx.x[0]);
    EXPECT_EQ(r.telemetry.level, DegradationLevel::kSingleRhs);
    EXPECT_EQ(r.telemetry.batch_size, 1u);
  }
  pram::ExecutionContext::global().set_worker_limit(0);
}

TEST(ServiceTest, CoalescesSameSessionRequestsIntoOneBatch) {
  Fixture fx(24);
  SolverService<F> svc(f, manual_config());
  auto sid = svc.register_operator(fx.box(), 7);
  ASSERT_TRUE(sid.ok());
  std::vector<std::future<SolverService<F>::Result>> futs;
  for (int i = 0; i < 3; ++i) futs.push_back(svc.submit(sid.value(), fx.b[i]));
  EXPECT_EQ(svc.run_once(), 3u);
  for (int i = 0; i < 3; ++i) {
    auto r = futs[i].get();
    ASSERT_TRUE(r.status.ok()) << r.status.message();
    EXPECT_EQ(r.x, fx.x[i]);
    EXPECT_EQ(r.telemetry.batch_size, 3u);
    EXPECT_EQ(r.telemetry.level, DegradationLevel::kBatched);
  }
  EXPECT_EQ(svc.stats().batches, 1u);
  EXPECT_EQ(svc.stats().coalesced_requests, 3u);
}

TEST(ServiceTest, BoundedQueueShedsWithOverflow) {
  Fixture fx(16);
  auto cfg = manual_config();
  cfg.queue_capacity = 2;
  SolverService<F> svc(f, cfg);
  auto sid = svc.register_operator(fx.box(), 7);
  ASSERT_TRUE(sid.ok());
  auto f1 = svc.submit(sid.value(), fx.b[0]);
  auto f2 = svc.submit(sid.value(), fx.b[1]);
  auto f3 = svc.submit(sid.value(), fx.b[2]);
  // The third was shed immediately, before any execution.
  auto r3 = f3.get();
  EXPECT_EQ(r3.status.kind(), FailureKind::kQueueOverflow);
  EXPECT_EQ(r3.status.stage(), Stage::kServiceAdmission);
  while (svc.run_once() != 0) {
  }
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
  EXPECT_EQ(svc.stats().rejected_overflow, 1u);
}

TEST(ServiceTest, UnknownSessionRejectedAtAdmission) {
  SolverService<F> svc(f, manual_config());
  auto r = svc.submit(999, std::vector<F::Element>(4, f.one())).get();
  EXPECT_EQ(r.status.kind(), FailureKind::kInvalidArgument);
  EXPECT_EQ(r.status.stage(), Stage::kServiceAdmission);
}

TEST(ServiceTest, ExpiredAndCancelledRequestsShedAtDispatch) {
  Fixture fx(16);
  SolverService<F> svc(f, manual_config());
  auto sid = svc.register_operator(fx.box(), 7);
  ASSERT_TRUE(sid.ok());

  auto expired = svc.submit(sid.value(), fx.b[0],
                            Deadline::after(std::chrono::nanoseconds(-1)));
  auto cancel = CancelFlag::make();
  auto doomed = svc.submit(sid.value(), fx.b[1], Deadline{}, cancel);
  cancel.cancel();
  auto live = svc.submit(sid.value(), fx.b[2]);

  EXPECT_EQ(svc.run_once(), 1u);  // only the live one executed
  auto re = expired.get();
  EXPECT_EQ(re.status.kind(), FailureKind::kDeadlineExceeded);
  auto rc = doomed.get();
  EXPECT_EQ(rc.status.kind(), FailureKind::kCancelled);
  auto rl = live.get();
  ASSERT_TRUE(rl.status.ok()) << rl.status.message();
  EXPECT_EQ(rl.x, fx.x[2]);
  EXPECT_EQ(svc.stats().deadline_expired, 1u);
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST(ServiceTest, ShutdownFailsQueuedAndSubsequentRequests) {
  Fixture fx(16);
  SolverService<F> svc(f, manual_config());
  auto sid = svc.register_operator(fx.box(), 7);
  ASSERT_TRUE(sid.ok());
  auto queued = svc.submit(sid.value(), fx.b[0]);
  svc.shutdown();
  EXPECT_EQ(queued.get().status.kind(), FailureKind::kShutdown);
  EXPECT_EQ(svc.submit(sid.value(), fx.b[1]).get().status.kind(),
            FailureKind::kShutdown);
  svc.shutdown();  // idempotent
}

TEST(ServiceTest, DispatcherThreadsServeManySessions) {
  Fixture fx1(24, 8, 11), fx2(24, 8, 12);
  ServiceConfig cfg;
  cfg.dispatchers = 2;
  cfg.queue_capacity = 32;
  cfg.max_batch = 4;
  SolverService<F> svc(f, cfg);
  auto s1 = svc.register_operator(fx1.box(), 7);
  auto s2 = svc.register_operator(fx2.box(), 9);
  ASSERT_TRUE(s1.ok() && s2.ok());
  std::vector<std::future<SolverService<F>::Result>> futs;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 4; ++i) {
      futs.push_back(svc.submit(s1.value(), fx1.b[i]));
      futs.push_back(svc.submit(s2.value(), fx2.b[i]));
    }
  }
  std::size_t idx = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 4; ++i) {
      auto r1 = futs[idx++].get();
      ASSERT_TRUE(r1.status.ok()) << r1.status.message();
      EXPECT_EQ(r1.x, fx1.x[i]);
      auto r2 = futs[idx++].get();
      ASSERT_TRUE(r2.status.ok()) << r2.status.message();
      EXPECT_EQ(r2.x, fx2.x[i]);
    }
  }
  EXPECT_EQ(svc.stats().completed_ok, 32u);
}

// ------------------------------------------------------------------------
// Fault matrix (deterministic, run_once mode)
// ------------------------------------------------------------------------

#if KP_FAULT_INJECTION_ENABLED
TEST(ServiceFaultMatrixTest, AdmissionFaultShedsInjected) {
  Fixture fx(16);
  SolverService<F> svc(f, manual_config());
  auto sid = svc.register_operator(fx.box(), 7);
  ASSERT_TRUE(sid.ok());
  util::fault::ScopedFault fi(Stage::kServiceAdmission);
  auto r = svc.submit(sid.value(), fx.b[0]).get();
  EXPECT_EQ(r.status.kind(), FailureKind::kQueueOverflow);
  EXPECT_TRUE(r.status.injected());
  EXPECT_EQ(fi.fired(), 1u);
}

TEST(ServiceFaultMatrixTest, BatchFaultDegradesToSingleRhsAtEveryWorkerCount) {
  Fixture fx(24);
  for (const unsigned workers : {1u, 2u, 8u}) {
    pram::ExecutionContext::global().set_worker_limit(workers);
    SolverService<F> svc(f, manual_config());
    auto sid = svc.register_operator(fx.box(), 7);
    ASSERT_TRUE(sid.ok());
    util::fault::ScopedFault fi(Stage::kServiceBatch, /*attempt=*/-1,
                                /*site_index=*/-1, /*one_shot=*/false);
    auto fut = svc.submit(sid.value(), fx.b[0]);
    EXPECT_EQ(svc.run_once(), 1u);
    auto r = fut.get();
    ASSERT_TRUE(r.status.ok()) << r.status.message();
    EXPECT_EQ(r.x, fx.x[0]);
    EXPECT_EQ(r.telemetry.level, DegradationLevel::kSingleRhs);
    EXPECT_GE(r.telemetry.attempts, 1);
    EXPECT_EQ(svc.stats().degraded_single, 1u);
  }
  pram::ExecutionContext::global().set_worker_limit(0);
}

TEST(ServiceFaultMatrixTest, ExecuteFaultSettlesOnDenseBaseline) {
  Fixture fx(16);
  SolverService<F> svc(f, manual_config());
  auto sid = svc.register_operator(fx.box(), 7);
  ASSERT_TRUE(sid.ok());
  util::fault::ScopedFault fb(Stage::kServiceBatch, -1, -1, false);
  util::fault::ScopedFault fe(Stage::kServiceExecute, -1, -1, false);
  auto fut = svc.submit(sid.value(), fx.b[0]);
  EXPECT_EQ(svc.run_once(), 1u);
  auto r = fut.get();
  ASSERT_TRUE(r.status.ok()) << r.status.message();
  EXPECT_EQ(r.x, fx.x[0]);
  EXPECT_EQ(r.telemetry.level, DegradationLevel::kDenseBaseline);
  EXPECT_EQ(svc.stats().degraded_dense, 1u);
}

TEST(ServiceFaultMatrixTest, QuarantineTripsFailsFastAndResets) {
  Fixture fx(16);
  auto cfg = manual_config();
  cfg.session.retry_budget = 5;
  cfg.session.quarantine_threshold = 2;
  SolverService<F> svc(f, cfg);
  auto sid = svc.register_operator(fx.box(), 7);
  ASSERT_TRUE(sid.ok());
  {
    util::fault::ScopedFault fi(Stage::kVerify, -1, -1, /*one_shot=*/false);
    auto fut = svc.submit(sid.value(), fx.b[0]);
    EXPECT_EQ(svc.run_once(), 1u);
    // The persistent verify fault burns through the mismatch streak until
    // the breaker trips; the trip is FINAL for the in-flight request (no
    // degradation past an open breaker -- the session's transcript is the
    // suspect, not the route).
    auto r = fut.get();
    EXPECT_EQ(r.status.kind(), FailureKind::kSessionQuarantined);
    EXPECT_TRUE(svc.session(sid.value())->quarantined());
    EXPECT_EQ(svc.session(sid.value())->quarantine_diag().kind,
              FailureKind::kVerifyMismatch);
  }
  // Breaker open: fail fast with the quarantine kind, no degradation.
  auto fut = svc.submit(sid.value(), fx.b[1]);
  EXPECT_EQ(svc.run_once(), 1u);
  auto r = fut.get();
  EXPECT_EQ(r.status.kind(), FailureKind::kSessionQuarantined);
  EXPECT_TRUE(r.x.empty());
  EXPECT_GE(svc.stats().quarantine_rejections, 1u);

  ASSERT_TRUE(svc.reset_session(sid.value()));
  auto fut2 = svc.submit(sid.value(), fx.b[2]);
  EXPECT_EQ(svc.run_once(), 1u);
  auto r2 = fut2.get();
  ASSERT_TRUE(r2.status.ok()) << r2.status.message();
  EXPECT_EQ(r2.x, fx.x[2]);
}

TEST(ServiceFaultMatrixTest, DeadlineAtEachServiceStage) {
  Fixture fx(16);
  // kServiceAdmission: expired while queued (shed at dispatch).
  {
    SolverService<F> svc(f, manual_config());
    auto sid = svc.register_operator(fx.box(), 7);
    ASSERT_TRUE(sid.ok());
    auto fut = svc.submit(sid.value(), fx.b[0],
                          Deadline::after(std::chrono::nanoseconds(-1)));
    svc.run_once();
    auto r = fut.get();
    EXPECT_EQ(r.status.kind(), FailureKind::kDeadlineExceeded);
    EXPECT_EQ(r.status.stage(), Stage::kServiceAdmission);
  }
  // kServiceBatch / kDraw: expired control at the session boundary.
  {
    Session<F> sess(f, fx.box(), 5);
    ASSERT_TRUE(sess.prepare().ok());
    ExecControl expired(Deadline::after(std::chrono::nanoseconds(-1)));
    std::vector<const std::vector<F::Element>*> rhs{&fx.b[0]};
    auto out = sess.solve_many(rhs, &expired);
    EXPECT_EQ(out.items[0].status.kind(), FailureKind::kDeadlineExceeded);
    EXPECT_EQ(out.items[0].status.stage(), Stage::kServiceBatch);
  }
  // kVerify: a live batch whose one member expired (per-member token).
  {
    Session<F> sess(f, fx.box(), 5);
    ExecControl expired(Deadline::after(std::chrono::nanoseconds(-1)));
    ExecControl live;
    std::vector<const std::vector<F::Element>*> rhs{&fx.b[0], &fx.b[1]};
    std::vector<const ExecControl*> members{&live, &expired};
    auto out = sess.solve_many(rhs, nullptr, &members);
    ASSERT_TRUE(out.items[0].status.ok());
    EXPECT_EQ(out.items[0].x, fx.x[0]);
    EXPECT_EQ(out.items[1].status.kind(), FailureKind::kDeadlineExceeded);
    EXPECT_EQ(out.items[1].status.stage(), Stage::kVerify);
  }
}
#endif  // KP_FAULT_INJECTION_ENABLED

// ------------------------------------------------------------------------
// pram::ExecutionContext shutdown contract (satellite: no UB after
// shutdown; Status error instead)
// ------------------------------------------------------------------------

TEST(ExecutionContextShutdownTest, ParallelForStatusAfterShutdownIsError) {
  pram::ExecutionContext ctx;
  std::atomic<int> hits{0};
  auto st = ctx.parallel_for_status(0, 64,
                                    [&](std::size_t) { hits.fetch_add(1); });
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(hits.load(), 64);

  ctx.shutdown();
  EXPECT_TRUE(ctx.is_shutdown());
  st = ctx.parallel_for_status(0, 64,
                               [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(st.kind(), FailureKind::kShutdown);
  EXPECT_EQ(hits.load(), 64);  // nothing ran
  ctx.shutdown();              // idempotent
}

TEST(ExecutionContextShutdownTest, VoidParallelForAfterShutdownRunsSerial) {
  pram::ExecutionContext ctx;
  ctx.shutdown();
  // The void API cannot report; it must still complete the region (serial
  // fallback), not crash or deadlock.
  std::vector<int> hits(128, 0);
  ctx.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ExecutionContextShutdownTest, ParallelForStatusHonorsControl) {
  pram::ExecutionContext ctx;
  ExecControl expired(Deadline::after(std::chrono::nanoseconds(-1)));
  std::atomic<int> hits{0};
  auto st = ctx.parallel_for_status(
      0, 64, [&](std::size_t) { hits.fetch_add(1); }, 0, &expired);
  EXPECT_EQ(st.kind(), FailureKind::kDeadlineExceeded);
  EXPECT_EQ(hits.load(), 0);
}

TEST(ExecutionContextShutdownTest, ShutdownRacesSafelyWithSubmitters) {
  // TSan target: concurrent parallel_for_status calls racing shutdown()
  // must each either complete fully or report kShutdown -- never UB.
  for (int rep = 0; rep < 8; ++rep) {
    pram::ExecutionContext ctx;
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> refused{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&ctx, &completed, &refused] {
        for (int i = 0; i < 50; ++i) {
          std::atomic<int> hits{0};
          const auto st = ctx.parallel_for_status(
              0, 32, [&](std::size_t) { hits.fetch_add(1); });
          if (st.ok()) {
            if (hits.load() == 32) completed.fetch_add(1);
          } else if (st.kind() == FailureKind::kShutdown) {
            refused.fetch_add(1);
          }
        }
      });
    }
    std::this_thread::yield();
    ctx.shutdown();
    for (auto& th : submitters) th.join();
    EXPECT_EQ(completed.load() + refused.load(), 4u * 50u);
  }
}

// ------------------------------------------------------------------------
// Soak: sustained mixed load with randomized faults; every answered
// request exact, every shed accounted for, no leaks (ASan job), no
// deadlock.
// ------------------------------------------------------------------------

TEST(ServiceSoakTest, TenThousandRequestsWithRandomizedFaults) {
  Fixture fx(16, 16, 21);
  ServiceConfig cfg;
  cfg.dispatchers = 2;
  cfg.queue_capacity = 16;
  cfg.max_batch = 8;
  cfg.session.quarantine_threshold = 2;
  SolverService<F> svc(f, cfg);
  auto sid = svc.register_operator(fx.box(), 7);
  ASSERT_TRUE(sid.ok()) << sid.status().message();

  util::Prng prng(2026);
  const std::size_t total = 10'000;
  std::size_t issued = 0, exact = 0, shed = 0, control_failed = 0,
              quarantined = 0;
  while (issued < total) {
    const std::size_t wave =
        std::min<std::size_t>(cfg.queue_capacity, total - issued);
#if KP_FAULT_INJECTION_ENABLED
    // Roughly every third wave runs under a one-shot service-stage fault.
    std::unique_ptr<util::fault::ScopedFault> fault;
    switch (prng() % 6) {
      case 0:
        fault = std::make_unique<util::fault::ScopedFault>(
            Stage::kServiceBatch);
        break;
      case 1:
        fault = std::make_unique<util::fault::ScopedFault>(
            Stage::kServiceExecute);
        break;
      default:
        break;
    }
#endif
    std::vector<std::future<SolverService<F>::Result>> futs;
    for (std::size_t i = 0; i < wave; ++i, ++issued) {
      // A few requests per wave carry a tight or absurd deadline.
      Deadline dl;
      if (prng() % 8 == 0) {
        dl = Deadline::after(std::chrono::nanoseconds(
            static_cast<std::int64_t>(prng() % 2 == 0 ? -1 : 50)));
      }
      futs.push_back(
          svc.submit(sid.value(), fx.b[issued % fx.b.size()], dl));
    }
    for (std::size_t i = 0; i < futs.size(); ++i) {
      auto r = futs[i].get();
      const std::size_t k = (issued - wave + i) % fx.b.size();
      if (r.status.ok()) {
        ASSERT_EQ(r.x, fx.x[k]) << "soak returned a WRONG answer";
        ++exact;
      } else if (r.status.kind() == FailureKind::kQueueOverflow) {
        ++shed;
      } else if (util::is_control_failure(r.status.kind())) {
        ++control_failed;
      } else if (r.status.kind() == FailureKind::kSessionQuarantined) {
        ++quarantined;
        svc.reset_session(sid.value());
      } else {
        FAIL() << "unexpected soak failure: " << r.status.message();
      }
    }
  }
  EXPECT_EQ(exact + shed + control_failed + quarantined, total);
  EXPECT_GT(exact, total / 2);  // the service mostly answered
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, total);
  EXPECT_EQ(s.completed_ok, exact);
  EXPECT_EQ(s.rejected_overflow, shed);
}

}  // namespace
}  // namespace kp

// Tests for the matrix substrate: dense ops, matmul kernel agreement,
// Gaussian elimination invariants, structured matrices (Toeplitz/Hankel/
// Vandermonde), sparse CSR, black boxes, and matrix-polynomial evaluation.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "field/rational.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "matrix/matmul.h"
#include "matrix/matpoly.h"
#include "matrix/sparse.h"
#include "matrix/structured.h"
#include "poly/poly.h"
#include "util/prng.h"

namespace kp {
namespace {

using field::BigInt;
using field::RationalField;
using field::Zp;
using matrix::MatMulStrategy;
using matrix::Matrix;

using F = Zp<1000003>;
using M = Matrix<F>;

F f;

M random_mat(std::size_t n, util::Prng& prng) {
  return matrix::random_matrix(f, n, n, prng);
}

// ---------------------------------------------------------------------------
// Dense operations and matmul.

TEST(DenseTest, IdentityAndZero) {
  auto id = matrix::identity_matrix(f, 4);
  auto z = matrix::zero_matrix(f, 4, 4);
  util::Prng prng(1);
  auto a = random_mat(4, prng);
  EXPECT_TRUE(matrix::mat_eq(f, matrix::mat_mul(f, a, id), a));
  EXPECT_TRUE(matrix::mat_eq(f, matrix::mat_mul(f, id, a), a));
  EXPECT_TRUE(matrix::mat_eq(f, matrix::mat_add(f, a, z), a));
  EXPECT_TRUE(matrix::mat_eq(f, matrix::mat_sub(f, a, a), z));
}

TEST(DenseTest, MatVecAgreesWithMatMul) {
  util::Prng prng(2);
  auto a = random_mat(7, prng);
  std::vector<F::Element> x(7);
  for (auto& v : x) v = f.random(prng);
  auto y = matrix::mat_vec(f, a, x);
  // Compare against column-matrix multiplication.
  M xc(7, 1, f.zero());
  for (std::size_t i = 0; i < 7; ++i) xc.at(i, 0) = x[i];
  auto yc = matrix::mat_mul(f, a, xc);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(y[i], yc.at(i, 0));
}

TEST(DenseTest, VecMatIsTransposedMatVec) {
  util::Prng prng(3);
  auto a = random_mat(6, prng);
  std::vector<F::Element> x(6);
  for (auto& v : x) v = f.random(prng);
  auto lhs = matrix::vec_mat(f, x, a);
  auto rhs = matrix::mat_vec(f, matrix::mat_transpose(f, a), x);
  EXPECT_EQ(lhs, rhs);
}

TEST(MatMulTest, StrassenMatchesClassical) {
  util::Prng prng(4);
  for (std::size_t n : {1u, 2u, 5u, 16u, 33u, 70u}) {
    auto a = random_mat(n, prng);
    auto b = random_mat(n, prng);
    auto c1 = matrix::mat_mul(f, a, b, MatMulStrategy::kClassical);
    auto c2 = matrix::mat_mul(f, a, b, MatMulStrategy::kStrassen, 8);
    EXPECT_TRUE(matrix::mat_eq(f, c1, c2)) << "n=" << n;
  }
}

TEST(MatMulTest, StrassenRectangular) {
  util::Prng prng(5);
  auto a = matrix::random_matrix(f, 13, 37, prng);
  auto b = matrix::random_matrix(f, 37, 9, prng);
  auto c1 = matrix::mat_mul(f, a, b, MatMulStrategy::kClassical);
  auto c2 = matrix::mat_mul(f, a, b, MatMulStrategy::kStrassen, 4);
  EXPECT_TRUE(matrix::mat_eq(f, c1, c2));
}

TEST(MatMulTest, Associativity) {
  util::Prng prng(6);
  auto a = random_mat(9, prng);
  auto b = random_mat(9, prng);
  auto c = random_mat(9, prng);
  auto lhs = matrix::mat_mul(f, matrix::mat_mul(f, a, b), c);
  auto rhs = matrix::mat_mul(f, a, matrix::mat_mul(f, b, c));
  EXPECT_TRUE(matrix::mat_eq(f, lhs, rhs));
}

// ---------------------------------------------------------------------------
// Gaussian elimination.

TEST(GaussTest, PluReconstructsMatrix) {
  util::Prng prng(7);
  for (std::size_t n : {1u, 3u, 8u, 20u}) {
    auto a = random_mat(n, prng);
    auto fac = matrix::plu_decompose(f, a);
    // Rebuild L and U and check L*U == P*A.
    M l = matrix::identity_matrix(f, n);
    M u = matrix::zero_matrix(f, n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (j < i) l.at(i, j) = fac.lu.at(i, j);
        else u.at(i, j) = fac.lu.at(i, j);
      }
    }
    auto lu = matrix::mat_mul(f, l, u);
    M pa(n, n, f.zero());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) pa.at(i, j) = a.at(fac.perm[i], j);
    }
    EXPECT_TRUE(matrix::mat_eq(f, lu, pa)) << "n=" << n;
  }
}

TEST(GaussTest, DeterminantMultiplicative) {
  util::Prng prng(8);
  auto a = random_mat(8, prng);
  auto b = random_mat(8, prng);
  auto dab = matrix::det_gauss(f, matrix::mat_mul(f, a, b));
  EXPECT_EQ(dab, f.mul(matrix::det_gauss(f, a), matrix::det_gauss(f, b)));
}

TEST(GaussTest, DeterminantKnown2x2) {
  M a(2, 2, f.zero());
  a.at(0, 0) = 3;
  a.at(0, 1) = 7;
  a.at(1, 0) = 2;
  a.at(1, 1) = 5;
  EXPECT_EQ(matrix::det_gauss(f, a), f.one());  // 15 - 14
}

TEST(GaussTest, SolveRoundTrip) {
  util::Prng prng(9);
  for (std::size_t n : {1u, 4u, 12u}) {
    auto a = random_mat(n, prng);
    if (f.is_zero(matrix::det_gauss(f, a))) continue;
    std::vector<F::Element> x(n);
    for (auto& v : x) v = f.random(prng);
    auto b = matrix::mat_vec(f, a, x);
    auto sol = matrix::solve_gauss(f, a, b);
    ASSERT_TRUE(sol.has_value());
    EXPECT_EQ(*sol, x);
  }
}

TEST(GaussTest, SolveDetectsSingular) {
  // Rank-1 matrix.
  util::Prng prng(10);
  M a(3, 3, f.zero());
  for (std::size_t j = 0; j < 3; ++j) {
    a.at(0, j) = f.random(prng);
    a.at(1, j) = f.mul(a.at(0, j), 2);
    a.at(2, j) = f.mul(a.at(0, j), 3);
  }
  std::vector<F::Element> b{1, 0, 0};
  EXPECT_FALSE(matrix::solve_gauss(f, a, b).has_value());
  EXPECT_EQ(matrix::rank_gauss(f, a), 1u);
  EXPECT_TRUE(f.is_zero(matrix::det_gauss(f, a)));
}

TEST(GaussTest, InverseRoundTrip) {
  util::Prng prng(11);
  auto a = random_mat(10, prng);
  auto inv = matrix::inverse_gauss(f, a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(matrix::mat_eq(f, matrix::mat_mul(f, a, *inv),
                             matrix::identity_matrix(f, 10)));
  EXPECT_TRUE(matrix::mat_eq(f, matrix::mat_mul(f, *inv, a),
                             matrix::identity_matrix(f, 10)));
}

TEST(GaussTest, RankOfOuterProductSums) {
  util::Prng prng(12);
  const std::size_t n = 10;
  for (std::size_t r = 0; r <= 5; ++r) {
    // Sum of r random rank-1 matrices has rank r (w.h.p. over a large field).
    M a = matrix::zero_matrix(f, n, n);
    for (std::size_t k = 0; k < r; ++k) {
      std::vector<F::Element> u(n), v(n);
      for (auto& e : u) e = f.random(prng);
      for (auto& e : v) e = f.random(prng);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          a.at(i, j) = f.add(a.at(i, j), f.mul(u[i], v[j]));
        }
      }
    }
    EXPECT_EQ(matrix::rank_gauss(f, a), r);
  }
}

TEST(GaussTest, NullspaceAnnihilates) {
  util::Prng prng(13);
  const std::size_t n = 9;
  // Build a matrix of rank 5.
  auto left = matrix::random_matrix(f, n, 5, prng);
  auto right = matrix::random_matrix(f, 5, n, prng);
  auto a = matrix::mat_mul(f, left, right);
  auto ns = matrix::nullspace_gauss(f, a);
  EXPECT_EQ(ns.cols(), n - 5);
  auto prod = matrix::mat_mul(f, a, ns);
  EXPECT_TRUE(matrix::mat_eq(f, prod, matrix::zero_matrix(f, n, n - 5)));
  // The basis has full column rank.
  EXPECT_EQ(matrix::rank_gauss(f, ns), n - 5);
}

TEST(GaussTest, WorksOverRationals) {
  RationalField q;
  Matrix<RationalField> a(2, 2, q.zero());
  a.at(0, 0) = field::Rational(1);
  a.at(0, 1) = field::Rational(BigInt(1), BigInt(2));
  a.at(1, 0) = field::Rational(BigInt(1), BigInt(3));
  a.at(1, 1) = field::Rational(BigInt(1), BigInt(4));
  // det = 1/4 - 1/6 = 1/12.
  EXPECT_EQ(matrix::det_gauss(q, a).to_string(), "1/12");
  auto inv = matrix::inverse_gauss(q, a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(matrix::mat_eq(q, matrix::mat_mul(q, a, *inv),
                             matrix::identity_matrix(q, 2)));
}

// ---------------------------------------------------------------------------
// Structured matrices.

TEST(ToeplitzTest, LayoutMatchesPaper) {
  // Paper layout (4): T(0, n-1) = a_0, T(0, 0) = a_{n-1}, T(n-1, 0) = a_{2n-2}.
  std::vector<F::Element> a{10, 11, 12, 13, 14};  // n = 3
  matrix::Toeplitz<F> t(3, a);
  EXPECT_EQ(t.at(0, 2), 10u);
  EXPECT_EQ(t.at(0, 0), 12u);
  EXPECT_EQ(t.at(2, 0), 14u);
  EXPECT_EQ(t.at(1, 1), 12u);  // constant diagonals
  EXPECT_EQ(t.at(2, 2), 12u);
}

TEST(ToeplitzTest, ApplyMatchesDense) {
  util::Prng prng(14);
  poly::PolyRing<F> ring(f);
  for (std::size_t n : {1u, 2u, 5u, 16u, 31u}) {
    std::vector<F::Element> diag(2 * n - 1);
    for (auto& v : diag) v = f.random(prng);
    matrix::Toeplitz<F> t(n, diag);
    std::vector<F::Element> x(n);
    for (auto& v : x) v = f.random(prng);
    EXPECT_EQ(t.apply(ring, x), matrix::mat_vec(f, t.to_dense(f), x)) << n;
    EXPECT_EQ(t.apply_transpose(ring, x),
              matrix::mat_vec(f, matrix::mat_transpose(f, t.to_dense(f)), x))
        << n;
  }
}

TEST(HankelTest, ApplyMatchesDenseAndIsSymmetric) {
  util::Prng prng(15);
  poly::PolyRing<F> ring(f);
  for (std::size_t n : {1u, 3u, 8u, 21u}) {
    auto h = matrix::Hankel<F>::random(f, n, prng, 1u << 20);
    std::vector<F::Element> x(n);
    for (auto& v : x) v = f.random(prng);
    auto dense = h.to_dense(f);
    EXPECT_EQ(h.apply(ring, x), matrix::mat_vec(f, dense, x)) << n;
    EXPECT_TRUE(matrix::mat_eq(f, dense, matrix::mat_transpose(f, dense)));
  }
}

TEST(HankelTest, RowMirrorIsToeplitzWithMatchingDet) {
  util::Prng prng(16);
  for (std::size_t n : {2u, 3u, 4u, 7u}) {
    auto h = matrix::Hankel<F>::random(f, n, prng, 1u << 20);
    auto t = h.row_mirror_toeplitz();
    // J*H == T entry-wise.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(h.at(n - 1 - i, j), t.at(i, j));
      }
    }
    const auto det_h = matrix::det_gauss(f, h.to_dense(f));
    const auto det_t = matrix::det_gauss(f, t.to_dense(f));
    const auto expect =
        h.mirror_det_sign() > 0 ? det_t : f.neg(det_t);
    EXPECT_EQ(det_h, expect) << n;
  }
}

TEST(VandermondeTest, DetFormulaMatchesGauss) {
  util::Prng prng(17);
  std::vector<F::Element> pts{3, 7, 19, 42, 101};
  matrix::Vandermonde<F> v(pts);
  EXPECT_EQ(v.det(f), matrix::det_gauss(f, v.to_dense(f)));
}

TEST(VandermondeTest, ApplyIsMultipointEval) {
  poly::PolyRing<F> ring(f);
  util::Prng prng(18);
  std::vector<F::Element> pts{1, 2, 3, 4};
  matrix::Vandermonde<F> v(pts);
  auto c = ring.random_degree(prng, 3);
  std::vector<F::Element> coeffs(c);
  coeffs.resize(4, f.zero());
  EXPECT_EQ(v.apply(f, coeffs), poly::multipoint_eval(ring, c, pts));
  // apply_transpose matches the dense transpose.
  std::vector<F::Element> y{5, 6, 7, 8};
  EXPECT_EQ(v.apply_transpose(f, y),
            matrix::mat_vec(f, matrix::mat_transpose(f, v.to_dense(f)), y));
}

TEST(VandermondeTest, SolveByInterpolation) {
  poly::PolyRing<F> ring(f);
  std::vector<F::Element> pts{2, 5, 11, 17};
  matrix::Vandermonde<F> v(pts);
  std::vector<F::Element> coeffs{9, 0, 3, 1};
  auto values = v.apply(f, coeffs);
  EXPECT_EQ(v.solve(ring, values), coeffs);
}

TEST(DiagonalTest, DetAndApply) {
  matrix::Diagonal<F> d(std::vector<F::Element>{2, 3, 5});
  EXPECT_EQ(d.det(f), 30u);
  std::vector<F::Element> x{1, 1, 1};
  EXPECT_EQ(d.apply(f, x), (std::vector<F::Element>{2, 3, 5}));
}

// ---------------------------------------------------------------------------
// Sparse and black boxes.

TEST(SparseTest, ApplyMatchesDense) {
  util::Prng prng(19);
  auto sp = matrix::Sparse<F>::random(f, 25, 3, prng);
  auto dense = sp.to_dense(f);
  std::vector<F::Element> x(25);
  for (auto& v : x) v = f.random(prng);
  EXPECT_EQ(sp.apply(f, x), matrix::mat_vec(f, dense, x));
  EXPECT_EQ(sp.apply_transpose(f, x),
            matrix::mat_vec(f, matrix::mat_transpose(f, dense), x));
}

TEST(SparseTest, DuplicateEntriesAreSummed) {
  using Entry = matrix::Sparse<F>::Entry;
  matrix::Sparse<F> sp(f, 2, 2, std::vector<Entry>{{0, 0, 3}, {0, 0, 4}, {1, 1, 1}});
  auto dense = sp.to_dense(f);
  EXPECT_EQ(dense.at(0, 0), 7u);
  EXPECT_EQ(dense.at(1, 1), 1u);
  EXPECT_EQ(dense.at(0, 1), 0u);
}

TEST(BlackBoxTest, ProductBoxComposes) {
  util::Prng prng(20);
  const std::size_t n = 8;
  poly::PolyRing<F> ring(f);
  auto a = random_mat(n, prng);
  auto h = matrix::Hankel<F>::random(f, n, prng, 1u << 20);
  auto d = matrix::Diagonal<F>::random(f, n, prng, 1u << 20);

  matrix::DenseBox<F> abox(f, a);
  matrix::HankelBox<F> hbox(ring, h);
  matrix::DiagonalBox<F> dbox(f, d);
  matrix::ProductBox hd(hbox, dbox);
  matrix::ProductBox ahd(abox, hd);

  // Compare against the dense product A*H*D.
  auto dense =
      matrix::mat_mul(f, a, matrix::mat_mul(f, h.to_dense(f), d.to_dense(f)));
  std::vector<F::Element> x(n);
  for (auto& v : x) v = f.random(prng);
  EXPECT_EQ(ahd.apply(x), matrix::mat_vec(f, dense, x));
}

TEST(BlackBoxTest, TransposeBox) {
  util::Prng prng(21);
  auto a = random_mat(6, prng);
  matrix::DenseBox<F> box(f, a);
  matrix::TransposeBox tbox(box);
  std::vector<F::Element> x(6);
  for (auto& v : x) v = f.random(prng);
  EXPECT_EQ(tbox.apply(x), matrix::mat_vec(f, matrix::mat_transpose(f, a), x));
}

TEST(BlackBoxTest, KrylovSequenceIterative) {
  util::Prng prng(22);
  const std::size_t n = 6;
  auto a = random_mat(n, prng);
  matrix::DenseBox<F> box(f, a);
  std::vector<F::Element> u(n), v(n);
  for (auto& e : u) e = f.random(prng);
  for (auto& e : v) e = f.random(prng);
  auto seq = matrix::krylov_sequence_iterative(f, box, u, v, 2 * n);
  // Check a few entries against explicit powers.
  auto ai = matrix::identity_matrix(f, n);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    auto uai = matrix::vec_mat(f, u, ai);
    EXPECT_EQ(seq[i], matrix::dot(f, uai, v)) << i;
    ai = matrix::mat_mul(f, ai, a);
  }
}

// ---------------------------------------------------------------------------
// Matrix polynomial evaluation.

TEST(MatPolyTest, PatersonStockmeyerMatchesHorner) {
  util::Prng prng(23);
  for (std::size_t deg : {0u, 1u, 3u, 9u, 17u}) {
    auto a = random_mat(6, prng);
    std::vector<F::Element> coeffs(deg + 1);
    for (auto& c : coeffs) c = f.random(prng);
    // Horner on matrices (reference).
    auto ref = matrix::zero_matrix(f, 6, 6);
    for (std::size_t k = coeffs.size(); k-- > 0;) {
      ref = matrix::mat_mul(f, ref, a);
      for (std::size_t i = 0; i < 6; ++i) {
        ref.at(i, i) = f.add(ref.at(i, i), coeffs[k]);
      }
    }
    auto ps = matrix::matrix_poly_eval(f, a, coeffs);
    EXPECT_TRUE(matrix::mat_eq(f, ref, ps)) << deg;
  }
}

TEST(MatPolyTest, ApplyMatchesEval) {
  util::Prng prng(24);
  auto a = random_mat(5, prng);
  std::vector<F::Element> coeffs(7);
  for (auto& c : coeffs) c = f.random(prng);
  std::vector<F::Element> b(5);
  for (auto& e : b) e = f.random(prng);
  auto via_eval = matrix::mat_vec(f, matrix::matrix_poly_eval(f, a, coeffs), b);
  auto via_apply = matrix::matrix_poly_apply(f, a, coeffs, b);
  EXPECT_EQ(via_eval, via_apply);
}

}  // namespace
}  // namespace kp

// Tests for the core pipeline: Krylov doubling (9), preconditioners
// (Theorem 2), the Theorem-4 solver/determinant, Wiedemann's black-box
// algorithms (section 2), the baselines (Csanky, Faddeev-LeVerrier,
// Berkowitz, Chistov), and the section-5 extensions.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/annihilator.h"
#include "core/baselines.h"
#include "core/extensions.h"
#include "core/field_lift.h"
#include "core/krylov.h"
#include "core/preconditioners.h"
#include "core/small_char.h"
#include "core/solver.h"
#include "core/wiedemann.h"
#include "field/gfpk.h"
#include "field/rational.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/gauss.h"
#include "seq/newton_toeplitz.h"
#include "util/prng.h"

namespace kp {
namespace {

using field::BigInt;
using field::GFpk;
using field::Rational;
using field::RationalField;
using field::Zp;
using matrix::Matrix;

using F = Zp<1000003>;
F f;

Matrix<F> random_mat(std::size_t n, util::Prng& prng) {
  return matrix::random_matrix(f, n, n, prng);
}

// ---------------------------------------------------------------------------
// Krylov doubling.

TEST(KrylovTest, BlockColumnsArePowers) {
  util::Prng prng(1);
  const std::size_t n = 7;
  auto a = random_mat(n, prng);
  std::vector<F::Element> v(n);
  for (auto& e : v) e = f.random(prng);
  for (std::size_t count : {1u, 2u, 3u, 7u, 14u}) {
    auto block = core::krylov_block(f, a, v, count);
    ASSERT_EQ(block.cols(), count);
    auto w = v;
    for (std::size_t j = 0; j < count; ++j) {
      if (j) w = matrix::mat_vec(f, a, w);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(block.at(i, j), w[i]) << "count=" << count << " col=" << j;
      }
    }
  }
}

TEST(KrylovTest, DoublingMatchesIterative) {
  util::Prng prng(2);
  for (std::size_t n : {1u, 2u, 5u, 12u}) {
    auto a = random_mat(n, prng);
    std::vector<F::Element> u(n), v(n);
    for (auto& e : u) e = f.random(prng);
    for (auto& e : v) e = f.random(prng);
    matrix::DenseBox<F> box(f, a);
    EXPECT_EQ(core::krylov_sequence_doubling(f, a, u, v, 2 * n),
              matrix::krylov_sequence_iterative(f, box, u, v, 2 * n))
        << n;
  }
}

TEST(KrylovTest, DoublingWithStrassen) {
  util::Prng prng(3);
  const std::size_t n = 9;
  auto a = random_mat(n, prng);
  std::vector<F::Element> u(n), v(n);
  for (auto& e : u) e = f.random(prng);
  for (auto& e : v) e = f.random(prng);
  EXPECT_EQ(core::krylov_sequence_doubling(f, a, u, v, 2 * n,
                                           matrix::MatMulStrategy::kStrassen),
            core::krylov_sequence_doubling(f, a, u, v, 2 * n,
                                           matrix::MatMulStrategy::kClassical));
}

// ---------------------------------------------------------------------------
// Preconditioner (Theorem 2).

TEST(PreconditionerTest, DenseProductMatchesExplicit) {
  util::Prng prng(4);
  poly::PolyRing<F> ring(f);
  const std::size_t n = 8;
  auto a = random_mat(n, prng);
  auto pre = core::Preconditioner<F>::draw(f, n, prng, 1u << 20);
  auto at = pre.apply_dense(f, ring, a);
  auto expect = matrix::mat_mul(
      f, a,
      matrix::mat_mul(f, pre.hankel.to_dense(f), pre.diagonal.to_dense(f)));
  EXPECT_TRUE(matrix::mat_eq(f, at, expect));
}

TEST(PreconditionerTest, DetMatchesGauss) {
  util::Prng prng(5);
  for (std::size_t n : {1u, 2u, 5u, 9u}) {
    auto pre = core::Preconditioner<F>::draw(f, n, prng, 1u << 20);
    auto expect = f.mul(matrix::det_gauss(f, pre.hankel.to_dense(f)),
                        pre.diagonal.det(f));
    EXPECT_EQ(pre.det(f), expect) << n;
  }
}

TEST(PreconditionerTest, LeadingMinorsNonzeroWithHighProbability) {
  // Theorem 2's guarantee, spot-checked: for a non-singular A and a large
  // sample set, all leading principal minors of A*H are non-zero.
  util::Prng prng(6);
  poly::PolyRing<F> ring(f);
  const std::size_t n = 7;
  int successes = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto a = random_mat(n, prng);
    if (f.is_zero(matrix::det_gauss(f, a))) continue;
    auto h = matrix::Hankel<F>::random(f, n, prng, 1u << 20);
    auto ah = matrix::mat_mul(f, a, h.to_dense(f));
    bool all_nonzero = true;
    for (std::size_t i = 1; i <= n; ++i) {
      if (f.is_zero(matrix::det_gauss(f, matrix::leading_principal(f, ah, i)))) {
        all_nonzero = false;
        break;
      }
    }
    successes += all_nonzero;
  }
  EXPECT_GE(successes, 19);  // bound: failure <= n(n-1)/2 / 2^20 per trial
}

// ---------------------------------------------------------------------------
// Theorem-4 solver.

TEST(SolverTest, SolveMatchesGauss) {
  util::Prng prng(7);
  for (std::size_t n : {1u, 2u, 4u, 8u, 13u, 20u}) {
    auto a = random_mat(n, prng);
    if (f.is_zero(matrix::det_gauss(f, a))) continue;
    std::vector<F::Element> x(n);
    for (auto& e : x) e = f.random(prng);
    auto b = matrix::mat_vec(f, a, x);
    auto res = core::kp_solve(f, a, b, prng);
    ASSERT_TRUE(res.ok) << n;
    EXPECT_EQ(res.x, x) << n;
  }
}

TEST(SolverTest, DetMatchesGauss) {
  util::Prng prng(8);
  for (std::size_t n : {1u, 2u, 5u, 10u, 17u}) {
    auto a = random_mat(n, prng);
    auto res = core::kp_det(f, a, prng);
    const auto expect = matrix::det_gauss(f, a);
    if (f.is_zero(expect)) continue;  // singular: pipeline correctly fails
    ASSERT_TRUE(res.ok) << n;
    EXPECT_EQ(res.det, expect) << n;
  }
}

TEST(SolverTest, DetAlsoReportedBySolve) {
  util::Prng prng(9);
  const std::size_t n = 9;
  auto a = random_mat(n, prng);
  std::vector<F::Element> b(n);
  for (auto& e : b) e = f.random(prng);
  auto res = core::kp_solve(f, a, b, prng);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.det, matrix::det_gauss(f, a));
}

TEST(SolverTest, CharpolyOfPreconditionedIsAnnihilating) {
  // res.charpoly_at annihilates A-tilde; at minimum check degree and g0.
  util::Prng prng(10);
  const std::size_t n = 6;
  auto a = random_mat(n, prng);
  std::vector<F::Element> b(n);
  for (auto& e : b) e = f.random(prng);
  auto res = core::kp_solve(f, a, b, prng);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.charpoly_at.size(), n + 1);
  EXPECT_EQ(res.charpoly_at[n], f.one());
  EXPECT_FALSE(f.is_zero(res.charpoly_at[0]));
}

TEST(SolverTest, SingularInputReportsFailure) {
  util::Prng prng(11);
  const std::size_t n = 6;
  // Rank-deficient A.
  auto left = matrix::random_matrix(f, n, n - 2, prng);
  auto right = matrix::random_matrix(f, n - 2, n, prng);
  auto a = matrix::mat_mul(f, left, right);
  std::vector<F::Element> b(n);
  for (auto& e : b) e = f.random(prng);
  auto res = core::kp_solve(f, a, b, prng);
  EXPECT_FALSE(res.ok);
}

TEST(SolverTest, StrassenAndExpNewtonVariants) {
  util::Prng prng(12);
  const std::size_t n = 11;
  auto a = random_mat(n, prng);
  std::vector<F::Element> x(n);
  for (auto& e : x) e = f.random(prng);
  auto b = matrix::mat_vec(f, a, x);
  core::SolverOptions opt;
  opt.matmul = matrix::MatMulStrategy::kStrassen;
  opt.newton = seq::NewtonIdentityMethod::kPowerSeriesExp;
  auto res = core::kp_solve(f, a, b, prng, opt);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.x, x);
}

TEST(SolverTest, WorksOverRationals) {
  RationalField q;
  util::Prng prng(13);
  const std::size_t n = 4;
  Matrix<RationalField> a(n, n, q.zero());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) = q.sample(prng, 64);
    }
  }
  if (q.is_zero(matrix::det_gauss(q, a))) GTEST_SKIP();
  std::vector<Rational> x{Rational(1), Rational(BigInt(1), BigInt(2)),
                          Rational(-3), Rational(BigInt(2), BigInt(5))};
  auto b = matrix::mat_vec(q, a, x);
  auto res = core::kp_solve(q, a, b, prng);
  ASSERT_TRUE(res.ok);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(q.eq(res.x[i], x[i])) << i;
  }
  EXPECT_TRUE(q.eq(res.det, matrix::det_gauss(q, a)));
}

// ---------------------------------------------------------------------------
// Wiedemann (section 2).

TEST(WiedemannTest, MinpolyAnnihilatesMatrix) {
  util::Prng prng(14);
  const std::size_t n = 8;
  auto a = random_mat(n, prng);
  matrix::DenseBox<F> box(f, a);
  auto mp = core::wiedemann_minpoly(f, box, prng, 1u << 20);
  // mp divides the characteristic polynomial; check mp(A) v = 0 on a few
  // random vectors (sufficient for this probabilistic check).
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<F::Element> v(n);
    for (auto& e : v) e = f.random(prng);
    auto acc = std::vector<F::Element>(n, f.zero());
    auto w = v;
    for (std::size_t k = 0; k < mp.size(); ++k) {
      if (k) w = matrix::mat_vec(f, a, w);
      for (std::size_t i = 0; i < n; ++i) {
        acc[i] = f.add(acc[i], f.mul(mp[k], w[i]));
      }
    }
    EXPECT_EQ(acc, std::vector<F::Element>(n, f.zero()));
  }
}

TEST(WiedemannTest, SolveSparseSystem) {
  util::Prng prng(15);
  const std::size_t n = 30;
  auto sp = matrix::Sparse<F>::random(f, n, 3, prng);
  matrix::SparseBox<F> box(f, sp);
  std::vector<F::Element> x(n);
  for (auto& e : x) e = f.random(prng);
  auto b = sp.apply(f, x);
  auto sol = core::wiedemann_solve(f, box, b, prng, 1u << 20);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sp.apply(f, *sol), b);
}

TEST(WiedemannTest, DetMatchesGauss) {
  util::Prng prng(16);
  for (std::size_t n : {2u, 5u, 9u, 15u}) {
    auto a = random_mat(n, prng);
    auto expect = matrix::det_gauss(f, a);
    if (f.is_zero(expect)) continue;
    auto res = core::wiedemann_det(f, a, prng, 1u << 20);
    ASSERT_TRUE(res.ok) << n;
    EXPECT_EQ(res.value, expect) << n;
  }
}

TEST(WiedemannTest, SingularTestDetectsSingular) {
  util::Prng prng(17);
  const std::size_t n = 8;
  // Singular: one row is a multiple of another.
  auto a = random_mat(n, prng);
  for (std::size_t j = 0; j < n; ++j) a.at(1, j) = f.mul(a.at(0, j), 7);
  matrix::DenseBox<F> box(f, a);
  EXPECT_TRUE(core::wiedemann_singular_test(f, box, prng, 1u << 20));
  // Non-singular: never reports singular.
  auto g = random_mat(n, prng);
  if (!f.is_zero(matrix::det_gauss(f, g))) {
    matrix::DenseBox<F> gbox(f, g);
    EXPECT_FALSE(core::wiedemann_singular_test(f, gbox, prng, 1u << 20));
  }
}

TEST(WiedemannTest, SolveOverGF256) {
  GFpk gf(2, 8);
  util::Prng prng(18);
  const std::size_t n = 6;
  auto a = matrix::random_matrix(gf, n, n, prng);
  if (gf.is_zero(matrix::det_gauss(gf, a))) GTEST_SKIP();
  std::vector<GFpk::Element> x;
  for (std::size_t i = 0; i < n; ++i) x.push_back(gf.random(prng));
  auto b = matrix::mat_vec(gf, a, x);
  matrix::DenseBox<GFpk> box(gf, a);
  auto sol = core::wiedemann_solve(gf, box, b, prng, 256);
  ASSERT_TRUE(sol.has_value());
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(gf.eq((*sol)[i], x[i]));
}

// ---------------------------------------------------------------------------
// Baselines.

std::vector<F::Element> dense_charpoly_ref(const Matrix<F>& a) {
  // Faddeev-LeVerrier as the independent reference.
  return core::faddeev_leverrier(f, a).charpoly;
}

TEST(BaselinesTest, AllMethodsAgree) {
  util::Prng prng(19);
  for (std::size_t n : {1u, 2u, 3u, 6u, 10u}) {
    auto a = random_mat(n, prng);
    auto ref = dense_charpoly_ref(a);
    EXPECT_EQ(core::charpoly_csanky(f, a), ref) << n;
    EXPECT_EQ(core::charpoly_berkowitz(f, a), ref) << n;
    EXPECT_EQ(core::charpoly_chistov(f, a), ref) << n;
  }
}

TEST(BaselinesTest, CharpolyConstantTermIsDet) {
  util::Prng prng(20);
  const std::size_t n = 7;
  auto a = random_mat(n, prng);
  auto p = core::charpoly_berkowitz(f, a);
  auto det = matrix::det_gauss(f, a);
  // p(0) = (-1)^n det(A); n = 7 odd.
  EXPECT_EQ(p[0], f.neg(det));
}

TEST(BaselinesTest, FaddeevInverse) {
  util::Prng prng(21);
  const std::size_t n = 6;
  auto a = random_mat(n, prng);
  auto res = core::faddeev_leverrier(f, a);
  if (f.is_zero(res.c_n)) GTEST_SKIP();
  // A^{-1} = N_{n-1} / c_n.
  auto inv = matrix::mat_scale(f, f.inv(res.c_n), res.adjoint_like);
  EXPECT_TRUE(matrix::mat_eq(f, matrix::mat_mul(f, a, inv),
                             matrix::identity_matrix(f, n)));
}

TEST(BaselinesTest, BerkowitzAndChistovOverGF4) {
  // Characteristic 2: Csanky/Faddeev are out; Berkowitz and Chistov agree.
  GFpk gf(2, 2);
  util::Prng prng(22);
  for (std::size_t n : {1u, 2u, 4u, 6u}) {
    auto a = matrix::random_matrix(gf, n, n, prng);
    auto pb = core::charpoly_berkowitz(gf, a);
    auto pc = core::charpoly_chistov(gf, a);
    ASSERT_EQ(pb.size(), pc.size()) << n;
    for (std::size_t i = 0; i < pb.size(); ++i) {
      EXPECT_TRUE(gf.eq(pb[i], pc[i])) << n << " " << i;
    }
    // Constant term = (-1)^n det = det (char 2).
    EXPECT_TRUE(gf.eq(pb[0], matrix::det_gauss(gf, a))) << n;
  }
}

TEST(BaselinesTest, CsankyOverRationals) {
  RationalField q;
  Matrix<RationalField> a(2, 2, q.zero());
  a.at(0, 0) = Rational(2);
  a.at(0, 1) = Rational(1);
  a.at(1, 0) = Rational(1);
  a.at(1, 1) = Rational(3);
  auto p = core::charpoly_csanky(q, a);
  // x^2 - 5x + 5.
  EXPECT_TRUE(q.eq(p[0], Rational(5)));
  EXPECT_TRUE(q.eq(p[1], Rational(-5)));
  EXPECT_TRUE(q.eq(p[2], Rational(1)));
}

// ---------------------------------------------------------------------------
// Section-5 extensions.

TEST(ExtensionsTest, RankRandomizedMatchesGauss) {
  util::Prng prng(23);
  const std::size_t n = 10;
  for (std::size_t r : {0u, 1u, 4u, 7u, 10u}) {
    Matrix<F> a = matrix::zero_matrix(f, n, n);
    if (r > 0) {
      auto left = matrix::random_matrix(f, n, r, prng);
      auto right = matrix::random_matrix(f, r, n, prng);
      a = matrix::mat_mul(f, left, right);
    }
    ASSERT_EQ(matrix::rank_gauss(f, a), r);  // generic w.h.p.
    EXPECT_EQ(core::rank_randomized(f, a, prng, 1u << 20), r) << r;
  }
}

TEST(ExtensionsTest, RankRandomizedRectangular) {
  util::Prng prng(24);
  auto left = matrix::random_matrix(f, 9, 3, prng);
  auto right = matrix::random_matrix(f, 3, 14, prng);
  auto a = matrix::mat_mul(f, left, right);
  EXPECT_EQ(core::rank_randomized(f, a, prng, 1u << 20), 3u);
}

TEST(ExtensionsTest, NullspaceSpansKernel) {
  util::Prng prng(25);
  const std::size_t n = 9;
  for (std::size_t r : {0u, 3u, 6u, 9u}) {
    Matrix<F> a = matrix::zero_matrix(f, n, n);
    if (r > 0) {
      auto left = matrix::random_matrix(f, n, r, prng);
      auto right = matrix::random_matrix(f, r, n, prng);
      a = matrix::mat_mul(f, left, right);
    }
    auto res = core::nullspace_randomized(f, a, prng, 1u << 20);
    ASSERT_TRUE(res.ok) << r;
    EXPECT_EQ(res.rank, r);
    EXPECT_EQ(res.basis.cols(), n - r);
    EXPECT_TRUE(matrix::mat_eq(f, matrix::mat_mul(f, a, res.basis),
                               matrix::zero_matrix(f, n, n - r)));
    if (n - r > 0) {
      EXPECT_EQ(matrix::rank_gauss(f, res.basis), n - r);
    }
  }
}

TEST(ExtensionsTest, SingularSolveFindsASolution) {
  util::Prng prng(26);
  const std::size_t n = 8;
  const std::size_t r = 5;
  auto left = matrix::random_matrix(f, n, r, prng);
  auto right = matrix::random_matrix(f, r, n, prng);
  auto a = matrix::mat_mul(f, left, right);
  // Consistent rhs: b = A y.
  std::vector<F::Element> y(n);
  for (auto& e : y) e = f.random(prng);
  auto b = matrix::mat_vec(f, a, y);
  auto sol = core::singular_solve_randomized(f, a, b, prng, 1u << 20);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(matrix::mat_vec(f, a, *sol), b);
}

TEST(ExtensionsTest, SingularSolveRejectsInconsistent) {
  util::Prng prng(27);
  const std::size_t n = 6;
  // Rank-2 A, rhs outside the column span (w.h.p.).
  auto left = matrix::random_matrix(f, n, 2, prng);
  auto right = matrix::random_matrix(f, 2, n, prng);
  auto a = matrix::mat_mul(f, left, right);
  std::vector<F::Element> b(n);
  for (auto& e : b) e = f.random(prng);
  if (matrix::rank_gauss(f, a) != 2) GTEST_SKIP();
  auto sol = core::singular_solve_randomized(f, a, b, prng, 1u << 20);
  EXPECT_FALSE(sol.has_value());
}

TEST(ExtensionsTest, LeastSquaresExactOnConsistentSystem) {
  RationalField q;
  util::Prng prng(28);
  // Overdetermined consistent system: LSQ solution equals the true x.
  Matrix<RationalField> a(5, 3, q.zero());
  for (auto& e : a.data()) e = q.sample(prng, 16);
  std::vector<Rational> x{Rational(2), Rational(BigInt(1), BigInt(3)),
                          Rational(-1)};
  auto b = matrix::mat_vec(q, a, x);
  auto sol = core::least_squares(q, a, b);
  ASSERT_TRUE(sol.has_value());
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(q.eq((*sol)[i], x[i]));
}

TEST(ExtensionsTest, LeastSquaresRandomizedMatchesDirect) {
  RationalField q;
  util::Prng prng(30);
  Matrix<RationalField> a(5, 3, q.zero());
  for (auto& e : a.data()) e = q.sample(prng, 8);
  std::vector<Rational> b(5);
  for (auto& e : b) e = q.sample(prng, 8);
  auto direct = core::least_squares(q, a, b);
  auto randomized = core::least_squares_randomized(q, a, b, prng);
  if (!direct) GTEST_SKIP();  // rank-deficient draw
  ASSERT_TRUE(randomized.has_value());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(q.eq((*direct)[i], (*randomized)[i])) << i;
  }
}

TEST(ExtensionsTest, LeastSquaresNormalEquationsResidualOrthogonal) {
  RationalField q;
  util::Prng prng(29);
  Matrix<RationalField> a(6, 2, q.zero());
  for (auto& e : a.data()) e = q.sample(prng, 8);
  std::vector<Rational> b(6);
  for (auto& e : b) e = q.sample(prng, 8);
  auto sol = core::least_squares(q, a, b);
  if (!sol) GTEST_SKIP();  // rank-deficient draw
  // Residual r = A x - b is orthogonal to the column space: A^T r = 0.
  auto r = matrix::mat_vec(q, a, *sol);
  for (std::size_t i = 0; i < 6; ++i) r[i] = q.sub(r[i], b[i]);
  auto atr = matrix::mat_vec(q, matrix::mat_transpose(q, a), r);
  for (const auto& e : atr) EXPECT_TRUE(q.is_zero(e));
}

// ---------------------------------------------------------------------------
// Small fields via algebraic extension (section 2's card(K) < 3n^2 remedy).

TEST(FieldLiftTest, LiftDegreeCoversTarget) {
  EXPECT_EQ(core::lift_degree(101, 100), 1u);
  EXPECT_EQ(core::lift_degree(101, 102), 2u);
  EXPECT_EQ(core::lift_degree(101, 101 * 101 + 1), 3u);
  EXPECT_EQ(core::lift_degree(2, 1000), 10u);
}

TEST(FieldLiftTest, SolvesOverSmallPrimeField) {
  // GF(101) with n = 8: card(K) = 101 < 3 n^2 = 192, so the pipeline must
  // run in an extension.  p = 101 > n so Leverrier is fine.
  field::GFp f101(101);
  util::Prng prng(34);
  const std::size_t n = 8;
  for (int trial = 0; trial < 3; ++trial) {
    auto a = matrix::random_matrix(f101, n, n, prng);
    if (f101.is_zero(matrix::det_gauss(f101, a))) continue;
    std::vector<field::GFp::Element> x(n);
    for (auto& e : x) e = f101.random(prng);
    auto b = matrix::mat_vec(f101, a, x);
    auto res = core::kp_solve_small_field(f101, a, b, prng);
    ASSERT_TRUE(res.ok);
    EXPECT_GE(res.extension_degree, 2u);  // 101^1 is below the target
    EXPECT_EQ(res.x, x);
    EXPECT_EQ(res.det, matrix::det_gauss(f101, a));
  }
}

TEST(FieldLiftTest, RefusesWhenCharacteristicTooSmall) {
  // p = 5 <= n = 8: Leverrier impossible even after lifting.
  field::GFp f5(5);
  util::Prng prng(35);
  const std::size_t n = 8;
  auto a = matrix::random_matrix(f5, n, n, prng);
  std::vector<field::GFp::Element> b(n);
  for (auto& e : b) e = f5.random(prng);
  auto res = core::kp_solve_small_field(f5, a, b, prng);
  EXPECT_FALSE(res.ok);
}

// ---------------------------------------------------------------------------
// Small characteristic (section 5 / complexity (12)).

TEST(SmallCharTest, LeadingToeplitzIsPrincipalSubmatrix) {
  util::Prng prng(30);
  const std::size_t n = 6;
  std::vector<F::Element> diag(2 * n - 1);
  for (auto& v : diag) v = f.random(prng);
  matrix::Toeplitz<F> t(n, diag);
  for (std::size_t i = 1; i <= n; ++i) {
    auto ti = core::leading_toeplitz(t, i);
    auto expect = matrix::leading_principal(f, t.to_dense(f), i);
    EXPECT_TRUE(matrix::mat_eq(f, ti.to_dense(f), expect)) << i;
  }
}

TEST(SmallCharTest, AnyCharMatchesLeverrierOverBigField) {
  util::Prng prng(31);
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    std::vector<F::Element> diag(2 * n - 1);
    for (auto& v : diag) v = f.random(prng);
    matrix::Toeplitz<F> t(n, diag);
    EXPECT_EQ(core::toeplitz_charpoly_any_char(f, t), seq::toeplitz_charpoly(f, t))
        << n;
  }
}

TEST(SmallCharTest, WorksOverGF2k) {
  // n = 4 > char = 2: Leverrier is impossible, the Chistov route must work.
  GFpk gf(2, 4);
  util::Prng prng(32);
  for (std::size_t n : {1u, 2u, 4u, 6u}) {
    std::vector<GFpk::Element> diag;
    for (std::size_t i = 0; i < 2 * n - 1; ++i) diag.push_back(gf.random(prng));
    matrix::Toeplitz<GFpk> t(n, diag);
    auto p = core::toeplitz_charpoly_any_char(gf, t);
    auto ref = core::charpoly_berkowitz(gf, t.to_dense(gf));
    ASSERT_EQ(p.size(), ref.size()) << n;
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_TRUE(gf.eq(p[i], ref[i])) << n << " " << i;
    }
    EXPECT_TRUE(
        gf.eq(core::toeplitz_det_any_char(gf, t), matrix::det_gauss(gf, t.to_dense(gf))))
        << n;
  }
}

TEST(SmallCharTest, WorksOverZ3WithLargeN) {
  // char = 3 < n = 5.
  field::GFp gf3(3);
  util::Prng prng(33);
  std::vector<field::GFp::Element> diag(9);
  for (auto& v : diag) v = gf3.random(prng);
  matrix::Toeplitz<field::GFp> t(5, diag);
  auto p = core::toeplitz_charpoly_any_char(gf3, t);
  auto ref = core::charpoly_berkowitz(gf3, t.to_dense(gf3));
  EXPECT_EQ(p, ref);
}

}  // namespace
}  // namespace kp

// The fast-kernel layer contract (field/kernels.h, field/fastmod.h):
// every trait-selected kernel must return the SAME canonical field elements
// as the frozen seed arithmetic (field/reference.h) and charge the SAME
// logical operation counts -- an OpScope must not be able to tell the two
// paths apart.  These are randomized equivalence properties swept across
// edge moduli (tiny primes, the Mersenne prime kP61, the NTT prime) and
// across sizes that span the parallel grain, plus edge values {0, 1, p-1}.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuit/field.h"
#include "field/kernels.h"
#include "field/reference.h"
#include "field/zp.h"
#include "matrix/matmul.h"
#include "matrix/sparse.h"
#include "poly/ntt.h"
#include "seq/newton_identities.h"
#include "util/op_count.h"
#include "util/prng.h"

namespace kp {
namespace {

using field::GFp;
using field::GFpReference;
using field::Zp;
using field::kNttPrime;
using field::kP61;

// The trait opts exactly the word-sized prime fields into the fast kernels;
// the symbolic circuit recorder and the reference field must stay generic.
static_assert(field::kernels::FastField<GFp>);
static_assert(field::kernels::FastField<Zp<kNttPrime>>);
static_assert(!field::FieldKernels<GFpReference>::kFast);
static_assert(!field::FieldKernels<circuit::CircuitBuilderField>::kFast);

bool same_counts(const util::OpCounts& a, const util::OpCounts& b) {
  return a.add == b.add && a.mul == b.mul && a.div == b.div &&
         a.zero_test == b.zero_test;
}

std::vector<std::uint64_t> random_residues(std::uint64_t p, std::size_t n,
                                           std::uint64_t seed) {
  util::Prng prng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = prng.below(p);
  return v;
}

template <class F>
matrix::Matrix<F> matrix_from(const F& f, const std::vector<std::uint64_t>& v,
                              std::size_t rows, std::size_t cols) {
  matrix::Matrix<F> m(rows, cols, f.zero());
  for (std::size_t i = 0; i < rows * cols; ++i) m.data()[i] = v[i];
  return m;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic: fast fields vs the reference `%` path, including the
// edge values 0, 1, p-1 on both sides of every operation.

template <class FastF>
void check_scalar_ops(const FastF& f, std::uint64_t p) {
  GFpReference ref(p);
  util::Prng prng(p ^ 0x9e3779b97f4a7c15ULL);
  std::vector<std::uint64_t> probes = {0, 1 % p, p - 1};
  for (int i = 0; i < 200; ++i) probes.push_back(prng.below(p));
  for (std::uint64_t a : probes) {
    for (std::uint64_t b : {probes[0], probes[1], probes[2],
                            prng.below(p), prng.below(p)}) {
      util::OpScope sf;
      const auto mf = f.mul(a, b);
      const auto af = f.add(a, b);
      const auto nf = f.neg(a);
      const auto cf = sf.counts();
      util::OpScope sr;
      const auto mr = ref.mul(a, b);
      const auto ar = ref.add(a, b);
      const auto nr = ref.neg(a);
      const auto cr = sr.counts();
      ASSERT_EQ(mf, mr) << "mul " << a << "*" << b << " mod " << p;
      ASSERT_EQ(af, ar);
      ASSERT_EQ(nf, nr);
      ASSERT_TRUE(same_counts(cf, cr));
      if (b != 0) {
        util::OpScope df;
        const auto qf = f.div(a, b);
        const auto cdf = df.counts();
        util::OpScope dr;
        const auto qr = ref.div(a, b);
        const auto cdr = dr.counts();
        ASSERT_EQ(qf, qr) << "div " << a << "/" << b << " mod " << p;
        ASSERT_TRUE(same_counts(cdf, cdr));
      }
    }
  }
}

TEST(Kernels, ScalarOpsMatchReferenceAcrossModuli) {
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 1000003ULL,
                          static_cast<unsigned long long>(kP61),
                          static_cast<unsigned long long>(kNttPrime)}) {
    check_scalar_ops(GFp(p), p);
  }
  check_scalar_ops(Zp<3>(), 3);
  check_scalar_ops(Zp<5>(), 5);
  check_scalar_ops(Zp<kP61>(), kP61);
  check_scalar_ops(Zp<kNttPrime>(), kNttPrime);
}

// ---------------------------------------------------------------------------
// Fused block kernels vs reference formulas, sizes spanning the grain.

template <class FastF>
void check_block_kernels(const FastF& f, std::uint64_t p, std::uint64_t seed) {
  GFpReference ref(p);
  // Sizes below, at, and above the delayed-reduction spill cadence for tiny
  // p (capacity ~3) and around typical row lengths.
  for (std::size_t n : {1u, 2u, 3u, 4u, 7u, 64u, 257u}) {
    auto a = random_residues(p, n, seed + n);
    auto b = random_residues(p, n, seed + 2 * n + 1);
    if (n >= 3) {  // plant edge values inside the accumulation
      a[0] = 0;
      a[1] = p - 1;
      b[1] = p - 1;
      a[2] = 1 % p;
    }

    util::OpScope ssf;
    auto terms_f = a;
    const auto sum_f = matrix::balanced_sum(f, terms_f);
    const auto csf = ssf.counts();
    util::OpScope ssr;
    auto terms_r = a;
    const auto sum_r = matrix::balanced_sum(ref, terms_r);
    const auto csr = ssr.counts();
    ASSERT_EQ(sum_f, sum_r) << "sum n=" << n << " p=" << p;
    ASSERT_TRUE(same_counts(csf, csr));

    util::OpScope sdf;
    const auto dot_f = field::kernels::dot(f, a.data(), b.data(), n);
    const auto cdf = sdf.counts();
    util::OpScope sdr;
    auto acc = ref.zero();
    for (std::size_t i = 0; i < n; ++i) {
      const auto prod = ref.mul(a[i], b[i]);
      acc = i == 0 ? prod : ref.add(acc, prod);
    }
    const auto cdr = sdr.counts();
    ASSERT_EQ(dot_f, acc) << "dot n=" << n << " p=" << p;
    ASSERT_TRUE(same_counts(cdf, cdr));
  }
}

TEST(Kernels, BlockKernelsMatchReferenceAcrossModuli) {
  for (std::uint64_t p : {3ULL, 5ULL, 1000003ULL,
                          static_cast<unsigned long long>(kP61),
                          static_cast<unsigned long long>(kNttPrime)}) {
    check_block_kernels(GFp(p), p, p);
  }
  check_block_kernels(Zp<3>(), 3, 17);
  check_block_kernels(Zp<kP61>(), kP61, 23);
  check_block_kernels(Zp<kNttPrime>(), kNttPrime, 29);
}

// ---------------------------------------------------------------------------
// Matrix kernels: one size above the parallel grain (300*300 > 2^15), one
// below, against the reference field running the same generic algorithms.

TEST(Kernels, MatVecMatchesReferenceAcrossGrain) {
  const std::uint64_t p = kNttPrime;
  GFp fast(p);
  GFpReference ref(p);
  for (std::size_t n : {5u, 300u}) {
    const auto vals = random_residues(p, n * n, n);
    const auto x = random_residues(p, n, n + 1);
    const auto mf = matrix_from(fast, vals, n, n);
    const auto mr = matrix_from(ref, vals, n, n);
    util::OpScope sf;
    const auto yf = matrix::mat_vec(fast, mf, x);
    const auto cf = sf.counts();
    util::OpScope sr;
    const auto yr = matrix::mat_vec(ref, mr, x);
    const auto cr = sr.counts();
    EXPECT_EQ(yf, yr) << "mat_vec n=" << n;
    EXPECT_TRUE(same_counts(cf, cr));
    util::OpScope tf;
    const auto zf = matrix::vec_mat(fast, x, mf);
    const auto ctf = tf.counts();
    util::OpScope tr;
    const auto zr = matrix::vec_mat(ref, x, mr);
    const auto ctr = tr.counts();
    EXPECT_EQ(zf, zr) << "vec_mat n=" << n;
    EXPECT_TRUE(same_counts(ctf, ctr));
  }
}

TEST(Kernels, MatMulClassicalSkipsZerosLikeReference) {
  const std::uint64_t p = 1000003;
  GFp fast(p);
  GFpReference ref(p);
  const std::size_t n = 48;
  auto va = random_residues(p, n * n, 3);
  const auto vb = random_residues(p, n * n, 4);
  util::Prng prng(5);
  for (auto& v : va) {  // ~1/3 zeros: exercises the zero-skip accounting
    if (prng.below(3) == 0) v = 0;
  }
  const auto af = matrix_from(fast, va, n, n), bf = matrix_from(fast, vb, n, n);
  const auto ar = matrix_from(ref, va, n, n), br = matrix_from(ref, vb, n, n);
  util::OpScope sf;
  const auto pf = matrix::mat_mul(fast, af, bf);
  const auto cf = sf.counts();
  util::OpScope sr;
  const auto pr = matrix::mat_mul(ref, ar, br);
  const auto cr = sr.counts();
  EXPECT_EQ(pf.data(), pr.data());
  EXPECT_TRUE(same_counts(cf, cr));
}

TEST(Kernels, StrassenSquarePow2AndPaddedAgreeWithClassical) {
  const std::uint64_t p = kNttPrime;
  GFp f(p);
  // Square power-of-two (the no-pad fast path) and an odd rectangle (the
  // padded path) must both match the classical kernel.
  {
    const std::size_t n = 64;
    const auto a = matrix_from(f, random_residues(p, n * n, 6), n, n);
    const auto b = matrix_from(f, random_residues(p, n * n, 7), n, n);
    const auto cs = matrix::mat_mul(f, a, b, matrix::MatMulStrategy::kStrassen);
    const auto cc = matrix::mat_mul(f, a, b, matrix::MatMulStrategy::kClassical);
    EXPECT_EQ(cs.data(), cc.data());
  }
  {
    const auto a = matrix_from(f, random_residues(p, 45 * 37, 8), 45, 37);
    const auto b = matrix_from(f, random_residues(p, 37 * 50, 9), 37, 50);
    const auto cs = matrix::mat_mul(f, a, b, matrix::MatMulStrategy::kStrassen);
    const auto cc = matrix::mat_mul(f, a, b, matrix::MatMulStrategy::kClassical);
    EXPECT_EQ(cs.data(), cc.data());
  }
}

TEST(Kernels, SparseApplyMatchesReference) {
  const std::uint64_t p = kP61;
  GFp fast(p);
  GFpReference ref(p);
  const std::size_t n = 500;
  util::Prng pf(11), pr(11);
  const auto sf_mat = matrix::Sparse<GFp>::random(fast, n, 7, pf);
  const auto sr_mat = matrix::Sparse<GFpReference>::random(ref, n, 7, pr);
  const auto x = random_residues(p, n, 12);
  util::OpScope sf;
  const auto yf = sf_mat.apply(fast, x);
  const auto cf = sf.counts();
  util::OpScope sr;
  const auto yr = sr_mat.apply(ref, x);
  const auto cr = sr.counts();
  EXPECT_EQ(yf, yr);
  EXPECT_TRUE(same_counts(cf, cr));
}

// ---------------------------------------------------------------------------
// NTT: cached Shoup twiddles + Harvey lazy butterflies vs the generic
// transform run by the reference field, across sizes (and hence levels).

TEST(Kernels, NttMulMatchesReferenceTransforms) {
  const std::uint64_t p = kNttPrime;
  GFp fast(p);
  GFpReference ref(p);
  poly::PolyRing<GFp> rf(fast, poly::MulStrategy::kNtt);
  poly::PolyRing<GFpReference> rr(ref, poly::MulStrategy::kNtt);
  for (std::size_t n : {4u, 33u, 256u, 1000u}) {
    const auto a = random_residues(p, n, 20 + n);
    const auto b = random_residues(p, n, 21 + n);
    util::OpScope sf;
    const auto pf = rf.mul(a, b);
    const auto cf = sf.counts();
    util::OpScope sr;
    const auto pr = rr.mul(a, b);
    const auto cr = sr.counts();
    ASSERT_EQ(pf, pr) << "ntt_mul n=" << n;
    ASSERT_TRUE(same_counts(cf, cr));
  }
}

// ---------------------------------------------------------------------------
// Batched inversion and the Newton-identity wiring that consumes it.

TEST(Kernels, BatchInverseMatchesElementwiseInv) {
  for (std::uint64_t p : {3ULL, 5ULL, static_cast<unsigned long long>(kP61),
                          static_cast<unsigned long long>(kNttPrime)}) {
    GFp fast(p);
    GFpReference ref(p);
    for (std::size_t n : {1u, 2u, 3u, 100u}) {
      util::Prng prng(p + n);
      std::vector<std::uint64_t> vals(n);
      for (auto& v : vals) v = 1 + prng.below(p - 1);  // nonzero
      auto fast_out = vals;
      util::OpScope sf;
      field::kernels::batch_inverse(fast, fast_out.data(), n);
      const auto cf = sf.counts();
      std::vector<std::uint64_t> ref_out(n);
      util::OpScope sr;
      for (std::size_t i = 0; i < n; ++i) ref_out[i] = ref.inv(vals[i]);
      const auto cr = sr.counts();
      ASSERT_EQ(fast_out, ref_out) << "batch_inverse n=" << n << " p=" << p;
      ASSERT_TRUE(same_counts(cf, cr));
    }
  }
}

TEST(Kernels, NewtonIdentitiesMatchReferenceBothMethods) {
  const std::uint64_t p = kNttPrime;
  GFp fast(p);
  GFpReference ref(p);
  const std::size_t n = 40;
  const auto s = random_residues(p, n, 31);
  for (auto method : {seq::NewtonIdentityMethod::kTriangularSolve,
                      seq::NewtonIdentityMethod::kPowerSeriesExp}) {
    util::OpScope sf;
    const auto cpf = seq::charpoly_from_power_sums(fast, s, method);
    const auto cf = sf.counts();
    util::OpScope sr;
    const auto cpr = seq::charpoly_from_power_sums(ref, s, method);
    const auto cr = sr.counts();
    ASSERT_EQ(cpf, cpr);
    ASSERT_TRUE(same_counts(cf, cr));
  }
}

}  // namespace
}  // namespace kp

// Tests for the circuit tape engine (circuit/tape.h, tape_eval.h,
// tape_io.h): compile semantics (DCE, constant pooling, accounting),
// compile-vs-evaluate element identity across fields and batch sizes,
// worker-count x SIMD-level determinism of the batch evaluator, the
// serialized format's round-trip byte-identity and corruption rejection,
// embedded test-vector self-checks, and per-lane division-fault injection.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "circuit/builders.h"
#include "circuit/circuit.h"
#include "circuit/tape.h"
#include "circuit/tape_eval.h"
#include "circuit/tape_io.h"
#include "field/simd.h"
#include "field/zp.h"
#include "pram/parallel_for.h"
#include "util/fault.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp {
namespace {

using circuit::Circuit;
using circuit::compile;
using circuit::NodeId;
using circuit::Op;
using circuit::Tape;
using circuit::TapeEvaluator;
using field::GFp;
using field::Zp;
namespace simd = field::simd;
using simd::SimdLevel;

constexpr SimdLevel kSweep[] = {SimdLevel::kScalar, SimdLevel::kNeon,
                                SimdLevel::kAvx2, SimdLevel::kAvx512};

struct LevelGuard {
  SimdLevel saved = simd::simd_level();
  ~LevelGuard() { simd::set_simd_level(saved); }
};

struct WorkerGuard {
  ~WorkerGuard() { pram::ExecutionContext::global().set_worker_limit(0); }
};

/// Random SoA lanes for a circuit over field `f`.
template <class F>
struct Lanes {
  std::vector<std::vector<typename F::Element>> in, rnd;
};

template <class F>
Lanes<F> draw_lanes(const F& f, const Circuit& c, std::size_t B,
                    util::Prng& prng) {
  Lanes<F> l;
  l.in.resize(c.num_inputs());
  l.rnd.resize(c.num_randoms());
  for (auto& v : l.in) {
    v.resize(B);
    for (auto& x : v) x = f.random(prng);
  }
  for (auto& v : l.rnd) {
    v.resize(B);
    for (auto& x : v) x = f.random(prng);
  }
  return l;
}

/// Checks every lane of a batch result against node-at-a-time evaluation.
template <class F>
void expect_lanes_match(const F& f, const Circuit& c, const Tape& t,
                        const Lanes<F>& l, std::size_t B) {
  const TapeEvaluator<F> ev(f, t);
  const auto res = ev.evaluate(l.in, l.rnd);
  for (std::size_t lane = 0; lane < B; ++lane) {
    std::vector<typename F::Element> in1, rnd1;
    for (const auto& v : l.in) in1.push_back(v[lane]);
    for (const auto& v : l.rnd) rnd1.push_back(v[lane]);
    const auto ref = c.evaluate_status(f, in1, rnd1);
    if (!res.status.ok()) {
      // A batch fails as a unit; the reported lane must reproduce under
      // node-at-a-time evaluation.
      if (lane == res.fault.lane) {
        EXPECT_EQ(ref.status.kind(), util::FailureKind::kDivisionByZero);
      }
      continue;
    }
    ASSERT_TRUE(ref.status.ok()) << "lane " << lane;
    ASSERT_EQ(ref.outputs.size(), res.outputs.size());
    for (std::size_t k = 0; k < ref.outputs.size(); ++k) {
      ASSERT_EQ(ref.outputs[k], res.outputs[k][lane])
          << "output " << k << " lane " << lane;
    }
  }
}

// ---------------------------------------------------------------------------
// Compilation semantics.

TEST(TapeCompile, DeadCodeEliminationKeepsDivisions) {
  Circuit c;
  const auto x = c.input();
  const auto y = c.input();
  const auto out = c.add(x, y);
  c.mul(out, out);        // dead multiply: must be eliminated
  c.div(x, y);            // dead division: must SURVIVE (failure event)
  c.mark_output(out);
  const Tape t = compile(c);

  EXPECT_EQ(t.num_instrs(), 2u);  // the add and the dead div
  EXPECT_EQ(t.source_size, c.size());
  EXPECT_EQ(t.source_depth, c.depth());
  EXPECT_EQ(t.source_nodes, c.total_nodes());

  // The dead division still fires the failure event when y == 0 ...
  const Zp<65537> f;
  const TapeEvaluator<Zp<65537>> ev(f, t);
  const auto bad = ev.evaluate({{5}, {0}}, {});
  EXPECT_EQ(bad.status.kind(), util::FailureKind::kDivisionByZero);
  EXPECT_EQ(bad.status.stage(), util::Stage::kCircuitEval);
  // ... exactly as node-at-a-time evaluation does.
  const auto ref = c.evaluate_status(f, {5, 0}, {});
  EXPECT_EQ(ref.status.kind(), util::FailureKind::kDivisionByZero);
  // And a clean run produces the output of the live subgraph only.
  const auto good = ev.evaluate({{5}, {7}}, {});
  ASSERT_TRUE(good.status.ok());
  EXPECT_EQ(good.outputs[0][0], 12u);
}

TEST(TapeCompile, ConstantsPooledAcrossArena) {
  // Compile-level pooling: even if duplicate kConst nodes existed in the
  // arena, the tape keeps one register per distinct payload.
  Circuit c;
  const auto x = c.input();
  const auto a = c.add(x, c.constant(7));
  const auto b = c.mul(a, c.constant(7));
  c.mark_output(c.sub(b, c.constant(3)));
  const Tape t = compile(c);
  EXPECT_EQ(t.constants.size(), 2u);  // 7 and 3
  const Zp<65537> f;
  const auto res = TapeEvaluator<Zp<65537>>(f, t).evaluate({{10}}, {});
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.outputs[0][0], (10 + 7) * 7 - 3u);
}

TEST(TapeCompile, RegisterSlotsAreReused) {
  // A long chain uses O(1) registers, not O(length): the slot of step i is
  // dead after step i+1 and gets recycled.
  Circuit c;
  auto v = c.input();
  const auto one = c.constant(1);
  for (int i = 0; i < 200; ++i) v = c.add(v, one);
  c.mark_output(v);
  const Tape t = compile(c);
  EXPECT_EQ(t.num_instrs(), 200u);
  EXPECT_LE(t.num_regs, 4u);
  const Zp<65537> f;
  const auto res = TapeEvaluator<Zp<65537>>(f, t).evaluate({{5}}, {});
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.outputs[0][0], 205u);
}

TEST(TapeCompile, LevelsMatchDepths) {
  const Circuit c = circuit::build_solver_circuit(3);
  const Tape t = compile(c);
  // Each instruction sits in the level of its source node's depth.
  for (std::size_t li = 0; li < t.levels.size(); ++li) {
    const auto& lv = t.levels[li];
    for (std::uint32_t k = 0; k < lv.count; ++k) {
      EXPECT_EQ(c.depth_of(t.instr_nodes[lv.first + k]), li + 1);
    }
  }
  EXPECT_EQ(t.levels.size(), c.depth());
}

// ---------------------------------------------------------------------------
// Satellite: build-time constant dedup and Status-reporting evaluate.

TEST(CircuitTest, ConstantDedupAtBuildTime) {
  Circuit c;
  const auto a = c.constant(42);
  const auto b = c.constant(42);
  const auto d = c.constant(-1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, d);
  EXPECT_EQ(c.total_nodes(), 2u);
  EXPECT_EQ(c.size(), 0u);  // constants are leaves, size() unaffected
}

TEST(CircuitTest, EvaluateStatusReportsFailingNode) {
  Circuit c;
  const auto x = c.input();
  const auto y = c.input();
  const auto s = c.add(x, y);
  const auto q = c.div(x, s);
  c.mark_output(q);
  const Zp<65537> f;
  const auto bad = c.evaluate_status(f, {3, 65534}, {});  // x + y == 0
  EXPECT_EQ(bad.status.kind(), util::FailureKind::kDivisionByZero);
  EXPECT_EQ(bad.status.stage(), util::Stage::kCircuitEval);
  EXPECT_EQ(bad.failed_node, q);
  // Legacy wrapper agrees.
  EXPECT_FALSE(c.evaluate(f, {3, 65534}, {}).ok);
  const auto good = c.evaluate_status(f, {3, 4}, {});
  ASSERT_TRUE(good.status.ok());
  EXPECT_EQ(good.outputs[0], f.div(3, 7));
}

// ---------------------------------------------------------------------------
// Compile-vs-evaluate identity across fields, circuits, batch sizes.

template <class F>
void identity_sweep(const F& f, std::uint64_t seed) {
  struct Named {
    const char* name;
    Circuit c;
  };
  const Named gallery[] = {
      {"solver3", circuit::build_solver_circuit(3)},
      {"inverse3", circuit::build_inverse_circuit(3)},
      {"toeplitz4", circuit::build_toeplitz_charpoly_circuit(4)},
      {"matmul3", circuit::build_matmul_circuit(3)},
      {"transposed3", circuit::build_transposed_solver_circuit(3)},
  };
  util::Prng prng(seed);
  for (const auto& g : gallery) {
    const Tape t = compile(g.c);
    for (std::size_t B : {std::size_t{1}, std::size_t{7}, std::size_t{256}}) {
      SCOPED_TRACE(std::string(g.name) + " B=" + std::to_string(B));
      const auto l = draw_lanes(f, g.c, B, prng);
      expect_lanes_match(f, g.c, t, l, B);
    }
  }
}

TEST(TapeEval, IdentityZp65537) { identity_sweep(Zp<65537>{}, 1); }
TEST(TapeEval, IdentityGFpP61) { identity_sweep(GFp(field::kP61), 2); }
TEST(TapeEval, IdentityGFpNttPrime) { identity_sweep(GFp(field::kNttPrime), 3); }

// ---------------------------------------------------------------------------
// Worker-count x SIMD-level determinism: same elements AND same op counts.

TEST(TapeEval, WorkerAndSimdLevelDeterminism) {
  LevelGuard lg;
  WorkerGuard wg;
  const Circuit c = circuit::build_solver_circuit(4);
  const Tape t = compile(c);
  const GFp f(field::kP61);
  util::Prng prng(17);
  // 520 lanes = 3 chunks at the 256-lane grain, so multi-chunk dispatch is
  // actually exercised; 256 additionally covers the single-chunk path.
  for (std::size_t B : {std::size_t{256}, std::size_t{520}}) {
    const auto l = draw_lanes(f, c, B, prng);
    std::vector<std::vector<std::uint64_t>> base;
    util::OpCounts base_ops;
    bool have_base = false;
    for (unsigned workers : {1u, 2u, 8u}) {
      pram::ExecutionContext::global().set_worker_limit(workers);
      for (SimdLevel want : kSweep) {
        simd::set_simd_level(want);
        util::OpScope scope;
        const auto res = TapeEvaluator<GFp>(f, t).evaluate(l.in, l.rnd);
        const util::OpCounts ops = scope.counts();
        ASSERT_TRUE(res.status.ok()) << res.status.message();
        if (!have_base) {
          base = res.outputs;
          base_ops = ops;
          have_base = true;
          continue;
        }
        EXPECT_EQ(res.outputs, base)
            << "B=" << B << " workers=" << workers
            << " level=" << to_string(simd::simd_level());
        EXPECT_EQ(ops.add, base_ops.add);
        EXPECT_EQ(ops.mul, base_ops.mul);
        EXPECT_EQ(ops.div, base_ops.div);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Op accounting: a tape batch charges exactly B times the per-node price of
// the live nodes (DCE'd nodes are uncharged -- see DESIGN.md S11).

TEST(TapeEval, AccountingMatchesNodeEvalOnLiveCircuit) {
  // Hand-built circuit with no dead nodes, so node eval and tape charge
  // the same set.
  Circuit c;
  const auto x = c.input();
  const auto y = c.input();
  const auto s = c.add(x, y);
  const auto p = c.mul(s, x);
  const auto n = c.neg(p);
  const auto q = c.div(n, s);
  c.mark_output(q);
  const Tape t = compile(c);
  ASSERT_EQ(t.num_instrs(), c.size());

  const GFp f(field::kP61);
  const std::size_t B = 64;
  util::Prng prng(5);
  const auto l = draw_lanes(f, c, B, prng);

  util::OpCounts node_total;
  for (std::size_t lane = 0; lane < B; ++lane) {
    util::OpScope scope;
    const auto ref = c.evaluate(f, {l.in[0][lane], l.in[1][lane]}, {});
    ASSERT_TRUE(ref.ok);
    node_total += scope.counts();
  }
  util::OpScope scope;
  const auto res = TapeEvaluator<GFp>(f, t).evaluate(l.in, l.rnd);
  const util::OpCounts tape_ops = scope.counts();
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(tape_ops.add, node_total.add);
  EXPECT_EQ(tape_ops.mul, node_total.mul);
  EXPECT_EQ(tape_ops.div, node_total.div);
}

// ---------------------------------------------------------------------------
// Failure reporting.

TEST(TapeEval, DivisionByZeroReportsLevelLaneAndNode) {
  Circuit c;
  const auto x = c.input();
  const auto y = c.input();
  const auto s = c.add(x, y);
  const auto q = c.div(x, s);
  c.mark_output(q);
  const Tape t = compile(c);
  const Zp<65537> f;
  const std::size_t B = 8;
  std::vector<std::uint64_t> xs(B, 3), ys(B, 4);
  ys[5] = 65534;  // lane 5: x + y == 0 mod p
  const auto res = TapeEvaluator<Zp<65537>>(f, t).evaluate({xs, ys}, {});
  EXPECT_EQ(res.status.kind(), util::FailureKind::kDivisionByZero);
  EXPECT_EQ(res.status.stage(), util::Stage::kCircuitEval);
  EXPECT_FALSE(res.status.injected());
  EXPECT_EQ(res.fault.lane, 5u);
  EXPECT_EQ(res.fault.node, q);
  EXPECT_EQ(res.fault.level, 1u);  // the div sits at depth 2 -> level 1
  EXPECT_TRUE(res.outputs.empty());
  // Node-at-a-time evaluation of that lane reports the same node.
  const auto ref = c.evaluate_status(f, {3, 65534}, {});
  EXPECT_EQ(ref.failed_node, res.fault.node);
}

TEST(TapeEval, InvalidArgumentsRejected) {
  Circuit c;
  const auto x = c.input();
  const auto y = c.input();
  c.mark_output(c.add(x, y));
  const Tape t = compile(c);
  const Zp<65537> f;
  const TapeEvaluator<Zp<65537>> ev(f, t);
  EXPECT_EQ(ev.evaluate({{1}}, {}).status.kind(),
            util::FailureKind::kInvalidArgument);  // arity
  EXPECT_EQ(ev.evaluate({{1, 2}, {3}}, {}).status.kind(),
            util::FailureKind::kInvalidArgument);  // ragged
  EXPECT_EQ(ev.evaluate({{}, {}}, {}).status.kind(),
            util::FailureKind::kInvalidArgument);  // empty batch
}

TEST(TapeEval, PerLaneFaultInjection) {
  if (!KP_FAULT_INJECTION_ENABLED) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  Circuit c;
  const auto x = c.input();
  const auto y = c.input();
  c.mark_output(c.div(x, y));
  const Tape t = compile(c);
  const Zp<65537> f;
  const std::size_t B = 8;
  const std::vector<std::uint64_t> xs(B, 6), ys(B, 3);
  const TapeEvaluator<Zp<65537>> ev(f, t);
  // Site index k within Stage::kCircuitEval is lane k of the (single) div
  // instruction: the pre-scan visits lanes in order on the submitting
  // thread at every worker count.
  for (std::uint32_t k : {0u, 3u, 7u}) {
    util::fault::AttemptScope attempt(1);
    util::fault::ScopedFault fi(util::Stage::kCircuitEval, 1,
                                static_cast<int>(k));
    const auto res = ev.evaluate({xs, ys}, {});
    EXPECT_EQ(res.status.kind(), util::FailureKind::kDivisionByZero);
    EXPECT_TRUE(res.status.injected());
    EXPECT_TRUE(res.fault.injected);
    EXPECT_EQ(res.fault.lane, k);
    EXPECT_EQ(fi.fired(), 1u);
  }
  // Unarmed, the same batch succeeds.
  util::fault::AttemptScope attempt(1);
  const auto ok = ev.evaluate({xs, ys}, {});
  ASSERT_TRUE(ok.status.ok());
  EXPECT_EQ(ok.outputs[0][0], f.div(6, 3));
}

// ---------------------------------------------------------------------------
// Serialization.

TEST(TapeIo, SaveLoadRoundTripByteIdentity) {
  Tape t = compile(circuit::build_inverse_circuit(3));
  util::Prng prng(11);
  ASSERT_TRUE(circuit::add_test_vector(t, 65537, prng).ok());
  ASSERT_TRUE(circuit::add_test_vector(t, field::kP61, prng).ok());

  const std::string bytes = circuit::serialize_tape(t);
  const auto back = circuit::deserialize_tape(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(circuit::serialize_tape(back.value()), bytes);

  const Tape& u = back.value();
  EXPECT_EQ(u.num_instrs(), t.num_instrs());
  EXPECT_EQ(u.num_regs, t.num_regs);
  EXPECT_EQ(u.source_size, t.source_size);
  EXPECT_EQ(u.source_depth, t.source_depth);
  EXPECT_EQ(u.tests.size(), 2u);
  EXPECT_TRUE(circuit::ensure(u).ok());

  // File round trip.
  const std::string path = ::testing::TempDir() + "/kp_tape_roundtrip.bin";
  ASSERT_TRUE(circuit::save_tape(t, path).ok());
  const auto loaded = circuit::load_tape(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(circuit::serialize_tape(loaded.value()), bytes);
  std::remove(path.c_str());
}

TEST(TapeIo, CorruptionRejected) {
  Tape t = compile(circuit::build_solver_circuit(3));
  const std::string bytes = circuit::serialize_tape(t);

  {  // bad magic
    std::string b = bytes;
    b[0] ^= 1;
    EXPECT_FALSE(circuit::deserialize_tape(b).ok());
  }
  {  // truncation
    EXPECT_FALSE(
        circuit::deserialize_tape(bytes.substr(0, bytes.size() / 2)).ok());
    EXPECT_FALSE(circuit::deserialize_tape("").ok());
  }
  {  // checksum: flip one payload byte
    std::string b = bytes;
    b[bytes.size() / 2] ^= 0x40;
    const auto r = circuit::deserialize_tape(b);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().kind(), util::FailureKind::kInvalidArgument);
  }
  {  // structurally invalid but checksum-correct: out-of-range register
    Tape bad = t;
    bad.output_slots[0] = bad.num_regs + 100;
    EXPECT_FALSE(circuit::deserialize_tape(circuit::serialize_tape(bad)).ok());
  }
  {  // non-arithmetic opcode inside a level
    Tape bad = t;
    bad.instrs[0].op = Op::kInput;
    EXPECT_FALSE(circuit::deserialize_tape(circuit::serialize_tape(bad)).ok());
  }
}

TEST(TapeIo, EnsureDetectsTamperedVector) {
  Tape t = compile(circuit::build_toeplitz_charpoly_circuit(3));
  util::Prng prng(23);
  ASSERT_TRUE(circuit::add_test_vector(t, field::kP61, prng).ok());
  ASSERT_TRUE(circuit::ensure(t).ok());

  Tape tampered = t;
  tampered.tests[0].outputs[0] ^= 1;
  const auto st = circuit::ensure(tampered);
  EXPECT_EQ(st.kind(), util::FailureKind::kVerifyMismatch);
  EXPECT_EQ(st.stage(), util::Stage::kCircuitEval);

  // A recorded FAILURE must also reproduce: claim ok on inputs that fail.
  Tape lied = t;
  lied.tests[0].ok = false;  // recorded success relabeled as failure
  EXPECT_EQ(circuit::ensure(lied).kind(), util::FailureKind::kVerifyMismatch);
}

TEST(TapeIo, TestVectorRecordsFailures) {
  // A circuit that always divides by zero: 1 / (x - x).
  Circuit c;
  const auto x = c.input();
  c.mark_output(c.div(c.constant(1), c.sub(x, x)));
  Tape t = compile(c);
  util::Prng prng(31);
  ASSERT_TRUE(circuit::add_test_vector(t, 65537, prng).ok());
  ASSERT_EQ(t.tests.size(), 1u);
  EXPECT_FALSE(t.tests[0].ok);
  EXPECT_TRUE(circuit::ensure(t).ok());  // the failure reproduces
}

}  // namespace
}  // namespace kp

// Tests for the PRAM execution layer: parallel_for determinism and
// coverage, and the work/depth tracker algebra.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "field/zp.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "pram/parallel_for.h"
#include "pram/work_depth.h"
#include "util/prng.h"

namespace kp {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pram::parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, RespectsRangeBounds) {
  std::vector<std::atomic<int>> hits(20);
  pram::parallel_for(5, 15, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 15) ? 1 : 0) << i;
  }
  // Empty and reversed ranges are no-ops.
  pram::parallel_for(7, 7, [&](std::size_t) { FAIL(); });
  pram::parallel_for(9, 3, [&](std::size_t) { FAIL(); });
}

TEST(ParallelForTest, DeterministicWithSeedPerIndex) {
  // The contract: per-index seeding makes results independent of the
  // thread count.
  using F = field::Zp<1000003>;
  F f;
  auto run = [&](unsigned workers) {
    return pram::parallel_map<F::Element>(
        64,
        [&](std::size_t i) {
          util::Prng prng(1000 + i);
          auto a = matrix::random_matrix(f, 4, 4, prng);
          return matrix::det_gauss(f, a);
        },
        workers);
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(WorkDepthTest, SpanAndWorkAlgebra) {
  pram::WorkDepth wd;
  wd.parallel_region(100, 50, 7);  // 100 tasks of 50 ops, depth 7
  wd.sequential(3);
  EXPECT_EQ(wd.work(), 5003u);
  EXPECT_EQ(wd.span(), 10u);

  pram::WorkDepth other;
  other.sequential(20);
  pram::WorkDepth side = wd;
  side.merge_parallel(other);  // runs beside: span maxes
  EXPECT_EQ(side.work(), 5023u);
  EXPECT_EQ(side.span(), 20u);

  pram::WorkDepth chain = wd;
  chain.merge_sequential(other);  // runs after: span adds
  EXPECT_EQ(chain.work(), 5023u);
  EXPECT_EQ(chain.span(), 30u);

  EXPECT_NEAR(wd.parallelism(), 500.3, 0.01);
}

TEST(WorkDepthTest, ModelsTheKrylovDoublingShape) {
  // log n rounds of matrix products, each n^3 work / ~2 log n depth, models
  // the eq.-(9) doubling; span must be polylog while work is ~n^3 log n.
  const std::uint64_t n = 1024, logn = 10;
  pram::WorkDepth wd;
  for (std::uint64_t round = 0; round < logn; ++round) {
    wd.parallel_region(n * n, n, 2 * logn);  // n^2 inner products in parallel
  }
  EXPECT_EQ(wd.work(), n * n * n * logn);
  EXPECT_EQ(wd.span(), 2 * logn * logn);
}

}  // namespace
}  // namespace kp

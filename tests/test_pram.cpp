// Tests for the PRAM execution layer: parallel_for determinism and
// coverage, and the work/depth tracker algebra.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "field/zp.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "matrix/matmul.h"
#include "matrix/sparse.h"
#include "pram/parallel_for.h"
#include "pram/work_depth.h"
#include "util/op_count.h"
#include "util/prng.h"

namespace kp {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pram::parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, RespectsRangeBounds) {
  std::vector<std::atomic<int>> hits(20);
  pram::parallel_for(5, 15, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 15) ? 1 : 0) << i;
  }
  // Empty and reversed ranges are no-ops.
  pram::parallel_for(7, 7, [&](std::size_t) { FAIL(); });
  pram::parallel_for(9, 3, [&](std::size_t) { FAIL(); });
}

TEST(ParallelForTest, DeterministicWithSeedPerIndex) {
  // The contract: per-index seeding makes results independent of the
  // thread count.
  using F = field::Zp<1000003>;
  F f;
  auto run = [&](unsigned workers) {
    return pram::parallel_map<F::Element>(
        64,
        [&](std::size_t i) {
          util::Prng prng(1000 + i);
          auto a = matrix::random_matrix(f, 4, 4, prng);
          return matrix::det_gauss(f, a);
        },
        workers);
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ExecutionContextTest, ReusesPooledThreadsAcrossCalls) {
  auto& ctx = pram::ExecutionContext::global();
  std::atomic<int> sink{0};
  // Warm the pool, then hammer it: the spawn counter must not move -- the
  // whole point of the persistent context is no thread spawn per call.
  pram::parallel_for(0, 64, [&](std::size_t) { sink.fetch_add(1); });
  const auto started = ctx.threads_started();
  EXPECT_LE(started, pram::worker_count());
  for (int round = 0; round < 50; ++round) {
    pram::parallel_for(0, 256, [&](std::size_t) { sink.fetch_add(1); });
  }
  EXPECT_EQ(ctx.threads_started(), started);
  EXPECT_EQ(sink.load(), 64 + 50 * 256);
}

TEST(ExecutionContextTest, KernelsBitIdenticalForOneAndManyWorkers) {
  // The acceptance contract of the pooled kernels: results do not depend on
  // the degree of parallelism.  Run the parallel-kernel paths (mat_mul,
  // mat_vec, sparse apply are all above the grain at n = 96) with the
  // worker limit pinned to 1 and unlimited, and compare bit-for-bit.
  using F = field::Zp<1000003>;
  F f;
  auto& ctx = pram::ExecutionContext::global();
  auto run = [&] {
    util::Prng prng(4242);
    auto a = matrix::random_matrix(f, 96, 96, prng);
    auto b = matrix::random_matrix(f, 96, 96, prng);
    auto prod = matrix::mat_mul(f, a, b);
    std::vector<F::Element> x(96);
    for (auto& e : x) e = f.random(prng);
    auto y = matrix::mat_vec(f, prod, x);
    auto sp = matrix::Sparse<F>::random(f, 512, 64, prng);
    std::vector<F::Element> xs(512);
    for (auto& e : xs) e = f.random(prng);
    auto z = sp.apply(f, xs);
    y.insert(y.end(), z.begin(), z.end());
    return y;
  };
  ctx.set_worker_limit(1);
  const auto serial = run();
  ctx.set_worker_limit(0);
  const auto parallel = run();
  EXPECT_EQ(serial, parallel);
}

TEST(ExecutionContextTest, OpCountsFoldBackIntoSubmitter) {
  // An OpScope around a parallel kernel must measure the same work as the
  // serial run: workers report their thread-local counts back to the
  // submitting thread.
  using F = field::Zp<1000003>;
  F f;
  util::Prng prng(7);
  auto a = matrix::random_matrix(f, 128, 128, prng);
  std::vector<F::Element> x(128);
  for (auto& e : x) e = f.random(prng);

  auto& ctx = pram::ExecutionContext::global();
  ctx.set_worker_limit(1);
  util::OpScope serial_scope;
  auto y1 = matrix::mat_vec(f, a, x);
  const auto serial_ops = serial_scope.counts().total();
  ctx.set_worker_limit(0);
  util::OpScope parallel_scope;
  auto y2 = matrix::mat_vec(f, a, x);
  const auto parallel_ops = parallel_scope.counts().total();
  EXPECT_EQ(y1, y2);
  EXPECT_EQ(serial_ops, parallel_ops);
  EXPECT_GT(serial_ops, 0u);
}

TEST(ExecutionContextTest, NestedRegionsRunSeriallyWithoutDeadlock) {
  std::atomic<int> sink{0};
  pram::parallel_for(0, 8, [&](std::size_t) {
    // A nested region from inside a running region must complete serially
    // on the issuing thread rather than waiting on the (busy) pool.
    pram::parallel_for(0, 100, [&](std::size_t) { sink.fetch_add(1); });
  });
  EXPECT_EQ(sink.load(), 800);
}

TEST(ExecutionContextTest, WorkerExceptionPropagatesToSubmitter) {
  // The first exception thrown by any participant must surface on the
  // submitting thread once the batch retires -- not crash a worker, not
  // deadlock the waiters.
  EXPECT_THROW(
      pram::parallel_for(0, 256,
                         [&](std::size_t i) {
                           if (i == 97) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(ExecutionContextTest, PoolStaysUsableAfterException) {
  auto& ctx = pram::ExecutionContext::global();
  std::atomic<int> sink{0};
  pram::parallel_for(0, 64, [&](std::size_t) { sink.fetch_add(1); });
  const auto started = ctx.threads_started();
  EXPECT_THROW(pram::parallel_for(0, 256,
                                  [&](std::size_t i) {
                                    if (i % 3 == 0) {
                                      throw std::runtime_error("boom");
                                    }
                                    sink.fetch_add(1);
                                  }),
               std::runtime_error);
  // The pool is not poisoned: the next regions run normally on the SAME
  // threads, cover every index, and still fold op counts back.
  sink.store(0);
  pram::parallel_for(0, 512, [&](std::size_t) { sink.fetch_add(1); });
  EXPECT_EQ(sink.load(), 512);
  EXPECT_EQ(ctx.threads_started(), started);

  using F = field::Zp<1000003>;
  F f;
  util::Prng prng(11);
  auto a = matrix::random_matrix(f, 96, 96, prng);
  std::vector<F::Element> x(96);
  for (auto& e : x) e = f.random(prng);
  util::OpScope scope;
  auto y = matrix::mat_vec(f, a, x);
  EXPECT_GT(scope.counts().total(), 0u);
  EXPECT_EQ(y.size(), 96u);
}

TEST(ExecutionContextTest, ExceptionPropagatesAtEveryWorkerCount) {
  // The Las Vegas retry loops sit above throwing kernels; their behavior
  // must be identical under 1, 2, and 8 workers.
  auto& ctx = pram::ExecutionContext::global();
  for (unsigned workers : {1u, 2u, 8u}) {
    ctx.set_worker_limit(workers);
    std::atomic<int> before{0};
    EXPECT_THROW(pram::parallel_for(0, 64,
                                    [&](std::size_t i) {
                                      if (i == 40) throw std::logic_error("x");
                                      before.fetch_add(1);
                                    }),
                 std::logic_error)
        << workers << " workers";
    // And the pool still serves the next region at this limit.
    std::atomic<int> after{0};
    pram::parallel_for(0, 64, [&](std::size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 64) << workers << " workers";
  }
  ctx.set_worker_limit(0);
}

TEST(ExecutionContextTest, NestedRegionExceptionPropagates) {
  // A nested region runs serially on the issuing participant; its exception
  // must travel through the outer batch to the outer submitter.
  EXPECT_THROW(pram::parallel_for(0, 8,
                                  [&](std::size_t i) {
                                    pram::parallel_for(
                                        0, 16, [&](std::size_t j) {
                                          if (i == 3 && j == 7) {
                                            throw std::runtime_error("inner");
                                          }
                                        });
                                  }),
               std::runtime_error);
  std::atomic<int> sink{0};
  pram::parallel_for(0, 32, [&](std::size_t) { sink.fetch_add(1); });
  EXPECT_EQ(sink.load(), 32);
}

TEST(WorkDepthTest, SpanAndWorkAlgebra) {
  pram::WorkDepth wd;
  wd.parallel_region(100, 50, 7);  // 100 tasks of 50 ops, depth 7
  wd.sequential(3);
  EXPECT_EQ(wd.work(), 5003u);
  EXPECT_EQ(wd.span(), 10u);

  pram::WorkDepth other;
  other.sequential(20);
  pram::WorkDepth side = wd;
  side.merge_parallel(other);  // runs beside: span maxes
  EXPECT_EQ(side.work(), 5023u);
  EXPECT_EQ(side.span(), 20u);

  pram::WorkDepth chain = wd;
  chain.merge_sequential(other);  // runs after: span adds
  EXPECT_EQ(chain.work(), 5023u);
  EXPECT_EQ(chain.span(), 30u);

  EXPECT_NEAR(wd.parallelism(), 500.3, 0.01);
}

TEST(WorkDepthTest, ModelsTheKrylovDoublingShape) {
  // log n rounds of matrix products, each n^3 work / ~2 log n depth, models
  // the eq.-(9) doubling; span must be polylog while work is ~n^3 log n.
  const std::uint64_t n = 1024, logn = 10;
  pram::WorkDepth wd;
  for (std::uint64_t round = 0; round < logn; ++round) {
    wd.parallel_region(n * n, n, 2 * logn);  // n^2 inner products in parallel
  }
  EXPECT_EQ(wd.work(), n * n * n * logn);
  EXPECT_EQ(wd.span(), 2 * logn * logn);
}

}  // namespace
}  // namespace kp

// Tests for the polynomial substrate: ring axioms, multiplication kernel
// agreement (schoolbook vs Karatsuba vs NTT), division/GCD, power series
// (inverse, log, exp), interpolation, and the truncated-series ring used by
// the section-3 bivariate arithmetic.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "field/gfpk.h"
#include "field/rational.h"
#include "field/zp.h"
#include "poly/poly.h"
#include "util/prng.h"

namespace kp {
namespace {

using field::GFp;
using field::RationalField;
using field::Zp;
using poly::MulStrategy;
using poly::PolyRing;
using poly::TruncSeriesRing;

using F101 = Zp<101>;
using P101 = PolyRing<F101>;

P101 make_ring() { return P101(F101{}); }

TEST(PolyRingTest, DegreeAndNormalization) {
  auto ring = make_ring();
  EXPECT_EQ(P101::degree(ring.zero()), -1);
  EXPECT_EQ(P101::degree(ring.one()), 0);
  EXPECT_TRUE(ring.is_zero(ring.from_int(0)));
  EXPECT_TRUE(ring.is_zero(ring.from_int(101)));
  // add strips a cancelled leading coefficient.
  P101::Element a{1, 2, 100};  // 100 == -1 mod 101
  P101::Element b{5, 0, 1};
  auto s = ring.add(a, b);
  EXPECT_EQ(P101::degree(s), 1);
}

TEST(PolyRingTest, RingAxiomsRandomized) {
  auto ring = make_ring();
  util::Prng prng(11);
  for (int trial = 0; trial < 40; ++trial) {
    auto a = ring.random_degree(prng, 12);
    auto b = ring.random_degree(prng, 9);
    auto c = ring.random_degree(prng, 15);
    EXPECT_TRUE(ring.eq(ring.mul(a, b), ring.mul(b, a)));
    EXPECT_TRUE(ring.eq(ring.mul(ring.mul(a, b), c), ring.mul(a, ring.mul(b, c))));
    EXPECT_TRUE(ring.eq(ring.mul(a, ring.add(b, c)),
                        ring.add(ring.mul(a, b), ring.mul(a, c))));
    EXPECT_TRUE(ring.eq(ring.mul(a, ring.one()), a));
    EXPECT_TRUE(ring.is_zero(ring.sub(a, a)));
  }
}

TEST(PolyRingTest, MulKernelsAgree) {
  // The three kernels must produce identical coefficients; use the
  // NTT-friendly prime so kNtt is legal.
  GFp f(field::kNttPrime);
  util::Prng prng(21);
  for (std::size_t deg : {1u, 7u, 31u, 64u, 200u}) {
    PolyRing<GFp> school(f, MulStrategy::kSchoolbook);
    PolyRing<GFp> karat(f, MulStrategy::kKaratsuba, 4);
    PolyRing<GFp> ntt(f, MulStrategy::kNtt);
    auto a = school.random_degree(prng, static_cast<std::int64_t>(deg));
    auto b = school.random_degree(prng, static_cast<std::int64_t>(deg) / 2 + 1);
    auto r0 = school.mul(a, b);
    EXPECT_TRUE(school.eq(r0, karat.mul(a, b))) << "karatsuba deg=" << deg;
    EXPECT_TRUE(school.eq(r0, ntt.mul(a, b))) << "ntt deg=" << deg;
  }
}

TEST(PolyRingTest, KaratsubaOverRationals) {
  // Karatsuba is the generic path for rings without NTT roots.
  RationalField q;
  PolyRing<RationalField> school(q, MulStrategy::kSchoolbook);
  PolyRing<RationalField> karat(q, MulStrategy::kKaratsuba, 2);
  util::Prng prng(31);
  auto a = school.random_degree(prng, 20);
  auto b = school.random_degree(prng, 17);
  EXPECT_TRUE(school.eq(school.mul(a, b), karat.mul(a, b)));
}

TEST(PolyRingTest, DivModInvariant) {
  auto ring = make_ring();
  util::Prng prng(41);
  for (int trial = 0; trial < 60; ++trial) {
    auto num = ring.random_degree(prng, 20);
    auto den = ring.random_degree(prng, static_cast<std::int64_t>(prng.below(10)));
    if (ring.is_zero(den)) continue;
    auto [q, r] = ring.divmod(num, den);
    EXPECT_TRUE(ring.eq(num, ring.add(ring.mul(q, den), r)));
    EXPECT_LT(P101::degree(r), P101::degree(den));
  }
}

TEST(PolyRingTest, EvalMatchesDivmodRemainder) {
  // a(c) equals a mod (x - c).
  auto ring = make_ring();
  util::Prng prng(51);
  F101 f;
  for (int trial = 0; trial < 30; ++trial) {
    auto a = ring.random_degree(prng, 15);
    auto c = f.random(prng);
    P101::Element lin{f.neg(c), f.one()};
    auto r = ring.divmod(a, lin).second;
    EXPECT_TRUE(f.eq(ring.eval(a, c), ring.coeff(r, 0)));
  }
}

TEST(PolyRingTest, GcdOfMultiples) {
  auto ring = make_ring();
  util::Prng prng(61);
  for (int trial = 0; trial < 30; ++trial) {
    auto g = ring.monic(ring.add(ring.random_degree(prng, 5), ring.shift_up(ring.one(), 6)));
    auto a = ring.mul(g, ring.random_degree(prng, 4));
    auto b = ring.mul(g, ring.random_degree(prng, 7));
    if (ring.is_zero(a) || ring.is_zero(b)) continue;
    auto d = ring.gcd(a, b);
    // gcd(g*u, g*v) is a multiple of g.
    EXPECT_TRUE(ring.is_zero(ring.divmod(d, g).second));
  }
}

TEST(PolyRingTest, XgcdBezoutIdentity) {
  auto ring = make_ring();
  util::Prng prng(71);
  for (int trial = 0; trial < 30; ++trial) {
    auto a = ring.random_degree(prng, 12);
    auto b = ring.random_degree(prng, 8);
    if (ring.is_zero(a) && ring.is_zero(b)) continue;
    auto [g, s, t] = ring.xgcd(a, b);
    EXPECT_TRUE(ring.eq(ring.add(ring.mul(s, a), ring.mul(t, b)), g));
    if (!ring.is_zero(g)) {
      EXPECT_TRUE(ring.base().eq(ring.lead(g), ring.base().one()));
      EXPECT_TRUE(ring.is_zero(ring.divmod(a, g).second));
      EXPECT_TRUE(ring.is_zero(ring.divmod(b, g).second));
    }
  }
}

TEST(PolyRingTest, DerivativeLeibnizRule) {
  auto ring = make_ring();
  util::Prng prng(81);
  for (int trial = 0; trial < 20; ++trial) {
    auto a = ring.random_degree(prng, 9);
    auto b = ring.random_degree(prng, 7);
    auto lhs = ring.derivative(ring.mul(a, b));
    auto rhs = ring.add(ring.mul(ring.derivative(a), b), ring.mul(a, ring.derivative(b)));
    EXPECT_TRUE(ring.eq(lhs, rhs));
  }
}

TEST(PolyRingTest, ReverseAndShift) {
  auto ring = make_ring();
  P101::Element a{1, 2, 3};
  EXPECT_TRUE(ring.eq(ring.reverse(a, 2), P101::Element{3, 2, 1}));
  EXPECT_TRUE(ring.eq(ring.reverse(a, 4), P101::Element{0, 0, 3, 2, 1}));
  EXPECT_TRUE(ring.eq(ring.shift_up(a, 2), P101::Element{0, 0, 1, 2, 3}));
  EXPECT_TRUE(ring.eq(ring.shift_down(a, 1), P101::Element{2, 3}));
  EXPECT_TRUE(ring.eq(ring.truncate(a, 2), P101::Element{1, 2}));
}

// ---------------------------------------------------------------------------
// Power series.

TEST(SeriesTest, InverseIdentity) {
  auto ring = make_ring();
  util::Prng prng(91);
  for (std::size_t prec : {1u, 2u, 5u, 16u, 33u}) {
    auto a = ring.random_degree(prng, 10);
    if (a.empty() || ring.base().eq(a[0], ring.base().zero())) {
      a = ring.add(a, ring.one());
    }
    auto g = series_inverse(ring, a, prec);
    auto prod = ring.truncate(ring.mul(a, g), prec);
    EXPECT_TRUE(ring.eq(prod, ring.one())) << "prec=" << prec;
  }
}

TEST(SeriesTest, GeometricSeries) {
  // 1/(1-x) = 1 + x + x^2 + ...
  auto ring = make_ring();
  P101::Element one_minus_x{1, 100};
  auto g = series_inverse(ring, one_minus_x, 8);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(ring.coeff(g, i), 1u);
}

TEST(SeriesTest, LogExpRoundTrip) {
  auto ring = make_ring();
  util::Prng prng(101);
  for (int trial = 0; trial < 10; ++trial) {
    // h with h(0) = 0, degree < 12; precision beyond the degree.
    auto h = ring.shift_up(ring.random_degree(prng, 10), 1);
    const std::size_t prec = 20;
    auto g = series_exp(ring, h, prec);
    EXPECT_TRUE(ring.base().eq(ring.coeff(g, 0), ring.base().one()));
    auto back = series_log(ring, g, prec);
    EXPECT_TRUE(ring.eq(back, ring.truncate(h, prec)));
  }
}

TEST(SeriesTest, ExpAdditionLaw) {
  auto ring = make_ring();
  util::Prng prng(111);
  const std::size_t prec = 16;
  auto h1 = ring.shift_up(ring.random_degree(prng, 8), 1);
  auto h2 = ring.shift_up(ring.random_degree(prng, 8), 1);
  auto lhs = series_exp(ring, ring.add(h1, h2), prec);
  auto rhs = ring.truncate(
      ring.mul(series_exp(ring, h1, prec), series_exp(ring, h2, prec)), prec);
  EXPECT_TRUE(ring.eq(lhs, rhs));
}

TEST(SeriesTest, ExpOverRationalsMatchesFactorials) {
  RationalField q;
  PolyRing<RationalField> ring(q);
  // exp(x) coefficients are 1/i!.
  PolyRing<RationalField>::Element x{q.zero(), q.one()};
  auto e = series_exp(ring, x, 8);
  field::Rational fact(1);
  for (int i = 0; i < 8; ++i) {
    if (i > 0) fact = fact * field::Rational(i);
    EXPECT_TRUE(q.eq(ring.coeff(e, static_cast<std::size_t>(i)),
                     q.div(q.one(), fact)));
  }
}

// ---------------------------------------------------------------------------
// Interpolation.

TEST(InterpTest, RoundTripRandom) {
  auto ring = make_ring();
  util::Prng prng(121);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + prng.below(12);
    // n distinct points.
    std::vector<F101::Element> points;
    for (std::uint64_t v = 0; points.size() < n; ++v) points.push_back(v);
    auto a = ring.random_degree(prng, static_cast<std::int64_t>(n) - 1);
    auto values = multipoint_eval(ring, a, points);
    auto back = interpolate(ring, points, values);
    EXPECT_TRUE(ring.eq(a, back));
  }
}

TEST(InterpTest, KnownQuadratic) {
  RationalField q;
  PolyRing<RationalField> ring(q);
  // Through (0,1), (1,3), (2,7): 1 + x + x^2.
  std::vector<field::Rational> pts{0, 1, 2};
  std::vector<field::Rational> vals{1, 3, 7};
  auto p = interpolate(ring, pts, vals);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_TRUE(q.eq(p[0], q.one()));
  EXPECT_TRUE(q.eq(p[1], q.one()));
  EXPECT_TRUE(q.eq(p[2], q.one()));
}

// ---------------------------------------------------------------------------
// Truncated series ring (the section-3 coefficient ring).

TEST(TruncSeriesTest, TruncationIsARingCongruence) {
  TruncSeriesRing<F101> ring(F101{}, 6);
  util::Prng prng(131);
  PolyRing<F101> full(F101{});
  for (int trial = 0; trial < 30; ++trial) {
    auto a = ring.random(prng);
    auto b = ring.random(prng);
    // mul in the quotient == full product truncated.
    EXPECT_TRUE(ring.eq(ring.mul(a, b), full.truncate(full.mul(a, b), 6)));
  }
}

TEST(TruncSeriesTest, UnitInverse) {
  TruncSeriesRing<F101> ring(F101{}, 10);
  util::Prng prng(141);
  for (int trial = 0; trial < 20; ++trial) {
    auto a = ring.random(prng);
    if (!ring.is_unit(a)) a = ring.add(a, ring.one());
    if (!ring.is_unit(a)) continue;  // constant term was -1
    auto g = ring.inv_unit(a);
    EXPECT_TRUE(ring.eq(ring.mul(a, g), ring.one()));
  }
}

TEST(TruncSeriesTest, PolynomialsOverSeriesCompose) {
  // Bivariate sanity: (1 + lambda*x) * (1 - lambda*x) = 1 - lambda^2 x^2
  // in (K[[lambda]]/lambda^3)[x].
  using SR = TruncSeriesRing<F101>;
  SR sr(F101{}, 3);
  PolyRing<SR> biv(sr);
  [[maybe_unused]] F101 f;
  PolyRing<SR>::Element a{sr.one(), sr.lambda()};
  PolyRing<SR>::Element b{sr.one(), sr.neg(sr.lambda())};
  auto prod = biv.mul(a, b);
  ASSERT_EQ(prod.size(), 3u);
  EXPECT_TRUE(sr.eq(prod[0], sr.one()));
  EXPECT_TRUE(sr.is_zero(prod[1]));
  // -lambda^2
  SR::Element ml2{f.zero(), f.zero(), f.from_int(-1)};
  EXPECT_TRUE(sr.eq(prod[2], ml2));
}

}  // namespace
}  // namespace kp

// Tests for the section-5 Sylvester extension: resultants, gcd degree via
// rank, and gcd recovery via one structured linear solve -- cross-checked
// against the Euclidean algorithm.
#include <gtest/gtest.h>

#include <vector>

#include "core/poly_gcd.h"
#include "field/gfpk.h"
#include "field/zp.h"
#include "matrix/gauss.h"
#include "matrix/sylvester.h"
#include "poly/poly.h"
#include "util/prng.h"

namespace kp {
namespace {

using field::Zp;
using matrix::Sylvester;
using poly::PolyRing;

using F = Zp<1000003>;
F f;
PolyRing<F> ring(f);

PolyRing<F>::Element random_monic(std::size_t deg, util::Prng& prng) {
  auto p = ring.random_degree(prng, static_cast<std::int64_t>(deg) - 1);
  p.resize(deg + 1, f.zero());
  p[deg] = f.one();
  return p;
}

TEST(SylvesterTest, DenseLayoutMatchesDefinition) {
  // f = x^2 + 2x + 3, g = 4x + 5: S is 3x3,
  //   [1 2 3]
  //   [4 5 0]
  //   [0 4 5]
  PolyRing<F>::Element pf{3, 2, 1};
  PolyRing<F>::Element pg{5, 4};
  Sylvester<F> s(ring, pf, pg);
  auto d = s.to_dense(f);
  ASSERT_EQ(d.rows(), 3u);
  EXPECT_EQ(d.at(0, 0), 1u);
  EXPECT_EQ(d.at(0, 1), 2u);
  EXPECT_EQ(d.at(0, 2), 3u);
  EXPECT_EQ(d.at(1, 0), 4u);
  EXPECT_EQ(d.at(1, 1), 5u);
  EXPECT_EQ(d.at(1, 2), 0u);
  EXPECT_EQ(d.at(2, 0), 0u);
  EXPECT_EQ(d.at(2, 1), 4u);
  EXPECT_EQ(d.at(2, 2), 5u);
}

TEST(SylvesterTest, ApplyTransposeMatchesDense) {
  util::Prng prng(1);
  for (int trial = 0; trial < 20; ++trial) {
    auto pf = random_monic(2 + prng.below(5), prng);
    auto pg = random_monic(1 + prng.below(5), prng);
    Sylvester<F> s(ring, pf, pg);
    std::vector<F::Element> x(s.dim());
    for (auto& e : x) e = f.random(prng);
    auto dense = s.to_dense(f);
    EXPECT_EQ(s.apply_transpose(x),
              matrix::mat_vec(f, matrix::mat_transpose(f, dense), x));
  }
}

TEST(SylvesterTest, ResultantOfLinearFactors) {
  // res(x - a, x - b) = a - b (with the classical sign convention
  // res(f, g) = lc(f)^dg lc(g)^df prod (alpha_i - beta_j)).
  for (std::int64_t a : {2, 7, 100}) {
    for (std::int64_t b : {3, 7, 50}) {
      PolyRing<F>::Element pf{f.from_int(-a), f.one()};
      PolyRing<F>::Element pg{f.from_int(-b), f.one()};
      Sylvester<F> s(ring, pf, pg);
      EXPECT_EQ(core::resultant_gauss(f, s), f.from_int(a - b));
    }
  }
}

TEST(SylvesterTest, ResultantZeroIffCommonRoot) {
  util::Prng prng(2);
  // Common factor => resultant 0.
  auto h = random_monic(2, prng);
  auto pf = ring.mul(h, random_monic(3, prng));
  auto pg = ring.mul(h, random_monic(2, prng));
  Sylvester<F> s(ring, pf, pg);
  EXPECT_TRUE(f.is_zero(core::resultant_gauss(f, s)));
  // Coprime (generic) => non-zero.
  auto pa = random_monic(3, prng);
  auto pb = random_monic(3, prng);
  if (ring.gcd(pa, pb) == ring.one()) {
    Sylvester<F> s2(ring, pa, pb);
    EXPECT_FALSE(f.is_zero(core::resultant_gauss(f, s2)));
  }
}

TEST(SylvesterTest, ResultantMultiplicative) {
  // res(f1*f2, g) = res(f1, g) * res(f2, g).
  util::Prng prng(3);
  auto f1 = random_monic(2, prng);
  auto f2 = random_monic(3, prng);
  auto g = random_monic(3, prng);
  Sylvester<F> s12(ring, ring.mul(f1, f2), g);
  Sylvester<F> s1(ring, f1, g);
  Sylvester<F> s2(ring, f2, g);
  EXPECT_EQ(core::resultant_gauss(f, s12),
            f.mul(core::resultant_gauss(f, s1), core::resultant_gauss(f, s2)));
}

TEST(SylvesterTest, RandomizedResultantMatchesGauss) {
  util::Prng prng(4);
  for (int trial = 0; trial < 5; ++trial) {
    auto pf = random_monic(4, prng);
    auto pg = random_monic(3, prng);
    Sylvester<F> s(ring, pf, pg);
    EXPECT_EQ(core::resultant_randomized(f, s, prng), core::resultant_gauss(f, s));
  }
}

TEST(SylvesterTest, KernelDimensionIsGcdDegree) {
  util::Prng prng(5);
  for (std::size_t d : {0u, 1u, 2u, 4u}) {
    auto h = random_monic(d, prng);
    auto pf = ring.mul(h, random_monic(3, prng));
    auto pg = ring.mul(h, random_monic(4, prng));
    // Certify the planted gcd really is the gcd (generic cofactors).
    if (kp::poly::PolyRing<F>::degree(ring.gcd(pf, pg)) !=
        static_cast<std::int64_t>(d)) {
      continue;
    }
    Sylvester<F> s(ring, pf, pg);
    const auto dense = s.to_dense(f);
    EXPECT_EQ(s.dim() - matrix::rank_gauss(f, dense), d);
    EXPECT_EQ(core::gcd_degree_randomized(f, s, prng), d);
  }
}

TEST(PolyGcdTest, RecoversPlantedGcd) {
  util::Prng prng(6);
  for (std::size_t d : {0u, 1u, 3u, 5u}) {
    auto h = random_monic(d, prng);
    auto pf = ring.mul(h, random_monic(4, prng));
    auto pg = ring.mul(h, random_monic(5, prng));
    auto euclid = ring.gcd(pf, pg);
    auto lin = core::gcd_via_linear_algebra(ring, pf, pg, prng);
    EXPECT_EQ(lin, euclid) << "planted degree " << d;
  }
}

TEST(PolyGcdTest, GcdFromDegreeRejectsWrongDegree) {
  util::Prng prng(7);
  auto h = random_monic(2, prng);
  auto pf = ring.mul(h, random_monic(3, prng));
  auto pg = ring.mul(h, random_monic(3, prng));
  if (kp::poly::PolyRing<F>::degree(ring.gcd(pf, pg)) != 2) GTEST_SKIP();
  EXPECT_TRUE(core::gcd_from_degree(ring, pf, pg, 2).has_value());
  EXPECT_FALSE(core::gcd_from_degree(ring, pf, pg, 3).has_value());
  // Degree 1 guess: the square system is singular or produces a non-divisor.
  EXPECT_FALSE(core::gcd_from_degree(ring, pf, pg, 1).has_value());
}

TEST(PolyGcdTest, CoprimeInputsGiveOne) {
  util::Prng prng(8);
  for (int trial = 0; trial < 10; ++trial) {
    auto pf = random_monic(3 + prng.below(3), prng);
    auto pg = random_monic(2 + prng.below(4), prng);
    if (ring.gcd(pf, pg) != ring.one()) continue;
    EXPECT_EQ(core::gcd_via_linear_algebra(ring, pf, pg, prng), ring.one());
  }
}

TEST(PolyGcdTest, WorksOverGF256) {
  field::GFpk gf(2, 8);
  poly::PolyRing<field::GFpk> gring(gf);
  util::Prng prng(9);
  auto rand_monic = [&](std::size_t deg) {
    auto p = gring.random_degree(prng, static_cast<std::int64_t>(deg) - 1);
    p.resize(deg + 1, gf.zero());
    p[deg] = gf.one();
    return p;
  };
  auto h = rand_monic(2);
  auto pf = gring.mul(h, rand_monic(3));
  auto pg = gring.mul(h, rand_monic(4));
  auto euclid = gring.gcd(pf, pg);
  auto lin = core::gcd_via_linear_algebra(gring, pf, pg, prng, 256);
  EXPECT_TRUE(gring.eq(lin, euclid));
}

TEST(PolyGcdTest, CofactorsSatisfyBezoutIdentity) {
  // The "Euclidean scheme coefficients" of section 5: h = u f + v g with
  // the degree bounds deg u < dg - d, deg v < df - d.
  util::Prng prng(11);
  for (std::size_t d : {0u, 1u, 3u}) {
    auto h = random_monic(d, prng);
    auto pf = ring.mul(h, random_monic(4, prng));
    auto pg = ring.mul(h, random_monic(5, prng));
    const auto true_d =
        static_cast<std::size_t>(kp::poly::PolyRing<F>::degree(ring.gcd(pf, pg)));
    auto res = core::gcd_with_cofactors_from_degree(ring, pf, pg, true_d);
    ASSERT_TRUE(res.has_value()) << d;
    auto combo = ring.add(ring.mul(res->u, pf), ring.mul(res->v, pg));
    EXPECT_EQ(combo, res->h);
    EXPECT_LT(kp::poly::PolyRing<F>::degree(res->u),
              static_cast<std::int64_t>(pg.size() - 1 - true_d));
    EXPECT_LT(kp::poly::PolyRing<F>::degree(res->v),
              static_cast<std::int64_t>(pf.size() - 1 - true_d));
  }
}

TEST(PolyGcdTest, OneInputDividesTheOther) {
  util::Prng prng(10);
  auto h = random_monic(3, prng);
  auto pf = ring.mul(h, random_monic(2, prng));
  auto lin = core::gcd_via_linear_algebra(ring, pf, h, prng);
  EXPECT_EQ(lin, h);
}

}  // namespace
}  // namespace kp

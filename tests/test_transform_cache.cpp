// Property tests for the batched/cached transform layer (poly/ntt.h's
// ntt_many + poly/transform_cache.h):
//
//   * ntt_many produces exactly the transforms of one-at-a-time ntt_inplace
//     calls, with identical folded op counts, for any worker limit;
//   * TransformedPoly::mul / mul_many are element-identical AND
//     op-count-identical to plain ring.mul across moduli that take the fast
//     lazy path, the eager path (p >= 2^62... here the Mersenne fallback),
//     and an NTT-less prime (fallback multiplication) -- cache hits recharge
//     the recorded transform cost, so a second identical product must count
//     the same as the first;
//   * the same holds through the Kronecker packing of TruncSeriesRing;
//   * matpoly_mul is value-identical to mat_mul over the polynomial ring;
//   * toeplitz_charpoly and kp_solve are bit-identical for 1, 2, and
//     unlimited workers (the end-to-end determinism contract);
//   * the shared twiddle cache survives concurrent first-touch from raw
//     threads (the ThreadSanitizer CI job runs this file).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/solver.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/matpoly.h"
#include "matrix/structured.h"
#include "poly/poly.h"
#include "pram/parallel_for.h"
#include "seq/newton_toeplitz.h"
#include "util/op_count.h"
#include "util/prng.h"

namespace kp {
namespace {

using field::GFp;
using field::GFpReference;
using poly::PolyRing;
using poly::TransformedPoly;

std::vector<GFp::Element> random_poly(const GFp& f, std::size_t len,
                                      util::Prng& prng) {
  std::vector<GFp::Element> v(len);
  for (auto& e : v) e = f.random(prng);
  PolyRing<GFp>(f).strip(v);
  return v;
}

// ---------------------------------------------------------------------------
// ntt_many vs one-at-a-time transforms.

TEST(NttManyTest, MatchesSingleTransformsAndOpCounts) {
  GFp f(field::kNttPrime);
  util::Prng prng(31);
  const std::size_t n = 1 << 10;
  const std::uint64_t p = f.characteristic();
  const std::uint64_t w = poly::detail::root_of_unity(p, n);

  std::vector<std::vector<GFp::Element>> ref(7);
  for (auto& v : ref) {
    v.resize(n);
    for (auto& e : v) e = f.random(prng);
  }
  auto batch_data = ref;

  util::OpScope serial_scope;
  for (auto& v : ref) poly::detail::ntt_inplace(f, v, w, p);
  const auto serial_ops = serial_scope.counts().total();

  std::vector<std::vector<GFp::Element>*> ptrs;
  for (auto& v : batch_data) ptrs.push_back(&v);
  util::OpScope batch_scope;
  poly::ntt_many(f, ptrs, w, p);
  const auto batch_ops = batch_scope.counts().total();

  EXPECT_EQ(batch_data, ref);
  EXPECT_EQ(batch_ops, serial_ops);
  EXPECT_GT(batch_ops, 0u);
}

TEST(NttManyTest, BitIdenticalAcrossWorkerLimits) {
  GFp f(field::kNttPrime);
  const std::size_t n = 1 << 12;  // above the level-parallel grain threshold
  const std::uint64_t p = f.characteristic();
  const std::uint64_t w = poly::detail::root_of_unity(p, n);
  auto& ctx = pram::ExecutionContext::global();

  auto run = [&](unsigned limit) {
    ctx.set_worker_limit(limit);
    util::Prng prng(77);
    std::vector<std::vector<GFp::Element>> data(5);
    for (auto& v : data) {
      v.resize(n);
      for (auto& e : v) e = f.random(prng);
    }
    std::vector<std::vector<GFp::Element>*> ptrs;
    for (auto& v : data) ptrs.push_back(&v);
    util::OpScope scope;
    poly::ntt_many(f, ptrs, w, p);
    ctx.set_worker_limit(0);
    return std::make_pair(data, scope.counts().total());
  };

  const auto one = run(1);
  const auto two = run(2);
  const auto many = run(8);
  EXPECT_EQ(one.first, two.first);
  EXPECT_EQ(one.first, many.first);
  EXPECT_EQ(one.second, two.second);
  EXPECT_EQ(one.second, many.second);
}

// ---------------------------------------------------------------------------
// TransformedPoly: values and op counts equal plain ring.mul, for moduli
// exercising the lazy-fast path, the NTT-less fallback, and a small prime.

class CachedMulIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CachedMulIdentity, MulMatchesRingMulValuesAndOps) {
  GFp f(GetParam());
  PolyRing<GFp> ring(f);
  util::Prng prng(5);

  for (const std::size_t la : {0u, 3u, 33u, 200u}) {
    for (const std::size_t lb : {0u, 7u, 64u, 129u}) {
      const auto a = random_poly(f, la, prng);
      const auto b = random_poly(f, lb, prng);
      const TransformedPoly<GFp> ta(ring, a);

      // Two rounds: round 2 hits the spectrum cache and must still charge
      // identical logical ops (the recharge contract).
      for (int round = 0; round < 2; ++round) {
        util::OpScope plain_scope;
        const auto want = ring.mul(a, b);
        const auto plain_ops = plain_scope.counts();

        util::OpScope cached_scope;
        const auto got = ta.mul(ring, b);
        const auto cached_ops = cached_scope.counts();

        EXPECT_EQ(got, want) << "p=" << GetParam() << " la=" << la
                             << " lb=" << lb << " round=" << round;
        EXPECT_EQ(cached_ops.total(), plain_ops.total())
            << "p=" << GetParam() << " la=" << la << " lb=" << lb
            << " round=" << round;
      }

      // Operand-order-preserving form: ring.mul(b, a) on the fallback path.
      util::OpScope plain_scope;
      const auto want = ring.mul(b, a);
      const auto plain_ops = plain_scope.counts();
      util::OpScope cached_scope;
      const auto got = ta.mul(ring, b, /*fixed_first=*/false);
      const auto cached_ops = cached_scope.counts();
      EXPECT_EQ(got, want);
      EXPECT_EQ(cached_ops.total(), plain_ops.total());
    }
  }
}

TEST_P(CachedMulIdentity, MulManyMatchesIndividualProducts) {
  GFp f(GetParam());
  PolyRing<GFp> ring(f);
  util::Prng prng(11);

  const auto fixed = random_poly(f, 150, prng);
  const TransformedPoly<GFp> tf(ring, fixed);

  std::vector<std::vector<GFp::Element>> xs;
  for (const std::size_t len : {0u, 1u, 17u, 100u, 150u, 301u}) {
    xs.push_back(random_poly(f, len, prng));
  }
  std::vector<const std::vector<GFp::Element>*> ptrs;
  for (const auto& x : xs) ptrs.push_back(&x);

  util::OpScope plain_scope;
  std::vector<std::vector<GFp::Element>> want;
  for (const auto& x : xs) want.push_back(ring.mul(fixed, x));
  const auto plain_ops = plain_scope.counts();

  util::OpScope batch_scope;
  const auto got = tf.mul_many(ring, ptrs);
  const auto batch_ops = batch_scope.counts();

  EXPECT_EQ(got, want) << "p=" << GetParam();
  EXPECT_EQ(batch_ops.total(), plain_ops.total()) << "p=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Moduli, CachedMulIdentity,
                         ::testing::Values(std::uint64_t{65537},
                                           field::kP61,  // two-adicity 1: NTT
                                                         // unavailable, pure
                                                         // fallback path
                                           field::kNttPrime));

TEST(CachedMulIdentity, ReferenceFieldCountsMatchFastField) {
  // The PR-2 contract extended to the cached layer: GFp (fast kernels) and
  // GFpReference (generic butterflies) charge identical logical op counts
  // through TransformedPoly, including on cache hits.
  GFp fast(field::kNttPrime);
  GFpReference ref(field::kNttPrime);
  PolyRing<GFp> fring(fast);
  PolyRing<GFpReference> rring(ref);
  util::Prng prng(23);

  const auto a = random_poly(fast, 120, prng);
  const auto b = random_poly(fast, 95, prng);

  const TransformedPoly<GFp> tfast(fring, a);
  const TransformedPoly<GFpReference> tref(rring, a);
  for (int round = 0; round < 2; ++round) {
    util::OpScope fs;
    const auto got_fast = tfast.mul(fring, b);
    const auto fast_ops = fs.counts();
    util::OpScope rs;
    const auto got_ref = tref.mul(rring, b);
    const auto ref_ops = rs.counts();
    EXPECT_EQ(got_fast, got_ref) << "round=" << round;
    EXPECT_EQ(fast_ops.total(), ref_ops.total()) << "round=" << round;
  }
}

TEST(CachedMulIdentity, AvoidedForwardsShowOnlyInStats) {
  GFp f(field::kNttPrime);
  PolyRing<GFp> ring(f);
  util::Prng prng(3);
  const auto a = random_poly(f, 200, prng);
  const auto b = random_poly(f, 180, prng);
  const TransformedPoly<GFp> ta(ring, a);

  poly::reset_transform_stats();
  (void)ta.mul(ring, b);
  const auto cold = poly::transform_stats();
  (void)ta.mul(ring, b);
  (void)ta.mul(ring, b);
  const auto warm = poly::transform_stats();

  EXPECT_EQ(cold.forward_avoided, 0u);
  EXPECT_GE(warm.forward_avoided, 2u);  // fixed side served from cache twice
  // Each product still transforms the varying side and runs one inverse.
  EXPECT_EQ(warm.inverse, 3 * cold.inverse);
}

TEST(CachedMulIdentity, KillSwitchFallsBackToRingMul) {
  GFp f(field::kNttPrime);
  PolyRing<GFp> ring(f);
  util::Prng prng(9);
  const auto a = random_poly(f, 90, prng);
  const auto b = random_poly(f, 70, prng);
  const TransformedPoly<GFp> ta(ring, a);

  poly::transform_cache_enabled().store(false);
  poly::reset_transform_stats();
  const auto got = ta.mul(ring, b);
  const auto stats = poly::transform_stats();
  poly::transform_cache_enabled().store(true);

  EXPECT_EQ(got, ring.mul(a, b));
  EXPECT_EQ(stats.forward_avoided, 0u);
}

// ---------------------------------------------------------------------------
// Bivariate (truncated-series) cached multiplication.

TEST(TruncSeriesCacheTest, CachedMulMatchesRingMulValuesAndOps) {
  GFp f(field::kNttPrime);
  using SR = poly::TruncSeriesRing<GFp>;
  SR sr(f, 8);
  PolyRing<SR> biv(sr);
  util::Prng prng(17);

  auto random_biv = [&](std::size_t len) {
    std::vector<SR::Element> v(len);
    for (auto& s : v) {
      s.assign(8, f.zero());
      for (auto& e : s) e = f.random(prng);
    }
    biv.strip(v);
    return v;
  };

  const auto a = random_biv(40);
  const auto b = random_biv(33);
  const TransformedPoly<SR> ta(biv, a);

  for (int round = 0; round < 2; ++round) {
    util::OpScope plain_scope;
    const auto want = biv.mul(a, b);
    const auto plain_ops = plain_scope.counts();
    util::OpScope cached_scope;
    const auto got = ta.mul(biv, b);
    const auto cached_ops = cached_scope.counts();
    EXPECT_EQ(got, want) << "round=" << round;
    EXPECT_EQ(cached_ops.total(), plain_ops.total()) << "round=" << round;
  }
}

// ---------------------------------------------------------------------------
// Batched matrix-of-polynomials product.

TEST(MatpolyMulTest, MatchesMatMulOverPolyRing) {
  GFp f(field::kNttPrime);
  PolyRing<GFp> ring(f);
  util::Prng prng(29);

  matrix::Matrix<PolyRing<GFp>> a(3, 4, ring.zero()), b(4, 2, ring.zero());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t k = 0; k < 4; ++k) {
      a.at(i, k) = random_poly(f, 5 + 13 * ((i + k) % 4), prng);
    }
  }
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t j = 0; j < 2; ++j) {
      b.at(k, j) = random_poly(f, 3 + 17 * ((k + j) % 3), prng);
    }
  }
  b.at(1, 0).clear();  // a zero entry must not perturb the accumulation

  const auto want = matrix::mat_mul(ring, a, b);
  const auto got = matrix::matpoly_mul(ring, a, b);
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      EXPECT_EQ(got.at(i, j), want.at(i, j)) << i << "," << j;
    }
  }
}

TEST(MatpolyMulTest, FallbackPathsMatchToo) {
  // Mersenne prime: no NTT of usable order, so matpoly_mul must detect this
  // and produce mat_mul's result through the fallback.
  GFp f(field::kP61);
  PolyRing<GFp> ring(f);
  util::Prng prng(37);
  matrix::Matrix<PolyRing<GFp>> a(2, 3, ring.zero()), b(3, 2, ring.zero());
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t k = 0; k < 3; ++k) a.at(i, k) = random_poly(f, 20, prng);
  }
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t j = 0; j < 2; ++j) b.at(k, j) = random_poly(f, 15, prng);
  }
  const auto want = matrix::mat_mul(ring, a, b);
  const auto got = matrix::matpoly_mul(ring, a, b);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) EXPECT_EQ(got.at(i, j), want.at(i, j));
  }
}

TEST(MatpolyMulTest, BitIdenticalAcrossWorkerLimits) {
  GFp f(field::kNttPrime);
  PolyRing<GFp> ring(f);
  auto& ctx = pram::ExecutionContext::global();
  auto run = [&](unsigned limit) {
    ctx.set_worker_limit(limit);
    util::Prng prng(41);
    matrix::Matrix<PolyRing<GFp>> a(3, 3, ring.zero()), b(3, 3, ring.zero());
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t k = 0; k < 3; ++k) {
        a.at(i, k) = random_poly(f, 64, prng);
        b.at(i, k) = random_poly(f, 48, prng);
      }
    }
    auto out = matrix::matpoly_mul(ring, a, b);
    ctx.set_worker_limit(0);
    return out.data();
  };
  const auto one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

// ---------------------------------------------------------------------------
// End-to-end determinism: charpoly and solver across worker limits.

TEST(EndToEndDeterminism, ToeplitzCharpolyBitIdenticalAcrossWorkers) {
  GFp f(field::kNttPrime);
  auto& ctx = pram::ExecutionContext::global();
  auto run = [&](unsigned limit) {
    ctx.set_worker_limit(limit);
    util::Prng prng(51);
    std::vector<GFp::Element> diag(2 * 32 - 1);
    for (auto& e : diag) e = f.random(prng);
    matrix::Toeplitz<GFp> t(32, std::move(diag));
    util::OpScope scope;
    auto cp = seq::toeplitz_charpoly(f, t);
    ctx.set_worker_limit(0);
    return std::make_pair(cp, scope.counts().total());
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto many = run(8);
  EXPECT_EQ(one.first, two.first);
  EXPECT_EQ(one.first, many.first);
  EXPECT_EQ(one.second, two.second);
  EXPECT_EQ(one.second, many.second);
}

TEST(EndToEndDeterminism, SolverBitIdenticalAcrossWorkers) {
  GFp f(field::kNttPrime);
  PolyRing<GFp> ring(f);
  auto& ctx = pram::ExecutionContext::global();

  util::Prng setup(61);
  const std::size_t n = 16;
  matrix::Toeplitz<GFp> t = [&] {
    for (;;) {
      std::vector<GFp::Element> diag(2 * n - 1);
      for (auto& e : diag) e = f.random(setup);
      matrix::Toeplitz<GFp> cand(n, std::move(diag));
      if (!f.is_zero(matrix::det_gauss(f, cand.to_dense(f)))) return cand;
    }
  }();
  std::vector<GFp::Element> b(n);
  for (auto& e : b) e = f.random(setup);

  auto run = [&](unsigned limit) {
    ctx.set_worker_limit(limit);
    util::Prng prng(4711);
    matrix::ToeplitzBox<GFp> box(ring, t);
    auto res = core::kp_solve(f, box, b, prng);
    ctx.set_worker_limit(0);
    EXPECT_TRUE(res.ok);
    return std::make_tuple(res.x, res.det, res.charpoly_at);
  };
  const auto one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(8));
}

// ---------------------------------------------------------------------------
// Concurrent first-touch of the shared twiddle cache (raw threads, several
// sizes and two moduli at once; the TSan CI job watches this).

TEST(SharedTwiddleCacheTest, ConcurrentFirstTouchIsSafeAndCorrect) {
  const std::uint64_t primes[] = {field::kNttPrime, 65537};
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int rep = 0; rep < 4; ++rep) {
    for (const std::uint64_t p : primes) {
      for (const std::size_t n : {1u << 4, 1u << 7, 1u << 9}) {
        threads.emplace_back([p, n, rep, &failures] {
          GFp f(p);
          util::Prng prng(static_cast<std::uint64_t>(n) + rep);
          std::vector<GFp::Element> a(n / 2), b(n / 2);
          for (auto& e : a) e = f.random(prng);
          for (auto& e : b) e = f.random(prng);
          PolyRing<GFp> ring(f, poly::MulStrategy::kNtt);
          const auto fast = ring.mul(a, b);
          PolyRing<GFp> slow_ring(f, poly::MulStrategy::kSchoolbook);
          if (fast != slow_ring.mul(a, b)) failures.fetch_add(1);
        });
      }
    }
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// Byte-budget / LRU bound on the shared twiddle cache (KP_CACHE_BUDGET).

namespace {
/// One NTT-path product at transform size ~2n, verified against schoolbook;
/// populates the twiddle cache for that (p, n) as a side effect.
void checked_mul(std::uint64_t p, std::size_t n, std::uint64_t seed) {
  GFp f(p);
  util::Prng prng(seed);
  std::vector<GFp::Element> a(n), b(n);
  for (auto& e : a) e = f.random(prng);
  for (auto& e : b) e = f.random(prng);
  PolyRing<GFp> fast(f, poly::MulStrategy::kNtt);
  PolyRing<GFp> slow(f, poly::MulStrategy::kSchoolbook);
  ASSERT_EQ(fast.mul(a, b), slow.mul(a, b)) << "p=" << p << " n=" << n;
}
}  // namespace

TEST(SharedTwiddleCacheTest, ByteBudgetEvictsLruAndStaysCorrect) {
  const auto before = poly::twiddle_cache_stats();
  // Tight enough that at most one transform-size entry survives (the
  // evictor always keeps the newest entry, so the hot path never starves).
  poly::set_cache_budget(1);
  for (int round = 0; round < 3; ++round) {
    for (const std::size_t n : {1u << 4, 1u << 6, 1u << 8}) {
      checked_mul(field::kNttPrime, n, 17 + round);
    }
  }
  const auto after = poly::twiddle_cache_stats();
  poly::set_cache_budget(0);  // restore: unlimited
  EXPECT_GT(after.evictions, before.evictions);
  EXPECT_LE(after.entries, 2u);  // budget held (evictor keeps >= 1 entry)
}

TEST(SharedTwiddleCacheTest, UnlimitedBudgetCachesAndCountsHits) {
  poly::set_cache_budget(0);
  checked_mul(field::kNttPrime, 1u << 5, 3);
  const auto first = poly::twiddle_cache_stats();
  checked_mul(field::kNttPrime, 1u << 5, 4);  // same size: pure hits
  const auto second = poly::twiddle_cache_stats();
  EXPECT_GT(second.hits, first.hits);
  EXPECT_EQ(second.entries, first.entries);
  EXPECT_EQ(second.evictions, first.evictions);
}

TEST(SharedTwiddleCacheTest, ConcurrentUseUnderTightBudgetIsSafe) {
  // TSan target: lock-free readers racing the LRU evictor.  Every thread
  // keeps verifying products while the tight budget forces continuous
  // eviction underneath them.
  poly::set_cache_budget(1);
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([t, &bad] {
      for (int i = 0; i < 12; ++i) {
        const std::size_t n = 1u << (4 + (t + i) % 4);
        GFp f(field::kNttPrime);
        util::Prng prng(static_cast<std::uint64_t>(t * 100 + i));
        std::vector<GFp::Element> a(n), b(n);
        for (auto& e : a) e = f.random(prng);
        for (auto& e : b) e = f.random(prng);
        PolyRing<GFp> fast(f, poly::MulStrategy::kNtt);
        PolyRing<GFp> slow(f, poly::MulStrategy::kSchoolbook);
        if (fast.mul(a, b) != slow.mul(a, b)) bad.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  poly::set_cache_budget(0);
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace kp

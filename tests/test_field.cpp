// Tests for the field substrate: prime fields, extension fields, BigInt, Q.
//
// Field-axiom checks are written once, generically, and instantiated for
// every field type (typed tests) -- the paper's algorithms only ever see the
// Field concept, so these axioms are the substrate's contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "field/bigint.h"
#include "field/concepts.h"
#include "field/gfpk.h"
#include "field/primes.h"
#include "field/rational.h"
#include "field/zp.h"
#include "util/op_count.h"
#include "util/prng.h"

namespace kp {
namespace {

using field::BigInt;
using field::GFp;
using field::GFpk;
using field::Rational;
using field::RationalField;
using field::Zp;

static_assert(field::Field<Zp<97>>);
static_assert(field::Field<GFp>);
static_assert(field::Field<RationalField>);
static_assert(field::Field<GFpk>);

// ---------------------------------------------------------------------------
// Generic field-axiom property tests.

template <class FieldT>
FieldT make_field();

template <>
Zp<101> make_field<Zp<101>>() { return {}; }
template <>
GFp make_field<GFp>() { return GFp(field::kP61); }
template <>
RationalField make_field<RationalField>() { return {}; }
template <>
GFpk make_field<GFpk>() { return GFpk(5, 3); }

template <class FieldT>
class FieldAxioms : public ::testing::Test {
 protected:
  FieldT f = make_field<FieldT>();
  util::Prng prng{12345};
};

using FieldTypes = ::testing::Types<Zp<101>, GFp, RationalField, GFpk>;
TYPED_TEST_SUITE(FieldAxioms, FieldTypes);

TYPED_TEST(FieldAxioms, AdditiveGroup) {
  auto& f = this->f;
  for (int trial = 0; trial < 50; ++trial) {
    auto a = f.random(this->prng);
    auto b = f.random(this->prng);
    auto c = f.random(this->prng);
    EXPECT_TRUE(f.eq(f.add(a, b), f.add(b, a)));
    EXPECT_TRUE(f.eq(f.add(f.add(a, b), c), f.add(a, f.add(b, c))));
    EXPECT_TRUE(f.eq(f.add(a, f.zero()), a));
    EXPECT_TRUE(f.is_zero(f.add(a, f.neg(a))));
    EXPECT_TRUE(f.eq(f.sub(a, b), f.add(a, f.neg(b))));
  }
}

TYPED_TEST(FieldAxioms, MultiplicativeGroup) {
  auto& f = this->f;
  for (int trial = 0; trial < 50; ++trial) {
    auto a = f.random(this->prng);
    auto b = f.random(this->prng);
    auto c = f.random(this->prng);
    EXPECT_TRUE(f.eq(f.mul(a, b), f.mul(b, a)));
    EXPECT_TRUE(f.eq(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c))));
    EXPECT_TRUE(f.eq(f.mul(a, f.one()), a));
    if (!f.is_zero(a)) {
      EXPECT_TRUE(f.eq(f.mul(a, f.inv(a)), f.one()));
      EXPECT_TRUE(f.eq(f.div(b, a), f.mul(b, f.inv(a))));
    }
  }
}

TYPED_TEST(FieldAxioms, Distributivity) {
  auto& f = this->f;
  for (int trial = 0; trial < 50; ++trial) {
    auto a = f.random(this->prng);
    auto b = f.random(this->prng);
    auto c = f.random(this->prng);
    EXPECT_TRUE(
        f.eq(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c))));
  }
}

TYPED_TEST(FieldAxioms, FromIntIsRingHomomorphism) {
  auto& f = this->f;
  for (std::int64_t x : {-7, -1, 0, 1, 2, 13, 1000}) {
    for (std::int64_t y : {-3, 0, 5, 17}) {
      EXPECT_TRUE(f.eq(f.from_int(x + y), f.add(f.from_int(x), f.from_int(y))));
      EXPECT_TRUE(f.eq(f.from_int(x * y), f.mul(f.from_int(x), f.from_int(y))));
    }
  }
}

TYPED_TEST(FieldAxioms, SampleStaysInBounds) {
  auto& f = this->f;
  // sample(prng, 1) must be deterministic (the single element 0).
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(f.is_zero(f.sample(this->prng, 1)));
  }
  // Small sample sets are hit uniformly enough to see every value.
  std::vector<bool> seen(4, false);
  for (int i = 0; i < 200; ++i) {
    auto v = f.sample(this->prng, 4);
    for (std::int64_t j = 0; j < 4; ++j) {
      if (f.eq(v, f.from_int(j))) seen[static_cast<std::size_t>(j)] = true;
    }
  }
  const std::uint64_t card = f.cardinality();
  const std::size_t expect_distinct = card == 0 ? 4 : std::min<std::uint64_t>(4, card);
  std::size_t distinct = 0;
  for (bool s : seen) distinct += s;
  EXPECT_GE(distinct, expect_distinct);
}

// ---------------------------------------------------------------------------
// Prime-field specifics.

TEST(ZpTest, KnownValues) {
  Zp<97> f;
  EXPECT_EQ(f.add(90, 10), 3u);
  EXPECT_EQ(f.sub(3, 10), 90u);
  EXPECT_EQ(f.mul(50, 2), 3u);
  EXPECT_EQ(f.mul(f.inv(5), 5), 1u);
  EXPECT_EQ(f.from_int(-1), 96u);
  EXPECT_EQ(f.from_int(97), 0u);
}

TEST(ZpTest, LargePrimeRoundTrip) {
  GFp f(field::kP61);
  util::Prng prng(7);
  for (int i = 0; i < 100; ++i) {
    const auto a = f.random(prng);
    if (f.is_zero(a)) continue;
    EXPECT_EQ(f.mul(a, f.inv(a)), f.one());
  }
}

TEST(ZpTest, OpCountingReportsWork) {
  Zp<101> f;
  util::OpScope scope;
  auto x = f.mul(f.add(3, 4), f.inv(5));
  (void)x;
  const auto counts = scope.counts();
  EXPECT_EQ(counts.add, 1u);
  EXPECT_EQ(counts.mul, 1u);
  EXPECT_EQ(counts.div, 1u);
}

TEST(PrimesTest, MillerRabinKnownValues) {
  EXPECT_TRUE(field::is_prime_u64(2));
  EXPECT_TRUE(field::is_prime_u64(97));
  EXPECT_TRUE(field::is_prime_u64(field::kP61));
  EXPECT_TRUE(field::is_prime_u64(field::kNttPrime));
  EXPECT_FALSE(field::is_prime_u64(1));
  EXPECT_FALSE(field::is_prime_u64(561));         // Carmichael
  EXPECT_FALSE(field::is_prime_u64(1ULL << 61));  // even
}

TEST(PrimesTest, NttPrimeHasLargeTwoAdicRoot) {
  // kNttPrime = 5 * 2^55 + 1, so the group has an element of order 2^55.
  EXPECT_EQ((field::kNttPrime - 1) % (1ULL << 55), 0u);
  const std::uint64_t g = field::primitive_root(field::kNttPrime);
  const std::uint64_t w =
      field::detail::powmod(g, (field::kNttPrime - 1) >> 55, field::kNttPrime);
  // w has order exactly 2^55.
  EXPECT_NE(field::detail::powmod(w, 1ULL << 54, field::kNttPrime), 1u);
  EXPECT_EQ(field::detail::powmod(w, 1ULL << 55, field::kNttPrime) % field::kNttPrime, 1u);
}

TEST(PrimesTest, PrimitiveRootSmall) {
  EXPECT_EQ(field::primitive_root(7), 3u);   // 3 generates Z/7Z*
  const std::uint64_t g = field::primitive_root(101);
  std::vector<bool> seen(101, false);
  std::uint64_t x = 1;
  for (int i = 0; i < 100; ++i) {
    x = x * g % 101;
    seen[x] = true;
  }
  for (std::uint64_t v = 1; v <= 100; ++v) EXPECT_TRUE(seen[v]) << v;
}

// ---------------------------------------------------------------------------
// BigInt.

TEST(BigIntTest, Int64RoundTrip) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                         std::int64_t{123456789}, std::int64_t{-987654321},
                         std::numeric_limits<std::int64_t>::max(),
                         std::numeric_limits<std::int64_t>::min()}) {
    BigInt b(v);
    ASSERT_TRUE(b.fits_int64());
    EXPECT_EQ(b.to_int64(), v);
    EXPECT_EQ(b.to_string(), std::to_string(v));
  }
}

TEST(BigIntTest, DecimalParseAndPrint) {
  const std::string digits = "123456789012345678901234567890123456789";
  BigInt b(digits);
  EXPECT_EQ(b.to_string(), digits);
  BigInt neg("-" + digits);
  EXPECT_EQ(neg.to_string(), "-" + digits);
  EXPECT_EQ(b + neg, BigInt(0));
}

TEST(BigIntTest, ArithmeticMatchesInt64) {
  util::Prng prng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const std::int64_t x = prng.range(-1000000, 1000000);
    const std::int64_t y = prng.range(-1000000, 1000000);
    EXPECT_EQ((BigInt(x) + BigInt(y)).to_int64(), x + y);
    EXPECT_EQ((BigInt(x) - BigInt(y)).to_int64(), x - y);
    EXPECT_EQ((BigInt(x) * BigInt(y)).to_int64(), x * y);
    if (y != 0) {
      EXPECT_EQ((BigInt(x) / BigInt(y)).to_int64(), x / y);
      EXPECT_EQ((BigInt(x) % BigInt(y)).to_int64(), x % y);
    }
  }
}

TEST(BigIntTest, DivModInvariantLargeRandom) {
  util::Prng prng(123);
  for (int trial = 0; trial < 100; ++trial) {
    // Build random numbers of up to ~40 limbs.
    auto random_big = [&prng](int max_limbs) {
      BigInt acc(0);
      const int limbs = static_cast<int>(prng.below(static_cast<std::uint64_t>(max_limbs))) + 1;
      for (int i = 0; i < limbs; ++i) {
        acc = acc.shl(32) + BigInt(static_cast<std::int64_t>(prng() & 0xffffffffULL));
      }
      return prng.coin() ? -acc : acc;
    };
    const BigInt num = random_big(40);
    BigInt den = random_big(20);
    if (den.is_zero()) den = BigInt(1);
    BigInt q, r;
    BigInt::divmod(num, den, q, r);
    EXPECT_EQ(q * den + r, num);
    EXPECT_TRUE(r.abs() < den.abs());
    // Truncated division: remainder carries the dividend's sign.
    if (!r.is_zero()) {
      EXPECT_EQ(r.signum(), num.signum());
    }
  }
}

TEST(BigIntTest, KnuthDStressVectors) {
  // Shapes chosen to exercise the qhat over-estimate correction and the
  // add-back step of Algorithm D (reference values from CPython).
  struct Case {
    const char* num;
    const char* den;
    const char* quot;
    const char* rem;
  };
  const Case cases[] = {
      {"79228162495817593519834398720", "18446744073709551615", "4294967295",
       "4294967295"},
      {"340282366920938463463374607431768211455", "18446744073709551619",
       "18446744073709551613", "8"},
      {"79228162532711081667253501951", "4294967297", "18446744073709551615",
       "4294967296"},
      {"6277101735386680763835789424475317016330584845960737730617",
       "79228162514264337584954015737", "79228162514264337602133884951",
       "73786976552536256730"},
      {"100000000000000000000000010000000000000000000000001",
       "999999999999999999999999", "100000000000000000000000110", "111"},
  };
  for (const auto& c : cases) {
    BigInt num(c.num), den(c.den);
    BigInt q, r;
    BigInt::divmod(num, den, q, r);
    EXPECT_EQ(q.to_string(), c.quot) << c.num;
    EXPECT_EQ(r.to_string(), c.rem) << c.num;
    EXPECT_EQ(q * den + r, num);
  }
}

TEST(BigIntTest, KaratsubaAgreesWithSchoolbookViaIdentity) {
  // (10^k + 1)^2 = 10^2k + 2*10^k + 1 crosses the Karatsuba threshold.
  const BigInt ten(10);
  for (int k : {10, 100, 400, 1200}) {
    const BigInt a = ten.pow(static_cast<std::uint64_t>(k)) + BigInt(1);
    const BigInt lhs = a * a;
    const BigInt rhs = ten.pow(static_cast<std::uint64_t>(2 * k)) +
                       BigInt(2) * ten.pow(static_cast<std::uint64_t>(k)) + BigInt(1);
    EXPECT_EQ(lhs, rhs) << "k=" << k;
  }
}

TEST(BigIntTest, PowAndFactorial) {
  EXPECT_EQ(BigInt(2).pow(100).to_string(), "1267650600228229401496703205376");
  BigInt fact(1);
  for (int i = 2; i <= 30; ++i) fact *= BigInt(i);
  EXPECT_EQ(fact.to_string(), "265252859812191058636308480000000");
}

TEST(BigIntTest, GcdProperties) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(36)), BigInt(12));
  EXPECT_EQ(BigInt::gcd(BigInt(-48), BigInt(36)), BigInt(12));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
  const BigInt a = BigInt(7).pow(50) * BigInt(3).pow(20);
  const BigInt b = BigInt(7).pow(30) * BigInt(5).pow(20);
  EXPECT_EQ(BigInt::gcd(a, b), BigInt(7).pow(30));
}

TEST(BigIntTest, Shifts) {
  const BigInt one(1);
  EXPECT_EQ(one.shl(100), BigInt(2).pow(100));
  EXPECT_EQ(BigInt(2).pow(100).shr(99), BigInt(2));
  EXPECT_EQ(BigInt(2).pow(100).shr(101), BigInt(0));
  EXPECT_EQ(BigInt(12345).shl(37).shr(37), BigInt(12345));
  EXPECT_EQ(BigInt(2).pow(100).bit_length(), 101u);
}

TEST(BigIntTest, ComparisonTotalOrder) {
  std::vector<BigInt> vals = {BigInt("-100000000000000000000"), BigInt(-5),
                              BigInt(0), BigInt(3),
                              BigInt("99999999999999999999999")};
  for (std::size_t i = 0; i < vals.size(); ++i) {
    for (std::size_t j = 0; j < vals.size(); ++j) {
      EXPECT_EQ(vals[i] < vals[j], i < j);
      EXPECT_EQ(vals[i] == vals[j], i == j);
    }
  }
}

// ---------------------------------------------------------------------------
// Rationals.

TEST(RationalTest, Normalization) {
  EXPECT_EQ(Rational(BigInt(2), BigInt(4)).to_string(), "1/2");
  EXPECT_EQ(Rational(BigInt(-2), BigInt(4)).to_string(), "-1/2");
  EXPECT_EQ(Rational(BigInt(2), BigInt(-4)).to_string(), "-1/2");
  EXPECT_EQ(Rational(BigInt(0), BigInt(-7)).to_string(), "0");
  EXPECT_EQ(Rational(BigInt(6), BigInt(3)).to_string(), "2");
}

TEST(RationalTest, Arithmetic) {
  const Rational half(BigInt(1), BigInt(2));
  const Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ((half + third).to_string(), "5/6");
  EXPECT_EQ((half - third).to_string(), "1/6");
  EXPECT_EQ((half * third).to_string(), "1/6");
  EXPECT_EQ((half / third).to_string(), "3/2");
  EXPECT_EQ((-half).to_string(), "-1/2");
  EXPECT_TRUE(third < half);
}

TEST(RationalTest, HarmonicSum) {
  // H_20 = sum 1/i has a well-known exact value.
  RationalField f;
  Rational sum = f.zero();
  for (int i = 1; i <= 20; ++i) {
    sum = f.add(sum, f.div(f.one(), f.from_int(i)));
  }
  EXPECT_EQ(sum.to_string(), "55835135/15519504");
}

// ---------------------------------------------------------------------------
// GF(p^k).

TEST(GFpkTest, FrobeniusFixesPrimeField) {
  GFpk f(7, 4);
  util::Prng prng(3);
  // a^(p^k) = a for all a (the field has p^k elements).
  for (int trial = 0; trial < 20; ++trial) {
    auto a = f.random(prng);
    auto x = a;
    for (int i = 0; i < 4; ++i) {
      // x <- x^7
      auto x2 = f.mul(x, x);
      auto x4 = f.mul(x2, x2);
      x = f.mul(f.mul(x4, x2), x);
    }
    EXPECT_TRUE(f.eq(x, a));
  }
}

TEST(GFpkTest, CardinalityAndCharacteristic) {
  GFpk f(3, 5);
  EXPECT_EQ(f.characteristic(), 3u);
  EXPECT_EQ(f.cardinality(), 243u);
  GFpk g(2, 8);
  EXPECT_EQ(g.cardinality(), 256u);
}

TEST(GFpkTest, MultiplicativeOrderDividesCardMinusOne) {
  GFpk f(2, 8);
  util::Prng prng(17);
  for (int trial = 0; trial < 10; ++trial) {
    auto a = f.random(prng);
    if (f.is_zero(a)) continue;
    // a^255 = 1 in GF(256).
    auto acc = f.one();
    for (int i = 0; i < 255; ++i) acc = f.mul(acc, a);
    EXPECT_TRUE(f.eq(acc, f.one()));
  }
}

TEST(GFpkTest, ExplicitModulusGF4) {
  // GF(4) = GF(2)[x]/(x^2 + x + 1).
  GFpk f(2, std::vector<std::uint64_t>{1, 1});
  const auto x = GFpk::Element{0, 1};
  // x^2 = x + 1, x^3 = 1.
  EXPECT_TRUE(f.eq(f.mul(x, x), GFpk::Element{1, 1}));
  EXPECT_TRUE(f.eq(f.mul(f.mul(x, x), x), f.one()));
  EXPECT_TRUE(f.eq(f.inv(x), GFpk::Element{1, 1}));
}

TEST(GFpkTest, SampleSmallSetIsPrimeSubfieldPrefix) {
  GFpk f(5, 2);
  util::Prng prng(5);
  for (int i = 0; i < 50; ++i) {
    auto v = f.sample(prng, 5);
    EXPECT_EQ(v[1], 0u) << "sample set of size p stays in the prime subfield";
  }
}

}  // namespace
}  // namespace kp

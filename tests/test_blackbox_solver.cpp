// Tests for the LinOp-plumbed Theorem-4 pipeline: the same system solved
// through dense, sparse, and Toeplitz black-box backends (and through the
// type-erased AnyBox) must produce identical solutions, determinants, and
// characteristic polynomials for a fixed seed -- the doubling route (9) and
// the iterative route (8) compute the same field elements, only at
// different costs.  Also covers the lazily composed PreconditionedBox, the
// ProductBox transpose, and the singular-matrix failure path.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/krylov.h"
#include "core/solver.h"
#include "core/wiedemann.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/gauss.h"
#include "matrix/sparse.h"
#include "matrix/structured.h"
#include "util/prng.h"

namespace kp {
namespace {

using matrix::Matrix;

using F = field::Zp<1000003>;
F f;

matrix::Sparse<F> sparse_from_dense(const Matrix<F>& a) {
  std::vector<matrix::Sparse<F>::Entry> entries;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (!f.is_zero(a.at(i, j))) entries.push_back({i, j, a.at(i, j)});
    }
  }
  return matrix::Sparse<F>(f, a.rows(), a.cols(), std::move(entries));
}

/// A random non-singular Toeplitz matrix (regenerated until non-singular),
/// which every backend under test can represent exactly.
matrix::Toeplitz<F> nonsingular_toeplitz(std::size_t n, util::Prng& prng) {
  for (;;) {
    std::vector<F::Element> diag(2 * n - 1);
    for (auto& e : diag) e = f.random(prng);
    matrix::Toeplitz<F> t(n, std::move(diag));
    if (!f.is_zero(matrix::det_gauss(f, t.to_dense(f)))) return t;
  }
}

TEST(BlackboxSolverTest, BackendsProduceIdenticalResults) {
  util::Prng setup(101);
  const std::size_t n = 12;
  const auto t = nonsingular_toeplitz(n, setup);
  const auto dense = t.to_dense(f);
  const auto sparse = sparse_from_dense(dense);
  poly::PolyRing<F> ring(f);

  std::vector<F::Element> x_true(n), b;
  for (auto& e : x_true) e = f.random(setup);
  b = matrix::mat_vec(f, dense, x_true);

  // Same seed for every backend: the random draws (H, D, u, v) coincide,
  // and both routes compute the same field elements exactly.
  const std::uint64_t seed = 777;

  util::Prng p1(seed);
  auto dense_res = core::kp_solve(f, dense, b, p1);
  ASSERT_TRUE(dense_res.ok);
  EXPECT_EQ(dense_res.route_used, core::KrylovRoute::kDoubling);
  EXPECT_EQ(dense_res.x, x_true);

  util::Prng p2(seed);
  matrix::SparseBox<F> sbox(f, sparse);
  auto sparse_res = core::kp_solve(f, sbox, b, p2);
  ASSERT_TRUE(sparse_res.ok);
  EXPECT_EQ(sparse_res.route_used, core::KrylovRoute::kIterative);

  util::Prng p3(seed);
  matrix::ToeplitzBox<F> tbox(ring, t);
  auto toeplitz_res = core::kp_solve(f, tbox, b, p3);
  ASSERT_TRUE(toeplitz_res.ok);
  EXPECT_EQ(toeplitz_res.route_used, core::KrylovRoute::kIterative);

  EXPECT_EQ(sparse_res.x, dense_res.x);
  EXPECT_EQ(toeplitz_res.x, dense_res.x);
  EXPECT_EQ(sparse_res.det, dense_res.det);
  EXPECT_EQ(toeplitz_res.det, dense_res.det);
  EXPECT_EQ(sparse_res.charpoly_at, dense_res.charpoly_at);
  EXPECT_EQ(toeplitz_res.charpoly_at, dense_res.charpoly_at);
  EXPECT_EQ(dense_res.det, matrix::det_gauss(f, dense));
}

TEST(BlackboxSolverTest, DeterminantsAgreeAcrossBackends) {
  util::Prng setup(102);
  const std::size_t n = 9;
  const auto t = nonsingular_toeplitz(n, setup);
  const auto dense = t.to_dense(f);
  poly::PolyRing<F> ring(f);
  const std::uint64_t seed = 555;

  util::Prng p1(seed), p2(seed), p3(seed);
  auto rd = core::kp_det(f, dense, p1);
  matrix::SparseBox<F> sbox(f, sparse_from_dense(dense));
  auto rs = core::kp_det(f, sbox, p2);
  matrix::ToeplitzBox<F> tbox(ring, t);
  auto rt = core::kp_det(f, tbox, p3);
  ASSERT_TRUE(rd.ok && rs.ok && rt.ok);
  EXPECT_EQ(rd.det, matrix::det_gauss(f, dense));
  EXPECT_EQ(rs.det, rd.det);
  EXPECT_EQ(rt.det, rd.det);
}

TEST(BlackboxSolverTest, AnyBoxDispatchesAtRuntime) {
  util::Prng setup(103);
  const std::size_t n = 10;
  const auto t = nonsingular_toeplitz(n, setup);
  const auto dense = t.to_dense(f);
  std::vector<F::Element> b(n);
  for (auto& e : b) e = f.random(setup);

  // Heterogeneous backends behind one erased type.
  std::vector<matrix::AnyBox<F>> backends;
  backends.emplace_back(matrix::DenseBox<F>(f, dense));
  backends.emplace_back(matrix::SparseBox<F>(f, sparse_from_dense(dense)));
  EXPECT_EQ(backends[0].structure(), matrix::BoxStructure::kDense);
  EXPECT_EQ(backends[1].structure(), matrix::BoxStructure::kSparse);
  EXPECT_TRUE(backends[0].transposable());

  util::Prng p1(42);
  auto ref = core::kp_solve(f, dense, b, p1);
  ASSERT_TRUE(ref.ok);
  // The erased dense backend resolves to the doubling route through its
  // structure() hint; the sparse one goes iterative.  Both match the ref.
  {
    util::Prng p(42);
    auto res = core::kp_solve(f, backends[0], b, p);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.route_used, core::KrylovRoute::kDoubling);
    EXPECT_EQ(res.x, ref.x);
    EXPECT_EQ(res.det, ref.det);
  }
  {
    util::Prng p(42);
    auto res = core::kp_solve(f, backends[1], b, p);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.route_used, core::KrylovRoute::kIterative);
    EXPECT_EQ(res.x, ref.x);
    EXPECT_EQ(res.det, ref.det);
  }
}

TEST(BlackboxSolverTest, ForcedRoutesAgreeOnDenseOperator) {
  util::Prng setup(104);
  const std::size_t n = 11;
  auto a = matrix::random_matrix(f, n, n, setup);
  if (f.is_zero(matrix::det_gauss(f, a))) GTEST_SKIP();
  std::vector<F::Element> b(n);
  for (auto& e : b) e = f.random(setup);

  core::SolverOptions doubling, iterative;
  doubling.route = core::KrylovRoute::kDoubling;
  iterative.route = core::KrylovRoute::kIterative;
  util::Prng p1(9), p2(9);
  auto r1 = core::kp_solve(f, a, b, p1, doubling);
  auto r2 = core::kp_solve(f, a, b, p2, iterative);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.x, r2.x);
  EXPECT_EQ(r1.det, r2.det);
  EXPECT_EQ(r1.charpoly_at, r2.charpoly_at);
}

TEST(BlackboxSolverTest, SingularSparseReportsFailure) {
  util::Prng setup(105);
  const std::size_t n = 8;
  // Rank-deficient: row n-1 duplicates row 0.
  auto a = matrix::random_matrix(f, n, n, setup);
  for (std::size_t j = 0; j < n; ++j) a.at(n - 1, j) = a.at(0, j);
  ASSERT_TRUE(f.is_zero(matrix::det_gauss(f, a)));
  matrix::SparseBox<F> sbox(f, sparse_from_dense(a));
  std::vector<F::Element> b(n);
  for (auto& e : b) e = f.random(setup);
  util::Prng p(3);
  auto res = core::kp_solve(f, sbox, b, p);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.attempts, core::SolverOptions{}.max_attempts + 1);
}

TEST(BlackboxSolverTest, PreconditionedBoxComposesLazily) {
  util::Prng prng(106);
  poly::PolyRing<F> ring(f);
  const std::size_t n = 9;
  auto a = matrix::random_matrix(f, n, n, prng);
  auto pre = core::Preconditioner<F>::draw(f, n, prng, 1u << 20);
  const matrix::DenseViewBox<F> abox(f, a);
  const auto prebox = pre.box(f, ring, abox);
  EXPECT_EQ(prebox.structure(), matrix::BoxStructure::kDense);

  const auto at_dense = pre.apply_dense(f, ring, a);
  std::vector<F::Element> x(n);
  for (auto& e : x) e = f.random(prng);
  // Lazy (A(H(Dx))) and dense (A*H*D)x agree exactly.
  EXPECT_EQ(prebox.apply(x), matrix::mat_vec(f, at_dense, x));
  // (A H D)^T x = D H A^T x agrees with the dense transpose.
  EXPECT_EQ(prebox.apply_transpose(x),
            matrix::vec_mat(f, x, at_dense));
}

TEST(BlackboxSolverTest, ProductBoxTransposeReversesComposition) {
  util::Prng prng(107);
  const std::size_t n = 7;
  auto a = matrix::random_matrix(f, n, n, prng);
  auto b = matrix::random_matrix(f, n, n, prng);
  matrix::ProductBox ab(matrix::DenseBox<F>(f, a), matrix::DenseBox<F>(f, b));
  const auto ab_dense = matrix::mat_mul(f, a, b);
  std::vector<F::Element> x(n);
  for (auto& e : x) e = f.random(prng);
  EXPECT_EQ(ab.apply(x), matrix::mat_vec(f, ab_dense, x));
  EXPECT_EQ(ab.apply_transpose(x), matrix::vec_mat(f, x, ab_dense));
  // The denser factor dominates the composition's structure hint.
  EXPECT_EQ(ab.structure(), matrix::BoxStructure::kDense);
}

TEST(BlackboxSolverTest, IterativeKrylovBlockMatchesDoubling) {
  util::Prng prng(108);
  const std::size_t n = 10;
  auto a = matrix::random_matrix(f, n, n, prng);
  std::vector<F::Element> v(n);
  for (auto& e : v) e = f.random(prng);
  const matrix::DenseViewBox<F> box(f, a);
  for (std::size_t count : {1u, 2u, 5u, 10u, 20u}) {
    auto it = core::krylov_block_iterative(f, box, v, count);
    auto dbl = core::krylov_block(f, a, v, count);
    EXPECT_TRUE(matrix::mat_eq(f, it, dbl)) << count;
  }
}

TEST(BlackboxSolverTest, WiedemannSolveThroughAnyBox) {
  util::Prng prng(109);
  const std::size_t n = 24;
  auto sp = matrix::Sparse<F>::random(f, n, 3, prng);
  matrix::AnyBox<F> box{matrix::SparseBox<F>(f, sp)};
  std::vector<F::Element> x(n);
  for (auto& e : x) e = f.random(prng);
  auto b = sp.apply(f, x);
  auto sol = core::wiedemann_solve(f, box, b, prng, 1u << 20);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sp.apply(f, *sol), b);
}

}  // namespace
}  // namespace kp

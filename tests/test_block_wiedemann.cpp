// Tests for the block-Wiedemann route: block Krylov projections
// (core/block_krylov.h), the sigma-basis matrix Berlekamp-Massey
// (seq/matrix_berlekamp_massey.h), the solve / det recovery in
// core/wiedemann.h, and the kp_solve block_width integration.  The
// contracts under test: width-1 degenerates to the scalar pipeline
// element-for-element; block answers match the scalar answers exactly;
// every result is bit-identical (including op counts) for any worker count
// and SIMD level; degenerate blocks surface through the failure taxonomy
// and re-draw only the projection stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/block_krylov.h"
#include "core/solver.h"
#include "core/wiedemann.h"
#include "field/simd.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "matrix/sparse.h"
#include "matrix/structured.h"
#include "poly/interp.h"
#include "pram/parallel_for.h"
#include "seq/berlekamp_massey.h"
#include "seq/matrix_berlekamp_massey.h"
#include "util/fault.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp {
namespace {

using util::FailureKind;
using util::Stage;

using F = field::Zp<1000003>;
F f;

#define KP_REQUIRE_FAULT_INJECTION()                             \
  do {                                                           \
    if (!KP_FAULT_INJECTION_ENABLED) {                           \
      GTEST_SKIP() << "fault injection compiled out";            \
    }                                                            \
  } while (0)

matrix::Matrix<F> nonsingular_matrix(std::size_t n, util::Prng& prng) {
  for (;;) {
    auto a = matrix::random_matrix(f, n, n, prng);
    if (!f.is_zero(matrix::det_gauss(f, a))) return a;
  }
}

matrix::Sparse<F> nonsingular_sparse(std::size_t n, std::size_t per_row,
                                     util::Prng& prng) {
  for (;;) {
    auto sp = matrix::Sparse<F>::random(f, n, per_row, prng);
    if (!f.is_zero(matrix::det_gauss(f, sp.to_dense(f)))) return sp;
  }
}

/// Reference characteristic polynomial det(xI - A), monic, by evaluation at
/// n + 1 points and interpolation (the field is far larger than n).
std::vector<F::Element> charpoly_reference(const matrix::Matrix<F>& a) {
  const std::size_t n = a.rows();
  std::vector<F::Element> pts(n + 1), vals(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    pts[i] = f.from_int(static_cast<std::int64_t>(i));
    auto m = a;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) m.at(r, c) = f.neg(m.at(r, c));
      m.at(r, r) = f.add(m.at(r, r), pts[i]);
    }
    vals[i] = matrix::det_gauss(f, m);
  }
  poly::PolyRing<F> ring(f);
  return poly::interpolate(ring, pts, vals);
}

void expect_counts_eq(const util::OpCounts& a, const util::OpCounts& b,
                      const char* what) {
  EXPECT_EQ(a.add, b.add) << what;
  EXPECT_EQ(a.mul, b.mul) << what;
  EXPECT_EQ(a.div, b.div) << what;
  EXPECT_EQ(a.zero_test, b.zero_test) << what;
}

// ---------------------------------------------------------------------------
// Sigma-basis matrix Berlekamp-Massey.

TEST(SigmaBasisTest, WidthOneMatchesScalarBerlekampMassey) {
  util::Prng prng(211);
  // Random projected Krylov sequences (the exact input the route feeds it)
  // plus a hand-rolled short LFSR.
  for (std::size_t n : {3u, 5u, 8u, 11u}) {
    const auto a = nonsingular_matrix(n, prng);
    std::vector<F::Element> u(n), v(n);
    for (auto& e : u) e = f.random(prng);
    for (auto& e : v) e = f.random(prng);
    std::vector<F::Element> scalar_seq;
    auto w = v;
    for (std::size_t i = 0; i < 2 * n; ++i) {
      if (i) w = matrix::mat_vec(f, a, w);
      auto acc = f.zero();
      for (std::size_t j = 0; j < n; ++j) acc = f.add(acc, f.mul(u[j], w[j]));
      scalar_seq.push_back(acc);
    }

    std::vector<matrix::Matrix<F>> block_seq;
    for (const auto& e : scalar_seq) {
      matrix::Matrix<F> s(1, 1, e);
      block_seq.push_back(std::move(s));
    }
    auto gen = seq::matrix_berlekamp_massey(f, block_seq);
    ASSERT_TRUE(gen.ok()) << n;
    const auto g = seq::scalar_generator(f, gen.value());
    const auto ref = seq::berlekamp_massey(f, scalar_seq);
    ASSERT_EQ(g.size(), ref.size()) << n;
    for (std::size_t i = 0; i < g.size(); ++i) {
      EXPECT_TRUE(f.eq(g[i], ref[i])) << n << " coeff " << i;
    }
  }
}

TEST(SigmaBasisTest, GeneratorDeterminantRecoversCharpoly) {
  util::Prng prng(212);
  const std::size_t n = 12;
  const auto a = nonsingular_matrix(n, prng);
  const auto ref = charpoly_reference(a);
  const matrix::DenseBox<F> box(f, a);
  for (std::size_t b : {2u, 3u, 4u}) {
    const auto ut = core::random_block_rows(f, b, n, prng, 1u << 20);
    const auto v = core::random_block_columns(f, b, n, prng, 1u << 20);
    const std::size_t count = 2 * ((n + b - 1) / b) + 2;
    const auto sq = core::block_krylov_sequence(f, box, ut, v, count);
    auto gen = seq::matrix_berlekamp_massey(f, sq);
    ASSERT_TRUE(gen.ok()) << b;
    auto det = core::detail::generator_determinant(f, gen.value());
    ASSERT_TRUE(det.ok()) << b;
    auto g = det.take();
    ASSERT_EQ(g.size(), n + 1) << b;
    const auto ilc = f.inv(g.back());
    for (auto& e : g) e = f.mul(e, ilc);
    for (std::size_t i = 0; i <= n; ++i) {
      EXPECT_TRUE(f.eq(g[i], ref[i])) << "b=" << b << " coeff " << i;
    }
  }
}

TEST(SigmaBasisTest, EveryReturnedColumnGenerates) {
  util::Prng prng(213);
  const std::size_t n = 10, b = 3;
  const auto a = nonsingular_matrix(n, prng);
  const matrix::DenseBox<F> box(f, a);
  const auto ut = core::random_block_rows(f, b, n, prng, 1u << 20);
  const auto v = core::random_block_columns(f, b, n, prng, 1u << 20);
  const auto sq =
      core::block_krylov_sequence(f, box, ut, v, 2 * ((n + b - 1) / b) + 2);
  auto gen = seq::matrix_berlekamp_massey(f, sq);
  ASSERT_TRUE(gen.ok());
  ASSERT_GE(gen.value().columns.size(), b);
  for (const auto& col : gen.value().columns) {
    EXPECT_TRUE(seq::block_generates(f, sq, col));
  }
}

TEST(SigmaBasisTest, EarlyTerminationOnLowMinpolyDegree) {
  // A = 7 I has minpoly degree 1: every generator column must terminate at
  // degree <= 1 long before the worst-case ceil(n/b) bound.
  util::Prng prng(214);
  const std::size_t n = 6, b = 2;
  matrix::Matrix<F> a(n, n, f.zero());
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) = f.from_int(7);
  const matrix::DenseBox<F> box(f, a);
  const auto ut = core::random_block_rows(f, b, n, prng, 1u << 20);
  const auto v = core::random_block_columns(f, b, n, prng, 1u << 20);
  const auto sq =
      core::block_krylov_sequence(f, box, ut, v, 2 * ((n + b - 1) / b) + 2);
  auto gen = seq::matrix_berlekamp_massey(f, sq);
  ASSERT_TRUE(gen.ok());
  ASSERT_FALSE(gen.value().columns.empty());
  EXPECT_LE(gen.value().max_degree(), 1u);
  for (const auto& col : gen.value().columns) {
    EXPECT_TRUE(seq::block_generates(f, sq, col));
  }
}

TEST(SigmaBasisTest, RejectsMalformedSequences) {
  auto empty = seq::matrix_berlekamp_massey(f, {});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().kind(), FailureKind::kInvalidArgument);
  EXPECT_EQ(empty.status().stage(), Stage::kBlockGenerator);

  std::vector<matrix::Matrix<F>> mixed;
  mixed.emplace_back(2, 2, f.zero());
  mixed.emplace_back(3, 3, f.zero());
  auto bad = seq::matrix_berlekamp_massey(f, mixed);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().kind(), FailureKind::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Block Krylov projections.

TEST(BlockKrylovTest, SequenceMatchesNaiveProjection) {
  util::Prng prng(221);
  const std::size_t n = 9, b = 3, count = 8;
  const auto a = nonsingular_matrix(n, prng);
  const matrix::DenseBox<F> box(f, a);
  const auto ut = core::random_block_rows(f, b, n, prng, 1u << 20);
  const auto v = core::random_block_columns(f, b, n, prng, 1u << 20);
  const auto sq = core::block_krylov_sequence(f, box, ut, v, count);
  ASSERT_EQ(sq.size(), count);
  for (std::size_t c = 0; c < b; ++c) {
    auto w = v[c];
    for (std::size_t i = 0; i < count; ++i) {
      if (i) w = matrix::mat_vec(f, a, w);
      for (std::size_t r = 0; r < b; ++r) {
        auto acc = f.zero();
        for (std::size_t j = 0; j < n; ++j) {
          acc = f.add(acc, f.mul(ut.at(r, j), w[j]));
        }
        EXPECT_TRUE(f.eq(sq[i].at(r, c), acc)) << i << "," << r << "," << c;
      }
    }
  }
}

TEST(BlockKrylovTest, TransposedSequenceMatchesForward) {
  util::Prng prng(222);
  const std::size_t n = 16, b = 4, count = 10;
  const auto sp = nonsingular_sparse(n, 3, prng);
  const matrix::SparseBox<F> sbox(f, sp);

  std::vector<F::Element> diag(2 * n - 1);
  for (auto& e : diag) e = f.random(prng);
  poly::PolyRing<F> ring(f);
  const matrix::ToeplitzBox<F> tbox(ring, matrix::Toeplitz<F>(n, diag));

  const auto ut = core::random_block_rows(f, b, n, prng, 1u << 20);
  const auto v = core::random_block_columns(f, b, n, prng, 1u << 20);
  auto check = [&](const auto& box, const char* what) {
    const auto fwd = core::block_krylov_sequence(f, box, ut, v, count);
    const auto rev = core::block_krylov_sequence_transposed(f, box, ut, v, count);
    ASSERT_EQ(fwd.size(), rev.size()) << what;
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t r = 0; r < b; ++r) {
        for (std::size_t c = 0; c < b; ++c) {
          EXPECT_TRUE(f.eq(fwd[i].at(r, c), rev[i].at(r, c)))
              << what << " " << i << "," << r << "," << c;
        }
      }
    }
  };
  check(sbox, "sparse");
  check(tbox, "toeplitz");
}

TEST(BlockKrylovTest, SparseApplyManyMatchesLoopedApplies) {
  util::Prng prng(223);
  // Small (serial) and large (parallel grid: nnz * b >= kParallelGrain)
  // shapes; elements AND op counts must match the looped applies exactly.
  struct Shape { std::size_t n, per_row, b; };
  for (const Shape sh : {Shape{24, 3, 4}, Shape{1024, 8, 8}}) {
    const auto sp = matrix::Sparse<F>::random(f, sh.n, sh.per_row, prng);
    std::vector<std::vector<F::Element>> xs(sh.b);
    std::vector<const std::vector<F::Element>*> ptrs(sh.b);
    for (std::size_t k = 0; k < sh.b; ++k) {
      xs[k].resize(sh.n);
      for (auto& e : xs[k]) e = f.random(prng);
      ptrs[k] = &xs[k];
    }
    util::OpScope batch_scope;
    const auto batched = sp.apply_many(f, ptrs);
    const auto batch_ops = batch_scope.counts();
    util::OpScope loop_scope;
    std::vector<std::vector<F::Element>> looped;
    for (std::size_t k = 0; k < sh.b; ++k) looped.push_back(sp.apply(f, xs[k]));
    expect_counts_eq(batch_ops, loop_scope.counts(), "sparse apply_many ops");
    EXPECT_EQ(batched, looped) << "n=" << sh.n;

    util::OpScope tbatch_scope;
    const auto tbatched = sp.apply_transpose_many(f, ptrs);
    const auto tbatch_ops = tbatch_scope.counts();
    util::OpScope tloop_scope;
    std::vector<std::vector<F::Element>> tlooped;
    for (std::size_t k = 0; k < sh.b; ++k) {
      tlooped.push_back(sp.apply_transpose(f, xs[k]));
    }
    expect_counts_eq(tbatch_ops, tloop_scope.counts(),
                     "sparse apply_transpose_many ops");
    EXPECT_EQ(tbatched, tlooped) << "n=" << sh.n;
  }
}

TEST(BlockKrylovTest, ToeplitzApplyTransposeManyMatchesLoop) {
  util::Prng prng(224);
  const std::size_t n = 16, b = 3;
  std::vector<F::Element> diag(2 * n - 1);
  for (auto& e : diag) e = f.random(prng);
  const matrix::Toeplitz<F> t(n, diag);
  poly::PolyRing<F> ring(f);
  std::vector<std::vector<F::Element>> xs(b);
  std::vector<const std::vector<F::Element>*> ptrs(b);
  for (std::size_t k = 0; k < b; ++k) {
    xs[k].resize(n);
    for (auto& e : xs[k]) e = f.random(prng);
    ptrs[k] = &xs[k];
  }
  const auto batched = t.apply_transpose_many(ring, ptrs);
  const auto dense = t.to_dense(f);
  ASSERT_EQ(batched.size(), b);
  for (std::size_t k = 0; k < b; ++k) {
    EXPECT_EQ(batched[k], t.apply_transpose(ring, xs[k])) << k;
    // Cross-check against the dense transpose.
    std::vector<F::Element> ref(n, f.zero());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ref[i] = f.add(ref[i], f.mul(dense.at(j, i), xs[k][j]));
      }
    }
    EXPECT_EQ(batched[k], ref) << k;
  }
}

// ---------------------------------------------------------------------------
// Block-Wiedemann solve / det.

TEST(BlockWiedemannTest, SolveMatchesScalarRoute) {
  util::Prng setup(231);
  const std::size_t n = 48;
  const auto sp = nonsingular_sparse(n, 4, setup);
  const matrix::SparseBox<F> box(f, sp);
  std::vector<F::Element> x_true(n);
  for (auto& e : x_true) e = f.random(setup);
  const auto b = sp.apply(f, x_true);

  util::Prng p0(555);
  auto scalar = core::wiedemann_solve_status(f, box, b, p0, 1u << 20);
  ASSERT_TRUE(scalar.ok);
  ASSERT_EQ(scalar.x, x_true);  // unique: A non-singular

  for (std::size_t bw : {2u, 4u, 8u}) {
    util::Prng p(555);
    auto res = core::block_wiedemann_solve_status(f, box, b, p, 1u << 20, bw);
    ASSERT_TRUE(res.ok) << "bw=" << bw << ": " << res.status.message();
    EXPECT_EQ(res.x, scalar.x) << "bw=" << bw;
    EXPECT_EQ(sp.apply(f, res.x), b) << "bw=" << bw;
  }
}

TEST(BlockWiedemannTest, WidthOneDelegatesToScalarExactly) {
  util::Prng setup(232);
  const std::size_t n = 20;
  const auto sp = nonsingular_sparse(n, 3, setup);
  const matrix::SparseBox<F> box(f, sp);
  std::vector<F::Element> x_true(n);
  for (auto& e : x_true) e = f.random(setup);
  const auto b = sp.apply(f, x_true);

  util::Prng p1(99), p2(99);
  util::OpScope s1;
  auto scalar = core::wiedemann_solve_status(f, box, b, p1, 1u << 20);
  const auto c1 = s1.counts();
  util::OpScope s2;
  auto block = core::block_wiedemann_solve_status(f, box, b, p2, 1u << 20, 1);
  expect_counts_eq(c1, s2.counts(), "width-1 delegation ops");
  ASSERT_TRUE(scalar.ok);
  ASSERT_TRUE(block.ok);
  EXPECT_EQ(block.x, scalar.x);
  EXPECT_EQ(block.attempts, scalar.attempts);
  ASSERT_EQ(block.diags.size(), scalar.diags.size());
  for (std::size_t i = 0; i < block.diags.size(); ++i) {
    EXPECT_EQ(block.diags[i].projection_seed, scalar.diags[i].projection_seed);
  }
}

TEST(BlockWiedemannTest, DetMatchesGauss) {
  util::Prng prng(233);
  for (std::size_t n : {6u, 13u}) {
    const auto a = nonsingular_matrix(n, prng);
    const auto expect = matrix::det_gauss(f, a);
    for (std::size_t bw : {2u, 4u}) {
      util::Prng p(1000 + n);
      auto res = core::block_wiedemann_det(f, a, p, 1u << 20, bw);
      ASSERT_TRUE(res.ok) << "n=" << n << " bw=" << bw << ": "
                          << res.status.message();
      EXPECT_TRUE(f.eq(res.value, expect)) << "n=" << n << " bw=" << bw;
    }
  }
}

TEST(BlockWiedemannTest, BitIdenticalAcrossWorkersAndSimdLevels) {
  util::Prng setup(234);
  const std::size_t n = 256;
  const auto sp = nonsingular_sparse(n, 6, setup);
  const matrix::SparseBox<F> box(f, sp);
  std::vector<F::Element> x_true(n);
  for (auto& e : x_true) e = f.random(setup);
  const auto b = sp.apply(f, x_true);

  auto run = [&]() {
    util::Prng p(4242);
    util::OpScope scope;
    auto res = core::block_wiedemann_solve_status(f, box, b, p, 1u << 20, 4);
    return std::pair(std::move(res), scope.counts());
  };

  auto& ctx = pram::ExecutionContext::global();
  const auto saved_level = field::simd::simd_level();
  const bool saved_ifma = field::simd::simd_ifma();
  ctx.set_worker_limit(1);
  field::simd::set_simd_level(field::simd::SimdLevel::kScalar);
  const auto [base, base_ops] = run();
  ASSERT_TRUE(base.ok);
  ASSERT_EQ(base.x, x_true);

  constexpr field::simd::SimdLevel kSweep[] = {
      field::simd::SimdLevel::kScalar, field::simd::SimdLevel::kNeon,
      field::simd::SimdLevel::kAvx2, field::simd::SimdLevel::kAvx512};
  for (unsigned workers : {1u, 2u, 8u}) {
    for (const auto want : kSweep) {
      ctx.set_worker_limit(workers);
      field::simd::set_simd_level(want);
      const auto [res, ops] = run();
      ASSERT_TRUE(res.ok) << workers << " workers";
      EXPECT_EQ(res.x, base.x)
          << workers << " workers, level "
          << field::simd::to_string(field::simd::simd_level());
      EXPECT_EQ(res.attempts, base.attempts);
      expect_counts_eq(ops, base_ops, "block solve ops across workers/SIMD");
    }
  }
  ctx.set_worker_limit(0);
  field::simd::set_simd_level(saved_level);
  field::simd::set_simd_ifma(saved_ifma);
}

TEST(BlockWiedemannTest, KpSolveBlockWidthMatchesScalarRoute) {
  util::Prng setup(235);
  const std::size_t n = 32;
  const auto sp = nonsingular_sparse(n, 4, setup);
  const matrix::SparseBox<F> box(f, sp);
  std::vector<F::Element> x_true(n);
  for (auto& e : x_true) e = f.random(setup);
  const auto b = sp.apply(f, x_true);

  core::SolverOptions scalar_opt;
  scalar_opt.route = core::KrylovRoute::kIterative;
  util::Prng p1(77);
  const auto scalar = core::kp_solve(f, box, b, p1, scalar_opt);
  ASSERT_TRUE(scalar.ok);
  ASSERT_EQ(scalar.x, x_true);

  for (std::size_t bw : {2u, 4u, 8u}) {
    core::SolverOptions opt = scalar_opt;
    opt.block_width = bw;
    util::Prng p2(77);
    const auto block = core::kp_solve(f, box, b, p2, opt);
    ASSERT_TRUE(block.ok) << "bw=" << bw << ": " << block.status.message();
    // Same preconditioner stream, same canonical charpoly of A-tilde, same
    // unique solution and determinant -- only the Krylov phase differs.
    EXPECT_EQ(block.x, scalar.x) << "bw=" << bw;
    EXPECT_TRUE(f.eq(block.det, scalar.det)) << "bw=" << bw;
    ASSERT_EQ(block.charpoly_at.size(), scalar.charpoly_at.size());
    for (std::size_t i = 0; i < block.charpoly_at.size(); ++i) {
      EXPECT_TRUE(f.eq(block.charpoly_at[i], scalar.charpoly_at[i]))
          << "bw=" << bw << " coeff " << i;
    }
  }
}

TEST(BlockWiedemannTest, KpSolveSmallFieldFallsBackToScalar) {
  // Zp<31> cannot supply the 2n + 2 evaluation points at n = 20, so
  // block_width must quietly resolve to the scalar route: identical
  // answers AND identical op counts.
  using Fs = field::Zp<31>;
  Fs fs;
  util::Prng setup(236);
  const std::size_t n = 20;
  matrix::Matrix<Fs> a(n, n, fs.zero());
  for (;;) {
    a = matrix::random_matrix(fs, n, n, setup);
    if (!fs.is_zero(matrix::det_gauss(fs, a))) break;
  }
  std::vector<Fs::Element> x_true(n);
  for (auto& e : x_true) e = fs.random(setup);
  const auto b = matrix::mat_vec(fs, a, x_true);
  const matrix::DenseBox<Fs> box(fs, a);

  core::SolverOptions opt1;
  opt1.route = core::KrylovRoute::kIterative;
  core::SolverOptions opt4 = opt1;
  opt4.block_width = 4;

  util::Prng p1(31), p4(31);
  util::OpScope s1;
  const auto r1 = core::kp_solve(fs, box, b, p1, opt1);
  const auto c1 = s1.counts();
  util::OpScope s4;
  const auto r4 = core::kp_solve(fs, box, b, p4, opt4);
  expect_counts_eq(c1, s4.counts(), "small-field fallback ops");
  ASSERT_EQ(r1.ok, r4.ok);
  EXPECT_EQ(r4.x, r1.x);
  EXPECT_EQ(r4.attempts, r1.attempts);
}

// ---------------------------------------------------------------------------
// Fault injection: the new stages are deterministically reachable and the
// retries re-draw only the projection stream.

TEST(BlockWiedemannFaultInjectionTest, BlockProjectionFaultRetries) {
  KP_REQUIRE_FAULT_INJECTION();
  util::Prng setup(241);
  const std::size_t n = 24;
  const auto sp = nonsingular_sparse(n, 3, setup);
  const matrix::SparseBox<F> box(f, sp);
  std::vector<F::Element> x_true(n);
  for (auto& e : x_true) e = f.random(setup);
  const auto b = sp.apply(f, x_true);

  util::fault::ScopedFault fi(Stage::kBlockProjection, /*attempt=*/1);
  util::Prng p(11);
  auto res = core::block_wiedemann_solve_status(f, box, b, p, 1u << 20, 4);
  EXPECT_EQ(fi.fired(), 1u);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2);
  EXPECT_EQ(res.x, x_true);
  ASSERT_EQ(res.diags.size(), 2u);
  EXPECT_EQ(res.diags[0].kind, FailureKind::kDegenerateProjection);
  EXPECT_EQ(res.diags[0].stage, Stage::kBlockProjection);
  EXPECT_TRUE(res.diags[0].injected);
  EXPECT_NE(res.diags[1].projection_seed, res.diags[0].projection_seed);
}

TEST(BlockWiedemannFaultInjectionTest, BlockGeneratorFaultRetries) {
  KP_REQUIRE_FAULT_INJECTION();
  util::Prng setup(242);
  const std::size_t n = 24;
  const auto sp = nonsingular_sparse(n, 3, setup);
  const matrix::SparseBox<F> box(f, sp);
  std::vector<F::Element> x_true(n);
  for (auto& e : x_true) e = f.random(setup);
  const auto b = sp.apply(f, x_true);

  util::fault::ScopedFault fi(Stage::kBlockGenerator, /*attempt=*/1);
  util::Prng p(12);
  auto res = core::block_wiedemann_solve_status(f, box, b, p, 1u << 20, 4);
  EXPECT_EQ(fi.fired(), 1u);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2);
  EXPECT_EQ(res.x, x_true);
  ASSERT_EQ(res.diags.size(), 2u);
  EXPECT_EQ(res.diags[0].stage, Stage::kBlockGenerator);
  EXPECT_TRUE(res.diags[0].injected);
}

TEST(BlockWiedemannFaultInjectionTest, KpSolveBlockFaultRedrawsOnlyProjection) {
  KP_REQUIRE_FAULT_INJECTION();
  util::Prng setup(243);
  const std::size_t n = 24;
  const auto sp = nonsingular_sparse(n, 3, setup);
  const matrix::SparseBox<F> box(f, sp);
  std::vector<F::Element> x_true(n);
  for (auto& e : x_true) e = f.random(setup);
  const auto b = sp.apply(f, x_true);

  core::SolverOptions opt;
  opt.route = core::KrylovRoute::kIterative;
  opt.block_width = 4;
  util::fault::ScopedFault fi(Stage::kBlockProjection, /*attempt=*/1);
  util::Prng p(13);
  auto res = core::kp_solve(f, box, b, p, opt);
  EXPECT_EQ(fi.fired(), 1u);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 2);
  EXPECT_EQ(res.x, x_true);
  ASSERT_EQ(res.diags.size(), 2u);
  EXPECT_EQ(res.diags[0].kind, FailureKind::kDegenerateProjection);
  EXPECT_EQ(res.diags[0].stage, Stage::kBlockProjection);
  EXPECT_TRUE(res.diags[0].injected);
  // kDegenerateProjection targets the projection stream only: H, D kept.
  EXPECT_TRUE(res.diags[1].redrew_projection);
  EXPECT_FALSE(res.diags[1].redrew_precondition);
  EXPECT_EQ(res.diags[1].precondition_seed, res.diags[0].precondition_seed);
  EXPECT_NE(res.diags[1].projection_seed, res.diags[0].projection_seed);
}

}  // namespace
}  // namespace kp

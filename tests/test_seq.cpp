// Tests for the sequence substrate: linearly generated sequences and
// Lemma 1, Berlekamp-Massey, Newton identities (both methods), the
// Gohberg-Semencul representation (Figure 1), and the section-3
// Newton-on-Toeplitz characteristic polynomial (Theorem 3).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "field/gfpk.h"
#include "field/rational.h"
#include "field/zp.h"
#include "matrix/gauss.h"
#include "matrix/matmul.h"
#include "matrix/structured.h"
#include "poly/poly.h"
#include "seq/berlekamp_massey.h"
#include "seq/gohberg_semencul.h"
#include "seq/linear_gen.h"
#include "seq/newton_identities.h"
#include "seq/newton_toeplitz.h"
#include "util/prng.h"

namespace kp {
namespace {

using field::Rational;
using field::RationalField;
using field::Zp;
using matrix::Matrix;
using matrix::Toeplitz;

using F = Zp<1000003>;
F f;

std::vector<F::Element> random_monic(std::size_t deg, util::Prng& prng) {
  std::vector<F::Element> p(deg + 1);
  for (std::size_t i = 0; i < deg; ++i) p[i] = f.random(prng);
  p[deg] = f.one();
  return p;
}

/// Reference power sums: traces of dense matrix powers.
std::vector<F::Element> dense_power_sums(const Matrix<F>& a, std::size_t count) {
  std::vector<F::Element> s;
  auto pw = matrix::identity_matrix(f, a.rows());
  for (std::size_t k = 1; k <= count; ++k) {
    pw = matrix::mat_mul(f, pw, a);
    auto tr = f.zero();
    for (std::size_t i = 0; i < a.rows(); ++i) tr = f.add(tr, pw.at(i, i));
    s.push_back(tr);
  }
  return s;
}

/// Reference charpoly via dense power sums + Newton identities.
std::vector<F::Element> dense_charpoly(const Matrix<F>& a) {
  return seq::charpoly_from_power_sums(f, dense_power_sums(a, a.rows()));
}

// ---------------------------------------------------------------------------
// Linearly generated sequences and Lemma 1.

TEST(LinearGenTest, ExtendThenVerify) {
  util::Prng prng(1);
  for (std::size_t d : {1u, 2u, 5u, 9u}) {
    auto mp = random_monic(d, prng);
    std::vector<F::Element> seed(d);
    for (auto& v : seed) v = f.random(prng);
    auto seq = seq::sequence_with_minpoly(f, mp, seed, 4 * d);
    EXPECT_TRUE(seq::generates(f, mp, seq));
  }
}

TEST(LinearGenTest, Lemma1DeterminantPattern) {
  // Lemma 1: det(T_m) != 0 and det(T_M) = 0 for all M > m, where m is the
  // degree of the minimum polynomial.  (Experiment E1.)
  util::Prng prng(2);
  for (std::size_t m : {1u, 2u, 4u, 7u}) {
    // Random monic minpoly of degree exactly m; make sure it IS minimal by
    // checking with Berlekamp-Massey and skipping degenerate draws.
    auto mp = random_monic(m, prng);
    std::vector<F::Element> seed(m);
    for (auto& v : seed) v = f.random(prng);
    const std::size_t len = 2 * (m + 4);
    auto seq = seq::sequence_with_minpoly(f, mp, seed, len);
    if (seq::berlekamp_massey(f, seq).size() != m + 1) continue;  // unlucky seed
    EXPECT_FALSE(f.is_zero(matrix::det_gauss(f, seq::lemma1_toeplitz(f, seq, m))))
        << "det(T_m) must be nonzero, m=" << m;
    for (std::size_t M = m + 1; M <= m + 4; ++M) {
      EXPECT_TRUE(f.is_zero(matrix::det_gauss(f, seq::lemma1_toeplitz(f, seq, M))))
          << "det(T_M) must vanish, m=" << m << " M=" << M;
    }
  }
}

TEST(LinearGenTest, MinpolyByLemma1MatchesConstruction) {
  util::Prng prng(3);
  for (std::size_t m : {1u, 3u, 6u}) {
    auto mp = random_monic(m, prng);
    std::vector<F::Element> seed(m);
    for (auto& v : seed) v = f.random(prng);
    auto seq = seq::sequence_with_minpoly(f, mp, seed, 4 * m);
    auto found = seq::minpoly_by_lemma1(f, seq, 2 * m);
    // The found polynomial must generate; if the random seed exposes the full
    // polynomial (generic case), it equals mp.
    EXPECT_TRUE(seq::generates(f, found, seq));
    if (found.size() == mp.size()) {
      EXPECT_EQ(found, mp);
    }
  }
}

// ---------------------------------------------------------------------------
// Berlekamp-Massey.

TEST(BerlekampMasseyTest, FibonacciMinpoly) {
  // x^2 - x - 1 generates Fibonacci.
  std::vector<F::Element> fib{1, 1};
  for (int i = 0; i < 18; ++i) {
    fib.push_back(f.add(fib[fib.size() - 1], fib[fib.size() - 2]));
  }
  auto mp = seq::berlekamp_massey(f, fib);
  ASSERT_EQ(mp.size(), 3u);
  EXPECT_EQ(mp[2], f.one());
  EXPECT_EQ(mp[1], f.from_int(-1));
  EXPECT_EQ(mp[0], f.from_int(-1));
}

TEST(BerlekampMasseyTest, RecoversRandomMinpoly) {
  util::Prng prng(4);
  for (std::size_t d : {1u, 2u, 5u, 11u, 20u}) {
    auto mp = random_monic(d, prng);
    std::vector<F::Element> seed(d);
    for (auto& v : seed) v = f.random(prng);
    auto seq = seq::sequence_with_minpoly(f, mp, seed, 2 * d);
    auto found = seq::berlekamp_massey(f, seq);
    // found generates and divides mp (it IS mp for generic seeds).
    EXPECT_TRUE(seq::generates(f, found, seq)) << d;
    EXPECT_LE(found.size(), mp.size());
  }
}

TEST(BerlekampMasseyTest, AgreesWithLemma1Route) {
  util::Prng prng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t d = 1 + prng.below(6);
    auto mp = random_monic(d, prng);
    std::vector<F::Element> seed(d);
    for (auto& v : seed) v = f.random(prng);
    auto seq = seq::sequence_with_minpoly(f, mp, seed, 4 * d);
    EXPECT_EQ(seq::berlekamp_massey(f, seq), seq::minpoly_by_lemma1(f, seq, 2 * d));
  }
}

TEST(BerlekampMasseyTest, ZeroSequence) {
  std::vector<F::Element> zeros(10, f.zero());
  auto mp = seq::berlekamp_massey(f, zeros);
  EXPECT_EQ(mp, std::vector<F::Element>{f.one()});
}

TEST(BerlekampMasseyTest, EventuallyZeroNeedsNilpotentGenerator) {
  // (1, 0, 0, ...) has minimum polynomial x.
  std::vector<F::Element> s{f.one()};
  s.resize(8, f.zero());
  auto mp = seq::berlekamp_massey(f, s);
  EXPECT_EQ(mp, (std::vector<F::Element>{f.zero(), f.one()}));
}

TEST(BerlekampMasseyTest, WorksOverGF256) {
  field::GFpk gf(2, 8);
  util::Prng prng(6);
  // Build a sequence with a known degree-4 minpoly over GF(256).
  std::vector<field::GFpk::Element> mp(5, gf.zero());
  for (int i = 0; i < 4; ++i) mp[static_cast<std::size_t>(i)] = gf.random(prng);
  mp[4] = gf.one();
  std::vector<field::GFpk::Element> seed;
  for (int i = 0; i < 4; ++i) seed.push_back(gf.random(prng));
  auto seq = seq::sequence_with_minpoly(gf, mp, seed, 8);
  auto found = seq::berlekamp_massey(gf, seq);
  EXPECT_TRUE(seq::generates(gf, found, seq));
}

// ---------------------------------------------------------------------------
// Newton identities.

TEST(NewtonIdentitiesTest, RoundTripBothMethods) {
  util::Prng prng(7);
  for (std::size_t n : {1u, 2u, 5u, 12u, 30u}) {
    auto p = random_monic(n, prng);
    auto s = seq::power_sums_from_charpoly(f, p, n);
    auto back_tri = seq::charpoly_from_power_sums(
        f, s, seq::NewtonIdentityMethod::kTriangularSolve);
    auto back_exp = seq::charpoly_from_power_sums(
        f, s, seq::NewtonIdentityMethod::kPowerSeriesExp);
    EXPECT_EQ(back_tri, p) << n;
    EXPECT_EQ(back_exp, p) << n;
  }
}

TEST(NewtonIdentitiesTest, PowerSumsMatchCompanionTraces) {
  util::Prng prng(8);
  const std::size_t n = 6;
  auto p = random_monic(n, prng);
  // Companion matrix of p.
  Matrix<F> c(n, n, f.zero());
  for (std::size_t i = 1; i < n; ++i) c.at(i, i - 1) = f.one();
  for (std::size_t i = 0; i < n; ++i) c.at(i, n - 1) = f.neg(p[i]);
  EXPECT_EQ(seq::power_sums_from_charpoly(f, p, 2 * n), dense_power_sums(c, 2 * n));
}

TEST(NewtonIdentitiesTest, KnownEigenvalues) {
  // Diagonal (1, 2, 3): s_1 = 6, s_2 = 14, s_3 = 36; charpoly
  // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6.
  std::vector<F::Element> s{6, 14, 36};
  auto p = seq::charpoly_from_power_sums(f, s);
  EXPECT_EQ(p, (std::vector<F::Element>{f.from_int(-6), f.from_int(11),
                                        f.from_int(-6), f.one()}));
}

TEST(NewtonIdentitiesTest, OverRationals) {
  RationalField q;
  std::vector<Rational> s{Rational(3), Rational(5), Rational(9)};
  auto p_tri = seq::charpoly_from_power_sums(
      q, s, seq::NewtonIdentityMethod::kTriangularSolve);
  auto p_exp = seq::charpoly_from_power_sums(
      q, s, seq::NewtonIdentityMethod::kPowerSeriesExp);
  for (std::size_t i = 0; i < p_tri.size(); ++i) {
    EXPECT_TRUE(q.eq(p_tri[i], p_exp[i])) << i;
  }
}

// ---------------------------------------------------------------------------
// Gohberg-Semencul (Figure 1).

Toeplitz<F> random_toeplitz(std::size_t n, util::Prng& prng) {
  std::vector<F::Element> diag(2 * n - 1);
  for (auto& v : diag) v = f.random(prng);
  return Toeplitz<F>(n, std::move(diag));
}

TEST(GohbergSemenculTest, ReconstructsDenseInverse) {
  util::Prng prng(9);
  poly::PolyRing<F> ring(f);
  for (std::size_t n : {1u, 2u, 3u, 6u, 12u, 25u}) {
    auto t = random_toeplitz(n, prng);
    auto gs = seq::gs_from_toeplitz_gauss(f, t);
    if (!gs) continue;  // singular or u1 = 0 (rare over a big field)
    auto inv = matrix::inverse_gauss(f, t.to_dense(f));
    ASSERT_TRUE(inv.has_value());
    EXPECT_TRUE(matrix::mat_eq(f, gs->to_dense(ring), *inv)) << n;
  }
}

TEST(GohbergSemenculTest, ApplySolvesSystem) {
  util::Prng prng(10);
  poly::PolyRing<F> ring(f);
  for (std::size_t n : {2u, 5u, 17u}) {
    auto t = random_toeplitz(n, prng);
    auto gs = seq::gs_from_toeplitz_gauss(f, t);
    if (!gs) continue;
    std::vector<F::Element> b(n);
    for (auto& v : b) v = f.random(prng);
    auto x = gs->apply(ring, b);
    EXPECT_EQ(t.apply(ring, x), b) << n;
  }
}

TEST(GohbergSemenculTest, TraceFormula) {
  util::Prng prng(11);
  for (std::size_t n : {1u, 2u, 4u, 9u, 16u}) {
    auto t = random_toeplitz(n, prng);
    auto gs = seq::gs_from_toeplitz_gauss(f, t);
    if (!gs) continue;
    auto inv = matrix::inverse_gauss(f, t.to_dense(f));
    ASSERT_TRUE(inv.has_value());
    auto tr = f.zero();
    for (std::size_t i = 0; i < n; ++i) tr = f.add(tr, inv->at(i, i));
    EXPECT_EQ(gs->trace(f), tr) << n;
  }
}

// ---------------------------------------------------------------------------
// Newton-on-Toeplitz (Theorem 3).

TEST(NewtonToeplitzTest, SeriesInverseMatchesNeumannSeries) {
  // (I - lambda T)^{-1} = sum_i T^i lambda^i; check the first and last
  // columns coefficient by coefficient.
  util::Prng prng(12);
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
    const std::size_t prec = n + 1;
    auto t = random_toeplitz(n, prng);
    auto inv = seq::toeplitz_series_inverse(f, t, prec);
    auto dense = t.to_dense(f);
    auto pw = matrix::identity_matrix(f, n);
    for (std::size_t k = 0; k < prec; ++k) {
      poly::TruncSeriesRing<F> sr(f, prec);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sr.coeff(inv.first_col[i], k), pw.at(i, 0))
            << "n=" << n << " k=" << k << " i=" << i;
        EXPECT_EQ(sr.coeff(inv.last_col[i], k), pw.at(i, n - 1))
            << "n=" << n << " k=" << k << " i=" << i;
      }
      pw = matrix::mat_mul(f, pw, dense);
    }
  }
}

TEST(NewtonToeplitzTest, PowerSumsMatchDenseTraces) {
  util::Prng prng(13);
  for (std::size_t n : {1u, 2u, 4u, 7u, 12u}) {
    auto t = random_toeplitz(n, prng);
    auto s = seq::toeplitz_power_sums(f, t, n + 1);
    EXPECT_EQ(s[0], f.from_int(static_cast<std::int64_t>(n)));
    auto ref = dense_power_sums(t.to_dense(f), n);
    for (std::size_t k = 1; k <= n; ++k) EXPECT_EQ(s[k], ref[k - 1]) << n << " " << k;
  }
}

TEST(NewtonToeplitzTest, CharpolyMatchesDenseReference) {
  util::Prng prng(14);
  for (std::size_t n : {1u, 2u, 3u, 6u, 10u, 16u}) {
    auto t = random_toeplitz(n, prng);
    EXPECT_EQ(seq::toeplitz_charpoly(f, t), dense_charpoly(t.to_dense(f))) << n;
  }
}

TEST(NewtonToeplitzTest, CharpolyAnnihilatesMatrix) {
  // Cayley-Hamilton: p(T) = 0.
  util::Prng prng(15);
  const std::size_t n = 8;
  auto t = random_toeplitz(n, prng);
  auto p = seq::toeplitz_charpoly(f, t);
  auto dense = t.to_dense(f);
  auto acc = matrix::zero_matrix(f, n, n);
  for (std::size_t k = p.size(); k-- > 0;) {
    acc = matrix::mat_mul(f, acc, dense);
    for (std::size_t i = 0; i < n; ++i) acc.at(i, i) = f.add(acc.at(i, i), p[k]);
  }
  EXPECT_TRUE(matrix::mat_eq(f, acc, matrix::zero_matrix(f, n, n)));
}

TEST(NewtonToeplitzTest, DetMatchesGauss) {
  util::Prng prng(16);
  for (std::size_t n : {1u, 2u, 5u, 9u, 14u}) {
    auto t = random_toeplitz(n, prng);
    EXPECT_EQ(seq::toeplitz_det(f, t), matrix::det_gauss(f, t.to_dense(f))) << n;
  }
}

TEST(NewtonToeplitzTest, SolveRoundTrip) {
  util::Prng prng(17);
  poly::PolyRing<F> ring(f);
  for (std::size_t n : {1u, 3u, 7u, 13u}) {
    auto t = random_toeplitz(n, prng);
    if (f.is_zero(matrix::det_gauss(f, t.to_dense(f)))) continue;
    std::vector<F::Element> x(n);
    for (auto& v : x) v = f.random(prng);
    auto b = t.apply(ring, x);
    auto sol = seq::toeplitz_solve_charpoly(f, t, b, ring);
    EXPECT_EQ(sol, x) << n;
  }
}

TEST(NewtonToeplitzTest, WorksOverRationals) {
  RationalField q;
  // 3x3 Toeplitz with small integer entries.
  std::vector<Rational> diag{1, 2, 3, 4, 5};  // a_0..a_4
  Toeplitz<RationalField> t(3, diag);
  auto p = seq::toeplitz_charpoly(q, t);
  // Check against dense Gaussian determinant via p(0) = (-1)^n det(T).
  auto det = matrix::det_gauss(q, t.to_dense(q));
  EXPECT_TRUE(q.eq(p[0], q.neg(det)));  // n = 3 odd
  // And Cayley-Hamilton.
  auto dense = t.to_dense(q);
  auto acc = matrix::zero_matrix(q, 3, 3);
  for (std::size_t k = p.size(); k-- > 0;) {
    acc = matrix::mat_mul(q, acc, dense);
    for (std::size_t i = 0; i < 3; ++i) acc.at(i, i) = q.add(acc.at(i, i), p[k]);
  }
  EXPECT_TRUE(matrix::mat_eq(q, acc, matrix::zero_matrix(q, 3, 3)));
}

TEST(NewtonToeplitzTest, StructuredGsConstructorMatchesGaussian) {
  util::Prng prng(18);
  poly::PolyRing<F> ring(f);
  for (std::size_t n : {1u, 2u, 4u, 8u, 15u}) {
    auto t = random_toeplitz(n, prng);
    auto fast = seq::gs_from_toeplitz(f, t, ring);
    auto ref = seq::gs_from_toeplitz_gauss(f, t);
    ASSERT_EQ(fast.has_value(), ref.has_value()) << n;
    if (!fast) continue;
    EXPECT_EQ(fast->first_col, ref->first_col) << n;
    EXPECT_EQ(fast->last_col, ref->last_col) << n;
    // And the representation actually inverts T.
    std::vector<F::Element> b(n);
    for (auto& v : b) v = f.random(prng);
    EXPECT_EQ(t.apply(ring, fast->apply(ring, b)), b) << n;
  }
}

TEST(NewtonToeplitzTest, StructuredGsReportsSingular) {
  poly::PolyRing<F> ring(f);
  // All-ones Toeplitz of dim 3 is singular.
  matrix::Toeplitz<F> t(3, std::vector<F::Element>(5, f.one()));
  EXPECT_FALSE(seq::gs_from_toeplitz(f, t, ring).has_value());
}

TEST(NewtonToeplitzTest, MinpolyParallelMatchesBerlekampMassey) {
  util::Prng prng(19);
  poly::PolyRing<F> ring(f);
  for (std::size_t d : {1u, 2u, 4u, 7u, 10u}) {
    auto mp = random_monic(d, prng);
    std::vector<F::Element> seed(d);
    for (auto& v : seed) v = f.random(prng);
    auto sq = seq::sequence_with_minpoly(f, mp, seed, 4 * d);
    EXPECT_EQ(seq::minpoly_parallel(f, sq, 2 * d, ring),
              seq::berlekamp_massey(f, sq))
        << d;
  }
}

TEST(NewtonToeplitzTest, MinpolyParallelZeroSequence) {
  poly::PolyRing<F> ring(f);
  std::vector<F::Element> zeros(12, f.zero());
  EXPECT_EQ(seq::minpoly_parallel(f, zeros, 6, ring),
            std::vector<F::Element>{f.one()});
}

TEST(NewtonToeplitzTest, UpperLowerTriangularHelpers) {
  poly::PolyRing<F> ring(f);
  // L((1,2,3)) z and U((1,2,3)) z against explicit matrices.
  std::vector<F::Element> w{1, 2, 3};
  std::vector<F::Element> z{4, 5, 6};
  using GS = seq::GohbergSemencul<F>;
  auto lo = GS::lower_tri_apply(ring, w, z);
  EXPECT_EQ(lo, (std::vector<F::Element>{4, 13, 28}));
  auto up = GS::upper_tri_apply(ring, w, z);
  // U = [[1,2,3],[0,1,2],[0,0,1]] -> (4+10+18, 5+12, 6).
  EXPECT_EQ(up, (std::vector<F::Element>{32, 17, 6}));
}

}  // namespace
}  // namespace kp

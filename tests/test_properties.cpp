// Parameterized property sweeps (TEST_P): the library's cross-cutting
// invariants exercised over grids of sizes, strategies and failure modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/baselines.h"
#include "core/extensions.h"
#include "core/solver.h"
#include "core/wiedemann.h"
#include "field/gfpk.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/gauss.h"
#include "matrix/sparse.h"
#include "matrix/structured.h"
#include "poly/poly.h"
#include "seq/gohberg_semencul.h"
#include "seq/newton_toeplitz.h"
#include "util/prng.h"

namespace kp {
namespace {

using field::GFp;
using field::Zp;
using matrix::MatMulStrategy;
using matrix::Matrix;

using F = Zp<1000003>;
F f;

// ---------------------------------------------------------------------------
// Solver sweep: every (n, matmul, newton-identities, finish) combination
// must produce the exact solution and determinant.

using SolverParam = std::tuple<std::size_t, MatMulStrategy,
                               seq::NewtonIdentityMethod, bool>;

class SolverSweep : public ::testing::TestWithParam<SolverParam> {};

TEST_P(SolverSweep, RoundTripAndDet) {
  const auto [n, matmul, newton, depth_optimal] = GetParam();
  util::Prng prng(static_cast<std::uint64_t>(n) * 31 +
                  static_cast<std::uint64_t>(matmul) * 7 +
                  static_cast<std::uint64_t>(newton) * 3 + depth_optimal);
  auto a = matrix::random_matrix(f, n, n, prng);
  if (f.is_zero(matrix::det_gauss(f, a))) GTEST_SKIP();
  std::vector<F::Element> x(n);
  for (auto& e : x) e = f.random(prng);
  auto b = matrix::mat_vec(f, a, x);

  core::SolverOptions opt;
  opt.matmul = matmul;
  opt.newton = newton;
  opt.depth_optimal = depth_optimal;
  auto res = core::kp_solve(f, a, b, prng, opt);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.x, x);
  EXPECT_EQ(res.det, matrix::det_gauss(f, a));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SolverSweep,
    ::testing::Combine(
        ::testing::Values<std::size_t>(1, 2, 3, 5, 9, 16),
        ::testing::Values(MatMulStrategy::kClassical, MatMulStrategy::kStrassen),
        ::testing::Values(seq::NewtonIdentityMethod::kTriangularSolve,
                          seq::NewtonIdentityMethod::kPowerSeriesExp),
        ::testing::Bool()));

// ---------------------------------------------------------------------------
// Charpoly agreement sweep: five independent algorithms, one answer.

class CharpolySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CharpolySweep, AllMethodsAgreeAndAnnihilate) {
  const std::size_t n = GetParam();
  util::Prng prng(n * 1003);
  auto a = matrix::random_matrix(f, n, n, prng);

  const auto ref = core::faddeev_leverrier(f, a).charpoly;
  EXPECT_EQ(core::charpoly_csanky(f, a), ref);
  EXPECT_EQ(core::charpoly_berkowitz(f, a), ref);
  EXPECT_EQ(core::charpoly_chistov(f, a), ref);

  // Coefficient sanity: p(0) = (-1)^n det, next-to-leading = -trace.
  auto det = matrix::det_gauss(f, a);
  EXPECT_EQ(ref[0], n % 2 == 0 ? det : f.neg(det));
  auto tr = f.zero();
  for (std::size_t i = 0; i < n; ++i) tr = f.add(tr, a.at(i, i));
  EXPECT_EQ(ref[n - 1], f.neg(tr));

  // Cayley-Hamilton.
  auto acc = matrix::zero_matrix(f, n, n);
  for (std::size_t k = ref.size(); k-- > 0;) {
    acc = matrix::mat_mul(f, acc, a);
    for (std::size_t i = 0; i < n; ++i) acc.at(i, i) = f.add(acc.at(i, i), ref[k]);
  }
  EXPECT_TRUE(matrix::mat_eq(f, acc, matrix::zero_matrix(f, n, n)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CharpolySweep,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 7, 9, 12));

// ---------------------------------------------------------------------------
// Polynomial multiplication sweep over the NTT-friendly field: all kernels,
// many shapes, one answer; plus ring axioms at the boundary shapes.

using PolyParam = std::tuple<std::size_t, std::size_t>;

class PolyMulSweep : public ::testing::TestWithParam<PolyParam> {};

TEST_P(PolyMulSweep, KernelsAgree) {
  const auto [da, db] = GetParam();
  GFp fq(field::kNttPrime);
  util::Prng prng(da * 131 + db);
  poly::PolyRing<GFp> school(fq, poly::MulStrategy::kSchoolbook);
  poly::PolyRing<GFp> karat(fq, poly::MulStrategy::kKaratsuba, 4);
  poly::PolyRing<GFp> ntt(fq, poly::MulStrategy::kNtt);
  poly::PolyRing<GFp> autod(fq, poly::MulStrategy::kAuto);
  auto a = school.random_degree(prng, static_cast<std::int64_t>(da));
  auto b = school.random_degree(prng, static_cast<std::int64_t>(db));
  if (school.is_zero(a) || school.is_zero(b)) GTEST_SKIP();
  const auto ref = school.mul(a, b);
  EXPECT_TRUE(school.eq(ref, karat.mul(a, b)));
  EXPECT_TRUE(school.eq(ref, ntt.mul(a, b)));
  EXPECT_TRUE(school.eq(ref, autod.mul(a, b)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PolyMulSweep,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 7, 23, 64, 200),
                       ::testing::Values<std::size_t>(0, 5, 31, 128)));

// ---------------------------------------------------------------------------
// Extension-field multiplication sweep: the packed-integer NTT kernel
// (poly/gfpk_ntt.h) must agree with generic schoolbook over GF(p^k).

using GfpkMulParam = std::tuple<std::uint64_t, unsigned, std::size_t>;

class GfpkMulSweep : public ::testing::TestWithParam<GfpkMulParam> {};

TEST_P(GfpkMulSweep, PackedKernelMatchesSchoolbook) {
  const auto [p, k, deg] = GetParam();
  field::GFpk gf(p, k);
  util::Prng prng(p * 97 + k * 7 + deg);
  poly::PolyRing<field::GFpk> school(gf, poly::MulStrategy::kSchoolbook);
  poly::PolyRing<field::GFpk> autod(gf, poly::MulStrategy::kAuto);
  ASSERT_TRUE((poly::NttTraits<field::GFpk>::available(gf, 2 * deg + 1)));
  auto a = school.random_degree(prng, static_cast<std::int64_t>(deg));
  auto b = school.random_degree(prng, static_cast<std::int64_t>(deg));
  if (school.is_zero(a) || school.is_zero(b)) GTEST_SKIP();
  EXPECT_TRUE(school.eq(school.mul(a, b), autod.mul(a, b)));
  EXPECT_TRUE(school.eq(school.mul(a, b),
                        poly::NttTraits<field::GFpk>::mul(gf, a, b)));
}

INSTANTIATE_TEST_SUITE_P(
    FieldsAndDegrees, GfpkMulSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(2, 3, 17),
                       ::testing::Values<unsigned>(1, 2, 4, 8),
                       ::testing::Values<std::size_t>(1, 9, 40, 130)));

// ---------------------------------------------------------------------------
// Failure injection: rank-deficient inputs of every deficiency must make
// the solver fail cleanly and the section-5 extensions recover structure.

class RankDeficiencySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RankDeficiencySweep, SolverFailsExtensionsRecover) {
  const std::size_t deficiency = GetParam();
  const std::size_t n = 8;
  const std::size_t r = n - deficiency;
  util::Prng prng(deficiency * 17 + 5);

  Matrix<F> a = matrix::zero_matrix(f, n, n);
  if (r > 0) {
    auto left = matrix::random_matrix(f, n, r, prng);
    auto right = matrix::random_matrix(f, r, n, prng);
    a = matrix::mat_mul(f, left, right);
  }
  ASSERT_EQ(matrix::rank_gauss(f, a), r);  // generic draw

  if (deficiency > 0) {
    // The Theorem-4 pipeline must report failure, never a wrong answer.
    std::vector<F::Element> b(n);
    for (auto& e : b) e = f.random(prng);
    auto res = core::kp_solve(f, a, b, prng);
    EXPECT_FALSE(res.ok);

    // Wiedemann's singularity certificate fires.
    matrix::DenseBox<F> box(f, a);
    EXPECT_TRUE(core::wiedemann_singular_test(f, box, prng, 1u << 20));
  }

  // Rank and nullspace recover the planted structure.
  EXPECT_EQ(core::rank_randomized(f, a, prng, 1u << 20), r);
  auto ns = core::nullspace_randomized(f, a, prng, 1u << 20);
  ASSERT_TRUE(ns.ok);
  EXPECT_EQ(ns.rank, r);
  EXPECT_EQ(ns.basis.cols(), deficiency);

  // Singular solve succeeds exactly on consistent right-hand sides.
  std::vector<F::Element> y(n);
  for (auto& e : y) e = f.random(prng);
  auto consistent = matrix::mat_vec(f, a, y);
  auto sol = core::singular_solve_randomized(f, a, consistent, prng, 1u << 20);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(matrix::mat_vec(f, a, *sol), consistent);
}

INSTANTIATE_TEST_SUITE_P(Deficiencies, RankDeficiencySweep,
                         ::testing::Values<std::size_t>(0, 1, 2, 4, 7, 8));

// ---------------------------------------------------------------------------
// Toeplitz sweep: Theorem 3 and Gohberg-Semencul across sizes.

class ToeplitzSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ToeplitzSweep, CharpolyGsAndSolve) {
  const std::size_t n = GetParam();
  util::Prng prng(n * 71 + 3);
  poly::PolyRing<F> ring(f);
  std::vector<F::Element> diag(2 * n - 1);
  for (auto& v : diag) v = f.random(prng);
  matrix::Toeplitz<F> t(n, diag);
  auto dense = t.to_dense(f);

  // Theorem-3 charpoly vs the Berkowitz reference on the dense copy.
  EXPECT_EQ(seq::toeplitz_charpoly(f, t), core::charpoly_berkowitz(f, dense));

  // Gohberg-Semencul round trip (when the representation exists).
  if (auto gs = seq::gs_from_toeplitz_gauss(f, t)) {
    std::vector<F::Element> z(n);
    for (auto& e : z) e = f.random(prng);
    EXPECT_EQ(t.apply(ring, gs->apply(ring, z)), z);
  }

  // Cayley-Hamilton Toeplitz solve.
  if (!f.is_zero(matrix::det_gauss(f, dense))) {
    std::vector<F::Element> x(n);
    for (auto& e : x) e = f.random(prng);
    auto b = t.apply(ring, x);
    EXPECT_EQ(seq::toeplitz_solve_charpoly(f, t, b, ring), x);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ToeplitzSweep,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 6, 8, 11, 16, 23));

// ---------------------------------------------------------------------------
// Wiedemann sweep over sparsity levels.

using WiedemannParam = std::tuple<std::size_t, std::size_t>;

class WiedemannSweep : public ::testing::TestWithParam<WiedemannParam> {};

TEST_P(WiedemannSweep, SparseSolveRoundTrip) {
  const auto [n, nnz_per_row] = GetParam();
  util::Prng prng(n * 13 + nnz_per_row);
  auto sp = matrix::Sparse<F>::random(f, n, nnz_per_row, prng);
  if (f.is_zero(matrix::det_gauss(f, sp.to_dense(f)))) GTEST_SKIP();
  std::vector<F::Element> x(n);
  for (auto& e : x) e = f.random(prng);
  auto b = sp.apply(f, x);
  matrix::SparseBox<F> box(f, sp);
  auto sol = core::wiedemann_solve(f, box, b, prng, 1u << 20);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(*sol, x);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WiedemannSweep,
    ::testing::Combine(::testing::Values<std::size_t>(5, 12, 25, 40),
                       ::testing::Values<std::size_t>(1, 3, 6)));

// ---------------------------------------------------------------------------
// Series sweep: inverse/log/exp identities across precisions.

class SeriesSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SeriesSweep, InverseAndExpLogIdentities) {
  const std::size_t prec = GetParam();
  util::Prng prng(prec * 7 + 1);
  poly::PolyRing<F> ring(f);

  auto a = ring.random_degree(prng, static_cast<std::int64_t>(prec));
  if (a.empty() || f.is_zero(a[0])) a = ring.add(a, ring.one());
  if (f.is_zero(ring.coeff(a, 0))) GTEST_SKIP();
  auto inv = poly::series_inverse(ring, a, prec);
  EXPECT_TRUE(ring.eq(ring.truncate(ring.mul(a, inv), prec), ring.one()));

  auto h = ring.shift_up(ring.random_degree(prng, static_cast<std::int64_t>(prec) - 2), 1);
  auto e = poly::series_exp(ring, h, prec);
  EXPECT_TRUE(ring.eq(poly::series_log(ring, e, prec), ring.truncate(h, prec)));
}

INSTANTIATE_TEST_SUITE_P(Precisions, SeriesSweep,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 13, 21, 34, 64));

}  // namespace
}  // namespace kp

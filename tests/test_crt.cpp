// Tests for the CRT sharding engine (core/crt_shard.h), the CRT /
// rational-reconstruction layer (core/crt_recon.h), the deterministic
// NTT-prime stream (field/primes.h) and the BigInt helpers they ride on.
// The contracts under test: round-trip exactness (CRT + Wang reconstruction
// recover arbitrary rationals, in any prime order), per-shard solves
// bit-identical to standalone Zp solves under the shared transcript at
// 1/2/8 workers, bad primes retried with ONLY the prime redrawn, the
// Hadamard cap falling back to the generic route, and early termination
// stopping short of the cap exactly when the answer is small.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/crt_recon.h"
#include "core/crt_shard.h"
#include "core/solver.h"
#include "field/bigint.h"
#include "field/primes.h"
#include "field/rational.h"
#include "field/zp.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "pram/parallel_for.h"
#include "util/fault.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp {
namespace {

using core::CrtOptions;
using core::CrtSolveResult;
using field::BigInt;
using field::Rational;
using field::RationalField;
using util::FailureKind;
using util::Stage;

#define KP_REQUIRE_FAULT_INJECTION()                  \
  do {                                                \
    if (!KP_FAULT_INJECTION_ENABLED) {                \
      GTEST_SKIP() << "fault injection compiled out"; \
    }                                                 \
  } while (0)

/// Worker-limit pin restored on scope exit.
class ScopedWorkers {
 public:
  explicit ScopedWorkers(unsigned limit)
      : saved_(pram::ExecutionContext::global().worker_limit()) {
    pram::ExecutionContext::global().set_worker_limit(limit);
  }
  ~ScopedWorkers() {
    pram::ExecutionContext::global().set_worker_limit(saved_);
  }

 private:
  unsigned saved_;
};

RationalField q;

matrix::Matrix<RationalField> random_rational_matrix(std::size_t n,
                                                     util::Prng& prng,
                                                     bool with_dens = true) {
  matrix::Matrix<RationalField> a(n, n, q.zero());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t num = static_cast<std::int64_t>(prng.below(19)) - 9;
      const std::int64_t den =
          with_dens ? static_cast<std::int64_t>(prng.below(9)) + 1 : 1;
      a.at(i, j) = Rational(BigInt(num), BigInt(den));
    }
  }
  return a;
}

std::vector<Rational> random_rational_vector(std::size_t n, util::Prng& prng,
                                             bool with_dens = true) {
  std::vector<Rational> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t num = static_cast<std::int64_t>(prng.below(19)) - 9;
    const std::int64_t den =
        with_dens ? static_cast<std::int64_t>(prng.below(9)) + 1 : 1;
    b[i] = Rational(BigInt(num), BigInt(den));
  }
  return b;
}

matrix::Matrix<RationalField> nonsingular_rational(std::size_t n,
                                                   util::Prng& prng,
                                                   bool with_dens = true) {
  for (;;) {
    auto a = random_rational_matrix(n, prng, with_dens);
    if (!q.is_zero(matrix::det_gauss(q, a))) return a;
  }
}

// ---------------------------------------------------------------------------
// field/primes.h: deterministic NTT-prime stream
// ---------------------------------------------------------------------------

TEST(NttPrimeStream, DescendingCertifiedStream) {
  constexpr int kBits = 62;
  constexpr int kAdicity = 24;
  std::uint64_t prev = 0;
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 12; ++i) {
    const std::uint64_t p = field::next_ntt_prime(kBits, kAdicity, prev);
    ASSERT_NE(p, 0u);
    EXPECT_TRUE(field::is_prime_u64(p));
    EXPECT_GE(p, 1ULL << (kBits - 1));
    EXPECT_LT(p, 1ULL << kBits);
    EXPECT_GE(std::countr_zero(p - 1), kAdicity);
    if (prev != 0) EXPECT_LT(p, prev);
    first.push_back(p);
    prev = p;
  }
  // Replaying the stream yields the identical primes: it is a pure function
  // of (bits, adicity, below).
  prev = 0;
  for (int i = 0; i < 12; ++i) {
    const std::uint64_t p = field::next_ntt_prime(kBits, kAdicity, prev);
    EXPECT_EQ(p, first[static_cast<std::size_t>(i)]);
    prev = p;
  }
}

TEST(NttPrimeStream, MatchesBruteForceSmallRange) {
  // Every prime of the right shape in [2^19, 2^20) must appear, descending,
  // with none skipped -- cross-checked against trial division.
  constexpr int kBits = 20;
  constexpr int kAdicity = 8;
  std::vector<std::uint64_t> stream;
  for (std::uint64_t prev = 0;;) {
    const std::uint64_t p = field::next_ntt_prime(kBits, kAdicity, prev);
    if (p == 0) break;
    stream.push_back(p);
    prev = p;
  }
  std::vector<std::uint64_t> brute;
  for (std::uint64_t p = (1ULL << kBits) - 1; p >= (1ULL << (kBits - 1));
       --p) {
    if (std::countr_zero(p - 1) < kAdicity) continue;
    bool prime = p >= 2;
    for (std::uint64_t d = 2; d * d <= p; ++d) {
      if (p % d == 0) {
        prime = false;
        break;
      }
    }
    if (prime) brute.push_back(p);
  }
  EXPECT_EQ(stream, brute);
  EXPECT_FALSE(stream.empty());
}

TEST(NttPrimeStream, RejectsDegenerateArguments) {
  EXPECT_EQ(field::next_ntt_prime(2, 1), 0u);
  EXPECT_EQ(field::next_ntt_prime(64, 10), 0u);
  EXPECT_EQ(field::next_ntt_prime(62, 0), 0u);
  EXPECT_EQ(field::next_ntt_prime(62, 61), 0u);
  // Exhausted cap: nothing below the smallest admissible candidate.
  EXPECT_EQ(field::next_ntt_prime(62, 24, 1ULL << 61), 0u);
}

// ---------------------------------------------------------------------------
// field/bigint.h helpers: binary GCD fast path and mod_u64
// ---------------------------------------------------------------------------

TEST(CrtRecon, BinaryGcdMatchesReference) {
  // The word-size fast path (binary GCD) must agree with std::gcd on random
  // operands of every magnitude, including zero and sign variations.
  util::Prng prng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t a =
        static_cast<std::int64_t>(prng() >> (1 + prng.below(48)));
    const std::int64_t b =
        static_cast<std::int64_t>(prng() >> (1 + prng.below(48)));
    const std::int64_t expect = std::gcd(a, b);
    EXPECT_EQ(BigInt::gcd(BigInt(a), BigInt(-b)), BigInt(expect));
  }
  // Large operands still agree with the plain-Euclid contract
  // (gcd(k x, k y) = k gcd(x, y)) and handle signs.
  const BigInt k("123456789123456789123456789");
  EXPECT_EQ(BigInt::gcd(k * BigInt(462), k * BigInt(-1071)), k * BigInt(21));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(-7)), BigInt(7));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)), BigInt(0));
}

TEST(CrtRecon, ModU64MatchesBigIntRemainder) {
  util::Prng prng(12);
  for (int i = 0; i < 500; ++i) {
    BigInt v(static_cast<std::int64_t>(prng() >> 1));
    for (int j = 0; j < 4; ++j) {
      v = v * BigInt(static_cast<std::int64_t>(prng() >> 1));
    }
    if (prng.below(2)) v = -v;
    const std::uint64_t m = (prng() >> 2) | 1;
    BigInt r = v % BigInt(static_cast<std::int64_t>(m));
    if (r.is_negative()) r += BigInt(static_cast<std::int64_t>(m));
    ASSERT_TRUE(r.fits_int64());
    EXPECT_EQ(v.mod_u64(m), static_cast<std::uint64_t>(r.to_int64()));
  }
}

// ---------------------------------------------------------------------------
// core/crt_recon.h: Garner CRT + Wang reconstruction
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> stream_primes(std::size_t count, int bits = 62,
                                         int adicity = 20) {
  std::vector<std::uint64_t> ps;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    prev = field::next_ntt_prime(bits, adicity, prev);
    ps.push_back(prev);
  }
  return ps;
}

TEST(CrtRecon, BigIntInvmodRoundTrip) {
  util::Prng prng(21);
  const BigInt m("987654321987654321987654323");
  for (int i = 0; i < 50; ++i) {
    const BigInt a(static_cast<std::int64_t>(prng() >> 1) + 1);
    const auto inv = core::bigint_invmod(a, m);
    if (!inv.has_value()) continue;  // shared factor: fine, just skip
    BigInt prod = (a * *inv) % m;
    if (prod.is_negative()) prod += m;
    EXPECT_EQ(prod, BigInt(1));
  }
  EXPECT_FALSE(core::bigint_invmod(BigInt(6), BigInt(9)).has_value());
}

TEST(CrtRecon, GarnerRecoversIntegerInAnyPrimeOrder) {
  util::Prng prng(22);
  // A ~300-bit integer, recovered from residues folded in adversarial
  // (ascending, i.e. reverse-stream) order and in batches of mixed size.
  BigInt x(1);
  for (int i = 0; i < 5; ++i) {
    x *= BigInt(static_cast<std::int64_t>(prng() >> 1));
  }
  auto primes = stream_primes(7);
  std::reverse(primes.begin(), primes.end());
  core::CrtCombiner comb(1);
  std::size_t at = 0;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::vector<std::uint64_t> ps(primes.begin() + static_cast<std::ptrdiff_t>(at),
                                  primes.begin() + static_cast<std::ptrdiff_t>(at + batch));
    std::vector<std::vector<std::uint64_t>> res(1, std::vector<std::uint64_t>(batch));
    for (std::size_t j = 0; j < batch; ++j) res[0][j] = x.mod_u64(ps[j]);
    comb.fold_batch(ps, res);
    at += batch;
  }
  EXPECT_EQ(comb.value(0), x % comb.modulus());
  EXPECT_EQ(core::symmetric_residue(comb.value(0), comb.modulus()), x);
}

TEST(CrtRecon, WangRoundTripLargeDenominator) {
  util::Prng prng(23);
  // n/d with a ~190-bit denominator; both fit the balanced bounds once the
  // modulus passes ~2*190 bits, i.e. 7 62-bit primes.
  BigInt n(static_cast<std::int64_t>(prng() >> 4));
  BigInt d(1);
  for (int i = 0; i < 3; ++i) d *= BigInt(static_cast<std::int64_t>(prng() >> 1) | 1);
  d = d.abs();
  const BigInt g = BigInt::gcd(n, d);
  n /= g;
  d /= g;
  if (prng.below(2)) n = -n;

  const auto primes = stream_primes(8);
  core::CrtCombiner comb(1);
  std::vector<std::vector<std::uint64_t>> res(1, std::vector<std::uint64_t>(primes.size()));
  for (std::size_t j = 0; j < primes.size(); ++j) {
    const std::uint64_t p = primes[j];
    // residue of n * d^{-1} mod p
    const field::GFp f(p);
    res[0][j] = f.mul(n.mod_u64(p), f.inv(d.mod_u64(p)));
  }
  comb.fold_batch(primes, res);
  const auto bounds = core::balanced_bounds(comb.modulus());
  const auto rec = core::rational_reconstruct(comb.value(0), comb.modulus(),
                                              bounds.num, bounds.den);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->num(), n);
  EXPECT_EQ(rec->den(), d);
}

TEST(CrtRecon, WangRejectsWhenModulusTooSmall) {
  // The denominator needs ~190 bits; 2 primes (~124 bits) cannot certify any
  // candidate within balanced bounds -- Wang must return nullopt, never a
  // wrong fraction that would then fail system verification.
  util::Prng prng(24);
  BigInt d(1);
  for (int i = 0; i < 3; ++i) d *= BigInt(static_cast<std::int64_t>(prng() >> 1) | 1);
  d = d.abs();
  const BigInt n(7);
  const auto primes = stream_primes(2);
  core::CrtCombiner comb(1);
  std::vector<std::vector<std::uint64_t>> res(1, std::vector<std::uint64_t>(primes.size()));
  for (std::size_t j = 0; j < primes.size(); ++j) {
    const field::GFp f(primes[j]);
    res[0][j] = f.mul(n.mod_u64(primes[j]), f.inv(d.mod_u64(primes[j])));
  }
  comb.fold_batch(primes, res);
  const auto bounds = core::balanced_bounds(comb.modulus());
  const auto rec = core::rational_reconstruct(comb.value(0), comb.modulus(),
                                              bounds.num, bounds.den);
  if (rec.has_value()) {
    // If anything came back within bounds it must NOT claim to be n/d.
    EXPECT_NE(rec->den(), d);
  }
}

// ---------------------------------------------------------------------------
// core/crt_shard.h: the sharded solve
// ---------------------------------------------------------------------------

TEST(CrtShardSolver, SolvesRationalSystemExactly) {
  util::Prng prng(31);
  const std::size_t n = 6;
  const auto a = nonsingular_rational(n, prng);
  const auto b = random_rational_vector(n, prng);
  const auto direct = matrix::solve_gauss(q, a, b);
  ASSERT_TRUE(direct.has_value());

  util::Prng solver_prng(99);
  auto res = core::crt_solve(q, a, b, solver_prng);
  ASSERT_TRUE(res.ok) << res.status.message();
  EXPECT_FALSE(res.used_generic);
  ASSERT_EQ(res.x.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(res.x[i], (*direct)[i]);
  if (res.det_certified) {
    EXPECT_EQ(res.det, matrix::det_gauss(q, a));
  }
}

TEST(CrtShardSolver, AdaptiveAutoRoutesRationalInputs) {
  util::Prng prng(32);
  const std::size_t n = 5;
  const auto a = nonsingular_rational(n, prng, /*with_dens=*/false);
  const auto b = random_rational_vector(n, prng, /*with_dens=*/false);
  util::Prng solver_prng(7);
  auto res = core::kp_solve_adaptive(q, a, b, solver_prng);
  ASSERT_TRUE(res.ok) << res.status.message();
  EXPECT_FALSE(res.used_generic);
  const auto direct = matrix::solve_gauss(q, a, b);
  ASSERT_TRUE(direct.has_value());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(res.x[i], (*direct)[i]);
}

TEST(CrtShardSolver, HadamardCapFallsBackToGeneric) {
  util::Prng prng(33);
  const std::size_t n = 5;
  const auto a = nonsingular_rational(n, prng);
  const auto b = random_rational_vector(n, prng);
  CrtOptions opt;
  opt.max_shards = 1;  // any real input needs more than one 62-bit prime
  util::Prng solver_prng(7);
  auto res = core::kp_solve_adaptive(q, a, b, solver_prng, opt);
  ASSERT_TRUE(res.ok) << res.status.message();
  EXPECT_TRUE(res.used_generic);
  const auto direct = matrix::solve_gauss(q, a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(res.x[i], (*direct)[i]);
}

TEST(CrtShardSolver, SingularInputProvedThroughGenericFallback) {
  const std::size_t n = 4;
  matrix::Matrix<RationalField> a(n, n, q.zero());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) = Rational(static_cast<std::int64_t>(i + j));  // rank 2
    }
  }
  std::vector<Rational> b(n, q.one());
  util::Prng solver_prng(7);
  auto res = core::crt_solve(q, a, b, solver_prng);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.used_generic);
  EXPECT_EQ(res.status.kind(), FailureKind::kSingularInput);
}

TEST(CrtShardSolver, BadPrimeRetriesWithOnlyPrimeRedrawn) {
  // det(A) = p0, the first stream prime: shard 0 deterministically reports
  // kBadPrime and the engine retries with the NEXT prime under the SAME
  // transcript seed.
  const std::size_t n = 4;
  CrtOptions opt;
  opt.min_two_adicity = 24;
  opt.keep_residues = true;
  const std::uint64_t p0 = field::next_ntt_prime(opt.prime_bits, 24);
  ASSERT_NE(p0, 0u);
  matrix::Matrix<RationalField> a(n, n, q.zero());
  a.at(0, 0) = Rational(BigInt(static_cast<std::int64_t>(p0)), BigInt(1));
  for (std::size_t i = 1; i < n; ++i) a.at(i, i) = q.one();
  std::vector<Rational> b(n, q.one());

  util::Prng solver_prng(7);
  auto res = core::crt_solve(q, a, b, solver_prng, opt);
  ASSERT_TRUE(res.ok) << res.status.message();
  EXPECT_FALSE(res.used_generic);
  // x = (1/p0, 1, 1, 1).
  EXPECT_EQ(res.x[0], Rational(BigInt(1), BigInt(static_cast<std::int64_t>(p0))));
  EXPECT_EQ(res.x[1], q.one());

  // Exactly one kBadPrime record, for prime index 0 / modulus p0; every
  // diag (bad and good) carries the same transcript seed.
  int bad = 0;
  for (const auto& d : res.diags) {
    EXPECT_EQ(d.precondition_seed, res.transcript_seed);
    if (d.kind == FailureKind::kBadPrime) {
      ++bad;
      EXPECT_EQ(d.stage, Stage::kCrtShard);
      EXPECT_EQ(d.shard_modulus, p0);
      EXPECT_EQ(d.shard_prime_index, 0);
    }
  }
  EXPECT_EQ(bad, 1);
  // p0 itself never contributes to the reconstruction.
  for (const auto p : res.primes) EXPECT_NE(p, p0);
}

TEST(CrtShardSolver, EarlyTerminationStopsShortOfHadamardCap) {
  // b = A x for a small integer x: the true answer has tiny numerators, so
  // reconstruction stabilizes long before the a-priori Hadamard cap.
  util::Prng prng(34);
  const std::size_t n = 16;
  const auto a = nonsingular_rational(n, prng, /*with_dens=*/false);
  std::vector<Rational> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = Rational(static_cast<std::int64_t>(prng.below(10)));
  }
  std::vector<Rational> b(n, q.zero());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      b[i] = b[i] + a.at(i, j) * x_true[j];
    }
  }
  CrtOptions opt;
  opt.batch_size = 2;
  util::Prng solver_prng(7);
  auto res = core::crt_solve(q, a, b, solver_prng, opt);
  ASSERT_TRUE(res.ok) << res.status.message();
  EXPECT_TRUE(res.early_terminated);
  EXPECT_LT(res.shards_used, res.hadamard_cap);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(res.x[i], x_true[i]);
}

TEST(CrtShardSolver, DetOnlyMatchesGauss) {
  util::Prng prng(35);
  const std::size_t n = 5;
  const auto a = nonsingular_rational(n, prng);
  CrtOptions opt;
  opt.early_termination = false;  // run to the bound: det certified
  util::Prng solver_prng(7);
  auto res = core::crt_det(q, a, solver_prng, opt);
  ASSERT_TRUE(res.ok) << res.status.message();
  EXPECT_FALSE(res.used_generic);
  EXPECT_TRUE(res.det_certified);
  EXPECT_EQ(res.det, matrix::det_gauss(q, a));
}

// The acceptance criterion: each shard's residues are bit-identical to a
// standalone Zp solve of the reduced system with the same transcript seed
// and the same options, at 1, 2 and 8 workers.
TEST(CrtShardScheduler, ShardsBitIdenticalToStandaloneZpSolves) {
  util::Prng prng(36);
  const std::size_t n = 8;
  const auto a = nonsingular_rational(n, prng, /*with_dens=*/false);
  const auto b = random_rational_vector(n, prng, /*with_dens=*/false);

  CrtOptions opt;
  opt.keep_residues = true;
  CrtSolveResult ref;
  for (const unsigned workers : {1u, 2u, 8u}) {
    ScopedWorkers pin(workers);
    util::Prng solver_prng(7);
    auto res = core::crt_solve(q, a, b, solver_prng, opt);
    ASSERT_TRUE(res.ok) << res.status.message();
    ASSERT_FALSE(res.residues.empty());

    for (const auto& shard : res.residues) {
      // Standalone reduced solve: same prime, same seed, same options.
      const field::GFp f(shard.prime);
      matrix::Matrix<field::GFp> ap(n, n, 0);
      std::vector<std::uint64_t> bp(n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          ap.at(i, j) = a.at(i, j).num().mod_u64(shard.prime);
        }
        bp[i] = b[i].num().mod_u64(shard.prime);
      }
      util::Prng shard_prng(res.transcript_seed);
      auto standalone =
          core::kp_solve(f, ap, bp, shard_prng, core::shard_solver_options(opt));
      ASSERT_TRUE(standalone.ok);
      EXPECT_EQ(standalone.x, shard.x) << "prime " << shard.prime;
      EXPECT_EQ(standalone.det, shard.det);
    }

    if (workers == 1u) {
      ref = res;
    } else {
      // Full determinism across worker counts.
      EXPECT_EQ(res.primes, ref.primes);
      EXPECT_EQ(res.shards_used, ref.shards_used);
      EXPECT_EQ(res.early_terminated, ref.early_terminated);
      EXPECT_EQ(res.det, ref.det);
      ASSERT_EQ(res.x.size(), ref.x.size());
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(res.x[i], ref.x[i]);
      ASSERT_EQ(res.diags.size(), ref.diags.size());
      for (std::size_t i = 0; i < res.diags.size(); ++i) {
        EXPECT_EQ(res.diags[i].kind, ref.diags[i].kind);
        EXPECT_EQ(res.diags[i].shard_modulus, ref.diags[i].shard_modulus);
        EXPECT_EQ(res.diags[i].shard_prime_index,
                  ref.diags[i].shard_prime_index);
      }
      ASSERT_EQ(res.residues.size(), ref.residues.size());
      for (std::size_t i = 0; i < res.residues.size(); ++i) {
        EXPECT_EQ(res.residues[i].prime, ref.residues[i].prime);
        EXPECT_EQ(res.residues[i].x, ref.residues[i].x);
        EXPECT_EQ(res.residues[i].det, ref.residues[i].det);
      }
    }
  }
}

TEST(CrtShardScheduler, ShardWorkersKnobPreservesResults) {
  util::Prng prng(37);
  const std::size_t n = 6;
  const auto a = nonsingular_rational(n, prng);
  const auto b = random_rational_vector(n, prng);

  util::Prng p1(7), p2(7);
  CrtOptions outer;  // parallel-outer (default)
  CrtOptions inner;
  inner.shard_workers = 2;  // serial-outer, 2-worker-inner
  auto r1 = core::crt_solve(q, a, b, p1, outer);
  auto r2 = core::crt_solve(q, a, b, p2, inner);
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(r1.primes, r2.primes);
  ASSERT_EQ(r1.x.size(), r2.x.size());
  for (std::size_t i = 0; i < r1.x.size(); ++i) EXPECT_EQ(r1.x[i], r2.x[i]);
  EXPECT_EQ(r1.det, r2.det);
}

TEST(CrtShardScheduler, FaultInjectionShardSiteRetriesPrime) {
  KP_REQUIRE_FAULT_INJECTION();
  ScopedWorkers pin(1);  // shard sites run on pool workers; pin for determinism
  util::Prng prng(38);
  const std::size_t n = 4;
  const auto a = nonsingular_rational(n, prng);
  const auto b = random_rational_vector(n, prng);
  const auto direct = matrix::solve_gauss(q, a, b);
  util::fault::ScopedFault fi(Stage::kCrtShard);
  util::Prng solver_prng(7);
  auto res = core::crt_solve(q, a, b, solver_prng);
  EXPECT_EQ(fi.fired(), 1u);
  ASSERT_TRUE(res.ok) << res.status.message();
  int injected = 0;
  for (const auto& d : res.diags) {
    if (d.injected) {
      ++injected;
      EXPECT_EQ(d.kind, FailureKind::kBadPrime);
      EXPECT_EQ(d.stage, Stage::kCrtShard);
    }
  }
  EXPECT_EQ(injected, 1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(res.x[i], (*direct)[i]);
}

TEST(CrtShardScheduler, FaultInjectionReconstructionSiteDelaysTermination) {
  KP_REQUIRE_FAULT_INJECTION();
  ScopedWorkers pin(1);
  util::Prng prng(39);
  const std::size_t n = 8;
  const auto a = nonsingular_rational(n, prng, /*with_dens=*/false);
  std::vector<Rational> x_true(n, q.one());
  std::vector<Rational> b(n, q.zero());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] = b[i] + a.at(i, j) * x_true[j];
  }
  CrtOptions opt;
  opt.batch_size = 2;

  util::Prng p_ref(7);
  auto ref = core::crt_solve(q, a, b, p_ref, opt);
  ASSERT_TRUE(ref.ok);

  util::fault::ScopedFault fi(Stage::kRationalReconstruction);
  util::Prng p_fi(7);
  auto res = core::crt_solve(q, a, b, p_fi, opt);
  EXPECT_EQ(fi.fired(), 1u);
  ASSERT_TRUE(res.ok) << res.status.message();
  // Termination was pushed back (>= one more batch), the answer unchanged.
  EXPECT_GE(res.batches, ref.batches);
  bool delayed = false;
  for (const auto& d : res.diags) {
    if (d.injected && d.stage == Stage::kRationalReconstruction) delayed = true;
  }
  EXPECT_TRUE(delayed);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(res.x[i], ref.x[i]);
}

}  // namespace
}  // namespace kp

# Empty compiler generated dependencies file for kp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libkp.a"
)

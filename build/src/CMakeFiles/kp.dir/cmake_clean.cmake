file(REMOVE_RECURSE
  "CMakeFiles/kp.dir/circuit/circuit.cpp.o"
  "CMakeFiles/kp.dir/circuit/circuit.cpp.o.d"
  "CMakeFiles/kp.dir/field/bigint.cpp.o"
  "CMakeFiles/kp.dir/field/bigint.cpp.o.d"
  "CMakeFiles/kp.dir/util/tables.cpp.o"
  "CMakeFiles/kp.dir/util/tables.cpp.o.d"
  "libkp.a"
  "libkp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

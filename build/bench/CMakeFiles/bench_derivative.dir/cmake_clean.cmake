file(REMOVE_RECURSE
  "CMakeFiles/bench_derivative.dir/bench_derivative.cpp.o"
  "CMakeFiles/bench_derivative.dir/bench_derivative.cpp.o.d"
  "bench_derivative"
  "bench_derivative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_derivative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_derivative.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_sylvester.
# This may be replaced when dependencies are built.

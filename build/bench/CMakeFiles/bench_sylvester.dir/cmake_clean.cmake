file(REMOVE_RECURSE
  "CMakeFiles/bench_sylvester.dir/bench_sylvester.cpp.o"
  "CMakeFiles/bench_sylvester.dir/bench_sylvester.cpp.o.d"
  "bench_sylvester"
  "bench_sylvester.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sylvester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

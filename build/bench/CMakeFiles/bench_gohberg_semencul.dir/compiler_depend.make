# Empty compiler generated dependencies file for bench_gohberg_semencul.
# This may be replaced when dependencies are built.

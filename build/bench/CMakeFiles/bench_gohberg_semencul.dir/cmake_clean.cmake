file(REMOVE_RECURSE
  "CMakeFiles/bench_gohberg_semencul.dir/bench_gohberg_semencul.cpp.o"
  "CMakeFiles/bench_gohberg_semencul.dir/bench_gohberg_semencul.cpp.o.d"
  "bench_gohberg_semencul"
  "bench_gohberg_semencul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gohberg_semencul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_wiedemann.dir/bench_wiedemann.cpp.o"
  "CMakeFiles/bench_wiedemann.dir/bench_wiedemann.cpp.o.d"
  "bench_wiedemann"
  "bench_wiedemann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wiedemann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_wiedemann.
# This may be replaced when dependencies are built.

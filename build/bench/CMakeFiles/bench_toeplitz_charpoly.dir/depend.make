# Empty dependencies file for bench_toeplitz_charpoly.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_toeplitz_charpoly.dir/bench_toeplitz_charpoly.cpp.o"
  "CMakeFiles/bench_toeplitz_charpoly.dir/bench_toeplitz_charpoly.cpp.o.d"
  "bench_toeplitz_charpoly"
  "bench_toeplitz_charpoly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_toeplitz_charpoly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

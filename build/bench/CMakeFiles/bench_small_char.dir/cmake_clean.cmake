file(REMOVE_RECURSE
  "CMakeFiles/bench_small_char.dir/bench_small_char.cpp.o"
  "CMakeFiles/bench_small_char.dir/bench_small_char.cpp.o.d"
  "bench_small_char"
  "bench_small_char.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_small_char.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_small_char.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_inverse.dir/bench_inverse.cpp.o"
  "CMakeFiles/bench_inverse.dir/bench_inverse.cpp.o.d"
  "bench_inverse"
  "bench_inverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

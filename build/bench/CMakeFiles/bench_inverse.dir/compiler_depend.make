# Empty compiler generated dependencies file for bench_inverse.
# This may be replaced when dependencies are built.

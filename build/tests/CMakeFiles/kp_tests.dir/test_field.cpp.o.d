tests/CMakeFiles/kp_tests.dir/test_field.cpp.o: \
 /root/repo/tests/test_field.cpp /usr/include/stdc-predef.h \
 /root/miniconda/include/gtest/gtest.h /usr/include/c++/12/cstdint \
 /usr/include/c++/12/string /usr/include/c++/12/vector \
 /root/repo/src/field/bigint.h /root/repo/src/field/concepts.h \
 /usr/include/c++/12/concepts /root/repo/src/util/prng.h \
 /usr/include/c++/12/limits /root/repo/src/field/gfpk.h \
 /usr/include/c++/12/cassert \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/assert.h /usr/include/features.h \
 /root/repo/src/field/primes.h /usr/include/c++/12/algorithm \
 /usr/include/c++/12/bits/stl_algobase.h \
 /usr/include/c++/12/bits/stl_algo.h \
 /usr/include/c++/12/bits/ranges_algo.h \
 /usr/include/c++/12/bits/ranges_algobase.h \
 /usr/include/c++/12/bits/ranges_util.h \
 /usr/include/c++/12/bits/ranges_base.h \
 /usr/include/c++/12/bits/utility.h \
 /usr/include/c++/12/bits/uniform_int_dist.h \
 /usr/include/c++/12/pstl/glue_algorithm_defs.h \
 /usr/include/c++/12/bits/stl_pair.h \
 /usr/include/c++/12/pstl/execution_defs.h /usr/include/c++/12/numeric \
 /usr/include/c++/12/bits/stl_iterator_base_types.h \
 /usr/include/c++/12/bits/stl_numeric.h \
 /usr/include/c++/12/bits/concept_check.h \
 /usr/include/c++/12/debug/debug.h /usr/include/c++/12/bits/move.h \
 /usr/include/c++/12/type_traits /usr/include/c++/12/bit \
 /usr/include/c++/12/ext/numeric_traits.h \
 /usr/include/c++/12/bits/stl_function.h \
 /usr/include/c++/12/pstl/glue_numeric_defs.h /root/repo/src/field/zp.h \
 /usr/include/c++/12/utility /root/repo/src/util/op_count.h \
 /root/repo/src/field/rational.h

file(REMOVE_RECURSE
  "CMakeFiles/kp_tests.dir/cmake_pch.hxx.gch"
  "CMakeFiles/kp_tests.dir/cmake_pch.hxx.gch.d"
  "CMakeFiles/kp_tests.dir/test_circuit.cpp.o"
  "CMakeFiles/kp_tests.dir/test_circuit.cpp.o.d"
  "CMakeFiles/kp_tests.dir/test_core.cpp.o"
  "CMakeFiles/kp_tests.dir/test_core.cpp.o.d"
  "CMakeFiles/kp_tests.dir/test_field.cpp.o"
  "CMakeFiles/kp_tests.dir/test_field.cpp.o.d"
  "CMakeFiles/kp_tests.dir/test_matrix.cpp.o"
  "CMakeFiles/kp_tests.dir/test_matrix.cpp.o.d"
  "CMakeFiles/kp_tests.dir/test_poly.cpp.o"
  "CMakeFiles/kp_tests.dir/test_poly.cpp.o.d"
  "CMakeFiles/kp_tests.dir/test_pram.cpp.o"
  "CMakeFiles/kp_tests.dir/test_pram.cpp.o.d"
  "CMakeFiles/kp_tests.dir/test_properties.cpp.o"
  "CMakeFiles/kp_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/kp_tests.dir/test_seq.cpp.o"
  "CMakeFiles/kp_tests.dir/test_seq.cpp.o.d"
  "CMakeFiles/kp_tests.dir/test_sylvester.cpp.o"
  "CMakeFiles/kp_tests.dir/test_sylvester.cpp.o.d"
  "kp_tests"
  "kp_tests.pdb"
  "kp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

tests/CMakeFiles/kp_tests.dir/test_properties.cpp.o: \
 /root/repo/tests/test_properties.cpp /usr/include/stdc-predef.h \
 /root/miniconda/include/gtest/gtest.h /usr/include/c++/12/cstdint \
 /usr/include/c++/12/tuple /usr/include/c++/12/vector \
 /root/repo/src/core/baselines.h /usr/include/c++/12/cassert \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/assert.h /usr/include/features.h \
 /root/repo/src/field/concepts.h /usr/include/c++/12/concepts \
 /usr/include/c++/12/string /root/repo/src/util/prng.h \
 /usr/include/c++/12/limits /root/repo/src/matrix/dense.h \
 /root/repo/src/matrix/matmul.h /usr/include/c++/12/cstddef \
 /root/repo/src/poly/poly.h /root/repo/src/poly/ntt.h \
 /usr/include/c++/12/unordered_map /root/repo/src/field/primes.h \
 /usr/include/c++/12/algorithm /usr/include/c++/12/bits/stl_algobase.h \
 /usr/include/c++/12/bits/stl_algo.h \
 /usr/include/c++/12/bits/ranges_algo.h \
 /usr/include/c++/12/bits/ranges_algobase.h \
 /usr/include/c++/12/bits/ranges_util.h \
 /usr/include/c++/12/bits/ranges_base.h \
 /usr/include/c++/12/bits/utility.h \
 /usr/include/c++/12/bits/uniform_int_dist.h \
 /usr/include/c++/12/pstl/glue_algorithm_defs.h \
 /usr/include/c++/12/bits/stl_pair.h \
 /usr/include/c++/12/pstl/execution_defs.h /usr/include/c++/12/numeric \
 /usr/include/c++/12/bits/stl_iterator_base_types.h \
 /usr/include/c++/12/bits/stl_numeric.h \
 /usr/include/c++/12/bits/concept_check.h \
 /usr/include/c++/12/debug/debug.h /usr/include/c++/12/bits/move.h \
 /usr/include/c++/12/type_traits /usr/include/c++/12/bit \
 /usr/include/c++/12/ext/numeric_traits.h \
 /usr/include/c++/12/bits/stl_function.h \
 /usr/include/c++/12/pstl/glue_numeric_defs.h /root/repo/src/field/zp.h \
 /usr/include/c++/12/utility /root/repo/src/util/op_count.h \
 /root/repo/src/poly/poly_ring.h /root/repo/src/poly/series.h \
 /root/repo/src/poly/interp.h /root/repo/src/poly/trunc_series.h \
 /root/repo/src/poly/gfpk_ntt.h /root/repo/src/field/gfpk.h \
 /root/repo/src/seq/newton_identities.h /root/repo/src/core/extensions.h \
 /usr/include/c++/12/optional /root/repo/src/core/solver.h \
 /root/repo/src/core/annihilator.h /root/repo/src/matrix/blackbox.h \
 /usr/include/c++/12/memory /root/repo/src/matrix/sparse.h \
 /root/repo/src/matrix/structured.h /root/repo/src/core/krylov.h \
 /root/repo/src/core/preconditioners.h \
 /root/repo/src/seq/newton_toeplitz.h \
 /root/repo/src/seq/gohberg_semencul.h /root/repo/src/matrix/gauss.h \
 /root/repo/src/core/wiedemann.h /root/repo/src/seq/berlekamp_massey.h

# Empty dependencies file for kp_tests.
# This may be replaced when dependencies are built.

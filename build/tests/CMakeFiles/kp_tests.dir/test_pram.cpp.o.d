tests/CMakeFiles/kp_tests.dir/test_pram.cpp.o: \
 /root/repo/tests/test_pram.cpp /usr/include/stdc-predef.h \
 /root/miniconda/include/gtest/gtest.h /usr/include/c++/12/atomic \
 /usr/include/c++/12/numeric \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/c++/12/bits/stl_iterator_base_types.h \
 /usr/include/c++/12/bits/stl_numeric.h \
 /usr/include/c++/12/bits/concept_check.h \
 /usr/include/c++/12/debug/debug.h /usr/include/c++/12/bits/move.h \
 /usr/include/c++/12/type_traits /usr/include/c++/12/bit \
 /usr/include/c++/12/ext/numeric_traits.h \
 /usr/include/c++/12/bits/stl_function.h /usr/include/c++/12/limits \
 /usr/include/c++/12/pstl/glue_numeric_defs.h \
 /usr/include/c++/12/pstl/execution_defs.h /usr/include/c++/12/vector \
 /root/repo/src/field/zp.h /usr/include/c++/12/cassert \
 /usr/include/assert.h /usr/include/features.h \
 /usr/include/c++/12/cstdint /usr/include/c++/12/string \
 /usr/include/c++/12/utility /root/repo/src/field/concepts.h \
 /usr/include/c++/12/concepts /root/repo/src/util/prng.h \
 /root/repo/src/util/op_count.h /root/repo/src/matrix/dense.h \
 /root/repo/src/matrix/gauss.h /usr/include/c++/12/optional \
 /root/repo/src/pram/parallel_for.h /usr/include/c++/12/cstddef \
 /usr/include/c++/12/functional /usr/include/c++/12/thread \
 /usr/include/c++/12/compare /usr/include/c++/12/stop_token \
 /usr/include/c++/12/bits/std_thread.h /usr/include/c++/12/iosfwd \
 /usr/include/c++/12/tuple /usr/include/c++/12/bits/functional_hash.h \
 /usr/include/c++/12/bits/invoke.h /usr/include/c++/12/bits/refwrap.h \
 /usr/include/c++/12/bits/unique_ptr.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/gthr.h \
 /usr/include/c++/12/semaphore /usr/include/c++/12/bits/semaphore_base.h \
 /usr/include/c++/12/bits/atomic_base.h /usr/include/c++/12/bits/chrono.h \
 /usr/include/c++/12/ratio /usr/include/c++/12/ctime /usr/include/time.h \
 /usr/include/c++/12/bits/parse_numbers.h \
 /usr/include/c++/12/bits/atomic_timed_wait.h \
 /usr/include/c++/12/bits/atomic_wait.h \
 /usr/include/c++/12/bits/this_thread_sleep.h /usr/include/c++/12/cerrno \
 /usr/include/errno.h /usr/include/x86_64-linux-gnu/sys/time.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/types/time_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_timeval.h \
 /usr/include/x86_64-linux-gnu/sys/select.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/limits.h \
 /usr/include/semaphore.h /usr/include/x86_64-linux-gnu/sys/types.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_timespec.h \
 /usr/include/x86_64-linux-gnu/bits/semaphore.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /root/repo/src/pram/work_depth.h /usr/include/c++/12/algorithm \
 /usr/include/c++/12/bits/stl_algobase.h \
 /usr/include/c++/12/bits/stl_algo.h \
 /usr/include/c++/12/bits/ranges_algo.h \
 /usr/include/c++/12/bits/ranges_algobase.h \
 /usr/include/c++/12/bits/ranges_util.h \
 /usr/include/c++/12/bits/ranges_base.h \
 /usr/include/c++/12/bits/utility.h \
 /usr/include/c++/12/bits/uniform_int_dist.h \
 /usr/include/c++/12/pstl/glue_algorithm_defs.h \
 /usr/include/c++/12/bits/stl_pair.h

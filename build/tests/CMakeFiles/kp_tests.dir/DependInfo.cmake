
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build/tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx.cxx" "tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx.gch" "gcc" "tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx.gch.d"
  "/root/repo/build/tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx.gch" "gcc" "tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx.gch.d"
  "/root/repo/tests/test_circuit.cpp" "tests/CMakeFiles/kp_tests.dir/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_circuit.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/kp_tests.dir/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_circuit.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/kp_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_core.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/kp_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_field.cpp" "tests/CMakeFiles/kp_tests.dir/test_field.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_field.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/kp_tests.dir/test_field.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_field.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/kp_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/kp_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_poly.cpp" "tests/CMakeFiles/kp_tests.dir/test_poly.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_poly.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/kp_tests.dir/test_poly.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_poly.cpp.o.d"
  "/root/repo/tests/test_pram.cpp" "tests/CMakeFiles/kp_tests.dir/test_pram.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_pram.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/kp_tests.dir/test_pram.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_pram.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/kp_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_properties.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/kp_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_seq.cpp" "tests/CMakeFiles/kp_tests.dir/test_seq.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_seq.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/kp_tests.dir/test_seq.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_seq.cpp.o.d"
  "/root/repo/tests/test_sylvester.cpp" "tests/CMakeFiles/kp_tests.dir/test_sylvester.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_sylvester.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/kp_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/kp_tests.dir/test_sylvester.cpp.o" "gcc" "tests/CMakeFiles/kp_tests.dir/test_sylvester.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/spanning_trees.dir/spanning_trees.cpp.o"
  "CMakeFiles/spanning_trees.dir/spanning_trees.cpp.o.d"
  "spanning_trees"
  "spanning_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spanning_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

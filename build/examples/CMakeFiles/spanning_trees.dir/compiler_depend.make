# Empty compiler generated dependencies file for spanning_trees.
# This may be replaced when dependencies are built.

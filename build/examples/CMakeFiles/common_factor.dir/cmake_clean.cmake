file(REMOVE_RECURSE
  "CMakeFiles/common_factor.dir/common_factor.cpp.o"
  "CMakeFiles/common_factor.dir/common_factor.cpp.o.d"
  "common_factor"
  "common_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for common_factor.
# This may be replaced when dependencies are built.

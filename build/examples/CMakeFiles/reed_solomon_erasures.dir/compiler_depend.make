# Empty compiler generated dependencies file for reed_solomon_erasures.
# This may be replaced when dependencies are built.

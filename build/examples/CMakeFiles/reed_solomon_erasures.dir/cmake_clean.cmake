file(REMOVE_RECURSE
  "CMakeFiles/reed_solomon_erasures.dir/reed_solomon_erasures.cpp.o"
  "CMakeFiles/reed_solomon_erasures.dir/reed_solomon_erasures.cpp.o.d"
  "reed_solomon_erasures"
  "reed_solomon_erasures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reed_solomon_erasures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

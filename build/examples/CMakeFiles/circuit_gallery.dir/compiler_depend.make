# Empty compiler generated dependencies file for circuit_gallery.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/circuit_gallery.dir/circuit_gallery.cpp.o"
  "CMakeFiles/circuit_gallery.dir/circuit_gallery.cpp.o.d"
  "circuit_gallery"
  "circuit_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

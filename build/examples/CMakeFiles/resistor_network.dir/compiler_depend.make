# Empty compiler generated dependencies file for resistor_network.
# This may be replaced when dependencies are built.

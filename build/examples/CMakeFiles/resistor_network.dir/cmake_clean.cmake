file(REMOVE_RECURSE
  "CMakeFiles/resistor_network.dir/resistor_network.cpp.o"
  "CMakeFiles/resistor_network.dir/resistor_network.cpp.o.d"
  "resistor_network"
  "resistor_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resistor_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// solver_service_cli: a line-protocol front end for core/service.h.
//
// The service side of the repo in one interactive binary: register an
// operator once, stream right-hand sides at it, watch telemetry, trip the
// breaker.  Reads commands from stdin, one per line, answers on stdout:
//
//   session <n> <seed> [nnz]      register a random sparse n x n operator
//                                 (nnz entries per row, default 8) and
//                                 eagerly prepare its session
//                                   -> session <id> n=<n>
//   solve <id> random [seed]      solve against a random RHS
//   solve <id> <b0> <b1> ... <bn-1>
//                                 solve against an explicit RHS
//     either form accepts a trailing  deadline_ms=<d>
//                                   -> ok <id> level=<level> x0=<first entry>
//                                   -> fail <kind> at <stage>
//   telemetry on|off              per-request RequestTelemetry JSON lines
//   stats                         service counters so far
//   reset <id>                    close a quarantined session's breaker
//   quit                          shut the service down and exit
//
// Example session:
//   $ printf 'session 64 7\nsolve 1 random\nstats\nquit\n' \
//       | ./build/examples/solver_service_cli
//
// Everything runs over Z/p for a fixed 61-bit prime; the point is the
// service machinery (admission, coalescing, deadlines, degradation), not
// the field.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/service.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/sparse.h"
#include "util/prng.h"

namespace {

using F = kp::field::GFp;
using kp::core::ServiceConfig;
using kp::core::SolverService;

}  // namespace

int main() {
  F f((1ULL << 61) - 1);
  ServiceConfig cfg;
  cfg.dispatchers = 1;
  cfg.queue_capacity = 256;
  SolverService<F> svc(f, cfg);

  // Remember each session's dimension so RHS lines can be validated before
  // they hit the queue.
  std::vector<std::pair<std::uint64_t, std::size_t>> dims;
  const auto dim_of = [&](std::uint64_t id) -> std::size_t {
    for (const auto& [sid, n] : dims) {
      if (sid == id) return n;
    }
    return 0;
  };

  bool telemetry = false;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') continue;

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "telemetry") {
      std::string mode;
      in >> mode;
      telemetry = (mode == "on");
      std::printf("telemetry %s\n", telemetry ? "on" : "off");
      continue;
    }

    if (cmd == "session") {
      std::size_t n = 0;
      std::uint64_t seed = 1;
      std::size_t nnz = 8;
      in >> n >> seed >> nnz;
      if (n == 0) {
        std::printf("error: usage: session <n> <seed> [nnz]\n");
        continue;
      }
      kp::util::Prng prng(seed);
      auto sp = kp::matrix::Sparse<F>::random(f, n, nnz, prng);
      auto sid = svc.register_operator(
          kp::matrix::AnyBox<F>(kp::matrix::SparseBox<F>(f, std::move(sp))),
          seed);
      if (!sid.ok()) {
        std::printf("error: %s\n", sid.status().message().c_str());
        continue;
      }
      dims.emplace_back(sid.value(), n);
      std::printf("session %llu n=%zu\n",
                  static_cast<unsigned long long>(sid.value()), n);
      continue;
    }

    if (cmd == "reset") {
      std::uint64_t id = 0;
      in >> id;
      std::printf(svc.reset_session(id) ? "reset %llu\n"
                                        : "error: unknown session %llu\n",
                  static_cast<unsigned long long>(id));
      continue;
    }

    if (cmd == "stats") {
      const auto s = svc.stats();
      std::printf(
          "stats submitted=%llu ok=%llu failed=%llu overflow=%llu "
          "deadline=%llu cancelled=%llu quarantined=%llu batches=%llu "
          "coalesced=%llu degraded_single=%llu degraded_dense=%llu\n",
          static_cast<unsigned long long>(s.submitted),
          static_cast<unsigned long long>(s.completed_ok),
          static_cast<unsigned long long>(s.failed),
          static_cast<unsigned long long>(s.rejected_overflow),
          static_cast<unsigned long long>(s.deadline_expired),
          static_cast<unsigned long long>(s.cancelled),
          static_cast<unsigned long long>(s.quarantine_rejections),
          static_cast<unsigned long long>(s.batches),
          static_cast<unsigned long long>(s.coalesced_requests),
          static_cast<unsigned long long>(s.degraded_single),
          static_cast<unsigned long long>(s.degraded_dense));
      continue;
    }

    if (cmd == "solve") {
      std::uint64_t id = 0;
      in >> id;
      const std::size_t n = dim_of(id);
      if (n == 0) {
        std::printf("error: unknown session %llu\n",
                    static_cast<unsigned long long>(id));
        continue;
      }
      std::vector<F::Element> b;
      kp::util::Deadline deadline;
      std::string tok;
      while (in >> tok) {
        if (tok.rfind("deadline_ms=", 0) == 0) {
          const long ms = std::strtol(tok.c_str() + 12, nullptr, 10);
          deadline = kp::util::Deadline::after(std::chrono::milliseconds(ms));
        } else if (tok == "random") {
          std::uint64_t seed = 99;
          in >> seed;
          kp::util::Prng prng(seed);
          b.resize(n);
          for (auto& e : b) e = f.random(prng);
        } else {
          b.push_back(f.from_int(static_cast<std::int64_t>(
              std::strtoll(tok.c_str(), nullptr, 10))));
        }
      }
      if (b.size() != n) {
        std::printf("error: need %zu RHS entries, got %zu\n", n, b.size());
        continue;
      }
      auto res = svc.submit(id, std::move(b), deadline).get();
      if (telemetry) std::printf("%s\n", res.telemetry.to_json().c_str());
      if (res.status.ok()) {
        std::printf("ok %llu level=%s x0=%s\n",
                    static_cast<unsigned long long>(id),
                    kp::core::to_string(res.telemetry.level),
                    f.to_string(res.x[0]).c_str());
      } else {
        std::printf("fail %s\n", res.status.message().c_str());
      }
      continue;
    }

    std::printf("error: unknown command '%s'\n", cmd.c_str());
  }

  svc.shutdown();
  return 0;
}

// Quickstart: solve a linear system, compute a determinant and an inverse
// over two different fields with the library's main entry points.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/solver.h"
#include "field/rational.h"
#include "field/zp.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "util/prng.h"

int main() {
  // ---------------------------------------------------------------- Z/pZ --
  using F = kp::field::Zp<1000003>;
  F f;
  kp::util::Prng prng(1);

  // A random 8x8 system over Z/1000003.
  const std::size_t n = 8;
  auto a = kp::matrix::random_matrix(f, n, n, prng);
  std::vector<F::Element> x_true(n);
  for (auto& e : x_true) e = f.random(prng);
  auto b = kp::matrix::mat_vec(f, a, x_true);

  // The Kaltofen-Pan Theorem-4 solver: randomized, Las Vegas (the result is
  // verified; res.ok == false means A was singular or the randomness was
  // unlucky max_attempts times, probability <= (3n^2/|S|)^attempts).
  auto res = kp::core::kp_solve(f, a, b, prng);
  std::printf("kp_solve over Z/1000003: ok=%d, attempts=%d\n", res.ok, res.attempts);
  std::printf("  solution matches: %s\n", res.x == x_true ? "yes" : "no");
  std::printf("  det(A) = %s (pipeline) = %s (elimination)\n",
              f.to_string(res.det).c_str(),
              f.to_string(kp::matrix::det_gauss(f, a)).c_str());

  // ------------------------------------------------------------------- Q --
  using kp::field::BigInt;
  using kp::field::Rational;
  kp::field::RationalField q;

  // The 3x3 Hilbert-like system, solved exactly.
  kp::matrix::Matrix<kp::field::RationalField> h(3, 3, q.zero());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      h.at(i, j) = Rational(BigInt(1), BigInt(static_cast<std::int64_t>(i + j + 1)));
    }
  }
  std::vector<Rational> rhs{Rational(1), Rational(0), Rational(0)};
  auto hres = kp::core::kp_solve(q, h, rhs, prng);
  std::printf("\nHilbert 3x3 over Q: ok=%d\n", hres.ok);
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("  x[%zu] = %s\n", i, hres.x[i].to_string().c_str());
  }
  std::printf("  det(H3) = %s (exact; known value 1/2160)\n",
              hres.det.to_string().c_str());
  return 0;
}

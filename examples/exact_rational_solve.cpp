// Exact rational solve through multi-prime CRT sharding.
//
// Solves a dense system over Q by K independent word-size residue solves
// (each the full SIMD GFp pipeline) stitched back together with CRT and
// Wang rational reconstruction -- early-terminating as soon as the answer
// stabilizes AND verifies exactly over Z.  Shows the knobs, the shard
// diagnostics, and the Hadamard-cap fallback to the generic route.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/exact_rational_solve
#include <cstdio>

#include "core/crt_shard.h"
#include "field/rational.h"
#include "matrix/dense.h"
#include "util/prng.h"

using kp::field::Rational;
using kp::field::RationalField;

int main() {
  RationalField q;
  kp::util::Prng prng(2024);

  // A 24x24 system with single-digit fractional entries and a known small
  // rational solution -- the regime where early termination shines: the
  // answer needs far fewer primes than the worst-case Hadamard bound.
  const std::size_t n = 24;
  kp::matrix::Matrix<RationalField> a(n, n, q.zero());
  std::vector<Rational> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto num = static_cast<std::int64_t>(prng.below(19)) - 9;
      const auto den = static_cast<std::int64_t>(1 + prng.below(4));
      a.at(i, j) = Rational(num, den);
    }
    a.at(i, i) = Rational(static_cast<std::int64_t>(10 * n), 1);
    x_true[i] = Rational(static_cast<std::int64_t>(prng.below(7)) - 3,
                         static_cast<std::int64_t>(1 + prng.below(3)));
  }
  std::vector<Rational> b(n, q.zero());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      b[i] = q.add(b[i], q.mul(a.at(i, j), x_true[j]));
    }
  }

  // kp_solve_adaptive on RationalField routes through the CRT engine
  // automatically; crt_solve exposes the tuning knobs.
  auto res = kp::core::kp_solve_adaptive(q, a, b, prng);
  std::printf("exact solve over Q: ok=%d\n", res.ok ? 1 : 0);
  std::printf("  answer exact: %s\n", res.x == x_true ? "yes" : "no");
  std::printf("  shards used: %zu of a Hadamard cap of %zu (%zu batches)\n",
              res.shards_used, res.hadamard_cap, res.batches);
  std::printf("  early terminated: %s   det certified: %s\n",
              res.early_terminated ? "yes" : "no",
              res.det_certified ? "yes" : "no");
  std::printf("  det(A) = %s\n", q.to_string(res.det).c_str());
  if (!res.primes.empty()) {
    std::printf("  first shard prime: %llu\n",
                static_cast<unsigned long long>(res.primes.front()));
  }

  // Every shard left a Diag: which prime, which index, which transcript.
  std::printf("  per-shard diagnostics: %zu records, transcript seed %llu\n",
              res.diags.size(),
              static_cast<unsigned long long>(res.transcript_seed));

  // Force the Hadamard-cap fallback: allow at most one shard and the
  // engine refuses to start, running the generic fraction-arithmetic
  // route instead -- same exact answer, no sharding.
  kp::core::CrtOptions tight;
  tight.max_shards = 1;
  kp::util::Prng prng2(2024);
  auto generic = kp::core::crt_solve(q, a, b, prng2, tight);
  std::printf("capped at 1 shard: used_generic=%d, answer exact: %s\n",
              generic.used_generic ? 1 : 0,
              generic.x == x_true ? "yes" : "no");
  return 0;
}

// Reed-Solomon erasure recovery as structured linear algebra.
//
// An [n, k] Reed-Solomon codeword is the evaluation of a degree < k message
// polynomial at n points.  Recovering the message from any k surviving
// evaluations IS solving a k x k Vandermonde system -- which this library
// offers three ways:
//   1. interpolation (the structured fast path; cf. the section-4 remark
//      that transposed Vandermonde solving = interpolation),
//   2. Wiedemann's black-box solver on the Vandermonde operator,
//   3. the Theorem-4 randomized dense solver.
// All three must agree, over a word-sized prime field GF(p).
#include <cstdio>
#include <string>
#include <vector>

#include "core/solver.h"
#include "core/wiedemann.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/structured.h"
#include "poly/poly.h"
#include "util/prng.h"

using F = kp::field::Zp<65537>;  // GF(2^16 + 1): the classic FFT prime

int main() {
  F f;
  kp::util::Prng prng(1234);
  kp::poly::PolyRing<F> ring(f);

  const std::size_t k = 11;  // message symbols
  const std::size_t n = 16;  // codeword symbols

  // Message: "KALTOFEN-P="... any k field symbols.
  const std::string text = "KALTOFEN&PAN91!";
  std::vector<F::Element> message(k);
  for (std::size_t i = 0; i < k; ++i) {
    message[i] = static_cast<F::Element>(text[i % text.size()]);
  }

  // Encode: evaluate at alpha_i = i + 1.
  std::vector<F::Element> points(n);
  for (std::size_t i = 0; i < n; ++i) points[i] = static_cast<F::Element>(i + 1);
  kp::matrix::Vandermonde<F> encoder(points, k);
  auto codeword = encoder.apply(f, message);
  std::printf("encoded %zu message symbols into %zu codeword symbols\n", k, n);

  // Erase n-k random positions.
  std::vector<bool> erased(n, false);
  for (std::size_t erasures = 0; erasures < n - k;) {
    const std::size_t pos = prng.below(n);
    if (!erased[pos]) {
      erased[pos] = true;
      ++erasures;
    }
  }
  std::vector<F::Element> surv_points, surv_values;
  for (std::size_t i = 0; i < n; ++i) {
    if (!erased[i]) {
      surv_points.push_back(points[i]);
      surv_values.push_back(codeword[i]);
    }
  }
  std::printf("erased %zu symbols; recovering from the surviving %zu\n", n - k,
              surv_points.size());

  // --- Route 1: interpolation (structured fast path). ----------------------
  kp::matrix::Vandermonde<F> survivor(surv_points, k);
  auto decoded1 = survivor.solve(ring, surv_values);

  // --- Route 2: Wiedemann black box on the survivor Vandermonde. -----------
  kp::matrix::DenseBox<F> box(f, survivor.to_dense(f));
  auto decoded2 = kp::core::wiedemann_solve(f, box, surv_values, prng, 1u << 16);

  // --- Route 3: the Theorem-4 randomized solver. ----------------------------
  auto decoded3 =
      kp::core::kp_solve(f, survivor.to_dense(f), surv_values, prng);

  const bool ok1 = decoded1 == message;
  const bool ok2 = decoded2 && *decoded2 == message;
  const bool ok3 = decoded3.ok && decoded3.x == message;
  std::printf("  interpolation route: %s\n", ok1 ? "recovered" : "FAILED");
  std::printf("  wiedemann route:     %s\n", ok2 ? "recovered" : "FAILED");
  std::printf("  kp (Theorem 4):      %s\n", ok3 ? "recovered" : "FAILED");

  std::string recovered;
  for (std::size_t i = 0; i < k; ++i) {
    recovered.push_back(static_cast<char>(decoded1[i]));
  }
  std::printf("  message: \"%s\"\n", recovered.c_str());
  return (ok1 && ok2 && ok3) ? 0 : 1;
}

// Blind common-factor recovery (polynomial GCD as signal processing).
//
// Two observed sequences are the convolutions of two unknown source signals
// with the SAME unknown channel:  y1 = h * x1,  y2 = h * x2.  As
// polynomials, y1 = h·x1 and y2 = h·x2, so the channel is (generically)
// exactly gcd(y1, y2) -- the classic blind channel identification trick.
// This example recovers h with the section-5 machinery: gcd degree from the
// randomized rank of the Sylvester matrix, the channel from one structured
// solve, all over an exact prime field.
#include <cstdio>
#include <string>
#include <vector>

#include "core/poly_gcd.h"
#include "field/zp.h"
#include "matrix/sylvester.h"
#include "poly/poly.h"
#include "util/prng.h"

using F = kp::field::Zp<1000003>;

int main() {
  F f;
  kp::util::Prng prng(77);
  kp::poly::PolyRing<F> ring(f);

  // The hidden channel: a degree-6 monic polynomial.
  auto channel = ring.random_degree(prng, 5);
  channel.resize(7, f.zero());
  channel[6] = f.one();

  // Two source signals of degree 10 and 13.
  auto x1 = ring.random_degree(prng, 10);
  auto x2 = ring.random_degree(prng, 13);

  // Observations.
  auto y1 = ring.mul(channel, x1);
  auto y2 = ring.mul(channel, x2);
  std::printf("observed two convolved signals of degrees %zu and %zu\n",
              y1.size() - 1, y2.size() - 1);

  // Step 1: channel length from the Sylvester rank (Monte Carlo).
  kp::matrix::Sylvester<F> s(ring, y1, y2);
  const std::size_t d = kp::core::gcd_degree_randomized(f, s, prng);
  std::printf("randomized Sylvester rank => channel degree %zu (true: %zu)\n",
              d, channel.size() - 1);

  // Step 2: the channel itself plus the Bezout cofactors, one solve.
  auto res = kp::core::gcd_with_cofactors_from_degree(ring, y1, y2, d);
  if (!res) {
    std::printf("degree estimate was unlucky; full pipeline retries:\n");
  }
  auto recovered = kp::core::gcd_via_linear_algebra(ring, y1, y2, prng);

  const bool match = ring.eq(recovered, channel);
  std::printf("recovered channel %s the hidden one\n",
              match ? "matches" : "DOES NOT match");

  // Step 3: deconvolve the sources back out and verify.
  auto x1_rec = ring.divmod(y1, recovered).first;
  auto x2_rec = ring.divmod(y2, recovered).first;
  std::printf("deconvolved sources match: %s, %s\n",
              ring.eq(x1_rec, x1) ? "yes" : "no",
              ring.eq(x2_rec, x2) ? "yes" : "no");

  if (res) {
    auto combo = ring.add(ring.mul(res->u, y1), ring.mul(res->v, y2));
    std::printf("Bezout certificate u*y1 + v*y2 = h verified: %s\n",
                ring.eq(combo, res->h) ? "yes" : "no");
  }
  return match ? 0 : 1;
}

// Exact nodal analysis of a resistor ladder over Q.
//
// The node-voltage equations of a resistive circuit are a linear system
// G v = i with G the (reduced) conductance Laplacian.  Solving it exactly
// over Q gives closed-form resistances; for the infinite unit-resistor
// ladder the input resistance converges to the golden-ratio value
// (1 + sqrt(5))/2 - 1/2... precisely: R = (1+sqrt(3)) for a different
// ladder; here we verify the classic finite-ladder recurrence
//   R_1 = 2,  R_{m+1} = 1 + R_m / (1 + R_m)      (series 1 + parallel(1, R_m))
// against the exact linear-algebra solution of the full network.
#include <cstdio>
#include <vector>

#include "core/solver.h"
#include "field/rational.h"
#include "matrix/dense.h"
#include "util/prng.h"

using kp::field::BigInt;
using kp::field::Rational;
using kp::field::RationalField;
using Mat = kp::matrix::Matrix<RationalField>;

int main() {
  RationalField q;
  kp::util::Prng prng(99);

  std::printf("Exact resistor-ladder analysis over Q (unit resistors)\n\n");
  std::printf("ladder with m sections: R_in from nodal analysis vs recurrence\n");

  for (std::size_t m : {1u, 2u, 4u, 8u, 12u}) {
    // Nodes: 0 (input), 1..m (ladder joints); ground is eliminated.
    // Section j: series resistor between node j-1 and node j, plus a shunt
    // resistor from node j to ground.  Unit conductances.
    const std::size_t n = m + 1;
    Mat g(n, n, q.zero());
    auto add_edge = [&](std::size_t a, std::size_t b) {
      // Conductance 1 between nodes a and b (b = SIZE_MAX means ground).
      g.at(a, a) = q.add(g.at(a, a), q.one());
      if (b != static_cast<std::size_t>(-1)) {
        g.at(b, b) = q.add(g.at(b, b), q.one());
        g.at(a, b) = q.sub(g.at(a, b), q.one());
        g.at(b, a) = q.sub(g.at(b, a), q.one());
      }
    };
    for (std::size_t j = 1; j <= m; ++j) {
      add_edge(j - 1, j);                          // series resistor
      add_edge(j, static_cast<std::size_t>(-1));   // shunt to ground
    }

    // Inject 1 A into node 0; v_0 is then the input resistance.
    std::vector<Rational> current(n, q.zero());
    current[0] = q.one();
    auto res = kp::core::kp_solve(q, g, current, prng);

    // Reference recurrence evaluated exactly.
    Rational r(2);
    for (std::size_t j = 1; j < m; ++j) {
      r = q.add(q.one(), q.div(r, q.add(q.one(), r)));
    }

    const bool match = res.ok && q.eq(res.x[0], r);
    std::printf("  m=%-2zu  R_in = %-22s recurrence = %-22s %s\n", m,
                res.ok ? res.x[0].to_string().c_str() : "?",
                r.to_string().c_str(), match ? "[ok]" : "[MISMATCH]");
  }

  // Fixed point of the recurrence: R = 1 + R/(1+R)  =>  R^2 = R + 1,
  // i.e. the golden ratio.
  Rational r(2);
  for (int j = 1; j < 24; ++j) r = q.add(q.one(), q.div(r, q.add(q.one(), r)));
  std::printf("\nThe exact values converge to the golden ratio phi = (1+sqrt 5)/2:\n");
  std::printf("  phi ~ 1.6180339887...; the 24-section ladder gives %s ~ %.10f\n",
              r.to_string().c_str(), r.to_double());
  return 0;
}

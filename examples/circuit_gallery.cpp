// Circuit gallery: the paper's objects made concrete.
//
// Builds the Theorem-4 solver circuit, the Theorem-6 inverse circuit, and
// the section-4 transposed-solver circuit for a small n; prints each DAG's
// instrumented stats (size / depth / randomness) side by side with its
// compiled-tape stats (instructions after dead-code elimination, levels,
// register slots, pooled constants); evaluates through the compiled tape
// with node-at-a-time evaluation as the checked reference -- including a
// deliberately unlucky evaluation showing the division-by-zero failure
// event the theorems bound -- and finishes by saving the Theorem-6 inverse
// tape with an embedded self-check vector, reloading it, and verifying it
// with ensure().
#include <cstdio>
#include <string>
#include <vector>

#include "circuit/builders.h"
#include "circuit/tape.h"
#include "circuit/tape_eval.h"
#include "circuit/tape_io.h"
#include "field/zp.h"
#include "matrix/gauss.h"
#include "util/prng.h"

using F = kp::field::GFp;

int main() {
  F f(kp::field::kNttPrime);
  kp::util::Prng prng(5);
  const std::size_t n = 4;

  auto solver = kp::circuit::build_solver_circuit(n, kp::field::kNttPrime);
  auto inverse = kp::circuit::build_inverse_circuit(n, kp::field::kNttPrime);
  auto transposed =
      kp::circuit::build_transposed_solver_circuit(n, kp::field::kNttPrime);

  std::printf("randomized algebraic circuits for n = %zu:\n\n", n);
  auto describe = [](const char* name, const kp::circuit::Circuit& c) {
    const kp::circuit::Tape t = kp::circuit::compile(c);
    std::printf(
        "  %-22s size=%-8zu depth=%-5u inputs=%-4zu outputs=%-4zu randoms=%zu\n",
        name, c.size(), c.depth(), c.num_inputs(), c.num_outputs(),
        c.num_randoms());
    std::printf(
        "  %-22s instrs=%-6zu levels=%-5zu regs=%-6u constants pooled=%zu\n",
        "    -> compiled tape", t.num_instrs(), t.num_levels(), t.num_regs,
        t.constants.size());
    return t;
  };
  auto solver_tape = describe("solver (Thm 4)", solver);
  auto inverse_tape = describe("inverse (Thm 6)", inverse);
  describe("transposed (sec. 4)", transposed);

  // A sample system.
  auto a = kp::matrix::random_matrix(f, n, n, prng);
  std::vector<F::Element> x(n);
  for (auto& e : x) e = f.random(prng);
  auto b = kp::matrix::mat_vec(f, a, x);
  std::vector<F::Element> in(a.data().begin(), a.data().end());
  in.insert(in.end(), b.begin(), b.end());

  // Lucky evaluation, through the compiled tape (B = 1 lane), with
  // node-at-a-time evaluation as the checked reference.
  std::vector<F::Element> rnd(solver.num_randoms());
  for (auto& e : rnd) e = f.sample(prng, 1u << 30);
  const kp::circuit::TapeEvaluator<F> ev(f, solver_tape);
  std::vector<std::vector<F::Element>> in_lanes, rnd_lanes;
  for (auto v : in) in_lanes.push_back({v});
  for (auto v : rnd) rnd_lanes.push_back({v});
  const auto res = ev.evaluate(in_lanes, rnd_lanes);
  const auto ref = solver.evaluate(f, in, rnd);
  std::printf("\ntape evaluation with |S| = 2^30 random leaves: %s\n",
              res.status.ok() ? "no zero-division"
                              : "zero-division (unlucky!)");
  if (res.status.ok()) {
    bool solves = true, matches = ref.ok;
    for (std::size_t i = 0; i < n; ++i) {
      solves = solves && res.outputs[i][0] == x[i];
      matches = matches && ref.outputs[i] == res.outputs[i][0];
    }
    std::printf("  solves the system: %s\n", solves ? "yes" : "no");
    std::printf("  matches node-at-a-time evaluate(): %s\n",
                matches ? "yes" : "NO (bug!)");
  }

  // Unlucky evaluation: all random leaves zero -> A-tilde = 0, certain
  // division by zero, exactly the failure event of Theorem 4.  The tape
  // reports the failing level and lane through the Status taxonomy.
  std::vector<std::vector<F::Element>> zero_lanes(solver.num_randoms(),
                                                  {f.zero()});
  const auto bad = ev.evaluate(in_lanes, zero_lanes);
  std::printf("evaluation with all-zero random leaves: %s\n",
              bad.status.ok() ? "UNEXPECTEDLY ok"
                              : bad.status.message().c_str());

  // Empirical failure rate at a tiny sample set vs the 3n^2/|S| bound.
  const std::uint64_t s = 64;
  int fails = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    for (auto& lane : rnd_lanes) lane[0] = f.sample(prng, s);
    if (!ev.evaluate(in_lanes, rnd_lanes).status.ok()) ++fails;
  }
  std::printf(
      "\nempirical failure rate with |S| = %llu: %.3f   (Theorem-4 bound: %.3f)\n",
      static_cast<unsigned long long>(s), static_cast<double>(fails) / trials,
      3.0 * static_cast<double>(n * n) / static_cast<double>(s));

  // The Theorem-6 inverse as a shippable artifact: embed a self-check
  // vector, save, reload, and verify.
  const std::string path = "inverse_thm6.kptape";
  if (const auto st = kp::circuit::add_test_vector(
          inverse_tape, kp::field::kNttPrime, prng);
      !st.ok()) {
    std::printf("\ncould not record self-check: %s\n", st.message().c_str());
    return 1;
  }
  if (const auto st = kp::circuit::save_tape(inverse_tape, path); !st.ok()) {
    std::printf("\ncould not save tape: %s\n", st.message().c_str());
    return 1;
  }
  const auto loaded = kp::circuit::load_tape(path);
  if (!loaded.ok()) {
    std::printf("\ncould not reload tape: %s\n",
                loaded.status().message().c_str());
    return 1;
  }
  const auto check = kp::circuit::ensure(loaded.value());
  std::printf(
      "\nsaved Theorem-6 inverse tape to %s (%zu instrs, %zu embedded "
      "self-checks); reload + ensure(): %s\n",
      path.c_str(), loaded.value().num_instrs(), loaded.value().tests.size(),
      check.message().c_str());
  std::remove(path.c_str());
  return check.ok() ? 0 : 1;
}

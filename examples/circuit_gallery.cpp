// Circuit gallery: the paper's objects made concrete.
//
// Builds the Theorem-4 solver circuit, the Theorem-6 inverse circuit, and
// the section-4 transposed-solver circuit for a small n, prints their
// size / depth / randomness, and evaluates them on a sample matrix --
// including a deliberately unlucky evaluation showing the division-by-zero
// failure event the theorems bound.
#include <cstdio>
#include <vector>

#include "circuit/builders.h"
#include "field/zp.h"
#include "matrix/gauss.h"
#include "util/prng.h"

using F = kp::field::GFp;

int main() {
  F f(kp::field::kNttPrime);
  kp::util::Prng prng(5);
  const std::size_t n = 4;

  auto solver = kp::circuit::build_solver_circuit(n, kp::field::kNttPrime);
  auto inverse = kp::circuit::build_inverse_circuit(n, kp::field::kNttPrime);
  auto transposed =
      kp::circuit::build_transposed_solver_circuit(n, kp::field::kNttPrime);

  std::printf("randomized algebraic circuits for n = %zu:\n\n", n);
  auto describe = [](const char* name, const kp::circuit::Circuit& c) {
    std::printf("  %-22s size=%-8zu depth=%-5u inputs=%-4zu outputs=%-4zu randoms=%zu\n",
                name, c.size(), c.depth(), c.num_inputs(), c.num_outputs(),
                c.num_randoms());
  };
  describe("solver (Thm 4)", solver);
  describe("inverse (Thm 6)", inverse);
  describe("transposed (sec. 4)", transposed);

  // A sample system.
  auto a = kp::matrix::random_matrix(f, n, n, prng);
  std::vector<F::Element> x(n);
  for (auto& e : x) e = f.random(prng);
  auto b = kp::matrix::mat_vec(f, a, x);
  std::vector<F::Element> in(a.data().begin(), a.data().end());
  in.insert(in.end(), b.begin(), b.end());

  // Lucky evaluation: random leaves from a large sample set.
  std::vector<F::Element> rnd(solver.num_randoms());
  for (auto& e : rnd) e = f.sample(prng, 1u << 30);
  auto res = solver.evaluate(f, in, rnd);
  std::printf("\nevaluation with |S| = 2^30 random leaves: %s\n",
              res.ok ? "no zero-division" : "zero-division (unlucky!)");
  if (res.ok) {
    std::printf("  solves the system: %s\n", res.outputs == x ? "yes" : "no");
  }

  // Unlucky evaluation: all random leaves zero -> A-tilde = 0, certain
  // division by zero, exactly the failure event of Theorem 4.
  std::vector<F::Element> zeros(solver.num_randoms(), f.zero());
  auto bad = solver.evaluate(f, in, zeros);
  std::printf("evaluation with all-zero random leaves: %s\n",
              bad.ok ? "UNEXPECTEDLY ok" : "zero-division, failure reported");

  // Empirical failure rate at a tiny sample set vs the 3n^2/|S| bound.
  const std::uint64_t s = 64;
  int fails = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    for (auto& e : rnd) e = f.sample(prng, s);
    if (!solver.evaluate(f, in, rnd).ok) ++fails;
  }
  std::printf(
      "\nempirical failure rate with |S| = %llu: %.3f   (Theorem-4 bound: %.3f)\n",
      static_cast<unsigned long long>(s), static_cast<double>(fails) / trials,
      3.0 * static_cast<double>(n * n) / static_cast<double>(s));
  return 0;
}

// Counting spanning trees exactly with the randomized determinant.
//
// Kirchhoff's matrix-tree theorem: the number of spanning trees of a graph
// equals any cofactor of its Laplacian.  The counts grow exponentially
// (Cayley: K_n has n^(n-2) trees), so this is a natural exact-arithmetic
// workload: we run the Kaltofen-Pan determinant over Q with BigInt-backed
// rationals and check Cayley's formula, then count trees of a random graph
// and cross-check against Gaussian elimination.
#include <cstdio>
#include <vector>

#include "core/solver.h"
#include "field/rational.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "util/prng.h"

using kp::field::BigInt;
using kp::field::Rational;
using kp::field::RationalField;
using Mat = kp::matrix::Matrix<RationalField>;

namespace {

/// Reduced Laplacian (drop last row/column) of a graph given as an adjacency
/// matrix of 0/1 entries.
Mat reduced_laplacian(const RationalField& q,
                      const std::vector<std::vector<int>>& adj) {
  const std::size_t n = adj.size();
  Mat l(n - 1, n - 1, q.zero());
  for (std::size_t i = 0; i < n - 1; ++i) {
    int degree = 0;
    for (std::size_t j = 0; j < n; ++j) degree += adj[i][j];
    l.at(i, i) = q.from_int(degree);
    for (std::size_t j = 0; j < n - 1; ++j) {
      if (i != j && adj[i][j]) l.at(i, j) = q.from_int(-1);
    }
  }
  return l;
}

}  // namespace

int main() {
  RationalField q;
  kp::util::Prng prng(2718);

  std::printf("Spanning trees via the randomized determinant (matrix-tree)\n\n");

  // Complete graphs: Cayley's formula n^(n-2).
  std::printf("complete graphs K_n (Cayley: n^(n-2) trees):\n");
  for (std::size_t n : {3u, 5u, 8u, 12u}) {
    std::vector<std::vector<int>> adj(n, std::vector<int>(n, 1));
    for (std::size_t i = 0; i < n; ++i) adj[i][i] = 0;
    auto l = reduced_laplacian(q, adj);
    auto res = kp::core::kp_det(q, l, prng);
    const BigInt expect = BigInt(static_cast<std::int64_t>(n)).pow(n - 2);
    const bool match = res.ok && q.eq(res.det, Rational(expect, BigInt(1)));
    std::printf("  K_%-2zu: %s trees (expected %s) %s\n", n,
                res.ok ? res.det.to_string().c_str() : "?",
                expect.to_string().c_str(), match ? "[ok]" : "[MISMATCH]");
  }

  // Random graph: cross-check the pipeline against elimination.
  std::printf("\nrandom Erdos-Renyi-ish graph on 10 vertices:\n");
  const std::size_t n = 10;
  std::vector<std::vector<int>> adj(n, std::vector<int>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      adj[i][j] = adj[j][i] = (prng.below(100) < 45) ? 1 : 0;
    }
  }
  // Make sure it is connected (chain fallback).
  for (std::size_t i = 0; i + 1 < n; ++i) adj[i][i + 1] = adj[i + 1][i] = 1;

  auto l = reduced_laplacian(q, adj);
  auto res = kp::core::kp_det(q, l, prng);
  auto ref = kp::matrix::det_gauss(q, l);
  std::printf("  kp_det:  %s trees\n", res.ok ? res.det.to_string().c_str() : "?");
  std::printf("  gauss:   %s trees\n", ref.to_string().c_str());
  std::printf("  agree:   %s\n", (res.ok && q.eq(res.det, ref)) ? "yes" : "NO");
  return 0;
}

// Dense matrices over an arbitrary commutative ring.
//
// A Matrix<R> is a plain row-major value type; all arithmetic lives in free
// functions parameterized by the domain object, following the same
// domain/element split as the field layer.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "field/concepts.h"
#include "field/kernels.h"
#include "pram/parallel_for.h"
#include "util/aligned.h"
#include "util/prng.h"

namespace kp::matrix {

/// Minimum number of ring operations before a kernel fans out onto the
/// pooled ExecutionContext; below it the region overhead dominates.
inline constexpr std::size_t kParallelGrain = 1 << 15;

/// Sums a term buffer as a balanced binary tree (depth ceil(log2 n) instead
/// of n-1).  Same operation count as a linear scan, but every inner-product
/// kernel in the library accumulates this way so that circuits built over
/// the symbolic CircuitBuilderField have the logarithmic depth the paper's
/// PRAM model assumes.  The buffer is consumed.
///
/// Word-sized prime fields take the delayed-reduction kernel instead: one
/// 128-bit accumulation per term and a single reduction, which yields the
/// same canonical residue and charges the same n-1 additions.
template <kp::field::CommutativeRing R>
typename R::Element balanced_sum(const R& r,
                                 std::vector<typename R::Element>& terms) {
  if (terms.empty()) return r.zero();
  if constexpr (kp::field::kernels::FastField<R>) {
    return kp::field::kernels::sum(r, terms.data(), terms.size());
  }
  std::size_t count = terms.size();
  while (count > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < count; i += 2) {
      terms[out++] = r.add(terms[i], terms[i + 1]);
    }
    if (count % 2) terms[out++] = std::move(terms[count - 1]);
    count = out;
  }
  return std::move(terms[0]);
}

/// Row-major dense matrix of R::Element.  The backing store is 64-byte
/// aligned (util/aligned.h) so the word-sized fast-field kernels start on
/// the vector-register / cache-line boundary; element layout is unchanged.
template <kp::field::CommutativeRing R>
class Matrix {
 public:
  using Element = typename R::Element;
  using Storage = kp::util::AlignedVector<Element>;

  Matrix() : rows_(0), cols_(0) {}
  Matrix(std::size_t rows, std::size_t cols, Element fill)
      : rows_(rows), cols_(cols), data_(rows * cols, std::move(fill)) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool is_square() const { return rows_ == cols_; }

  Element& at(std::size_t i, std::size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  const Element& at(std::size_t i, std::size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Contiguous row access for kernels.
  Element* row(std::size_t i) { return data_.data() + i * cols_; }
  const Element* row(std::size_t i) const { return data_.data() + i * cols_; }

  Storage& data() { return data_; }
  const Storage& data() const { return data_; }

 private:
  std::size_t rows_, cols_;
  Storage data_;
};

template <kp::field::CommutativeRing R>
Matrix<R> zero_matrix(const R& r, std::size_t rows, std::size_t cols) {
  return Matrix<R>(rows, cols, r.zero());
}

template <kp::field::CommutativeRing R>
Matrix<R> identity_matrix(const R& r, std::size_t n) {
  Matrix<R> out(n, n, r.zero());
  for (std::size_t i = 0; i < n; ++i) out.at(i, i) = r.one();
  return out;
}

/// Matrix with i.i.d. uniform entries from the whole field.
template <kp::field::CommutativeRing R>
Matrix<R> random_matrix(const R& r, std::size_t rows, std::size_t cols,
                        kp::util::Prng& prng) {
  Matrix<R> out(rows, cols, r.zero());
  for (auto& e : out.data()) e = r.random(prng);
  return out;
}

/// Matrix with i.i.d. entries from the canonical sample set of size s
/// (the set S of the paper's probability statements).
template <kp::field::Field F>
Matrix<F> sample_matrix(const F& f, std::size_t rows, std::size_t cols,
                        kp::util::Prng& prng, std::uint64_t s) {
  Matrix<F> out(rows, cols, f.zero());
  for (auto& e : out.data()) e = f.sample(prng, s);
  return out;
}

template <kp::field::CommutativeRing R>
bool mat_eq(const R& r, const Matrix<R>& a, const Matrix<R>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    if (!r.eq(a.data()[i], b.data()[i])) return false;
  }
  return true;
}

template <kp::field::CommutativeRing R>
Matrix<R> mat_add(const R& r, const Matrix<R>& a, const Matrix<R>& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix<R> out(a.rows(), a.cols(), r.zero());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    out.data()[i] = r.add(a.data()[i], b.data()[i]);
  }
  return out;
}

template <kp::field::CommutativeRing R>
Matrix<R> mat_sub(const R& r, const Matrix<R>& a, const Matrix<R>& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix<R> out(a.rows(), a.cols(), r.zero());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    out.data()[i] = r.sub(a.data()[i], b.data()[i]);
  }
  return out;
}

template <kp::field::CommutativeRing R>
Matrix<R> mat_neg(const R& r, const Matrix<R>& a) {
  Matrix<R> out(a.rows(), a.cols(), r.zero());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    out.data()[i] = r.neg(a.data()[i]);
  }
  return out;
}

template <kp::field::CommutativeRing R>
Matrix<R> mat_scale(const R& r, const typename R::Element& c, const Matrix<R>& a) {
  Matrix<R> out(a.rows(), a.cols(), r.zero());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    out.data()[i] = r.mul(c, a.data()[i]);
  }
  return out;
}

template <kp::field::CommutativeRing R>
Matrix<R> mat_transpose(const R& r, const Matrix<R>& a) {
  Matrix<R> out(a.cols(), a.rows(), r.zero());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

/// Dense matrix * vector.  Rows are independent, so large products run on
/// the pooled ExecutionContext; the per-row arithmetic is identical either
/// way, keeping results bit-identical for every worker count.
template <kp::field::CommutativeRing R>
std::vector<typename R::Element> mat_vec(const R& r, const Matrix<R>& a,
                                         const std::vector<typename R::Element>& x) {
  assert(a.cols() == x.size());
  std::vector<typename R::Element> out(a.rows(), r.zero());
  if constexpr (kp::field::kernels::FastField<R>) {
    // The kernels consume raw row pointers: the backing store must carry
    // the aligned-allocation guarantee (base address % kSimdAlign == 0).
    static_assert(
        std::is_same_v<typename Matrix<R>::Storage,
                       kp::util::AlignedVector<typename Matrix<R>::Element>>,
        "kernel-facing matrix storage must use the aligned allocator");
    // Fused delayed-reduction rows: one reduction per output entry.
    auto fast_row = [&](std::size_t i) {
      out[i] = kp::field::kernels::dot(r, a.row(i), x.data(), a.cols());
    };
    if (kp::field::concurrent_ops_v<R> && a.rows() * a.cols() >= kParallelGrain) {
      kp::pram::parallel_for(0, a.rows(), fast_row);
    } else {
      for (std::size_t i = 0; i < a.rows(); ++i) fast_row(i);
    }
    return out;
  }
  auto row_product = [&](std::size_t i, std::vector<typename R::Element>& terms) {
    const auto* row = a.row(i);
    terms.clear();
    for (std::size_t j = 0; j < a.cols(); ++j) {
      terms.push_back(r.mul(row[j], x[j]));
    }
    out[i] = balanced_sum(r, terms);
  };
  if (kp::field::concurrent_ops_v<R> && a.rows() * a.cols() >= kParallelGrain) {
    kp::pram::parallel_for(0, a.rows(), [&](std::size_t i) {
      std::vector<typename R::Element> terms;
      terms.reserve(a.cols());
      row_product(i, terms);
    });
  } else {
    std::vector<typename R::Element> terms;
    terms.reserve(a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) row_product(i, terms);
  }
  return out;
}

/// Row vector * dense matrix.
template <kp::field::CommutativeRing R>
std::vector<typename R::Element> vec_mat(const R& r,
                                         const std::vector<typename R::Element>& x,
                                         const Matrix<R>& a) {
  assert(a.rows() == x.size());
  std::vector<typename R::Element> out(a.cols(), r.zero());
  if constexpr (kp::field::kernels::FastField<R>) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      out[j] = kp::field::kernels::dot(r, x.data(), a.data().data() + j,
                                       a.rows(), 1, a.cols());
    }
    return out;
  }
  std::vector<typename R::Element> terms;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    terms.clear();
    for (std::size_t i = 0; i < a.rows(); ++i) {
      terms.push_back(r.mul(x[i], a.at(i, j)));
    }
    out[j] = balanced_sum(r, terms);
  }
  return out;
}

/// Inner product of two vectors.
template <kp::field::CommutativeRing R>
typename R::Element dot(const R& r, const std::vector<typename R::Element>& x,
                        const std::vector<typename R::Element>& y) {
  assert(x.size() == y.size());
  if constexpr (kp::field::kernels::FastField<R>) {
    return kp::field::kernels::dot(r, x.data(), y.data(), x.size());
  }
  std::vector<typename R::Element> terms;
  terms.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    terms.push_back(r.mul(x[i], y[i]));
  }
  return balanced_sum(r, terms);
}

/// Leading principal i x i submatrix.
template <kp::field::CommutativeRing R>
Matrix<R> leading_principal(const R& r, const Matrix<R>& a, std::size_t i) {
  assert(i <= a.rows() && i <= a.cols());
  Matrix<R> out(i, i, r.zero());
  for (std::size_t x = 0; x < i; ++x) {
    for (std::size_t y = 0; y < i; ++y) out.at(x, y) = a.at(x, y);
  }
  return out;
}

template <kp::field::CommutativeRing R>
std::string mat_to_string(const R& r, const Matrix<R>& a) {
  std::string out;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    out += "[ ";
    for (std::size_t j = 0; j < a.cols(); ++j) {
      out += r.to_string(a.at(i, j));
      out += ' ';
    }
    out += "]\n";
  }
  return out;
}

}  // namespace kp::matrix

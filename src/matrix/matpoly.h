// Evaluation of a polynomial at a matrix argument.
//
// The Theorem-4 solver finishes with the Cayley-Hamilton step
//   x = -(1/c_n) (A^{n-1} b + c_1 A^{n-2} b + ... + c_{n-1} b),
// which only needs matrix-VECTOR products (Horner on the vector).  The
// practical inverse (core/inverse.h) however evaluates the full matrix
// polynomial q(A); Paterson-Stockmeyer does that with O(sqrt(n)) matrix
// products instead of n.
#pragma once

#include <cassert>
#include <cmath>
#include <vector>

#include "matrix/dense.h"
#include "matrix/matmul.h"

namespace kp::matrix {

/// Evaluates p(A) * b with deg(p) matrix-vector products (Horner).
template <kp::field::CommutativeRing R>
std::vector<typename R::Element> matrix_poly_apply(
    const R& r, const Matrix<R>& a, const std::vector<typename R::Element>& coeffs,
    const std::vector<typename R::Element>& b) {
  assert(a.is_square() && a.rows() == b.size());
  std::vector<typename R::Element> acc(b.size(), r.zero());
  for (std::size_t k = coeffs.size(); k-- > 0;) {
    acc = mat_vec(r, a, acc);
    for (std::size_t i = 0; i < b.size(); ++i) {
      acc[i] = r.add(acc[i], r.mul(coeffs[k], b[i]));
    }
  }
  return acc;
}

/// Paterson-Stockmeyer evaluation of p(A) using ~2*sqrt(deg) matrix
/// multiplications: split p into blocks of size s, precompute A^0..A^s,
/// and Horner over A^s with matrix coefficients.
template <kp::field::CommutativeRing R>
Matrix<R> matrix_poly_eval(const R& r, const Matrix<R>& a,
                           const std::vector<typename R::Element>& coeffs,
                           MatMulStrategy strategy = MatMulStrategy::kClassical) {
  assert(a.is_square());
  const std::size_t n = a.rows();
  if (coeffs.empty()) return zero_matrix(r, n, n);

  const std::size_t deg = coeffs.size() - 1;
  const std::size_t s =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(deg + 1)))));

  // Powers A^0 .. A^s.
  std::vector<Matrix<R>> pw;
  pw.reserve(s + 1);
  pw.push_back(identity_matrix(r, n));
  for (std::size_t i = 1; i <= s; ++i) {
    pw.push_back(mat_mul(r, pw.back(), a, strategy));
  }

  // Horner over A^s: result = sum_k Block_k(A) * (A^s)^k.
  const std::size_t blocks = (coeffs.size() + s - 1) / s;
  Matrix<R> acc = zero_matrix(r, n, n);
  for (std::size_t blk = blocks; blk-- > 0;) {
    if (blk + 1 < blocks) acc = mat_mul(r, acc, pw[s], strategy);
    for (std::size_t j = 0; j < s; ++j) {
      const std::size_t idx = blk * s + j;
      if (idx >= coeffs.size() || r.eq(coeffs[idx], r.zero())) continue;
      // acc += coeffs[idx] * A^j
      for (std::size_t e = 0; e < acc.data().size(); ++e) {
        acc.data()[e] = r.add(acc.data()[e], r.mul(coeffs[idx], pw[j].data()[e]));
      }
    }
  }
  return acc;
}

}  // namespace kp::matrix

// Evaluation of a polynomial at a matrix argument.
//
// The Theorem-4 solver finishes with the Cayley-Hamilton step
//   x = -(1/c_n) (A^{n-1} b + c_1 A^{n-2} b + ... + c_{n-1} b),
// which only needs matrix-VECTOR products (Horner on the vector).  The
// practical inverse (core/inverse.h) however evaluates the full matrix
// polynomial q(A); Paterson-Stockmeyer does that with O(sqrt(n)) matrix
// products instead of n.
#pragma once

#include <cassert>
#include <cmath>
#include <vector>

#include "matrix/dense.h"
#include "matrix/matmul.h"
#include "poly/poly.h"
#include "poly/transform_cache.h"
#include "pram/parallel_for.h"

namespace kp::matrix {

/// Evaluates p(A) * b with deg(p) matrix-vector products (Horner).
template <kp::field::CommutativeRing R>
std::vector<typename R::Element> matrix_poly_apply(
    const R& r, const Matrix<R>& a, const std::vector<typename R::Element>& coeffs,
    const std::vector<typename R::Element>& b) {
  assert(a.is_square() && a.rows() == b.size());
  std::vector<typename R::Element> acc(b.size(), r.zero());
  for (std::size_t k = coeffs.size(); k-- > 0;) {
    acc = mat_vec(r, a, acc);
    for (std::size_t i = 0; i < b.size(); ++i) {
      acc[i] = r.add(acc[i], r.mul(coeffs[k], b[i]));
    }
  }
  return acc;
}

/// Multiplies two matrices of POLYNOMIALS entirely in the transform domain.
///
/// Every operand entry is forward-transformed once at one common padded
/// size -- all (rows*m + m*cols) transforms batched over the pool with
/// ntt_many -- each output entry C_ij = sum_k A_ik * B_kj is accumulated
/// POINTWISE in the transform domain (the NTT is linear, so the inverse of
/// the pointwise sum is exactly the coefficient-domain sum), and only
/// rows*cols inverse transforms run.  Values are identical to
/// mat_mul over PolyRing<R>; the operation count is genuinely smaller (an
/// algorithmic change, unlike the op-neutral TransformedPoly caching):
/// rm + mc + rc transforms instead of the 3rmc of entrywise products.
/// Coefficient rings without a usable NTT (or too-small operands) fall back
/// to mat_mul.  Works for base fields and, via Kronecker packing, for
/// TruncSeriesRing coefficients.
template <kp::field::CommutativeRing R>
Matrix<kp::poly::PolyRing<R>> matpoly_mul(
    const kp::poly::PolyRing<R>& ring, const Matrix<kp::poly::PolyRing<R>>& a,
    const Matrix<kp::poly::PolyRing<R>>& b) {
  using S = kp::poly::SplitMul<R>;
  using PR = kp::poly::PolyRing<R>;
  assert(a.cols() == b.rows());
  if constexpr (!S::kSupported) {
    return mat_mul(ring, a, b);
  } else {
    using F = typename S::Field;
    using FE = typename F::Element;
    const R& r = ring.base();
    const F& f = S::base(r);
    const std::size_t rows = a.rows(), m = a.cols(), cols = b.cols();

    // Pack every entry and size the single shared transform.
    std::vector<std::vector<FE>> pa(rows * m), pb(m * cols);
    std::size_t max_a = 0, max_b = 0;
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t k = 0; k < m; ++k) {
        pa[i * m + k] = S::pack(r, a.at(i, k));
        max_a = std::max(max_a, pa[i * m + k].size());
      }
    }
    for (std::size_t k = 0; k < m; ++k) {
      for (std::size_t j = 0; j < cols; ++j) {
        pb[k * cols + j] = S::pack(r, b.at(k, j));
        max_b = std::max(max_b, pb[k * cols + j].size());
      }
    }
    Matrix<PR> out(rows, cols, ring.zero());
    if (max_a == 0 || max_b == 0) return out;  // a zero factor
    const std::size_t out_len_packed = max_a + max_b - 1;
    std::size_t n = 1;
    while (n < out_len_packed) n <<= 1;
    if (out_len_packed < 16 ||
        !kp::poly::NttTraits<F>::available(f, out_len_packed)) {
      return mat_mul(ring, a, b);
    }
    const std::uint64_t p = f.characteristic();
    const std::uint64_t w = kp::poly::detail::root_of_unity(p, n);

    // One batched forward pass over every operand entry.
    std::vector<std::vector<FE>*> batch;
    batch.reserve(pa.size() + pb.size());
    for (auto& v : pa) {
      v.resize(n, f.zero());
      batch.push_back(&v);
    }
    for (auto& v : pb) {
      v.resize(n, f.zero());
      batch.push_back(&v);
    }
    kp::poly::ntt_many(f, batch, w, p);
    kp::poly::detail::transform_counters().forward.fetch_add(
        batch.size(), std::memory_order_relaxed);

    // Accumulate + inverse-transform + unpack each output entry; entries
    // are independent, so they form one pool region.
    const std::uint64_t w_inv = kp::field::detail::invmod(w, p);
    const auto compute = [&](std::size_t idx) {
      const std::size_t i = idx / cols, j = idx % cols;
      std::size_t out_len = 0;  // ring-level product length for unpacking
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t la = a.at(i, k).size(), lb = b.at(k, j).size();
        if (la && lb) out_len = std::max(out_len, la + lb - 1);
      }
      if (out_len == 0) return;  // whole row-by-column is zero
      std::vector<FE> acc(n, f.zero());
      for (std::size_t k = 0; k < m; ++k) {
        const auto& fa = pa[i * m + k];
        const auto& fb = pb[k * cols + j];
        for (std::size_t t = 0; t < n; ++t) {
          acc[t] = f.add(acc[t], f.mul(fa[t], fb[t]));
        }
      }
      kp::poly::detail::ntt_inplace(f, acc, w_inv, p);
      const auto n_inv = f.inv(f.from_int(static_cast<std::int64_t>(n)));
      for (auto& c : acc) c = f.mul(c, n_inv);
      auto entry = S::unpack(r, std::move(acc), out_len);
      ring.strip(entry);
      out.at(i, j) = std::move(entry);
    };
    if (kp::field::concurrent_ops_v<F> && rows * cols > 1) {
      kp::pram::parallel_for(0, rows * cols, compute);
    } else {
      for (std::size_t idx = 0; idx < rows * cols; ++idx) compute(idx);
    }
    kp::poly::detail::transform_counters().inverse.fetch_add(
        rows * cols, std::memory_order_relaxed);
    return out;
  }
}

/// Paterson-Stockmeyer evaluation of p(A) using ~2*sqrt(deg) matrix
/// multiplications: split p into blocks of size s, precompute A^0..A^s,
/// and Horner over A^s with matrix coefficients.
template <kp::field::CommutativeRing R>
Matrix<R> matrix_poly_eval(const R& r, const Matrix<R>& a,
                           const std::vector<typename R::Element>& coeffs,
                           MatMulStrategy strategy = MatMulStrategy::kClassical) {
  assert(a.is_square());
  const std::size_t n = a.rows();
  if (coeffs.empty()) return zero_matrix(r, n, n);

  const std::size_t deg = coeffs.size() - 1;
  const std::size_t s =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(deg + 1)))));

  // Powers A^0 .. A^s.
  std::vector<Matrix<R>> pw;
  pw.reserve(s + 1);
  pw.push_back(identity_matrix(r, n));
  for (std::size_t i = 1; i <= s; ++i) {
    pw.push_back(mat_mul(r, pw.back(), a, strategy));
  }

  // Horner over A^s: result = sum_k Block_k(A) * (A^s)^k.
  const std::size_t blocks = (coeffs.size() + s - 1) / s;
  Matrix<R> acc = zero_matrix(r, n, n);
  for (std::size_t blk = blocks; blk-- > 0;) {
    if (blk + 1 < blocks) acc = mat_mul(r, acc, pw[s], strategy);
    for (std::size_t j = 0; j < s; ++j) {
      const std::size_t idx = blk * s + j;
      if (idx >= coeffs.size() || r.eq(coeffs[idx], r.zero())) continue;
      // acc += coeffs[idx] * A^j
      for (std::size_t e = 0; e < acc.data().size(); ++e) {
        acc.data()[e] = r.add(acc.data()[e], r.mul(coeffs[idx], pw[j].data()[e]));
      }
    }
  }
  return acc;
}

}  // namespace kp::matrix

// Compressed-sparse-row matrices.
//
// Wiedemann's method (section 2 of the paper, after Wiedemann 1986) is the
// black-box algorithm of choice for sparse systems: its cost is 2n
// matrix-vector products plus O(n^2) dot products.  CSR provides the
// O(nnz) product the sparse experiments rely on.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "matrix/dense.h"
#include "util/aligned.h"
#include "util/prng.h"

namespace kp::matrix {

/// CSR sparse matrix over a ring.
template <kp::field::CommutativeRing R>
class Sparse {
 public:
  using Element = typename R::Element;

  /// COO triplet used for construction.
  struct Entry {
    std::size_t row, col;
    Element value;
  };

  Sparse(const R& r, std::size_t rows, std::size_t cols,
         std::vector<Entry> entries)
      : rows_(rows), cols_(cols) {
    // Counting sort by row into CSR arrays; duplicate positions are summed.
    std::vector<std::size_t> count(rows + 1, 0);
    for (const auto& e : entries) {
      assert(e.row < rows && e.col < cols);
      ++count[e.row + 1];
    }
    for (std::size_t i = 0; i < rows; ++i) count[i + 1] += count[i];
    row_ptr_ = count;
    col_.resize(entries.size());
    val_.resize(entries.size(), r.zero());
    std::vector<std::size_t> next = row_ptr_;
    for (auto& e : entries) {
      const std::size_t slot = next[e.row]++;
      col_[slot] = e.col;
      val_[slot] = std::move(e.value);
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return col_.size(); }

  /// y = A x in O(nnz) ring operations.  Rows are independent, so large
  /// products run on the pooled ExecutionContext (bit-identical results for
  /// every worker count).  Word-sized prime fields take the gathered
  /// delayed-reduction kernel (one reduction per row, same linear-chain
  /// accounting of nnz multiplications and nnz additions).
  std::vector<Element> apply(const R& r, const std::vector<Element>& x) const {
    assert(x.size() == cols_);
    std::vector<Element> y(rows_, r.zero());
    auto row_product = [&](std::size_t i) {
      if constexpr (kp::field::kernels::FastField<R>) {
        // dot_gather consumes raw val_/col_ pointers: keep the aligned
        // backing-store guarantee attached to the declarations below.
        static_assert(
            std::is_same_v<decltype(val_), kp::util::AlignedVector<Element>> &&
                std::is_same_v<decltype(col_),
                               kp::util::AlignedVector<std::size_t>>,
            "kernel-facing sparse storage must use the aligned allocator");
        const std::size_t lo = row_ptr_[i];
        y[i] = kp::field::kernels::dot_gather(r, val_.data() + lo,
                                              col_.data() + lo, x.data(),
                                              row_ptr_[i + 1] - lo);
        return;
      } else {
        auto acc = r.zero();
        for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
          acc = r.add(acc, r.mul(val_[k], x[col_[k]]));
        }
        y[i] = std::move(acc);
      }
    };
    if (kp::field::concurrent_ops_v<R> && nnz() >= kParallelGrain) {
      kp::pram::parallel_for(0, rows_, row_product);
    } else {
      for (std::size_t i = 0; i < rows_; ++i) row_product(i);
    }
    return y;
  }

  /// Batched y_k = A x_k.  Word-sized prime fields transpose the block to a
  /// row-major n x b layout and run the fused SpMM kernel: each CSR entry is
  /// one broadcast multiplied against b contiguous lanes, replacing b
  /// hardware gathers per entry with masked contiguous loads (the batched
  /// route's main single-core win).  Each lane is the same linear reduction
  /// chain as apply(), charged in bulk as b * len multiplications and
  /// additions per row -- so results and op counts are identical to b
  /// separate apply() calls, at every SIMD level and for 1..N workers
  /// (parallel chunking is by row, independent of the worker count).
  /// Other rings fall back to a (row, vector) cell grid.
  std::vector<std::vector<Element>> apply_many(
      const R& r, const std::vector<const std::vector<Element>*>& xs) const {
    const std::size_t b = xs.size();
    std::vector<std::vector<Element>> ys(b);
    for (auto& y : ys) y.assign(rows_, r.zero());
    if constexpr (kp::field::kernels::FastField<R>) {
      if (b > 1) {
        kp::util::AlignedVector<Element> xt(cols_ * b);
        for (std::size_t k = 0; k < b; ++k) {
          const std::vector<Element>& x = *xs[k];
          assert(x.size() == cols_);
          for (std::size_t j = 0; j < cols_; ++j) xt[j * b + k] = x[j];
        }
        auto row_block = [&](std::size_t i) {
          const std::size_t lo = row_ptr_[i];
          const std::size_t len = row_ptr_[i + 1] - lo;
          kp::util::count_muls(b * len);
          kp::util::count_adds(b * len);
          Element lanes[8];
          for (std::size_t k0 = 0; k0 < b; k0 += 8) {
            const std::size_t chunk = b - k0 < 8 ? b - k0 : 8;
            kp::field::kernels::spmm_row(r, val_.data() + lo, col_.data() + lo,
                                         len, xt.data() + k0, b, chunk, lanes);
            for (std::size_t k = 0; k < chunk; ++k) ys[k0 + k][i] = lanes[k];
          }
        };
        if (kp::field::concurrent_ops_v<R> && nnz() * b >= kParallelGrain) {
          kp::pram::parallel_for(0, rows_, row_block);
        } else {
          for (std::size_t i = 0; i < rows_; ++i) row_block(i);
        }
        return ys;
      }
    }
    auto cell_product = [&](std::size_t idx) {
      const std::size_t i = idx / b;
      const std::size_t k = idx % b;
      const std::vector<Element>& x = *xs[k];
      assert(x.size() == cols_);
      if constexpr (kp::field::kernels::FastField<R>) {
        const std::size_t lo = row_ptr_[i];
        ys[k][i] = kp::field::kernels::dot_gather(r, val_.data() + lo,
                                                  col_.data() + lo, x.data(),
                                                  row_ptr_[i + 1] - lo);
      } else {
        auto acc = r.zero();
        for (std::size_t c = row_ptr_[i]; c < row_ptr_[i + 1]; ++c) {
          acc = r.add(acc, r.mul(val_[c], x[col_[c]]));
        }
        ys[k][i] = std::move(acc);
      }
    };
    if (kp::field::concurrent_ops_v<R> && nnz() * b >= kParallelGrain) {
      kp::pram::parallel_for(0, b * rows_, cell_product);
    } else {
      for (std::size_t idx = 0; idx < b * rows_; ++idx) cell_product(idx);
    }
    return ys;
  }

  /// Batched y_k = A^T x_k.  The transpose product scatters along rows, so a
  /// single vector stays serial (deterministic accumulation order); a block
  /// parallelizes across the independent vectors instead.  Values and op
  /// counts match b separate apply_transpose() calls exactly.
  std::vector<std::vector<Element>> apply_transpose_many(
      const R& r, const std::vector<const std::vector<Element>*>& xs) const {
    std::vector<std::vector<Element>> ys(xs.size());
    auto one_vector = [&](std::size_t k) { ys[k] = apply_transpose(r, *xs[k]); };
    if (kp::field::concurrent_ops_v<R> && xs.size() > 1 &&
        nnz() * xs.size() >= kParallelGrain) {
      kp::pram::parallel_for(0, xs.size(), one_vector);
    } else {
      for (std::size_t k = 0; k < xs.size(); ++k) one_vector(k);
    }
    return ys;
  }

  /// y = A^T x in O(nnz) ring operations.
  std::vector<Element> apply_transpose(const R& r,
                                       const std::vector<Element>& x) const {
    assert(x.size() == rows_);
    std::vector<Element> y(cols_, r.zero());
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        y[col_[k]] = r.add(y[col_[k]], r.mul(val_[k], x[i]));
      }
    }
    return y;
  }

  Matrix<R> to_dense(const R& r) const {
    Matrix<R> out(rows_, cols_, r.zero());
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        out.at(i, col_[k]) = r.add(out.at(i, col_[k]), val_[k]);
      }
    }
    return out;
  }

  /// Random square sparse matrix with ~nnz_per_row nonzeros per row plus a
  /// random nonzero diagonal (which keeps it nonsingular with decent odds).
  template <kp::field::Field F = R>
  static Sparse random(const F& f, std::size_t n, std::size_t nnz_per_row,
                       kp::util::Prng& prng, bool nonzero_diagonal = true) {
    std::vector<Entry> entries;
    entries.reserve(n * (nnz_per_row + 1));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < nnz_per_row; ++k) {
        entries.push_back({i, prng.below(n), f.random(prng)});
      }
      if (nonzero_diagonal) {
        auto d = f.random(prng);
        while (f.eq(d, f.zero())) d = f.random(prng);
        entries.push_back({i, i, std::move(d)});
      }
    }
    return Sparse(f, n, n, std::move(entries));
  }

 private:
  std::size_t rows_, cols_;
  std::vector<std::size_t> row_ptr_;
  kp::util::AlignedVector<std::size_t> col_;
  kp::util::AlignedVector<Element> val_;
};

}  // namespace kp::matrix

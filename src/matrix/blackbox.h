// Black-box linear operators.
//
// Wiedemann's algorithm only ever touches the coefficient matrix through
// matrix-vector products, so the core pipeline is written against this
// LinOp concept.  Adapters wrap the concrete matrix kinds (dense, sparse,
// Toeplitz, Hankel, diagonal) and compose (products, transposes, shifts),
// which is how the preconditioned operator A*H*D of Theorem 2 is formed
// without ever materializing it.
#pragma once

#include <concepts>
#include <cstddef>
#include <memory>
#include <vector>

#include "matrix/dense.h"
#include "matrix/sparse.h"
#include "matrix/structured.h"
#include "poly/poly.h"

namespace kp::matrix {

/// A square linear operator that can be applied to a vector.
template <class B>
concept LinOp = requires(const B b, const std::vector<typename B::Element>& x) {
  typename B::Element;
  { b.dim() } -> std::convertible_to<std::size_t>;
  { b.apply(x) } -> std::convertible_to<std::vector<typename B::Element>>;
};

/// Dense matrix as a black box.
template <kp::field::CommutativeRing R>
class DenseBox {
 public:
  using Element = typename R::Element;
  DenseBox(const R& r, Matrix<R> a) : r_(&r), a_(std::move(a)) {
    assert(a_.is_square());
  }
  std::size_t dim() const { return a_.rows(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return mat_vec(*r_, a_, x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return vec_mat(*r_, x, a_);
  }
  const Matrix<R>& matrix() const { return a_; }

 private:
  const R* r_;
  Matrix<R> a_;
};

/// CSR sparse matrix as a black box.
template <kp::field::CommutativeRing R>
class SparseBox {
 public:
  using Element = typename R::Element;
  SparseBox(const R& r, Sparse<R> a) : r_(&r), a_(std::move(a)) {
    assert(a_.rows() == a_.cols());
  }
  std::size_t dim() const { return a_.rows(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return a_.apply(*r_, x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return a_.apply_transpose(*r_, x);
  }
  const Sparse<R>& matrix() const { return a_; }

 private:
  const R* r_;
  Sparse<R> a_;
};

/// Toeplitz matrix as a black box (O(M(n)) products via polynomial mult).
template <kp::field::Field F>
class ToeplitzBox {
 public:
  using Element = typename F::Element;
  ToeplitzBox(const kp::poly::PolyRing<F>& ring, Toeplitz<F> t)
      : ring_(&ring), t_(std::move(t)) {}
  std::size_t dim() const { return t_.dim(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return t_.apply(*ring_, x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return t_.apply_transpose(*ring_, x);
  }

 private:
  const kp::poly::PolyRing<F>* ring_;
  Toeplitz<F> t_;
};

/// Hankel matrix as a black box (symmetric, so transpose == apply).
template <kp::field::Field F>
class HankelBox {
 public:
  using Element = typename F::Element;
  HankelBox(const kp::poly::PolyRing<F>& ring, Hankel<F> h)
      : ring_(&ring), h_(std::move(h)) {}
  std::size_t dim() const { return h_.dim(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return h_.apply(*ring_, x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return h_.apply(*ring_, x);
  }
  const Hankel<F>& matrix() const { return h_; }

 private:
  const kp::poly::PolyRing<F>* ring_;
  Hankel<F> h_;
};

/// Diagonal matrix as a black box.
template <kp::field::CommutativeRing R>
class DiagonalBox {
 public:
  using Element = typename R::Element;
  DiagonalBox(const R& r, Diagonal<R> d) : r_(&r), d_(std::move(d)) {}
  std::size_t dim() const { return d_.dim(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return d_.apply(*r_, x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return d_.apply(*r_, x);
  }
  const Diagonal<R>& matrix() const { return d_; }

 private:
  const R* r_;
  Diagonal<R> d_;
};

/// Composition (A * B) x = A (B x) -- preconditioners compose this way
/// without ever forming the product matrix.
template <LinOp A, LinOp B>
  requires std::same_as<typename A::Element, typename B::Element>
class ProductBox {
 public:
  using Element = typename A::Element;
  ProductBox(A a, B b) : a_(std::move(a)), b_(std::move(b)) {
    assert(a_.dim() == b_.dim());
  }
  std::size_t dim() const { return a_.dim(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return a_.apply(b_.apply(x));
  }

 private:
  A a_;
  B b_;
};

/// Transpose view of a box that supports apply_transpose.
template <class B>
class TransposeBox {
 public:
  using Element = typename B::Element;
  explicit TransposeBox(B b) : b_(std::move(b)) {}
  std::size_t dim() const { return b_.dim(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return b_.apply_transpose(x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return b_.apply(x);
  }

 private:
  B b_;
};

/// Computes the projected Krylov sequence {u A^i v : 0 <= i < count}
/// iteratively: count-1 black-box products and count dot products.  This is
/// Wiedemann's sequential route to the sequence (8); the processor-efficient
/// doubling route (9) lives in core/krylov.h.
template <kp::field::CommutativeRing R, LinOp B>
std::vector<typename R::Element> krylov_sequence_iterative(
    const R& r, const B& box, const std::vector<typename R::Element>& u,
    const std::vector<typename R::Element>& v, std::size_t count) {
  std::vector<typename R::Element> seq;
  seq.reserve(count);
  auto x = v;
  for (std::size_t i = 0; i < count; ++i) {
    if (i) x = box.apply(x);
    seq.push_back(dot(r, u, x));
  }
  return seq;
}

}  // namespace kp::matrix

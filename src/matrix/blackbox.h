// Black-box linear operators.
//
// Wiedemann's algorithm only ever touches the coefficient matrix through
// matrix-vector products, so the core pipeline is written against this
// LinOp concept.  Adapters wrap the concrete matrix kinds (dense, sparse,
// Toeplitz, Hankel, diagonal) and compose (products, transposes, shifts),
// which is how the preconditioned operator A*H*D of Theorem 2 is formed
// without ever materializing it.  AnyBox type-erases the concept for
// runtime backend dispatch, and every box advertises a BoxStructure hint
// that the Theorem-4 solver uses to choose between the doubling route (9)
// and the iterative route (8).
#pragma once

#include <cassert>
#include <concepts>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "matrix/dense.h"
#include "matrix/sparse.h"
#include "matrix/structured.h"
#include "poly/poly.h"

namespace kp::matrix {

/// A square linear operator that can be applied to a vector.
template <class B>
concept LinOp = requires(const B b, const std::vector<typename B::Element>& x) {
  typename B::Element;
  { b.dim() } -> std::convertible_to<std::size_t>;
  { b.apply(x) } -> std::convertible_to<std::vector<typename B::Element>>;
};

/// A LinOp that can also apply its transpose (needed by the rank/nullspace
/// extensions and by transposed composed preconditioners).
template <class B>
concept TransposableLinOp =
    LinOp<B> && requires(const B b, const std::vector<typename B::Element>& x) {
      { b.apply_transpose(x) } -> std::convertible_to<std::vector<typename B::Element>>;
    };

/// A LinOp that can apply itself to a whole block of vectors in one call
/// (one pass over its data / one batched transform instead of b).
template <class B>
concept BatchLinOp =
    LinOp<B> &&
    requires(const B b,
             const std::vector<const std::vector<typename B::Element>*>& xs) {
      { b.apply_many(xs) } ->
          std::convertible_to<std::vector<std::vector<typename B::Element>>>;
    };

/// A TransposableLinOp with a batched transpose-side apply.
template <class B>
concept BatchTransposableLinOp =
    TransposableLinOp<B> &&
    requires(const B b,
             const std::vector<const std::vector<typename B::Element>*>& xs) {
      { b.apply_transpose_many(xs) } ->
          std::convertible_to<std::vector<std::vector<typename B::Element>>>;
    };

/// Pointer view of a block of columns (the apply_many calling convention).
/// Valid only while `cols` is alive.
template <class E>
std::vector<const std::vector<E>*> to_ptrs(
    const std::vector<std::vector<E>>& cols) {
  std::vector<const std::vector<E>*> ptrs(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) ptrs[i] = &cols[i];
  return ptrs;
}

/// B applied to every column of a block: batched through the box's
/// apply_many when it has one, element-identical per-column applies
/// otherwise.  This is the single entry point block algorithms use, so a
/// box only opts into batching where it actually pays (shared spectra,
/// one CSR pass, pooled mat_vec) and everything else still works.
template <LinOp B>
std::vector<std::vector<typename B::Element>> apply_columns(
    const B& box,
    const std::vector<const std::vector<typename B::Element>*>& cols) {
  if constexpr (BatchLinOp<B>) {
    return box.apply_many(cols);
  } else {
    std::vector<std::vector<typename B::Element>> out(cols.size());
    for (std::size_t i = 0; i < cols.size(); ++i) out[i] = box.apply(*cols[i]);
    return out;
  }
}

template <LinOp B>
std::vector<std::vector<typename B::Element>> apply_columns(
    const B& box, const std::vector<std::vector<typename B::Element>>& cols) {
  return apply_columns(box, to_ptrs(cols));
}

/// Transpose-side twin of apply_columns.
template <TransposableLinOp B>
std::vector<std::vector<typename B::Element>> apply_transpose_columns(
    const B& box,
    const std::vector<const std::vector<typename B::Element>*>& cols) {
  if constexpr (BatchTransposableLinOp<B>) {
    return box.apply_transpose_many(cols);
  } else {
    std::vector<std::vector<typename B::Element>> out(cols.size());
    for (std::size_t i = 0; i < cols.size(); ++i) {
      out[i] = box.apply_transpose(*cols[i]);
    }
    return out;
  }
}

template <TransposableLinOp B>
std::vector<std::vector<typename B::Element>> apply_transpose_columns(
    const B& box, const std::vector<std::vector<typename B::Element>>& cols) {
  return apply_transpose_columns(box, to_ptrs(cols));
}

/// Coarse structure classes; the solver's route selection keys off them:
/// a dense operator amortizes into the O(n^omega log n) doubling route (9),
/// while sparse/structured operators are cheaper through 2n black-box
/// products (route (8)).
enum class BoxStructure {
  kDense,       ///< O(n^2) per product
  kSparse,      ///< O(nnz) per product
  kStructured,  ///< O(M(n)) per product (Toeplitz, Hankel, diagonal)
  kUnknown,     ///< composition / external operator
};

/// Structure hint of a box: its structure() member if present, else its
/// static kStructure tag, else kUnknown.
template <LinOp B>
BoxStructure box_structure(const B& b) {
  if constexpr (requires { { b.structure() } -> std::convertible_to<BoxStructure>; }) {
    return b.structure();
  } else if constexpr (requires { { B::kStructure } -> std::convertible_to<BoxStructure>; }) {
    return B::kStructure;
  } else {
    return BoxStructure::kUnknown;
  }
}

/// Dense matrix as a black box.
template <kp::field::CommutativeRing R>
class DenseBox {
 public:
  using Element = typename R::Element;
  static constexpr BoxStructure kStructure = BoxStructure::kDense;
  DenseBox(const R& r, Matrix<R> a) : r_(&r), a_(std::move(a)) {
    assert(a_.is_square());
  }
  std::size_t dim() const { return a_.rows(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return mat_vec(*r_, a_, x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return vec_mat(*r_, x, a_);
  }
  const Matrix<R>& matrix() const { return a_; }

 private:
  const R* r_;
  Matrix<R> a_;
};

/// Non-owning dense view: what the solver's dense-matrix adapter overloads
/// wrap, so accepting a Matrix<F> costs no copy.  The matrix must outlive
/// the view.
template <kp::field::CommutativeRing R>
class DenseViewBox {
 public:
  using Element = typename R::Element;
  static constexpr BoxStructure kStructure = BoxStructure::kDense;
  DenseViewBox(const R& r, const Matrix<R>& a) : r_(&r), a_(&a) {
    assert(a.is_square());
  }
  std::size_t dim() const { return a_->rows(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return mat_vec(*r_, *a_, x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return vec_mat(*r_, x, *a_);
  }
  const Matrix<R>& matrix() const { return *a_; }

 private:
  const R* r_;
  const Matrix<R>* a_;
};

/// CSR sparse matrix as a black box.
template <kp::field::CommutativeRing R>
class SparseBox {
 public:
  using Element = typename R::Element;
  static constexpr BoxStructure kStructure = BoxStructure::kSparse;
  SparseBox(const R& r, Sparse<R> a) : r_(&r), a_(std::move(a)) {
    assert(a_.rows() == a_.cols());
  }
  std::size_t dim() const { return a_.rows(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return a_.apply(*r_, x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return a_.apply_transpose(*r_, x);
  }
  std::vector<std::vector<Element>> apply_many(
      const std::vector<const std::vector<Element>*>& xs) const {
    return a_.apply_many(*r_, xs);
  }
  std::vector<std::vector<Element>> apply_transpose_many(
      const std::vector<const std::vector<Element>*>& xs) const {
    return a_.apply_transpose_many(*r_, xs);
  }
  const Sparse<R>& matrix() const { return a_; }

 private:
  const R* r_;
  Sparse<R> a_;
};

/// Toeplitz matrix as a black box (O(M(n)) products via polynomial mult).
template <kp::field::Field F>
class ToeplitzBox {
 public:
  using Element = typename F::Element;
  static constexpr BoxStructure kStructure = BoxStructure::kStructured;
  ToeplitzBox(const kp::poly::PolyRing<F>& ring, Toeplitz<F> t)
      : ring_(&ring), t_(std::move(t)) {}
  std::size_t dim() const { return t_.dim(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return t_.apply(*ring_, x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return t_.apply_transpose(*ring_, x);
  }
  std::vector<std::vector<Element>> apply_many(
      const std::vector<const std::vector<Element>*>& xs) const {
    return t_.apply_many(*ring_, xs);
  }
  std::vector<std::vector<Element>> apply_transpose_many(
      const std::vector<const std::vector<Element>*>& xs) const {
    return t_.apply_transpose_many(*ring_, xs);
  }

 private:
  const kp::poly::PolyRing<F>* ring_;
  Toeplitz<F> t_;
};

/// Hankel matrix as a black box (symmetric, so transpose == apply).
template <kp::field::Field F>
class HankelBox {
 public:
  using Element = typename F::Element;
  static constexpr BoxStructure kStructure = BoxStructure::kStructured;
  HankelBox(const kp::poly::PolyRing<F>& ring, Hankel<F> h)
      : ring_(&ring), h_(std::move(h)) {}
  std::size_t dim() const { return h_.dim(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return h_.apply(*ring_, x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return h_.apply(*ring_, x);
  }
  std::vector<std::vector<Element>> apply_many(
      const std::vector<const std::vector<Element>*>& xs) const {
    return h_.apply_many(*ring_, xs);
  }
  std::vector<std::vector<Element>> apply_transpose_many(
      const std::vector<const std::vector<Element>*>& xs) const {
    return h_.apply_many(*ring_, xs);
  }
  const Hankel<F>& matrix() const { return h_; }

 private:
  const kp::poly::PolyRing<F>* ring_;
  Hankel<F> h_;
};

/// Diagonal matrix as a black box.
template <kp::field::CommutativeRing R>
class DiagonalBox {
 public:
  using Element = typename R::Element;
  static constexpr BoxStructure kStructure = BoxStructure::kStructured;
  DiagonalBox(const R& r, Diagonal<R> d) : r_(&r), d_(std::move(d)) {}
  std::size_t dim() const { return d_.dim(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return d_.apply(*r_, x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return d_.apply(*r_, x);
  }
  const Diagonal<R>& matrix() const { return d_; }

 private:
  const R* r_;
  Diagonal<R> d_;
};

/// Composition (A * B) x = A (B x) -- preconditioners compose this way
/// without ever forming the product matrix.
template <LinOp A, LinOp B>
  requires std::same_as<typename A::Element, typename B::Element>
class ProductBox {
 public:
  using Element = typename A::Element;
  ProductBox(A a, B b) : a_(std::move(a)), b_(std::move(b)) {
    assert(a_.dim() == b_.dim());
  }
  std::size_t dim() const { return a_.dim(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return a_.apply(b_.apply(x));
  }
  /// (A B)^T x = B^T (A^T x): transposition reverses the composition.
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const
    requires TransposableLinOp<A> && TransposableLinOp<B>
  {
    return b_.apply_transpose(a_.apply_transpose(x));
  }
  std::vector<std::vector<Element>> apply_many(
      const std::vector<const std::vector<Element>*>& xs) const {
    return apply_columns(a_, apply_columns(b_, xs));
  }
  std::vector<std::vector<Element>> apply_transpose_many(
      const std::vector<const std::vector<Element>*>& xs) const
    requires TransposableLinOp<A> && TransposableLinOp<B>
  {
    return apply_transpose_columns(b_, apply_transpose_columns(a_, xs));
  }
  /// Cost of a product is dominated by the denser factor.
  BoxStructure structure() const {
    const auto sa = box_structure(a_), sb = box_structure(b_);
    if (sa == BoxStructure::kUnknown || sb == BoxStructure::kUnknown) {
      return BoxStructure::kUnknown;
    }
    return sa > sb ? sb : sa;  // enum order: dense < sparse < structured
  }

 private:
  A a_;
  B b_;
};

/// Transpose view of a box that supports apply_transpose.
template <TransposableLinOp B>
class TransposeBox {
 public:
  using Element = typename B::Element;
  explicit TransposeBox(B b) : b_(std::move(b)) {}
  std::size_t dim() const { return b_.dim(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return b_.apply_transpose(x);
  }
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return b_.apply(x);
  }
  std::vector<std::vector<Element>> apply_many(
      const std::vector<const std::vector<Element>*>& xs) const {
    return apply_transpose_columns(b_, xs);
  }
  std::vector<std::vector<Element>> apply_transpose_many(
      const std::vector<const std::vector<Element>*>& xs) const {
    return apply_columns(b_, xs);
  }
  BoxStructure structure() const { return box_structure(b_); }

 private:
  B b_;
};

/// The Theorem-2 preconditioned operator A*H*D, composed lazily: one inner
/// product with A plus one O(M(n)) Hankel product (polynomial
/// multiplication) plus n diagonal scalings per apply -- the dense n x n
/// product A*H*D is never materialized.  Holds a non-owning view of the
/// inner operator (the solver keeps it alive for the attempt's duration);
/// H and D are owned.
template <kp::field::Field F, LinOp B>
  requires std::same_as<typename B::Element, typename F::Element>
class PreconditionedBox {
 public:
  using Element = typename F::Element;
  PreconditionedBox(const F& f, const kp::poly::PolyRing<F>& ring,
                    const B& inner, Hankel<F> h, Diagonal<F> d)
      : f_(&f), ring_(&ring), inner_(&inner), h_(std::move(h)), d_(std::move(d)) {
    assert(inner.dim() == h_.dim() && h_.dim() == d_.dim());
  }
  std::size_t dim() const { return h_.dim(); }
  /// (A H D) x = A (H (D x)).
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return inner_->apply(h_.apply(*ring_, d_.apply(*f_, x)));
  }
  /// (A H D)^T x = D (H (A^T x)) since H and D are symmetric.
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const
    requires TransposableLinOp<B>
  {
    return d_.apply(*f_, h_.apply(*ring_, inner_->apply_transpose(x)));
  }
  /// Batched (A H D) x_k: one diagonal pass per column, one batched Hankel
  /// product sharing the cached symbol spectrum, then the inner operator's
  /// own batch path (apply_columns falls back per-column when absent).
  std::vector<std::vector<Element>> apply_many(
      const std::vector<const std::vector<Element>*>& xs) const {
    std::vector<std::vector<Element>> scaled(xs.size());
    for (std::size_t k = 0; k < xs.size(); ++k) {
      scaled[k] = d_.apply(*f_, *xs[k]);
    }
    return apply_columns(*inner_, h_.apply_many(*ring_, to_ptrs(scaled)));
  }
  std::vector<std::vector<Element>> apply_transpose_many(
      const std::vector<const std::vector<Element>*>& xs) const
    requires TransposableLinOp<B>
  {
    auto hs = h_.apply_many(*ring_, to_ptrs(apply_transpose_columns(*inner_, xs)));
    for (auto& v : hs) v = d_.apply(*f_, v);
    return hs;
  }
  /// Route selection follows the inner operator: the Hankel/diagonal layers
  /// only add O(M(n)) per product.
  BoxStructure structure() const { return box_structure(*inner_); }

 private:
  const F* f_;
  const kp::poly::PolyRing<F>* ring_;
  const B* inner_;
  Hankel<F> h_;
  Diagonal<F> d_;
};

/// Type-erased black box for runtime backend dispatch: a service endpoint
/// (or AnyBox-keyed cache) can hold heterogeneous operators in one
/// container and route them all through the same LinOp-templated solver.
/// Cheap to copy (shared immutable payload).
template <kp::field::Field F>
class AnyBox {
 public:
  using Element = typename F::Element;

  template <class B>
    requires LinOp<std::decay_t<B>> &&
             std::same_as<typename std::decay_t<B>::Element, Element> &&
             (!std::same_as<std::decay_t<B>, AnyBox>)
  AnyBox(B&& box)  // NOLINT(google-explicit-constructor): adapter by design
      : impl_(std::make_shared<Model<std::decay_t<B>>>(std::forward<B>(box))) {}

  std::size_t dim() const { return impl_->dim(); }
  std::vector<Element> apply(const std::vector<Element>& x) const {
    return impl_->apply(x);
  }
  /// Valid only when transposable() -- asserted, mirroring the library's
  /// "precondition violations are programming errors" convention.
  std::vector<Element> apply_transpose(const std::vector<Element>& x) const {
    return impl_->apply_transpose(x);
  }
  /// Batched applies: forwarded to the underlying box's apply_many when it
  /// has one, per-column applies otherwise -- so block algorithms can run
  /// through the type-erased interface without losing the batch paths.
  std::vector<std::vector<Element>> apply_many(
      const std::vector<const std::vector<Element>*>& xs) const {
    return impl_->apply_many(xs);
  }
  std::vector<std::vector<Element>> apply_transpose_many(
      const std::vector<const std::vector<Element>*>& xs) const {
    return impl_->apply_transpose_many(xs);
  }
  bool transposable() const { return impl_->transposable(); }
  BoxStructure structure() const { return impl_->structure(); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual std::size_t dim() const = 0;
    virtual std::vector<Element> apply(const std::vector<Element>& x) const = 0;
    virtual std::vector<Element> apply_transpose(
        const std::vector<Element>& x) const = 0;
    virtual std::vector<std::vector<Element>> apply_many(
        const std::vector<const std::vector<Element>*>& xs) const = 0;
    virtual std::vector<std::vector<Element>> apply_transpose_many(
        const std::vector<const std::vector<Element>*>& xs) const = 0;
    virtual bool transposable() const = 0;
    virtual BoxStructure structure() const = 0;
  };

  template <LinOp B>
  struct Model final : Concept {
    explicit Model(B box) : box_(std::move(box)) {}
    std::size_t dim() const override { return box_.dim(); }
    std::vector<Element> apply(const std::vector<Element>& x) const override {
      return box_.apply(x);
    }
    std::vector<Element> apply_transpose(
        const std::vector<Element>& x) const override {
      if constexpr (TransposableLinOp<B>) {
        return box_.apply_transpose(x);
      } else {
        assert(false && "underlying box has no apply_transpose");
        return {};
      }
    }
    std::vector<std::vector<Element>> apply_many(
        const std::vector<const std::vector<Element>*>& xs) const override {
      return apply_columns(box_, xs);
    }
    std::vector<std::vector<Element>> apply_transpose_many(
        const std::vector<const std::vector<Element>*>& xs) const override {
      if constexpr (TransposableLinOp<B>) {
        return apply_transpose_columns(box_, xs);
      } else {
        assert(false && "underlying box has no apply_transpose");
        return {};
      }
    }
    bool transposable() const override { return TransposableLinOp<B>; }
    BoxStructure structure() const override { return box_structure(box_); }
    B box_;
  };

  std::shared_ptr<const Concept> impl_;
};

/// Materializes a box as a dense matrix: column j = B e_j, n black-box
/// products.  Only the explicit-doubling route on a non-dense box pays this;
/// the values are exactly the operator's entries, so downstream arithmetic
/// is identical to the dense path.
template <kp::field::CommutativeRing R, LinOp B>
Matrix<R> materialize_dense(const R& r, const B& box) {
  const std::size_t n = box.dim();
  Matrix<R> out(n, n, r.zero());
  std::vector<typename R::Element> e(n, r.zero());
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = r.one();
    const auto col = box.apply(e);
    for (std::size_t i = 0; i < n; ++i) out.at(i, j) = col[i];
    e[j] = r.zero();
  }
  return out;
}

/// Computes the projected Krylov sequence {u A^i v : 0 <= i < count}
/// iteratively: count-1 black-box products and count dot products.  This is
/// Wiedemann's sequential route to the sequence (8); the processor-efficient
/// doubling route (9) lives in core/krylov.h.
template <kp::field::CommutativeRing R, LinOp B>
std::vector<typename R::Element> krylov_sequence_iterative(
    const R& r, const B& box, const std::vector<typename R::Element>& u,
    const std::vector<typename R::Element>& v, std::size_t count) {
  std::vector<typename R::Element> seq;
  seq.reserve(count);
  auto x = v;
  for (std::size_t i = 0; i < count; ++i) {
    if (i) x = box.apply(x);
    seq.push_back(dot(r, u, x));
  }
  return seq;
}

}  // namespace kp::matrix

// Matrix multiplication kernels: classical O(n^3) and Strassen O(n^2.81).
//
// The paper treats matrix multiplication as a black box and notes that "the
// processor count ... is directly related to the particular matrix
// multiplication algorithm used, and for the classical method may yield a
// practical algorithm".  Both kernels are provided behind a strategy enum;
// every higher-level cost (Krylov doubling, Theorem 4/6 totals) inherits the
// chosen exponent, which the comparison benches measure empirically.
#pragma once

#include <cassert>
#include <cstddef>

#include "matrix/dense.h"

namespace kp::matrix {

enum class MatMulStrategy {
  kClassical,  ///< triple loop, O(n^3)
  kStrassen,   ///< Strassen-Winograd style 7-multiplication recursion
};

namespace detail {

/// Classical kernel; each output entry is a balanced-tree inner product so
/// the corresponding circuit has depth O(log n), as the paper's model needs.
/// Output rows are independent, so large products fan out row-by-row onto
/// the pooled ExecutionContext with identical per-row arithmetic (results
/// are bit-identical for every worker count).
template <kp::field::CommutativeRing R>
Matrix<R> mul_classical(const R& r, const Matrix<R>& a, const Matrix<R>& b) {
  Matrix<R> out(a.rows(), b.cols(), r.zero());
  if constexpr (kp::field::kernels::FastField<R>) {
    // Fused delayed-reduction inner products with the same zero-skip as the
    // generic loop below (one multiplication charged per nonzero a-entry).
    const std::size_t stride = b.cols();
    auto fast_row = [&](std::size_t i) {
      const auto* arow = a.row(i);
      auto* orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        orow[j] = kp::field::kernels::dot_skip_zero(
            r, arow, b.data().data() + j, a.cols(), stride);
      }
    };
    if (kp::field::concurrent_ops_v<R> &&
        a.rows() * a.cols() * b.cols() >= kParallelGrain) {
      kp::pram::parallel_for(0, a.rows(), fast_row);
    } else {
      for (std::size_t i = 0; i < a.rows(); ++i) fast_row(i);
    }
    return out;
  }
  auto out_row = [&](std::size_t i, std::vector<typename R::Element>& terms) {
    const auto* arow = a.row(i);
    auto* orow = out.row(i);
    for (std::size_t j = 0; j < b.cols(); ++j) {
      terms.clear();
      for (std::size_t k = 0; k < a.cols(); ++k) {
        if (r.eq(arow[k], r.zero())) continue;
        terms.push_back(r.mul(arow[k], b.at(k, j)));
      }
      orow[j] = balanced_sum(r, terms);
    }
  };
  if (kp::field::concurrent_ops_v<R> &&
      a.rows() * a.cols() * b.cols() >= kParallelGrain) {
    kp::pram::parallel_for(0, a.rows(), [&](std::size_t i) {
      std::vector<typename R::Element> terms;
      terms.reserve(a.cols());
      out_row(i, terms);
    });
  } else {
    std::vector<typename R::Element> terms;
    terms.reserve(a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) out_row(i, terms);
  }
  return out;
}

template <kp::field::CommutativeRing R>
Matrix<R> submatrix(const R& r, const Matrix<R>& a, std::size_t i0, std::size_t j0,
                    std::size_t rows, std::size_t cols) {
  Matrix<R> out(rows, cols, r.zero());
  for (std::size_t i = 0; i < rows && i0 + i < a.rows(); ++i) {
    for (std::size_t j = 0; j < cols && j0 + j < a.cols(); ++j) {
      out.at(i, j) = a.at(i0 + i, j0 + j);
    }
  }
  return out;
}

template <kp::field::CommutativeRing R>
void paste(Matrix<R>& dst, const Matrix<R>& src, std::size_t i0, std::size_t j0) {
  for (std::size_t i = 0; i < src.rows() && i0 + i < dst.rows(); ++i) {
    for (std::size_t j = 0; j < src.cols() && j0 + j < dst.cols(); ++j) {
      dst.at(i0 + i, j0 + j) = src.at(i, j);
    }
  }
}

/// Strassen recursion on square matrices padded to a power-of-two size.
template <kp::field::CommutativeRing R>
Matrix<R> mul_strassen_pow2(const R& r, const Matrix<R>& a, const Matrix<R>& b,
                            std::size_t threshold) {
  const std::size_t n = a.rows();
  if (n <= threshold) return mul_classical(r, a, b);
  const std::size_t h = n / 2;
  const Matrix<R> a11 = submatrix(r, a, 0, 0, h, h), a12 = submatrix(r, a, 0, h, h, h);
  const Matrix<R> a21 = submatrix(r, a, h, 0, h, h), a22 = submatrix(r, a, h, h, h, h);
  const Matrix<R> b11 = submatrix(r, b, 0, 0, h, h), b12 = submatrix(r, b, 0, h, h, h);
  const Matrix<R> b21 = submatrix(r, b, h, 0, h, h), b22 = submatrix(r, b, h, h, h, h);

  const Matrix<R> m1 =
      mul_strassen_pow2(r, mat_add(r, a11, a22), mat_add(r, b11, b22), threshold);
  const Matrix<R> m2 = mul_strassen_pow2(r, mat_add(r, a21, a22), b11, threshold);
  const Matrix<R> m3 = mul_strassen_pow2(r, a11, mat_sub(r, b12, b22), threshold);
  const Matrix<R> m4 = mul_strassen_pow2(r, a22, mat_sub(r, b21, b11), threshold);
  const Matrix<R> m5 = mul_strassen_pow2(r, mat_add(r, a11, a12), b22, threshold);
  const Matrix<R> m6 =
      mul_strassen_pow2(r, mat_sub(r, a21, a11), mat_add(r, b11, b12), threshold);
  const Matrix<R> m7 =
      mul_strassen_pow2(r, mat_sub(r, a12, a22), mat_add(r, b21, b22), threshold);

  Matrix<R> out(n, n, r.zero());
  paste(out, mat_add(r, mat_sub(r, mat_add(r, m1, m4), m5), m7), 0, 0);
  paste(out, mat_add(r, m3, m5), 0, h);
  paste(out, mat_add(r, m2, m4), h, 0);
  paste(out, mat_add(r, mat_add(r, mat_sub(r, m1, m2), m3), m6), h, h);
  return out;
}

}  // namespace detail

/// General matrix product with the requested kernel.  Strassen handles
/// rectangular/odd shapes by zero-padding up to the enclosing power of two.
template <kp::field::CommutativeRing R>
Matrix<R> mat_mul(const R& r, const Matrix<R>& a, const Matrix<R>& b,
                  MatMulStrategy strategy = MatMulStrategy::kClassical,
                  std::size_t strassen_threshold = 32) {
  assert(a.cols() == b.rows());
  if (strategy == MatMulStrategy::kClassical) {
    return detail::mul_classical(r, a, b);
  }
  std::size_t n = 1;
  while (n < a.rows() || n < a.cols() || n < b.cols()) n <<= 1;
  if (n <= strassen_threshold) return detail::mul_classical(r, a, b);
  // Already-square power-of-two inputs need no pad copies (and the product
  // is already the requested shape, so no final trim either).
  if (a.rows() == n && a.cols() == n && b.rows() == n && b.cols() == n) {
    return detail::mul_strassen_pow2(r, a, b, strassen_threshold);
  }
  const Matrix<R> pa = detail::submatrix(r, a, 0, 0, n, n);
  const Matrix<R> pb = detail::submatrix(r, b, 0, 0, n, n);
  const Matrix<R> prod = detail::mul_strassen_pow2(r, pa, pb, strassen_threshold);
  return detail::submatrix(r, prod, 0, 0, a.rows(), b.cols());
}

}  // namespace kp::matrix

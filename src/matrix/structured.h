// Structured matrices: Toeplitz, Hankel, and Vandermonde.
//
// Toeplitz matrices are the paper's central data structure (Lemma 1 reduces
// minimum-polynomial computation to a Toeplitz system; section 3 computes
// their characteristic polynomial).  The Hankel matrix is the Theorem-2
// preconditioner; its row-mirror is Toeplitz, which is how the paper
// computes det(H).  Matrix-vector products of both reduce to polynomial
// multiplication, which is where the O(M(n)) costs come from.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "matrix/dense.h"
#include "poly/poly.h"
#include "poly/transform_cache.h"
#include "util/prng.h"

namespace kp::matrix {

/// n x n Toeplitz matrix in the paper's layout (4):
///
///   T = [ a_{n-1} a_{n-2} ... a_1    a_0    ]
///       [ a_n     a_{n-1} ... a_2    a_1    ]
///       [ ...                               ]
///       [ a_{2n-2}         ... a_n   a_{n-1}]
///
/// i.e. T(i, j) = a[(n-1) + i - j] with a = diagonals() of length 2n-1,
/// a[0] the top-right corner and a[2n-2] the bottom-left corner.
template <kp::field::CommutativeRing R>
class Toeplitz {
 public:
  using Element = typename R::Element;

  Toeplitz(std::size_t n, std::vector<Element> diagonals)
      : n_(n), a_(std::move(diagonals)) {
    assert(a_.size() == 2 * n_ - 1);
  }

  // The cached symbol transforms are per-instance scratch, not state:
  // copies start with cold caches and rebuild on first apply.
  Toeplitz(const Toeplitz& o) : n_(o.n_), a_(o.a_) {}
  Toeplitz& operator=(const Toeplitz& o) {
    if (this != &o) {
      n_ = o.n_;
      a_ = o.a_;
      std::lock_guard<std::mutex> lk(mu_);
      symbol_.reset();
      symbol_t_.reset();
    }
    return *this;
  }
  Toeplitz(Toeplitz&& o) noexcept : n_(o.n_), a_(std::move(o.a_)) {
    std::lock_guard<std::mutex> lk(o.mu_);
    symbol_ = std::move(o.symbol_);
    symbol_t_ = std::move(o.symbol_t_);
  }
  Toeplitz& operator=(Toeplitz&& o) {
    if (this != &o) {
      n_ = o.n_;
      a_ = std::move(o.a_);
      std::scoped_lock lk(mu_, o.mu_);
      symbol_ = std::move(o.symbol_);
      symbol_t_ = std::move(o.symbol_t_);
    }
    return *this;
  }

  /// Builds the Toeplitz matrix of a sequence as in Lemma 1: the mu x mu
  /// matrix T_mu with T(i, j) = seq[(mu - 1) + i - j], which requires
  /// seq[0 .. 2mu-2].
  static Toeplitz from_sequence(std::size_t mu, const std::vector<Element>& seq) {
    assert(seq.size() >= 2 * mu - 1);
    return Toeplitz(mu, std::vector<Element>(seq.begin(),
                                             seq.begin() + static_cast<std::ptrdiff_t>(2 * mu - 1)));
  }

  std::size_t dim() const { return n_; }
  const std::vector<Element>& diagonals() const { return a_; }

  const Element& at(std::size_t i, std::size_t j) const {
    assert(i < n_ && j < n_);
    return a_[(n_ - 1) + i - j];
  }

  Matrix<R> to_dense(const R& r) const {
    Matrix<R> out(n_, n_, r.zero());
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) out.at(i, j) = at(i, j);
    }
    return out;
  }

  /// T * x via one polynomial multiplication: y_i = (a * X)[n-1+i] where
  /// X = sum_j x_j z^j.  Cost O(M(n)) instead of O(n^2).  The symbol a is
  /// fixed for the lifetime of the matrix, so its forward transform is
  /// cached (poly/transform_cache.h): repeated applies -- the 2n products
  /// of a Krylov run, the Newton iteration's per-level pair -- pay one
  /// forward NTT each instead of two.  Values and logical op counts are
  /// identical to the uncached product.
  std::vector<Element> apply(const kp::poly::PolyRing<R>& ring,
                             const std::vector<Element>& x) const {
    assert(x.size() == n_);
    const auto prod = symbol(ring).mul(ring, strip_copy(ring, x));
    return window(ring, prod);
  }

  /// x^T * T as a column vector, i.e. T^T x.  T^T is the Toeplitz matrix
  /// with the reversed diagonal vector; its symbol transform is cached
  /// separately from the forward one.
  std::vector<Element> apply_transpose(const kp::poly::PolyRing<R>& ring,
                                       const std::vector<Element>& x) const {
    assert(x.size() == n_);
    const auto prod = symbol_transpose(ring).mul(ring, strip_copy(ring, x));
    return window(ring, prod);
  }

  /// Batched T * x_i for every x_i: one cached symbol spectrum, varying-side
  /// forward transforms dispatched over the pool (TransformedPoly::mul_many).
  /// Element- and op-count-identical to calling apply in a loop.
  std::vector<std::vector<Element>> apply_many(
      const kp::poly::PolyRing<R>& ring,
      const std::vector<const std::vector<Element>*>& xs) const {
    std::vector<typename kp::poly::PolyRing<R>::Element> stripped(xs.size());
    std::vector<const typename kp::poly::PolyRing<R>::Element*> ptrs(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      assert(xs[i]->size() == n_);
      stripped[i] = strip_copy(ring, *xs[i]);
      ptrs[i] = &stripped[i];
    }
    auto prods = symbol(ring).mul_many(ring, ptrs);
    std::vector<std::vector<Element>> out(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) out[i] = window(ring, prods[i]);
    return out;
  }

  /// Batched T^T * x_i: the transpose-side twin of apply_many, sharing the
  /// separately cached reversed-symbol spectrum.  Left-projection blocks in
  /// the block-Wiedemann route batch through here so the transpose spectrum
  /// is transformed once per matrix, not once per vector.
  std::vector<std::vector<Element>> apply_transpose_many(
      const kp::poly::PolyRing<R>& ring,
      const std::vector<const std::vector<Element>*>& xs) const {
    std::vector<typename kp::poly::PolyRing<R>::Element> stripped(xs.size());
    std::vector<const typename kp::poly::PolyRing<R>::Element*> ptrs(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      assert(xs[i]->size() == n_);
      stripped[i] = strip_copy(ring, *xs[i]);
      ptrs[i] = &stripped[i];
    }
    auto prods = symbol_transpose(ring).mul_many(ring, ptrs);
    std::vector<std::vector<Element>> out(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) out[i] = window(ring, prods[i]);
    return out;
  }

  /// The cached transform of the (stripped) symbol polynomial; built on
  /// first use, shared by every subsequent apply.
  const kp::poly::TransformedPoly<R>& symbol(
      const kp::poly::PolyRing<R>& ring) const {
    std::lock_guard<std::mutex> lk(mu_);
    if (!symbol_) {
      symbol_ = std::make_unique<kp::poly::TransformedPoly<R>>(
          ring, strip_copy(ring, a_));
    }
    return *symbol_;
  }

  const kp::poly::TransformedPoly<R>& symbol_transpose(
      const kp::poly::PolyRing<R>& ring) const {
    std::lock_guard<std::mutex> lk(mu_);
    if (!symbol_t_) {
      std::vector<Element> rev(a_.rbegin(), a_.rend());
      auto p = std::move(rev);
      ring.strip(p);
      symbol_t_ = std::make_unique<kp::poly::TransformedPoly<R>>(ring, std::move(p));
    }
    return *symbol_t_;
  }

 private:
  static typename kp::poly::PolyRing<R>::Element strip_copy(
      const kp::poly::PolyRing<R>& ring, const std::vector<Element>& v) {
    auto out = v;
    ring.strip(out);
    return out;
  }

  /// Reads coefficients n-1 .. 2n-2 of the product polynomial.
  std::vector<Element> window(
      const kp::poly::PolyRing<R>& ring,
      const typename kp::poly::PolyRing<R>::Element& prod) const {
    std::vector<Element> y(n_, ring.base().zero());
    for (std::size_t i = 0; i < n_; ++i) y[i] = ring.coeff(prod, n_ - 1 + i);
    return y;
  }

  std::size_t n_;
  std::vector<Element> a_;
  mutable std::mutex mu_;
  mutable std::unique_ptr<kp::poly::TransformedPoly<R>> symbol_;
  mutable std::unique_ptr<kp::poly::TransformedPoly<R>> symbol_t_;
};

/// n x n Hankel matrix as in Theorem 2:
///
///   H = [ h_0     h_1   ...  h_{n-1} ]
///       [ h_1     h_2   ...  h_n     ]
///       [ ...                        ]
///       [ h_{n-1} h_n   ...  h_{2n-2}]
///
/// i.e. H(i, j) = h[i + j].
template <kp::field::CommutativeRing R>
class Hankel {
 public:
  using Element = typename R::Element;

  Hankel(std::size_t n, std::vector<Element> entries)
      : n_(n), h_(std::move(entries)) {
    assert(h_.size() == 2 * n_ - 1);
  }

  // Copies start with a cold symbol cache (see Toeplitz).
  Hankel(const Hankel& o) : n_(o.n_), h_(o.h_) {}
  Hankel& operator=(const Hankel& o) {
    if (this != &o) {
      n_ = o.n_;
      h_ = o.h_;
      std::lock_guard<std::mutex> lk(mu_);
      symbol_.reset();
    }
    return *this;
  }
  Hankel(Hankel&& o) noexcept : n_(o.n_), h_(std::move(o.h_)) {
    std::lock_guard<std::mutex> lk(o.mu_);
    symbol_ = std::move(o.symbol_);
  }
  Hankel& operator=(Hankel&& o) {
    if (this != &o) {
      n_ = o.n_;
      h_ = std::move(o.h_);
      std::scoped_lock lk(mu_, o.mu_);
      symbol_ = std::move(o.symbol_);
    }
    return *this;
  }

  /// Random Hankel preconditioner with entries from the sample set S.
  template <kp::field::Field F = R>
  static Hankel random(const F& f, std::size_t n, kp::util::Prng& prng,
                       std::uint64_t s) {
    std::vector<Element> h(2 * n - 1);
    for (auto& e : h) e = f.sample(prng, s);
    return Hankel(n, std::move(h));
  }

  std::size_t dim() const { return n_; }
  const std::vector<Element>& entries() const { return h_; }

  const Element& at(std::size_t i, std::size_t j) const {
    assert(i < n_ && j < n_);
    return h_[i + j];
  }

  Matrix<R> to_dense(const R& r) const {
    Matrix<R> out(n_, n_, r.zero());
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) out.at(i, j) = at(i, j);
    }
    return out;
  }

  /// H * x via one polynomial multiplication: with X = sum_j x_j z^{n-1-j},
  /// y_i = (h * X)[n-1+i].  Hankel matrices are symmetric, so this is also
  /// the transposed product.  The symbol h is fixed, so its forward
  /// transform is cached across applies (the iterative Wiedemann route's
  /// Hankel preconditioner sees 2n of them per run).
  std::vector<Element> apply(const kp::poly::PolyRing<R>& ring,
                             const std::vector<Element>& x) const {
    assert(x.size() == n_);
    std::vector<Element> xp(x.rbegin(), x.rend());
    ring.strip(xp);
    const auto prod = symbol(ring).mul(ring, xp);
    std::vector<Element> y(n_, ring.base().zero());
    for (std::size_t i = 0; i < n_; ++i) y[i] = ring.coeff(prod, n_ - 1 + i);
    return y;
  }

  /// Batched H * x_i (see Toeplitz::apply_many).
  std::vector<std::vector<Element>> apply_many(
      const kp::poly::PolyRing<R>& ring,
      const std::vector<const std::vector<Element>*>& xs) const {
    std::vector<typename kp::poly::PolyRing<R>::Element> rev(xs.size());
    std::vector<const typename kp::poly::PolyRing<R>::Element*> ptrs(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      assert(xs[i]->size() == n_);
      rev[i].assign(xs[i]->rbegin(), xs[i]->rend());
      ring.strip(rev[i]);
      ptrs[i] = &rev[i];
    }
    auto prods = symbol(ring).mul_many(ring, ptrs);
    std::vector<std::vector<Element>> out(xs.size());
    for (std::size_t k = 0; k < xs.size(); ++k) {
      out[k].assign(n_, ring.base().zero());
      for (std::size_t i = 0; i < n_; ++i) {
        out[k][i] = ring.coeff(prods[k], n_ - 1 + i);
      }
    }
    return out;
  }

  /// The cached transform of the (stripped) symbol polynomial.
  const kp::poly::TransformedPoly<R>& symbol(
      const kp::poly::PolyRing<R>& ring) const {
    std::lock_guard<std::mutex> lk(mu_);
    if (!symbol_) {
      auto hp = h_;
      ring.strip(hp);
      symbol_ = std::make_unique<kp::poly::TransformedPoly<R>>(ring, std::move(hp));
    }
    return *symbol_;
  }

  /// The row-mirror J*H (J the reversal permutation), which is Toeplitz --
  /// the section-4 trick for computing det(H) with the Toeplitz machinery:
  /// det(H) = (-1)^(n(n-1)/2) * det(JH).
  Toeplitz<R> row_mirror_toeplitz() const {
    std::vector<Element> rev(h_.rbegin(), h_.rend());
    return Toeplitz<R>(n_, std::move(rev));
  }

  /// Sign relating det(H) to det(row_mirror_toeplitz()).
  int mirror_det_sign() const {
    // J is n(n-1)/2 transpositions.
    return (n_ * (n_ - 1) / 2) % 2 == 0 ? 1 : -1;
  }

 private:
  std::size_t n_;
  std::vector<Element> h_;
  mutable std::mutex mu_;
  mutable std::unique_ptr<kp::poly::TransformedPoly<R>> symbol_;
};

/// m x n Vandermonde matrix V(i, j) = x_i^j over pairwise-distinct points.
/// The section-4 application relates solving V^T y = b to interpolation.
template <kp::field::Field F>
class Vandermonde {
 public:
  using Element = typename F::Element;

  explicit Vandermonde(std::vector<Element> points, std::size_t cols = 0)
      : x_(std::move(points)), cols_(cols ? cols : x_.size()) {}

  std::size_t rows() const { return x_.size(); }
  std::size_t cols() const { return cols_; }
  const std::vector<Element>& points() const { return x_; }

  Matrix<F> to_dense(const F& f) const {
    Matrix<F> out(rows(), cols_, f.zero());
    for (std::size_t i = 0; i < rows(); ++i) {
      auto p = f.one();
      for (std::size_t j = 0; j < cols_; ++j) {
        out.at(i, j) = p;
        p = f.mul(p, x_[i]);
      }
    }
    return out;
  }

  /// V * c = multipoint evaluation of the polynomial with coefficients c.
  std::vector<Element> apply(const F& f, const std::vector<Element>& c) const {
    assert(c.size() == cols_);
    std::vector<Element> out(rows(), f.zero());
    for (std::size_t i = 0; i < rows(); ++i) {
      auto acc = f.zero();
      for (std::size_t j = c.size(); j-- > 0;) {
        acc = f.add(f.mul(acc, x_[i]), c[j]);
      }
      out[i] = std::move(acc);
    }
    return out;
  }

  /// V^T * y (the transposed product: out_j = sum_i x_i^j y_i).
  std::vector<Element> apply_transpose(const F& f,
                                       const std::vector<Element>& y) const {
    assert(y.size() == rows());
    std::vector<Element> out(cols_, f.zero());
    std::vector<Element> pw(rows(), f.one());
    for (std::size_t j = 0; j < cols_; ++j) {
      auto acc = f.zero();
      for (std::size_t i = 0; i < rows(); ++i) {
        acc = f.add(acc, f.mul(pw[i], y[i]));
        if (j + 1 < cols_) pw[i] = f.mul(pw[i], x_[i]);
      }
      out[j] = std::move(acc);
    }
    return out;
  }

  /// det(V) = prod_{i<j} (x_j - x_i) for square V.
  Element det(const F& f) const {
    assert(rows() == cols_);
    auto acc = f.one();
    for (std::size_t i = 0; i < rows(); ++i) {
      for (std::size_t j = i + 1; j < rows(); ++j) {
        acc = f.mul(acc, f.sub(x_[j], x_[i]));
      }
    }
    return acc;
  }

  /// Solves V c = values by interpolation (the O(n^2) fast path that the
  /// generic solver is checked against).
  std::vector<Element> solve(const kp::poly::PolyRing<F>& ring,
                             const std::vector<Element>& values) const {
    assert(rows() == cols_ && values.size() == rows());
    auto p = kp::poly::interpolate(ring, x_, values);
    p.resize(cols_, ring.base().zero());
    return p;
  }

 private:
  std::vector<Element> x_;
  std::size_t cols_;
};

/// Diagonal matrix helper (the Theorem-2 "D" preconditioner).
template <kp::field::CommutativeRing R>
class Diagonal {
 public:
  using Element = typename R::Element;

  explicit Diagonal(std::vector<Element> d) : d_(std::move(d)) {}

  template <kp::field::Field F = R>
  static Diagonal random(const F& f, std::size_t n, kp::util::Prng& prng,
                         std::uint64_t s) {
    std::vector<Element> d(n);
    for (auto& e : d) e = f.sample(prng, s);
    return Diagonal(std::move(d));
  }

  std::size_t dim() const { return d_.size(); }
  const std::vector<Element>& entries() const { return d_; }

  std::vector<Element> apply(const R& r, const std::vector<Element>& x) const {
    assert(x.size() == d_.size());
    std::vector<Element> out(x.size(), r.zero());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = r.mul(d_[i], x[i]);
    return out;
  }

  Element det(const R& r) const {
    auto acc = r.one();
    for (const auto& e : d_) acc = r.mul(acc, e);
    return acc;
  }

  Matrix<R> to_dense(const R& r) const {
    Matrix<R> out(d_.size(), d_.size(), r.zero());
    for (std::size_t i = 0; i < d_.size(); ++i) out.at(i, i) = d_[i];
    return out;
  }

 private:
  std::vector<Element> d_;
};

}  // namespace kp::matrix

// Gaussian elimination over an abstract field.
//
// This is the paper's sequential baseline ("Gaussian elimination is a
// sequential method for all these computational problems over abstract
// fields", Bunch & Hopcroft 1974): determinant, linear solve, inverse, rank,
// and nullspace, all by PLU elimination with nonzero pivoting (over an
// abstract field any nonzero pivot is as good as any other).  The benches
// compare the randomized parallel pipeline against these routines for
// correctness and for work counts.
#pragma once

#include <cassert>
#include <optional>
#include <vector>

#include "matrix/dense.h"

namespace kp::matrix {

/// PLU factorization: perm applied to rows of A gives L*U, with L unit lower
/// triangular.  rank is the number of nonzero pivots found.
template <kp::field::Field F>
struct Plu {
  Matrix<F> lu;                   ///< packed L (below diag) and U (on/above)
  std::vector<std::size_t> perm;  ///< row i of L*U is row perm[i] of A
  std::size_t rank = 0;
  typename F::Element det;        ///< determinant of square A (zero if singular)
  int perm_sign = 1;
};

/// Computes a PLU factorization with nonzero pivoting; works for any shape.
template <kp::field::Field F>
Plu<F> plu_decompose(const F& f, Matrix<F> a) {
  const std::size_t m = a.rows(), n = a.cols();
  Plu<F> out{std::move(a), {}, 0, f.one(), 1};
  out.perm.resize(m);
  for (std::size_t i = 0; i < m; ++i) out.perm[i] = i;

  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < n && pivot_row < m; ++col) {
    // Find any row with a nonzero entry in this column.
    std::size_t sel = pivot_row;
    while (sel < m && f.is_zero(out.lu.at(sel, col))) ++sel;
    if (sel == m) continue;  // entire column is zero below the pivot row
    if (sel != pivot_row) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(out.lu.at(sel, j), out.lu.at(pivot_row, j));
      }
      std::swap(out.perm[sel], out.perm[pivot_row]);
      out.perm_sign = -out.perm_sign;
    }
    const auto pivot_inv = f.inv(out.lu.at(pivot_row, col));
    for (std::size_t i = pivot_row + 1; i < m; ++i) {
      if (f.eq(out.lu.at(i, col), f.zero())) continue;
      const auto factor = f.mul(out.lu.at(i, col), pivot_inv);
      out.lu.at(i, col) = factor;  // store the L entry in place
      for (std::size_t j = col + 1; j < n; ++j) {
        out.lu.at(i, j) =
            f.sub(out.lu.at(i, j), f.mul(factor, out.lu.at(pivot_row, j)));
      }
    }
    ++pivot_row;
    ++out.rank;
  }

  // Determinant of a square matrix: product of pivots times the sign.
  if (m == n) {
    if (out.rank < n) {
      out.det = f.zero();
    } else {
      auto det = f.one();
      for (std::size_t i = 0; i < n; ++i) det = f.mul(det, out.lu.at(i, i));
      out.det = out.perm_sign < 0 ? f.neg(det) : det;
    }
  } else {
    out.det = f.zero();
  }
  return out;
}

template <kp::field::Field F>
typename F::Element det_gauss(const F& f, const Matrix<F>& a) {
  assert(a.is_square());
  return plu_decompose(f, a).det;
}

template <kp::field::Field F>
std::size_t rank_gauss(const F& f, const Matrix<F>& a) {
  return plu_decompose(f, a).rank;
}

/// Solves A x = b for square A; nullopt when A is singular (this baseline is
/// deterministic, unlike the paper's pipeline which reports failure).
template <kp::field::Field F>
std::optional<std::vector<typename F::Element>> solve_gauss(
    const F& f, const Matrix<F>& a, const std::vector<typename F::Element>& b) {
  assert(a.is_square() && a.rows() == b.size());
  const std::size_t n = a.rows();
  const Plu<F> fac = plu_decompose(f, a);
  if (fac.rank < n) return std::nullopt;

  // Forward substitution L y = P b.
  std::vector<typename F::Element> y(n, f.zero());
  for (std::size_t i = 0; i < n; ++i) {
    auto acc = b[fac.perm[i]];
    for (std::size_t j = 0; j < i; ++j) {
      acc = f.sub(acc, f.mul(fac.lu.at(i, j), y[j]));
    }
    y[i] = std::move(acc);
  }
  // Back substitution U x = y.
  std::vector<typename F::Element> x(n, f.zero());
  for (std::size_t i = n; i-- > 0;) {
    auto acc = y[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      acc = f.sub(acc, f.mul(fac.lu.at(i, j), x[j]));
    }
    x[i] = f.div(acc, fac.lu.at(i, i));
  }
  return x;
}

/// Inverse of a square matrix; nullopt when singular.
template <kp::field::Field F>
std::optional<Matrix<F>> inverse_gauss(const F& f, const Matrix<F>& a) {
  assert(a.is_square());
  const std::size_t n = a.rows();
  // Gauss-Jordan on [A | I].
  Matrix<F> w(n, 2 * n, f.zero());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) w.at(i, j) = a.at(i, j);
    w.at(i, n + i) = f.one();
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t sel = col;
    while (sel < n && f.is_zero(w.at(sel, col))) ++sel;
    if (sel == n) return std::nullopt;
    if (sel != col) {
      for (std::size_t j = 0; j < 2 * n; ++j) std::swap(w.at(sel, j), w.at(col, j));
    }
    const auto inv = f.inv(w.at(col, col));
    for (std::size_t j = col; j < 2 * n; ++j) w.at(col, j) = f.mul(w.at(col, j), inv);
    for (std::size_t i = 0; i < n; ++i) {
      if (i == col || f.eq(w.at(i, col), f.zero())) continue;
      const auto factor = w.at(i, col);
      for (std::size_t j = col; j < 2 * n; ++j) {
        w.at(i, j) = f.sub(w.at(i, j), f.mul(factor, w.at(col, j)));
      }
    }
  }
  Matrix<F> out(n, n, f.zero());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) out.at(i, j) = w.at(i, n + j);
  }
  return out;
}

/// Reduced row echelon form; returns the pivot column indices.
template <kp::field::Field F>
std::vector<std::size_t> rref_inplace(const F& f, Matrix<F>& a) {
  std::vector<std::size_t> pivots;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < a.cols() && pivot_row < a.rows(); ++col) {
    std::size_t sel = pivot_row;
    while (sel < a.rows() && f.is_zero(a.at(sel, col))) ++sel;
    if (sel == a.rows()) continue;
    if (sel != pivot_row) {
      for (std::size_t j = 0; j < a.cols(); ++j) {
        std::swap(a.at(sel, j), a.at(pivot_row, j));
      }
    }
    const auto inv = f.inv(a.at(pivot_row, col));
    for (std::size_t j = col; j < a.cols(); ++j) {
      a.at(pivot_row, j) = f.mul(a.at(pivot_row, j), inv);
    }
    for (std::size_t i = 0; i < a.rows(); ++i) {
      if (i == pivot_row || f.eq(a.at(i, col), f.zero())) continue;
      const auto factor = a.at(i, col);
      for (std::size_t j = col; j < a.cols(); ++j) {
        a.at(i, j) = f.sub(a.at(i, j), f.mul(factor, a.at(pivot_row, j)));
      }
    }
    pivots.push_back(col);
    ++pivot_row;
  }
  return pivots;
}

/// Basis of the right nullspace as matrix columns (n x (n - rank)).
template <kp::field::Field F>
Matrix<F> nullspace_gauss(const F& f, Matrix<F> a) {
  const std::size_t n = a.cols();
  const std::vector<std::size_t> pivots = rref_inplace(f, a);
  std::vector<bool> is_pivot(n, false);
  for (std::size_t c : pivots) is_pivot[c] = true;

  Matrix<F> basis(n, n - pivots.size(), f.zero());
  std::size_t out_col = 0;
  for (std::size_t free_col = 0; free_col < n; ++free_col) {
    if (is_pivot[free_col]) continue;
    basis.at(free_col, out_col) = f.one();
    for (std::size_t pr = 0; pr < pivots.size(); ++pr) {
      basis.at(pivots[pr], out_col) = f.neg(a.at(pr, free_col));
    }
    ++out_col;
  }
  return basis;
}

}  // namespace kp::matrix

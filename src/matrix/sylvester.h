// Sylvester matrices -- the structured-matrix extension of section 5.
//
// The paper notes that the Toeplitz machinery "extends to structured
// Toeplitz-like matrices such as Sylvester matrices", giving parallel
// polynomial GCD and Euclidean-scheme computations.  The Sylvester matrix
// S(f, g) of f (degree df) and g (degree dg) is the (df+dg) x (df+dg)
// matrix whose transpose maps coefficient vectors (u, v) with deg u < dg,
// deg v < df to the coefficients of u*f + v*g:
//
//   det S = Res(f, g),   dim ker S = deg gcd(f, g).
//
// Products with S (and its transpose) are two polynomial multiplications,
// O(M(n)) -- the "Toeplitz-like" structure the paper exploits.
#pragma once

#include <cassert>
#include <vector>

#include "matrix/dense.h"
#include "poly/poly.h"

namespace kp::matrix {

/// Sylvester matrix of two non-zero polynomials.
template <kp::field::Field F>
class Sylvester {
 public:
  using Element = typename F::Element;
  using Poly = typename kp::poly::PolyRing<F>::Element;

  Sylvester(const kp::poly::PolyRing<F>& ring, Poly f, Poly g)
      : ring_(&ring), f_(std::move(f)), g_(std::move(g)) {
    assert(!f_.empty() && !g_.empty() && "Sylvester matrix needs non-zero inputs");
  }

  std::size_t df() const { return f_.size() - 1; }
  std::size_t dg() const { return g_.size() - 1; }
  std::size_t dim() const { return df() + dg(); }
  const Poly& f() const { return f_; }
  const Poly& g() const { return g_; }

  /// Row-major dense form, in the classical layout: the first dg rows are
  /// the shifted coefficients of f (high to low), the last df rows those of
  /// g; column j corresponds to the coefficient of x^{dim-1-j}.
  Matrix<F> to_dense(const F& fld) const {
    const std::size_t n = dim();
    Matrix<F> out(n, n, fld.zero());
    for (std::size_t r = 0; r < dg(); ++r) {
      for (std::size_t i = 0; i <= df(); ++i) {
        out.at(r, r + i) = f_[df() - i];
      }
    }
    for (std::size_t r = 0; r < df(); ++r) {
      for (std::size_t i = 0; i <= dg(); ++i) {
        out.at(dg() + r, r + i) = g_[dg() - i];
      }
    }
    return out;
  }

  /// S^T * (u | v) = coefficients of u*f + v*g, as two polynomial products.
  /// Input: u has dg entries (coeff of x^{dg-1} first), v has df entries;
  /// output: df+dg entries (coeff of x^{df+dg-1} first), matching to_dense.
  std::vector<Element> apply_transpose(const std::vector<Element>& uv) const {
    assert(uv.size() == dim());
    const F& fld = ring_->base();
    // Unpack into little-endian polynomials.
    Poly u(dg());
    for (std::size_t i = 0; i < dg(); ++i) u[i] = uv[dg() - 1 - i];
    Poly v(df());
    for (std::size_t i = 0; i < df(); ++i) v[i] = uv[dim() - 1 - i];
    ring_->strip(u);
    ring_->strip(v);
    const auto h = ring_->add(ring_->mul(u, f_), ring_->mul(v, g_));
    std::vector<Element> out(dim(), fld.zero());
    for (std::size_t i = 0; i < dim(); ++i) out[i] = ring_->coeff(h, dim() - 1 - i);
    return out;
  }

 private:
  const kp::poly::PolyRing<F>* ring_;
  Poly f_, g_;
};

}  // namespace kp::matrix

// Deterministic, fast pseudo-random number generation for the library.
//
// The paper's algorithms are randomized; all randomness in this library flows
// through kp::util::Prng so that every experiment is reproducible from a
// 64-bit seed.  The generator is xoshiro256** (Blackman & Vigna), which has a
// 256-bit state, passes BigCrush, and is far faster than std::mt19937_64.
//
// Seeding contract:
//   * The 256-bit state is expanded from the 64-bit seed by iterating
//     splitmix64, as the xoshiro authors recommend: the four words are the
//     four successive splitmix64 outputs, so they are decorrelated even for
//     adjacent or small seeds (including 0 -- splitmix64(0..3) is a full
//     avalanche, not a weak state; an all-zero xoshiro state, the one truly
//     degenerate input, is additionally guarded against below).
//   * seed() returns the value the generator was (re)seeded with, so callers
//     can record it in diagnostics (util::Diag) and replay a failing attempt
//     in isolation.
//   * fork(tag) derives an independent child stream from the parent: it
//     consumes one parent output and mixes it with the tag, so (a) distinct
//     tags give decorrelated streams, (b) repeated forks with the same tag
//     give fresh streams, and (c) the child records its own 64-bit seed.
//     Stage-targeted retries fork one stream per randomized component
//     (preconditioner, projection) and re-draw only the implicated one.
#pragma once

#include <cstdint>
#include <limits>

namespace kp::util {

/// xoshiro256** 1.0 pseudo-random generator.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
/// used with <random> distributions as well as directly.
class Prng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from a single seed value using
  /// splitmix64, as recommended by the xoshiro authors.
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    seed_ = seed;
    for (auto& word : state_) word = splitmix64(seed);
    // xoshiro's only invalid state is all-zero (it is a fixed point).  No
    // 64-bit seed actually produces it through splitmix64, but guard anyway
    // so the invariant is local and future-proof.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
      state_[0] = 0x9e3779b97f4a7c15ULL;
    }
  }

  /// The seed this generator was last (re)seeded with -- recorded in Diag so
  /// any attempt's randomness can be replayed.
  std::uint64_t seed() const { return seed_; }

  /// Splits off an independent, reproducible child stream keyed by `tag`.
  /// Consumes one output of this generator, so successive forks (even with
  /// equal tags) differ, while the same parent seed + same fork sequence
  /// replays identically.
  Prng fork(std::uint64_t tag) { return Prng(mix64((*this)() ^ mix64(tag))); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    while (true) {
      const std::uint64_t x = (*this)();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= std::uint64_t(-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform value in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Fair coin.
  bool coin() { return ((*this)() >> 63) != 0; }

  /// splitmix64 finalizer as a pure function -- the standard 64-bit mixer,
  /// used by fork() to decorrelate tags from stream values.
  static constexpr std::uint64_t mix64(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  static std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4];
  std::uint64_t seed_ = 0;
};

}  // namespace kp::util

// Minimal fixed-width table printer used by the benchmark harnesses to emit
// the rows/series each experiment reports (EXPERIMENTS.md records these).
#pragma once

#include <string>
#include <vector>

namespace kp::util {

/// Accumulates rows of string cells and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; the row must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table (header, rule, rows) to stdout.
  void print() const;

  /// Formats a double with `digits` significant digits.
  static std::string num(double v, int digits = 4);
  /// Formats an integer with thousands separators.
  static std::string num(std::uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Least-squares slope of log2(y) against log2(x): the measured growth
/// exponent of a size/work series, reported next to the paper's bound.
double fit_exponent(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace kp::util

// Failure taxonomy and diagnostics for the Las Vegas pipeline.
//
// Every stage of the Theorem-4 pipeline is Monte Carlo: a would-be division
// by zero (probability <= 3n^2/|S| per attempt, estimate (2) + Lemma 2)
// surfaces as a *detected* failure, never a wrong answer.  The paper's three
// independent failure events map onto distinct FailureKinds:
//
//   * the u/v projection loses information (Lemma 2, deg f_u < n)
//                                   -> kDegenerateProjection, re-draw u, v;
//   * the Hankel/diagonal preconditioner is singular or fails Theorem 2 /
//     estimate (1) (minpoly != charpoly)
//                                   -> kSingularPrecondition /
//                                      kZeroConstantTerm, re-draw H, D;
//   * the verified candidate mismatches (an undetected combination of both)
//                                   -> kVerifyMismatch, full restart.
//
// Status carries the kind + stage of the first detected failure; Diag is the
// per-attempt record (which randomness was drawn from which seed, how much
// work the attempt cost) that makes a failed run diagnosable after the fact.
// The taxonomy is shared by kp_solve / kp_det / wiedemann_* /
// toeplitz_solve_charpoly / field_lift; the legacy optional/empty-returning
// APIs remain as thin wrappers over the Status-returning ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/op_count.h"

namespace kp::util {

/// What failed.  Ordered roughly by "how targeted the recovery can be".
enum class FailureKind : std::uint8_t {
  kNone = 0,               ///< success
  kDegenerateProjection,   ///< u/v projection lost information (deg f_u < n)
  kSingularPrecondition,   ///< H or D singular (det(H D) = 0)
  kZeroConstantTerm,       ///< f(0) = 0: A-tilde singular (A, H, or D)
  kVerifyMismatch,         ///< candidate failed the Las Vegas check A x = b
  kSampleSetTooSmall,      ///< |S| < 3 n^2: the est.-(2) bound is vacuous
  kSingularInput,          ///< deterministically confirmed det(A) = 0
  kInvalidArgument,        ///< malformed input (non-square, dim mismatch, ...)
  kOpBudgetExhausted,      ///< per-attempt op budget hit; degraded to baseline
  kInjectedFault,          ///< synthetic failure from the fault harness
  kDivisionByZero,         ///< a kernel was asked to invert a zero element
  kBadPrime,               ///< a CRT shard's prime divides det (or the shard
                           ///< failed deterministically under the shared
                           ///< transcript); redraw ONLY the prime
  // Service-layer kinds (core/service.h).  These are not pipeline failures:
  // they mean the caller stopped wanting the answer or the service refused
  // the work, so retry loops must not burn attempts on them.
  kDeadlineExceeded,       ///< request deadline passed (util/deadline.h)
  kCancelled,              ///< request cooperatively cancelled by the client
  kQueueOverflow,          ///< admission queue full; request shed (backpressure)
  kSessionQuarantined,     ///< session circuit-breaker open after repeated
                           ///< kVerifyMismatch; failing fast without pool time
  kShutdown,               ///< service/pool shut down before the work ran
};

/// Number of FailureKind enumerators (kNone included).  Keep in lockstep
/// with the enum; the name table below static_asserts against it.
inline constexpr int kFailureKindCount = 17;

/// Where it failed.  Stages double as fault-injection trigger keys
/// (util/fault.h), so the count below must track the enumerators.
enum class Stage : std::uint8_t {
  kNone = 0,
  kDraw,             ///< sampling the attempt's randomness
  kPrecondition,     ///< Theorem-2 H, D (draw, det, zero checks)
  kProjection,       ///< u A-tilde^i v sequence and its Lemma-1 Toeplitz
  kCharpoly,         ///< generator/charpoly recovery (g(0) zero check)
  kNewtonToeplitz,   ///< section-3 Newton-on-Toeplitz solve (det(T) check)
  kGohbergSemencul,  ///< Gohberg-Semencul construction ((T^-1)_{1,1} check)
  kSolveFinish,      ///< Cayley-Hamilton finish / unpreconditioning
  kVerify,           ///< Las Vegas verification A x = b
  kLift,             ///< section-5 field extension lift
  kCircuitEval,      ///< evaluating a recorded circuit / compiled tape
  kBlockProjection,  ///< block Krylov sequence U A^i V (width-b projections)
  kBlockGenerator,   ///< sigma-basis / matrix-BM generator recovery
  kCrtShard,                 ///< one word-size residue solve of a CRT-sharded run
  kRationalReconstruction,   ///< CRT recombination / rational reconstruction
  // Service-layer stages (core/service.h); fault-injection trigger keys like
  // every other stage, so each admission/batch/execute edge is testable.
  kServiceAdmission,         ///< admission queue: enqueue, backpressure, shed
  kServiceBatch,             ///< cross-request RHS coalescing into one batch
  kServiceExecute,           ///< running a coalesced batch on the pool
};

inline constexpr int kStageCount = 18;

namespace detail {

// Name tables indexed by enumerator value.  The static_asserts pin BOTH the
// table size and the last enumerator, so adding a FailureKind/Stage without
// naming it -- or renumbering the enum -- is a compile error, not an
// "unknown" string at runtime.
inline constexpr const char* kFailureKindNames[] = {
    "ok",
    "degenerate-projection",
    "singular-precondition",
    "zero-constant-term",
    "verify-mismatch",
    "sample-set-too-small",
    "singular-input",
    "invalid-argument",
    "op-budget-exhausted",
    "injected-fault",
    "division-by-zero",
    "bad-prime",
    "deadline-exceeded",
    "cancelled",
    "queue-overflow",
    "session-quarantined",
    "shutdown",
};
static_assert(sizeof(kFailureKindNames) / sizeof(kFailureKindNames[0]) ==
                  kFailureKindCount,
              "kFailureKindNames must name every FailureKind enumerator");
static_assert(static_cast<int>(FailureKind::kShutdown) + 1 ==
                  kFailureKindCount,
              "kFailureKindCount must track the FailureKind enum");

inline constexpr const char* kStageNames[] = {
    "none",
    "draw",
    "precondition",
    "projection",
    "charpoly",
    "newton-toeplitz",
    "gohberg-semencul",
    "solve-finish",
    "verify",
    "lift",
    "circuit-eval",
    "block-projection",
    "block-generator",
    "crt-shard",
    "rational-reconstruction",
    "service-admission",
    "service-batch",
    "service-execute",
};
static_assert(sizeof(kStageNames) / sizeof(kStageNames[0]) == kStageCount,
              "kStageNames must name every Stage enumerator");
static_assert(static_cast<int>(Stage::kServiceExecute) + 1 == kStageCount,
              "kStageCount must track the Stage enum");

}  // namespace detail

inline const char* to_string(FailureKind k) {
  const auto i = static_cast<std::size_t>(k);
  return i < static_cast<std::size_t>(kFailureKindCount)
             ? detail::kFailureKindNames[i]
             : "unknown";
}

inline const char* to_string(Stage s) {
  const auto i = static_cast<std::size_t>(s);
  return i < static_cast<std::size_t>(kStageCount) ? detail::kStageNames[i]
                                                   : "unknown";
}

/// Outcome of an operation: success, or the first detected failure with its
/// kind, stage, and a short human-readable detail.  Cheap to copy; the
/// detail string is empty on the success path.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }

  static Status Fail(FailureKind kind, Stage stage, std::string detail = {}) {
    Status st;
    st.kind_ = kind;
    st.stage_ = stage;
    st.detail_ = std::move(detail);
    return st;
  }

  /// A failure forced by the fault harness (util/fault.h).  It reports the
  /// NATURAL kind of its site -- so the retry policy targets the same
  /// component a real failure would -- and is flagged so Diag records can
  /// tell synthetic failures from organic ones.
  static Status Injected(FailureKind kind, Stage stage) {
    Status st = Fail(kind, stage, "injected");
    st.injected_ = true;
    return st;
  }

  bool ok() const { return kind_ == FailureKind::kNone; }
  FailureKind kind() const { return kind_; }
  Stage stage() const { return stage_; }
  bool injected() const { return injected_; }
  const std::string& detail() const { return detail_; }

  /// "<kind> at <stage>[: detail]" -- for logs and test failure messages.
  std::string message() const {
    if (ok()) return "ok";
    std::string m = to_string(kind_);
    m += " at ";
    m += to_string(stage_);
    if (!detail_.empty()) {
      m += ": ";
      m += detail_;
    }
    return m;
  }

 private:
  FailureKind kind_ = FailureKind::kNone;
  Stage stage_ = Stage::kNone;
  bool injected_ = false;
  std::string detail_;
};

/// Returns Ok when `cond` holds, the given failure otherwise -- the one-line
/// precondition validator used by the public entry points in core/ so that
/// release builds reject malformed inputs instead of invoking UB.
inline Status Require(bool cond, FailureKind kind, Stage stage,
                      const char* detail) {
  return cond ? Status::Ok() : Status::Fail(kind, stage, detail);
}

/// A value or a Status -- the return type of the Status-threaded variants of
/// APIs whose legacy form signals failure with an empty container/nullopt.
template <class T>
class StatusOr {
 public:
  StatusOr(T value)  // NOLINT(google-explicit-constructor): by design
      : value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const { return value_; }
  T&& take() { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

/// One attempt of a Las Vegas loop: what randomness it used (stage-split
/// seeds, so a failure is reproducible in isolation), what was re-drawn
/// relative to the previous attempt, how it failed, and what it cost.
struct Diag {
  FailureKind kind = FailureKind::kNone;
  Stage stage = Stage::kNone;
  int attempt = 0;                       ///< 1-based attempt index
  std::uint64_t precondition_seed = 0;   ///< seed of the H/D stream
  std::uint64_t projection_seed = 0;     ///< seed of the u/v stream
  bool redrew_precondition = false;      ///< H, D freshly drawn this attempt
  bool redrew_projection = false;        ///< u, v freshly drawn this attempt
  bool injected = false;                 ///< failure came from util/fault.h
  std::uint64_t sample_size = 0;         ///< |S| this attempt used
  OpCounts ops;                          ///< field ops this attempt cost
  /// CRT sharding (core/crt_shard.h): the word-size modulus this record's
  /// residue solve ran over (0 for non-sharded attempts), and the position
  /// of the prime in the deterministic stream (-1 for non-sharded attempts).
  /// A kBadPrime record followed by a record with a larger stream index and
  /// the SAME transcript seed is the prime-only redraw in action.
  std::uint64_t shard_modulus = 0;
  std::int64_t shard_prime_index = -1;
};

/// One-line JSON object for a Diag record -- the structured form the service
/// telemetry (core/service.h) and the benches emit instead of hand-formatted
/// rows.  All fields are numbers, bools, or enum names from the
/// static_assert-pinned tables above, so no string escaping is needed.
inline std::string to_json(const Diag& d) {
  std::string j = "{";
  auto field = [&j](const char* key, const std::string& val, bool quote) {
    if (j.size() > 1) j += ",";
    j += "\"";
    j += key;
    j += "\":";
    if (quote) j += "\"";
    j += val;
    if (quote) j += "\"";
  };
  field("kind", to_string(d.kind), true);
  field("stage", to_string(d.stage), true);
  field("attempt", std::to_string(d.attempt), false);
  field("precondition_seed", std::to_string(d.precondition_seed), false);
  field("projection_seed", std::to_string(d.projection_seed), false);
  field("redrew_precondition", d.redrew_precondition ? "true" : "false",
        false);
  field("redrew_projection", d.redrew_projection ? "true" : "false", false);
  field("injected", d.injected ? "true" : "false", false);
  field("sample_size", std::to_string(d.sample_size), false);
  field("ops_add", std::to_string(d.ops.add), false);
  field("ops_mul", std::to_string(d.ops.mul), false);
  field("ops_div", std::to_string(d.ops.div), false);
  field("ops_zero_test", std::to_string(d.ops.zero_test), false);
  field("shard_modulus", std::to_string(d.shard_modulus), false);
  field("shard_prime_index", std::to_string(d.shard_prime_index), false);
  j += "}";
  return j;
}

}  // namespace kp::util

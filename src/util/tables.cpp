#include "util/tables.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace kp::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  std::printf("|");
  for (std::size_t c = 0; c < header_.size(); ++c) {
    std::printf("%s|", std::string(width[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double v, int digits) {
  std::ostringstream os;
  os.precision(digits);
  os << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

double fit_exponent(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size() && xs.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double lx = std::log2(xs[i]);
    const double ly = std::log2(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace kp::util

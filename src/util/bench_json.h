// Machine-readable benchmark output.
//
// Every bench binary emits BENCH_<name>.json next to its stdout tables so
// runs can be diffed across commits without scraping text.  The schema is
// flat on purpose: one object with the bench name, the git revision the
// binary was built from, the pooled worker count, and an array of rows of
// key/value pairs (sizes, wall times, op counts).
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "pram/parallel_for.h"

#ifndef KP_GIT_REV
#define KP_GIT_REV "unknown"
#endif

namespace kp::util {

/// Monotonic wall-clock stopwatch for the benches.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Collects rows and writes BENCH_<name>.json on write() (or destruction).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}
  ~BenchReport() {
    if (!written_) write();
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Starts a new row; subsequent put() calls land in it.
  void begin_row(const std::string& label) {
    rows_.emplace_back();
    put("label", label);
  }

  void put(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, quote(value));
  }
  void put(const std::string& key, const char* value) {
    put(key, std::string(value));
  }
  void put(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    rows_.back().emplace_back(key, buf);
  }
  void put(const std::string& key, std::uint64_t value) {
    rows_.back().emplace_back(key, std::to_string(value));
  }
  void put(const std::string& key, int value) {
    rows_.back().emplace_back(key, std::to_string(value));
  }
  void put(const std::string& key, bool value) {
    rows_.back().emplace_back(key, value ? "true" : "false");
  }

  /// Embeds an already-serialized JSON value verbatim (object or array) --
  /// how structured records like util::to_json(Diag) land in a row without
  /// being re-quoted into a string.
  void put_json(const std::string& key, std::string raw_json) {
    rows_.back().emplace_back(key, std::move(raw_json));
  }

  /// Writes BENCH_<name>.json in the current directory.
  void write() {
    written_ = true;
    std::ofstream out("BENCH_" + name_ + ".json");
    out << "{\n";
    out << "  \"bench\": " << quote(name_) << ",\n";
    out << "  \"git_rev\": " << quote(KP_GIT_REV) << ",\n";
    out << "  \"workers\": " << kp::pram::worker_count() << ",\n";
    out << "  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << (i ? ",\n    {" : "\n    {");
      for (std::size_t k = 0; k < rows_[i].size(); ++k) {
        if (k) out << ", ";
        out << quote(rows_[i][k].first) << ": " << rows_[i][k].second;
      }
      out << "}";
    }
    out << "\n  ]\n}\n";
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
  bool written_ = false;
};

}  // namespace kp::util

// Deterministic fault injection for the Las Vegas failure paths.
//
// The pipeline's failure events have probability <= 3n^2/|S| -- far too rare
// to exercise the recovery code by luck.  This harness lets a test force any
// zero-check site to report its failure deterministically, keyed by
// stage x attempt x site-index:
//
//   kp::util::fault::ScopedFault fi(util::Stage::kProjection, /*attempt=*/1);
//   auto res = core::kp_solve(f, a, b, prng);   // attempt 1 fails, 2 recovers
//
// Sites are the existing division/zero-check points of the charpoly,
// Newton-on-Toeplitz, Gohberg-Semencul, and preconditioner paths, wrapped as
//
//   if (f.is_zero(p[0]) || KP_FAULT_POINT(util::Stage::kNewtonToeplitz)) ...
//
// so an injected fault takes exactly the branch a real unlucky draw would.
//
// Determinism: the per-stage site counters and the current attempt are
// thread-local, and every site in the library executes on the submitting
// thread (pool workers only run data-parallel kernels, which contain no
// zero-check sites), so triggering is bit-identical for 1..N pool workers.
//
// Overhead: compiled out entirely when KP_FAULT_INJECTION is not defined
// (KP_FAULT_POINT folds to `false`); when compiled in but no fault is armed,
// a site costs one relaxed atomic load.  Arming/disarming is mutex-guarded
// and thread-safe.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/status.h"

#if defined(KP_FAULT_INJECTION) && KP_FAULT_INJECTION
#define KP_FAULT_INJECTION_ENABLED 1
#else
#define KP_FAULT_INJECTION_ENABLED 0
#endif

namespace kp::util::fault {

#if KP_FAULT_INJECTION_ENABLED

namespace detail {

/// Per-thread trigger context: the Las Vegas attempt currently executing and
/// how many times each stage's sites have been hit within it.
struct ThreadState {
  int attempt = 0;
  std::array<std::uint32_t, kStageCount> hits{};
};

inline ThreadState& tls() {
  thread_local ThreadState state;
  return state;
}

struct Armed {
  std::uint64_t id = 0;
  Stage stage = Stage::kNone;
  int attempt = -1;     ///< -1: any attempt
  int site_index = -1;  ///< -1: any hit of the stage within the attempt
  bool one_shot = true;
  std::uint32_t fired = 0;
};

/// Global registry of armed faults.  The hot path (nothing armed) is a
/// single relaxed atomic load; the armed path takes the mutex.
class Registry {
 public:
  static Registry& instance() {
    static Registry reg;
    return reg;
  }

  std::uint64_t arm(Stage stage, int attempt, int site_index, bool one_shot) {
    std::lock_guard<std::mutex> lk(m_);
    Armed a;
    a.id = next_id_++;
    a.stage = stage;
    a.attempt = attempt;
    a.site_index = site_index;
    a.one_shot = one_shot;
    armed_.push_back(a);
    active_.store(static_cast<int>(armed_.size()), std::memory_order_relaxed);
    return a.id;
  }

  /// Removes the fault; returns how many times it fired.
  std::uint32_t disarm(std::uint64_t id) {
    std::lock_guard<std::mutex> lk(m_);
    std::uint32_t fired = 0;
    for (std::size_t i = 0; i < armed_.size(); ++i) {
      if (armed_[i].id == id) {
        fired = armed_[i].fired;
        armed_.erase(armed_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    active_.store(static_cast<int>(armed_.size()), std::memory_order_relaxed);
    return fired;
  }

  std::uint32_t fired(std::uint64_t id) {
    std::lock_guard<std::mutex> lk(m_);
    for (const auto& a : armed_) {
      if (a.id == id) return a.fired;
    }
    return 0;
  }

  bool active() const { return active_.load(std::memory_order_relaxed) != 0; }

  /// Site entry: counts the hit and reports whether an armed fault matches.
  bool should_fail(Stage stage) {
    auto& t = tls();
    const std::uint32_t index = t.hits[static_cast<int>(stage)]++;
    std::lock_guard<std::mutex> lk(m_);
    for (auto& a : armed_) {
      if (a.stage != stage) continue;
      if (a.attempt >= 0 && a.attempt != t.attempt) continue;
      if (a.site_index >= 0 &&
          static_cast<std::uint32_t>(a.site_index) != index) {
        continue;
      }
      if (a.one_shot && a.fired > 0) continue;
      ++a.fired;
      return true;
    }
    return false;
  }

 private:
  std::mutex m_;
  std::vector<Armed> armed_;
  std::atomic<int> active_{0};
  std::uint64_t next_id_ = 1;
};

}  // namespace detail

/// Site predicate -- use through KP_FAULT_POINT so disabled builds fold the
/// call away entirely.
inline bool should_fail(Stage stage) {
  auto& reg = detail::Registry::instance();
  if (!reg.active()) return false;
  return reg.should_fail(stage);
}

/// Marks the extent of one Las Vegas attempt on this thread: sets the
/// attempt index and zeroes the per-stage site counters, restoring the
/// previous context on destruction (attempt loops may nest, e.g. field_lift
/// around kp_solve).
class AttemptScope {
 public:
  explicit AttemptScope(int attempt) : saved_(detail::tls()) {
    detail::tls().attempt = attempt;
    detail::tls().hits = {};
  }
  ~AttemptScope() { detail::tls() = saved_; }
  AttemptScope(const AttemptScope&) = delete;
  AttemptScope& operator=(const AttemptScope&) = delete;

 private:
  detail::ThreadState saved_;
};

/// RAII armed fault for tests: fires at the matching stage/attempt/site and
/// disarms on destruction.  attempt/site_index of -1 are wildcards;
/// one_shot=false keeps firing on every match (e.g. to exhaust a retry
/// loop).
class ScopedFault {
 public:
  explicit ScopedFault(Stage stage, int attempt = -1, int site_index = -1,
                       bool one_shot = true)
      : id_(detail::Registry::instance().arm(stage, attempt, site_index,
                                             one_shot)) {}
  ~ScopedFault() { detail::Registry::instance().disarm(id_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  /// How many times this fault has fired so far.
  std::uint32_t fired() const {
    return detail::Registry::instance().fired(id_);
  }

 private:
  std::uint64_t id_;
};

#else  // !KP_FAULT_INJECTION_ENABLED: every hook is a no-op the optimizer
       // removes; ScopedFault/AttemptScope keep their shape so test code
       // compiles (tests skip themselves when the harness is compiled out).

inline bool should_fail(Stage) { return false; }

class AttemptScope {
 public:
  explicit AttemptScope(int) {}
};

class ScopedFault {
 public:
  explicit ScopedFault(Stage, int = -1, int = -1, bool = true) {}
  std::uint32_t fired() const { return 0; }
};

#endif  // KP_FAULT_INJECTION_ENABLED

}  // namespace kp::util::fault

/// Fault-injection site: true when a test armed a matching fault.  Folds to
/// `false` (and the site vanishes) when fault injection is compiled out.
#if KP_FAULT_INJECTION_ENABLED
#define KP_FAULT_POINT(stage) (kp::util::fault::should_fail(stage))
#else
#define KP_FAULT_POINT(stage) false
#endif

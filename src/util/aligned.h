// 64-byte-aligned allocation for kernel-facing buffers.
//
// The SIMD backend (field/simd.h) loads matrix rows, sparse values, and NTT
// work buffers as 256/512-bit vectors.  Unaligned loads are architecturally
// legal everywhere we dispatch, but an allocation aligned to the widest
// vector (and to the cache line: 64 bytes covers AVX-512 and every current
// x86/ARM line size) keeps every full block load on the aligned fast path
// and prevents cache-line-split accesses in the hot kernels.
//
// AlignedAllocator is a minimal C++17 allocator over ::operator new with
// std::align_val_t; AlignedVector<T> is the drop-in std::vector rebind used
// by matrix/dense.h and matrix/sparse.h for their backing stores.  Element
// layout, size, and values are unchanged -- only the base address guarantee
// is stronger -- so containers swap allocators without touching any
// arithmetic or accounting.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace kp::util {

/// Alignment of every kernel-facing backing store: one cache line, which is
/// also the widest vector register (AVX-512) the dispatch can select.
inline constexpr std::size_t kSimdAlign = 64;

template <class T, std::size_t Align = kSimdAlign>
class AlignedAllocator {
  static_assert(Align >= alignof(T), "alignment below the type's natural one");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");

 public:
  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;
  using propagate_on_container_move_assignment = std::true_type;
  using is_always_equal = std::true_type;

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  constexpr AlignedAllocator() noexcept = default;
  template <class U>
  constexpr AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// std::vector with a 64-byte-aligned backing store.  Same element layout and
/// semantics as std::vector<T>; data() is guaranteed kSimdAlign-aligned.
template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace kp::util

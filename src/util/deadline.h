// Deadlines and cooperative cancellation for long-running pipelines.
//
// The solver's Las Vegas loops and the service layer (core/service.h) both
// need a way to stop work that is no longer wanted: a request whose client
// deadline passed, a batch whose submitter cancelled, a pool region raced by
// shutdown.  This header provides the one token threaded through all of
// them:
//
//   * Deadline      -- an absolute steady_clock point (or "never");
//   * CancelFlag    -- a shared, thread-safe cancellation latch;
//   * ExecControl   -- the pair, checked at stage boundaries with check().
//
// The contract is COOPERATIVE: nothing is interrupted mid-kernel.  Pipelines
// call control->check(stage) at the same boundaries where KP_FAULT_POINT
// sites live (attempt start, after the Krylov projection, before the
// verification), so a deadline or cancellation surfaces as an ordinary
// util::Status -- FailureKind::kDeadlineExceeded or kCancelled at the stage
// that noticed it -- and flows through the existing Diag machinery.  A null
// ExecControl pointer (the default everywhere) costs nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "util/status.h"

namespace kp::util {

/// An absolute point in time after which work should stop.  Default
/// constructed it never expires; after(d) expires d from now.  Cheap to
/// copy; comparisons use the monotonic steady clock.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< never expires

  static Deadline never() { return Deadline(); }

  static Deadline after(std::chrono::nanoseconds d) {
    Deadline dl;
    dl.has_deadline_ = true;
    dl.at_ = Clock::now() + d;
    return dl;
  }

  static Deadline at(Clock::time_point tp) {
    Deadline dl;
    dl.has_deadline_ = true;
    dl.at_ = tp;
    return dl;
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point time_point() const { return at_; }

  bool expired() const { return has_deadline_ && Clock::now() >= at_; }

  /// Time left before expiry; zero when expired, Clock::duration::max()
  /// when the deadline never expires.  Used by queue waits.
  Clock::duration remaining() const {
    if (!has_deadline_) return Clock::duration::max();
    const auto now = Clock::now();
    return now >= at_ ? Clock::duration::zero() : at_ - now;
  }

  /// The earlier of two deadlines ("never" loses to anything finite) --
  /// how a batch derives its execution deadline from its members.
  static Deadline earlier(const Deadline& a, const Deadline& b) {
    if (!a.has_deadline_) return b;
    if (!b.has_deadline_) return a;
    return a.at_ <= b.at_ ? a : b;
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

/// Shared cancellation latch.  Default constructed it is inert (cannot be
/// cancelled, costs one null check); make() arms an actual shared flag.
/// Copies share the latch, so a client can keep one handle and hand the
/// other to the service.  Cancellation is one-way and sticky.
class CancelFlag {
 public:
  CancelFlag() = default;  ///< inert: cancelled() is always false

  static CancelFlag make() {
    CancelFlag c;
    c.flag_ = std::make_shared<std::atomic<bool>>(false);
    return c;
  }

  bool can_cancel() const { return flag_ != nullptr; }

  /// Latches cancellation.  No-op on an inert flag.
  void cancel() const {
    if (flag_) flag_->store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The cooperative-control token threaded through the pipelines (as
/// SolverOptions::control and through the service's request path): a
/// deadline plus a cancellation flag.  check(stage) is the stage-boundary
/// probe; cancellation is reported before deadline expiry when both hold.
struct ExecControl {
  Deadline deadline;
  CancelFlag cancel;

  ExecControl() = default;
  explicit ExecControl(Deadline d, CancelFlag c = {})
      : deadline(d), cancel(std::move(c)) {}

  /// Ok while the work is still wanted; kCancelled / kDeadlineExceeded at
  /// `where` otherwise.  Cheap: one atomic load plus (with a deadline set)
  /// one steady_clock read.
  Status check(Stage where) const {
    if (cancel.cancelled()) {
      return Status::Fail(FailureKind::kCancelled, where,
                          "request cancelled");
    }
    if (deadline.expired()) {
      return Status::Fail(FailureKind::kDeadlineExceeded, where,
                          "deadline exceeded");
    }
    return Status::Ok();
  }

  /// Null-tolerant probe for call sites holding an optional pointer.
  static Status check(const ExecControl* ctl, Stage where) {
    return ctl ? ctl->check(where) : Status::Ok();
  }
};

/// True when a failure means "the caller stopped wanting the answer", as
/// opposed to a pipeline failure: retry loops must not burn attempts on it
/// and fallbacks must not run after it.
inline bool is_control_failure(FailureKind k) {
  return k == FailureKind::kDeadlineExceeded || k == FailureKind::kCancelled ||
         k == FailureKind::kShutdown;
}

}  // namespace kp::util

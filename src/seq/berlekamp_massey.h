// The Berlekamp-Massey algorithm over an arbitrary field.
//
// Given 2m terms of a sequence whose minimum polynomial has degree <= m,
// Berlekamp-Massey recovers that polynomial in O(n * deg) field operations.
// This is the paper's sequential route to the generating polynomial ("the
// best method is the Berlekamp-Massey algorithm"); the parallel route via
// Toeplitz systems is in seq/newton_toeplitz.h, and the two are checked
// against each other.
#pragma once

#include <cassert>
#include <vector>

#include "field/concepts.h"

namespace kp::seq {

/// Returns the monic minimum polynomial (little-endian coefficients) of the
/// shortest linear recurrence generating the given sequence prefix.  With at
/// least 2*deg(minpoly) terms the result is the true minimum polynomial of
/// the infinite sequence.
template <kp::field::Field F>
std::vector<typename F::Element> berlekamp_massey(
    const F& f, const std::vector<typename F::Element>& seq) {
  using E = typename F::Element;
  // Connection polynomial C(x) = 1 + c_1 x + ... + c_L x^L with
  // s_j = -(c_1 s_{j-1} + ... + c_L s_{j-L}).
  std::vector<E> c{f.one()};  // current connection polynomial
  std::vector<E> b{f.one()};  // previous connection polynomial
  std::size_t l = 0;          // current LFSR length
  std::size_t m = 1;          // steps since b was current
  E delta_b = f.one();        // discrepancy when b was last updated

  for (std::size_t i = 0; i < seq.size(); ++i) {
    // Discrepancy d = s_i + sum_{k=1..l} c_k s_{i-k}.
    E d = seq[i];
    for (std::size_t k = 1; k <= l && k <= i; ++k) {
      if (k < c.size()) d = f.add(d, f.mul(c[k], seq[i - k]));
    }
    if (f.eq(d, f.zero())) {
      ++m;
      continue;
    }
    const std::vector<E> t = c;  // save before modification
    // c(x) -= (d / delta_b) * x^m * b(x)
    const E coef = f.div(d, delta_b);
    if (c.size() < b.size() + m) c.resize(b.size() + m, f.zero());
    for (std::size_t k = 0; k < b.size(); ++k) {
      c[k + m] = f.sub(c[k + m], f.mul(coef, b[k]));
    }
    if (2 * l <= i) {
      l = i + 1 - l;
      b = t;
      delta_b = d;
      m = 1;
    } else {
      ++m;
    }
  }

  // Convert the connection polynomial to the monic minimum polynomial:
  // f(x) = x^L * C(1/x), i.e. reverse C within length L+1.
  std::vector<E> out(l + 1, f.zero());
  for (std::size_t k = 0; k <= l; ++k) {
    out[l - k] = k < c.size() ? c[k] : f.zero();
  }
  assert(f.eq(out[l], f.one()));
  return out;
}

}  // namespace kp::seq

// Section 3: characteristic polynomial of a Toeplitz matrix (Theorem 3).
//
// The pipeline, exactly as in the paper:
//
//   1. Run Newton's iteration (3)  X <- X (2I - B X)  on B = T(lambda) =
//      I - lambda*T, over truncated power series, maintaining only the FIRST
//      and LAST columns of X_i through the Gohberg-Semencul formula (5)/(6).
//      After ceil(log2(n+1)) steps X = (I - lambda T)^{-1} mod lambda^{n+1}
//      = sum_i T^i lambda^i.
//   2. Read off Trace(X) mod lambda^{n+1} = sum_i Trace(T^i) lambda^i with
//      the O(n) Gohberg-Semencul trace formula: the power sums s_i.
//   3. Solve the Newton-identity system (Leverrier/Csanky step) for the
//      characteristic polynomial; this divides by 2..n, hence the
//      characteristic restriction.
//
// Work is O(n^2 polylog n) field operations -- quadratic in n, versus the
// O(n^3) of Gaussian elimination on a dense copy and the O(n^4) of
// division-free methods; bench_toeplitz_charpoly measures the exponent.
#pragma once

#include <vector>

#include "field/concepts.h"
#include "matrix/structured.h"
#include "poly/poly.h"
#include "seq/gohberg_semencul.h"
#include "seq/newton_identities.h"
#include "util/fault.h"
#include "util/status.h"

namespace kp::seq {

/// First and last columns of (I - lambda T)^{-1} mod lambda^prec, as vectors
/// of truncated power series, plus the unit inverse of the (1,1) entry.
/// This is the engine behind Theorem 3 and the Chistov extension.
template <kp::field::Field F>
struct ToeplitzSeriesInverse {
  using SR = kp::poly::TruncSeriesRing<F>;
  std::vector<typename SR::Element> first_col;
  std::vector<typename SR::Element> last_col;
  typename SR::Element u1_inv;
};

/// Runs the section-3 Newton iteration.  `t` is n x n; `prec` is the series
/// truncation (n+1 for the characteristic polynomial).
template <kp::field::Field F>
ToeplitzSeriesInverse<F> toeplitz_series_inverse(const F& f,
                                                 const matrix::Toeplitz<F>& t,
                                                 std::size_t prec) {
  using SR = kp::poly::TruncSeriesRing<F>;
  using SE = typename SR::Element;
  const std::size_t n = t.dim();

  // X_0 = I: first column e_1, last column e_n (constant series).
  std::vector<SE> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = SE{};
    y[i] = SE{};
  }
  x[0] = SE{f.one()};
  y[n - 1] = SE{f.one()};

  // Running inverse of u_1 = x[0], maintained INCREMENTALLY: the paper notes
  // that the expansion of 1/u_1 to the doubled order "can be obtained from
  // the first 2^i terms of this expansion ... with 2 Newton iteration
  // steps".  Recomputing it from scratch each round would put an
  // O(log^2 n)-deep sub-iteration inside every round and break the overall
  // O(log^2 n) circuit depth.
  kp::poly::PolyRing<F> fring(f);
  SE u1_inv{f.one()};
  // Refines u1_inv to accuracy `target` against the current x[0].  x0 is
  // the fixed factor of both Newton steps, so its forward transform is
  // cached across them (op counts charged as if recomputed).
  auto refine_u1_inv = [&](std::size_t target) {
    const kp::poly::TransformedPoly<F> x0(fring, fring.truncate(x[0], target));
    for (int step = 0; step < 2; ++step) {
      auto prod = fring.truncate(x0.mul(fring, u1_inv), target);
      auto corr = fring.sub(fring.from_int(2), prod);
      u1_inv = fring.truncate(fring.mul(u1_inv, corr), target);
    }
  };

  for (std::size_t p = 1; p < prec;) {
    p = std::min(2 * p, prec);
    SR sr(f, p);
    kp::poly::PolyRing<SR> biv(sr);
    // u1_inv must satisfy u1_inv * x[0] = 1 mod lambda^p EXACTLY (not just
    // to the columns' accuracy): the Gohberg-Semencul reconstruction's
    // first column is (y_n * u1_inv) * x, and the Newton step only gains
    // precision when that prefactor is 1 mod lambda^p.
    refine_u1_inv(p);

    // B = I - lambda*T as a Toeplitz matrix over the series ring.
    std::vector<SE> b(2 * n - 1);
    for (std::size_t k = 0; k < 2 * n - 1; ++k) {
      SE e;
      if (!f.eq(t.diagonals()[k], f.zero())) {
        e = SE{f.zero(), f.neg(t.diagonals()[k])};  // -lambda * t_k
      }
      if (k == n - 1) e = sr.add(e, sr.one());  // + identity diagonal
      b[k] = std::move(e);
    }
    const matrix::Toeplitz<SR> bt(n, std::move(b));

    // Gohberg-Semencul view of the previous iterate (valid mod lambda^{p/2};
    // u1_inv is accurate to the previous precision, which suffices).
    GohbergSemencul<SR> gs{x, y, u1_inv};

    // col_1(X_new) = 2x - X (B x);   col_n(X_new) = 2y - X (B y).
    // Both columns advance through the SAME fixed operators, so the round
    // is batched: bt's symbol and the four Gohberg-Semencul generator
    // transforms are each forward-transformed once and shared across the
    // pair, and the varying-side transforms of the batch run in parallel.
    const CachedGsApplier<SR> xinv(biv, gs);
    auto bcols = bt.apply_many(biv, {&x, &y});
    auto xbcols = xinv.apply_many(biv, {&bcols[0], &bcols[1]});
    const SE two = sr.from_int(2);
    auto combine = [&](const std::vector<SE>& col,
                       const std::vector<SE>& xbcol) {
      std::vector<SE> out(n);
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = sr.sub(sr.mul(two, col[i]), xbcol[i]);
      }
      return out;
    };
    auto nx = combine(x, xbcols[0]);
    auto ny = combine(y, xbcols[1]);
    x = std::move(nx);
    y = std::move(ny);
  }
  // Final catch-up against the final first column.
  refine_u1_inv(prec);

  return {std::move(x), std::move(y), std::move(u1_inv)};
}

/// Power sums s_0..s_{prec-1}, s_i = Trace(T^i), via the series inverse and
/// the Gohberg-Semencul trace formula.
template <kp::field::Field F>
std::vector<typename F::Element> toeplitz_power_sums(const F& f,
                                                     const matrix::Toeplitz<F>& t,
                                                     std::size_t prec) {
  using SR = kp::poly::TruncSeriesRing<F>;
  auto inv = toeplitz_series_inverse(f, t, prec);
  SR sr(f, prec);
  GohbergSemencul<SR> gs{std::move(inv.first_col), std::move(inv.last_col),
                         std::move(inv.u1_inv)};
  const auto trace_series = gs.trace(sr);
  std::vector<typename F::Element> s(prec, f.zero());
  for (std::size_t i = 0; i < prec; ++i) s[i] = sr.coeff(trace_series, i);
  return s;
}

/// Theorem 3: the monic characteristic polynomial det(lambda I - T),
/// little-endian, length n+1.  Requires char(K) = 0 or > n.
template <kp::field::Field F>
std::vector<typename F::Element> toeplitz_charpoly(
    const F& f, const matrix::Toeplitz<F>& t,
    NewtonIdentityMethod method = NewtonIdentityMethod::kTriangularSolve) {
  const std::size_t n = t.dim();
  auto s = toeplitz_power_sums(f, t, n + 1);
  // charpoly_from_power_sums wants s_1..s_n.
  std::vector<typename F::Element> s1(s.begin() + 1, s.end());
  return charpoly_from_power_sums(f, s1, method);
}

/// Determinant of a Toeplitz matrix from its characteristic polynomial:
/// det(T) = (-1)^n * p(0).
template <kp::field::Field F>
typename F::Element toeplitz_det(
    const F& f, const matrix::Toeplitz<F>& t,
    NewtonIdentityMethod method = NewtonIdentityMethod::kTriangularSolve) {
  const auto p = toeplitz_charpoly(f, t, method);
  const auto p0 = p[0];
  return (t.dim() % 2 == 0) ? p0 : f.neg(p0);
}

/// Solves T x = b for a non-singular Toeplitz matrix via Cayley-Hamilton:
/// with p(T) = 0, T^{-1} = -(1/p_0) sum_{k>=1} p_k T^{k-1}, so x is a
/// matrix-polynomial apply using Toeplitz-vector products (O(n M(n)) work).
/// Returns an empty vector when the characteristic polynomial reports
/// det(T) = 0, or when dim(b) != dim(T).
template <kp::field::Field F>
std::vector<typename F::Element> toeplitz_solve_charpoly(
    const F& f, const matrix::Toeplitz<F>& t,
    const std::vector<typename F::Element>& b,
    const kp::poly::PolyRing<F>& ring,
    NewtonIdentityMethod method = NewtonIdentityMethod::kTriangularSolve) {
  const std::size_t n = t.dim();
  if (b.size() != n) return {};
  const auto p = toeplitz_charpoly(f, t, method);
  if (KP_FAULT_POINT(kp::util::Stage::kNewtonToeplitz) || f.is_zero(p[0])) {
    return {};
  }
  // acc = sum_{k>=1} p_k T^{k-1} b, then x = -acc / p_0.
  std::vector<typename F::Element> w = b;
  std::vector<typename F::Element> acc(n, f.zero());
  for (std::size_t k = 1; k <= n; ++k) {
    if (k > 1) w = t.apply(ring, w);
    if (f.eq(p[k], f.zero())) continue;
    for (std::size_t i = 0; i < n; ++i) {
      acc[i] = f.add(acc[i], f.mul(p[k], w[i]));
    }
  }
  const auto scale = f.neg(f.inv(p[0]));
  for (auto& e : acc) e = f.mul(e, scale);
  return acc;
}

/// Status-carrying form of toeplitz_solve_charpoly: distinguishes the
/// malformed call (dim mismatch) from the legitimate Theorem-3 failure
/// report det(T) = 0.
template <kp::field::Field F>
kp::util::StatusOr<std::vector<typename F::Element>>
toeplitz_solve_charpoly_status(
    const F& f, const matrix::Toeplitz<F>& t,
    const std::vector<typename F::Element>& b,
    const kp::poly::PolyRing<F>& ring,
    NewtonIdentityMethod method = NewtonIdentityMethod::kTriangularSolve) {
  using kp::util::FailureKind;
  using kp::util::Stage;
  using kp::util::Status;
  if (b.size() != t.dim()) {
    return Status::Fail(FailureKind::kInvalidArgument, Stage::kNewtonToeplitz,
                        "dim(b) != dim(T)");
  }
  auto x = toeplitz_solve_charpoly(f, t, b, ring, method);
  if (x.empty()) {
    return Status::Fail(FailureKind::kSingularInput, Stage::kNewtonToeplitz,
                        "charpoly reports det(T) = 0");
  }
  return x;
}

/// Gohberg-Semencul representation through the section-3 machinery: ONE
/// characteristic-polynomial computation, then both defining columns by the
/// Cayley-Hamilton combination -- O(n^2 polylog) work total, against the
/// O(n^3) of the Gaussian reference constructor (gs_from_toeplitz_gauss).
/// Returns nullopt when T is singular or (T^{-1})_{1,1} = 0.
template <kp::field::Field F>
std::optional<GohbergSemencul<F>> gs_from_toeplitz(
    const F& f, const matrix::Toeplitz<F>& t, const kp::poly::PolyRing<F>& ring,
    NewtonIdentityMethod method = NewtonIdentityMethod::kTriangularSolve) {
  const std::size_t n = t.dim();
  const auto p = toeplitz_charpoly(f, t, method);
  if (KP_FAULT_POINT(kp::util::Stage::kGohbergSemencul) ||
      f.is_zero(p[0])) {
    return std::nullopt;  // singular
  }
  const auto scale = f.neg(f.inv(p[0]));

  // x = T^{-1} b = -(1/p_0) sum_{k>=1} p_k T^{k-1} b.
  auto solve = [&](std::vector<typename F::Element> b) {
    std::vector<typename F::Element> acc(n, f.zero());
    for (std::size_t k = 1; k <= n; ++k) {
      if (k > 1) b = t.apply(ring, b);
      if (f.eq(p[k], f.zero())) continue;
      for (std::size_t i = 0; i < n; ++i) {
        acc[i] = f.add(acc[i], f.mul(p[k], b[i]));
      }
    }
    for (auto& e : acc) e = f.mul(e, scale);
    return acc;
  };

  std::vector<typename F::Element> e1(n, f.zero()), en(n, f.zero());
  e1[0] = f.one();
  en[n - 1] = f.one();
  auto u = solve(std::move(e1));
  if (KP_FAULT_POINT(kp::util::Stage::kGohbergSemencul) ||
      f.is_zero(u[0])) {
    return std::nullopt;  // (T^{-1})_{1,1} = 0
  }
  auto y = solve(std::move(en));
  auto u1_inv = f.inv(u[0]);
  return GohbergSemencul<F>{std::move(u), std::move(y), std::move(u1_inv)};
}

/// Minimum polynomial of a linearly generated sequence by the PARALLEL
/// route of Lemma 1: binary-search the largest mu with det(T_mu) != 0
/// through the Theorem-3 determinant (O(log n) independent determinant
/// evaluations, each NC^2), then one Toeplitz solve for the coefficients.
/// The sequential counterpart is Berlekamp-Massey; the two are checked
/// against each other in the tests.  Needs seq[0..2*max_degree-1] and
/// char(K) = 0 or > max_degree; assumes the determinant pattern of Lemma 1
/// (valid for every linearly generated sequence).
template <kp::field::Field F>
std::vector<typename F::Element> minpoly_parallel(
    const F& f, const std::vector<typename F::Element>& seq,
    std::size_t max_degree, const kp::poly::PolyRing<F>& ring) {
  if (seq.size() < 2 * max_degree) return {};  // malformed: too few terms
  auto det_nonzero = [&](std::size_t mu) {
    const auto t = matrix::Toeplitz<F>::from_sequence(mu, seq);
    return !f.is_zero(toeplitz_det(f, t));
  };
  // Lemma 1: det(T_mu) != 0 for mu = m and 0 for mu > m, but below m the
  // pattern may oscillate -- so scan down for the largest non-zero rather
  // than bisecting blindly.
  std::size_t m = 0;
  for (std::size_t mu = max_degree; mu >= 1; --mu) {
    if (det_nonzero(mu)) {
      m = mu;
      break;
    }
  }
  if (m == 0) return {f.one()};

  const auto t = matrix::Toeplitz<F>::from_sequence(m, seq);
  std::vector<typename F::Element> rhs(seq.begin() + static_cast<std::ptrdiff_t>(m),
                                       seq.begin() + static_cast<std::ptrdiff_t>(2 * m));
  auto y = toeplitz_solve_charpoly(f, t, rhs, ring);
  // det(T_m) != 0 was just certified, so emptiness can only come from the
  // kNewtonToeplitz fault site; report the degenerate result upward.
  if (y.empty()) return {};
  std::vector<typename F::Element> out(m + 1, f.zero());
  out[m] = f.one();
  for (std::size_t i = 0; i < m; ++i) out[m - 1 - i] = f.neg(y[i]);
  return out;
}

}  // namespace kp::seq

// The Gohberg-Semencul representation of a Toeplitz inverse (Figure 1).
//
// A non-singular n x n Toeplitz matrix T with (T^{-1})_{1,1} != 0 has its
// inverse fully determined by the first and last columns of T^{-1}:
//
//   T^{-1} = (1/u_1) [ L(u) U(v)  -  L(y-shift) U(u-revshift) ]
//
// where u = first column of T^{-1}, y = last column, v = reverse(y)
// (so v_1 = (T^{-1})_{n,n} = u_1 by persymmetry), L(w) is the lower
// triangular Toeplitz matrix with first column w and U(w) the upper
// triangular Toeplitz matrix with first row w.  The exact index layout was
// validated against dense inverses (see tests/test_seq.cpp).
//
// Everything here is generic over a commutative ring so the same
// representation drives the section-3 Newton iteration, whose "entries" are
// truncated power series; the ring only has to supply the inverse of u_1.
#pragma once

#include <cassert>
#include <optional>
#include <vector>

#include "field/concepts.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "matrix/structured.h"
#include "poly/poly.h"
#include "util/fault.h"

namespace kp::seq {

/// Implicit inverse of a Toeplitz matrix.
template <kp::field::CommutativeRing R>
struct GohbergSemencul {
  using Element = typename R::Element;

  std::vector<Element> first_col;  ///< u = T^{-1} e_1
  std::vector<Element> last_col;   ///< y = T^{-1} e_n
  Element u1_inv;                  ///< 1 / u_1, supplied by the caller's ring

  std::size_t dim() const { return first_col.size(); }

  /// T^{-1} z via four triangular-Toeplitz (i.e. polynomial) products.
  std::vector<Element> apply(const kp::poly::PolyRing<R>& ring,
                             const std::vector<Element>& z) const {
    const std::size_t n = dim();
    assert(z.size() == n);
    const R& r = ring.base();

    // v = reverse(last_col); y_shift = (0, y_0, ..., y_{n-2});
    // u_revshift = (0, u_{n-1}, ..., u_1).
    std::vector<Element> v(last_col.rbegin(), last_col.rend());
    std::vector<Element> y_shift(n, r.zero());
    std::vector<Element> u_revshift(n, r.zero());
    for (std::size_t i = 1; i < n; ++i) {
      y_shift[i] = last_col[i - 1];
      u_revshift[i] = first_col[n - i];
    }

    auto t1 = lower_tri_apply(ring, first_col, upper_tri_apply(ring, v, z));
    auto t2 = lower_tri_apply(ring, y_shift, upper_tri_apply(ring, u_revshift, z));
    std::vector<Element> out(n, r.zero());
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = r.mul(u1_inv, r.sub(t1[i], t2[i]));
    }
    return out;
  }

  /// Trace(T^{-1}) by the paper's O(n) formula:
  /// (1/u_1) * sum_j (n - 2j) u_j v_j, j = 0..n-1, v = reverse(last_col).
  Element trace(const R& r) const {
    const std::size_t n = dim();
    auto acc = r.zero();
    for (std::size_t j = 0; j < n; ++j) {
      const auto weight =
          r.from_int(static_cast<std::int64_t>(n) - 2 * static_cast<std::int64_t>(j));
      acc = r.add(acc, r.mul(weight, r.mul(first_col[j], last_col[n - 1 - j])));
    }
    return r.mul(u1_inv, acc);
  }

  /// Materializes the dense inverse (testing/diagnostics).
  matrix::Matrix<R> to_dense(const kp::poly::PolyRing<R>& ring) const {
    const std::size_t n = dim();
    const R& r = ring.base();
    matrix::Matrix<R> out(n, n, r.zero());
    std::vector<Element> e(n, r.zero());
    for (std::size_t j = 0; j < n; ++j) {
      e[j] = r.one();
      auto col = apply(ring, e);
      for (std::size_t i = 0; i < n; ++i) out.at(i, j) = col[i];
      e[j] = r.zero();
    }
    return out;
  }

  /// L(w) z: lower triangular Toeplitz product = truncated convolution.
  static std::vector<Element> lower_tri_apply(const kp::poly::PolyRing<R>& ring,
                                              const std::vector<Element>& w,
                                              const std::vector<Element>& z) {
    const std::size_t n = w.size();
    auto wp = w;
    ring.strip(wp);
    auto zp = z;
    ring.strip(zp);
    const auto prod = ring.mul(wp, zp);
    std::vector<Element> out(n, ring.base().zero());
    for (std::size_t i = 0; i < n; ++i) out[i] = ring.coeff(prod, i);
    return out;
  }

  /// U(w) z: upper triangular Toeplitz product (first row w) via the
  /// reversed convolution out_i = conv(w, reverse(z))[n-1-i].
  static std::vector<Element> upper_tri_apply(const kp::poly::PolyRing<R>& ring,
                                              const std::vector<Element>& w,
                                              const std::vector<Element>& z) {
    const std::size_t n = w.size();
    auto wp = w;
    ring.strip(wp);
    std::vector<Element> zr(z.rbegin(), z.rend());
    ring.strip(zr);
    const auto prod = ring.mul(wp, zr);
    std::vector<Element> out(n, ring.base().zero());
    for (std::size_t i = 0; i < n; ++i) out[i] = ring.coeff(prod, n - 1 - i);
    return out;
  }
};

/// Applies one FIXED Gohberg-Semencul representation to many vectors.
///
/// The four polynomial operands of GohbergSemencul::apply -- u, v =
/// reverse(y), the shifted y and the reverse-shifted u -- are invariants of
/// the representation, so this wrapper pins them as TransformedPoly
/// (poly/transform_cache.h): each product pays one forward NTT (the varying
/// side) instead of two, and apply_many batches the varying-side transforms
/// of a whole set of right-hand sides over the pool.  Values and logical op
/// counts are exactly those of GohbergSemencul::apply per vector.
template <kp::field::CommutativeRing R>
class CachedGsApplier {
 public:
  using Element = typename R::Element;

  CachedGsApplier(const kp::poly::PolyRing<R>& ring,
                  const GohbergSemencul<R>& gs)
      : n_(gs.dim()), u1_inv_(gs.u1_inv) {
    const R& r = ring.base();
    std::vector<Element> v(gs.last_col.rbegin(), gs.last_col.rend());
    std::vector<Element> y_shift(n_, r.zero());
    std::vector<Element> u_revshift(n_, r.zero());
    for (std::size_t i = 1; i < n_; ++i) {
      y_shift[i] = gs.last_col[i - 1];
      u_revshift[i] = gs.first_col[n_ - i];
    }
    first_col_ = make(ring, gs.first_col);
    v_ = make(ring, std::move(v));
    y_shift_ = make(ring, std::move(y_shift));
    u_revshift_ = make(ring, std::move(u_revshift));
  }

  std::size_t dim() const { return n_; }

  /// T^{-1} z, as GohbergSemencul::apply.
  std::vector<Element> apply(const kp::poly::PolyRing<R>& ring,
                             const std::vector<Element>& z) const {
    return std::move(apply_many(ring, {&z})[0]);
  }

  /// T^{-1} z_k for every z_k, batching each of the four triangular product
  /// stages across the whole set.
  std::vector<std::vector<Element>> apply_many(
      const kp::poly::PolyRing<R>& ring,
      const std::vector<const std::vector<Element>*>& zs) const {
    const R& r = ring.base();
    const std::size_t m = zs.size();
    using Poly = typename kp::poly::PolyRing<R>::Element;

    // Stage 1: the two upper-triangular products U(v) z and U(u-revshift) z
    // share the reversed-and-stripped right-hand side.
    std::vector<Poly> zr(m);
    std::vector<const Poly*> zr_ptr(m);
    for (std::size_t k = 0; k < m; ++k) {
      assert(zs[k]->size() == n_);
      zr[k].assign(zs[k]->rbegin(), zs[k]->rend());
      ring.strip(zr[k]);
      zr_ptr[k] = &zr[k];
    }
    auto uv = finish_upper(ring, v_.mul_many(ring, zr_ptr));
    auto uu = finish_upper(ring, u_revshift_.mul_many(ring, zr_ptr));

    // Stage 2: the lower-triangular products on the stage-1 results.
    auto t1 = finish_lower(ring, first_col_, uv);
    auto t2 = finish_lower(ring, y_shift_, uu);

    std::vector<std::vector<Element>> out(m);
    for (std::size_t k = 0; k < m; ++k) {
      out[k].assign(n_, r.zero());
      for (std::size_t i = 0; i < n_; ++i) {
        out[k][i] = r.mul(u1_inv_, r.sub(t1[k][i], t2[k][i]));
      }
    }
    return out;
  }

 private:
  using Transformed = kp::poly::TransformedPoly<R>;
  using Poly = typename kp::poly::PolyRing<R>::Element;

  static Transformed make(const kp::poly::PolyRing<R>& ring, Poly w) {
    ring.strip(w);
    return Transformed(ring, std::move(w));
  }

  /// Upper-tri windows: out_i = prod[n-1-i].
  std::vector<std::vector<Element>> finish_upper(
      const kp::poly::PolyRing<R>& ring, std::vector<Poly>&& prods) const {
    std::vector<std::vector<Element>> out(prods.size());
    for (std::size_t k = 0; k < prods.size(); ++k) {
      out[k].assign(n_, ring.base().zero());
      for (std::size_t i = 0; i < n_; ++i) {
        out[k][i] = ring.coeff(prods[k], n_ - 1 - i);
      }
    }
    return out;
  }

  /// Lower-tri products of a fixed w against stage-1 results, windowed to
  /// out_i = prod[i].
  std::vector<std::vector<Element>> finish_lower(
      const kp::poly::PolyRing<R>& ring, const Transformed& w,
      const std::vector<std::vector<Element>>& ins) const {
    std::vector<Poly> stripped(ins.size());
    std::vector<const Poly*> ptrs(ins.size());
    for (std::size_t k = 0; k < ins.size(); ++k) {
      stripped[k] = ins[k];
      ring.strip(stripped[k]);
      ptrs[k] = &stripped[k];
    }
    auto prods = w.mul_many(ring, ptrs);
    std::vector<std::vector<Element>> out(ins.size());
    for (std::size_t k = 0; k < ins.size(); ++k) {
      out[k].assign(n_, ring.base().zero());
      for (std::size_t i = 0; i < n_; ++i) {
        out[k][i] = ring.coeff(prods[k], i);
      }
    }
    return out;
  }

  std::size_t n_;
  Element u1_inv_;
  Transformed first_col_;
  Transformed v_;
  Transformed y_shift_;
  Transformed u_revshift_;
};

/// Builds the representation for a Toeplitz matrix over a *field* by solving
/// T u = e_1 and T y = e_n with Gaussian elimination -- the O(n^3) reference
/// constructor; the O(n^2 polylog)-work route is gs_from_toeplitz below.
/// Returns nullopt when T is singular or (T^{-1})_{1,1} = 0 (the formula's
/// precondition fails).
template <kp::field::Field F>
std::optional<GohbergSemencul<F>> gs_from_toeplitz_gauss(
    const F& f, const matrix::Toeplitz<F>& t) {
  const auto dense = t.to_dense(f);
  const std::size_t n = t.dim();
  std::vector<typename F::Element> e1(n, f.zero()), en(n, f.zero());
  e1[0] = f.one();
  en[n - 1] = f.one();
  auto u = matrix::solve_gauss(f, dense, e1);
  if (!u) return std::nullopt;
  auto y = matrix::solve_gauss(f, dense, en);
  if (!y) return std::nullopt;  // unreachable: solve of e1 already succeeded
  if (KP_FAULT_POINT(kp::util::Stage::kGohbergSemencul) ||
      f.is_zero((*u)[0])) {
    return std::nullopt;
  }
  auto u1_inv = f.inv((*u)[0]);
  return GohbergSemencul<F>{std::move(*u), std::move(*y), std::move(u1_inv)};
}

}  // namespace kp::seq

// Leverrier's map: power sums -> characteristic polynomial coefficients.
//
// The paper (following Csanky '76 and Schoenhage '82) recovers
//   Det(lambda I - T) = lambda^n - c_1 lambda^{n-1} - ... - c_n
// from the power sums s_i = Trace(T^i) by solving the lower-triangular
// Toeplitz Newton-identity system
//
//   [ 1              ] [c_1]   [s_1]
//   [ s_1   2        ] [c_2]   [s_2]
//   [ s_2   s_1  3   ] [c_3] = [s_3]
//   [ ...            ] [...]   [...]
//
// which divides by 2, 3, ..., n -- the source of the characteristic
// restriction in Theorems 3, 4, 6.  Two implementations are provided: the
// classical O(n^2) forward substitution and the quasi-linear power-series
// route p-hat = exp(-sum s_i lambda^i / i) (both ablated in the benches).
#pragma once

#include <cassert>
#include <vector>

#include "field/concepts.h"
#include "field/kernels.h"
#include "poly/poly.h"

namespace kp::seq {

enum class NewtonIdentityMethod {
  kTriangularSolve,  ///< classical O(n^2) forward substitution
  kPowerSeriesExp,   ///< exp/log route, quasi-linear with fast poly mult
};

/// Given power sums s[1..n] (s[0] ignored/absent: pass s_i at index i-1),
/// returns the monic characteristic polynomial, little-endian, of the matrix
/// whose eigenvalue power sums these are.  Requires char(K) = 0 or > n.
template <kp::field::Field F>
std::vector<typename F::Element> charpoly_from_power_sums(
    const F& f, const std::vector<typename F::Element>& s,
    NewtonIdentityMethod method = NewtonIdentityMethod::kTriangularSolve) {
  using E = typename F::Element;
  const std::size_t n = s.size();
  assert(kp::field::supports_leverrier(f, n) &&
         "Leverrier divides by 2..n: characteristic must be 0 or > n");

  // c_k in the paper's convention: char poly = x^n - c_1 x^{n-1} - ... - c_n.
  std::vector<E> c(n + 1, f.zero());  // c[1..n]

  // The Leverrier divisors are the fixed integers 1..n, so word-sized prime
  // fields invert them all with one batched Euclid (Montgomery's trick; the
  // per-use logical division is still charged inside batch_inverse).
  std::vector<E> int_inv;
  if constexpr (kp::field::kernels::FastField<F>) {
    int_inv.resize(n);
    for (std::size_t k = 1; k <= n; ++k) {
      int_inv[k - 1] = f.from_int(static_cast<std::int64_t>(k));
    }
    // The divisors 1..n are nonzero by the characteristic precondition, so
    // a failure here means the precondition was violated: surface it as an
    // empty result rather than dividing by zero.
    const auto st =
        kp::field::kernels::batch_inverse(f, int_inv.data(), int_inv.size());
    if (!st.ok()) return {};
  }
  // div(a, k) with the same accounting as f.div: the division was charged by
  // batch_inverse, the multiply is the div's own uncounted one.
  auto div_by_int = [&](const E& a, std::size_t k) {
    if constexpr (kp::field::kernels::FastField<F>) {
      return kp::field::kernels::mul_uncounted(f, a, int_inv[k - 1]);
    } else {
      return f.div(a, f.from_int(static_cast<std::int64_t>(k)));
    }
  };

  if (method == NewtonIdentityMethod::kTriangularSolve) {
    // k c_k = s_k - sum_{i=1}^{k-1} c_i s_{k-i}.
    for (std::size_t k = 1; k <= n; ++k) {
      E acc = s[k - 1];
      for (std::size_t i = 1; i < k; ++i) {
        acc = f.sub(acc, f.mul(c[i], s[k - i - 1]));
      }
      c[k] = div_by_int(acc, k);
    }
  } else {
    // rev(charpoly) = prod (1 - lambda_j x) = exp(-sum_{i>=1} s_i x^i / i).
    kp::poly::PolyRing<F> ring(f);
    typename kp::poly::PolyRing<F>::Element h(n + 1, f.zero());
    for (std::size_t i = 1; i <= n; ++i) {
      h[i] = f.neg(div_by_int(s[i - 1], i));
    }
    ring.strip(h);
    auto phat = kp::poly::series_exp(ring, h, n + 1);
    // phat[k] is the coefficient of x^k in prod(1 - lambda_j x), and the
    // monic char poly is its reversal; in the c-convention c_k = -phat[k].
    for (std::size_t k = 1; k <= n; ++k) {
      c[k] = f.neg(ring.coeff(phat, k));
    }
  }

  // Assemble x^n - c_1 x^{n-1} - ... - c_n, little-endian.
  std::vector<E> out(n + 1, f.zero());
  out[n] = f.one();
  for (std::size_t k = 1; k <= n; ++k) out[n - k] = f.neg(c[k]);
  return out;
}

/// Power sums of the roots of a monic polynomial (the inverse map), used for
/// round-trip property tests: s_k = Trace(Companion(p)^k).
/// Computed by the reverse Newton identities without divisions.
template <kp::field::Field F>
std::vector<typename F::Element> power_sums_from_charpoly(
    const F& f, const std::vector<typename F::Element>& monic, std::size_t count) {
  using E = typename F::Element;
  assert(!monic.empty() && f.eq(monic.back(), f.one()));
  const std::size_t n = monic.size() - 1;
  // e_k = (-1)^k * coefficient of x^{n-k}: the elementary symmetric funcs.
  std::vector<E> e(n + 1, f.zero());
  e[0] = f.one();
  for (std::size_t k = 1; k <= n; ++k) {
    e[k] = monic[n - k];
    if (k % 2 == 1) e[k] = f.neg(e[k]);
  }
  // Newton: s_k = e_1 s_{k-1} - e_2 s_{k-2} + ... + (-1)^{k-1} k e_k  (k<=n)
  //         s_k = e_1 s_{k-1} - e_2 s_{k-2} + ... +- e_n s_{k-n}      (k> n)
  std::vector<E> s(count, f.zero());
  for (std::size_t k = 1; k <= count; ++k) {
    E acc = f.zero();
    for (std::size_t i = 1; i <= std::min(k - 1, n); ++i) {
      const E term = f.mul(e[i], s[k - i - 1]);
      acc = (i % 2 == 1) ? f.add(acc, term) : f.sub(acc, term);
    }
    if (k <= n) {
      E ke = f.mul(f.from_int(static_cast<std::int64_t>(k)), e[k]);
      acc = (k % 2 == 1) ? f.add(acc, ke) : f.sub(acc, ke);
    }
    s[k - 1] = acc;
  }
  return s;
}

}  // namespace kp::seq

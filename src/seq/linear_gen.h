// Linearly generated sequences (section 2 of the paper).
//
// A sequence {a_i} over K is linearly generated when some non-zero
// polynomial c_0 + c_1 x + ... + c_n x^n annihilates it:
// c_0 a_j + ... + c_n a_{j+n} = 0 for all j.  The monic generator of minimal
// degree is the minimum polynomial.  Lemma 1 connects the minimum polynomial
// to the Toeplitz matrices T_mu of the sequence: det(T_m) != 0 at the
// minimal degree m, det(T_M) = 0 beyond it.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

#include "field/concepts.h"
#include "matrix/gauss.h"
#include "matrix/structured.h"

namespace kp::seq {

/// True when the monic polynomial gen (little-endian, gen.back() != 0)
/// generates the observed prefix: for every window,
/// sum_i gen[i] * seq[j + i] = 0.
template <kp::field::Field F>
bool generates(const F& f, const std::vector<typename F::Element>& gen,
               const std::vector<typename F::Element>& seq) {
  assert(!gen.empty());
  const std::size_t d = gen.size() - 1;
  if (seq.size() < gen.size()) return true;  // no full window to falsify
  for (std::size_t j = 0; j + d < seq.size(); ++j) {
    auto acc = f.zero();
    for (std::size_t i = 0; i <= d; ++i) {
      acc = f.add(acc, f.mul(gen[i], seq[j + i]));
    }
    if (!f.eq(acc, f.zero())) return false;
  }
  return true;
}

/// Extends a sequence prefix using a monic generator of degree d:
/// seq[j + d] = -sum_{i < d} gen[i] * seq[j + i].  The prefix must have at
/// least d terms.
template <kp::field::Field F>
std::vector<typename F::Element> extend(const F& f,
                                        const std::vector<typename F::Element>& gen,
                                        std::vector<typename F::Element> seq,
                                        std::size_t total_len) {
  const std::size_t d = gen.size() - 1;
  assert(seq.size() >= d && "prefix shorter than the generator degree");
  assert(f.eq(gen.back(), f.one()) && "generator must be monic");
  while (seq.size() < total_len) {
    auto acc = f.zero();
    const std::size_t j = seq.size() - d;
    for (std::size_t i = 0; i < d; ++i) {
      acc = f.add(acc, f.mul(gen[i], seq[j + i]));
    }
    seq.push_back(f.neg(acc));
  }
  return seq;
}

/// The sequence {u A^i v} of a monic polynomial's companion matrix starting
/// from arbitrary taps -- handy for building test sequences with a known
/// minimum polynomial.
template <kp::field::Field F>
std::vector<typename F::Element> sequence_with_minpoly(
    const F& f, const std::vector<typename F::Element>& minpoly,
    const std::vector<typename F::Element>& seed, std::size_t total_len) {
  assert(seed.size() + 1 == minpoly.size());
  return extend(f, minpoly, seed, total_len);
}

/// Lemma 1's Toeplitz matrix T_mu of a sequence (needs seq[0 .. 2mu-2]).
template <kp::field::Field F>
matrix::Matrix<F> lemma1_toeplitz(const F& f,
                                  const std::vector<typename F::Element>& seq,
                                  std::size_t mu) {
  return matrix::Toeplitz<F>::from_sequence(mu, seq).to_dense(f);
}

/// Minimum polynomial via Lemma 1: the minimal degree m is the largest mu
/// with det(T_mu) != 0, and the low-order coefficients of the monic minimum
/// polynomial solve T_m (c_{m-1}, ..., c_0)^T = (a_m, ..., a_{2m-1})^T.
/// Deterministic O(n^3)-ish reference used to validate Berlekamp-Massey and
/// the parallel Toeplitz route; seq must have >= 2*max_degree terms.
template <kp::field::Field F>
std::vector<typename F::Element> minpoly_by_lemma1(
    const F& f, const std::vector<typename F::Element>& seq,
    std::size_t max_degree) {
  assert(seq.size() >= 2 * max_degree);
  std::size_t m = 0;
  for (std::size_t mu = max_degree; mu >= 1; --mu) {
    if (!f.is_zero(matrix::det_gauss(f, lemma1_toeplitz(f, seq, mu)))) {
      m = mu;
      break;
    }
  }
  if (m == 0) return {f.one()};  // the zero sequence: minimum polynomial 1

  auto t = lemma1_toeplitz(f, seq, m);
  std::vector<typename F::Element> rhs(seq.begin() + static_cast<std::ptrdiff_t>(m),
                                       seq.begin() + static_cast<std::ptrdiff_t>(2 * m));
  auto sol = matrix::solve_gauss(f, t, rhs);
  assert(sol.has_value());
  // sol = (c_{m-1}, ..., c_0); minimum polynomial x^m - c_{m-1} x^{m-1} - ... - c_0.
  std::vector<typename F::Element> out(m + 1, f.zero());
  out[m] = f.one();
  for (std::size_t i = 0; i < m; ++i) out[m - 1 - i] = f.neg((*sol)[i]);
  return out;
}

}  // namespace kp::seq

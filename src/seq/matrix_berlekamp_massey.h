// Matrix Berlekamp-Massey via sigma-basis (order basis) computation.
//
// The block-Wiedemann route (core/block_krylov.h) projects the Krylov space
// through n x b blocks and needs the minimal *matrix* generating polynomial
// of the b x b sequence S_i = U A^i V -- the block analogue of the scalar
// Berlekamp-Massey in seq/berlekamp_massey.h.  We compute it as a sigma-basis
// of order sigma for
//
//   F(x) = [ T(x) ]      with  T(x) = sum_i S_i^T x^i   (b x b power series)
//          [ -I_b ]
//
// following the iterative order-1 M-Basis of Giorgi-Jeannerod-Villard: keep
// a row basis M(x) in K[x]^{2b x 2b} with its residual R = M . F mod x^sigma
// and a degree vector delta; at order k read the discrepancy coeff_k(R),
// eliminate rows of minimal delta against each other (a constant 2b x b
// Gaussian step), and multiply the pivot rows by x.  After sigma steps every
// row p = [u | w] of M satisfies u . T = w (mod x^sigma); a row whose w-part
// has degree < delta reverses into a right generator of {S_i}:
//
//   c_j = (coeff_{delta-j} of u)^T   gives   sum_j S_{i+j} c_j = 0
//
// for every complete window of the observed prefix.  Rows with
// deg w = delta only generate a shifted tail and are discarded (the caller's
// Las Vegas verification covers anything that slips through).
//
// Cost: O(n^2 b) field operations for a length-2n/b sequence (the residual
// and basis updates dominate).  The per-step row updates are element-wise
// independent across target rows, so they run on the pooled
// ExecutionContext with worker-count-independent boundaries; word-sized
// prime fields take a fused delayed-count axpy with the same canonical
// values and the same bulk op accounting as the generic loop.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "field/concepts.h"
#include "field/kernels.h"
#include "matrix/dense.h"
#include "pram/parallel_for.h"
#include "util/op_count.h"
#include "util/status.h"

namespace kp::seq {

/// A right matrix generating polynomial of a b x b matrix sequence: columns
/// are vector polynomials c(x) = sum_j c_j x^j with sum_j S_{i+j} c_j = 0
/// for every complete window of the observed prefix.  Columns are sorted by
/// ascending nominal degree; there are normally exactly b of them, but
/// degenerate inputs may verify more or fewer -- callers pick what they
/// need and Las-Vegas-verify downstream.
template <kp::field::Field F>
struct BlockGenerator {
  using Element = typename F::Element;

  std::size_t block = 0;  ///< b
  /// columns[c][j] is the K^b coefficient of x^j in column c (little-endian,
  /// size degrees[c] + 1).
  std::vector<std::vector<std::vector<Element>>> columns;
  std::vector<std::size_t> degrees;  ///< nominal degree of each column

  std::size_t max_degree() const {
    std::size_t d = 0;
    for (auto v : degrees) d = std::max(d, v);
    return d;
  }

  /// G_j as a b x b matrix (column c contributes its x^j coefficient, zero
  /// past the column's degree).  Uses the first `block` columns.
  matrix::Matrix<F> coeff(const F& f, std::size_t j) const {
    matrix::Matrix<F> g(block, block, f.zero());
    for (std::size_t c = 0; c < block && c < columns.size(); ++c) {
      if (j < columns[c].size()) {
        for (std::size_t r = 0; r < block; ++r) g.at(r, c) = columns[c][j][r];
      }
    }
    return g;
  }
};

/// True when column `col` annihilates every complete window of `seq`:
/// sum_j seq[i + j] col[j] = 0 for all i with i + deg <= |seq| - 1.
template <kp::field::Field F>
bool block_generates(const F& f, const std::vector<matrix::Matrix<F>>& seq,
                     const std::vector<std::vector<typename F::Element>>& col) {
  if (col.empty()) return false;
  const std::size_t d = col.size() - 1;
  const std::size_t b = seq.empty() ? 0 : seq.front().rows();
  for (std::size_t i = 0; i + d < seq.size(); ++i) {
    for (std::size_t r = 0; r < b; ++r) {
      auto acc = f.zero();
      for (std::size_t j = 0; j <= d; ++j) {
        for (std::size_t c = 0; c < b; ++c) {
          acc = f.add(acc, f.mul(seq[i + j].at(r, c), col[j][c]));
        }
      }
      if (!f.eq(acc, f.zero())) return false;
    }
  }
  return true;
}

/// The monic scalar polynomial of a width-1 generator's first column --
/// the object the b = 1 route compares element-for-element against
/// seq::berlekamp_massey.
template <kp::field::Field F>
std::vector<typename F::Element> scalar_generator(const F& f,
                                                  const BlockGenerator<F>& gen) {
  assert(gen.block == 1 && !gen.columns.empty());
  std::vector<typename F::Element> g;
  g.reserve(gen.columns[0].size());
  for (const auto& cj : gen.columns[0]) g.push_back(cj[0]);
  while (g.size() > 1 && f.eq(g.back(), f.zero())) g.pop_back();
  const auto lead = g.back();
  if (!f.eq(lead, f.one())) {
    for (auto& e : g) e = f.div(e, lead);
  }
  return g;
}

namespace detail {

/// dst[i] -= coef * src[i] over `len` elements.  Word-sized prime fields
/// take the fused canonical-residue loop with bulk accounting (len muls +
/// len adds, exactly what the generic mul/sub loop charges).
template <kp::field::Field F>
void axpy_sub(const F& f, typename F::Element* dst,
              const typename F::Element* src, std::size_t len,
              const typename F::Element& coef) {
  if (len == 0) return;
  if constexpr (kp::field::kernels::FastField<F>) {
    kp::util::count_muls(len);
    kp::util::count_adds(len);
    const auto& bar = kp::field::FieldKernels<F>::barrett(f);
    if (kp::field::simd::vec_mod_submul(bar, coef, src, dst, len)) return;
    const std::uint64_t p = bar.p;
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint64_t t = kp::field::kernels::mul_uncounted(f, coef, src[i]);
      dst[i] = dst[i] >= t ? dst[i] - t : dst[i] + p - t;
    }
  } else {
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] = f.sub(dst[i], f.mul(coef, src[i]));
    }
  }
}

}  // namespace detail

/// Computes a right matrix generating polynomial for the b x b sequence
/// seq = {S_0, ..., S_{sigma-1}} -- the matrix Berlekamp-Massey step of the
/// block-Wiedemann route.  With sigma >= 2 ceil(n/b) + 2 terms of a block
/// Krylov projection the verified columns span the minimal generator with
/// high probability; degenerate projections surface as
/// kDegenerateProjection at Stage::kBlockGenerator so the caller's
/// stage-targeted retry redraws only the blocks.
template <kp::field::Field F>
kp::util::StatusOr<BlockGenerator<F>> matrix_berlekamp_massey(
    const F& f, const std::vector<matrix::Matrix<F>>& seq) {
  using E = typename F::Element;
  using kp::util::FailureKind;
  using kp::util::Stage;
  using kp::util::Status;

  if (seq.empty()) {
    return Status::Fail(FailureKind::kInvalidArgument, Stage::kBlockGenerator,
                        "empty block sequence");
  }
  const std::size_t b = seq.front().rows();
  const std::size_t sigma = seq.size();
  for (const auto& s : seq) {
    if (s.rows() != b || s.cols() != b) {
      return Status::Fail(FailureKind::kInvalidArgument, Stage::kBlockGenerator,
                          "non-uniform block sequence");
    }
  }

  // Row state: m = 2b polynomials (little-endian), r = b residual coefficient
  // arrays of length sigma, delta = the row's nominal degree.
  struct Row {
    std::vector<std::vector<E>> m;
    std::vector<std::vector<E>> r;
    std::size_t delta = 0;
  };
  std::vector<Row> rows(2 * b);
  for (std::size_t i = 0; i < 2 * b; ++i) {
    rows[i].m.assign(2 * b, {});
    rows[i].m[i] = {f.one()};
    rows[i].r.assign(b, std::vector<E>(sigma, f.zero()));
  }
  // Residual of the identity basis is F itself: rows 0..b-1 carry
  // T(x) = sum S_i^T x^i, rows b..2b-1 carry -I_b.
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t c = 0; c < b; ++c) {
      for (std::size_t k = 0; k < sigma; ++k) rows[i].r[c][k] = seq[k].at(c, i);
    }
    rows[b + i].r[i][0] = f.neg(f.one());
  }

  std::vector<std::size_t> order(2 * b);
  matrix::Matrix<F> cmat(2 * b, 2 * b, f.zero());  // per-step row transform
  matrix::Matrix<F> work(2 * b, b, f.zero());      // discrepancy, reduced

  for (std::size_t k = 0; k < sigma; ++k) {
    // Discrepancy coeff_k(R); rows already handled are zero there.
    bool any = false;
    for (std::size_t i = 0; i < 2 * b; ++i) {
      for (std::size_t c = 0; c < b; ++c) {
        work.at(i, c) = rows[i].r[c][k];
        any = any || !f.eq(work.at(i, c), f.zero());
      }
    }
    if (!any) continue;

    // Stable minimal-degree-first order; the constant Gaussian step below
    // only ever adds a row into rows of >= delta, which is what keeps the
    // basis minimal.
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return rows[x].delta < rows[y].delta;
                     });

    // Reduce the 2b x b discrepancy, accumulating the full row transform C
    // (unit lower triangular in sorted order) so the polynomial update can
    // read a consistent pre-step snapshot of its source rows.
    for (std::size_t i = 0; i < 2 * b; ++i) {
      for (std::size_t j = 0; j < 2 * b; ++j) {
        cmat.at(i, j) = i == j ? f.one() : f.zero();
      }
    }
    std::vector<std::pair<std::size_t, std::size_t>> pivots;  // (row, col)
    for (const std::size_t i : order) {
      for (const auto& [pr, pc] : pivots) {
        const E t = work.at(i, pc);
        if (f.eq(t, f.zero())) continue;
        const E fac = f.div(t, work.at(pr, pc));
        for (std::size_t c = 0; c < b; ++c) {
          work.at(i, c) = f.sub(work.at(i, c), f.mul(fac, work.at(pr, c)));
        }
        for (std::size_t j = 0; j < 2 * b; ++j) {
          cmat.at(i, j) = f.sub(cmat.at(i, j), f.mul(fac, cmat.at(pr, j)));
        }
      }
      for (std::size_t c = 0; c < b; ++c) {
        if (!f.eq(work.at(i, c), f.zero())) {
          pivots.emplace_back(i, c);
          break;
        }
      }
    }

    // Snapshot every row that serves as a source (the pivot rows), then
    // update targets in parallel: target i reads only snapshots, writes only
    // itself -- disjoint writes, chunk boundaries independent of the worker
    // count, results bit-identical for 1..N workers.
    std::vector<std::size_t> targets;
    for (std::size_t i = 0; i < 2 * b; ++i) {
      for (std::size_t j = 0; j < 2 * b; ++j) {
        if (j != i && !f.eq(cmat.at(i, j), f.zero())) {
          targets.push_back(i);
          break;
        }
      }
    }
    std::vector<Row> snap(2 * b);
    for (const auto& [pr, pc] : pivots) snap[pr] = rows[pr];
    auto update_target = [&](std::size_t ti) {
      const std::size_t i = targets[ti];
      for (std::size_t j = 0; j < 2 * b; ++j) {
        if (j == i) continue;
        const E coef = cmat.at(i, j);
        if (f.eq(coef, f.zero())) continue;
        const E nc = f.neg(coef);  // axpy_sub subtracts; C already has sign
        const Row& src = snap[j];
        for (std::size_t c = 0; c < 2 * b; ++c) {
          if (src.m[c].empty()) continue;
          if (rows[i].m[c].size() < src.m[c].size()) {
            rows[i].m[c].resize(src.m[c].size(), f.zero());
          }
          detail::axpy_sub(f, rows[i].m[c].data(), src.m[c].data(),
                           src.m[c].size(), nc);
        }
        for (std::size_t c = 0; c < b; ++c) {
          detail::axpy_sub(f, rows[i].r[c].data() + k, src.r[c].data() + k,
                           sigma - k, nc);
        }
      }
    };
    const std::size_t step_cost = targets.size() * b * (sigma - k);
    if (kp::field::concurrent_ops_v<F> && targets.size() > 1 &&
        step_cost >= matrix::kParallelGrain) {
      kp::pram::parallel_for(0, targets.size(), update_target);
    } else {
      for (std::size_t ti = 0; ti < targets.size(); ++ti) update_target(ti);
    }

    // Multiply pivot rows by x: shift their polynomials and residuals one
    // degree up and bump delta.
    for (const auto& [pr, pc] : pivots) {
      (void)pc;
      Row& row = rows[pr];
      for (auto& p : row.m) {
        if (!p.empty()) p.insert(p.begin(), f.zero());
      }
      for (auto& rc : row.r) {
        for (std::size_t t = sigma; t-- > k + 1;) rc[t] = rc[t - 1];
        rc[k] = f.zero();
      }
      ++row.delta;
    }
  }

  // Extract verified generator columns: rows whose w-part degree stays below
  // delta reverse into right generators (see the header comment); the rest
  // only annihilate a shifted tail and are dropped.
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < 2 * b; ++i) {
    bool valid = true;
    for (std::size_t c = b; c < 2 * b && valid; ++c) {
      const auto& w = rows[i].m[c];
      for (std::size_t d = w.size(); d-- > 0;) {
        if (!f.eq(w[d], f.zero())) {
          valid = d < rows[i].delta;
          break;
        }
      }
    }
    if (valid) keep.push_back(i);
  }
  std::stable_sort(keep.begin(), keep.end(), [&](std::size_t x, std::size_t y) {
    return rows[x].delta < rows[y].delta;
  });
  if (keep.empty()) {
    return Status::Fail(FailureKind::kDegenerateProjection,
                        Stage::kBlockGenerator,
                        "no reversible sigma-basis rows");
  }

  BlockGenerator<F> gen;
  gen.block = b;
  gen.columns.reserve(keep.size());
  gen.degrees.reserve(keep.size());
  for (const std::size_t i : keep) {
    const std::size_t t = rows[i].delta;
    std::vector<std::vector<E>> col(t + 1, std::vector<E>(b, f.zero()));
    for (std::size_t r = 0; r < b; ++r) {
      const auto& u = rows[i].m[r];
      for (std::size_t d = 0; d < u.size() && d <= t; ++d) {
        col[t - d][r] = u[d];
      }
    }
    gen.columns.push_back(std::move(col));
    gen.degrees.push_back(t);
  }
  return gen;
}

}  // namespace kp::seq

// Lane-parallel field-kernel backend with runtime CPU dispatch.
//
// This header sits BENEATH field/kernels.h: each entry point here is a
// vectorized rendition of one delayed-reduction kernel (dot, sum, gathered
// dot, zero-skipping dot, Montgomery batched inversion) or of one NTT hot
// loop (Harvey lazy butterfly level, [0,4p) normalization, pointwise Barrett
// product, Shoup scale).  Every function returns `true` only when it fully
// handled the request with BIT-IDENTICAL results to the scalar path; callers
// keep their scalar loop as the fallback, so a `false` return (unsupported
// CPU, forced-scalar build, small n, strided operands) costs one branch.
//
// WHY BIT-IDENTITY IS FREE HERE: every kernel's contract is a canonical
// residue in [0, p) (or, for the lazy butterflies, the exact same
// representative in [0, 4p) the scalar wraparound arithmetic produces).
// Canonical residues mod p are unique, so ANY accumulation order or limb
// decomposition that is exact over the integers yields the same bytes; the
// lazy butterfly is computed lane-by-lane with literally the same formula
// (same mod-2^64 wraparounds) as the scalar loop.  Op accounting is owned by
// the callers in field/kernels.h / poly/ntt.h and is untouched: SIMD is
// invisible except in wall clock and the simd_stats() diagnostic.
//
// Dispatch levels (runtime, overridable):
//   kScalar -- always available; every entry point returns false.
//   kNeon   -- aarch64: 2x64 lanes via vmull_u32 limb products (dot, sum).
//   kAvx2   -- x86-64: 4x64 lanes via _mm256_mul_epu32 odd/even splitting
//              (dot, sum, zero-skipping dot).  For ~64-bit moduli AVX2 has
//              no 64x64 multiplier, so the 4-limb scheme roughly ties the
//              scalar mulx loop; it wins clearly for p <= 2^29.
//   kAvx512 -- x86-64: 8x64 lanes (F+DQ for vpmullq); all entry points.
//              With AVX-512 IFMA the dot kernels use 52-bit-split
//              vpmadd52 accumulation, the fastest path for any p < 2^63.
//
// The level is detected once (cpuid via __builtin_cpu_supports), can be
// capped by the KP_SIMD environment variable (off|scalar|neon|avx2|avx512),
// and can be changed at runtime with set_simd_level() (the equivalence tests
// sweep it).  A -DKP_SIMD=OFF CMake build defines KP_SIMD_DISABLED and folds
// everything here to the `return false` stubs at compile time.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "field/fastmod.h"

#if !defined(KP_SIMD_DISABLED) && (defined(__GNUC__) || defined(__clang__))
#if defined(__x86_64__)
#define KP_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define KP_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace kp::field::simd {

using fastmod::u128;
using fastmod::u64;

/// Dispatch levels, ordered so that "walk down until available" degrades
/// an unavailable request sensibly (avx512 -> avx2 -> scalar on x86).
enum class SimdLevel : int { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

inline const char* to_string(SimdLevel l) {
  switch (l) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kNeon: return "neon";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

/// Below this many elements the dispatch branch + tail handling cost more
/// than the lanes recover; callers fall back to the scalar loop.
inline constexpr std::size_t kMinSimdN = 32;

namespace detail {

inline bool level_supported(SimdLevel l) {
  switch (l) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kNeon:
#if defined(KP_SIMD_NEON)
      return true;
#else
      return false;
#endif
    case SimdLevel::kAvx2:
#if defined(KP_SIMD_X86)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if defined(KP_SIMD_X86)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
  }
  return false;
}

inline bool hw_ifma() {
#if defined(KP_SIMD_X86)
  return __builtin_cpu_supports("avx512ifma");
#else
  return false;
#endif
}

/// Highest level this binary + CPU can run, before any override.
inline SimdLevel detect_max_level() {
  for (int l = static_cast<int>(SimdLevel::kAvx512); l > 0; --l) {
    if (level_supported(static_cast<SimdLevel>(l))) {
      return static_cast<SimdLevel>(l);
    }
  }
  return SimdLevel::kScalar;
}

/// Walks the request down to the nearest supported level (never up).
inline SimdLevel clamp_level(SimdLevel want) {
  int l = static_cast<int>(want);
  while (l > 0 && !level_supported(static_cast<SimdLevel>(l))) --l;
  return static_cast<SimdLevel>(l);
}

/// KP_SIMD env override; anything unrecognized means "auto".
inline SimdLevel env_level(SimdLevel fallback) {
  const char* e = std::getenv("KP_SIMD");
  if (e == nullptr) return fallback;
  if (std::strcmp(e, "off") == 0 || std::strcmp(e, "scalar") == 0 ||
      std::strcmp(e, "0") == 0) {
    return SimdLevel::kScalar;
  }
  if (std::strcmp(e, "neon") == 0) return clamp_level(SimdLevel::kNeon);
  if (std::strcmp(e, "avx2") == 0) return clamp_level(SimdLevel::kAvx2);
  if (std::strcmp(e, "avx512") == 0) return clamp_level(SimdLevel::kAvx512);
  return fallback;
}

struct Config {
  std::atomic<int> level;
  std::atomic<bool> ifma;
};

inline Config& config() {
  static Config c{{static_cast<int>(env_level(detect_max_level()))},
                  {hw_ifma()}};
  return c;
}

/// Vector-group counters, one per kernel family.  Relaxed: they are a
/// between-runs diagnostic, never part of any contract.
struct StatCounters {
  std::atomic<std::uint64_t> dot{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> gather{0};
  std::atomic<std::uint64_t> spmm{0};
  std::atomic<std::uint64_t> skip_zero{0};
  std::atomic<std::uint64_t> batch_inverse{0};
  std::atomic<std::uint64_t> ntt{0};
  std::atomic<std::uint64_t> pointwise{0};
  std::atomic<std::uint64_t> scale{0};
  std::atomic<std::uint64_t> vec{0};
};

inline StatCounters& stat_counters() {
  static StatCounters s;
  return s;
}

inline void bump(std::atomic<std::uint64_t>& c, std::uint64_t groups) {
  c.fetch_add(groups, std::memory_order_relaxed);
}

}  // namespace detail

inline SimdLevel simd_max_level() { return detail::detect_max_level(); }

inline SimdLevel simd_level() {
#if defined(KP_SIMD_X86) || defined(KP_SIMD_NEON)
  return static_cast<SimdLevel>(
      detail::config().level.load(std::memory_order_relaxed));
#else
  return SimdLevel::kScalar;
#endif
}

/// Requests a level; unavailable levels degrade downward (avx512 -> avx2 ->
/// scalar).  Returns the level actually installed.  The equivalence tests
/// sweep this; production code never needs to call it.
inline SimdLevel set_simd_level(SimdLevel want) {
  const SimdLevel got = detail::clamp_level(want);
  detail::config().level.store(static_cast<int>(got),
                               std::memory_order_relaxed);
  return got;
}

/// Whether the AVX-512 dot kernels may use the IFMA (vpmadd52) path.
inline bool simd_ifma() {
#if defined(KP_SIMD_X86)
  return detail::config().ifma.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Test hook: force the non-IFMA AVX-512 dot bodies even on IFMA hardware
/// (and-ed with hardware support, so enabling on non-IFMA CPUs is a no-op).
inline void set_simd_ifma(bool on) {
  detail::config().ifma.store(on && detail::hw_ifma(),
                              std::memory_order_relaxed);
}

/// Snapshot of the dispatch state and how many vector groups (one group =
/// one full-width register of lanes) each kernel family has processed.
struct SimdStats {
  const char* level = "scalar";
  bool ifma = false;
  std::uint64_t dot = 0;
  std::uint64_t sum = 0;
  std::uint64_t gather = 0;
  std::uint64_t skip_zero = 0;
  std::uint64_t batch_inverse = 0;
  std::uint64_t ntt = 0;
  std::uint64_t pointwise = 0;
  std::uint64_t scale = 0;
  std::uint64_t vec = 0;
};

inline SimdStats simd_stats() {
  auto& c = detail::stat_counters();
  SimdStats s;
  s.level = to_string(simd_level());
  s.ifma = simd_ifma();
  s.dot = c.dot.load(std::memory_order_relaxed);
  s.sum = c.sum.load(std::memory_order_relaxed);
  s.gather = c.gather.load(std::memory_order_relaxed);
  s.skip_zero = c.skip_zero.load(std::memory_order_relaxed);
  s.batch_inverse = c.batch_inverse.load(std::memory_order_relaxed);
  s.ntt = c.ntt.load(std::memory_order_relaxed);
  s.pointwise = c.pointwise.load(std::memory_order_relaxed);
  s.scale = c.scale.load(std::memory_order_relaxed);
  s.vec = c.vec.load(std::memory_order_relaxed);
  return s;
}

inline void reset_simd_stats() {
  auto& c = detail::stat_counters();
  c.dot.store(0, std::memory_order_relaxed);
  c.sum.store(0, std::memory_order_relaxed);
  c.gather.store(0, std::memory_order_relaxed);
  c.skip_zero.store(0, std::memory_order_relaxed);
  c.batch_inverse.store(0, std::memory_order_relaxed);
  c.ntt.store(0, std::memory_order_relaxed);
  c.pointwise.store(0, std::memory_order_relaxed);
  c.scale.store(0, std::memory_order_relaxed);
  c.vec.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Shared scalar pieces: limb-accumulator recombination and tails.  These run
// on the host ISA (no target attributes) and use the same Barrett
// reduce_full the scalar kernels use, so the final canonical residue is the
// unique one both paths agree on.

namespace detail {

/// Folds 4x32-bit-limb accumulator sums (weights 2^0, 2^32, 2^64, 2^96) plus
/// a canonical running value into one canonical residue.  Each s_k is a sum
/// over lanes of a 64-bit accumulator, so s_k < 2^64 * lanes <= 2^67 and
/// every intermediate below fits u128.
inline u64 fold_4limb(const fastmod::Barrett& bar, u128 s0, u128 s1, u128 s2,
                      u128 s3, u64 acc) {
  const u64 r_low = bar.reduce_full(s0 + (s1 << 32));
  const u64 r_high = bar.reduce_full(
      static_cast<u128>(bar.reduce_full(s2 + (s3 << 32))) << 64);
  return bar.reduce_full(static_cast<u128>(acc) + r_low + r_high);
}

/// Folds 52-bit-split accumulator sums (weights 2^0, 2^52, 2^104).  The
/// 2^104 weight is applied as two exact shifts by 52 with a reduction in
/// between, since value << 104 could overflow u128.
inline u64 fold_ifma(const fastmod::Barrett& bar, u128 s0, u128 s52, u128 s104,
                     u64 acc) {
  const u64 r0 = bar.reduce_full(s0);
  const u64 r52 =
      bar.reduce_full(static_cast<u128>(bar.reduce_full(s52)) << 52);
  u64 r104 = bar.reduce_full(s104);
  r104 = bar.reduce_full(static_cast<u128>(r104) << 52);
  r104 = bar.reduce_full(static_cast<u128>(r104) << 52);
  return bar.reduce_full(static_cast<u128>(acc) + r0 + r52 + r104);
}

/// Scalar delayed-reduction tail: folds a[i]*b[i], i in [i, n), into the
/// canonical running value exactly as the scalar dot kernel would.
inline u64 dot_tail(const fastmod::Barrett& bar, const u64* a, const u64* b,
                    std::size_t i, std::size_t n, u64 acc) {
  u128 t = acc;
  u64 left = bar.dcap;
  for (; i < n; ++i) {
    t += static_cast<u128>(a[i]) * b[i];
    if (--left == 0) {
      t = bar.reduce_full(t);
      left = bar.dcap;
    }
  }
  return bar.reduce_full(t);
}

/// Moduli small enough for the single-multiplier small-p dot path: operands
/// fit 32 bits exactly and a 64-bit lane accumulator holds >= 64 products.
inline constexpr u64 kSmallPMax = u64{1} << 29;

/// Max vector iterations between spills of the 4-limb accumulators: each
/// iteration adds at most 3 * (2^32 - 1) to a limb accumulator.
inline constexpr std::size_t kLimbBlock = std::size_t{1} << 29;

/// Max vector iterations between spills of the 52-bit-split accumulators:
/// each iteration adds < 2^52 to each accumulator, so 2^11 stays < 2^63.
inline constexpr std::size_t kIfmaBlock = std::size_t{1} << 11;

}  // namespace detail

// ---------------------------------------------------------------------------
// x86-64 kernel bodies.

#if defined(KP_SIMD_X86)

// GCC's AVX-512 headers route many intrinsics through
// _mm512_undefined_epi32(), which -Wmaybe-uninitialized flags at every
// inline expansion site; the values are write-only merge operands.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

namespace detail {

#define KP_TGT_AVX2 __attribute__((target("avx2")))
#define KP_TGT_AVX512 __attribute__((target("avx512f,avx512dq")))
#define KP_TGT_AVX512IFMA __attribute__((target("avx512f,avx512dq,avx512ifma")))

KP_TGT_AVX512 inline u128 hsum512(__m512i v) {
  alignas(64) u64 t[8];
  _mm512_store_si512(reinterpret_cast<__m512i*>(t), v);
  u128 s = 0;
  for (int k = 0; k < 8; ++k) s += t[k];
  return s;
}

KP_TGT_AVX2 inline u128 hsum256(__m256i v) {
  alignas(32) u64 t[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(t), v);
  return static_cast<u128>(t[0]) + t[1] + t[2] + t[3];
}

/// Exact high 64 bits of a 64x64 product per lane, via four 32x32 partial
/// products.  t = lo32(ll>>32 + lo32(lh) + lo32(hl)) cannot overflow: it is
/// at most 3*(2^32-1) < 2^34.
KP_TGT_AVX512 inline __m512i mulhi64_512(__m512i a, __m512i b) {
  const __m512i m32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i ah = _mm512_srli_epi64(a, 32);
  const __m512i bh = _mm512_srli_epi64(b, 32);
  const __m512i ll = _mm512_mul_epu32(a, b);
  const __m512i lh = _mm512_mul_epu32(a, bh);
  const __m512i hl = _mm512_mul_epu32(ah, b);
  const __m512i hh = _mm512_mul_epu32(ah, bh);
  const __m512i t = _mm512_add_epi64(
      _mm512_srli_epi64(ll, 32),
      _mm512_add_epi64(_mm512_and_si512(lh, m32), _mm512_and_si512(hl, m32)));
  return _mm512_add_epi64(
      _mm512_add_epi64(hh, _mm512_srli_epi64(t, 32)),
      _mm512_add_epi64(_mm512_srli_epi64(lh, 32), _mm512_srli_epi64(hl, 32)));
}

// ---- dot bodies -----------------------------------------------------------

/// 8x64 dot via the 52-bit split: a = lo52(a) + (a >> 52) * 2^52.  vpmadd52
/// masks its operands to 52 bits internally, so the low half needs no
/// explicit mask; the high half is < 2^11 for p < 2^63.  Seven multiply-adds
/// per 8 lanes, each into its OWN accumulator (the 4-cycle vpmadd52 latency
/// chain is the bottleneck otherwise), two independent 8-lane groups in
/// flight per iteration.
KP_TGT_AVX512IFMA inline u64 dot_ifma_512(const fastmod::Barrett& bar,
                                          const u64* a, const u64* b,
                                          std::size_t n) {
  const __m512i zero = _mm512_setzero_si512();
  u64 acc = 0;
  std::size_t i = 0;
  while (i + 16 <= n) {
    std::size_t iters = (n - i) / 16;
    if (iters > kIfmaBlock) iters = kIfmaBlock;
    const std::size_t end = i + iters * 16;
    __m512i w0a = zero, w52a0 = zero, w52a1 = zero, w52a2 = zero;
    __m512i w104a0 = zero, w104a1 = zero, w104a2 = zero;
    __m512i w0b = zero, w52b0 = zero, w52b1 = zero, w52b2 = zero;
    __m512i w104b0 = zero, w104b1 = zero, w104b2 = zero;
    for (; i < end; i += 16) {
      const __m512i va = _mm512_loadu_si512(a + i);
      const __m512i vb = _mm512_loadu_si512(b + i);
      const __m512i va1 = _mm512_srli_epi64(va, 52);
      const __m512i vb1 = _mm512_srli_epi64(vb, 52);
      w0a = _mm512_madd52lo_epu64(w0a, va, vb);
      w52a0 = _mm512_madd52hi_epu64(w52a0, va, vb);
      w52a1 = _mm512_madd52lo_epu64(w52a1, va, vb1);
      w52a2 = _mm512_madd52lo_epu64(w52a2, va1, vb);
      w104a0 = _mm512_madd52hi_epu64(w104a0, va, vb1);
      w104a1 = _mm512_madd52hi_epu64(w104a1, va1, vb);
      w104a2 = _mm512_madd52lo_epu64(w104a2, va1, vb1);
      const __m512i vc = _mm512_loadu_si512(a + i + 8);
      const __m512i vd = _mm512_loadu_si512(b + i + 8);
      const __m512i vc1 = _mm512_srli_epi64(vc, 52);
      const __m512i vd1 = _mm512_srli_epi64(vd, 52);
      w0b = _mm512_madd52lo_epu64(w0b, vc, vd);
      w52b0 = _mm512_madd52hi_epu64(w52b0, vc, vd);
      w52b1 = _mm512_madd52lo_epu64(w52b1, vc, vd1);
      w52b2 = _mm512_madd52lo_epu64(w52b2, vc1, vd);
      w104b0 = _mm512_madd52hi_epu64(w104b0, vc, vd1);
      w104b1 = _mm512_madd52hi_epu64(w104b1, vc1, vd);
      w104b2 = _mm512_madd52lo_epu64(w104b2, vc1, vd1);
    }
    const u128 s0 = hsum512(w0a) + hsum512(w0b);
    const u128 s52 = hsum512(w52a0) + hsum512(w52a1) + hsum512(w52a2) +
                     hsum512(w52b0) + hsum512(w52b1) + hsum512(w52b2);
    const u128 s104 = hsum512(w104a0) + hsum512(w104a1) + hsum512(w104a2) +
                      hsum512(w104b0) + hsum512(w104b1) + hsum512(w104b2);
    acc = fold_ifma(bar, s0, s52, s104, acc);
  }
  return dot_tail(bar, a, b, i, n, acc);
}

/// 8x64 dot via 4 32-bit limbs per product (no 64-bit multiplier needed).
KP_TGT_AVX512 inline u64 dot_4limb_512(const fastmod::Barrett& bar,
                                       const u64* a, const u64* b,
                                       std::size_t n) {
  const __m512i m32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i zero = _mm512_setzero_si512();
  u64 acc = 0;
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::size_t iters = (n - i) / 8;
    if (iters > kLimbBlock) iters = kLimbBlock;
    const std::size_t end = i + iters * 8;
    __m512i s0 = zero, s1 = zero, s2 = zero, s3 = zero;
    for (; i < end; i += 8) {
      const __m512i va = _mm512_loadu_si512(a + i);
      const __m512i vb = _mm512_loadu_si512(b + i);
      const __m512i ah = _mm512_srli_epi64(va, 32);
      const __m512i bh = _mm512_srli_epi64(vb, 32);
      const __m512i ll = _mm512_mul_epu32(va, vb);
      const __m512i lh = _mm512_mul_epu32(va, bh);
      const __m512i hl = _mm512_mul_epu32(ah, vb);
      const __m512i hh = _mm512_mul_epu32(ah, bh);
      s0 = _mm512_add_epi64(s0, _mm512_and_si512(ll, m32));
      s1 = _mm512_add_epi64(
          s1, _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                               _mm512_add_epi64(_mm512_and_si512(lh, m32),
                                                _mm512_and_si512(hl, m32))));
      s2 = _mm512_add_epi64(
          s2, _mm512_add_epi64(_mm512_and_si512(hh, m32),
                               _mm512_add_epi64(_mm512_srli_epi64(lh, 32),
                                                _mm512_srli_epi64(hl, 32))));
      s3 = _mm512_add_epi64(s3, _mm512_srli_epi64(hh, 32));
    }
    acc = fold_4limb(bar, hsum512(s0), hsum512(s1), hsum512(s2), hsum512(s3),
                     acc);
  }
  return dot_tail(bar, a, b, i, n, acc);
}

/// 8x64 dot for p <= 2^29: operands fit 32 bits, one vpmuludq per 8 lanes,
/// and a 64-bit lane accumulator holds >= 64 products between spills.
KP_TGT_AVX512 inline u64 dot_smallp_512(const fastmod::Barrett& bar,
                                        const u64* a, const u64* b,
                                        std::size_t n) {
  const u64 cap = ~u64{0} / ((bar.p - 1) * (bar.p - 1));
  u64 acc = 0;
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::size_t iters = (n - i) / 8;
    if (iters > cap) iters = cap;
    const std::size_t end = i + iters * 8;
    __m512i s = _mm512_setzero_si512();
    for (; i < end; i += 8) {
      s = _mm512_add_epi64(s, _mm512_mul_epu32(_mm512_loadu_si512(a + i),
                                               _mm512_loadu_si512(b + i)));
    }
    acc = bar.reduce_full(static_cast<u128>(acc) + hsum512(s));
  }
  return dot_tail(bar, a, b, i, n, acc);
}

/// 4x64 dot, 4-limb scheme (see dot_4limb_512).
KP_TGT_AVX2 inline u64 dot_4limb_256(const fastmod::Barrett& bar, const u64* a,
                                     const u64* b, std::size_t n) {
  const __m256i m32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i zero = _mm256_setzero_si256();
  u64 acc = 0;
  std::size_t i = 0;
  while (i + 4 <= n) {
    std::size_t iters = (n - i) / 4;
    if (iters > kLimbBlock) iters = kLimbBlock;
    const std::size_t end = i + iters * 4;
    __m256i s0 = zero, s1 = zero, s2 = zero, s3 = zero;
    for (; i < end; i += 4) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      const __m256i ah = _mm256_srli_epi64(va, 32);
      const __m256i bh = _mm256_srli_epi64(vb, 32);
      const __m256i ll = _mm256_mul_epu32(va, vb);
      const __m256i lh = _mm256_mul_epu32(va, bh);
      const __m256i hl = _mm256_mul_epu32(ah, vb);
      const __m256i hh = _mm256_mul_epu32(ah, bh);
      s0 = _mm256_add_epi64(s0, _mm256_and_si256(ll, m32));
      s1 = _mm256_add_epi64(
          s1, _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                               _mm256_add_epi64(_mm256_and_si256(lh, m32),
                                                _mm256_and_si256(hl, m32))));
      s2 = _mm256_add_epi64(
          s2, _mm256_add_epi64(_mm256_and_si256(hh, m32),
                               _mm256_add_epi64(_mm256_srli_epi64(lh, 32),
                                                _mm256_srli_epi64(hl, 32))));
      s3 = _mm256_add_epi64(s3, _mm256_srli_epi64(hh, 32));
    }
    acc = fold_4limb(bar, hsum256(s0), hsum256(s1), hsum256(s2), hsum256(s3),
                     acc);
  }
  return dot_tail(bar, a, b, i, n, acc);
}

/// 4x64 dot for p <= 2^29 (see dot_smallp_512).
KP_TGT_AVX2 inline u64 dot_smallp_256(const fastmod::Barrett& bar,
                                      const u64* a, const u64* b,
                                      std::size_t n) {
  const u64 cap = ~u64{0} / ((bar.p - 1) * (bar.p - 1));
  u64 acc = 0;
  std::size_t i = 0;
  while (i + 4 <= n) {
    std::size_t iters = (n - i) / 4;
    if (iters > cap) iters = cap;
    const std::size_t end = i + iters * 4;
    __m256i s = _mm256_setzero_si256();
    for (; i < end; i += 4) {
      s = _mm256_add_epi64(
          s, _mm256_mul_epu32(
                 _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
                 _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
    }
    acc = bar.reduce_full(static_cast<u128>(acc) + hsum256(s));
  }
  return dot_tail(bar, a, b, i, n, acc);
}

/// Internal dot dispatch shared by dot and dot_skip_zero (no stats/threshold
/// here; the public wrappers own those).  Level must be >= kAvx2.
inline u64 dot_dispatch(SimdLevel lvl, const fastmod::Barrett& bar,
                        const u64* a, const u64* b, std::size_t n) {
  if (lvl == SimdLevel::kAvx512) {
    if (bar.p <= kSmallPMax) return dot_smallp_512(bar, a, b, n);
    if (simd_ifma()) return dot_ifma_512(bar, a, b, n);
    return dot_4limb_512(bar, a, b, n);
  }
  if (bar.p <= kSmallPMax) return dot_smallp_256(bar, a, b, n);
  return dot_4limb_256(bar, a, b, n);
}

// ---- sum bodies -----------------------------------------------------------

/// 8x64 sum with per-lane lo/hi carry tracking: residues are < 2^63, so
/// lane wraps are exact and counted; the recombined total fits u128 for any
/// realizable n.
KP_TGT_AVX512 inline u64 sum_512(const fastmod::Barrett& bar, const u64* a,
                                 std::size_t n) {
  __m512i lo = _mm512_setzero_si512();
  __m512i hi = _mm512_setzero_si512();
  const __m512i one = _mm512_set1_epi64(1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_loadu_si512(a + i);
    lo = _mm512_add_epi64(lo, x);
    const __mmask8 c = _mm512_cmplt_epu64_mask(lo, x);
    hi = _mm512_mask_add_epi64(hi, c, hi, one);
  }
  u128 t = hsum512(lo) + (hsum512(hi) << 64);
  for (; i < n; ++i) t += a[i];
  return bar.reduce_full(t);
}

/// 4x64 sum; AVX2 lacks unsigned compares, so the wrap test flips signs.
KP_TGT_AVX2 inline u64 sum_256(const fastmod::Barrett& bar, const u64* a,
                               std::size_t n) {
  __m256i lo = _mm256_setzero_si256();
  __m256i hi = _mm256_setzero_si256();
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    lo = _mm256_add_epi64(lo, x);
    // wrapped iff new lo < x (unsigned): compare with the sign bit flipped.
    const __m256i wrapped = _mm256_cmpgt_epi64(_mm256_xor_si256(x, sign),
                                               _mm256_xor_si256(lo, sign));
    hi = _mm256_sub_epi64(hi, wrapped);  // wrapped lanes are -1
  }
  u128 t = hsum256(lo) + (hsum256(hi) << 64);
  for (; i < n; ++i) t += a[i];
  return bar.reduce_full(t);
}

// ---- gathered dot ---------------------------------------------------------

/// 8x64 gathered dot: contiguous val loads, x gathered through col.  Uses
/// the 4-limb product scheme; the gather, not the multiply, dominates.
KP_TGT_AVX512 inline u64 dot_gather_512(const fastmod::Barrett& bar,
                                        const u64* val, const std::size_t* col,
                                        const u64* x, std::size_t n) {
  static_assert(sizeof(std::size_t) == sizeof(u64),
                "i64 gather needs 64-bit indices");
  const __m512i m32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i zero = _mm512_setzero_si512();
  u64 acc = 0;
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::size_t iters = (n - i) / 8;
    if (iters > kLimbBlock) iters = kLimbBlock;
    const std::size_t end = i + iters * 8;
    __m512i s0 = zero, s1 = zero, s2 = zero, s3 = zero;
    for (; i < end; i += 8) {
      const __m512i va = _mm512_loadu_si512(val + i);
      const __m512i idx = _mm512_loadu_si512(col + i);
      const __m512i vb = _mm512_i64gather_epi64(idx, x, 8);
      const __m512i ah = _mm512_srli_epi64(va, 32);
      const __m512i bh = _mm512_srli_epi64(vb, 32);
      const __m512i ll = _mm512_mul_epu32(va, vb);
      const __m512i lh = _mm512_mul_epu32(va, bh);
      const __m512i hl = _mm512_mul_epu32(ah, vb);
      const __m512i hh = _mm512_mul_epu32(ah, bh);
      s0 = _mm512_add_epi64(s0, _mm512_and_si512(ll, m32));
      s1 = _mm512_add_epi64(
          s1, _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                               _mm512_add_epi64(_mm512_and_si512(lh, m32),
                                                _mm512_and_si512(hl, m32))));
      s2 = _mm512_add_epi64(
          s2, _mm512_add_epi64(_mm512_and_si512(hh, m32),
                               _mm512_add_epi64(_mm512_srli_epi64(lh, 32),
                                                _mm512_srli_epi64(hl, 32))));
      s3 = _mm512_add_epi64(s3, _mm512_srli_epi64(hh, 32));
    }
    acc = fold_4limb(bar, hsum512(s0), hsum512(s1), hsum512(s2), hsum512(s3),
                     acc);
  }
  u128 t = acc;
  u64 left = bar.dcap;
  for (; i < n; ++i) {
    t += static_cast<u128>(val[i]) * x[col[i]];
    if (--left == 0) {
      t = bar.reduce_full(t);
      left = bar.dcap;
    }
  }
  return bar.reduce_full(t);
}

// ---- batched CSR row product (SpMM) ---------------------------------------

/// One CSR row against a row-major n x b block for p <= 2^29:
/// out[k] = sum_j val[j] * xt[col[j] * b + k] for a lane chunk of up to 8
/// block columns.  The block transpose makes every entry's products
/// contiguous loads -- no gathers, one vpmuludq per entry per 8 columns --
/// which is the batched sparse apply's main single-core advantage over
/// per-vector dot_gather.  Masked lanes cover chunk < 8 (masked-off lanes
/// never touch memory).  64-bit lane accumulators spill into exact u128
/// totals, so the result is the canonical residue of the true sum.
KP_TGT_AVX512 inline void spmm_row_smallp_512(const fastmod::Barrett& bar,
                                              const u64* val,
                                              const std::size_t* col,
                                              const u64* xt, std::size_t b,
                                              std::size_t chunk,
                                              std::size_t nnz, u64* out) {
  const __mmask8 m = static_cast<__mmask8>((1u << chunk) - 1);
  const u64 cap = ~u64{0} / ((bar.p - 1) * (bar.p - 1));
  u128 acc[8] = {};
  u64 tmp[8];
  std::size_t j = 0;
  while (j < nnz) {
    std::size_t iters = nnz - j;
    if (iters > cap) iters = cap;
    const std::size_t end = j + iters;
    __m512i s = _mm512_setzero_si512();
    for (; j < end; ++j) {
      const __m512i vx = _mm512_maskz_loadu_epi64(m, xt + col[j] * b);
      const __m512i vv = _mm512_set1_epi64(static_cast<long long>(val[j]));
      s = _mm512_add_epi64(s, _mm512_mul_epu32(vv, vx));
    }
    _mm512_storeu_si512(tmp, s);
    for (std::size_t k = 0; k < chunk; ++k) acc[k] += tmp[k];
  }
  for (std::size_t k = 0; k < chunk; ++k) out[k] = bar.reduce_full(acc[k]);
}

// ---- nonzero counting (for dot_skip_zero's accounting) --------------------

KP_TGT_AVX512 inline std::size_t count_nonzero_512(const u64* a,
                                                   std::size_t n) {
  const __m512i zero = _mm512_setzero_si512();
  std::size_t nnz = 0, i = 0;
  for (; i + 8 <= n; i += 8) {
    nnz += static_cast<std::size_t>(__builtin_popcount(
        _mm512_cmpneq_epu64_mask(_mm512_loadu_si512(a + i), zero)));
  }
  for (; i < n; ++i) nnz += (a[i] != 0);
  return nnz;
}

KP_TGT_AVX2 inline std::size_t count_nonzero_256(const u64* a, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t zeros = 0, i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i eq = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), zero);
    zeros += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(eq)))));
  }
  std::size_t nnz = i - zeros;
  for (; i < n; ++i) nnz += (a[i] != 0);
  return nnz;
}

// ---- vector Montgomery (batch_inverse) ------------------------------------

/// REDC of per-lane 128-bit values (hi:lo), canonical output in [0, p).
/// The low words of t + m*p cancel exactly, so the carry into the high word
/// is 1 iff t_lo != 0.
KP_TGT_AVX512 inline __m512i redc_512(__m512i t_hi, __m512i t_lo, __m512i vp,
                                      __m512i vnp) {
  const __m512i m = _mm512_mullo_epi64(t_lo, vnp);
  const __m512i mp_hi = mulhi64_512(m, vp);
  const __mmask8 carry = _mm512_test_epi64_mask(t_lo, t_lo);
  __m512i r = _mm512_add_epi64(t_hi, mp_hi);
  r = _mm512_mask_add_epi64(r, carry, r, _mm512_set1_epi64(1));
  // r < 2p: unsigned-min conditional subtract (r - p wraps when r < p).
  return _mm512_min_epu64(r, _mm512_sub_epi64(r, vp));
}

/// Product of Montgomery-form lanes, in Montgomery form.
KP_TGT_AVX512 inline __m512i mont_mul_512(__m512i a, __m512i b, __m512i vp,
                                          __m512i vnp) {
  return redc_512(mulhi64_512(a, b), _mm512_mullo_epi64(a, b), vp, vnp);
}

/// Lane-blocked Montgomery-trick inversion: lane l owns elements
/// a[l], a[8+l], ...; per-lane prefix-product chains run vectorized, the 8
/// lane totals are combined with ONE extended Euclid (via `inv`), and the
/// backward pass is vectorized again.  Field inverses are unique, so the
/// values are bit-identical to the scalar trick.  Requires odd p and
/// nonzero entries (the caller pre-scans).
KP_TGT_AVX512 inline void batch_inverse_512(const fastmod::Montgomery& mont,
                                            u64* a, std::size_t n,
                                            u64 (*inv)(u64, u64)) {
  const std::size_t k_count = n / 8;   // full vector positions
  const std::size_t n8 = k_count * 8;  // elements covered by the vector part
  const __m512i vp = _mm512_set1_epi64(static_cast<long long>(mont.p));
  const __m512i vnp = _mm512_set1_epi64(static_cast<long long>(mont.np));
  const __m512i vr2 = _mm512_set1_epi64(static_cast<long long>(mont.r2));
  const __m512i zero = _mm512_setzero_si512();

  std::vector<u64> am(n8), prefix(n8);
  __m512i run = zero;
  for (std::size_t k = 0; k < k_count; ++k) {
    const __m512i va = _mm512_loadu_si512(a + k * 8);
    const __m512i m = mont_mul_512(va, vr2, vp, vnp);  // to Montgomery form
    _mm512_storeu_si512(am.data() + k * 8, m);
    run = (k == 0) ? m : mont_mul_512(run, m, vp, vnp);
    _mm512_storeu_si512(prefix.data() + k * 8, run);
  }

  // Combine the 8 lane totals (Montgomery domain throughout) with one Euclid.
  alignas(64) u64 lane_total[8];
  _mm512_store_si512(reinterpret_cast<__m512i*>(lane_total), run);
  u64 lane_prefix[8];
  lane_prefix[0] = lane_total[0];
  for (int l = 1; l < 8; ++l) {
    lane_prefix[l] = mont.mul_mont(lane_prefix[l - 1], lane_total[l]);
  }
  const u64 total = mont.from_mont(lane_prefix[7]);
  u64 inv_run = mont.to_mont(inv(total, mont.p));
  alignas(64) u64 lane_inv[8];
  for (int l = 7; l >= 0; --l) {
    lane_inv[l] = (l > 0) ? mont.mul_mont(inv_run, lane_prefix[l - 1])
                          : inv_run;
    inv_run = mont.mul_mont(inv_run, lane_total[l]);
  }

  // Vector backward pass: per-lane running suffix inverses.
  __m512i inv_suffix =
      _mm512_load_si512(reinterpret_cast<const __m512i*>(lane_inv));
  for (std::size_t k = k_count; k-- > 1;) {
    const __m512i pm = _mm512_loadu_si512(prefix.data() + (k - 1) * 8);
    const __m512i inv_elem = mont_mul_512(inv_suffix, pm, vp, vnp);
    const __m512i mk = _mm512_loadu_si512(am.data() + k * 8);
    inv_suffix = mont_mul_512(inv_suffix, mk, vp, vnp);
    _mm512_storeu_si512(a + k * 8, redc_512(zero, inv_elem, vp, vnp));
  }
  _mm512_storeu_si512(a, redc_512(zero, inv_suffix, vp, vnp));

  // Scalar Montgomery trick for the n % 8 tail (one more Euclid; inverses
  // are unique, so grouping does not affect the values).
  if (n8 < n) {
    u64 tail_prefix[8];
    u64 racc = 0;
    for (std::size_t i = n8; i < n; ++i) {
      racc = (i == n8) ? a[i] : mont.mul(racc, a[i]);
      tail_prefix[i - n8] = racc;
    }
    u64 inv_suf = inv(racc, mont.p);
    for (std::size_t i = n; i-- > n8 + 1;) {
      const u64 inv_i = mont.mul(inv_suf, tail_prefix[i - n8 - 1]);
      inv_suf = mont.mul(inv_suf, a[i]);
      a[i] = inv_i;
    }
    a[n8] = inv_suf;
  }
}

// ---- NTT bodies -----------------------------------------------------------

/// One Harvey lazy butterfly on 8 lanes: identical mod-2^64 arithmetic to
/// the scalar shoup_mul_lazy path, so even the [0, 4p) intermediates match.
KP_TGT_AVX512 inline void butterfly_8(u64* lo, u64* hi, const u64* tw,
                                      const u64* twq, __m512i vp,
                                      __m512i vp2) {
  __m512i u = _mm512_loadu_si512(lo);
  const __m512i h = _mm512_loadu_si512(hi);
  const __m512i w = _mm512_loadu_si512(tw);
  const __m512i wq = _mm512_loadu_si512(twq);
  u = _mm512_min_epu64(u, _mm512_sub_epi64(u, vp2));  // u >= 2p ? u - 2p : u
  const __m512i q = mulhi64_512(h, wq);
  const __m512i v = _mm512_sub_epi64(_mm512_mullo_epi64(h, w),
                                     _mm512_mullo_epi64(q, vp));
  _mm512_storeu_si512(lo, _mm512_add_epi64(u, v));
  _mm512_storeu_si512(hi, _mm512_sub_epi64(_mm512_add_epi64(u, vp2), v));
}

inline void butterfly_1(u64* lo, u64* hi, u64 w, u64 wq, u64 p, u64 p2) {
  u64 u = *lo;
  if (u >= p2) u -= p2;
  const u64 v = fastmod::shoup_mul_lazy(*hi, w, wq, p);
  *lo = u + v;
  *hi = u + p2 - v;
}

/// vpermt2q tables for the small-half levels (half = 1, 2, 4): 16
/// consecutive elements hold 16/(2*half) whole blocks; one permute pair
/// splits them into an 8-lane lo vector and an 8-lane hi vector, and the
/// store tables invert the shuffle.  Indexed by log2(half).
alignas(64) inline constexpr u64 kLoadLo[3][8] = {
    {0, 2, 4, 6, 8, 10, 12, 14},
    {0, 1, 4, 5, 8, 9, 12, 13},
    {0, 1, 2, 3, 8, 9, 10, 11},
};
alignas(64) inline constexpr u64 kLoadHi[3][8] = {
    {1, 3, 5, 7, 9, 11, 13, 15},
    {2, 3, 6, 7, 10, 11, 14, 15},
    {4, 5, 6, 7, 12, 13, 14, 15},
};
alignas(64) inline constexpr u64 kStore0[3][8] = {
    {0, 8, 1, 9, 2, 10, 3, 11},
    {0, 1, 8, 9, 2, 3, 10, 11},
    {0, 1, 2, 3, 8, 9, 10, 11},
};
alignas(64) inline constexpr u64 kStore1[3][8] = {
    {4, 12, 5, 13, 6, 14, 7, 15},
    {4, 5, 12, 13, 6, 7, 14, 15},
    {4, 5, 6, 7, 12, 13, 14, 15},
};

/// Lazy butterflies for flat indices [b0, b1) of a level with half >= 8:
/// blocks are walked exactly like the scalar chunk body, with 8-lane
/// butterflies inside each block segment and scalar lanes for remainders.
KP_TGT_AVX512 inline void ntt_level_big_512(u64* d, const u64* tw,
                                            const u64* twq, std::size_t half,
                                            std::size_t b0, std::size_t b1,
                                            u64 p) {
  const u64 p2 = 2 * p;
  const __m512i vp = _mm512_set1_epi64(static_cast<long long>(p));
  const __m512i vp2 = _mm512_set1_epi64(static_cast<long long>(p2));
  const std::size_t len = 2 * half;
  std::size_t b = b0;
  while (b < b1) {
    const std::size_t block = b / half;
    const std::size_t j0 = b - block * half;
    const std::size_t j1 = j0 + (b1 - b) < half ? j0 + (b1 - b) : half;
    u64* lo = d + block * len;
    u64* hi = lo + half;
    std::size_t j = j0;
    for (; j + 8 <= j1; j += 8) {
      butterfly_8(lo + j, hi + j, tw + j, twq + j, vp, vp2);
    }
    for (; j < j1; ++j) butterfly_1(lo + j, hi + j, tw[j], twq[j], p, p2);
    b += j1 - j0;
  }
}

/// Lazy butterflies for half in {1, 2, 4}: whole 16-element (= 8-butterfly)
/// groups go through the permute tables; the sub-group tail falls back to
/// scalar blocks.  Requires b0 and b1 to be multiples of half (the chunk
/// grain is a power of two >= 8, so dispatch_chunks guarantees this).
KP_TGT_AVX512 inline void ntt_level_small_512(u64* d, const u64* tw,
                                              const u64* twq, std::size_t half,
                                              std::size_t b0, std::size_t b1,
                                              u64 p) {
  const u64 p2 = 2 * p;
  const __m512i vp = _mm512_set1_epi64(static_cast<long long>(p));
  const __m512i vp2 = _mm512_set1_epi64(static_cast<long long>(p2));
  const int lg = half == 1 ? 0 : (half == 2 ? 1 : 2);
  const __m512i load_lo =
      _mm512_load_si512(reinterpret_cast<const __m512i*>(kLoadLo[lg]));
  const __m512i load_hi =
      _mm512_load_si512(reinterpret_cast<const __m512i*>(kLoadHi[lg]));
  const __m512i store0 =
      _mm512_load_si512(reinterpret_cast<const __m512i*>(kStore0[lg]));
  const __m512i store1 =
      _mm512_load_si512(reinterpret_cast<const __m512i*>(kStore1[lg]));
  alignas(64) u64 twp[8], twqp[8];
  for (std::size_t j = 0; j < 8; ++j) {
    twp[j] = tw[j % half];
    twqp[j] = twq[j % half];
  }
  const __m512i w = _mm512_load_si512(reinterpret_cast<const __m512i*>(twp));
  const __m512i wq = _mm512_load_si512(reinterpret_cast<const __m512i*>(twqp));

  std::size_t e = 2 * b0;
  const std::size_t e_end = 2 * b1;
  for (; e + 16 <= e_end; e += 16) {
    const __m512i z0 = _mm512_loadu_si512(d + e);
    const __m512i z1 = _mm512_loadu_si512(d + e + 8);
    __m512i u = _mm512_permutex2var_epi64(z0, load_lo, z1);
    const __m512i h = _mm512_permutex2var_epi64(z0, load_hi, z1);
    u = _mm512_min_epu64(u, _mm512_sub_epi64(u, vp2));
    const __m512i q = mulhi64_512(h, wq);
    const __m512i v = _mm512_sub_epi64(_mm512_mullo_epi64(h, w),
                                       _mm512_mullo_epi64(q, vp));
    const __m512i nlo = _mm512_add_epi64(u, v);
    const __m512i nhi = _mm512_sub_epi64(_mm512_add_epi64(u, vp2), v);
    _mm512_storeu_si512(d + e, _mm512_permutex2var_epi64(nlo, store0, nhi));
    _mm512_storeu_si512(d + e + 8,
                        _mm512_permutex2var_epi64(nlo, store1, nhi));
  }
  for (; e < e_end; e += 2 * half) {  // remaining whole blocks, scalar
    for (std::size_t j = 0; j < half; ++j) {
      butterfly_1(d + e + j, d + e + half + j, tw[j], twq[j], p, p2);
    }
  }
}

/// [0, 4p) -> [0, p) normalization, 8 lanes per step.
KP_TGT_AVX512 inline void normalize4p_512(u64* x, std::size_t n, u64 p) {
  const __m512i vp = _mm512_set1_epi64(static_cast<long long>(p));
  const __m512i vp2 = _mm512_set1_epi64(static_cast<long long>(2 * p));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i v = _mm512_loadu_si512(x + i);
    v = _mm512_min_epu64(v, _mm512_sub_epi64(v, vp2));
    v = _mm512_min_epu64(v, _mm512_sub_epi64(v, vp));
    _mm512_storeu_si512(x + i, v);
  }
  for (; i < n; ++i) {
    u64 v = x[i];
    if (v >= 2 * p) v -= 2 * p;
    if (v >= p) v -= p;
    x[i] = v;
  }
}

/// c[i] = c[i] * b[i] mod p, canonical, via the vector Moller-Granlund
/// reduction -- the lane-wise transcription of Barrett::reduce on the exact
/// 128-bit product, so every mod-2^64 wrap matches the scalar code.
KP_TGT_AVX512 inline void pointwise_512(const fastmod::Barrett& bar, u64* c,
                                        const u64* b, std::size_t n) {
  const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(bar.shift));
  const __m128i shc = _mm_cvtsi32_si128(static_cast<int>(64 - bar.shift));
  const __m512i vv = _mm512_set1_epi64(static_cast<long long>(bar.v));
  const __m512i vd = _mm512_set1_epi64(static_cast<long long>(bar.d));
  const __m512i one = _mm512_set1_epi64(1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_loadu_si512(c + i);
    const __m512i y = _mm512_loadu_si512(b + i);
    const __m512i t_hi = mulhi64_512(x, y);
    const __m512i t_lo = _mm512_mullo_epi64(x, y);
    // Normalize the dividend: (nh:nl) = (t_hi:t_lo) << shift (shift >= 1
    // for any p < 2^63).
    const __m512i nh = _mm512_or_si512(_mm512_sll_epi64(t_hi, sh),
                                       _mm512_srl_epi64(t_lo, shc));
    const __m512i nl = _mm512_sll_epi64(t_lo, sh);
    const __m512i qh = mulhi64_512(vv, nh);
    const __m512i ql = _mm512_mullo_epi64(vv, nh);
    const __m512i sum_lo = _mm512_add_epi64(ql, nl);
    const __mmask8 cy = _mm512_cmplt_epu64_mask(sum_lo, ql);
    __m512i qh2 = _mm512_add_epi64(qh, _mm512_add_epi64(nh, one));
    qh2 = _mm512_mask_add_epi64(qh2, cy, qh2, one);
    __m512i r = _mm512_sub_epi64(nl, _mm512_mullo_epi64(qh2, vd));
    const __mmask8 fix = _mm512_cmpgt_epu64_mask(r, sum_lo);
    r = _mm512_mask_add_epi64(r, fix, r, vd);
    const __mmask8 ge = _mm512_cmpge_epu64_mask(r, vd);
    r = _mm512_mask_sub_epi64(r, ge, r, vd);
    _mm512_storeu_si512(c + i, _mm512_srl_epi64(r, sh));
  }
  for (; i < n; ++i) c[i] = bar.mul(c[i], b[i]);
}

/// c[i] = shoup_mul(c[i], w, wq, p), canonical (2 multiplies + min-trick).
KP_TGT_AVX512 inline void shoup_scale_512(u64* c, std::size_t n, u64 w, u64 wq,
                                          u64 p) {
  const __m512i vp = _mm512_set1_epi64(static_cast<long long>(p));
  const __m512i vw = _mm512_set1_epi64(static_cast<long long>(w));
  const __m512i vwq = _mm512_set1_epi64(static_cast<long long>(wq));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_loadu_si512(c + i);
    const __m512i q = mulhi64_512(x, vwq);
    __m512i r = _mm512_sub_epi64(_mm512_mullo_epi64(x, vw),
                                 _mm512_mullo_epi64(q, vp));
    r = _mm512_min_epu64(r, _mm512_sub_epi64(r, vp));  // r < 2p
    _mm512_storeu_si512(c + i, r);
  }
  for (; i < n; ++i) c[i] = fastmod::shoup_mul(c[i], w, wq, p);
}

// ---- elementwise lane bodies (tape batch evaluation) ----------------------
// Canonical residues in, canonical residues out: dst[i] = a[i] op b[i] mod p.
// a, b < p < 2^63, so a + b never wraps 2^64 and a - b never underflows
// after the conditional +p -- the lanes are the literal transcription of the
// fields' scalar formulas, and canonical uniqueness makes any correct
// evaluation bit-identical anyway.

/// dst[i] = a[i] + b[i] mod p (8 lanes; min-trick conditional subtract).
KP_TGT_AVX512 inline void vec_add_512(u64 p, const u64* a, const u64* b,
                                      u64* dst, std::size_t n) {
  const __m512i vp = _mm512_set1_epi64(static_cast<long long>(p));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i s = _mm512_add_epi64(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    _mm512_storeu_si512(dst + i, _mm512_min_epu64(s, _mm512_sub_epi64(s, vp)));
  }
  for (; i < n; ++i) {
    const u64 s = a[i] + b[i];
    dst[i] = s >= p ? s - p : s;
  }
}

/// dst[i] = a[i] - b[i] mod p.
KP_TGT_AVX512 inline void vec_sub_512(u64 p, const u64* a, const u64* b,
                                      u64* dst, std::size_t n) {
  const __m512i vp = _mm512_set1_epi64(static_cast<long long>(p));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_loadu_si512(a + i);
    const __m512i y = _mm512_loadu_si512(b + i);
    const __m512i d = _mm512_sub_epi64(x, y);
    _mm512_storeu_si512(dst + i, _mm512_min_epu64(d, _mm512_add_epi64(d, vp)));
  }
  for (; i < n; ++i) dst[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + p - b[i];
}

/// dst[i] = -a[i] mod p (0 stays 0).
KP_TGT_AVX512 inline void vec_neg_512(u64 p, const u64* a, u64* dst,
                                      std::size_t n) {
  const __m512i vp = _mm512_set1_epi64(static_cast<long long>(p));
  const __m512i zero = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_loadu_si512(a + i);
    const __mmask8 nz = _mm512_cmpneq_epi64_mask(x, zero);
    _mm512_storeu_si512(dst + i,
                        _mm512_maskz_sub_epi64(nz, vp, x));
  }
  for (; i < n; ++i) dst[i] = a[i] == 0 ? 0 : p - a[i];
}

/// dst[i] = a[i] * b[i] mod p, canonical, via the vector Moller-Granlund
/// reduction (the three-address rendition of pointwise_512).
KP_TGT_AVX512 inline void vec_mul_512(const fastmod::Barrett& bar,
                                      const u64* a, const u64* b, u64* dst,
                                      std::size_t n) {
  const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(bar.shift));
  const __m128i shc = _mm_cvtsi32_si128(static_cast<int>(64 - bar.shift));
  const __m512i vv = _mm512_set1_epi64(static_cast<long long>(bar.v));
  const __m512i vd = _mm512_set1_epi64(static_cast<long long>(bar.d));
  const __m512i one = _mm512_set1_epi64(1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_loadu_si512(a + i);
    const __m512i y = _mm512_loadu_si512(b + i);
    const __m512i t_hi = mulhi64_512(x, y);
    const __m512i t_lo = _mm512_mullo_epi64(x, y);
    const __m512i nh = _mm512_or_si512(_mm512_sll_epi64(t_hi, sh),
                                       _mm512_srl_epi64(t_lo, shc));
    const __m512i nl = _mm512_sll_epi64(t_lo, sh);
    const __m512i qh = mulhi64_512(vv, nh);
    const __m512i ql = _mm512_mullo_epi64(vv, nh);
    const __m512i sum_lo = _mm512_add_epi64(ql, nl);
    const __mmask8 cy = _mm512_cmplt_epu64_mask(sum_lo, ql);
    __m512i qh2 = _mm512_add_epi64(qh, _mm512_add_epi64(nh, one));
    qh2 = _mm512_mask_add_epi64(qh2, cy, qh2, one);
    __m512i r = _mm512_sub_epi64(nl, _mm512_mullo_epi64(qh2, vd));
    const __mmask8 fix = _mm512_cmpgt_epu64_mask(r, sum_lo);
    r = _mm512_mask_add_epi64(r, fix, r, vd);
    const __mmask8 ge = _mm512_cmpge_epu64_mask(r, vd);
    r = _mm512_mask_sub_epi64(r, ge, r, vd);
    _mm512_storeu_si512(dst + i, _mm512_srl_epi64(r, sh));
  }
  for (; i < n; ++i) dst[i] = bar.mul(a[i], b[i]);
}

/// dst[i] = (dst[i] - coef * a[i]) mod p: the sigma-basis row update's
/// fused axpy.  The product takes the same Barrett chain as vec_mul_512
/// (canonical residue), then a canonical subtract -- identical values to
/// the scalar mul/sub pair.
KP_TGT_AVX512 inline void vec_submul_512(const fastmod::Barrett& bar, u64 coef,
                                         const u64* a, u64* dst,
                                         std::size_t n) {
  const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(bar.shift));
  const __m128i shc = _mm_cvtsi32_si128(static_cast<int>(64 - bar.shift));
  const __m512i vv = _mm512_set1_epi64(static_cast<long long>(bar.v));
  const __m512i vd = _mm512_set1_epi64(static_cast<long long>(bar.d));
  const __m512i vp = _mm512_set1_epi64(static_cast<long long>(bar.p));
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i y = _mm512_set1_epi64(static_cast<long long>(coef));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_loadu_si512(a + i);
    const __m512i t_hi = mulhi64_512(x, y);
    const __m512i t_lo = _mm512_mullo_epi64(x, y);
    const __m512i nh = _mm512_or_si512(_mm512_sll_epi64(t_hi, sh),
                                       _mm512_srl_epi64(t_lo, shc));
    const __m512i nl = _mm512_sll_epi64(t_lo, sh);
    const __m512i qh = mulhi64_512(vv, nh);
    const __m512i ql = _mm512_mullo_epi64(vv, nh);
    const __m512i sum_lo = _mm512_add_epi64(ql, nl);
    const __mmask8 cy = _mm512_cmplt_epu64_mask(sum_lo, ql);
    __m512i qh2 = _mm512_add_epi64(qh, _mm512_add_epi64(nh, one));
    qh2 = _mm512_mask_add_epi64(qh2, cy, qh2, one);
    __m512i r = _mm512_sub_epi64(nl, _mm512_mullo_epi64(qh2, vd));
    const __mmask8 fix = _mm512_cmpgt_epu64_mask(r, sum_lo);
    r = _mm512_mask_add_epi64(r, fix, r, vd);
    const __mmask8 ge = _mm512_cmpge_epu64_mask(r, vd);
    r = _mm512_mask_sub_epi64(r, ge, r, vd);
    const __m512i prod = _mm512_srl_epi64(r, sh);
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __mmask8 lt = _mm512_cmplt_epu64_mask(d, prod);
    __m512i s = _mm512_sub_epi64(d, prod);
    s = _mm512_mask_add_epi64(s, lt, s, vp);
    _mm512_storeu_si512(dst + i, s);
  }
  for (; i < n; ++i) {
    const u64 t = bar.mul(coef, a[i]);
    dst[i] = dst[i] >= t ? dst[i] - t : dst[i] + bar.p - t;
  }
}

/// AVX2 add: 4 lanes; unsigned s >= p via the sign-bias signed compare
/// (s can exceed 2^63, so both sides are biased by 2^63).
KP_TGT_AVX2 inline void vec_add_256(u64 p, const u64* a, const u64* b,
                                    u64* dst, std::size_t n) {
  const __m256i vp = _mm256_set1_epi64x(static_cast<long long>(p));
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i pm1b = _mm256_set1_epi64x(
      static_cast<long long>((p - 1) ^ 0x8000000000000000ULL));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i s = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i ge = _mm256_cmpgt_epi64(_mm256_xor_si256(s, bias), pm1b);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_sub_epi64(s, _mm256_and_si256(ge, vp)));
  }
  for (; i < n; ++i) {
    const u64 s = a[i] + b[i];
    dst[i] = s >= p ? s - p : s;
  }
}

/// AVX2 sub: operands are canonical (< p < 2^63), so the signed compare
/// needs no bias.
KP_TGT_AVX2 inline void vec_sub_256(u64 p, const u64* a, const u64* b,
                                    u64* dst, std::size_t n) {
  const __m256i vp = _mm256_set1_epi64x(static_cast<long long>(p));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i lt = _mm256_cmpgt_epi64(y, x);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(_mm256_sub_epi64(x, y),
                                         _mm256_and_si256(lt, vp)));
  }
  for (; i < n; ++i) dst[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + p - b[i];
}

/// AVX2 neg.
KP_TGT_AVX2 inline void vec_neg_256(u64 p, const u64* a, u64* dst,
                                    std::size_t n) {
  const __m256i vp = _mm256_set1_epi64x(static_cast<long long>(p));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i nz = _mm256_cmpeq_epi64(x, zero);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_andnot_si256(nz, _mm256_sub_epi64(vp, x)));
  }
  for (; i < n; ++i) dst[i] = a[i] == 0 ? 0 : p - a[i];
}

#undef KP_TGT_AVX2
#undef KP_TGT_AVX512
#undef KP_TGT_AVX512IFMA

}  // namespace detail

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // KP_SIMD_X86

// ---------------------------------------------------------------------------
// NEON kernel bodies (aarch64; compile-gated, exercised by the CI
// cross-compile leg).  Mirrors the AVX2 4-limb / carry-tracking math on
// 2x64 lanes.

#if defined(KP_SIMD_NEON)

namespace detail {

inline u128 hsum_neon(uint64x2_t v) {
  return static_cast<u128>(vgetq_lane_u64(v, 0)) + vgetq_lane_u64(v, 1);
}

inline u64 dot_4limb_neon(const fastmod::Barrett& bar, const u64* a,
                          const u64* b, std::size_t n) {
  const uint64x2_t zero = vdupq_n_u64(0);
  const uint64x2_t m32 = vdupq_n_u64(0xffffffffULL);
  u64 acc = 0;
  std::size_t i = 0;
  while (i + 2 <= n) {
    std::size_t iters = (n - i) / 2;
    if (iters > kLimbBlock) iters = kLimbBlock;
    const std::size_t end = i + iters * 2;
    uint64x2_t s0 = zero, s1 = zero, s2 = zero, s3 = zero;
    for (; i < end; i += 2) {
      const uint64x2_t va = vld1q_u64(a + i);
      const uint64x2_t vb = vld1q_u64(b + i);
      const uint32x2_t al = vmovn_u64(va);
      const uint32x2_t ah = vshrn_n_u64(va, 32);
      const uint32x2_t bl = vmovn_u64(vb);
      const uint32x2_t bh = vshrn_n_u64(vb, 32);
      const uint64x2_t ll = vmull_u32(al, bl);
      const uint64x2_t lh = vmull_u32(al, bh);
      const uint64x2_t hl = vmull_u32(ah, bl);
      const uint64x2_t hh = vmull_u32(ah, bh);
      s0 = vaddq_u64(s0, vandq_u64(ll, m32));
      s1 = vaddq_u64(
          s1, vaddq_u64(vshrq_n_u64(ll, 32),
                        vaddq_u64(vandq_u64(lh, m32), vandq_u64(hl, m32))));
      s2 = vaddq_u64(
          s2, vaddq_u64(vandq_u64(hh, m32),
                        vaddq_u64(vshrq_n_u64(lh, 32), vshrq_n_u64(hl, 32))));
      s3 = vaddq_u64(s3, vshrq_n_u64(hh, 32));
    }
    acc = fold_4limb(bar, hsum_neon(s0), hsum_neon(s1), hsum_neon(s2),
                     hsum_neon(s3), acc);
  }
  return dot_tail(bar, a, b, i, n, acc);
}

inline u64 sum_neon(const fastmod::Barrett& bar, const u64* a, std::size_t n) {
  uint64x2_t lo = vdupq_n_u64(0);
  uint64x2_t hi = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t x = vld1q_u64(a + i);
    lo = vaddq_u64(lo, x);
    // wrapped iff new lo < x (all-ones lanes); subtracting adds the carry.
    hi = vsubq_u64(hi, vreinterpretq_u64_u32(vreinterpretq_u32_u64(
                           vcltq_u64(lo, x))));
  }
  u128 t = hsum_neon(lo) + (hsum_neon(hi) << 64);
  for (; i < n; ++i) t += a[i];
  return bar.reduce_full(t);
}

}  // namespace detail

#endif  // KP_SIMD_NEON

// ---------------------------------------------------------------------------
// Public entry points: dispatch + diagnostics.  Each returns true only when
// the request was fully handled bit-identically; the caller's scalar loop is
// the universal fallback.

/// Contiguous (stride-1) delayed-reduction dot product.
inline bool dot(const fastmod::Barrett& bar, const u64* a, const u64* b,
                std::size_t n, u64* out) {
#if defined(KP_SIMD_X86)
  const SimdLevel lvl = simd_level();
  if (n < kMinSimdN || lvl < SimdLevel::kAvx2) return false;
  *out = detail::dot_dispatch(lvl, bar, a, b, n);
  detail::bump(detail::stat_counters().dot,
               n / (lvl == SimdLevel::kAvx512 ? 8 : 4));
  return true;
#elif defined(KP_SIMD_NEON)
  if (n < kMinSimdN || simd_level() != SimdLevel::kNeon) return false;
  *out = detail::dot_4limb_neon(bar, a, b, n);
  detail::bump(detail::stat_counters().dot, n / 2);
  return true;
#else
  (void)bar;
  (void)a;
  (void)b;
  (void)n;
  (void)out;
  return false;
#endif
}

/// Sum of n residues.
inline bool sum(const fastmod::Barrett& bar, const u64* a, std::size_t n,
                u64* out) {
#if defined(KP_SIMD_X86)
  const SimdLevel lvl = simd_level();
  if (n < kMinSimdN || lvl < SimdLevel::kAvx2) return false;
  *out = lvl == SimdLevel::kAvx512 ? detail::sum_512(bar, a, n)
                                   : detail::sum_256(bar, a, n);
  detail::bump(detail::stat_counters().sum,
               n / (lvl == SimdLevel::kAvx512 ? 8 : 4));
  return true;
#elif defined(KP_SIMD_NEON)
  if (n < kMinSimdN || simd_level() != SimdLevel::kNeon) return false;
  *out = detail::sum_neon(bar, a, n);
  detail::bump(detail::stat_counters().sum, n / 2);
  return true;
#else
  (void)bar;
  (void)a;
  (void)n;
  (void)out;
  return false;
#endif
}

/// Whether the batched CSR row kernel (spmm_row) can run for this modulus
/// at the current dispatch level.  Callers check once per batched apply and
/// fall back to per-vector dot_gather otherwise.
inline bool spmm_ready(const fastmod::Barrett& bar) {
#if defined(KP_SIMD_X86)
  return bar.p <= detail::kSmallPMax && simd_level() == SimdLevel::kAvx512;
#else
  (void)bar;
  return false;
#endif
}

/// Batched CSR row product out[k] = sum_j val[j] * xt[col[j] * b + k] for a
/// chunk of up to 8 block columns of a row-major n x b block.  Returns
/// false when no vector path applies (level, modulus, chunk width).
inline bool spmm_row(const fastmod::Barrett& bar, const u64* val,
                     const std::size_t* col, const u64* xt, std::size_t b,
                     std::size_t chunk, std::size_t nnz, u64* out) {
#if defined(KP_SIMD_X86)
  if (chunk == 0 || chunk > 8 || !spmm_ready(bar)) return false;
  detail::spmm_row_smallp_512(bar, val, col, xt, b, chunk, nnz, out);
  detail::bump(detail::stat_counters().spmm, nnz);
  return true;
#else
  (void)bar;
  (void)val;
  (void)col;
  (void)xt;
  (void)b;
  (void)chunk;
  (void)nnz;
  (void)out;
  return false;
#endif
}

/// Gathered dot sum_k val[k] * x[col[k]] (AVX-512 only: hardware gather).
inline bool dot_gather(const fastmod::Barrett& bar, const u64* val,
                       const std::size_t* col, const u64* x, std::size_t n,
                       u64* out) {
#if defined(KP_SIMD_X86)
  if (n < kMinSimdN || simd_level() != SimdLevel::kAvx512) return false;
  *out = detail::dot_gather_512(bar, val, col, x, n);
  detail::bump(detail::stat_counters().gather, n / 8);
  return true;
#else
  (void)bar;
  (void)val;
  (void)col;
  (void)x;
  (void)n;
  (void)out;
  return false;
#endif
}

/// Zero-skipping dot (stride-1 b only).  Zero entries of `a` contribute 0 to
/// every limb accumulator, so the plain dot body computes the identical
/// canonical value; the nonzero count (for the caller's op accounting) comes
/// from a vector compare pass.
inline bool dot_skip_zero(const fastmod::Barrett& bar, const u64* a,
                          const u64* b, std::size_t n, u64* out,
                          std::size_t* nnz) {
#if defined(KP_SIMD_X86)
  const SimdLevel lvl = simd_level();
  if (n < kMinSimdN || lvl < SimdLevel::kAvx2) return false;
  *nnz = lvl == SimdLevel::kAvx512 ? detail::count_nonzero_512(a, n)
                                   : detail::count_nonzero_256(a, n);
  *out = detail::dot_dispatch(lvl, bar, a, b, n);
  detail::bump(detail::stat_counters().skip_zero,
               n / (lvl == SimdLevel::kAvx512 ? 8 : 4));
  return true;
#else
  (void)bar;
  (void)a;
  (void)b;
  (void)n;
  (void)out;
  (void)nnz;
  return false;
#endif
}

/// Lane-blocked Montgomery-trick batched inversion (AVX-512, odd p).  All
/// entries must be nonzero -- the caller pre-scans and reports zeros through
/// its Status path before dispatching.  `inv` is the scalar extended-Euclid
/// inverse (passed in to keep this header below field/zp.h in the include
/// order).
inline bool batch_inverse(u64 p, u64* a, std::size_t n, u64 (*inv)(u64, u64)) {
#if defined(KP_SIMD_X86)
  if (n < kMinSimdN || (p & 1) == 0 || simd_level() != SimdLevel::kAvx512) {
    return false;
  }
  const fastmod::Montgomery mont(p);
  detail::batch_inverse_512(mont, a, n, inv);
  detail::bump(detail::stat_counters().batch_inverse, n / 8);
  return true;
#else
  (void)p;
  (void)a;
  (void)n;
  (void)inv;
  return false;
#endif
}

/// Harvey lazy butterflies for flat indices [b0, b1) of one level of an
/// in-place transform rooted at d (lane layout per poly/ntt.h: block b/half,
/// lane b%half, len = 2*half).  Requires residues in [0, 4p) with 4p < 2^64
/// (the caller's lazy branch guarantees p < 2^62).  Small halves (1, 2, 4)
/// go through a permute path; they require b0/b1 to be multiples of half,
/// which the power-of-two chunk grain guarantees.
inline bool ntt_level_lazy(u64* d, const u64* tw, const u64* twq,
                           std::size_t half, std::size_t b0, std::size_t b1,
                           u64 p) {
#if defined(KP_SIMD_X86)
  if (b1 - b0 < kMinSimdN || simd_level() != SimdLevel::kAvx512) return false;
  if (half >= 8) {
    detail::ntt_level_big_512(d, tw, twq, half, b0, b1, p);
  } else {
    if ((b0 % half) != 0 || ((b1 - b0) % half) != 0) return false;
    detail::ntt_level_small_512(d, tw, twq, half, b0, b1, p);
  }
  detail::bump(detail::stat_counters().ntt, (b1 - b0) / 8);
  return true;
#else
  (void)d;
  (void)tw;
  (void)twq;
  (void)half;
  (void)b0;
  (void)b1;
  (void)p;
  return false;
#endif
}

/// The transform's final [0, 4p) -> [0, p) normalization pass.
inline bool ntt_normalize4p(u64* x, std::size_t n, u64 p) {
#if defined(KP_SIMD_X86)
  if (n < kMinSimdN || simd_level() != SimdLevel::kAvx512) return false;
  detail::normalize4p_512(x, n, p);
  detail::bump(detail::stat_counters().scale, n / 8);
  return true;
#else
  (void)x;
  (void)n;
  (void)p;
  return false;
#endif
}

/// Pointwise spectrum product c[i] = c[i] * b[i] mod p (canonical).
inline bool ntt_pointwise_mul(const fastmod::Barrett& bar, u64* c,
                              const u64* b, std::size_t n) {
#if defined(KP_SIMD_X86)
  if (n < kMinSimdN || simd_level() != SimdLevel::kAvx512) return false;
  detail::pointwise_512(bar, c, b, n);
  detail::bump(detail::stat_counters().pointwise, n / 8);
  return true;
#else
  (void)bar;
  (void)c;
  (void)b;
  (void)n;
  return false;
#endif
}

/// Constant-multiplier scale c[i] = c[i] * w mod p with w's Shoup quotient.
inline bool ntt_shoup_scale(u64* c, std::size_t n, u64 w, u64 wq, u64 p) {
#if defined(KP_SIMD_X86)
  if (n < kMinSimdN || simd_level() != SimdLevel::kAvx512) return false;
  detail::shoup_scale_512(c, n, w, wq, p);
  detail::bump(detail::stat_counters().scale, n / 8);
  return true;
#else
  (void)c;
  (void)n;
  (void)w;
  (void)wq;
  (void)p;
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Elementwise lane kernels -- the tape evaluator's per-level bodies
// (circuit/tape_eval.h).  dst may alias a or b; canonical in, canonical out.

/// dst[i] = a[i] + b[i] mod p.
inline bool vec_mod_add(u64 p, const u64* a, const u64* b, u64* dst,
                        std::size_t n) {
#if defined(KP_SIMD_X86)
  const SimdLevel l = simd_level();
  if (n < kMinSimdN || l < SimdLevel::kAvx2) return false;
  if (l == SimdLevel::kAvx512) {
    detail::vec_add_512(p, a, b, dst, n);
    detail::bump(detail::stat_counters().vec, n / 8);
  } else {
    detail::vec_add_256(p, a, b, dst, n);
    detail::bump(detail::stat_counters().vec, n / 4);
  }
  return true;
#else
  (void)p;
  (void)a;
  (void)b;
  (void)dst;
  (void)n;
  return false;
#endif
}

/// dst[i] = a[i] - b[i] mod p.
inline bool vec_mod_sub(u64 p, const u64* a, const u64* b, u64* dst,
                        std::size_t n) {
#if defined(KP_SIMD_X86)
  const SimdLevel l = simd_level();
  if (n < kMinSimdN || l < SimdLevel::kAvx2) return false;
  if (l == SimdLevel::kAvx512) {
    detail::vec_sub_512(p, a, b, dst, n);
    detail::bump(detail::stat_counters().vec, n / 8);
  } else {
    detail::vec_sub_256(p, a, b, dst, n);
    detail::bump(detail::stat_counters().vec, n / 4);
  }
  return true;
#else
  (void)p;
  (void)a;
  (void)b;
  (void)dst;
  (void)n;
  return false;
#endif
}

/// dst[i] = -a[i] mod p.
inline bool vec_mod_neg(u64 p, const u64* a, u64* dst, std::size_t n) {
#if defined(KP_SIMD_X86)
  const SimdLevel l = simd_level();
  if (n < kMinSimdN || l < SimdLevel::kAvx2) return false;
  if (l == SimdLevel::kAvx512) {
    detail::vec_neg_512(p, a, dst, n);
    detail::bump(detail::stat_counters().vec, n / 8);
  } else {
    detail::vec_neg_256(p, a, dst, n);
    detail::bump(detail::stat_counters().vec, n / 4);
  }
  return true;
#else
  (void)p;
  (void)a;
  (void)dst;
  (void)n;
  return false;
#endif
}

/// dst[i] = a[i] * b[i] mod p, canonical (AVX-512 only: the vector
/// Moller-Granlund reduction needs mullo_epi64 and unsigned compares).
inline bool vec_mod_mul(const fastmod::Barrett& bar, const u64* a,
                        const u64* b, u64* dst, std::size_t n) {
#if defined(KP_SIMD_X86)
  if (n < kMinSimdN || simd_level() != SimdLevel::kAvx512) return false;
  detail::vec_mul_512(bar, a, b, dst, n);
  detail::bump(detail::stat_counters().vec, n / 8);
  return true;
#else
  (void)bar;
  (void)a;
  (void)b;
  (void)dst;
  (void)n;
  return false;
#endif
}

/// Fused axpy dst[i] = (dst[i] - coef * a[i]) mod p.
inline bool vec_mod_submul(const fastmod::Barrett& bar, u64 coef, const u64* a,
                           u64* dst, std::size_t n) {
#if defined(KP_SIMD_X86)
  if (n < kMinSimdN || simd_level() != SimdLevel::kAvx512) return false;
  detail::vec_submul_512(bar, coef, a, dst, n);
  detail::bump(detail::stat_counters().vec, n / 8);
  return true;
#else
  (void)bar;
  (void)coef;
  (void)a;
  (void)dst;
  (void)n;
  return false;
#endif
}

}  // namespace kp::field::simd

// Extension fields GF(p^k).
//
// The paper needs algebraic extensions in two places: (a) when card(K) is too
// small for the 3n^2/card(S) failure bound to be useful, the computation is
// performed in an extension L over K (section 2); (b) the small-positive-
// characteristic results of section 5 are naturally exercised over GF(2^k).
//
// Elements are coefficient vectors (length k, little-endian) over Z/pZ,
// reduced modulo a monic irreducible polynomial found by random search
// (Rabin's irreducibility test).
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "field/concepts.h"
#include "field/primes.h"
#include "field/zp.h"
#include "util/op_count.h"
#include "util/prng.h"

namespace kp::field {

/// GF(p^k) with runtime p and k.
class GFpk {
 public:
  /// Element: exactly k coefficients over Z/pZ, little-endian.
  using Element = std::vector<std::uint64_t>;

  /// Constructs GF(p^k), finding an irreducible modulus with the given seed.
  GFpk(std::uint64_t p, unsigned k, std::uint64_t seed = 42)
      : p_(p), k_(k) {
    assert(is_prime_u64(p));
    assert(k >= 1);
    kp::util::Prng prng(seed ^ (p * 1000003 + k));
    modulus_ = find_irreducible(prng);
  }

  /// Constructs GF(p^k) with an explicit monic irreducible modulus
  /// x^k + m[k-1] x^{k-1} + ... + m[0] (m has length k).
  GFpk(std::uint64_t p, std::vector<std::uint64_t> modulus_low_coeffs)
      : p_(p),
        k_(static_cast<unsigned>(modulus_low_coeffs.size())),
        modulus_(std::move(modulus_low_coeffs)) {}

  Element zero() const { return Element(k_, 0); }
  Element one() const { return from_int(1); }

  Element add(const Element& a, const Element& b) const {
    count_adds(k_);
    Element out(k_);
    for (unsigned i = 0; i < k_; ++i) {
      const std::uint64_t s = a[i] + b[i];
      out[i] = s >= p_ ? s - p_ : s;
    }
    return out;
  }
  Element sub(const Element& a, const Element& b) const {
    count_adds(k_);
    Element out(k_);
    for (unsigned i = 0; i < k_; ++i) {
      out[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + p_ - b[i];
    }
    return out;
  }
  Element neg(const Element& a) const {
    count_adds(k_);
    Element out(k_);
    for (unsigned i = 0; i < k_; ++i) out[i] = a[i] == 0 ? 0 : p_ - a[i];
    return out;
  }
  Element mul(const Element& a, const Element& b) const {
    // Cost model: GF(p^k) arithmetic is accounted in WORD operations over
    // Z/pZ (k^2 multiplies + k^2 adds for a product), so that kernels which
    // work directly in words (poly/gfpk_ntt.h) are measured in the same
    // unit as kernels that stay in GF(p^k).
    count_muls(static_cast<std::uint64_t>(k_) * k_);
    count_adds(static_cast<std::uint64_t>(k_) * k_);
    return reduce(convolve(a, b));
  }
  Element inv(const Element& a) const {
    kp::util::count_div();
    count_muls(static_cast<std::uint64_t>(k_) * k_ * 4);  // extended Euclid
    assert(!raw_is_zero(a) && "division by zero in GF(p^k)");
    // Extended Euclid over Z/pZ[x] against the modulus polynomial.
    std::vector<std::uint64_t> r0 = full_modulus();
    std::vector<std::uint64_t> r1(a);
    strip(r1);
    std::vector<std::uint64_t> t0, t1{1};
    bool t0_set = false;  // t0 = 0 initially
    while (!r1.empty()) {
      auto [q, r2] = poly_divmod(r0, r1);
      r0 = std::move(r1);
      r1 = std::move(r2);
      // (t0, t1) <- (t1, t0 - q * t1)
      std::vector<std::uint64_t> qt = poly_mul(q, t1);
      std::vector<std::uint64_t> nt =
          t0_set ? poly_sub(t0, qt) : poly_neg(qt);
      t0 = std::move(t1);
      t1 = std::move(nt);
      t0_set = true;
    }
    assert(r0.size() == 1 && "element not invertible (modulus not irreducible?)");
    const std::uint64_t scale = detail::invmod(r0[0], p_);
    Element out(k_, 0);
    for (std::size_t i = 0; i < t0.size(); ++i) {
      out[i] = detail::mulmod(t0[i], scale, p_);
    }
    return out;
  }
  Element div(const Element& a, const Element& b) const {
    return reduce(convolve(a, inv(b)));
  }

  bool is_zero(const Element& a) const {
    kp::util::count_zero_test();
    return raw_is_zero(a);
  }
  bool eq(const Element& a, const Element& b) const { return a == b; }

  Element from_int(std::int64_t v) const {
    Element out(k_, 0);
    const std::int64_t m = v % static_cast<std::int64_t>(p_);
    out[0] = static_cast<std::uint64_t>(m < 0 ? m + static_cast<std::int64_t>(p_) : m);
    return out;
  }
  Element random(kp::util::Prng& prng) const {
    Element out(k_);
    for (auto& c : out) c = prng.below(p_);
    return out;
  }
  /// Uniform over a canonical subset of size min(s, p^k): elements whose
  /// mixed-radix index (base p) is < s.
  Element sample(kp::util::Prng& prng, std::uint64_t s) const {
    // Cap s at p^k without overflow.
    std::uint64_t card = 1;
    bool overflow = false;
    for (unsigned i = 0; i < k_ && !overflow; ++i) {
      if (card > ~std::uint64_t{0} / p_) overflow = true;
      else card *= p_;
    }
    if (!overflow && s > card) s = card;
    std::uint64_t idx = prng.below(s);
    Element out(k_, 0);
    for (unsigned i = 0; i < k_ && idx; ++i) {
      out[i] = idx % p_;
      idx /= p_;
    }
    return out;
  }

  std::uint64_t characteristic() const { return p_; }
  std::uint64_t cardinality() const {
    std::uint64_t card = 1;
    for (unsigned i = 0; i < k_; ++i) {
      if (card > ~std::uint64_t{0} / p_) return 0;  // does not fit: report "huge"
      card *= p_;
    }
    return card;
  }
  std::string to_string(const Element& a) const {
    std::string out = "[";
    for (unsigned i = 0; i < k_; ++i) {
      if (i) out += ",";
      out += std::to_string(a[i]);
    }
    return out + "]";
  }

  std::uint64_t p() const { return p_; }
  unsigned k() const { return k_; }
  /// Low coefficients of the monic modulus (length k).
  const std::vector<std::uint64_t>& modulus() const { return modulus_; }

  /// Reduces an arbitrary-length coefficient vector (entries already in
  /// [0, p)) modulo the field modulus to a canonical element.  Used by the
  /// packed-integer fast multiplication kernel (poly/gfpk_ntt.h).
  Element reduce_coeffs(std::vector<std::uint64_t> v) const {
    if (v.size() < k_) {
      v.resize(k_, 0);
      return v;
    }
    return reduce(std::move(v));
  }

 private:
  static void count_adds(std::uint64_t n) {
    kp::util::tl_op_counts.add += n;
  }
  static void count_muls(std::uint64_t n) {
    kp::util::tl_op_counts.mul += n;
  }

  static bool raw_is_zero(const Element& a) {
    for (auto c : a) {
      if (c) return false;
    }
    return true;
  }
  static void strip(std::vector<std::uint64_t>& v) {
    while (!v.empty() && v.back() == 0) v.pop_back();
  }

  std::vector<std::uint64_t> full_modulus() const {
    std::vector<std::uint64_t> m = modulus_;
    m.push_back(1);
    return m;
  }

  // --- dense Z/pZ[x] helpers (coefficient vectors, stripped) ---

  std::vector<std::uint64_t> convolve(const Element& a, const Element& b) const {
    std::vector<std::uint64_t> out(2 * k_ - 1, 0);
    for (unsigned i = 0; i < k_; ++i) {
      if (a[i] == 0) continue;
      for (unsigned j = 0; j < k_; ++j) {
        out[i + j] =
            (out[i + j] + static_cast<unsigned __int128>(a[i]) * b[j]) % p_;
      }
    }
    return out;
  }

  /// Reduces a (<= 2k-1)-coefficient vector modulo the monic modulus.
  Element reduce(std::vector<std::uint64_t> v) const {
    for (std::size_t d = v.size(); d-- > k_;) {
      const std::uint64_t c = v[d];
      if (c == 0) continue;
      v[d] = 0;
      for (unsigned i = 0; i < k_; ++i) {
        // v[d-k+i] -= c * modulus_[i]
        const std::uint64_t prod = detail::mulmod(c, modulus_[i], p_);
        std::uint64_t& slot = v[d - k_ + i];
        slot = slot >= prod ? slot - prod : slot + p_ - prod;
      }
    }
    v.resize(k_, 0);
    return v;
  }

  std::vector<std::uint64_t> poly_mul(const std::vector<std::uint64_t>& a,
                                      const std::vector<std::uint64_t>& b) const {
    if (a.empty() || b.empty()) return {};
    std::vector<std::uint64_t> out(a.size() + b.size() - 1, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] == 0) continue;
      for (std::size_t j = 0; j < b.size(); ++j) {
        out[i + j] =
            (out[i + j] + static_cast<unsigned __int128>(a[i]) * b[j]) % p_;
      }
    }
    strip(out);
    return out;
  }

  std::vector<std::uint64_t> poly_sub(const std::vector<std::uint64_t>& a,
                                      const std::vector<std::uint64_t>& b) const {
    std::vector<std::uint64_t> out(std::max(a.size(), b.size()), 0);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::uint64_t av = i < a.size() ? a[i] : 0;
      const std::uint64_t bv = i < b.size() ? b[i] : 0;
      out[i] = av >= bv ? av - bv : av + p_ - bv;
    }
    strip(out);
    return out;
  }

  std::vector<std::uint64_t> poly_neg(const std::vector<std::uint64_t>& a) const {
    std::vector<std::uint64_t> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ? p_ - a[i] : 0;
    return out;
  }

  std::pair<std::vector<std::uint64_t>, std::vector<std::uint64_t>> poly_divmod(
      std::vector<std::uint64_t> num, const std::vector<std::uint64_t>& den) const {
    assert(!den.empty());
    if (num.size() < den.size()) return {{}, std::move(num)};
    std::vector<std::uint64_t> quot(num.size() - den.size() + 1, 0);
    const std::uint64_t lead_inv = detail::invmod(den.back(), p_);
    for (std::size_t d = num.size() - 1; d + 1 >= den.size(); --d) {
      const std::uint64_t c = detail::mulmod(num[d], lead_inv, p_);
      if (c) {
        const std::size_t shift = d - (den.size() - 1);
        quot[shift] = c;
        for (std::size_t i = 0; i < den.size(); ++i) {
          const std::uint64_t prod = detail::mulmod(c, den[i], p_);
          std::uint64_t& slot = num[shift + i];
          slot = slot >= prod ? slot - prod : slot + p_ - prod;
        }
      }
      if (d == 0) break;
    }
    strip(num);
    return {std::move(quot), std::move(num)};
  }

  /// x^e mod f via square-and-multiply on polynomials.
  std::vector<std::uint64_t> x_pow_mod(unsigned __int128 e,
                                       const std::vector<std::uint64_t>& f) const {
    std::vector<std::uint64_t> acc{1};
    std::vector<std::uint64_t> base{0, 1};
    base = poly_divmod(base, f).second;
    while (e) {
      if (e & 1) acc = poly_divmod(poly_mul(acc, base), f).second;
      base = poly_divmod(poly_mul(base, base), f).second;
      e >>= 1;
    }
    return acc;
  }

  std::vector<std::uint64_t> poly_gcd(std::vector<std::uint64_t> a,
                                      std::vector<std::uint64_t> b) const {
    while (!b.empty()) {
      auto r = poly_divmod(a, b).second;
      a = std::move(b);
      b = std::move(r);
    }
    return a;
  }

  /// Rabin's test: monic f of degree k is irreducible over Z/pZ iff
  /// x^(p^k) = x (mod f) and gcd(x^(p^(k/q)) - x, f) = 1 for prime q | k.
  bool is_irreducible(const std::vector<std::uint64_t>& f) const {
    auto x_minus = [this, &f](std::vector<std::uint64_t> g) {
      // (g - x) mod f.  The reduction matters when deg f = 1: g is a
      // constant there and g - x has degree 1 = deg f.
      if (g.size() < 2) g.resize(2, 0);
      g[1] = g[1] >= 1 ? g[1] - 1 : p_ - 1;
      strip(g);
      return poly_divmod(std::move(g), f).second;
    };
    unsigned __int128 pk = 1;
    for (unsigned i = 0; i < k_; ++i) pk *= p_;
    if (!x_minus(x_pow_mod(pk, f)).empty()) return false;
    std::vector<std::uint64_t> prime_divisors;
    detail::factor_u64(k_, prime_divisors);
    std::sort(prime_divisors.begin(), prime_divisors.end());
    prime_divisors.erase(
        std::unique(prime_divisors.begin(), prime_divisors.end()),
        prime_divisors.end());
    for (std::uint64_t q : prime_divisors) {
      unsigned __int128 e = 1;
      for (unsigned i = 0; i < k_ / q; ++i) e *= p_;
      auto g = poly_gcd(f, x_minus(x_pow_mod(e, f)));
      if (g.size() != 1) return false;
    }
    return true;
  }

  std::vector<std::uint64_t> find_irreducible(kp::util::Prng& prng) const {
    while (true) {
      std::vector<std::uint64_t> low(k_);
      for (auto& c : low) c = prng.below(p_);
      std::vector<std::uint64_t> f = low;
      f.push_back(1);  // monic degree k
      if (is_irreducible(f)) return low;
    }
  }

  std::uint64_t p_;
  unsigned k_;
  std::vector<std::uint64_t> modulus_;  // low k coefficients of the monic modulus
};

}  // namespace kp::field

#include "field/bigint.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>

namespace kp::field {

namespace {
// Karatsuba pays off once operands exceed this many limbs.
constexpr std::size_t kKaratsubaThreshold = 32;
}  // namespace

BigInt::BigInt(std::int64_t v) {
  negative_ = v < 0;
  // Avoid overflow on INT64_MIN by working in unsigned space.
  std::uint64_t mag =
      negative_ ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  while (mag) {
    limbs_.push_back(static_cast<Limb>(mag & 0xffffffffULL));
    mag >>= kLimbBits;
  }
}

BigInt::BigInt(const std::string& decimal) {
  std::size_t i = 0;
  bool neg = false;
  if (i < decimal.size() && (decimal[i] == '+' || decimal[i] == '-')) {
    neg = decimal[i] == '-';
    ++i;
  }
  assert(i < decimal.size() && "empty numeral");
  BigInt acc;
  for (; i < decimal.size(); ++i) {
    assert(decimal[i] >= '0' && decimal[i] <= '9' && "bad decimal digit");
    acc = acc * BigInt(10) + BigInt(decimal[i] - '0');
  }
  limbs_ = std::move(acc.limbs_);
  negative_ = neg;
  normalize();
}

void BigInt::trim(std::vector<Limb>& v) {
  while (!v.empty() && v.back() == 0) v.pop_back();
}

void BigInt::normalize() {
  trim(limbs_);
  if (limbs_.empty()) negative_ = false;
}

int BigInt::cmp_mag(const std::vector<Limb>& a, const std::vector<Limb>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<BigInt::Limb> BigInt::add_mag(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b) {
  const auto& hi = a.size() >= b.size() ? a : b;
  const auto& lo = a.size() >= b.size() ? b : a;
  std::vector<Limb> out(hi.size() + 1, 0);
  Wide carry = 0;
  for (std::size_t i = 0; i < hi.size(); ++i) {
    Wide s = carry + hi[i] + (i < lo.size() ? lo[i] : 0);
    out[i] = static_cast<Limb>(s);
    carry = s >> kLimbBits;
  }
  out[hi.size()] = static_cast<Limb>(carry);
  trim(out);
  return out;
}

std::vector<BigInt::Limb> BigInt::sub_mag(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b) {
  assert(cmp_mag(a, b) >= 0);
  std::vector<Limb> out(a.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(a[i]) -
                     (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0) - borrow;
    if (d < 0) {
      d += (1LL << kLimbBits);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<Limb>(d);
  }
  assert(borrow == 0);
  trim(out);
  return out;
}

std::vector<BigInt::Limb> BigInt::mul_schoolbook(const std::vector<Limb>& a,
                                                 const std::vector<Limb>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<Limb> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    Wide carry = 0;
    const Wide ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      Wide cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<Limb>(cur);
      carry = cur >> kLimbBits;
    }
    out[i + b.size()] = static_cast<Limb>(carry);
  }
  trim(out);
  return out;
}

std::vector<BigInt::Limb> BigInt::mul_karatsuba(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  auto split = [half](const std::vector<Limb>& v) {
    std::vector<Limb> lo(v.begin(), v.begin() + std::min(half, v.size()));
    std::vector<Limb> hi(v.begin() + std::min(half, v.size()), v.end());
    trim(lo);
    return std::pair{std::move(lo), std::move(hi)};
  };
  auto [a0, a1] = split(a);
  auto [b0, b1] = split(b);
  std::vector<Limb> z0 = mul_mag(a0, b0);
  std::vector<Limb> z2 = mul_mag(a1, b1);
  std::vector<Limb> z1 = mul_mag(add_mag(a0, a1), add_mag(b0, b1));
  z1 = sub_mag(z1, add_mag(z0, z2));  // a0*b1 + a1*b0

  std::vector<Limb> out(a.size() + b.size() + 1, 0);
  auto accumulate = [&out](const std::vector<Limb>& v, std::size_t shift) {
    Wide carry = 0;
    std::size_t i = 0;
    for (; i < v.size(); ++i) {
      Wide s = static_cast<Wide>(out[shift + i]) + v[i] + carry;
      out[shift + i] = static_cast<Limb>(s);
      carry = s >> kLimbBits;
    }
    for (; carry; ++i) {
      Wide s = static_cast<Wide>(out[shift + i]) + carry;
      out[shift + i] = static_cast<Limb>(s);
      carry = s >> kLimbBits;
    }
  };
  accumulate(z0, 0);
  accumulate(z1, half);
  accumulate(z2, 2 * half);
  trim(out);
  return out;
}

std::vector<BigInt::Limb> BigInt::mul_mag(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold) {
    return mul_schoolbook(a, b);
  }
  return mul_karatsuba(a, b);
}

// Knuth TAOCP vol. 2, Algorithm 4.3.1 D.
void BigInt::divmod_mag(const std::vector<Limb>& num,
                        const std::vector<Limb>& den, std::vector<Limb>& quot,
                        std::vector<Limb>& rem) {
  assert(!den.empty() && "division by zero");
  quot.clear();
  rem.clear();
  if (cmp_mag(num, den) < 0) {
    rem = num;
    return;
  }
  if (den.size() == 1) {
    const Wide d = den[0];
    quot.assign(num.size(), 0);
    Wide r = 0;
    for (std::size_t i = num.size(); i-- > 0;) {
      Wide cur = (r << kLimbBits) | num[i];
      quot[i] = static_cast<Limb>(cur / d);
      r = cur % d;
    }
    trim(quot);
    if (r) rem.push_back(static_cast<Limb>(r));
    return;
  }

  // D1: normalize so the top limb of the divisor has its high bit set.
  int shift = 0;
  for (Limb top = den.back(); !(top & 0x80000000u); top <<= 1) ++shift;
  auto shl_limbs = [](const std::vector<Limb>& v, int s) {
    if (s == 0) return v;
    std::vector<Limb> out(v.size() + 1, 0);
    Limb carry = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] = (v[i] << s) | carry;
      carry = static_cast<Limb>(static_cast<Wide>(v[i]) >> (kLimbBits - s));
    }
    out[v.size()] = carry;
    trim(out);
    return out;
  };
  std::vector<Limb> u = shl_limbs(num, shift);
  const std::vector<Limb> v = shl_limbs(den, shift);
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n;  // u.size() >= n because num >= den
  u.resize(u.size() + 1, 0);
  quot.assign(m + 1, 0);

  const Wide v_top = v[n - 1];
  const Wide v_next = v[n - 2];
  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate the quotient digit from the top two/three limbs.
    const Wide numer = (static_cast<Wide>(u[j + n]) << kLimbBits) | u[j + n - 1];
    Wide qhat = numer / v_top;
    Wide rhat = numer % v_top;
    while (qhat >= (Wide(1) << kLimbBits) ||
           qhat * v_next > ((rhat << kLimbBits) | u[j + n - 2])) {
      --qhat;
      rhat += v_top;
      if (rhat >= (Wide(1) << kLimbBits)) break;
    }
    // D4: multiply-and-subtract u[j..j+n] -= qhat * v.
    std::int64_t borrow = 0;
    Wide carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Wide p = qhat * v[i] + carry;
      carry = p >> kLimbBits;
      std::int64_t d = static_cast<std::int64_t>(u[j + i]) -
                       static_cast<std::int64_t>(p & 0xffffffffULL) - borrow;
      if (d < 0) {
        d += (1LL << kLimbBits);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[j + i] = static_cast<Limb>(d);
    }
    std::int64_t d_top = static_cast<std::int64_t>(u[j + n]) -
                         static_cast<std::int64_t>(carry) - borrow;
    if (d_top < 0) {
      // D6: the estimate was one too large; add the divisor back.
      d_top += (1LL << kLimbBits);
      --qhat;
      Wide c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const Wide s = static_cast<Wide>(u[j + i]) + v[i] + c;
        u[j + i] = static_cast<Limb>(s);
        c = s >> kLimbBits;
      }
      d_top += static_cast<std::int64_t>(c);
      d_top &= 0xffffffffLL;
    }
    u[j + n] = static_cast<Limb>(d_top);
    quot[j] = static_cast<Limb>(qhat);
  }
  trim(quot);
  // D8: denormalize the remainder.
  u.resize(n);
  if (shift) {
    Limb carry = 0;
    for (std::size_t i = u.size(); i-- > 0;) {
      const Limb cur = u[i];
      u[i] = (cur >> shift) | carry;
      carry = static_cast<Limb>(static_cast<Wide>(cur)
                                << (kLimbBits - shift));
    }
  }
  trim(u);
  rem = std::move(u);
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  if (negative_ == o.negative_) {
    out.limbs_ = add_mag(limbs_, o.limbs_);
    out.negative_ = negative_;
  } else if (cmp_mag(limbs_, o.limbs_) >= 0) {
    out.limbs_ = sub_mag(limbs_, o.limbs_);
    out.negative_ = negative_;
  } else {
    out.limbs_ = sub_mag(o.limbs_, limbs_);
    out.negative_ = o.negative_;
  }
  out.normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  BigInt out;
  out.limbs_ = mul_mag(limbs_, o.limbs_);
  out.negative_ = negative_ != o.negative_;
  out.normalize();
  return out;
}

void BigInt::divmod(const BigInt& num, const BigInt& den, BigInt& quot,
                    BigInt& rem) {
  divmod_mag(num.limbs_, den.limbs_, quot.limbs_, rem.limbs_);
  quot.negative_ = num.negative_ != den.negative_;
  rem.negative_ = num.negative_;
  quot.normalize();
  rem.normalize();
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt q, r;
  divmod(*this, o, q, r);
  return q;
}

BigInt BigInt::operator%(const BigInt& o) const {
  BigInt q, r;
  divmod(*this, o, q, r);
  return r;
}

bool BigInt::operator==(const BigInt& o) const {
  return negative_ == o.negative_ && limbs_ == o.limbs_;
}

bool BigInt::operator<(const BigInt& o) const {
  if (negative_ != o.negative_) return negative_;
  const int c = cmp_mag(limbs_, o.limbs_);
  return negative_ ? c > 0 : c < 0;
}

namespace {

/// Binary (Stein) GCD on word-size magnitudes: shifts and subtractions only,
/// no division.  Profiling showed Euclid-on-BigInt (Knuth-D per step)
/// dominating small-rational normalization; word-size operands are by far
/// the common case there.
std::uint64_t gcd_binary_u64(std::uint64_t a, std::uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  const int shift = std::countr_zero(a | b);
  a >>= std::countr_zero(a);
  do {
    b >>= std::countr_zero(b);
    if (a > b) std::swap(a, b);
    b -= a;
  } while (b != 0);
  return a << shift;
}

}  // namespace

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  // Euclid while the operands are large; hand off to the word-size binary
  // GCD as soon as both magnitudes fit two limbs (which a % b reaches
  // quickly even for huge inputs, since remainders shrink geometrically).
  while (!b.is_zero()) {
    if (a.limbs_.size() <= 2 && b.limbs_.size() <= 2) {
      auto mag = [](const BigInt& v) -> std::uint64_t {
        std::uint64_t m = v.limbs_.empty() ? 0 : v.limbs_[0];
        if (v.limbs_.size() == 2) m |= static_cast<Wide>(v.limbs_[1]) << 32;
        return m;
      };
      const std::uint64_t g = gcd_binary_u64(mag(a), mag(b));
      BigInt out;
      out.limbs_.assign({static_cast<Limb>(g), static_cast<Limb>(g >> 32)});
      trim(out.limbs_);
      return out;
    }
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::uint64_t BigInt::mod_u64(std::uint64_t m) const {
  assert(m >= 1);
  // Horner over the limbs, most significant first.  The 128-bit intermediate
  // is required: r < m can be up to 2^64 - 1, so (r << 32) | limb overflows
  // 64 bits for any m above 2^32.
  unsigned __int128 r = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    r = ((r << kLimbBits) | limbs_[i]) % m;
  }
  std::uint64_t out = static_cast<std::uint64_t>(r);
  if (negative_ && out != 0) out = m - out;
  return out;
}

BigInt BigInt::pow(std::uint64_t e) const {
  BigInt base = *this, acc(1);
  while (e) {
    if (e & 1) acc *= base;
    base *= base;
    e >>= 1;
  }
  return acc;
}

BigInt BigInt::shl(std::size_t bits) const {
  if (is_zero()) return {};
  const std::size_t limb_shift = bits / kLimbBits;
  const int bit_shift = static_cast<int>(bits % kLimbBits);
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const Wide v = static_cast<Wide>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<Limb>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<Limb>(v >> kLimbBits);
  }
  out.normalize();
  return out;
}

BigInt BigInt::shr(std::size_t bits) const {
  const std::size_t limb_shift = bits / kLimbBits;
  if (limb_shift >= limbs_.size()) return {};
  const int bit_shift = static_cast<int>(bits % kLimbBits);
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    Wide v = static_cast<Wide>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<Wide>(limbs_[i + limb_shift + 1])
           << (kLimbBits - bit_shift);
    }
    out.limbs_[i] = static_cast<Limb>(v);
  }
  out.normalize();
  return out;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * kLimbBits;
  Limb top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::fits_int64() const {
  if (bit_length() < 64) return true;
  // INT64_MIN is the single 64-bit magnitude that still fits when negative.
  return bit_length() == 64 && negative_ && limbs_[0] == 0 &&
         limbs_[1] == 0x80000000u;
}

std::int64_t BigInt::to_int64() const {
  assert(fits_int64());
  std::uint64_t mag = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    mag = (mag << kLimbBits) | limbs_[i];
  }
  return negative_ ? -static_cast<std::int64_t>(mag) : static_cast<std::int64_t>(mag);
}

double BigInt::to_double() const {
  double out = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Peel 9 decimal digits at a time with single-limb division.
  std::vector<Limb> mag = limbs_;
  std::string out;
  while (!mag.empty()) {
    Wide r = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      const Wide cur = (r << kLimbBits) | mag[i];
      mag[i] = static_cast<Limb>(cur / 1000000000u);
      r = cur % 1000000000u;
    }
    trim(mag);
    std::string chunk = std::to_string(r);
    if (!mag.empty()) chunk.insert(0, 9 - chunk.size(), '0');
    out.insert(0, chunk);
  }
  if (negative_) out.insert(0, 1, '-');
  return out;
}

std::size_t BigInt::hash() const {
  std::size_t h = negative_ ? 0x9e3779b97f4a7c15ULL : 0;
  for (Limb l : limbs_) h = h * 1099511628211ULL ^ l;
  return h;
}

}  // namespace kp::field

// The fast-kernel layer: trait-selected fused block operations.
//
// FieldKernels<F> is the customization point that tells the matrix / NTT /
// sequence layers whether a domain's elements are word-sized canonical
// residues that the reduction-free kernels of field/fastmod.h may operate
// on.  The primary template says "no", so every domain -- extension fields,
// rationals, truncated series, and crucially the symbolic
// CircuitBuilderField -- keeps the generic element-by-element path
// unchanged.  Zp<P> and GFp opt in.
//
// THE CONTRACT (tested in tests/test_kernels.cpp):
//   1. bit-identical results: each kernel returns exactly the canonical
//      representatives the reference path produces;
//   2. identical op accounting: a kernel that fuses k logical field
//      operations bulk-charges those same k operations to the thread-local
//      counters, so OpScope measurements cannot tell the paths apart;
//   3. composability: kernels are pure per-call and safe to invoke from
//      pooled ExecutionContext workers (counts fold back to the submitter
//      exactly as the reference ops do).
//
// The kernels themselves are the classic delayed-reduction shapes: inner
// products accumulate raw 128-bit products and reduce once per output
// (spilling every delayed_dot_capacity(p) terms for small headroom), sums
// accumulate 64-bit residues into a 128-bit counter, and batched inversion
// is Montgomery's trick (one extended Euclid plus 3(k-1) multiplies for k
// inverses, still charged as k logical divisions -- the model prices an
// inversion as one division regardless of how it is realized, exactly as
// the seed's extended-Euclid inv() already did).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "field/fastmod.h"
#include "field/simd.h"
#include "field/zp.h"
#include "util/op_count.h"
#include "util/status.h"

namespace kp::field {

/// Primary template: no fast kernels; generic paths only.
template <class F>
struct FieldKernels {
  static constexpr bool kFast = false;
};

/// Compile-time-modulus prime field: a constexpr Barrett context.
template <std::uint64_t P>
struct FieldKernels<Zp<P>> {
  static constexpr bool kFast = true;
  static constexpr const fastmod::Barrett& barrett(const Zp<P>&) {
    return Zp<P>::barrett();
  }
  static std::uint64_t mul_nocount(const Zp<P>&, std::uint64_t a,
                                   std::uint64_t b) {
    return Zp<P>::mul_nocount(a, b);
  }
};

/// Runtime-modulus prime field: the context precomputed by the domain.
template <>
struct FieldKernels<GFp> {
  static constexpr bool kFast = true;
  static const fastmod::Barrett& barrett(const GFp& f) { return f.barrett(); }
  static std::uint64_t mul_nocount(const GFp& f, std::uint64_t a,
                                   std::uint64_t b) {
    return f.mul_nocount(a, b);
  }
};

namespace kernels {

/// Fields whose block operations may go through the fused kernels.
template <class F>
concept FastField =
    FieldKernels<F>::kFast && std::is_same_v<typename F::Element, std::uint64_t>;

/// Uncounted canonical product; for call sites that already charged the
/// operation under another name (e.g. div = one division, like the fields'
/// own mul_nocount, which this forwards to -- REDC for odd moduli).
template <FastField F>
inline std::uint64_t mul_uncounted(const F& f, std::uint64_t a, std::uint64_t b) {
  return FieldKernels<F>::mul_nocount(f, a, b);
}

/// Sum of n residues; replaces balanced_sum's add tree (same canonical
/// value, same n-1 logical additions).  Residues are < p < 2^63, so a
/// 128-bit accumulator cannot overflow for any realizable n.
template <FastField F>
std::uint64_t sum(const F& f, const std::uint64_t* a, std::size_t n) {
  if (n == 0) return 0;
  kp::util::count_adds(n - 1);
  const auto& bar = FieldKernels<F>::barrett(f);
  if (std::uint64_t out; simd::sum(bar, a, n, &out)) return out;
  fastmod::u128 acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i];
  return bar.reduce_full(acc);
}

/// Strided delayed-reduction inner product: sum_i a[i*sa] * b[i*sb] mod p.
/// Accounting matches mul-then-balanced_sum: n multiplications plus n-1
/// additions (zero additions for n <= 1).
template <FastField F>
std::uint64_t dot(const F& f, const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t n, std::size_t sa = 1, std::size_t sb = 1) {
  if (n == 0) return 0;
  kp::util::count_muls(n);
  kp::util::count_adds(n - 1);
  const auto& bar = FieldKernels<F>::barrett(f);
  if (sa == 1 && sb == 1) {
    if (std::uint64_t out; simd::dot(bar, a, b, n, &out)) return out;
  }
  const std::uint64_t cap = bar.dcap;
  fastmod::u128 acc = 0;
  std::uint64_t left = cap;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<fastmod::u128>(a[i * sa]) * b[i * sb];
    if (--left == 0) {
      acc = bar.reduce_full(acc);
      left = cap;
    }
  }
  return bar.reduce_full(acc);
}

/// Inner product that skips zero left-hand entries, mirroring
/// mul_classical's `if (eq(a[k], 0)) continue;`: charges one multiplication
/// per nonzero term and nnz-1 additions.
template <FastField F>
std::uint64_t dot_skip_zero(const F& f, const std::uint64_t* a,
                            const std::uint64_t* b, std::size_t n,
                            std::size_t sb = 1) {
  const auto& bar = FieldKernels<F>::barrett(f);
  if (sb == 1) {
    // Zeros contribute nothing to the accumulators, so the vector path runs
    // the full dot body; nnz comes from a vector compare pass and is what
    // the caller's branchy loop would have charged.
    std::uint64_t out;
    if (std::size_t nnz; simd::dot_skip_zero(bar, a, b, n, &out, &nnz)) {
      if (nnz > 0) {
        kp::util::count_muls(nnz);
        kp::util::count_adds(nnz - 1);
      }
      return out;
    }
  }
  const std::uint64_t cap = bar.dcap;
  fastmod::u128 acc = 0;
  std::uint64_t left = cap;
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    ++nnz;
    acc += static_cast<fastmod::u128>(a[i]) * b[i * sb];
    if (--left == 0) {
      acc = bar.reduce_full(acc);
      left = cap;
    }
  }
  if (nnz > 0) {
    kp::util::count_muls(nnz);
    kp::util::count_adds(nnz - 1);
  }
  return bar.reduce_full(acc);
}

/// Gathered inner product sum_k val[k] * x[col[k]] with the CSR apply's
/// linear-chain accounting (n multiplications and n additions: the
/// reference folds the first term into a zero accumulator).
template <FastField F>
std::uint64_t dot_gather(const F& f, const std::uint64_t* val,
                         const std::size_t* col, const std::uint64_t* x,
                         std::size_t n) {
  kp::util::count_muls(n);
  kp::util::count_adds(n);
  const auto& bar = FieldKernels<F>::barrett(f);
  if (std::uint64_t out; simd::dot_gather(bar, val, col, x, n, &out)) {
    return out;
  }
  const std::uint64_t cap = bar.dcap;
  fastmod::u128 acc = 0;
  std::uint64_t left = cap;
  for (std::size_t k = 0; k < n; ++k) {
    acc += static_cast<fastmod::u128>(val[k]) * x[col[k]];
    if (--left == 0) {
      acc = bar.reduce_full(acc);
      left = cap;
    }
  }
  return bar.reduce_full(acc);
}

/// Whether spmm_row has a vector path for this field at the current dispatch
/// level.  Batched callers check once and pick the transposed-block layout
/// only when it pays.
template <FastField F>
bool spmm_ready(const F& f) {
  return simd::spmm_ready(FieldKernels<F>::barrett(f));
}

/// Batched CSR row product against a row-major n x b transposed block:
/// out[k] = sum_j val[j] * xt[col[j] * b + k] for a chunk of <= 8 block
/// columns.  Replaces `chunk` gathered dots with contiguous masked loads --
/// the same linear reduction chains, so values match dot_gather per lane.
/// Charges nothing: the caller accounts the whole row batch in bulk.
template <FastField F>
void spmm_row(const F& f, const std::uint64_t* val, const std::size_t* col,
              std::size_t len, const std::uint64_t* xt, std::size_t b,
              std::size_t chunk, std::uint64_t* out) {
  const auto& bar = FieldKernels<F>::barrett(f);
  if (simd::spmm_row(bar, val, col, xt, b, chunk, len, out)) return;
  const std::uint64_t cap = bar.dcap;
  for (std::size_t k = 0; k < chunk; ++k) {
    fastmod::u128 acc = 0;
    std::uint64_t left = cap;
    for (std::size_t j = 0; j < len; ++j) {
      acc += static_cast<fastmod::u128>(val[j]) * xt[col[j] * b + k];
      if (--left == 0) {
        acc = bar.reduce_full(acc);
        left = cap;
      }
    }
    out[k] = bar.reduce_full(acc);
  }
}

/// Elementwise lane kernels -- the tape evaluator's per-level bodies
/// (circuit/tape_eval.h).  Each charges the n logical operations a loop of
/// the field's scalar calls would, and canonical residues are unique, so
/// the vector and scalar bodies agree bit-for-bit.  dst may alias a or b.

/// dst[i] = a[i] + b[i], n additions.
template <FastField F>
void add_lanes(const F& f, const std::uint64_t* a, const std::uint64_t* b,
               std::uint64_t* dst, std::size_t n) {
  kp::util::count_adds(n);
  const std::uint64_t p = FieldKernels<F>::barrett(f).p;
  if (simd::vec_mod_add(p, a, b, dst, n)) return;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t s = a[i] + b[i];
    dst[i] = s >= p ? s - p : s;
  }
}

/// dst[i] = a[i] - b[i], n subtractions.
template <FastField F>
void sub_lanes(const F& f, const std::uint64_t* a, const std::uint64_t* b,
               std::uint64_t* dst, std::size_t n) {
  kp::util::count_adds(n);
  const std::uint64_t p = FieldKernels<F>::barrett(f).p;
  if (simd::vec_mod_sub(p, a, b, dst, n)) return;
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + p - b[i];
  }
}

/// dst[i] = -a[i], n negations.
template <FastField F>
void neg_lanes(const F& f, const std::uint64_t* a, std::uint64_t* dst,
               std::size_t n) {
  kp::util::count_adds(n);
  const std::uint64_t p = FieldKernels<F>::barrett(f).p;
  if (simd::vec_mod_neg(p, a, dst, n)) return;
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] == 0 ? 0 : p - a[i];
}

/// dst[i] = a[i] * b[i] without charging -- for call sites that already
/// priced the operation under another name (a division's numerator-times-
/// inverse step).
template <FastField F>
void mul_lanes_uncounted(const F& f, const std::uint64_t* a,
                         const std::uint64_t* b, std::uint64_t* dst,
                         std::size_t n) {
  const auto& bar = FieldKernels<F>::barrett(f);
  if (simd::vec_mod_mul(bar, a, b, dst, n)) return;
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = FieldKernels<F>::mul_nocount(f, a[i], b[i]);
  }
}

/// dst[i] = a[i] * b[i], n multiplications.
template <FastField F>
void mul_lanes(const F& f, const std::uint64_t* a, const std::uint64_t* b,
               std::uint64_t* dst, std::size_t n) {
  kp::util::count_muls(n);
  mul_lanes_uncounted(f, a, b, dst, n);
}

/// Montgomery's batched-inversion trick: inverts a[0..n) in place with ONE
/// extended Euclid and 3(n-1) uncounted multiplies.  Charged as n logical
/// divisions -- the same price as n calls to f.inv() -- and the field
/// inverse is unique, so the values are bit-identical to the one-by-one
/// path.  A zero entry is reported as kDivisionByZero (in every build mode)
/// with the input left untouched; the pre-scan runs before any mutation so
/// callers can propagate the failure without unwinding partial state.
template <FastField F>
kp::util::Status batch_inverse(const F& f, std::uint64_t* a, std::size_t n) {
  if (n == 0) return kp::util::Status::Ok();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == 0) {
      return kp::util::Status::Fail(kp::util::FailureKind::kDivisionByZero,
                                    kp::util::Stage::kNone,
                                    "batch_inverse: zero element");
    }
  }
  kp::util::count_divs(n);
  const auto& bar = FieldKernels<F>::barrett(f);
  if (simd::batch_inverse(bar.p, a, n, &detail::invmod)) {
    return kp::util::Status::Ok();
  }
  std::vector<std::uint64_t> prefix(n);
  std::uint64_t acc = 1;  // p >= 2, so 1 is canonical
  for (std::size_t i = 0; i < n; ++i) {
    acc = mul_uncounted(f, acc, a[i]);
    prefix[i] = acc;
  }
  std::uint64_t inv_suffix = detail::invmod(acc, bar.p);
  for (std::size_t i = n; i-- > 1;) {
    const std::uint64_t inv_i = mul_uncounted(f, inv_suffix, prefix[i - 1]);
    inv_suffix = mul_uncounted(f, inv_suffix, a[i]);
    a[i] = inv_i;
  }
  a[0] = inv_suffix;
  return kp::util::Status::Ok();
}

}  // namespace kernels

}  // namespace kp::field

// Arbitrary-precision signed integers.
//
// The paper works over an *abstract* field; the canonical infinite field is
// Q, which requires exact integer arithmetic of unbounded size (solution
// entries of an n x n integer system have ~ n log n bits by Hadamard's
// bound).  No external bignum library is available offline, so this is a
// from-scratch implementation: sign-magnitude representation over 32-bit
// limbs, schoolbook + Karatsuba multiplication, Knuth Algorithm D division.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kp::field {

/// Signed arbitrary-precision integer.  Value semantics; the magnitude is a
/// little-endian vector of 32-bit limbs with no trailing zero limbs, and
/// zero is represented by an empty limb vector with sign +1.
class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric literal interop
  /// Parses an optionally signed decimal string; asserts on bad input.
  explicit BigInt(const std::string& decimal);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  /// -1, 0, or +1.
  int signum() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  /// Truncated division (C semantics: quotient rounds toward zero).
  BigInt operator/(const BigInt& o) const;
  /// Remainder matching operator/ (same sign as the dividend).
  BigInt operator%(const BigInt& o) const;

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }
  BigInt& operator/=(const BigInt& o) { return *this = *this / o; }
  BigInt& operator%=(const BigInt& o) { return *this = *this % o; }

  /// Computes quotient and remainder in one pass.
  static void divmod(const BigInt& num, const BigInt& den, BigInt& quot,
                     BigInt& rem);

  bool operator==(const BigInt& o) const;
  bool operator!=(const BigInt& o) const { return !(*this == o); }
  bool operator<(const BigInt& o) const;
  bool operator>(const BigInt& o) const { return o < *this; }
  bool operator<=(const BigInt& o) const { return !(o < *this); }
  bool operator>=(const BigInt& o) const { return !(*this < o); }

  /// Greatest common divisor (always non-negative).  Word-size operands --
  /// and the tail of any Euclid run once the values shrink to two limbs --
  /// take a division-free binary (ctz) GCD fast path.
  static BigInt gcd(BigInt a, BigInt b);
  /// Euclidean remainder of this value modulo m (result in [0, m), i.e.
  /// non-negative even for negative inputs).  Requires m >= 1.  This is the
  /// per-entry reduction used to project an integer system into Z/pZ for a
  /// CRT shard, so it avoids materializing any BigInt temporaries.
  std::uint64_t mod_u64(std::uint64_t m) const;
  /// this^e for e >= 0.
  BigInt pow(std::uint64_t e) const;
  /// Arithmetic shift left/right by whole bits.
  BigInt shl(std::size_t bits) const;
  BigInt shr(std::size_t bits) const;

  /// Number of bits in the magnitude (0 for zero).
  std::size_t bit_length() const;
  /// True when the value fits in int64_t.
  bool fits_int64() const;
  std::int64_t to_int64() const;
  /// Approximate conversion (may lose precision / overflow to +-inf).
  double to_double() const;

  std::string to_string() const;

  /// FNV-style hash of the canonical representation.
  std::size_t hash() const;

 private:
  using Limb = std::uint32_t;
  using Wide = std::uint64_t;
  static constexpr int kLimbBits = 32;

  static int cmp_mag(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static std::vector<Limb> add_mag(const std::vector<Limb>& a,
                                   const std::vector<Limb>& b);
  /// Requires |a| >= |b|.
  static std::vector<Limb> sub_mag(const std::vector<Limb>& a,
                                   const std::vector<Limb>& b);
  static std::vector<Limb> mul_mag(const std::vector<Limb>& a,
                                   const std::vector<Limb>& b);
  static std::vector<Limb> mul_schoolbook(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b);
  static std::vector<Limb> mul_karatsuba(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  static void divmod_mag(const std::vector<Limb>& num,
                         const std::vector<Limb>& den, std::vector<Limb>& quot,
                         std::vector<Limb>& rem);
  static void trim(std::vector<Limb>& v);

  void normalize();

  std::vector<Limb> limbs_;
  bool negative_ = false;
};

}  // namespace kp::field

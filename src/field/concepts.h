// Algebraic domain concepts.
//
// All algorithms in this library are generic over an *abstract field*, as in
// the paper: an individual step is an addition, subtraction, multiplication,
// division, or zero-test of field elements.  We follow the LinBox "domain
// object" convention: a domain object F (which may carry runtime data such as
// a modulus) operates on plain value-type elements F::Element.  This supports
// runtime-modulus fields and extension fields without global state.
//
// Two concepts are used:
//   * CommutativeRing  -- enough structure for polynomial arithmetic and
//                         matrix multiplication (e.g. truncated power series).
//   * Field            -- adds division/inversion and is what the paper's
//                         algorithms require.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>

#include "util/prng.h"

namespace kp::field {

template <class R>
concept CommutativeRing = requires(const R r, const typename R::Element a,
                                   const typename R::Element b, kp::util::Prng prng) {
  typename R::Element;
  { r.zero() } -> std::convertible_to<typename R::Element>;
  { r.one() } -> std::convertible_to<typename R::Element>;
  { r.add(a, b) } -> std::convertible_to<typename R::Element>;
  { r.sub(a, b) } -> std::convertible_to<typename R::Element>;
  { r.neg(a) } -> std::convertible_to<typename R::Element>;
  { r.mul(a, b) } -> std::convertible_to<typename R::Element>;
  { r.is_zero(a) } -> std::convertible_to<bool>;
  { r.eq(a, b) } -> std::convertible_to<bool>;
  { r.from_int(std::int64_t{}) } -> std::convertible_to<typename R::Element>;
  { r.random(prng) } -> std::convertible_to<typename R::Element>;
  { r.to_string(a) } -> std::convertible_to<std::string>;
};

template <class F>
concept Field = CommutativeRing<F> &&
    requires(const F f, const typename F::Element a, const typename F::Element b,
             kp::util::Prng prng, std::uint64_t s) {
      { f.inv(a) } -> std::convertible_to<typename F::Element>;
      { f.div(a, b) } -> std::convertible_to<typename F::Element>;
      /// Uniform sample from a canonical subset S of the field with
      /// card(S) = min(s, cardinality).  This is the sample set of the
      /// paper's probability bounds (Lemma 2, Theorem 2, estimate (2)).
      { f.sample(prng, s) } -> std::convertible_to<typename F::Element>;
      /// Characteristic of the field; the paper's main pipeline requires
      /// 0 or > n because Leverrier divides by 2, 3, ..., n.
      { f.characteristic() } -> std::convertible_to<std::uint64_t>;
      /// Number of elements, or 0 for an infinite field.
      { f.cardinality() } -> std::convertible_to<std::uint64_t>;
    };

/// True when the field can divide by every integer 1..n, i.e. characteristic
/// zero or greater than n -- the precondition of Theorems 3, 4, and 6.
template <Field F>
bool supports_leverrier(const F& f, std::size_t n) {
  const std::uint64_t p = f.characteristic();
  return p == 0 || p > n;
}

/// Whether the data-parallel kernels (mat_mul, mat_vec, sparse apply, ...)
/// may issue this domain's operations from several pooled threads at once.
/// True for value-semantic domains (Z/pZ, GF(p^k), Q); a domain that records
/// operations into shared state -- the circuit builder, whose node ids are
/// creation-order dependent -- opts out by declaring
/// `static constexpr bool kSequentialOnly = true;`.
template <class R>
inline constexpr bool concurrent_ops_v =
    !requires { requires static_cast<bool>(R::kSequentialOnly); };

}  // namespace kp::field

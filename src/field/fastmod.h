// Reduction-free word-sized modular arithmetic kernels.
//
// Every `mul` of the seed implementation paid a 128-by-64-bit hardware
// division (`unsigned __int128 % p`, a libgcc __umodti3 call even when the
// modulus is a compile-time constant).  This header provides the classic
// division-free alternatives used by exact-linear-algebra engines
// (NTL/FLINT/LinBox style):
//
//   * Barrett    -- Möller-Granlund "division by invariant integers":
//                   a precomputed 64-bit reciprocal of the normalized
//                   modulus turns a 128-bit reduction into ~3 multiplies.
//                   Works for ANY modulus 2 <= p < 2^63, runtime or
//                   compile time (the constructor is constexpr).
//   * Montgomery -- REDC residue arithmetic for odd p; used for the
//                   single-element `mul` hot path of the compile-time
//                   field Zp<P>, where both REDC passes inline to
//                   straight-line mulx/add code.
//   * Shoup      -- multiplication by a constant with a precomputed
//                   quotient (w' = floor(w * 2^64 / p)): 2 multiplies and
//                   one conditional subtract.  This is the NTT butterfly
//                   workhorse, since twiddle factors are fixed per table.
//
// All routines return CANONICAL representatives in [0, p) and are therefore
// bit-identical to the reference `%` path -- the contract the fast-kernel
// layer (field/kernels.h) is tested against.  Nothing here touches the
// op counters: callers charge the model's logical operation counts.
#pragma once

#include <cassert>
#include <cstdint>

namespace kp::field::fastmod {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// Möller-Granlund reduction context for a fixed modulus 2 <= p < 2^63.
/// Precomputes the normalized divisor d = p << shift (top bit set) and the
/// reciprocal v = floor((2^128 - 1) / d) - 2^64; `reduce` is then the GMP
/// udiv_qrnnd_preinv remainder step (exact for any dividend < p * 2^64).
struct Barrett {
  u64 p = 0;
  unsigned shift = 0;  ///< leading zeros of p
  u64 d = 0;           ///< p << shift, normalized
  u64 v = 0;           ///< reciprocal of d
  u64 dcap = 0;        ///< delayed_dot_capacity(p), cached: computing it
                       ///< needs a 128-bit division, too slow per kernel call

  constexpr Barrett() = default;
  constexpr explicit Barrett(u64 p_) : p(p_) {
    assert(p_ >= 2 && p_ < (1ULL << 63));
    u64 t = p_;
    while (!(t & (1ULL << 63))) {
      t <<= 1;
      ++shift;
    }
    d = p_ << shift;
    v = static_cast<u64>(~static_cast<u128>(0) / d - (static_cast<u128>(1) << 64));
    const u128 sq = static_cast<u128>(p_ - 1) * (p_ - 1);
    const u128 cap = (~static_cast<u128>(0) - (p_ - 1)) / (sq > 0 ? sq : 1);
    dcap = cap > ~static_cast<u64>(0) ? ~static_cast<u64>(0)
                                      : static_cast<u64>(cap);
  }

  /// x mod p, exact, for x < p * 2^64 (covers every product of canonical
  /// operands).  ~3 multiplies, no division.
  constexpr u64 reduce(u128 x) const {
    x <<= shift;
    const u64 nh = static_cast<u64>(x >> 64), nl = static_cast<u64>(x);
    u128 q = static_cast<u128>(v) * nh;
    q += (static_cast<u128>(nh + 1) << 64) + nl;
    const u64 qh = static_cast<u64>(q >> 64), ql = static_cast<u64>(q);
    u64 r = nl - qh * d;
    if (r > ql) r += d;
    if (r >= d) r -= d;
    return r >> shift;
  }

  /// x mod p for ANY 128-bit x: reduce the high limb first, then the
  /// recombined (hi mod p):lo value is < p * 2^64 and one more `reduce`
  /// finishes -- two preinv reductions total, used to drain delayed-
  /// reduction accumulators.
  constexpr u64 reduce_full(u128 x) const {
    const u64 hi = static_cast<u64>(x >> 64), lo = static_cast<u64>(x);
    if (hi == 0) return lo >= p ? reduce(lo) : lo;
    return reduce((static_cast<u128>(reduce(hi)) << 64) | lo);
  }

  constexpr u64 mul(u64 a, u64 b) const {
    return reduce(static_cast<u128>(a) * b);
  }
};

/// Montgomery (REDC) context for an ODD modulus p < 2^63.  Elements stay in
/// canonical form at the API boundary: `mul` chains two REDC passes
/// (a*b -> a*b*R^{-1} -> a*b), trading the 128-bit division for four
/// word multiplies of pure straight-line code.
struct Montgomery {
  u64 p = 0;
  u64 np = 0;  ///< -p^{-1} mod 2^64
  u64 r2 = 0;  ///< 2^128 mod p ("R^2", the canonicalizing factor)

  constexpr Montgomery() = default;
  constexpr explicit Montgomery(u64 p_) : p(p_) {
    assert((p_ & 1) != 0 && p_ < (1ULL << 63));
    u64 x = p_;  // Newton: x <- x(2 - p x) doubles the correct low bits
    for (int i = 0; i < 6; ++i) x *= 2 - p_ * x;
    np = ~x + 1;
    const u64 r1 = static_cast<u64>((static_cast<u128>(1) << 64) % p_);
    r2 = static_cast<u64>(static_cast<u128>(r1) * r1 % p_);
  }

  /// t * R^{-1} mod p for t < p * 2^64, canonical.
  constexpr u64 redc(u128 t) const {
    const u64 m = static_cast<u64>(t) * np;
    const u64 r = static_cast<u64>((t + static_cast<u128>(m) * p) >> 64);
    return r >= p ? r - p : r;
  }

  constexpr u64 to_mont(u64 a) const { return redc(static_cast<u128>(a) * r2); }
  constexpr u64 from_mont(u64 a) const { return redc(a); }
  /// Product of Montgomery-form operands, in Montgomery form.
  constexpr u64 mul_mont(u64 a, u64 b) const {
    return redc(static_cast<u128>(a) * b);
  }
  /// Canonical a * b mod p for canonical operands.
  constexpr u64 mul(u64 a, u64 b) const {
    return redc(static_cast<u128>(redc(static_cast<u128>(a) * b)) * r2);
  }
};

/// Shoup precomputed quotient floor(w * 2^64 / p) for a fixed multiplier w.
constexpr u64 shoup_precompute(u64 w, u64 p) {
  return static_cast<u64>((static_cast<u128>(w) << 64) / p);
}

/// a * w mod p with the quotient wq = shoup_precompute(w, p): one mulhi, one
/// low product, one conditional subtract.  Requires p < 2^63, a < p.
constexpr u64 shoup_mul(u64 a, u64 w, u64 wq, u64 p) {
  const u64 q = static_cast<u64>((static_cast<u128>(a) * wq) >> 64);
  const u64 r = a * w - q * p;  // in [0, 2p), wraparound-exact
  return r >= p ? r - p : r;
}

/// The lazy variant: congruent to a * w and < 2p, without the final
/// correction.  The estimated quotient is off by at most one for ANY a < 2^64
/// (not just a < p), which is what lets Harvey-style NTT butterflies keep
/// residues in [0, 4p) and normalize once at the end.
constexpr u64 shoup_mul_lazy(u64 a, u64 w, u64 wq, u64 p) {
  const u64 q = static_cast<u64>((static_cast<u128>(a) * wq) >> 64);
  return a * w - q * p;
}

/// How many products of canonical operands can be summed into an unsigned
/// 128-bit accumulator that already holds a value < p without overflow;
/// always >= 3 for p < 2^63, so delayed-reduction dots spill at worst every
/// third term and once per output in the common prime range.
constexpr u64 delayed_dot_capacity(u64 p) {
  const u128 sq = static_cast<u128>(p - 1) * (p - 1);
  const u128 cap = (~static_cast<u128>(0) - (p - 1)) / sq;
  return cap > ~static_cast<u64>(0) ? ~static_cast<u64>(0) : static_cast<u64>(cap);
}

}  // namespace kp::field::fastmod

// Exact rational numbers and the field domain Q.
//
// Q is the library's canonical characteristic-zero field: Theorems 3, 4 and 6
// hold over it unconditionally, and the least-squares extension (section 5)
// requires characteristic 0.  Representation is a normalized fraction of
// BigInts (gcd(num, den) = 1, den > 0).
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "field/bigint.h"
#include "util/op_count.h"
#include "util/prng.h"

namespace kp::field {

/// Normalized exact fraction.
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(std::int64_t v) : num_(v), den_(1) {}  // NOLINT: literal interop
  Rational(BigInt num, BigInt den) : num_(std::move(num)), den_(std::move(den)) {
    normalize();
  }

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }
  bool is_zero() const { return num_.is_zero(); }

  Rational operator+(const Rational& o) const {
    return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
  }
  Rational operator-(const Rational& o) const {
    return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
  }
  Rational operator*(const Rational& o) const {
    return Rational(num_ * o.num_, den_ * o.den_);
  }
  Rational operator/(const Rational& o) const {
    assert(!o.is_zero() && "division by zero in Q");
    return Rational(num_ * o.den_, den_ * o.num_);
  }
  Rational operator-() const {
    Rational out = *this;
    out.num_ = -out.num_;
    return out;
  }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const {
    return num_ * o.den_ < o.num_ * den_;
  }

  double to_double() const { return num_.to_double() / den_.to_double(); }

  std::string to_string() const {
    return den_ == BigInt(1) ? num_.to_string()
                             : num_.to_string() + "/" + den_.to_string();
  }

 private:
  void normalize() {
    assert(!den_.is_zero() && "zero denominator");
    if (den_.is_negative()) {
      num_ = -num_;
      den_ = -den_;
    }
    // BigInt::gcd runs a division-free binary GCD once both operands are
    // word-size -- the dominant case here, where profiling showed
    // Euclid-on-BigInt dwarfing the actual rational arithmetic.
    const BigInt g = BigInt::gcd(num_, den_);
    if (g != BigInt(1) && !g.is_zero()) {
      num_ /= g;
      den_ /= g;
    }
    if (num_.is_zero()) den_ = BigInt(1);
  }

  BigInt num_;
  BigInt den_;
};

/// The field domain for Q.  random()/sample() draw uniformly from the
/// canonical sample set S = {0, 1, ..., s-1} of *integers*, matching the
/// paper's model of picking random elements from a finite subset of the
/// field (and keeping bit-growth of the preconditioners modest).
class RationalField {
 public:
  using Element = Rational;

  Element zero() const { return Rational(0); }
  Element one() const { return Rational(1); }
  Element add(const Element& a, const Element& b) const {
    kp::util::count_add();
    return a + b;
  }
  Element sub(const Element& a, const Element& b) const {
    kp::util::count_add();
    return a - b;
  }
  Element neg(const Element& a) const {
    kp::util::count_add();
    return -a;
  }
  Element mul(const Element& a, const Element& b) const {
    kp::util::count_mul();
    return a * b;
  }
  Element inv(const Element& a) const {
    kp::util::count_div();
    return Rational(1) / a;
  }
  Element div(const Element& a, const Element& b) const {
    kp::util::count_div();
    return a / b;
  }
  bool is_zero(const Element& a) const {
    kp::util::count_zero_test();
    return a.is_zero();
  }
  bool eq(const Element& a, const Element& b) const { return a == b; }
  Element from_int(std::int64_t v) const { return Rational(v); }
  Element random(kp::util::Prng& prng) const { return sample(prng, 1u << 20); }
  Element sample(kp::util::Prng& prng, std::uint64_t s) const {
    return Rational(static_cast<std::int64_t>(prng.below(s)));
  }
  std::uint64_t characteristic() const { return 0; }
  std::uint64_t cardinality() const { return 0; }
  std::string to_string(const Element& a) const { return a.to_string(); }
};

}  // namespace kp::field

// Prime fields Z/pZ for word-sized p.
//
// Two flavours:
//   * Zp<P>   -- compile-time modulus; the workhorse for tests and benches.
//   * GFp     -- runtime modulus; used when the modulus is data (e.g. when an
//                experiment sweeps field sizes, or the user supplies p).
//
// Elements are canonical representatives in [0, p), so any p < 2^63 is
// supported.  Every arithmetic operation reports to the thread-local op
// counters (util/op_count.h), which is how benchmarks measure work in the
// paper's unit cost model.
//
// Multiplication is division-free (field/fastmod.h): both fields use
// Montgomery REDC chains for odd moduli (compile-time constants for Zp<P>,
// a context precomputed per domain object for GFp) and fall back to the
// Möller-Granlund/Barrett reciprocal for the lone even prime.  Both produce
// the same canonical representative as the reference 128-bit `%` path bit
// for bit -- field/reference.h keeps that path alive as GFpReference for
// the equivalence tests and benches.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>

#include "field/concepts.h"
#include "field/fastmod.h"
#include "util/op_count.h"
#include "util/prng.h"

namespace kp::field {

namespace detail {

inline std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t p) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % p);
}

/// Modular exponentiation by squaring (no op-counting: used internally for
/// inversion, which the cost model charges as a single division).
inline std::uint64_t powmod(std::uint64_t base, std::uint64_t e, std::uint64_t p) {
  std::uint64_t acc = 1 % p;
  base %= p;
  while (e) {
    if (e & 1) acc = mulmod(acc, base, p);
    base = mulmod(base, base, p);
    e >>= 1;
  }
  return acc;
}

/// Inverse via extended Euclid; requires gcd(a, p) = 1.
inline std::uint64_t invmod(std::uint64_t a, std::uint64_t p) {
  assert(a % p != 0 && "division by zero in Z/pZ");
  std::int64_t t = 0, new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(p),
               new_r = static_cast<std::int64_t>(a % p);
  while (new_r != 0) {
    const std::int64_t q = r / new_r;
    t = std::exchange(new_t, t - q * new_t);
    r = std::exchange(new_r, r - q * new_r);
  }
  assert(r == 1 && "modulus not prime or element not invertible");
  if (t < 0) t += static_cast<std::int64_t>(p);
  return static_cast<std::uint64_t>(t);
}

}  // namespace detail

/// Z/pZ with compile-time prime modulus P.
template <std::uint64_t P>
class Zp {
  static_assert(P >= 2 && P < (1ULL << 63), "modulus out of range");

 public:
  using Element = std::uint64_t;

  constexpr Element zero() const { return 0; }
  constexpr Element one() const { return 1 % P; }

  Element add(Element a, Element b) const {
    kp::util::count_add();
    const Element s = a + b;
    return s >= P ? s - P : s;
  }
  Element sub(Element a, Element b) const {
    kp::util::count_add();
    return a >= b ? a - b : a + P - b;
  }
  Element neg(Element a) const {
    kp::util::count_add();
    return a == 0 ? 0 : P - a;
  }
  Element mul(Element a, Element b) const {
    kp::util::count_mul();
    return mul_nocount(a, b);
  }
  Element inv(Element a) const {
    kp::util::count_div();
    return detail::invmod(a, P);
  }
  Element div(Element a, Element b) const { return mul_nocount(a, inv(b)); }

  bool is_zero(Element a) const {
    kp::util::count_zero_test();
    return a == 0;
  }
  bool eq(Element a, Element b) const { return a == b; }

  Element from_int(std::int64_t v) const {
    const std::int64_t m = v % static_cast<std::int64_t>(P);
    return static_cast<Element>(m < 0 ? m + static_cast<std::int64_t>(P) : m);
  }
  Element random(kp::util::Prng& prng) const { return prng.below(P); }
  Element sample(kp::util::Prng& prng, std::uint64_t s) const {
    return prng.below(s < P ? s : P);
  }

  std::uint64_t characteristic() const { return P; }
  std::uint64_t cardinality() const { return P; }
  std::string to_string(Element a) const { return std::to_string(a); }

  /// The reduction context shared with the block kernels (field/kernels.h).
  static constexpr const fastmod::Barrett& barrett() { return kBarrett; }

  /// Uncounted product (div() already charged one division for its
  /// multiply; the block kernels charge their own bulk counts).
  static Element mul_nocount(Element a, Element b) {
    if constexpr (kUseMontgomery) {
      return kMontgomery.mul(a, b);
    } else {
      return detail::mulmod(a, b, P);
    }
  }

 private:
  static constexpr bool kUseMontgomery = (P & 1) != 0;
  static constexpr fastmod::Montgomery kMontgomery =
      fastmod::Montgomery(kUseMontgomery ? P : 3);
  static constexpr fastmod::Barrett kBarrett = fastmod::Barrett(P);
};

/// Z/pZ with runtime prime modulus.
class GFp {
 public:
  using Element = std::uint64_t;

  explicit GFp(std::uint64_t p)
      : p_(p), odd_((p & 1) != 0), barrett_(p), mont_(odd_ ? p : 3) {
    assert(p >= 2 && p < (1ULL << 63));
  }

  Element zero() const { return 0; }
  Element one() const { return 1 % p_; }

  Element add(Element a, Element b) const {
    kp::util::count_add();
    const Element s = a + b;
    return s >= p_ ? s - p_ : s;
  }
  Element sub(Element a, Element b) const {
    kp::util::count_add();
    return a >= b ? a - b : a + p_ - b;
  }
  Element neg(Element a) const {
    kp::util::count_add();
    return a == 0 ? 0 : p_ - a;
  }
  Element mul(Element a, Element b) const {
    kp::util::count_mul();
    return mul_nocount(a, b);
  }
  Element inv(Element a) const {
    kp::util::count_div();
    return detail::invmod(a, p_);
  }
  Element div(Element a, Element b) const {
    return mul_nocount(a, inv(b));
  }

  bool is_zero(Element a) const {
    kp::util::count_zero_test();
    return a == 0;
  }
  bool eq(Element a, Element b) const { return a == b; }

  Element from_int(std::int64_t v) const {
    const std::int64_t m = v % static_cast<std::int64_t>(p_);
    return static_cast<Element>(m < 0 ? m + static_cast<std::int64_t>(p_) : m);
  }
  Element random(kp::util::Prng& prng) const { return prng.below(p_); }
  Element sample(kp::util::Prng& prng, std::uint64_t s) const {
    return prng.below(s < p_ ? s : p_);
  }

  std::uint64_t characteristic() const { return p_; }
  std::uint64_t cardinality() const { return p_; }
  std::string to_string(Element a) const { return std::to_string(a); }

  std::uint64_t modulus() const { return p_; }

  /// The reduction context shared with the block kernels (field/kernels.h).
  const fastmod::Barrett& barrett() const { return barrett_; }

  /// Uncounted product (div() already charged one division for its
  /// multiply; the block kernels charge their own bulk counts).  REDC when
  /// the modulus is odd -- a double-REDC chain beats even a fast hardware
  /// divider -- and the Barrett reciprocal for the lone even prime.
  Element mul_nocount(Element a, Element b) const {
    return odd_ ? mont_.mul(a, b) : barrett_.mul(a, b);
  }

 private:
  std::uint64_t p_;
  bool odd_;
  fastmod::Barrett barrett_;
  fastmod::Montgomery mont_;
};

/// Default large test primes.  With p ~ 2^61 the failure bound 3n²/|S| of
/// estimate (2) is negligible for any n this library handles.
inline constexpr std::uint64_t kP61 = (1ULL << 61) - 1;  // Mersenne prime
/// NTT-friendly prime p = 5 * 2^55 + 1 (2^55 | p - 1), for fast poly mult.
inline constexpr std::uint64_t kNttPrime = 180143985094819841ULL;

}  // namespace kp::field

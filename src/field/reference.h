// The seed's Z/pZ implementation, frozen.
//
// GFpReference is the runtime-modulus prime field exactly as it existed
// before the fast-kernel layer: every multiplication is a 128-bit `%`
// reduction and every block operation goes down the generic element-by-
// element path (FieldKernels<GFpReference> stays at the non-fast default).
// It exists for two consumers:
//
//   * the kernel-equivalence property tests (tests/test_kernels.cpp), which
//     assert that the Montgomery/Barrett/delayed-reduction/Shoup paths are
//     bit-identical to this field and charge identical op counts;
//   * bench_kernels, which measures the fast layer's wall-clock speedup
//     against the true seed path rather than a de-optimized strawman.
//
// Do not "optimize" this type; its whole value is being the fixed baseline.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "field/concepts.h"
#include "field/zp.h"
#include "util/op_count.h"
#include "util/prng.h"

namespace kp::field {

/// Z/pZ with runtime modulus and seed ("slow reference") arithmetic.
class GFpReference {
 public:
  using Element = std::uint64_t;

  explicit GFpReference(std::uint64_t p) : p_(p) {
    assert(p >= 2 && p < (1ULL << 63));
  }

  Element zero() const { return 0; }
  Element one() const { return 1 % p_; }

  Element add(Element a, Element b) const {
    kp::util::count_add();
    const Element s = a + b;
    return s >= p_ ? s - p_ : s;
  }
  Element sub(Element a, Element b) const {
    kp::util::count_add();
    return a >= b ? a - b : a + p_ - b;
  }
  Element neg(Element a) const {
    kp::util::count_add();
    return a == 0 ? 0 : p_ - a;
  }
  Element mul(Element a, Element b) const {
    kp::util::count_mul();
    return detail::mulmod(a, b, p_);
  }
  Element inv(Element a) const {
    kp::util::count_div();
    return detail::invmod(a, p_);
  }
  Element div(Element a, Element b) const {
    return detail::mulmod(a, inv(b), p_);
  }

  bool is_zero(Element a) const {
    kp::util::count_zero_test();
    return a == 0;
  }
  bool eq(Element a, Element b) const { return a == b; }

  Element from_int(std::int64_t v) const {
    const std::int64_t m = v % static_cast<std::int64_t>(p_);
    return static_cast<Element>(m < 0 ? m + static_cast<std::int64_t>(p_) : m);
  }
  Element random(kp::util::Prng& prng) const { return prng.below(p_); }
  Element sample(kp::util::Prng& prng, std::uint64_t s) const {
    return prng.below(s < p_ ? s : p_);
  }

  std::uint64_t characteristic() const { return p_; }
  std::uint64_t cardinality() const { return p_; }
  std::string to_string(Element a) const { return std::to_string(a); }

  std::uint64_t modulus() const { return p_; }

 private:
  std::uint64_t p_;
};

}  // namespace kp::field

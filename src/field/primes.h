// Deterministic 64-bit primality testing and prime search.
//
// Used to validate user-supplied moduli, to find NTT-friendly primes
// (p = c * 2^k + 1) at runtime, and by the probability experiments that
// sweep over sample-set sizes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "field/zp.h"

namespace kp::field {

/// Deterministic Miller-Rabin for 64-bit integers using the standard witness
/// set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}, which is exact for all
/// n < 3.3 * 10^24.
inline bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = detail::powmod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = detail::mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

/// Smallest prime >= n (n must be < 2^63 - small slack).
inline std::uint64_t next_prime(std::uint64_t n) {
  if (n <= 2) return 2;
  if ((n & 1) == 0) ++n;
  while (!is_prime_u64(n)) n += 2;
  return n;
}

/// Finds a prime p = c * 2^k + 1 with p in [2^(bits-1), 2^bits), i.e. a
/// field with a 2^k-th root of unity, suitable for NTT of length <= 2^k.
inline std::uint64_t find_ntt_prime(int k, int bits = 62) {
  const std::uint64_t step = 1ULL << k;
  for (std::uint64_t c = (1ULL << (bits - 1 - k)) | 1;; c += 2) {
    const std::uint64_t p = c * step + 1;
    if (p >= (1ULL << bits)) break;
    if (is_prime_u64(p)) return p;
  }
  return 0;
}

/// Deterministic NTT-prime iterator: the LARGEST prime p = c * 2^a + 1 with
/// a >= min_two_adicity, p in [2^(bits-1), 2^bits), and p < below (pass
/// below = 0 for "no upper cap beyond 2^bits").  Primality is certified by
/// the deterministic Miller-Rabin above (exact for all 64-bit inputs).
///
/// Iterating
///
///   p0 = next_ntt_prime(bits, a);
///   p1 = next_ntt_prime(bits, a, p0);
///   p2 = next_ntt_prime(bits, a, p1); ...
///
/// walks a strictly descending, machine-independent stream of distinct
/// NTT-friendly primes -- the prime source for CRT sharding
/// (core/crt_shard.h), where "shard i uses the i-th stream prime" must mean
/// the same modulus on every host.  Returns 0 when the range [2^(bits-1),
/// min(below, 2^bits)) holds no further prime of the required shape.
inline std::uint64_t next_ntt_prime(int bits, int min_two_adicity,
                                    std::uint64_t below = 0) {
  if (bits < 3 || bits > 63) return 0;
  const int a = min_two_adicity;
  if (a < 1 || a >= bits - 1) return 0;
  const std::uint64_t step = 1ULL << a;
  const std::uint64_t hi = 1ULL << bits;       // exclusive
  const std::uint64_t lo = 1ULL << (bits - 1);  // inclusive
  const std::uint64_t cap = (below == 0 || below > hi) ? hi : below;
  if (cap <= lo) return 0;
  // Largest c with c * 2^a + 1 < cap; candidates descend from there.  Even c
  // just means two-adicity > a, which still satisfies the minimum, so every
  // c is admissible and the first prime hit really is the largest in range.
  for (std::uint64_t c = (cap - 2) >> a; c >= 1; --c) {
    const std::uint64_t p = c * step + 1;
    if (p < lo) break;
    if (p < cap && is_prime_u64(p)) return p;
  }
  return 0;
}

namespace detail {

/// Pollard's rho (Brent variant) returning a non-trivial factor of composite n.
inline std::uint64_t pollard_rho(std::uint64_t n) {
  if ((n & 1) == 0) return 2;
  std::uint64_t c = 1;
  while (true) {
    std::uint64_t x = 2, y = 2, d = 1;
    auto f = [&](std::uint64_t v) { return (mulmod(v, v, n) + c) % n; };
    while (d == 1) {
      x = f(x);
      y = f(f(y));
      const std::uint64_t diff = x > y ? x - y : y - x;
      d = std::gcd(diff, n);
    }
    if (d != n) return d;
    ++c;  // unlucky cycle; retry with a different polynomial
  }
}

inline void factor_u64(std::uint64_t n, std::vector<std::uint64_t>& primes) {
  if (n == 1) return;
  if (is_prime_u64(n)) {
    primes.push_back(n);
    return;
  }
  // Strip small factors first; rho handles the remaining hard composites.
  for (std::uint64_t p = 2; p <= 1000 && p * p <= n; p = (p == 2 ? 3 : p + 2)) {
    while (n % p == 0) {
      primes.push_back(p);
      n /= p;
    }
  }
  if (n == 1) return;
  if (is_prime_u64(n)) {
    primes.push_back(n);
    return;
  }
  const std::uint64_t d = pollard_rho(n);
  factor_u64(d, primes);
  factor_u64(n / d, primes);
}

}  // namespace detail

/// A generator of the multiplicative group of Z/pZ (p prime).
inline std::uint64_t primitive_root(std::uint64_t p) {
  std::vector<std::uint64_t> primes;
  detail::factor_u64(p - 1, primes);
  std::sort(primes.begin(), primes.end());
  primes.erase(std::unique(primes.begin(), primes.end()), primes.end());
  for (std::uint64_t g = 2;; ++g) {
    bool ok = true;
    for (std::uint64_t q : primes) {
      if (detail::powmod(g, (p - 1) / q, p) == 1) {
        ok = false;
        break;
      }
    }
    if (ok) return g;
  }
}

}  // namespace kp::field

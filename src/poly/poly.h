// Umbrella header for the polynomial substrate.  Include this (rather than
// poly_ring.h directly) so every translation unit sees the same set of
// NttTraits specializations.
#pragma once

#include "poly/ntt.h"        // IWYU pragma: export
#include "poly/poly_ring.h"  // IWYU pragma: export
#include "poly/series.h"     // IWYU pragma: export
#include "poly/interp.h"     // IWYU pragma: export
#include "poly/trunc_series.h"  // IWYU pragma: export
#include "poly/gfpk_ntt.h"   // IWYU pragma: export

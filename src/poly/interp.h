// Polynomial evaluation and interpolation.
//
// The transposed-Vandermonde application in section 4 of the paper relates
// transposed-system solving to interpolation; these routines provide both
// directions (multipoint evaluation = Vandermonde * coeffs, interpolation =
// Vandermonde^{-1} * values) as the reference the circuit transform is
// checked against.
#pragma once

#include <cassert>
#include <vector>

#include "field/concepts.h"
#include "field/kernels.h"
#include "poly/poly_ring.h"
#include "util/status.h"

namespace kp::poly {

/// Evaluates a at every point; O(n * k) Horner steps.
template <kp::field::Field F>
std::vector<typename F::Element> multipoint_eval(
    const PolyRing<F>& ring, const typename PolyRing<F>::Element& a,
    const std::vector<typename F::Element>& points) {
  std::vector<typename F::Element> out;
  out.reserve(points.size());
  for (const auto& x : points) out.push_back(ring.eval(a, x));
  return out;
}

/// Newton-form interpolation through (points[i], values[i]); the points must
/// be pairwise distinct.  Returns the unique polynomial of degree < n, or
/// kDivisionByZero if two points coincide (detected in every build mode).
template <kp::field::Field F>
kp::util::StatusOr<typename PolyRing<F>::Element> interpolate_status(
    const PolyRing<F>& ring, const std::vector<typename F::Element>& points,
    const std::vector<typename F::Element>& values) {
  assert(points.size() == values.size());
  const F& f = ring.base();
  const std::size_t n = points.size();
  if (n == 0) return ring.zero();

  // Divided differences.  The denominators of one level depend only on the
  // points, so word-sized prime fields invert them together (Montgomery's
  // batch trick, one Euclid per level instead of one per entry, still
  // charged as one logical division each).
  std::vector<typename F::Element> dd = values;
  for (std::size_t level = 1; level < n; ++level) {
    if constexpr (kp::field::kernels::FastField<F>) {
      std::vector<typename F::Element> denom(n - level);
      for (std::size_t i = n - 1; i >= level; --i) {
        denom[i - level] = f.sub(points[i], points[i - level]);
      }
      // A zero denominator means two interpolation points coincide; the
      // batch inversion detects it before mutating anything.
      const auto st =
          kp::field::kernels::batch_inverse(f, denom.data(), denom.size());
      if (!st.ok()) return st;
      for (std::size_t i = n - 1; i >= level; --i) {
        dd[i] = kp::field::kernels::mul_uncounted(f, f.sub(dd[i], dd[i - 1]),
                                                  denom[i - level]);
      }
    } else {
      for (std::size_t i = n - 1; i >= level; --i) {
        const auto denom = f.sub(points[i], points[i - level]);
        if (f.eq(denom, f.zero())) {
          return kp::util::Status::Fail(
              kp::util::FailureKind::kDivisionByZero, kp::util::Stage::kNone,
              "interpolate: coincident points");
        }
        dd[i] = f.div(f.sub(dd[i], dd[i - 1]), denom);
      }
    }
  }

  // Assemble sum_k dd[k] * prod_{j<k} (x - points[j]) by Horner from the top.
  typename PolyRing<F>::Element acc{dd[n - 1]};
  ring.strip(acc);
  for (std::size_t k = n - 1; k-- > 0;) {
    // acc <- acc * (x - points[k]) + dd[k]
    typename PolyRing<F>::Element factor{f.neg(points[k]), f.one()};
    acc = ring.add(ring.mul(acc, factor), typename PolyRing<F>::Element{dd[k]});
  }
  return acc;
}

/// Assert-on-distinctness convenience wrapper around interpolate_status, for
/// call sites that guarantee distinct points by construction (returns the
/// zero polynomial on failure in release builds).
template <kp::field::Field F>
typename PolyRing<F>::Element interpolate(
    const PolyRing<F>& ring, const std::vector<typename F::Element>& points,
    const std::vector<typename F::Element>& values) {
  auto r = interpolate_status(ring, points, values);
  assert(r.ok() && "interpolation points must be distinct");
  if (!r.ok()) return ring.zero();
  return r.take();
}

}  // namespace kp::poly

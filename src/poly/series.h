// Truncated power series arithmetic over a field: Newton inversion,
// logarithm, and exponential.
//
// These are the primitives behind (a) the Newton iteration (3) on
// T(lambda) = I - lambda*T in section 3 (the expansion of 1/u_1(lambda) "is
// accomplished by multiplying each entry with the power series inverse"),
// and (b) the quasi-linear Leverrier solver (Schoenhage '82): the
// characteristic polynomial is recovered from the power sums via
// exp(-sum s_i lambda^i / i).  exp/log divide by 1..k, hence the paper's
// characteristic restriction.
#pragma once

#include <cassert>
#include <cstdint>

#include "field/concepts.h"
#include "poly/poly_ring.h"
#include "poly/transform_cache.h"

namespace kp::poly {

/// Antiderivative with zero constant term, truncated to x^prec.
/// Divides by 1..deg+1: requires characteristic 0 or > prec.
template <kp::field::Field F>
typename PolyRing<F>::Element series_integrate(const PolyRing<F>& ring,
                                               const typename PolyRing<F>::Element& a,
                                               std::size_t prec) {
  const F& f = ring.base();
  typename PolyRing<F>::Element out(std::min(a.size() + 1, prec), f.zero());
  for (std::size_t i = 1; i < out.size(); ++i) {
    out[i] = f.div(a[i - 1], f.from_int(static_cast<std::int64_t>(i)));
  }
  ring.strip(out);
  return out;
}

/// Inverse of a as a power series mod x^prec; requires a(0) invertible.
/// Newton iteration: g <- g * (2 - a*g), doubling precision each step.
template <kp::field::Field F>
typename PolyRing<F>::Element series_inverse(const PolyRing<F>& ring,
                                             const typename PolyRing<F>::Element& a,
                                             std::size_t prec) {
  const F& f = ring.base();
  assert(!a.empty() && !f.eq(a[0], f.zero()) &&
         "power series inverse needs a unit constant term");
  typename PolyRing<F>::Element g{f.inv(a[0])};
  for (std::size_t k = 1; k < prec;) {
    k = std::min(2 * k, prec);
    // g <- g*(2 - a*g) mod x^k.  g is the invariant factor of both products
    // of this level, so its forward transform is cached across them (same
    // values and logical op counts as two plain ring.mul calls).
    const TransformedPoly<F> tg(ring, g);
    auto ag = ring.truncate(tg.mul(ring, ring.truncate(a, k), false), k);
    auto two_minus = ring.sub(ring.from_int(2), ag);
    g = ring.truncate(tg.mul(ring, two_minus), k);
  }
  return g;
}

/// a / b as power series mod x^prec (b(0) must be a unit).
template <kp::field::Field F>
typename PolyRing<F>::Element series_div(const PolyRing<F>& ring,
                                         const typename PolyRing<F>::Element& a,
                                         const typename PolyRing<F>::Element& b,
                                         std::size_t prec) {
  return ring.truncate(ring.mul(ring.truncate(a, prec), series_inverse(ring, b, prec)),
                       prec);
}

/// log(a) mod x^prec for a with a(0) = 1: integrate(a'/a).
template <kp::field::Field F>
typename PolyRing<F>::Element series_log(const PolyRing<F>& ring,
                                         const typename PolyRing<F>::Element& a,
                                         std::size_t prec) {
  [[maybe_unused]] const F& f = ring.base();
  // a(0) must be 1; only unit-ness is checkable for symbolic fields, where
  // element equality is undecidable.
  assert(!a.empty() && !f.is_zero(a[0]) && "series_log needs a(0) = 1");
  auto ratio = series_div(ring, ring.derivative(a), a, prec == 0 ? 0 : prec - 1);
  return series_integrate(ring, ratio, prec);
}

/// exp(h) mod x^prec for h with h(0) = 0.
/// Newton iteration: g <- g * (1 + h - log g), doubling precision.
template <kp::field::Field F>
typename PolyRing<F>::Element series_exp(const PolyRing<F>& ring,
                                         const typename PolyRing<F>::Element& h,
                                         std::size_t prec) {
  [[maybe_unused]] const F& f = ring.base();
  assert((h.empty() || f.eq(h[0], f.zero())) && "series_exp needs h(0) = 0");
  typename PolyRing<F>::Element g = ring.one();
  for (std::size_t k = 1; k < prec;) {
    k = std::min(2 * k, prec);
    auto correction =
        ring.add(ring.sub(ring.truncate(h, k), series_log(ring, g, k)), ring.one());
    g = ring.truncate(ring.mul(g, correction), k);
  }
  return ring.truncate(g, prec);
}

}  // namespace kp::poly

// Fast polynomial multiplication over extension fields GF(p^k) by
// integer packing ("Kronecker substitution to Z, then a word-sized NTT").
//
// The paper's small-characteristic results assume a quasi-linear
// polynomial-multiplication black box over ANY algebra (Cantor-Kaltofen).
// For GF(p^k) with small p this kernel provides it:
//
//   1. each GF(p^k) coefficient is a length-k vector over Z/pZ; pack the
//      whole bivariate object into ONE integer polynomial, inner blocks of
//      width L = 2k-1 (inner products never overflow a block);
//   2. multiply over Z: every packed coefficient of the product is a sum of
//      at most min(da,db)+1 cross terms of k inner products bounded by
//      (p-1)^2 -- so as long as  n_out * k * (p-1)^2  <  q  for the NTT
//      prime q, the integer product is recovered EXACTLY from a single
//      NTT over Z/qZ;
//   3. reduce blocks mod p, then mod the field modulus.
//
// Cost: O(n k log(nk)) word operations -- the quasi-linear bound the
// complexity-(12) claims of section 5 need (bench_small_char measures the
// effect).  The kernel reports the underlying NTT work to the op counters
// through the Z/qZ field domain.
#pragma once

#include <cstdint>
#include <vector>

#include "field/gfpk.h"
#include "field/zp.h"
#include "poly/ntt.h"
#include "poly/poly_ring.h"

namespace kp::poly {

template <>
struct NttTraits<kp::field::GFpk> {
  using F = kp::field::GFpk;
  static constexpr bool kSupported = true;

  /// Block width: inner (coefficient) products have degree <= 2k-2.
  static std::size_t block(const F& f) { return 2 * f.k() - 1; }

  static bool available(const F& f, std::size_t out_len) {
    const std::uint64_t p = f.p();
    const std::uint64_t q = kp::field::kNttPrime;
    // Exactness: packed coefficients < out_len * k * (p-1)^2 must fit mod q.
    const unsigned __int128 bound = static_cast<unsigned __int128>(out_len) *
                                    f.k() * (p - 1) * (p - 1);
    if (bound >= q) return false;
    // NTT capacity for the packed length.
    std::size_t packed = out_len * block(f) + 1;
    std::size_t n = 1;
    int log_n = 0;
    while (n < 2 * packed) {  // product length of packed polys
      n <<= 1;
      ++log_n;
    }
    return log_n <= detail::two_adicity(q);
  }

  static std::vector<typename F::Element> mul(
      const F& f, const std::vector<typename F::Element>& a,
      const std::vector<typename F::Element>& b) {
    const std::uint64_t p = f.p();
    const std::size_t L = block(f);
    kp::field::GFp zq(kp::field::kNttPrime);

    auto pack = [&](const std::vector<typename F::Element>& v) {
      std::vector<std::uint64_t> out(v.size() * L, 0);
      for (std::size_t i = 0; i < v.size(); ++i) {
        for (std::size_t c = 0; c < f.k(); ++c) out[i * L + c] = v[i][c];
      }
      while (!out.empty() && out.back() == 0) out.pop_back();
      return out;
    };
    const auto pa = pack(a);
    const auto pb = pack(b);
    const std::size_t out_len = a.size() + b.size() - 1;
    std::vector<typename F::Element> out(out_len, f.zero());
    if (pa.empty() || pb.empty()) return out;

    const auto prod = ntt_mul_prime_field(zq, pa, pb);

    for (std::size_t i = 0; i < out_len; ++i) {
      std::vector<std::uint64_t> chunk(L, 0);
      const std::size_t base = i * L;
      for (std::size_t c = 0; c < L && base + c < prod.size(); ++c) {
        chunk[c] = prod[base + c] % p;
      }
      out[i] = f.reduce_coeffs(std::move(chunk));
    }
    return out;
  }
};

}  // namespace kp::poly

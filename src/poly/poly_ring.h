// Dense univariate polynomials over an arbitrary commutative ring.
//
// PolyRing<R> is itself a CommutativeRing domain whose elements are
// coefficient vectors over R, so the library's generic code composes:
// polynomials over a field, polynomials over truncated power series (the
// bivariate arithmetic of section 3), and so on.
//
// Multiplication is a pluggable strategy: schoolbook for small operands,
// Karatsuba above a threshold, and -- when the coefficient ring advertises
// NTT capability via NttTraits (see poly/ntt.h) -- a number-theoretic
// transform.  This mirrors the paper's use of Cantor-Kaltofen polynomial
// multiplication as a black box.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "field/concepts.h"
#include "util/prng.h"

namespace kp::poly {

/// Which multiplication kernel PolyRing::mul dispatches to.
enum class MulStrategy {
  kAuto,        ///< schoolbook below threshold, else NTT if available, else Karatsuba
  kSchoolbook,  ///< always O(n^2)
  kKaratsuba,   ///< always O(n^1.585)
  kNtt,         ///< always NTT (asserts the ring supports it)
};

/// Customization point: rings that support a radix-2 NTT specialize this.
/// The primary template reports "unavailable".
template <class R>
struct NttTraits {
  static constexpr bool kSupported = false;
  static bool available(const R&, std::size_t) { return false; }
  static std::vector<typename R::Element> mul(
      const R&, const std::vector<typename R::Element>&,
      const std::vector<typename R::Element>&) {
    return {};
  }
};

/// The polynomial ring R[x].  Elements are little-endian coefficient vectors
/// with no trailing zeros (the zero polynomial is the empty vector).
template <kp::field::CommutativeRing R>
class PolyRing {
 public:
  using Coeff = typename R::Element;
  using Element = std::vector<Coeff>;

  explicit PolyRing(R base, MulStrategy strategy = MulStrategy::kAuto,
                    std::size_t karatsuba_threshold = 24)
      : base_(std::move(base)),
        strategy_(strategy),
        karatsuba_threshold_(karatsuba_threshold) {}

  const R& base() const { return base_; }
  void set_strategy(MulStrategy s) { strategy_ = s; }
  MulStrategy strategy() const { return strategy_; }
  std::size_t karatsuba_threshold() const { return karatsuba_threshold_; }

  // --- ring interface -------------------------------------------------------

  Element zero() const { return {}; }
  Element one() const { return {base_.one()}; }

  Element add(const Element& a, const Element& b) const {
    Element out(std::max(a.size(), b.size()), base_.zero());
    for (std::size_t i = 0; i < out.size(); ++i) {
      const Coeff& av = i < a.size() ? a[i] : out[i];  // out[i] is zero here
      out[i] = i < b.size() ? base_.add(av, b[i]) : av;
    }
    strip(out);
    return out;
  }
  Element sub(const Element& a, const Element& b) const {
    Element out(std::max(a.size(), b.size()), base_.zero());
    for (std::size_t i = 0; i < out.size(); ++i) {
      const Coeff av = i < a.size() ? a[i] : base_.zero();
      out[i] = i < b.size() ? base_.sub(av, b[i]) : av;
    }
    strip(out);
    return out;
  }
  Element neg(const Element& a) const {
    Element out(a.size(), base_.zero());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = base_.neg(a[i]);
    return out;
  }
  Element mul(const Element& a, const Element& b) const {
    if (a.empty() || b.empty()) return {};
    Element out;
    switch (strategy_) {
      case MulStrategy::kSchoolbook:
        out = mul_schoolbook(a, b);
        break;
      case MulStrategy::kKaratsuba:
        out = std::min(a.size(), b.size()) <= 2 ? mul_schoolbook(a, b)
                                                : mul_karatsuba(a, b);
        break;
      case MulStrategy::kNtt:
        assert(NttTraits<R>::available(base_, a.size() + b.size() - 1));
        out = NttTraits<R>::mul(base_, a, b);
        break;
      case MulStrategy::kAuto:
        // NTT from size 8 up whenever the ring supports it (it is op-count
        // competitive well below the Karatsuba threshold, and it keeps the
        // recorded circuits at the quasi-linear sizes the paper assumes);
        // otherwise schoolbook below the threshold and Karatsuba above.
        if (std::min(a.size(), b.size()) >= 8 &&
            NttTraits<R>::available(base_, a.size() + b.size() - 1)) {
          out = NttTraits<R>::mul(base_, a, b);
        } else if (std::min(a.size(), b.size()) < karatsuba_threshold_) {
          out = mul_schoolbook(a, b);
        } else {
          out = mul_karatsuba(a, b);
        }
        break;
    }
    strip(out);
    return out;
  }
  bool is_zero(const Element& a) const { return a.empty(); }
  bool eq(const Element& a, const Element& b) const {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!base_.eq(a[i], b[i])) return false;
    }
    return true;
  }
  Element from_int(std::int64_t v) const {
    Element out{base_.from_int(v)};
    strip(out);
    return out;
  }
  /// Random polynomial of degree < 8 (for the generic-concept contract).
  Element random(kp::util::Prng& prng) const { return random_degree(prng, 7); }
  std::string to_string(const Element& a) const {
    if (a.empty()) return "0";
    std::string out;
    for (std::size_t i = a.size(); i-- > 0;) {
      if (!out.empty()) out += " + ";
      out += base_.to_string(a[i]);
      if (i) out += "*x^" + std::to_string(i);
    }
    return out;
  }

  // --- polynomial-specific utilities ---------------------------------------

  /// deg(a); -1 for the zero polynomial.
  static std::int64_t degree(const Element& a) {
    return static_cast<std::int64_t>(a.size()) - 1;
  }
  /// Leading coefficient; a must be non-zero.
  const Coeff& lead(const Element& a) const {
    assert(!a.empty());
    return a.back();
  }
  /// Coefficient of x^i (zero beyond the degree).
  Coeff coeff(const Element& a, std::size_t i) const {
    return i < a.size() ? a[i] : base_.zero();
  }

  /// Uniformly random polynomial of degree exactly <= max_degree.
  Element random_degree(kp::util::Prng& prng, std::int64_t max_degree) const {
    if (max_degree < 0) return {};
    Element out(static_cast<std::size_t>(max_degree) + 1, base_.zero());
    for (auto& c : out) c = base_.random(prng);
    strip(out);
    return out;
  }

  /// Monic version of a non-zero polynomial (requires R to be a field).
  Element monic(const Element& a) const
    requires kp::field::Field<R>
  {
    assert(!a.empty());
    const Coeff inv_lead = base_.inv(a.back());
    Element out(a.size(), base_.zero());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = base_.mul(a[i], inv_lead);
    return out;
  }

  /// a * x^k.
  Element shift_up(const Element& a, std::size_t k) const {
    if (a.empty()) return {};
    Element out(a.size() + k, base_.zero());
    std::copy(a.begin(), a.end(), out.begin() + static_cast<std::ptrdiff_t>(k));
    return out;
  }
  /// a div x^k (drops the low k coefficients).
  Element shift_down(const Element& a, std::size_t k) const {
    if (a.size() <= k) return {};
    return Element(a.begin() + static_cast<std::ptrdiff_t>(k), a.end());
  }
  /// a mod x^k.
  Element truncate(const Element& a, std::size_t k) const {
    Element out(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(std::min(a.size(), k)));
    strip(out);
    return out;
  }
  /// Reversal x^n * a(1/x) with respect to length n+1 (degree bound n).
  Element reverse(const Element& a, std::size_t n) const {
    Element out(n + 1, base_.zero());
    for (std::size_t i = 0; i < a.size() && i <= n; ++i) out[n - i] = a[i];
    strip(out);
    return out;
  }

  /// Horner evaluation.
  Coeff eval(const Element& a, const Coeff& x) const {
    Coeff acc = base_.zero();
    for (std::size_t i = a.size(); i-- > 0;) {
      acc = base_.add(base_.mul(acc, x), a[i]);
    }
    return acc;
  }

  /// Formal derivative.
  Element derivative(const Element& a) const {
    if (a.size() <= 1) return {};
    Element out(a.size() - 1, base_.zero());
    for (std::size_t i = 1; i < a.size(); ++i) {
      out[i - 1] = base_.mul(a[i], base_.from_int(static_cast<std::int64_t>(i)));
    }
    strip(out);
    return out;
  }

  /// Quotient and remainder; denominator's leading coefficient must be
  /// invertible (R a field, or den monic over a ring).
  std::pair<Element, Element> divmod(const Element& num, const Element& den) const
    requires kp::field::Field<R>
  {
    assert(!den.empty() && "polynomial division by zero");
    if (num.size() < den.size()) return {{}, num};
    Element rem = num;
    Element quot(num.size() - den.size() + 1, base_.zero());
    const Coeff lead_inv = base_.inv(den.back());
    for (std::size_t d = num.size() - 1; d + 1 >= den.size(); --d) {
      const Coeff c = base_.mul(rem[d], lead_inv);
      if (!base_.eq(c, base_.zero())) {
        const std::size_t shift = d - (den.size() - 1);
        quot[shift] = c;
        for (std::size_t i = 0; i < den.size(); ++i) {
          rem[shift + i] = base_.sub(rem[shift + i], base_.mul(c, den[i]));
        }
      }
      if (d == 0) break;
    }
    strip(quot);
    strip(rem);
    return {std::move(quot), std::move(rem)};
  }

  /// Monic greatest common divisor.
  Element gcd(Element a, Element b) const
    requires kp::field::Field<R>
  {
    while (!b.empty()) {
      Element r = divmod(a, b).second;
      a = std::move(b);
      b = std::move(r);
    }
    return a.empty() ? a : monic(a);
  }

  /// Extended Euclid: returns (g, s, t) with s*a + t*b = g = monic gcd(a,b).
  struct Xgcd {
    Element g, s, t;
  };
  Xgcd xgcd(Element a, Element b) const
    requires kp::field::Field<R>
  {
    Element s0 = one(), s1 = zero();
    Element t0 = zero(), t1 = one();
    while (!b.empty()) {
      auto [q, r] = divmod(a, b);
      a = std::move(b);
      b = std::move(r);
      Element s2 = sub(s0, mul(q, s1));
      s0 = std::move(s1);
      s1 = std::move(s2);
      Element t2 = sub(t0, mul(q, t1));
      t0 = std::move(t1);
      t1 = std::move(t2);
    }
    if (a.empty()) return {a, s0, t0};
    const Coeff scale = base_.inv(a.back());
    auto rescale = [&](Element& e) {
      for (auto& c : e) c = base_.mul(c, scale);
    };
    rescale(a);
    rescale(s0);
    rescale(t0);
    return {std::move(a), std::move(s0), std::move(t0)};
  }

  void strip(Element& a) const {
    while (!a.empty() && base_.eq(a.back(), base_.zero())) a.pop_back();
  }

  /// Balanced binary-tree sum of a term buffer (consumes it); see
  /// matrix::balanced_sum for why accumulation is tree-shaped everywhere.
  Coeff balanced_sum_coeffs(std::vector<Coeff>& terms) const {
    if (terms.empty()) return base_.zero();
    std::size_t count = terms.size();
    while (count > 1) {
      std::size_t out = 0;
      for (std::size_t i = 0; i + 1 < count; i += 2) {
        terms[out++] = base_.add(terms[i], terms[i + 1]);
      }
      if (count % 2) terms[out++] = std::move(terms[count - 1]);
      count = out;
    }
    return std::move(terms[0]);
  }

  Element mul_schoolbook(const Element& a, const Element& b) const {
    // Per-coefficient balanced-tree accumulation: identical operation count
    // to the classical double loop, but the induced circuit has depth
    // O(log n) per coefficient rather than O(n).
    Element out(a.size() + b.size() - 1, base_.zero());
    std::vector<Coeff> terms;
    for (std::size_t k = 0; k < out.size(); ++k) {
      terms.clear();
      const std::size_t i_lo = k >= b.size() ? k - b.size() + 1 : 0;
      const std::size_t i_hi = std::min(k, a.size() - 1);
      for (std::size_t i = i_lo; i <= i_hi; ++i) {
        if (base_.eq(a[i], base_.zero())) continue;
        terms.push_back(base_.mul(a[i], b[k - i]));
      }
      out[k] = balanced_sum_coeffs(terms);
    }
    return out;
  }

  Element mul_karatsuba(const Element& a, const Element& b) const {
    if (std::min(a.size(), b.size()) < karatsuba_threshold_) {
      return mul_schoolbook(a, b);
    }
    const std::size_t half = std::max(a.size(), b.size()) / 2;
    auto lo_part = [&](const Element& v) {
      Element out(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(std::min(half, v.size())));
      strip(out);
      return out;
    };
    auto hi_part = [&](const Element& v) {
      if (v.size() <= half) return Element{};
      return Element(v.begin() + static_cast<std::ptrdiff_t>(half), v.end());
    };
    const Element a0 = lo_part(a), a1 = hi_part(a);
    const Element b0 = lo_part(b), b1 = hi_part(b);
    const Element z0 = a0.empty() || b0.empty() ? Element{} : mul_karatsuba(a0, b0);
    const Element z2 = a1.empty() || b1.empty() ? Element{} : mul_karatsuba(a1, b1);
    const Element sa = add(a0, a1), sb = add(b0, b1);
    Element z1 = sa.empty() || sb.empty() ? Element{} : mul_karatsuba(sa, sb);
    z1 = sub(z1, add(z0, z2));

    Element out(a.size() + b.size() - 1, base_.zero());
    auto accumulate = [&](const Element& v, std::size_t shift) {
      for (std::size_t i = 0; i < v.size(); ++i) {
        out[shift + i] = base_.add(out[shift + i], v[i]);
      }
    };
    accumulate(z0, 0);
    accumulate(z1, half);
    accumulate(z2, 2 * half);
    return out;
  }

 private:
  R base_;
  MulStrategy strategy_;
  std::size_t karatsuba_threshold_;
};

}  // namespace kp::poly

// The commutative ring K[[lambda]] / lambda^prec of truncated power series.
//
// Section 3 of the paper runs Newton's iteration on the Toeplitz matrix
// T(lambda) = I - lambda*T "viewed as a Toeplitz matrix with entries in the
// field of extended power series".  Truncation to the working precision
// makes the entries a plain commutative ring, so the library's generic
// polynomial and matrix code applies unchanged: a Toeplitz matrix of series
// is just a PolyRing<TruncSeriesRing<F>> element, and the bivariate
// multiplication cost the paper cites falls out of composing the two layers.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "field/concepts.h"
#include "poly/ntt.h"
#include "poly/poly_ring.h"
#include "poly/series.h"
#include "poly/transform_cache.h"
#include "util/prng.h"

namespace kp::poly {

/// Truncated power series over a field F, with ring-element precision fixed
/// at construction.  Elements are stripped coefficient vectors of length
/// <= prec (the zero series is the empty vector).
template <kp::field::Field F>
class TruncSeriesRing {
 public:
  using Element = std::vector<typename F::Element>;

  TruncSeriesRing(F base, std::size_t prec)
      : ring_(std::move(base)), prec_(prec) {
    assert(prec_ >= 1);
  }

  const F& base() const { return ring_.base(); }
  const PolyRing<F>& poly_ring() const { return ring_; }
  std::size_t precision() const { return prec_; }

  Element zero() const { return {}; }
  Element one() const { return ring_.one(); }
  Element add(const Element& a, const Element& b) const { return ring_.add(a, b); }
  Element sub(const Element& a, const Element& b) const { return ring_.sub(a, b); }
  Element neg(const Element& a) const { return ring_.neg(a); }
  Element mul(const Element& a, const Element& b) const {
    return ring_.truncate(ring_.mul(a, b), prec_);
  }
  bool is_zero(const Element& a) const { return a.empty(); }
  bool eq(const Element& a, const Element& b) const { return ring_.eq(a, b); }
  Element from_int(std::int64_t v) const { return ring_.from_int(v); }
  Element random(kp::util::Prng& prng) const {
    return ring_.random_degree(prng, static_cast<std::int64_t>(prec_) - 1);
  }
  std::string to_string(const Element& a) const { return ring_.to_string(a); }

  /// True when a is a unit of the ring (non-zero constant term).
  bool is_unit(const Element& a) const {
    return !a.empty() && !base().eq(a[0], base().zero());
  }
  /// Inverse of a unit (Newton iteration to the ring precision).
  Element inv_unit(const Element& a) const {
    assert(is_unit(a));
    return series_inverse(ring_, a, prec_);
  }
  /// The monomial lambda (zero if the precision is 1).
  Element lambda() const {
    if (prec_ < 2) return {};
    return Element{base().zero(), base().one()};
  }
  /// Coefficient of lambda^i.
  typename F::Element coeff(const Element& a, std::size_t i) const {
    return i < a.size() ? a[i] : base().zero();
  }
  /// Embeds a field element as a constant series.
  Element embed(const typename F::Element& c) const {
    Element out{c};
    ring_.strip(out);
    return out;
  }

 private:
  PolyRing<F> ring_;
  std::size_t prec_;
};

/// Fast bivariate multiplication: a polynomial over TruncSeriesRing<F> is
/// multiplied by KRONECKER SUBSTITUTION lambda-degree blocks of width
/// L = 2*prec (product series never overflow a block), reducing the job to
/// ONE univariate product over F -- which uses the base field's NTT when
/// available.  This is the library's stand-in for the Cantor-Kaltofen
/// bivariate multiplication the paper cites: it is what makes the
/// section-3 Newton iteration cost O(n * prec * polylog) instead of the
/// O((n * prec)^1.58) of nested Karatsuba.
template <kp::field::Field F>
struct NttTraits<TruncSeriesRing<F>> {
  using SR = TruncSeriesRing<F>;
  static constexpr bool kSupported = NttTraits<F>::kSupported;

  static std::size_t block(const SR& sr) { return 2 * sr.precision(); }

  static bool available(const SR& sr, std::size_t out_len) {
    if (!NttTraits<F>::kSupported) return false;
    return NttTraits<F>::available(sr.base(), out_len * block(sr));
  }

  /// Kronecker packing into one base-field vector (lambda-degree blocks of
  /// width L); performs no counted field ops, so SplitMul may cache it.
  static std::vector<typename F::Element> pack(
      const SR& sr, const std::vector<typename SR::Element>& v) {
    const F& f = sr.base();
    const std::size_t L = block(sr);
    std::vector<typename F::Element> out(v.size() * L, f.zero());
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (std::size_t k = 0; k < v[i].size(); ++k) out[i * L + k] = v[i][k];
    }
    while (!out.empty() && f.eq(out.back(), f.zero())) out.pop_back();
    return out;
  }

  /// Splits the univariate product back into out_len series of the ring
  /// precision (product blocks never overflow L = 2*prec).
  static std::vector<typename SR::Element> unpack(
      const SR& sr, const std::vector<typename F::Element>& prod,
      std::size_t out_len) {
    const F& f = sr.base();
    const std::size_t L = block(sr);
    std::vector<typename SR::Element> out(out_len);
    for (std::size_t i = 0; i < out_len; ++i) {
      typename SR::Element chunk;
      const std::size_t base = i * L;
      const std::size_t hi = std::min(base + sr.precision(), prod.size());
      for (std::size_t k = base; k < hi; ++k) chunk.push_back(prod[k]);
      while (!chunk.empty() && f.eq(chunk.back(), f.zero())) chunk.pop_back();
      out[i] = std::move(chunk);
    }
    return out;
  }

  static std::vector<typename SR::Element> mul(
      const SR& sr, const std::vector<typename SR::Element>& a,
      const std::vector<typename SR::Element>& b) {
    const auto pa = pack(sr, a);
    const auto pb = pack(sr, b);
    const std::size_t out_len = a.size() + b.size() - 1;
    if (pa.empty() || pb.empty()) {
      return std::vector<typename SR::Element>(out_len);
    }
    return unpack(sr, NttTraits<F>::mul(sr.base(), pa, pb), out_len);
  }
};

/// Transform caching for polynomials of truncated series: the packed
/// (Kronecker) form lives in the base field, so a fixed bivariate operand's
/// spectrum is cached exactly like a univariate one.  Enabled under the same
/// conditions the bivariate NTT is.
template <kp::field::Field F>
struct SplitMul<TruncSeriesRing<F>> {
  using SR = TruncSeriesRing<F>;
  using Field = F;
  static constexpr bool kSupported =
      ntt_direct_v<F> && kp::field::concurrent_ops_v<F>;
  static const F& base(const SR& sr) { return sr.base(); }
  static bool available(const SR& sr, std::size_t out_len) {
    return NttTraits<SR>::available(sr, out_len);
  }
  static std::vector<typename F::Element> pack(
      const SR& sr, const std::vector<typename SR::Element>& v) {
    return NttTraits<SR>::pack(sr, v);
  }
  static std::vector<typename SR::Element> unpack(
      const SR& sr, std::vector<typename F::Element>&& prod,
      std::size_t out_len) {
    return NttTraits<SR>::unpack(sr, prod, out_len);
  }
};

}  // namespace kp::poly

// Number-theoretic transform over prime fields with 2-adic roots of unity.
//
// Plays the role of the Cantor-Kaltofen fast polynomial multiplication black
// box of the paper for the common case K = Z/pZ with 2^k | p-1.  All
// butterflies go through the field domain, so NTT work is measured in the
// same unit cost model as everything else.
//
// Twiddle factors are cached per (modulus, root, transform size) in a
// process-wide table shared by every thread: lookups walk a lock-free list
// (hits take no lock at all), and only a miss takes the mutex to build and
// publish a new entry -- so pooled workers issuing their own transforms stop
// duplicating both the setup work and the table memory the per-thread caches
// of the previous revision paid.  A byte budget (KP_CACHE_BUDGET /
// set_cache_budget) bounds the cache with LRU eviction for long-running
// services; evicted tables stay alive as long as an in-flight transform
// holds their shared_ptr.  Each cached table also
// carries Shoup precomputed quotients in a per-level streamed layout, so
// word-sized prime fields (FieldKernels, field/kernels.h) run Harvey-style
// lazy butterflies -- three word multiplies each, residues in [0, 4p), one
// normalization pass at the end, no 128-bit division anywhere -- while
// producing exactly the canonical values and charging exactly the logical op
// counts of the generic path.  Symbolic domains (CircuitBuilderField) keep
// the generic path: cached INTEGER powers injected with from_int, preserving
// the O(log n)-depth circuits.
//
// Two parallel axes sit on top (both bit-identical for every worker count):
//   * ntt_many runs B independent transforms with whole transforms per
//     pooled worker (op counts fold back to the submitter per the
//     ExecutionContext contract);
//   * single large fast-path transforms split each butterfly level into
//     fixed-size chunks dispatched over the pool.  Butterflies within a
//     level are data-independent, and the chunk boundaries depend only on
//     the transform size, so the values never depend on the schedule.
//
// The transform is also exposed split into ntt_forward / ntt_pointwise_
// finish so callers that multiply by a FIXED operand many times
// (poly/transform_cache.h) can reuse its spectrum and skip one of the two
// forward transforms per product.  transform_stats() counts forward and
// inverse transforms executed and forwards avoided by such caches.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "field/kernels.h"
#include "field/primes.h"
#include "field/simd.h"
#include "field/reference.h"
#include "field/zp.h"
#include "poly/poly_ring.h"
#include "pram/parallel_for.h"
#include "util/op_count.h"

namespace kp::poly {

/// Running totals of transform work (process-wide, all threads).  `forward`
/// and `inverse` count transforms actually executed through the split API;
/// `forward_avoided` counts forward transforms that a cached spectrum
/// (poly/transform_cache.h) made unnecessary.  The counters are bench/
/// diagnostic instrumentation only -- they are NOT part of the logical
/// op-count contract, which charges cached transforms exactly as if they had
/// been recomputed.
struct TransformStats {
  std::uint64_t forward = 0;
  std::uint64_t inverse = 0;
  std::uint64_t forward_avoided = 0;
};

namespace detail {

struct TransformCounters {
  std::atomic<std::uint64_t> forward{0};
  std::atomic<std::uint64_t> inverse{0};
  std::atomic<std::uint64_t> forward_avoided{0};
};

/// Shared (not thread-local): pooled workers run transforms on behalf of one
/// logical computation, so their stats must land in one place.  Relaxed
/// atomics -- the counters are read only between runs.
inline TransformCounters& transform_counters() {
  static TransformCounters c;
  return c;
}

}  // namespace detail

inline TransformStats transform_stats() {
  auto& c = detail::transform_counters();
  return {c.forward.load(std::memory_order_relaxed),
          c.inverse.load(std::memory_order_relaxed),
          c.forward_avoided.load(std::memory_order_relaxed)};
}

inline void reset_transform_stats() {
  auto& c = detail::transform_counters();
  c.forward.store(0, std::memory_order_relaxed);
  c.inverse.store(0, std::memory_order_relaxed);
  c.forward_avoided.store(0, std::memory_order_relaxed);
}

namespace detail {

/// Largest k with 2^k | p - 1.
inline int two_adicity(std::uint64_t p) {
  std::uint64_t m = p - 1;
  int k = 0;
  while ((m & 1) == 0) {
    m >>= 1;
    ++k;
  }
  return k;
}

}  // namespace detail

/// Observable state of one process-wide SharedCache instance.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< entries built (includes rebuilds)
  std::uint64_t evictions = 0;   ///< entries dropped by the byte budget
  std::size_t bytes = 0;         ///< live payload bytes currently cached
  std::size_t entries = 0;       ///< live entries currently cached
};

/// Per-cache byte budget for the process-wide SharedCache instances below
/// (twiddle tables, scale inverses, primitive roots) and the spectrum caches
/// layered on them.  0 (the default) means unlimited -- the pre-service
/// behavior.  Initialized once from the KP_CACHE_BUDGET environment variable
/// (bytes); set_cache_budget overrides it at runtime so a long-running
/// service can bound its footprint without a restart.  Each cache enforces
/// the budget on its own contents; the twiddle cache dominates (its tables
/// are O(n) words), the others hold a few machine words per entry.
inline std::atomic<std::size_t>& cache_budget_ref() {
  static std::atomic<std::size_t> budget{[] {
    const char* env = std::getenv("KP_CACHE_BUDGET");
    return env != nullptr
               ? static_cast<std::size_t>(std::strtoull(env, nullptr, 10))
               : std::size_t{0};
  }()};
  return budget;
}

inline void set_cache_budget(std::size_t bytes) {
  cache_budget_ref().store(bytes, std::memory_order_relaxed);
}

inline std::size_t cache_budget() {
  return cache_budget_ref().load(std::memory_order_relaxed);
}

namespace detail {

/// Key/value table: lock-free on hit, mutex-guarded on miss, bounded by the
/// process-wide byte budget (cache_budget) with LRU eviction.
///
/// Entries are nodes prepended to an atomic head; a reader registers in the
/// lock-free readers_ count, walks the list with acquire loads, and copies
/// out the entry's shared_ptr -- no mutex on the hit path.  A miss takes the
/// mutex, re-checks (another thread may have raced the build), publishes the
/// new node, and -- when the cache exceeds the budget -- unlinks the
/// least-recently-used nodes.  Unlinked nodes are deleted only after the
/// reader count has been observed at zero (a seq_cst fence pairs with the
/// readers' seq_cst increment, the classic asymmetric-Dekker handshake), so
/// an in-flight walk never touches freed memory; until then they sit on a
/// retired list.  Values live behind shared_ptr, so a caller's copy pins the
/// payload across eviction for as long as it needs it.
template <class K, class V>
class SharedCache {
 public:
  using ValuePtr = std::shared_ptr<const V>;

  ~SharedCache() {
    Node* cur = head_.load(std::memory_order_acquire);
    while (cur != nullptr) {
      Node* next = cur->next.load(std::memory_order_acquire);
      delete cur;
      cur = next;
    }
    for (Node* n : retired_) delete n;
  }

  /// Returns the cached value for `key`, building it with make() on a miss.
  /// `cost` maps a built value to its payload byte size for the budget.
  template <class Make, class Cost>
  ValuePtr get_or_make(const K& key, Make&& make, Cost&& cost) {
    if (ValuePtr v = find(key)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return v;
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (ValuePtr v = find(key)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return v;
    }
    auto value = std::make_shared<const V>(make());
    Node* node = new Node;
    node->key = key;
    node->value = value;
    node->bytes = cost(*value);
    node->last_use.store(next_tick(), std::memory_order_relaxed);
    node->next.store(head_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    head_.store(node, std::memory_order_seq_cst);
    bytes_.fetch_add(node->bytes, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    evict_over_budget(node);
    return value;
  }

  template <class Make>
  ValuePtr get_or_make(const K& key, Make&& make) {
    return get_or_make(key, std::forward<Make>(make),
                       [](const V&) { return sizeof(V); });
  }

  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    s.entries = entries_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Node {
    K key{};
    std::shared_ptr<const V> value;
    std::size_t bytes = 0;
    std::atomic<std::uint64_t> last_use{0};
    std::atomic<Node*> next{nullptr};
  };

  std::uint64_t next_tick() {
    return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Lock-free lookup.  The seq_cst increment is the reader half of the
  /// eviction handshake: any walk that can reach a node registered BEFORE
  /// loading head_, so the evictor's fence + zero-observation proves no walk
  /// still holds an unlinked node.
  ValuePtr find(const K& key) {
    readers_.fetch_add(1, std::memory_order_seq_cst);
    ValuePtr out;
    for (Node* cur = head_.load(std::memory_order_acquire); cur != nullptr;
         cur = cur->next.load(std::memory_order_acquire)) {
      if (cur->key == key) {
        cur->last_use.store(next_tick(), std::memory_order_relaxed);
        out = cur->value;
        break;
      }
    }
    readers_.fetch_sub(1, std::memory_order_seq_cst);
    return out;
  }

  /// Called with mu_ held, right after inserting `keep`.  Unlinks LRU nodes
  /// until the cache fits the budget (the fresh node is exempt so a budget
  /// smaller than one entry still makes forward progress), then frees
  /// whatever retired nodes the reader count allows.
  void evict_over_budget(const Node* keep) {
    const std::size_t budget = cache_budget();
    if (budget == 0) {
      free_retired();
      return;
    }
    while (bytes_.load(std::memory_order_relaxed) > budget &&
           entries_.load(std::memory_order_relaxed) > 1) {
      // Find the LRU node (excluding the one just inserted) and its
      // predecessor.  The list is short by construction -- a handful of
      // (modulus, size) combinations -- so a linear scan per eviction is
      // cheaper than maintaining an ordered index on the hit path.
      Node* prev = nullptr;
      Node* victim = nullptr;
      Node* victim_prev = nullptr;
      std::uint64_t oldest = ~std::uint64_t{0};
      for (Node* cur = head_.load(std::memory_order_relaxed); cur != nullptr;
           cur = cur->next.load(std::memory_order_relaxed)) {
        if (cur != keep) {
          const std::uint64_t t = cur->last_use.load(std::memory_order_relaxed);
          if (t < oldest) {
            oldest = t;
            victim = cur;
            victim_prev = prev;
          }
        }
        prev = cur;
      }
      if (victim == nullptr) break;
      Node* after = victim->next.load(std::memory_order_relaxed);
      if (victim_prev == nullptr) {
        head_.store(after, std::memory_order_seq_cst);
      } else {
        victim_prev->next.store(after, std::memory_order_seq_cst);
      }
      bytes_.fetch_sub(victim->bytes, std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      retired_.push_back(victim);
    }
    free_retired();
  }

  /// Called with mu_ held.  Deletes retired nodes once the reader count has
  /// been observed at zero after their unlinking (new readers cannot reach
  /// them, and the observation proves the old ones left).  Bounded spin; on
  /// sustained read traffic the nodes simply wait for the next miss.
  void free_retired() {
    if (retired_.empty()) return;
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (int spin = 0; spin < 4096; ++spin) {
      if (readers_.load(std::memory_order_seq_cst) == 0) {
        for (Node* n : retired_) delete n;
        retired_.clear();
        return;
      }
    }
  }

  std::atomic<Node*> head_{nullptr};
  std::atomic<int> readers_{0};
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> entries_{0};
  std::vector<Node*> retired_;  ///< unlinked, awaiting reader drain (mu_)
  std::mutex mu_;
};

/// Cached primitive root per modulus (root search factors p-1, so cache it).
inline std::uint64_t cached_primitive_root(std::uint64_t p) {
  static SharedCache<std::uint64_t, std::uint64_t> cache;
  return *cache.get_or_make(p, [p] { return kp::field::primitive_root(p); });
}

/// Twiddle powers w^k, k < n/2, for one (modulus, root, size) triple.
/// `pow` holds them in power order as raw integers (the generic path injects
/// them with from_int; they are constants of the computation, so recorded
/// circuits keep O(log n) depth).  `level_pow` / `level_shoup` hold the same
/// values re-ordered per butterfly level -- level len contributes its len/2
/// twiddles contiguously -- so the fast path streams them with a bumped
/// pointer instead of a strided gather, alongside their Shoup quotients.
struct TwiddleTable {
  std::vector<std::uint64_t> pow;
  std::vector<std::uint64_t> level_pow;
  std::vector<std::uint64_t> level_shoup;
};

/// Process-wide table cache, shared by all pooled workers (see header note).
/// Exposed for the budget/eviction tests and service telemetry.
inline SharedCache<std::array<std::uint64_t, 3>, TwiddleTable>&
twiddle_cache() {
  static SharedCache<std::array<std::uint64_t, 3>, TwiddleTable> cache;
  return cache;
}

/// Returns a pinned pointer to the (modulus, root, size) twiddle table.  The
/// caller must hold the pointer for the duration of the transform: under a
/// cache budget the table may be evicted concurrently, and the shared_ptr is
/// what keeps the butterfly loops' raw `level_pow` pointers alive.
inline std::shared_ptr<const TwiddleTable> cached_twiddles(std::uint64_t p,
                                                           std::uint64_t w,
                                                           std::size_t n) {
  const std::array<std::uint64_t, 3> key{p, w, static_cast<std::uint64_t>(n)};
  return twiddle_cache().get_or_make(
      key,
      [&] {
    TwiddleTable t;
    const std::size_t half = std::max<std::size_t>(n / 2, 1);
    t.pow.reserve(half);
    std::uint64_t acc = 1;
    for (std::size_t k = 0; k < half; ++k) {
      t.pow.push_back(acc);
      acc = kp::field::detail::mulmod(acc, w, p);
    }
    t.level_pow.reserve(n ? n - 1 : 0);
    t.level_shoup.reserve(n ? n - 1 : 0);
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t step = n / len;
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::uint64_t tw = t.pow[j * step];
        t.level_pow.push_back(tw);
        t.level_shoup.push_back(kp::field::fastmod::shoup_precompute(tw, p));
      }
    }
    return t;
      },
      [](const TwiddleTable& t) {
        return sizeof(TwiddleTable) +
               sizeof(std::uint64_t) * (t.pow.capacity() +
                                        t.level_pow.capacity() +
                                        t.level_shoup.capacity());
      });
}

/// Cached 1/n mod p and its Shoup quotient for the inverse-transform scale.
/// The logical division is still charged at every use; the cache only
/// removes the repeated extended-Euclid runs (one per polynomial product in
/// the seed).
struct ScaleInverse {
  std::uint64_t n_inv;
  std::uint64_t n_inv_shoup;
};

inline ScaleInverse cached_scale_inverse(std::uint64_t p, std::size_t n) {
  static SharedCache<std::array<std::uint64_t, 2>, ScaleInverse> cache;
  const std::array<std::uint64_t, 2> key{p, static_cast<std::uint64_t>(n)};
  return *cache.get_or_make(key, [&] {
    const std::uint64_t n_inv =
        kp::field::detail::invmod(static_cast<std::uint64_t>(n % p), p);
    return ScaleInverse{n_inv, kp::field::fastmod::shoup_precompute(n_inv, p)};
  });
}

/// Primitive n-th root of unity mod p (n a power of two dividing p-1).
inline std::uint64_t root_of_unity(std::uint64_t p, std::size_t n) {
  const std::uint64_t g = cached_primitive_root(p);
  return kp::field::detail::powmod(g, (p - 1) / n, p);
}

/// Bit-reversal permutation shared by both butterfly paths.
template <class E>
void bitrev_permute(std::vector<E>& a) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

/// Butterflies per pool task when a single fast-path transform is spread
/// over workers.  One level of a size-n transform has n/2 data-independent
/// butterflies; below 2 tasks' worth the dispatch overhead wins and the
/// level runs inline.
inline constexpr std::size_t kLevelParallelGrain = std::size_t{1} << 14;

/// Runs body(b0, b1) over [0, total) split into kLevelParallelGrain-sized
/// chunks on the pool.  The chunk boundaries depend only on `total`, never
/// on the worker count, and the chunks write disjoint indices, so results
/// are bit-identical for any schedule (the pool runs nested regions
/// serially, so this is also safe from inside ntt_many workers).
template <class Body>
void dispatch_chunks(std::size_t total, const Body& body) {
  if (total >= 2 * kLevelParallelGrain) {
    const std::size_t tasks =
        (total + kLevelParallelGrain - 1) / kLevelParallelGrain;
    kp::pram::parallel_for(0, tasks, [&](std::size_t t) {
      const std::size_t b0 = t * kLevelParallelGrain;
      body(b0, std::min(total, b0 + kLevelParallelGrain));
    });
  } else {
    body(0, total);
  }
}

/// In-place iterative radix-2 NTT.  `w_int` must be a primitive n-th root of
/// unity mod p where n = a.size() is a power of two.  Word-sized prime
/// fields run cached Shoup butterflies directly on the residues and
/// bulk-charge the identical logical op counts (one multiplication and two
/// additions per butterfly); other domains evaluate the same butterflies
/// through the field interface with the cached integer twiddles.
template <class F>
void ntt_inplace(const F& f, std::vector<typename F::Element>& a,
                 std::uint64_t w_int, std::uint64_t p) {
  const std::size_t n = a.size();
  assert((n & (n - 1)) == 0 && "NTT size must be a power of two");
  bitrev_permute(a);
  // Pin the table for the whole transform: the butterfly loops stream raw
  // pointers into it, and under a cache budget a concurrent miss could
  // otherwise evict it mid-transform.
  const std::shared_ptr<const TwiddleTable> table_sp =
      cached_twiddles(p, w_int, n);
  const TwiddleTable& table = *table_sp;
  if constexpr (kp::field::kernels::FastField<F>) {
    const std::uint64_t* tw = table.level_pow.data();
    const std::uint64_t* twq = table.level_shoup.data();
    std::uint64_t* const d = a.data();
    if (p < (1ULL << 62)) {
      // Harvey's lazy butterflies: residues ride in [0, 4p) (4p < 2^64),
      // the multiplicand correction happens inside shoup_mul_lazy's slack,
      // and one normalization pass restores canonical [0, p) -- ~4x fewer
      // data-dependent corrections than the eager loop below.  Each level's
      // butterflies are independent, so large levels are chunked over the
      // pool; a flat butterfly index b maps to block b/half, lane b%half.
      const std::uint64_t p2 = 2 * p;
      for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        const std::uint64_t* const tw_l = tw;
        const std::uint64_t* const twq_l = twq;
        dispatch_chunks(n / 2, [=](std::size_t b0, std::size_t b1) {
          // Lane-parallel butterflies within this chunk: the chunk bounds
          // are worker-count independent (dispatch_chunks), so the vector
          // path preserves bit-identity across 1..N workers just like the
          // scalar one (and IS the scalar arithmetic, lane by lane).
          if (kp::field::simd::ntt_level_lazy(d, tw_l, twq_l, half, b0, b1,
                                              p)) {
            return;
          }
          std::size_t b = b0;
          while (b < b1) {
            const std::size_t block = b / half;
            const std::size_t j0 = b - block * half;
            const std::size_t j1 = std::min(half, j0 + (b1 - b));
            std::uint64_t* __restrict lo = d + block * len;
            std::uint64_t* __restrict hi = lo + half;
            for (std::size_t j = j0; j < j1; ++j) {
              std::uint64_t u = lo[j];
              if (u >= p2) u -= p2;
              const std::uint64_t v = kp::field::fastmod::shoup_mul_lazy(
                  hi[j], tw_l[j], twq_l[j], p);
              lo[j] = u + v;       // < 4p
              hi[j] = u + p2 - v;  // < 4p
            }
            b += j1 - j0;
          }
        });
        tw += half;
        twq += half;
      }
      dispatch_chunks(n, [=](std::size_t i0, std::size_t i1) {
        if (kp::field::simd::ntt_normalize4p(d + i0, i1 - i0, p)) return;
        for (std::size_t i = i0; i < i1; ++i) {
          std::uint64_t x = d[i];
          if (x >= p2) x -= p2;
          if (x >= p) x -= p;
          d[i] = x;
        }
      });
    } else {
      // p in [2^62, 2^63): no headroom for lazy residues; eager canonical
      // butterflies with the same streamed twiddle layout and chunking.
      for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        const std::uint64_t* const tw_l = tw;
        const std::uint64_t* const twq_l = twq;
        dispatch_chunks(n / 2, [=](std::size_t b0, std::size_t b1) {
          std::size_t b = b0;
          while (b < b1) {
            const std::size_t block = b / half;
            const std::size_t j0 = b - block * half;
            const std::size_t j1 = std::min(half, j0 + (b1 - b));
            std::uint64_t* __restrict lo = d + block * len;
            std::uint64_t* __restrict hi = lo + half;
            for (std::size_t j = j0; j < j1; ++j) {
              const std::uint64_t u = lo[j];
              const std::uint64_t v =
                  kp::field::fastmod::shoup_mul(hi[j], tw_l[j], twq_l[j], p);
              std::uint64_t s = u + v;
              if (s >= p) s -= p;
              lo[j] = s;
              hi[j] = u >= v ? u - v : u + p - v;
            }
            b += j1 - j0;
          }
        });
        tw += half;
        twq += half;
      }
    }
    if (n > 1) {
      // log2(n) levels of n/2 butterflies: 1 mul + 2 adds each, exactly as
      // the generic path charges per butterfly.  Charged on the submitting
      // thread regardless of how the levels were chunked.
      std::uint64_t levels = 0;
      for (std::size_t m = n; m > 1; m >>= 1) ++levels;
      kp::util::count_muls(levels * (n / 2));
      kp::util::count_adds(levels * n);
    }
    return;
  } else {
    // Twiddle table as field constants, from the cached integer powers.
    std::vector<typename F::Element> tw;
    tw.reserve(table.pow.size());
    for (const std::uint64_t w : table.pow) {
      tw.push_back(f.from_int(static_cast<std::int64_t>(w)));
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t step = n / len;
      for (std::size_t i = 0; i < n; i += len) {
        for (std::size_t j = 0; j < len / 2; ++j) {
          const auto u = a[i + j];
          const auto v = f.mul(a[i + j + len / 2], tw[j * step]);
          a[i + j] = f.add(u, v);
          a[i + j + len / 2] = f.sub(u, v);
        }
      }
    }
  }
}

}  // namespace detail

/// Hit/miss/eviction counters and live footprint of the process-wide
/// twiddle-table cache -- the cache the KP_CACHE_BUDGET knob matters for.
inline CacheStats twiddle_cache_stats() { return detail::twiddle_cache().stats(); }

/// Runs B independent equal-size transforms, whole transforms per pooled
/// worker.  Each entry must already be padded to the common power-of-two
/// size for which `w_int` is a primitive root.  Safe for any domain:
/// domains that record ops into shared state (kSequentialOnly) run the batch
/// serially.  Workers' field-op counts fold back to the submitter per the
/// ExecutionContext contract and every transform is independent of the
/// others, so values and totals are bit-identical for 1..N workers.
template <class F>
void ntt_many(const F& f,
              const std::vector<std::vector<typename F::Element>*>& batch,
              std::uint64_t w_int, std::uint64_t p) {
  if (batch.empty()) return;
  const std::size_t n = batch.front()->size();
  for ([[maybe_unused]] const auto* v : batch) {
    assert(v != nullptr && v->size() == n && "ntt_many: mixed transform sizes");
  }
  // Build the shared table once up front so workers only ever take the
  // lock-free hit path; holding the pointer pins it against eviction for
  // the duration of the batch.
  const auto warm_table = detail::cached_twiddles(p, w_int, n);
  if (kp::field::concurrent_ops_v<F> && batch.size() > 1) {
    kp::pram::parallel_for(0, batch.size(), [&](std::size_t i) {
      detail::ntt_inplace(f, *batch[i], w_int, p);
    });
  } else {
    for (auto* v : batch) detail::ntt_inplace(f, *v, w_int, p);
  }
}

/// Forward transform of one multiplication operand, padded to size n.  The
/// split ntt_forward / ntt_pointwise_finish pair computes exactly what
/// ntt_mul_prime_field computes (same values, same logical op counts), but
/// lets a caller with a FIXED operand keep its spectrum across products
/// (poly/transform_cache.h).
template <class F>
struct NttSpectrum {
  std::size_t n = 0;    ///< padded transform size (power of two)
  std::size_t len = 0;  ///< operand coefficient count before padding
  std::vector<typename F::Element> data;  ///< forward NTT, size n
};

template <class F>
NttSpectrum<F> ntt_forward(const F& f,
                           const std::vector<typename F::Element>& a,
                           std::size_t n) {
  const std::uint64_t p = f.characteristic();
  assert(n >= a.size() && (n & (n - 1)) == 0);
  assert(p != 0 && (p - 1) % n == 0 &&
         "field lacks a root of unity of required order");
  NttSpectrum<F> s;
  s.n = n;
  s.len = a.size();
  s.data = a;
  s.data.resize(n, f.zero());
  detail::ntt_inplace(f, s.data, detail::root_of_unity(p, n), p);
  detail::transform_counters().forward.fetch_add(1, std::memory_order_relaxed);
  return s;
}

/// Pointwise product of two spectra followed by the inverse transform and
/// 1/n scale; returns the fa.len + fb.len - 1 product coefficients.
/// Consumes fa's buffer.
template <class F>
std::vector<typename F::Element> ntt_pointwise_finish(const F& f,
                                                      NttSpectrum<F>&& fa,
                                                      const NttSpectrum<F>& fb) {
  assert(fa.n == fb.n && fa.n > 0 && "ntt_pointwise_finish: size mismatch");
  const std::size_t n = fa.n;
  const std::size_t out_len = fa.len + fb.len - 1;
  const std::uint64_t p = f.characteristic();
  const std::uint64_t w_inv =
      kp::field::detail::invmod(detail::root_of_unity(p, n), p);
  std::vector<typename F::Element> c = std::move(fa.data);
  if constexpr (kp::field::kernels::FastField<F>) {
    const auto& bar = kp::field::FieldKernels<F>::barrett(f);
    if (!kp::field::simd::ntt_pointwise_mul(bar, c.data(), fb.data.data(),
                                            n)) {
      for (std::size_t i = 0; i < n; ++i) c[i] = bar.mul(c[i], fb.data[i]);
    }
    kp::util::count_muls(n);
    detail::ntt_inplace(f, c, w_inv, p);
    // One logical division for 1/n (the cached value skips the repeated
    // extended Euclid), then the Shoup constant-multiplier scale.
    const detail::ScaleInverse si = detail::cached_scale_inverse(p, n);
    kp::util::count_div();
    if (!kp::field::simd::ntt_shoup_scale(c.data(), n, si.n_inv,
                                          si.n_inv_shoup, p)) {
      for (auto& x : c) {
        x = kp::field::fastmod::shoup_mul(x, si.n_inv, si.n_inv_shoup, p);
      }
    }
    kp::util::count_muls(n);
  } else {
    for (std::size_t i = 0; i < n; ++i) c[i] = f.mul(c[i], fb.data[i]);
    detail::ntt_inplace(f, c, w_inv, p);
    const auto n_inv = f.inv(f.from_int(static_cast<std::int64_t>(n)));
    for (auto& x : c) x = f.mul(x, n_inv);
  }
  detail::transform_counters().inverse.fetch_add(1, std::memory_order_relaxed);
  c.resize(out_len);
  return c;
}

/// NTT-based multiplication over any domain whose characteristic() is a
/// word-sized prime p with 2^ceil(log2(out_len)) | p - 1.  The roots of
/// unity are computed as integers and injected with from_int, so this works
/// for concrete prime fields AND for the symbolic CircuitBuilderField
/// (producing NTT-structured circuits over a fixed target field).
template <class F>
std::vector<typename F::Element> ntt_mul_prime_field(
    const F& f, const std::vector<typename F::Element>& a,
    const std::vector<typename F::Element>& b) {
  const std::size_t out_len = a.size() + b.size() - 1;
  std::size_t n = 1;
  while (n < out_len) n <<= 1;
  NttSpectrum<F> fa = ntt_forward(f, a, n);
  const NttSpectrum<F> fb = ntt_forward(f, b, n);
  return ntt_pointwise_finish(f, std::move(fa), fb);
}

namespace detail {

template <class F>
struct PrimeFieldNttTraits {
  static constexpr bool kSupported = true;
  /// The transform runs directly over F itself (same-field ntt_forward /
  /// ntt_pointwise_finish are valid).  Traits that route through ANOTHER
  /// domain -- GFpk's integer-packed Z/qZ kernel, the circuit field -- leave
  /// this flag unset, which keeps them off the split (cached) transform path.
  static constexpr bool kDirect = true;
  static bool available(const F& f, std::size_t out_len) {
    std::size_t n = 1;
    int log_n = 0;
    while (n < out_len) {
      n <<= 1;
      ++log_n;
    }
    return log_n <= two_adicity(f.characteristic());
  }
  static std::vector<typename F::Element> mul(
      const F& f, const std::vector<typename F::Element>& a,
      const std::vector<typename F::Element>& b) {
    return ntt_mul_prime_field(f, a, b);
  }
};

}  // namespace detail

template <std::uint64_t P>
struct NttTraits<kp::field::Zp<P>>
    : detail::PrimeFieldNttTraits<kp::field::Zp<P>> {};

template <>
struct NttTraits<kp::field::GFp> : detail::PrimeFieldNttTraits<kp::field::GFp> {};

/// The frozen seed field keeps the generic butterfly path (its FieldKernels
/// trait stays non-fast), giving the equivalence tests and bench_kernels an
/// end-to-end reference transform.
template <>
struct NttTraits<kp::field::GFpReference>
    : detail::PrimeFieldNttTraits<kp::field::GFpReference> {};

}  // namespace kp::poly

// Number-theoretic transform over prime fields with 2-adic roots of unity.
//
// Plays the role of the Cantor-Kaltofen fast polynomial multiplication black
// box of the paper for the common case K = Z/pZ with 2^k | p-1.  All
// butterflies go through the field domain, so NTT work is measured in the
// same unit cost model as everything else.
//
// Twiddle factors are cached per (modulus, root, transform size): the seed
// rebuilt the n/2-entry power table with a mulmod chain on every call, which
// dominated setup for the thousands of transforms a Newton-on-Toeplitz run
// issues.  Each cached table also carries Shoup precomputed quotients in a
// per-level streamed layout, so word-sized prime fields (FieldKernels,
// field/kernels.h) run Harvey-style lazy butterflies -- three word multiplies
// each, residues in [0, 4p), one normalization pass at the end, no 128-bit
// division anywhere -- while producing exactly the canonical values and
// charging exactly the logical op counts of the generic path.  Symbolic
// domains (CircuitBuilderField) keep the generic path: cached INTEGER powers
// injected with from_int, preserving the O(log n)-depth circuits.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "field/kernels.h"
#include "field/primes.h"
#include "field/reference.h"
#include "field/zp.h"
#include "poly/poly_ring.h"
#include "util/op_count.h"

namespace kp::poly {

namespace detail {

/// Largest k with 2^k | p - 1.
inline int two_adicity(std::uint64_t p) {
  std::uint64_t m = p - 1;
  int k = 0;
  while ((m & 1) == 0) {
    m >>= 1;
    ++k;
  }
  return k;
}

/// Cached primitive root per modulus (root search factors p-1, so cache it).
inline std::uint64_t cached_primitive_root(std::uint64_t p) {
  thread_local std::unordered_map<std::uint64_t, std::uint64_t> cache;
  auto it = cache.find(p);
  if (it != cache.end()) return it->second;
  const std::uint64_t g = kp::field::primitive_root(p);
  cache.emplace(p, g);
  return g;
}

/// Twiddle powers w^k, k < n/2, for one (modulus, root, size) triple.
/// `pow` holds them in power order as raw integers (the generic path injects
/// them with from_int; they are constants of the computation, so recorded
/// circuits keep O(log n) depth).  `level_pow` / `level_shoup` hold the same
/// values re-ordered per butterfly level -- level len contributes its len/2
/// twiddles contiguously -- so the fast path streams them with a bumped
/// pointer instead of a strided gather, alongside their Shoup quotients.
struct TwiddleTable {
  std::vector<std::uint64_t> pow;
  std::vector<std::uint64_t> level_pow;
  std::vector<std::uint64_t> level_shoup;
};

/// Per-thread table cache.  Thread-local like cached_primitive_root: no
/// locks, and pooled workers that issue their own transforms build their own
/// copies (tables are a few KB per size).
inline const TwiddleTable& cached_twiddles(std::uint64_t p, std::uint64_t w,
                                           std::size_t n) {
  thread_local std::map<std::array<std::uint64_t, 3>, TwiddleTable> cache;
  const std::array<std::uint64_t, 3> key{p, w, static_cast<std::uint64_t>(n)};
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  TwiddleTable t;
  const std::size_t half = std::max<std::size_t>(n / 2, 1);
  t.pow.reserve(half);
  std::uint64_t acc = 1;
  for (std::size_t k = 0; k < half; ++k) {
    t.pow.push_back(acc);
    acc = kp::field::detail::mulmod(acc, w, p);
  }
  t.level_pow.reserve(n ? n - 1 : 0);
  t.level_shoup.reserve(n ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t step = n / len;
    for (std::size_t j = 0; j < len / 2; ++j) {
      const std::uint64_t tw = t.pow[j * step];
      t.level_pow.push_back(tw);
      t.level_shoup.push_back(kp::field::fastmod::shoup_precompute(tw, p));
    }
  }
  return cache.emplace(key, std::move(t)).first->second;
}

/// Cached 1/n mod p and its Shoup quotient for the inverse-transform scale.
/// The logical division is still charged at every use; the cache only
/// removes the repeated extended-Euclid runs (one per polynomial product in
/// the seed).
struct ScaleInverse {
  std::uint64_t n_inv;
  std::uint64_t n_inv_shoup;
};

inline const ScaleInverse& cached_scale_inverse(std::uint64_t p, std::size_t n) {
  thread_local std::map<std::array<std::uint64_t, 2>, ScaleInverse> cache;
  const std::array<std::uint64_t, 2> key{p, static_cast<std::uint64_t>(n)};
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  const std::uint64_t n_inv =
      kp::field::detail::invmod(static_cast<std::uint64_t>(n % p), p);
  return cache
      .emplace(key, ScaleInverse{n_inv,
                                 kp::field::fastmod::shoup_precompute(n_inv, p)})
      .first->second;
}

/// Bit-reversal permutation shared by both butterfly paths.
template <class E>
void bitrev_permute(std::vector<E>& a) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

/// In-place iterative radix-2 NTT.  `w_int` must be a primitive n-th root of
/// unity mod p where n = a.size() is a power of two.  Word-sized prime
/// fields run cached Shoup butterflies directly on the residues and
/// bulk-charge the identical logical op counts (one multiplication and two
/// additions per butterfly); other domains evaluate the same butterflies
/// through the field interface with the cached integer twiddles.
template <class F>
void ntt_inplace(const F& f, std::vector<typename F::Element>& a,
                 std::uint64_t w_int, std::uint64_t p) {
  const std::size_t n = a.size();
  assert((n & (n - 1)) == 0 && "NTT size must be a power of two");
  bitrev_permute(a);
  const TwiddleTable& table = cached_twiddles(p, w_int, n);
  if constexpr (kp::field::kernels::FastField<F>) {
    const std::uint64_t* tw = table.level_pow.data();
    const std::uint64_t* twq = table.level_shoup.data();
    std::uint64_t* __restrict d = a.data();
    if (p < (1ULL << 62)) {
      // Harvey's lazy butterflies: residues ride in [0, 4p) (4p < 2^64),
      // the multiplicand correction happens inside shoup_mul_lazy's slack,
      // and one normalization pass restores canonical [0, p) -- ~4x fewer
      // data-dependent corrections than the eager loop below.
      const std::uint64_t p2 = 2 * p;
      for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        for (std::size_t i = 0; i < n; i += len) {
          std::uint64_t* __restrict lo = d + i;
          std::uint64_t* __restrict hi = d + i + half;
          for (std::size_t j = 0; j < half; ++j) {
            std::uint64_t u = lo[j];
            if (u >= p2) u -= p2;
            const std::uint64_t v =
                kp::field::fastmod::shoup_mul_lazy(hi[j], tw[j], twq[j], p);
            lo[j] = u + v;        // < 4p
            hi[j] = u + p2 - v;   // < 4p
          }
        }
        tw += half;
        twq += half;
      }
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t x = d[i];
        if (x >= p2) x -= p2;
        if (x >= p) x -= p;
        d[i] = x;
      }
    } else {
      // p in [2^62, 2^63): no headroom for lazy residues; eager canonical
      // butterflies with the same streamed twiddle layout.
      for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        for (std::size_t i = 0; i < n; i += len) {
          for (std::size_t j = 0; j < half; ++j) {
            const std::uint64_t u = d[i + j];
            const std::uint64_t v = kp::field::fastmod::shoup_mul(
                d[i + j + half], tw[j], twq[j], p);
            std::uint64_t s = u + v;
            if (s >= p) s -= p;
            d[i + j] = s;
            d[i + j + half] = u >= v ? u - v : u + p - v;
          }
        }
        tw += half;
        twq += half;
      }
    }
    if (n > 1) {
      // log2(n) levels of n/2 butterflies: 1 mul + 2 adds each, exactly as
      // the generic path charges per butterfly.
      std::uint64_t levels = 0;
      for (std::size_t m = n; m > 1; m >>= 1) ++levels;
      kp::util::count_muls(levels * (n / 2));
      kp::util::count_adds(levels * n);
    }
    return;
  } else {
    // Twiddle table as field constants, from the cached integer powers.
    std::vector<typename F::Element> tw;
    tw.reserve(table.pow.size());
    for (const std::uint64_t w : table.pow) {
      tw.push_back(f.from_int(static_cast<std::int64_t>(w)));
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t step = n / len;
      for (std::size_t i = 0; i < n; i += len) {
        for (std::size_t j = 0; j < len / 2; ++j) {
          const auto u = a[i + j];
          const auto v = f.mul(a[i + j + len / 2], tw[j * step]);
          a[i + j] = f.add(u, v);
          a[i + j + len / 2] = f.sub(u, v);
        }
      }
    }
  }
}

}  // namespace detail

/// NTT-based multiplication over any domain whose characteristic() is a
/// word-sized prime p with 2^ceil(log2(out_len)) | p - 1.  The roots of
/// unity are computed as integers and injected with from_int, so this works
/// for concrete prime fields AND for the symbolic CircuitBuilderField
/// (producing NTT-structured circuits over a fixed target field).
template <class F>
std::vector<typename F::Element> ntt_mul_prime_field(
    const F& f, const std::vector<typename F::Element>& a,
    const std::vector<typename F::Element>& b) {
  const std::size_t out_len = a.size() + b.size() - 1;
  std::size_t n = 1;
  while (n < out_len) n <<= 1;
  const std::uint64_t p = f.characteristic();
  assert(p != 0 && (p - 1) % n == 0 && "field lacks a root of unity of required order");

  const std::uint64_t g = detail::cached_primitive_root(p);
  const std::uint64_t w = kp::field::detail::powmod(g, (p - 1) / n, p);

  std::vector<typename F::Element> fa(a);
  std::vector<typename F::Element> fb(b);
  fa.resize(n, f.zero());
  fb.resize(n, f.zero());
  detail::ntt_inplace(f, fa, w, p);
  detail::ntt_inplace(f, fb, w, p);
  const std::uint64_t w_inv = kp::field::detail::invmod(w, p);
  if constexpr (kp::field::kernels::FastField<F>) {
    const auto& bar = kp::field::FieldKernels<F>::barrett(f);
    for (std::size_t i = 0; i < n; ++i) fa[i] = bar.mul(fa[i], fb[i]);
    kp::util::count_muls(n);
    detail::ntt_inplace(f, fa, w_inv, p);
    // One logical division for 1/n (the cached value skips the repeated
    // extended Euclid), then the Shoup constant-multiplier scale.
    const detail::ScaleInverse& si = detail::cached_scale_inverse(p, n);
    kp::util::count_div();
    for (auto& c : fa) {
      c = kp::field::fastmod::shoup_mul(c, si.n_inv, si.n_inv_shoup, p);
    }
    kp::util::count_muls(n);
  } else {
    for (std::size_t i = 0; i < n; ++i) fa[i] = f.mul(fa[i], fb[i]);
    detail::ntt_inplace(f, fa, w_inv, p);
    const auto n_inv = f.inv(f.from_int(static_cast<std::int64_t>(n)));
    for (auto& c : fa) c = f.mul(c, n_inv);
  }
  fa.resize(out_len);
  return fa;
}

namespace detail {

template <class F>
struct PrimeFieldNttTraits {
  static constexpr bool kSupported = true;
  static bool available(const F& f, std::size_t out_len) {
    std::size_t n = 1;
    int log_n = 0;
    while (n < out_len) {
      n <<= 1;
      ++log_n;
    }
    return log_n <= two_adicity(f.characteristic());
  }
  static std::vector<typename F::Element> mul(
      const F& f, const std::vector<typename F::Element>& a,
      const std::vector<typename F::Element>& b) {
    return ntt_mul_prime_field(f, a, b);
  }
};

}  // namespace detail

template <std::uint64_t P>
struct NttTraits<kp::field::Zp<P>>
    : detail::PrimeFieldNttTraits<kp::field::Zp<P>> {};

template <>
struct NttTraits<kp::field::GFp> : detail::PrimeFieldNttTraits<kp::field::GFp> {};

/// The frozen seed field keeps the generic butterfly path (its FieldKernels
/// trait stays non-fast), giving the equivalence tests and bench_kernels an
/// end-to-end reference transform.
template <>
struct NttTraits<kp::field::GFpReference>
    : detail::PrimeFieldNttTraits<kp::field::GFpReference> {};

}  // namespace kp::poly

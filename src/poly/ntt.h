// Number-theoretic transform over prime fields with 2-adic roots of unity.
//
// Plays the role of the Cantor-Kaltofen fast polynomial multiplication black
// box of the paper for the common case K = Z/pZ with 2^k | p-1.  All
// butterflies go through the field domain, so NTT work is measured in the
// same unit cost model as everything else.
#pragma once

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "field/primes.h"
#include "field/zp.h"
#include "poly/poly_ring.h"

namespace kp::poly {

namespace detail {

/// Largest k with 2^k | p - 1.
inline int two_adicity(std::uint64_t p) {
  std::uint64_t m = p - 1;
  int k = 0;
  while ((m & 1) == 0) {
    m >>= 1;
    ++k;
  }
  return k;
}

/// Cached primitive root per modulus (root search factors p-1, so cache it).
inline std::uint64_t cached_primitive_root(std::uint64_t p) {
  thread_local std::unordered_map<std::uint64_t, std::uint64_t> cache;
  auto it = cache.find(p);
  if (it != cache.end()) return it->second;
  const std::uint64_t g = kp::field::primitive_root(p);
  cache.emplace(p, g);
  return g;
}

/// In-place iterative radix-2 NTT.  `w_int` must be a primitive n-th root of
/// unity mod p where n = a.size() is a power of two.  Twiddle factors are
/// precomputed as INTEGER powers and injected with from_int: they are
/// constants of the computation, so a recorded circuit gets O(log n) depth
/// (a running twiddle product would be an O(n)-deep dependency chain).
/// Butterfly arithmetic goes through the field domain and is op-counted.
template <class F>
void ntt_inplace(const F& f, std::vector<typename F::Element>& a,
                 std::uint64_t w_int, std::uint64_t p) {
  const std::size_t n = a.size();
  assert((n & (n - 1)) == 0 && "NTT size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  // Twiddle table: tw[k] = w^k for k < n/2, as field constants.
  std::vector<typename F::Element> tw;
  tw.reserve(n / 2 + 1);
  std::uint64_t acc = 1;
  for (std::size_t k = 0; k < std::max<std::size_t>(n / 2, 1); ++k) {
    tw.push_back(f.from_int(static_cast<std::int64_t>(acc)));
    acc = kp::field::detail::mulmod(acc, w_int, p);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t step = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        const auto u = a[i + j];
        const auto v = f.mul(a[i + j + len / 2], tw[j * step]);
        a[i + j] = f.add(u, v);
        a[i + j + len / 2] = f.sub(u, v);
      }
    }
  }
}

}  // namespace detail

/// NTT-based multiplication over any domain whose characteristic() is a
/// word-sized prime p with 2^ceil(log2(out_len)) | p - 1.  The roots of
/// unity are computed as integers and injected with from_int, so this works
/// for concrete prime fields AND for the symbolic CircuitBuilderField
/// (producing NTT-structured circuits over a fixed target field).
template <class F>
std::vector<typename F::Element> ntt_mul_prime_field(
    const F& f, const std::vector<typename F::Element>& a,
    const std::vector<typename F::Element>& b) {
  const std::size_t out_len = a.size() + b.size() - 1;
  std::size_t n = 1;
  while (n < out_len) n <<= 1;
  const std::uint64_t p = f.characteristic();
  assert(p != 0 && (p - 1) % n == 0 && "field lacks a root of unity of required order");

  const std::uint64_t g = detail::cached_primitive_root(p);
  const std::uint64_t w = kp::field::detail::powmod(g, (p - 1) / n, p);

  std::vector<typename F::Element> fa(a);
  std::vector<typename F::Element> fb(b);
  fa.resize(n, f.zero());
  fb.resize(n, f.zero());
  detail::ntt_inplace(f, fa, w, p);
  detail::ntt_inplace(f, fb, w, p);
  for (std::size_t i = 0; i < n; ++i) fa[i] = f.mul(fa[i], fb[i]);
  const std::uint64_t w_inv = kp::field::detail::invmod(w, p);
  detail::ntt_inplace(f, fa, w_inv, p);
  const auto n_inv = f.inv(f.from_int(static_cast<std::int64_t>(n)));
  for (auto& c : fa) c = f.mul(c, n_inv);
  fa.resize(out_len);
  return fa;
}

namespace detail {

template <class F>
struct PrimeFieldNttTraits {
  static constexpr bool kSupported = true;
  static bool available(const F& f, std::size_t out_len) {
    std::size_t n = 1;
    int log_n = 0;
    while (n < out_len) {
      n <<= 1;
      ++log_n;
    }
    return log_n <= two_adicity(f.characteristic());
  }
  static std::vector<typename F::Element> mul(
      const F& f, const std::vector<typename F::Element>& a,
      const std::vector<typename F::Element>& b) {
    return ntt_mul_prime_field(f, a, b);
  }
};

}  // namespace detail

template <std::uint64_t P>
struct NttTraits<kp::field::Zp<P>>
    : detail::PrimeFieldNttTraits<kp::field::Zp<P>> {};

template <>
struct NttTraits<kp::field::GFp> : detail::PrimeFieldNttTraits<kp::field::GFp> {};

}  // namespace kp::poly

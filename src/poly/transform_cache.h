// Transform-domain caching of fixed multiplication operands.
//
// Every structured-matrix apply in the library is "multiply a FIXED
// polynomial by a varying one": the Toeplitz/Hankel symbol against the
// current vector (2n products per Krylov run), the Gohberg-Semencul
// generator columns against each right-hand side, the Newton-iteration
// factor against both update terms of its level.  The plain ring.mul path
// forward-transforms both operands every time, so the fixed side pays
// O(n log n) work per product for a spectrum that never changes.
//
// TransformedPoly pins the fixed operand and memoizes its forward NTT per
// padded transform size (the size depends on BOTH operands' lengths, so one
// fixed operand can need spectra at a few neighboring powers of two).  A
// product then costs one forward transform (the varying side) + pointwise +
// inverse instead of two forwards.
//
// Contract (matches the PR-2 kernel convention: physical work cached,
// logical charge preserved):
//   * values are exactly ring.mul(fixed, x) -- the NTT path is taken under
//     exactly the conditions PolyRing::mul would take it (see NttPlan), and
//     the pointwise product is commutative, so operand order cannot matter;
//   * logical op counts are exactly ring.mul's: a cache hit re-charges the
//     recorded cost of the forward transform it skipped, so OpScope
//     measurements are independent of cache state.  The saving is visible
//     only in wall-clock time and in transform_stats().forward_avoided;
//   * thread-safe: the spectrum table is mutex-guarded and entries are
//     immutable once published, so pooled workers may share one
//     TransformedPoly.
//
// The cache applies to concrete value-semantic coefficient rings whose
// SplitMul trait is enabled: prime fields with NTT support here, and
// TruncSeriesRing<F> via its Kronecker packing (specialization in
// poly/trunc_series.h).  Domains that record their operations (the circuit
// builder) fall back to plain ring.mul -- replaying a cached spectrum would
// silently change the recorded circuit.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "field/concepts.h"
#include "poly/ntt.h"
#include "poly/poly_ring.h"
#include "pram/parallel_for.h"
#include "util/op_count.h"

namespace kp::poly {

/// Global kill switch, used by the benches to measure cached vs uncached
/// forward-transform counts on the same build.  Off = every TransformedPoly
/// degrades to plain ring.mul.
inline std::atomic<bool>& transform_cache_enabled() {
  static std::atomic<bool> on{true};
  return on;
}

/// How a coefficient ring exposes its NTT as separable pack / forward /
/// pointwise-finish / unpack stages.  The primary template covers base
/// fields (packing is the identity); TruncSeriesRing<F> specializes it in
/// poly/trunc_series.h with its Kronecker-substitution packing.
/// `pack`/`unpack` must perform no counted field operations (they move
/// coefficients; eq used for stripping is uncounted by convention), so a
/// cached packed form needs no op-count replay -- only the forward
/// transform's cost is recorded.
/// True when NttTraits<R> declares kDirect: its transform runs over R
/// itself, so the split forward / pointwise / inverse stages of this header
/// apply.  Indirect kernels (GFpk's Z/qZ packing, the circuit field) report
/// false and fall back to whole ring.mul calls.
template <class R>
inline constexpr bool ntt_direct_v = requires { requires NttTraits<R>::kDirect; };

template <class R>
struct SplitMul {
  /// Field the packed representation lives in.
  using Field = R;
  /// Caching is worthwhile and sound: the ring has a same-field NTT and is a
  /// plain value domain (no shared-state op recording).
  static constexpr bool kSupported = ntt_direct_v<R> &&
                                     kp::field::concurrent_ops_v<R> &&
                                     kp::field::Field<R>;
  static const Field& base(const R& r) { return r; }
  static bool available(const R& r, std::size_t out_len) {
    return NttTraits<R>::available(r, out_len);
  }
  static std::vector<typename R::Element> pack(
      const R&, const std::vector<typename R::Element>& v) {
    return v;
  }
  static std::vector<typename R::Element> unpack(
      const R&, std::vector<typename R::Element>&& prod, std::size_t) {
    return std::move(prod);
  }
};

/// The dispatch decision TransformedPoly mirrors from PolyRing::mul for a
/// given pair of operand lengths: whether the NTT kernel runs, and at which
/// padded transform size.
struct NttPlan {
  bool use_ntt = false;
  std::size_t n = 0;  ///< padded base-field transform size when use_ntt
};

/// A fixed polynomial operand with memoized forward transforms.
///
/// Construct once from the invariant operand, then call mul(ring, x) in
/// place of ring.mul(fixed, x).  Copying keeps the operand (and its packed
/// form) but drops the spectrum cache -- copies are cheap to make and
/// rebuild their spectra on first use.
template <class R>
class TransformedPoly {
 public:
  using Ring = PolyRing<R>;
  using Poly = typename Ring::Element;
  using S = SplitMul<R>;
  using FieldElem = typename S::Field::Element;

  TransformedPoly() = default;
  TransformedPoly(const Ring& ring, Poly fixed) : fixed_(std::move(fixed)) {
    if constexpr (S::kSupported) {
      packed_ = S::pack(ring.base(), fixed_);
    }
  }

  TransformedPoly(const TransformedPoly& o)
      : fixed_(o.fixed_), packed_(o.packed_) {}
  TransformedPoly& operator=(const TransformedPoly& o) {
    if (this != &o) {
      fixed_ = o.fixed_;
      packed_ = o.packed_;
      std::lock_guard<std::mutex> lk(mu_);
      spectra_.clear();
    }
    return *this;
  }
  TransformedPoly(TransformedPoly&& o) noexcept
      : fixed_(std::move(o.fixed_)), packed_(std::move(o.packed_)) {
    std::lock_guard<std::mutex> lk(o.mu_);
    spectra_ = std::move(o.spectra_);
  }
  TransformedPoly& operator=(TransformedPoly&& o) {
    if (this != &o) {
      fixed_ = std::move(o.fixed_);
      packed_ = std::move(o.packed_);
      std::scoped_lock lk(mu_, o.mu_);
      spectra_ = std::move(o.spectra_);
    }
    return *this;
  }

  const Poly& poly() const { return fixed_; }

  /// Mirrors PolyRing::mul's kernel dispatch for (fixed, x): the NTT kernel
  /// runs for kNtt always and for kAuto from min-size 8 when the ring
  /// supports the required root of unity; other strategies (and disabled
  /// caching) take the plain path.
  NttPlan plan(const Ring& ring, const Poly& x) const {
    if constexpr (!S::kSupported) {
      return {};
    } else {
      if (fixed_.empty() || x.empty() ||
          !transform_cache_enabled().load(std::memory_order_relaxed)) {
        return {};
      }
      const std::size_t out_len = fixed_.size() + x.size() - 1;
      const MulStrategy st = ring.strategy();
      const bool ntt =
          st == MulStrategy::kNtt ||
          (st == MulStrategy::kAuto &&
           std::min(fixed_.size(), x.size()) >= 8 &&
           NttTraits<R>::available(ring.base(), out_len));
      return {ntt, 0};
    }
  }

  /// ring.mul(fixed, x): identical values, identical logical op counts, one
  /// forward transform saved per call once the spectrum is cached.
  /// `fixed_first` records the operand order of the call site being
  /// replaced: the NTT kernel is order-insensitive in both values and op
  /// counts, but the schoolbook/Karatsuba fallback skips zeros of its FIRST
  /// operand, so the fallback must preserve the original order to keep op
  /// counts bit-identical.
  Poly mul(const Ring& ring, const Poly& x, bool fixed_first = true) const {
    if constexpr (S::kSupported) {
      if (plan(ring, x).use_ntt) return mul_ntt(ring, x, fixed_first);
    }
    return fixed_first ? ring.mul(fixed_, x) : ring.mul(x, fixed_);
  }

  /// Batched ring.mul(fixed, x_i) for every x_i: the varying-side forward
  /// transforms are grouped by padded size and dispatched over the pool via
  /// ntt_many, and the pointwise+inverse stages run as one parallel region.
  /// Values and op-count totals are identical to calling mul in a loop.
  std::vector<Poly> mul_many(const Ring& ring,
                             const std::vector<const Poly*>& xs) const {
    std::vector<Poly> out(xs.size());
    if constexpr (S::kSupported) {
      const R& r = ring.base();
      const auto& f = S::base(r);
      const std::uint64_t p = f.characteristic();
      // Partition: NTT-eligible items batch, the rest take plain ring.mul.
      std::vector<std::size_t> idx;              // eligible item -> xs index
      std::vector<std::vector<FieldElem>> bufs;  // padded varying operands
      std::vector<std::size_t> xlen;             // packed length pre-padding
      std::vector<std::size_t> size;             // padded transform size
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (!plan(ring, *xs[i]).use_ntt) {
          out[i] = ring.mul(fixed_, *xs[i]);
          continue;
        }
        auto px = S::pack(r, *xs[i]);
        if (packed_.empty() || px.empty()) {
          out[i] = ring.mul(fixed_, *xs[i]);
          continue;
        }
        const std::size_t out_len = packed_.size() + px.size() - 1;
        std::size_t n = 1;
        while (n < out_len) n <<= 1;
        // Charge/compute the fixed side per use, exactly as a mul loop
        // would (hits replay the recorded cost).
        spectrum(f, n);
        idx.push_back(i);
        xlen.push_back(px.size());
        size.push_back(n);
        px.resize(n, f.zero());
        bufs.push_back(std::move(px));
      }
      // Forward transforms of the varying sides, grouped by size.
      std::map<std::size_t, std::vector<std::size_t>> groups;
      for (std::size_t k = 0; k < idx.size(); ++k) groups[size[k]].push_back(k);
      for (const auto& [n, members] : groups) {
        std::vector<std::vector<FieldElem>*> ptrs;
        ptrs.reserve(members.size());
        for (const std::size_t k : members) ptrs.push_back(&bufs[k]);
        ntt_many(f, ptrs, detail::root_of_unity(p, n), p);
        detail::transform_counters().forward.fetch_add(
            members.size(), std::memory_order_relaxed);
      }
      // Pointwise + inverse + unpack per item: independent, so one pool
      // region (nested transform chunking degrades to serial inside it).
      const auto finish_one = [&](std::size_t k) {
        const std::size_t n = size[k];
        NttSpectrum<typename S::Field> fx{n, xlen[k], std::move(bufs[k])};
        const CachedSpectrum* cs = nullptr;
        {
          std::lock_guard<std::mutex> lk(mu_);
          cs = &spectra_.at(n);
        }
        auto prod = ntt_pointwise_finish(f, std::move(fx), cs->spec);
        Poly res = S::unpack(r, std::move(prod),
                             fixed_.size() + xs[idx[k]]->size() - 1);
        ring.strip(res);
        out[idx[k]] = std::move(res);
      };
      if (kp::field::concurrent_ops_v<typename S::Field> && idx.size() > 1) {
        kp::pram::parallel_for(0, idx.size(), finish_one);
      } else {
        for (std::size_t k = 0; k < idx.size(); ++k) finish_one(k);
      }
    } else {
      for (std::size_t i = 0; i < xs.size(); ++i) {
        out[i] = ring.mul(fixed_, *xs[i]);
      }
    }
    return out;
  }

 private:
  struct CachedSpectrum {
    NttSpectrum<typename S::Field> spec;
    kp::util::OpCounts cost;  ///< logical ops of the forward transform
  };

  Poly mul_ntt(const Ring& ring, const Poly& x, bool fixed_first) const {
    const R& r = ring.base();
    const auto& f = S::base(r);
    auto px = S::pack(r, x);
    if (packed_.empty() || px.empty()) {
      return fixed_first ? ring.mul(fixed_, x) : ring.mul(x, fixed_);
    }
    const std::size_t out_len = packed_.size() + px.size() - 1;
    std::size_t n = 1;
    while (n < out_len) n <<= 1;
    const CachedSpectrum& cs = spectrum(f, n);
    NttSpectrum<typename S::Field> fx = ntt_forward(f, px, n);
    auto prod = ntt_pointwise_finish(f, std::move(fx), cs.spec);
    Poly out = S::unpack(r, std::move(prod), fixed_.size() + x.size() - 1);
    ring.strip(out);
    return out;
  }

  /// Spectrum of the fixed operand at padded size n.  First use computes
  /// and records its logical cost; every later use re-charges that cost so
  /// measurements cannot tell the cache was there.
  const CachedSpectrum& spectrum(const typename S::Field& f,
                                 std::size_t n) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = spectra_.find(n);
    if (it != spectra_.end()) {
      kp::util::tl_op_counts += it->second.cost;
      detail::transform_counters().forward_avoided.fetch_add(
          1, std::memory_order_relaxed);
      return it->second;
    }
    CachedSpectrum cs;
    const kp::util::OpCounts before = kp::util::tl_op_counts;
    cs.spec = ntt_forward(f, packed_, n);
    cs.cost = kp::util::tl_op_counts - before;
    return spectra_.emplace(n, std::move(cs)).first->second;
  }

  Poly fixed_;
  std::vector<FieldElem> packed_;
  mutable std::mutex mu_;
  mutable std::map<std::size_t, CachedSpectrum> spectra_;
};

}  // namespace kp::poly

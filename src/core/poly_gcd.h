// Polynomial GCD and resultants through structured linear algebra -- the
// section-5 Sylvester extension.
//
//   * resultant(f, g) = det(Sylvester(f, g)): computed with the randomized
//     determinant pipeline (or elimination as baseline).
//   * deg gcd(f, g) = df + dg - rank(Sylvester(f, g)).
//   * gcd itself from ONE linear solve: with d = deg gcd, the square system
//       coeff_{x^j}(u f + v g) = [j == d]   for j = d .. df+dg-d-1,
//     in the unknown cofactors (deg u < dg-d, deg v < df-d) has the unique
//     solution with u f + v g = monic gcd (write f = h f1, g = h g1 with
//     gcd(f1, g1) = 1 and apply Bezout to f1, g1).
//
// These routines are cross-checked against the Euclidean algorithm
// (poly/poly_ring.h gcd) in the tests and ablated in bench_sylvester.
#pragma once

#include <cassert>
#include <optional>
#include <vector>

#include "core/extensions.h"
#include "core/solver.h"
#include "matrix/gauss.h"
#include "matrix/sylvester.h"
#include "poly/poly.h"
#include "util/prng.h"

namespace kp::core {

/// Resultant via the determinant of the Sylvester matrix.
template <kp::field::Field F>
typename F::Element resultant_gauss(const F& f,
                                    const matrix::Sylvester<F>& s) {
  return matrix::det_gauss(f, s.to_dense(f));
}

/// Resultant through the Theorem-4 randomized determinant; falls back to
/// elimination when the pipeline reports failure (e.g. Res = 0).
template <kp::field::Field F>
typename F::Element resultant_randomized(const F& f,
                                         const matrix::Sylvester<F>& s,
                                         kp::util::Prng& prng,
                                         SolverOptions opt = {}) {
  const auto dense = s.to_dense(f);
  auto res = kp_det(f, dense, prng, opt);
  if (res.ok) return res.det;
  return matrix::det_gauss(f, dense);
}

/// deg gcd(f, g) = dim - rank(Sylvester); Monte Carlo rank.
template <kp::field::Field F>
std::size_t gcd_degree_randomized(const F& f, const matrix::Sylvester<F>& s,
                                  kp::util::Prng& prng,
                                  std::uint64_t sample = 1ULL << 30) {
  return s.dim() - rank_randomized(f, s.to_dense(f), prng, sample);
}

/// gcd plus the Bezout-style cofactors -- the paper's "coefficients of the
/// polynomials in the Euclidean scheme": h = u f + v g with h the monic gcd,
/// deg u < dg - d, deg v < df - d.
template <kp::field::Field F>
struct GcdResult {
  typename kp::poly::PolyRing<F>::Element h;  ///< monic gcd
  typename kp::poly::PolyRing<F>::Element u;  ///< cofactor of f
  typename kp::poly::PolyRing<F>::Element v;  ///< cofactor of g
};

/// Monic gcd (with cofactors) by the one-solve construction above, given the
/// gcd degree.  Returns nullopt if the degree guess was wrong (Las Vegas:
/// the caller's degree comes from a Monte Carlo rank, so the result is
/// verified here by trial division and nullopt is returned on any
/// inconsistency).
template <kp::field::Field F>
std::optional<GcdResult<F>> gcd_with_cofactors_from_degree(
    const kp::poly::PolyRing<F>& ring,
    const typename kp::poly::PolyRing<F>::Element& f,
    const typename kp::poly::PolyRing<F>::Element& g, std::size_t d) {
  const F& fld = ring.base();
  const std::size_t df = f.size() - 1, dg = g.size() - 1;
  if (d > std::min(df, dg)) return std::nullopt;
  if (d == std::min(df, dg)) {
    // One divides the other (up to scalar): verify and return with the
    // trivial cofactor pair (h = c * small, so u or v is the constant 1/lc).
    const bool f_small = df <= dg;
    const auto& small = f_small ? f : g;
    const auto& large = f_small ? g : f;
    if (!ring.is_zero(ring.divmod(large, small).second)) return std::nullopt;
    GcdResult<F> out;
    out.h = ring.monic(small);
    typename kp::poly::PolyRing<F>::Element scale{fld.inv(ring.lead(small))};
    out.u = f_small ? scale : ring.zero();
    out.v = f_small ? ring.zero() : scale;
    return out;
  }

  // Unknowns: u (deg < dg - d), v (deg < df - d), little-endian, stacked.
  const std::size_t nu = dg - d, nv = df - d;
  const std::size_t n = nu + nv;
  // Equations: coeff_{x^{d+r}}(u f + v g) = [r == 0], r = 0 .. n-1.
  matrix::Matrix<F> m(n, n, fld.zero());
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t target = d + r;
    for (std::size_t i = 0; i < nu; ++i) {
      // u_i contributes f_{target - i}.
      if (target >= i && target - i < f.size()) m.at(r, i) = f[target - i];
    }
    for (std::size_t j = 0; j < nv; ++j) {
      if (target >= j && target - j < g.size()) m.at(r, nu + j) = g[target - j];
    }
  }
  std::vector<typename F::Element> rhs(n, fld.zero());
  rhs[0] = fld.one();

  auto sol = matrix::solve_gauss(fld, m, rhs);
  if (!sol) return std::nullopt;

  typename kp::poly::PolyRing<F>::Element u(sol->begin(),
                                            sol->begin() + static_cast<std::ptrdiff_t>(nu));
  typename kp::poly::PolyRing<F>::Element v(sol->begin() + static_cast<std::ptrdiff_t>(nu),
                                            sol->end());
  ring.strip(u);
  ring.strip(v);
  auto h = ring.add(ring.mul(u, f), ring.mul(v, g));
  // h must be monic of degree exactly d and divide both inputs.
  if (kp::poly::PolyRing<F>::degree(h) != static_cast<std::int64_t>(d)) {
    return std::nullopt;
  }
  if (!fld.eq(ring.lead(h), fld.one())) return std::nullopt;
  if (!ring.is_zero(ring.divmod(f, h).second)) return std::nullopt;
  if (!ring.is_zero(ring.divmod(g, h).second)) return std::nullopt;
  return GcdResult<F>{std::move(h), std::move(u), std::move(v)};
}

/// Back-compat convenience: just the monic gcd from a degree guess.
template <kp::field::Field F>
std::optional<typename kp::poly::PolyRing<F>::Element> gcd_from_degree(
    const kp::poly::PolyRing<F>& ring,
    const typename kp::poly::PolyRing<F>::Element& f,
    const typename kp::poly::PolyRing<F>::Element& g, std::size_t d) {
  auto res = gcd_with_cofactors_from_degree(ring, f, g, d);
  if (!res) return std::nullopt;
  return std::move(res->h);
}

/// Monic gcd via linear algebra end-to-end: randomized degree (rank of the
/// Sylvester matrix), then the one-solve recovery; verified, with degree
/// re-tries around the Monte Carlo estimate.  Requires non-zero inputs.
template <kp::field::Field F>
typename kp::poly::PolyRing<F>::Element gcd_via_linear_algebra(
    const kp::poly::PolyRing<F>& ring,
    const typename kp::poly::PolyRing<F>::Element& f,
    const typename kp::poly::PolyRing<F>::Element& g, kp::util::Prng& prng,
    std::uint64_t sample = 1ULL << 30) {
  assert(!ring.is_zero(f) && !ring.is_zero(g));
  if (f.size() == 1 || g.size() == 1) return ring.one();  // non-zero constants
  matrix::Sylvester<F> s(ring, f, g);
  const std::size_t d0 = gcd_degree_randomized(ring.base(), s, prng, sample);
  // The Monte Carlo rank can only UNDER-estimate the rank (over-estimate d):
  // walk the degree downward until the verified recovery succeeds.
  for (std::size_t d = d0;; --d) {
    if (auto h = gcd_from_degree(ring, f, g, d)) return *h;
    if (d == 0) break;
  }
  // Unreachable for valid inputs: d = 0 always yields gcd 1 when coprime.
  return ring.gcd(f, g);
}

}  // namespace kp::core

// Multi-prime CRT sharding: exact Q/Z solves through word-size residue
// solves.
//
// Production inputs are rational or integral; the fast layers (Montgomery
// kernels, cached NTT spectra, SIMD dispatch, block-Wiedemann) all live on
// word-size Zp.  This engine routes a Rational/BigInt solve through K
// independent residue solves over distinct word-size NTT primes -- each one
// a full kp_solve on the optimized hot path -- and recombines by incremental
// CRT (core/crt_recon.h) plus Wang rational reconstruction with early
// termination:
//
//   scale      rows of [A | b] are scaled by their denominator lcm ONCE,
//              giving an integer system A_z x = B_z with the same solution
//              and det(A) = det(A_z) / prod(row scalers);
//   shard      for stream primes p_0 > p_1 > ... (field/primes.h,
//              deterministic descending NTT-prime stream), reduce the cached
//              integer system mod p_i and run kp_solve over GFp(p_i).  Every
//              shard seeds its Prng with the SAME transcript seed, so every
//              shard replays identical preconditioner/projection draws and a
//              shard is bit-identical to a standalone Zp solve with that
//              seed.  A shard whose prime divides det(A_z) (or that fails
//              for any deterministic reason) is reported as
//              FailureKind::kBadPrime at Stage::kCrtShard and retried with
//              ONLY the next stream prime -- never a new transcript;
//   recombine  after each batch of shards, fold the residues into the
//              product-tree Garner accumulator and attempt reconstruction;
//              terminate as soon as sentinel entries are stable across two
//              consecutive batches AND the fully reconstructed candidate
//              verifies against the original system over Z (Las Vegas,
//              exact).  A Hadamard-bound cap bounds K a priori; inputs that
//              would exceed CrtOptions::max_shards fall back to the generic
//              multi-precision route, as does a run that burns its bad-prime
//              budget (singular inputs look like "every prime is bad", and
//              only the generic route can PROVE singularity).
//
// Scheduling: shards of one batch are independent tasks over
// pram::ExecutionContext.  By default each shard runs single-worker (nested
// regions are serial), so a batch of shards saturates the pool; the
// shard_workers knob flips to serial-outer/parallel-inner for few-shard
// runs.  Results and diagnostics are keyed by prime-stream index and sorted,
// so the output is deterministic regardless of completion order.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/crt_recon.h"
#include "core/solver.h"
#include "field/bigint.h"
#include "field/primes.h"
#include "field/rational.h"
#include "field/zp.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "pram/parallel_for.h"
#include "util/fault.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp::core {

/// Tuning knobs for the CRT sharding engine.
struct CrtOptions {
  /// Bit width of the stream primes (primes live in [2^(bits-1), 2^bits)).
  int prime_bits = 62;
  /// Minimum two-adicity of p - 1 (0 = derived from n so that every
  /// transform length the per-shard pipeline needs is available).
  int min_two_adicity = 0;
  /// Shards launched per batch (0 = max(pool worker count, 4)).  Early
  /// termination triggers at batch granularity, so smaller batches stop
  /// earlier but reconstruct more often.
  std::size_t batch_size = 0;
  /// Workers each shard's inner pipeline may use.  1 (default): shards of a
  /// batch run as parallel tasks, each internally serial -- K shards
  /// saturate the pool.  > 1: shards run one after another, each spread
  /// over this many workers -- better for few large shards.
  unsigned shard_workers = 1;
  /// Hard cap on K.  When the Hadamard bound says more shards than this
  /// could be needed, the engine does not start at all and falls back to
  /// the generic multi-precision route.
  std::size_t max_shards = 1024;
  /// Total bad primes tolerated before concluding the input is probably
  /// singular and falling back to the generic route (which proves it).
  int max_bad_primes = 8;
  /// Attempt reconstruction after every batch and stop once it stabilizes
  /// and verifies; off = run straight to the Hadamard bound.
  bool early_termination = true;
  /// Keep each successful shard's raw residues in the result (tests,
  /// debugging; off by default -- it is O(K n) extra memory).
  bool keep_residues = false;
  /// Per-shard pipeline knobs (block width, route, budgets...).  The engine
  /// forces verify + dense_fallback on top, see shard_solver_options().
  SolverOptions solver;
  /// Warm-start pinning for sessions (core/session.h): primes a previous
  /// solve of the SAME operator proved good, pre-seeded into the stream
  /// cache so repeat solves skip the next_ntt_prime certification work, and
  /// the transcript seed that run used (0 = fork a fresh one from the
  /// caller's prng).  Correctness is unaffected: a pinned prime that turns
  /// bad for a new right-hand side is still detected and redrawn, because
  /// pinning only pre-populates the deterministic stream.
  std::vector<std::uint64_t> pinned_primes;
  std::uint64_t pinned_transcript_seed = 0;
};

/// Raw output of one successful shard (keep_residues only).
struct CrtShardResidue {
  std::uint64_t prime = 0;
  std::int64_t prime_index = -1;  ///< position in the deterministic stream
  std::vector<std::uint64_t> x;   ///< solution residues (empty for det-only)
  std::uint64_t det = 0;          ///< det(A_z) mod prime
};

/// Outcome of a sharded solve.
struct CrtSolveResult {
  bool ok = false;
  std::vector<field::Rational> x;  ///< exact solution of A x = b
  field::Rational det;             ///< det(A); see det_certified
  /// True when the accumulated modulus exceeds the Hadamard bound on
  /// |det(A_z)|, i.e. det is unconditionally determined.  Under early
  /// termination x is always verified exactly, but det is a by-product that
  /// may stop short of its own bound.
  bool det_certified = false;
  std::vector<std::uint64_t> primes;      ///< good primes, stream order
  std::vector<util::Diag> diags;          ///< one per shard attempt, by index
  util::Status status;
  std::size_t shards_used = 0;            ///< good shards folded
  std::size_t batches = 0;
  std::size_t hadamard_cap = 0;           ///< a-priori K bound for this input
  bool early_terminated = false;
  bool used_generic = false;              ///< answer from the generic route
  std::uint64_t transcript_seed = 0;      ///< the shared shard seed
  std::vector<CrtShardResidue> residues;  ///< keep_residues only
};

/// The exact SolverOptions every shard runs with: caller knobs plus forced
/// verification (so a bad prime is always DETECTED, making shard failure a
/// deterministic function of (transcript, prime)) and the dense settle path
/// (so det = 0 mod p yields kSingularInput instead of retry noise).  Public
/// so the bit-identity tests can run a standalone solve with the identical
/// configuration.
inline SolverOptions shard_solver_options(const CrtOptions& opt) {
  SolverOptions s = opt.solver;
  s.verify = true;
  s.dense_fallback = true;
  s.collect_diag = false;
  return s;
}

namespace detail {

/// Thread-safe memoized view of the deterministic descending NTT-prime
/// stream: at(i) is the i-th prime, the same on every host and for every
/// interleaving.  Returns 0 when the stream is exhausted.
class NttPrimeStream {
 public:
  NttPrimeStream(int bits, int min_two_adicity)
      : bits_(bits), adicity_(min_two_adicity) {}

  /// Pre-seeds the memo with primes certified by a previous run over the
  /// same operator (CrtOptions::pinned_primes): positions 0..k-1 are served
  /// from the pin without re-running next_ntt_prime, and the stream
  /// continues descending past the last pinned prime on demand (so bad-prime
  /// redraws still work).  A non-descending or zero-containing pin is
  /// ignored -- the stream must stay strictly descending to be duplicate-
  /// free.
  NttPrimeStream(int bits, int min_two_adicity,
                 const std::vector<std::uint64_t>& pinned)
      : bits_(bits), adicity_(min_two_adicity) {
    for (const std::uint64_t p : pinned) {
      if (p == 0 || (!cache_.empty() && p >= cache_.back())) {
        cache_.clear();
        return;
      }
      cache_.push_back(p);
    }
  }

  std::uint64_t at(std::size_t index) {
    std::lock_guard<std::mutex> lk(m_);
    while (cache_.size() <= index) {
      if (!cache_.empty() && cache_.back() == 0) return 0;  // exhausted
      const std::uint64_t prev = cache_.empty() ? 0 : cache_.back();
      cache_.push_back(field::next_ntt_prime(bits_, adicity_, prev));
    }
    return cache_[index];
  }

 private:
  std::mutex m_;
  std::vector<std::uint64_t> cache_;
  int bits_;
  int adicity_;
};

/// The row-scaled integer image of a rational system: A_z x = B_z has the
/// same solution as A x = b, and det(A_z) = det(A) * row_scale.  Built once;
/// every shard reduces these cached BigInts mod its own prime.
struct IntegerSystem {
  std::size_t n = 0;
  std::vector<field::BigInt> a;  ///< n x n, row-major
  std::vector<field::BigInt> b;  ///< empty for det-only runs
  field::BigInt row_scale;       ///< product of the per-row denominator lcms
  std::size_t entry_bits = 1;    ///< max bit length over A_z
  std::size_t rhs_bits = 1;      ///< max bit length over B_z
};

inline IntegerSystem scale_to_integers(
    const matrix::Matrix<field::RationalField>& a,
    const std::vector<field::Rational>* rhs) {
  using field::BigInt;
  IntegerSystem sys;
  sys.n = a.rows();
  sys.a.resize(sys.n * sys.n);
  if (rhs != nullptr) sys.b.resize(sys.n);
  sys.row_scale = BigInt(1);
  for (std::size_t i = 0; i < sys.n; ++i) {
    BigInt l(1);
    auto fold_den = [&l](const BigInt& den) {
      l = l / BigInt::gcd(l, den) * den;  // lcm
    };
    for (std::size_t j = 0; j < sys.n; ++j) fold_den(a.at(i, j).den());
    if (rhs != nullptr) fold_den((*rhs)[i].den());
    for (std::size_t j = 0; j < sys.n; ++j) {
      const field::Rational& e = a.at(i, j);
      BigInt v = e.num() * (l / e.den());
      sys.entry_bits = std::max(sys.entry_bits, v.bit_length());
      sys.a[i * sys.n + j] = std::move(v);
    }
    if (rhs != nullptr) {
      const field::Rational& e = (*rhs)[i];
      BigInt v = e.num() * (l / e.den());
      sys.rhs_bits = std::max(sys.rhs_bits, v.bit_length());
      sys.b[i] = std::move(v);
    }
    sys.row_scale *= l;
  }
  return sys;
}

/// One shard attempt: reduce the cached integer system mod p (done once per
/// prime) and run the full word-size pipeline with the shared transcript.
struct ShardOutcome {
  bool ok = false;
  std::uint64_t prime = 0;
  std::size_t index = 0;
  std::vector<std::uint64_t> x;
  std::uint64_t det = 0;
  util::Diag diag;
};

inline ShardOutcome run_shard(const IntegerSystem& sys, std::uint64_t p,
                              std::size_t index, std::uint64_t transcript_seed,
                              const CrtOptions& opt) {
  using util::FailureKind;
  using util::Stage;
  ShardOutcome out;
  out.prime = p;
  out.index = index;
  out.diag.attempt = static_cast<int>(index) + 1;
  out.diag.stage = Stage::kCrtShard;
  out.diag.shard_modulus = p;
  out.diag.shard_prime_index = static_cast<std::int64_t>(index);
  out.diag.precondition_seed = transcript_seed;
  out.diag.projection_seed = transcript_seed;
  if (KP_FAULT_POINT(Stage::kCrtShard)) {
    out.diag.kind = FailureKind::kBadPrime;
    out.diag.injected = true;
    return out;
  }
  const field::GFp f(p);
  const std::size_t n = sys.n;
  matrix::Matrix<field::GFp> ap(n, n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ap.at(i, j) = sys.a[i * n + j].mod_u64(p);
    }
  }
  util::Prng prng(transcript_seed);
  const SolverOptions sopt = shard_solver_options(opt);
  if (sys.b.empty()) {
    auto res = kp_det(f, ap, prng, sopt);
    out.diag.sample_size = res.sample_size_used;
    if (!res.ok || f.is_zero(res.det)) {
      out.diag.kind = FailureKind::kBadPrime;
      out.diag.injected = res.status.injected();
      return out;
    }
    out.det = res.det;
  } else {
    std::vector<std::uint64_t> bp(n);
    for (std::size_t i = 0; i < n; ++i) bp[i] = sys.b[i].mod_u64(p);
    auto res = kp_solve(f, ap, bp, prng, sopt);
    out.diag.sample_size = res.sample_size_used;
    if (!res.ok) {
      // verify is forced on, so failure here is deterministic in (seed, p):
      // the canonical cause is p | det(A_z).  Retry with the NEXT prime
      // only; the transcript is shared state and never redrawn.
      out.diag.kind = FailureKind::kBadPrime;
      out.diag.injected = res.status.injected();
      return out;
    }
    out.x = std::move(res.x);
    out.det = res.det;
  }
  out.ok = true;
  return out;
}

/// Exact verification over Z: with x_j = n_j / d_j, L = lcm(d_j) and
/// y_j = n_j * (L / d_j), checks A_z y = L * B_z row by row (rows fan out
/// over the pool).  This is the Las Vegas gate that makes early termination
/// sound.
inline bool verify_candidate(const IntegerSystem& sys,
                             const std::vector<field::Rational>& x) {
  using field::BigInt;
  const std::size_t n = sys.n;
  BigInt l(1);
  for (const auto& e : x) l = l / BigInt::gcd(l, e.den()) * e.den();
  std::vector<BigInt> y(n);
  for (std::size_t j = 0; j < n; ++j) y[j] = x[j].num() * (l / x[j].den());
  std::vector<char> row_ok(n, 0);
  pram::parallel_for(0, n, [&](std::size_t i) {
    BigInt acc(0);
    for (std::size_t j = 0; j < n; ++j) acc += sys.a[i * n + j] * y[j];
    row_ok[i] = acc == sys.b[i] * l ? 1 : 0;
  });
  return std::all_of(row_ok.begin(), row_ok.end(),
                     [](char c) { return c != 0; });
}

}  // namespace detail

/// Sharded solve of A x = b over Q.  Pass rhs = nullptr for a
/// determinant-only run.  See the header comment for the lifecycle.
inline CrtSolveResult crt_solve(const field::RationalField& f,
                                const matrix::Matrix<field::RationalField>& a,
                                const std::vector<field::Rational>* rhs,
                                util::Prng& prng, CrtOptions opt = {}) {
  using field::BigInt;
  using field::Rational;
  using util::FailureKind;
  using util::Stage;
  using util::Status;

  CrtSolveResult out;
  const std::size_t n = a.rows();
  out.status = util::Require(
      a.is_square() && n > 0 && (rhs == nullptr || rhs->size() == n),
      FailureKind::kInvalidArgument, Stage::kCrtShard,
      "A must be square and match b");
  if (!out.status.ok()) return out;
  const bool det_only = rhs == nullptr;

  // The shared transcript: one fork of the caller's stream seeds EVERY
  // shard, so all per-shard randomness (preconditioners, projections) is
  // replayed identically and diagnostics aggregate across shards.
  out.transcript_seed =
      opt.pinned_transcript_seed != 0
          ? opt.pinned_transcript_seed  // session warm start: replay the
                                        // transcript the pinned primes were
                                        // certified under
          : prng.fork(0x6372742d73686472ULL).seed();  // "crt-shdr"

  // Generic multi-precision fallback, also the singularity prover.
  auto run_generic = [&](Status why) {
    // The deterministic multi-precision baseline: fraction-arithmetic
    // Gaussian elimination straight over Q.  The randomized pipeline on a
    // rational field compounds fraction blowup through every Krylov stage
    // and loses to plain elimination by orders of magnitude, so the
    // fallback goes directly to the cheaper exact route -- which is also
    // the one that PROVES kSingularInput.
    out.used_generic = true;
    out.det = matrix::det_gauss(f, a);
    out.det_certified = true;  // exact by construction, even when zero
    if (f.is_zero(out.det)) {
      out.ok = false;
      out.status = util::Status::Fail(util::FailureKind::kSingularInput,
                                      util::Stage::kSolveFinish,
                                      "Gaussian elimination: det(A) = 0");
      return;
    }
    if (!det_only) {
      auto x = matrix::solve_gauss(f, a, *rhs);
      if (!x) {
        out.ok = false;
        out.status = util::Status::Fail(util::FailureKind::kSingularInput,
                                        util::Stage::kSolveFinish,
                                        "Gaussian elimination: no solution");
        return;
      }
      out.x = *std::move(x);
    }
    out.ok = true;
    out.status = std::move(why);
  };

  // Scale to integers once; every shard reduces these cached BigInts.
  const detail::IntegerSystem sys =
      detail::scale_to_integers(a, det_only ? nullptr : rhs);

  // A-priori bit budget (Cramer + Hadamard) -> cap on K.
  const std::size_t det_bits = hadamard_det_bits(n, sys.entry_bits) + 2;
  const std::size_t needed_bits =
      det_only ? det_bits
               : solution_modulus_bits(n, sys.entry_bits, sys.rhs_bits);
  const std::size_t bits_per_prime =
      static_cast<std::size_t>(opt.prime_bits - 1);
  out.hadamard_cap = (needed_bits + bits_per_prime - 1) / bits_per_prime;
  if (out.hadamard_cap > opt.max_shards) {
    run_generic(Status::Ok());
    return out;
  }

  int adicity = opt.min_two_adicity;
  if (adicity == 0) {
    // The per-shard pipeline runs transforms up to length ~8 n^2 (the
    // Toeplitz-charpoly stage multiplies degree-n^2-scale products); a
    // too-small two-adicity silently degrades those muls to the slow
    // generic convolution, ~10x per shard.  Two extra levels of margin.
    adicity = 3;
    while ((std::size_t{1} << adicity) < 8 * n * n) ++adicity;
    adicity += 2;
  }
  detail::NttPrimeStream stream(opt.prime_bits, adicity, opt.pinned_primes);

  const std::size_t batch =
      opt.batch_size != 0
          ? opt.batch_size
          : std::max<std::size_t>(pram::worker_count(), 4);

  const std::size_t slots = det_only ? 1 : n + 1;  // x entries + det
  const std::size_t det_slot = det_only ? 0 : n;
  CrtCombiner combiner(slots);

  std::atomic<std::size_t> next_index{0};
  std::atomic<int> bad_primes{0};
  std::atomic<bool> stream_exhausted{false};
  std::mutex diag_mu;

  // Early-termination state: candidates from the previous batch.
  std::vector<std::optional<Rational>> prev_sentinels;
  std::optional<BigInt> prev_det;
  const std::size_t sentinel_count = det_only ? 0 : std::min<std::size_t>(n, 4);

  while (combiner.modulus().bit_length() < needed_bits) {
    // ---- run one batch of shards ---------------------------------------
    const std::size_t b = std::min(
        batch, out.hadamard_cap > out.shards_used
                   ? out.hadamard_cap - out.shards_used
                   : std::size_t{1});
    std::vector<detail::ShardOutcome> good(b);
    auto lane = [&](std::size_t slot) {
      while (bad_primes.load(std::memory_order_relaxed) <=
             opt.max_bad_primes) {
        const std::size_t idx =
            next_index.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t p = stream.at(idx);
        if (p == 0) {
          stream_exhausted.store(true, std::memory_order_relaxed);
          return;
        }
        detail::ShardOutcome sh =
            detail::run_shard(sys, p, idx, out.transcript_seed, opt);
        {
          std::lock_guard<std::mutex> lk(diag_mu);
          out.diags.push_back(sh.diag);
        }
        if (sh.ok) {
          good[slot] = std::move(sh);
          return;
        }
        bad_primes.fetch_add(1, std::memory_order_relaxed);
      }
    };
    if (opt.shard_workers <= 1) {
      pram::parallel_for(0, b, lane);
    } else {
      auto& ctx = pram::ExecutionContext::global();
      const unsigned saved = ctx.worker_limit();
      ctx.set_worker_limit(opt.shard_workers);
      for (std::size_t i = 0; i < b; ++i) lane(i);
      ctx.set_worker_limit(saved);
    }
    ++out.batches;

    if (bad_primes.load() > opt.max_bad_primes) {
      // Every prime looking bad is exactly what a singular input produces;
      // only the generic route can prove or refute that.
      std::sort(out.diags.begin(), out.diags.end(),
                [](const util::Diag& x, const util::Diag& y) {
                  return x.shard_prime_index < y.shard_prime_index;
                });
      run_generic(Status::Ok());
      return out;
    }
    if (stream_exhausted.load()) {
      run_generic(Status::Ok());
      return out;
    }

    // ---- fold the batch (deterministic order: sort by stream index) ----
    std::sort(good.begin(), good.end(),
              [](const detail::ShardOutcome& x, const detail::ShardOutcome& y) {
                return x.index < y.index;
              });
    std::vector<std::uint64_t> batch_primes(b);
    std::vector<std::vector<std::uint64_t>> residues(
        slots, std::vector<std::uint64_t>(b));
    for (std::size_t j = 0; j < b; ++j) {
      batch_primes[j] = good[j].prime;
      if (!det_only) {
        for (std::size_t s = 0; s < n; ++s) residues[s][j] = good[j].x[s];
      }
      residues[det_slot][j] = good[j].det;
      out.primes.push_back(good[j].prime);
      if (opt.keep_residues) {
        CrtShardResidue r;
        r.prime = good[j].prime;
        r.prime_index = static_cast<std::int64_t>(good[j].index);
        r.x = std::move(good[j].x);
        r.det = good[j].det;
        out.residues.push_back(std::move(r));
      }
    }
    combiner.fold_batch(batch_primes, residues);
    out.shards_used += b;

    // ---- early termination ---------------------------------------------
    const bool last_batch = combiner.modulus().bit_length() >= needed_bits;
    if (!opt.early_termination && !last_batch) continue;
    const RatBounds bounds = balanced_bounds(combiner.modulus());
    const BigInt det_now =
        symmetric_residue(combiner.value(det_slot), combiner.modulus());

    bool stable = true;
    std::vector<std::optional<Rational>> sentinels(sentinel_count);
    for (std::size_t s = 0; s < sentinel_count; ++s) {
      sentinels[s] = rational_reconstruct(combiner.value(s),
                                          combiner.modulus(), bounds.num,
                                          bounds.den);
      stable = stable && sentinels[s].has_value() &&
               !prev_sentinels.empty() && prev_sentinels[s].has_value() &&
               *sentinels[s] == *prev_sentinels[s];
    }
    if (det_only) {
      stable = prev_det.has_value() && *prev_det == det_now;
    }
    prev_sentinels = std::move(sentinels);
    prev_det = det_now;

    if ((stable || last_batch) && !KP_FAULT_POINT(Stage::kRationalReconstruction)) {
      // Full reconstruction + exact verification: the Las Vegas gate.
      bool complete = true;
      std::vector<Rational> x(det_only ? 0 : n);
      if (!det_only) {
        std::vector<char> entry_ok(n, 0);
        pram::parallel_for(0, n, [&](std::size_t s) {
          auto r = rational_reconstruct(combiner.value(s), combiner.modulus(),
                                        bounds.num, bounds.den);
          if (r.has_value()) {
            x[s] = std::move(*r);
            entry_ok[s] = 1;
          }
        });
        complete = std::all_of(entry_ok.begin(), entry_ok.end(),
                               [](char c) { return c != 0; });
      }
      if (complete && (det_only || detail::verify_candidate(sys, x))) {
        out.ok = true;
        out.early_terminated = !last_batch;
        out.x = std::move(x);
        // det(A) = det(A_z) / row_scale, exact over Q; certified once the
        // modulus passed the Hadamard det bound.
        out.det = Rational(det_now, sys.row_scale);
        out.det_certified = combiner.modulus().bit_length() >= det_bits;
        break;
      }
      if (last_batch) {
        // The bound guarantees reconstruction succeeds and verifies for any
        // nonsingular input; reaching here means det(A) = 0 slipped through
        // every shard (impossible for good primes) or a logic error.
        util::Diag d;
        d.kind = FailureKind::kVerifyMismatch;
        d.stage = Stage::kRationalReconstruction;
        out.diags.push_back(d);
        run_generic(Status::Ok());
        return out;
      }
    } else if (stable || last_batch) {
      // Injected kRationalReconstruction fault: delay acceptance one batch.
      util::Diag d;
      d.kind = FailureKind::kInjectedFault;
      d.stage = Stage::kRationalReconstruction;
      d.injected = true;
      out.diags.push_back(d);
      if (last_batch) {
        run_generic(Status::Ok());
        return out;
      }
    }
  }

  std::sort(out.diags.begin(), out.diags.end(),
            [](const util::Diag& x, const util::Diag& y) {
              return x.shard_prime_index < y.shard_prime_index;
            });
  if (out.ok) out.status = Status::Ok();
  return out;
}

/// Sharded solve with a right-hand side.
inline CrtSolveResult crt_solve(const field::RationalField& f,
                                const matrix::Matrix<field::RationalField>& a,
                                const std::vector<field::Rational>& b,
                                util::Prng& prng, CrtOptions opt = {}) {
  return crt_solve(f, a, &b, prng, std::move(opt));
}

/// Sharded determinant.
inline CrtSolveResult crt_det(const field::RationalField& f,
                              const matrix::Matrix<field::RationalField>& a,
                              util::Prng& prng, CrtOptions opt = {}) {
  return crt_solve(f, a, nullptr, prng, std::move(opt));
}

/// The adaptive entry point for Q: Rational/BigInt inputs auto-route through
/// the sharded engine (the whole optimized word-size stack), falling back to
/// the generic multi-precision route when the Hadamard cap says sharding
/// cannot pay off -- the Q-side sibling of the GF(p) kp_solve_adaptive in
/// core/field_lift.h.
inline CrtSolveResult kp_solve_adaptive(
    const field::RationalField& f,
    const matrix::Matrix<field::RationalField>& a,
    const std::vector<field::Rational>& b, util::Prng& prng,
    CrtOptions opt = {}) {
  return crt_solve(f, a, &b, prng, std::move(opt));
}

}  // namespace kp::core

// Solving over small fields through an algebraic extension (section 2).
//
// The failure bound 3n^2/card(S) is useless when the field itself is
// smaller than 3n^2: "For Galois fields K with card(K) < 3n^2, the
// algorithm is performed in an algebraic extension L over K, so that the
// failure probability can be bounded away from 0."
//
// This adapter lifts the system entry-wise into GF(p^k) (the prime subfield
// embeds as the constant polynomials), runs the Theorem-4 pipeline there
// with the full extension as the sample set, and projects the solution
// back.  The solution of a non-singular system is unique, so its lifted
// coordinates are guaranteed to be constants.
#pragma once

#include <cmath>
#include <optional>
#include <vector>

#include "core/solver.h"
#include "field/gfpk.h"
#include "field/zp.h"
#include "matrix/dense.h"
#include "util/fault.h"
#include "util/status.h"

namespace kp::core {

/// Smallest extension degree k with p^k >= target, verified: the extension
/// must both fit the 64-bit word the GFpk representation uses AND actually
/// reach the target, else the est.-(2) bound cannot be restored and the
/// caller gets kSampleSetTooSmall instead of a silently weaker run.
inline kp::util::StatusOr<unsigned> lift_degree_status(std::uint64_t p,
                                                       std::uint64_t target) {
  using kp::util::FailureKind;
  using kp::util::Stage;
  using kp::util::Status;
  if (p < 2) {
    return Status::Fail(FailureKind::kInvalidArgument, Stage::kLift,
                        "modulus must be >= 2");
  }
  unsigned k = 1;
  unsigned __int128 card = p;
  constexpr std::uint64_t word_max = ~std::uint64_t{0};
  while (card < target) {
    if (card > word_max / p) {
      return Status::Fail(
          FailureKind::kSampleSetTooSmall, Stage::kLift,
          "p^k exceeds the 64-bit word before reaching the target");
    }
    card *= p;
    ++k;
  }
  return k;
}

/// Legacy form: smallest k with p^k >= target, capped so p^k fits a 64-bit
/// word -- WITHOUT reporting whether the target was actually reached.  New
/// callers should use lift_degree_status.
inline unsigned lift_degree(std::uint64_t p, std::uint64_t target) {
  unsigned k = 1;
  unsigned __int128 card = p;
  while (card < target && k < 63) {
    card *= p;
    ++k;
  }
  return k;
}

/// Result of a lifted solve.
template <class F>
struct LiftedSolveResult {
  bool ok = false;
  std::vector<typename F::Element> x;
  typename F::Element det{};
  unsigned extension_degree = 0;  ///< the k of the GF(p^k) the run used
  int attempts = 0;               ///< attempts of the lifted pipeline run
  util::Status status;            ///< Ok, or why the lift failed
};

/// Solves A x = b over GF(p) with small p by running the Theorem-4 pipeline
/// in GF(p^k), k chosen so that p^k >= failure_margin * 3 n^2.  Las Vegas:
/// the projected solution is verified over the base field.
/// Precondition on the CHARACTERISTIC still applies (p > n): the lift buys
/// randomness, not divisibility -- use the Chistov route for p <= n.
inline LiftedSolveResult<kp::field::GFp> kp_solve_small_field(
    const kp::field::GFp& f, const matrix::Matrix<kp::field::GFp>& a,
    const std::vector<kp::field::GFp::Element>& b, kp::util::Prng& prng,
    std::uint64_t failure_margin = 64) {
  using kp::util::FailureKind;
  using kp::util::Stage;
  using kp::util::Status;
  const std::size_t n = a.rows();
  LiftedSolveResult<kp::field::GFp> out;
  out.status = util::Require(
      a.is_square() && b.size() == n && n > 0, FailureKind::kInvalidArgument,
      Stage::kLift, "A must be square and match b");
  if (!out.status.ok()) return out;
  const std::uint64_t p = f.modulus();

  // Target sample-set size 3 n^2 * margin, as estimate (2) requires.
  if (KP_FAULT_POINT(Stage::kLift)) {
    out.status = Status::Injected(FailureKind::kSampleSetTooSmall, Stage::kLift);
    return out;
  }
  auto deg = lift_degree_status(p, 3 * n * n * failure_margin);
  if (!deg.ok()) {
    out.status = deg.status();
    return out;
  }
  const unsigned k = deg.value();
  out.extension_degree = k;
  kp::field::GFpk lift(p, k);

  // Entry-wise embedding: base-field scalars are the constant polynomials.
  matrix::Matrix<kp::field::GFpk> al(n, n, lift.zero());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      al.at(i, j) = lift.from_int(static_cast<std::int64_t>(a.at(i, j)));
    }
  }
  std::vector<kp::field::GFpk::Element> bl(n);
  for (std::size_t i = 0; i < n; ++i) {
    bl[i] = lift.from_int(static_cast<std::int64_t>(b[i]));
  }

  SolverOptions opt;
  opt.sample_size = ~std::uint64_t{0};  // the whole extension is the sample set
  // Leverrier divides by 2..n: the CHARACTERISTIC is still p, so the
  // lifted pipeline needs p > n just like the base one would; the lift
  // buys randomness, not divisibility (use the Chistov route otherwise).
  if (!kp::field::supports_leverrier(lift, n)) {
    out.status = Status::Fail(FailureKind::kInvalidArgument, Stage::kLift,
                              "characteristic <= n: use the Chistov route");
    return out;
  }
  auto res = kp_solve(lift, al, bl, prng, opt);
  out.attempts = res.attempts;
  if (!res.ok) {
    out.status = res.status;
    return out;
  }

  // Project back: every coordinate must be a constant polynomial.
  out.x.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 1; c < k; ++c) {
      if (res.x[i][c] != 0) {  // cannot happen for consistent runs
        out.status = Status::Fail(FailureKind::kVerifyMismatch, Stage::kLift,
                                  "projected coordinate is not constant");
        return out;
      }
    }
    out.x[i] = res.x[i][0];
  }
  for (std::size_t c = 1; c < k; ++c) {
    if (res.det[c] != 0) {
      out.status = Status::Fail(FailureKind::kVerifyMismatch, Stage::kLift,
                                "projected determinant is not constant");
      return out;
    }
  }
  out.det = res.det[0];

  // Las Vegas verification over the base field.
  if (matrix::mat_vec(f, a, out.x) != b) {
    out.status =
        Status::Fail(FailureKind::kVerifyMismatch, Stage::kVerify, "A x != b");
    return out;
  }
  out.ok = true;
  out.status = Status::Ok();
  return out;
}

/// The adaptive entry point: run the Theorem-4 pipeline directly when GF(p)
/// already carries the est.-(2) bound (card(K) >= 3 n^2), and auto-route
/// through the section-5 extension lift when it does not -- the recovery the
/// kSampleSetTooSmall verdict asks for, performed up front.
inline LiftedSolveResult<kp::field::GFp> kp_solve_adaptive(
    const kp::field::GFp& f, const matrix::Matrix<kp::field::GFp>& a,
    const std::vector<kp::field::GFp::Element>& b, kp::util::Prng& prng,
    SolverOptions opt = {}, std::uint64_t failure_margin = 64) {
  const std::size_t n = a.rows();
  if (n > 0 && f.modulus() >= 3 * static_cast<std::uint64_t>(n) * n) {
    auto res = kp_solve(f, a, b, prng, opt);
    LiftedSolveResult<kp::field::GFp> out;
    out.ok = res.ok;
    out.x = std::move(res.x);
    out.det = res.det;
    out.extension_degree = 1;  // no lift needed
    out.attempts = res.attempts;
    out.status = res.status;
    return out;
  }
  return kp_solve_small_field(f, a, b, prng, failure_margin);
}

}  // namespace kp::core

// SolverService: the long-running, many-clients front of the Theorem-4
// pipeline -- ROADMAP open item 2, hardened.
//
// Lifecycle: a client registers an operator once (register_operator builds
// and prepares a Session, core/session.h, pinning the preconditioner, the
// cached Hankel spectra, and the charpoly transcript), then streams
// right-hand sides with submit().  The service coalesces queued requests of
// the same session into one batch -- the Cayley-Hamilton finish then runs
// all of them through the operator's apply_many path together -- and
// completes each request's future with the solution plus structured
// RequestTelemetry built from the pipeline's Diag records.
//
// Hardening, edge by edge:
//
//   * Admission: a BOUNDED queue.  At capacity, submit() completes the
//     request immediately with FailureKind::kQueueOverflow -- backpressure,
//     never unbounded growth.  Requests whose deadline expired or whose
//     cancel flag tripped while queued are shed at dispatch time without
//     touching the pool.
//   * Deadlines/cancellation: each request carries a util/deadline.h token;
//     the batch runs under the earliest member deadline and every member's
//     own token is honored at stage boundaries (kDeadlineExceeded /
//     kCancelled at the stage that noticed).
//   * Quarantine: sessions count consecutive verify mismatches; past the
//     threshold the circuit breaker opens and requests fail fast with
//     kSessionQuarantined (the quarantine Diag attached) instead of burning
//     pool time.  reset_session() closes the breaker.
//   * Graceful degradation: a failed batched attempt retries each member
//     solo (kSingleRhs), and a failed solo attempt settles on the
//     deterministic dense baseline (kDenseBaseline) -- never a wrong
//     answer, and the level is recorded per request.  Control failures and
//     open breakers never degrade: the caller stopped wanting the answer.
//   * Shutdown: stops dispatchers, then completes everything still queued
//     with kShutdown.  Safe to call twice; the destructor calls it.
//
// Every one of these paths has a deterministic fault-injection site
// (Stage::kServiceAdmission / kServiceBatch / kServiceExecute plus the
// existing pipeline stages), so the full failure matrix is testable without
// races or timing assumptions.  With dispatchers = 0 the service runs no
// threads of its own and run_once() drains one batch inline -- the
// deterministic mode the fault-matrix tests drive.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/session.h"
#include "matrix/blackbox.h"
#include "util/deadline.h"
#include "util/fault.h"
#include "util/status.h"

namespace kp::core {

/// Service-level tuning knobs.
struct ServiceConfig {
  /// Admission-queue capacity; submissions past it are shed immediately
  /// with kQueueOverflow (backpressure contract: the queue never grows
  /// beyond this).
  std::size_t queue_capacity = 64;
  /// Most requests coalesced into one session batch.
  std::size_t max_batch = 8;
  /// Dispatcher threads owned by the service.  0 = no threads: the caller
  /// drains the queue with run_once() -- the deterministic test mode.
  unsigned dispatchers = 1;
  /// Deadline applied to requests submitted without one (zero = none).
  std::chrono::nanoseconds default_deadline{0};
  /// Knobs for sessions the service creates.
  SessionOptions session;
};

/// Structured per-request telemetry, built from the pipeline's Diag records.
struct RequestTelemetry {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  util::FailureKind kind = util::FailureKind::kNone;  ///< final status kind
  util::Stage stage = util::Stage::kNone;             ///< final status stage
  bool injected = false;
  DegradationLevel level = DegradationLevel::kBatched;
  std::size_t batch_size = 0;  ///< coalesced batch this request rode in
  int attempts = 0;            ///< execution attempts (batched/solo/dense)
  std::int64_t queue_wait_ns = 0;
  std::int64_t exec_ns = 0;
  std::vector<util::Diag> diags;  ///< transcript/retry records of the batch

  std::string to_json() const {
    std::string j = "{";
    auto num = [&j](const char* key, std::int64_t v) {
      if (j.size() > 1) j += ",";
      j += "\"";
      j += key;
      j += "\":";
      j += std::to_string(v);
    };
    auto str = [&j](const char* key, const char* v) {
      if (j.size() > 1) j += ",";
      j += "\"";
      j += key;
      j += "\":\"";
      j += v;
      j += "\"";
    };
    num("request_id", static_cast<std::int64_t>(request_id));
    num("session_id", static_cast<std::int64_t>(session_id));
    str("kind", util::to_string(kind));
    str("stage", util::to_string(stage));
    str("injected", injected ? "true" : "false");
    str("level", to_string(level));
    num("batch_size", static_cast<std::int64_t>(batch_size));
    num("attempts", attempts);
    num("queue_wait_ns", queue_wait_ns);
    num("exec_ns", exec_ns);
    j += ",\"diags\":[";
    for (std::size_t i = 0; i < diags.size(); ++i) {
      if (i) j += ",";
      j += util::to_json(diags[i]);
    }
    j += "]}";
    return j;
  }
};

/// What a completed request's future resolves to.
template <kp::field::Field F>
struct RequestResult {
  util::Status status;
  std::vector<typename F::Element> x;  ///< verified solution when status.ok()
  RequestTelemetry telemetry;
};

/// Monotonic counters describing the service's life so far.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected_overflow = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t failed = 0;  ///< all non-ok completions except overflow
  std::uint64_t deadline_expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t quarantine_rejections = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced_requests = 0;  ///< requests served in size>1 batches
  std::uint64_t degraded_single = 0;
  std::uint64_t degraded_dense = 0;
};

/// The long-running solver front end.  Thread-safe: any thread may register
/// sessions and submit requests; cfg.dispatchers internal threads (or the
/// caller, via run_once) execute them.  Sessions themselves are
/// single-owner objects -- the service serializes execution per session
/// (a busy session's requests wait; other sessions' requests proceed).
template <kp::field::Field F>
class SolverService {
 public:
  using E = typename F::Element;
  using Result = RequestResult<F>;

  explicit SolverService(const F& f, ServiceConfig cfg = {})
      : f_(f), cfg_(cfg) {
    for (unsigned i = 0; i < cfg_.dispatchers; ++i) {
      dispatchers_.emplace_back([this] { dispatcher_loop(); });
    }
  }

  ~SolverService() { shutdown(); }

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Registers an operator and eagerly prepares its session (the expensive
  /// O(n^2)-ish charpoly phase happens HERE, once; every subsequent solve
  /// pays matrix-apply cost).  Returns the session id, or the prepare
  /// failure.
  util::StatusOr<std::uint64_t> register_operator(matrix::AnyBox<F> a,
                                                  std::uint64_t seed) {
    auto sess = std::make_unique<Session<F>>(f_, std::move(a), seed,
                                             cfg_.session);
    const util::Status st = sess->prepare();
    if (!st.ok()) return st;
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      return util::Status::Fail(util::FailureKind::kShutdown,
                                util::Stage::kServiceAdmission,
                                "service shut down");
    }
    const std::uint64_t id = next_session_id_++;
    sessions_.emplace(id, std::move(sess));
    return id;
  }

  /// Direct access to a session (tests, quarantine inspection).  The
  /// pointer stays valid for the service's lifetime; do NOT call solve
  /// methods on it while dispatchers run -- the service owns execution.
  Session<F>* session(std::uint64_t id) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
  }

  /// Closes a session's circuit breaker (fresh transcript on next use).
  bool reset_session(std::uint64_t id) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    it->second->reset_quarantine();
    return true;
  }

  /// Submits one right-hand side.  Never blocks on solver work: the future
  /// completes when a dispatcher (or run_once) served the request, or
  /// immediately on admission failure (overflow, unknown session,
  /// shutdown, pre-expired deadline).
  std::future<Result> submit(std::uint64_t session_id, std::vector<E> b,
                             util::Deadline deadline = {},
                             util::CancelFlag cancel = {}) {
    Request req;
    req.id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    req.session_id = session_id;
    req.b = std::move(b);
    if (!deadline.has_deadline() && cfg_.default_deadline.count() > 0) {
      deadline = util::Deadline::after(cfg_.default_deadline);
    }
    req.control = util::ExecControl(deadline, std::move(cancel));
    req.enqueued = std::chrono::steady_clock::now();
    std::future<Result> fut = req.promise.get_future();
    submitted_.fetch_add(1, std::memory_order_relaxed);

    if (KP_FAULT_POINT(util::Stage::kServiceAdmission)) {
      complete(req,
               util::Status::Injected(util::FailureKind::kQueueOverflow,
                                      util::Stage::kServiceAdmission),
               {}, DegradationLevel::kBatched, 0, 0, {});
      return fut;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) {
        complete(req,
                 util::Status::Fail(util::FailureKind::kShutdown,
                                    util::Stage::kServiceAdmission,
                                    "service shut down"),
                 {}, DegradationLevel::kBatched, 0, 0, {});
        return fut;
      }
      if (sessions_.find(session_id) == sessions_.end()) {
        complete(req,
                 util::Status::Fail(util::FailureKind::kInvalidArgument,
                                    util::Stage::kServiceAdmission,
                                    "unknown session"),
                 {}, DegradationLevel::kBatched, 0, 0, {});
        return fut;
      }
      if (queue_.size() >= cfg_.queue_capacity) {
        complete(req,
                 util::Status::Fail(util::FailureKind::kQueueOverflow,
                                    util::Stage::kServiceAdmission,
                                    "admission queue full"),
                 {}, DegradationLevel::kBatched, 0, 0, {});
        return fut;
      }
      queue_.push_back(std::move(req));
      cv_.notify_one();
    }
    return fut;
  }

  /// Convenience blocking solve through the queue.
  Result solve(std::uint64_t session_id, std::vector<E> b,
               util::Deadline deadline = {}) {
    auto fut = submit(session_id, std::move(b), deadline);
    if (cfg_.dispatchers == 0) {
      while (fut.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
        if (run_once() == 0) break;
      }
    }
    return fut.get();
  }

  /// Drains ONE coalesced batch inline on the calling thread; returns the
  /// number of requests it completed (0 = queue empty or all sessions
  /// busy).  The deterministic dispatch mode for dispatchers = 0.
  std::size_t run_once() {
    std::vector<Request> batch;
    std::uint64_t sid = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (!take_batch(lk, batch, sid)) return 0;
    }
    return execute_batch(sid, std::move(batch));
  }

  /// Stops dispatchers and fails everything still queued with kShutdown.
  /// Idempotent; also called by the destructor.
  void shutdown() {
    std::vector<std::thread> joining;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
      joining.swap(dispatchers_);
    }
    cv_.notify_all();
    for (auto& th : joining) th.join();
    std::deque<Request> drained;
    {
      std::lock_guard<std::mutex> lk(mu_);
      drained.swap(queue_);
    }
    for (auto& req : drained) {
      complete(req,
               util::Status::Fail(util::FailureKind::kShutdown,
                                  util::Stage::kServiceAdmission,
                                  "service shut down"),
               {}, DegradationLevel::kBatched, 0, 0, {});
    }
  }

  ServiceStats stats() const {
    ServiceStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.rejected_overflow = rejected_overflow_.load(std::memory_order_relaxed);
    s.completed_ok = completed_ok_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.quarantine_rejections =
        quarantine_rejections_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.coalesced_requests =
        coalesced_requests_.load(std::memory_order_relaxed);
    s.degraded_single = degraded_single_.load(std::memory_order_relaxed);
    s.degraded_dense = degraded_dense_.load(std::memory_order_relaxed);
    return s;
  }

  std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
  }

 private:
  struct Request {
    std::uint64_t id = 0;
    std::uint64_t session_id = 0;
    std::vector<E> b;
    util::ExecControl control;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<Result> promise;
  };

  /// Fulfills a request's promise and bumps the matching counters.
  void complete(Request& req, util::Status st, std::vector<E> x,
                DegradationLevel level, std::size_t batch_size, int attempts,
                std::vector<util::Diag> diags, std::int64_t exec_ns = 0) {
    Result r;
    r.telemetry.request_id = req.id;
    r.telemetry.session_id = req.session_id;
    r.telemetry.kind = st.kind();
    r.telemetry.stage = st.stage();
    r.telemetry.injected = st.injected();
    r.telemetry.level = level;
    r.telemetry.batch_size = batch_size;
    r.telemetry.attempts = attempts;
    r.telemetry.exec_ns = exec_ns;
    r.telemetry.diags = std::move(diags);
    const auto now = std::chrono::steady_clock::now();
    r.telemetry.queue_wait_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                             req.enqueued)
            .count() -
        exec_ns;
    if (r.telemetry.queue_wait_ns < 0) r.telemetry.queue_wait_ns = 0;
    switch (st.kind()) {
      case util::FailureKind::kNone:
        completed_ok_.fetch_add(1, std::memory_order_relaxed);
        break;
      case util::FailureKind::kQueueOverflow:
        rejected_overflow_.fetch_add(1, std::memory_order_relaxed);
        break;
      case util::FailureKind::kDeadlineExceeded:
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case util::FailureKind::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case util::FailureKind::kSessionQuarantined:
        quarantine_rejections_.fetch_add(1, std::memory_order_relaxed);
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    switch (level) {
      case DegradationLevel::kSingleRhs:
        degraded_single_.fetch_add(1, std::memory_order_relaxed);
        break;
      case DegradationLevel::kDenseBaseline:
        degraded_dense_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        break;
    }
    r.status = std::move(st);
    r.x = std::move(x);
    req.promise.set_value(std::move(r));
  }

  /// Pops one session's coalesced batch off the queue.  Requires mu_.
  /// Skips (and immediately completes) requests already dead on arrival;
  /// skips sessions another dispatcher is executing.  Returns false when
  /// nothing is runnable.
  bool take_batch(std::unique_lock<std::mutex>&, std::vector<Request>& batch,
                  std::uint64_t& sid_out) {
    // Shed queued requests whose control already tripped -- cheapest
    // possible handling, no pool time.
    for (auto it = queue_.begin(); it != queue_.end();) {
      const util::Status ctl =
          it->control.check(util::Stage::kServiceAdmission);
      if (!ctl.ok()) {
        complete(*it, ctl, {}, DegradationLevel::kBatched, 0, 0, {});
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (busy_sessions_.count(it->session_id) != 0) continue;
      const std::uint64_t sid = it->session_id;
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
      while (it != queue_.end() && batch.size() < cfg_.max_batch) {
        if (it->session_id == sid) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      busy_sessions_.insert(sid);
      sid_out = sid;
      return true;
    }
    return false;
  }

  /// Runs one popped batch to completion (no lock held).  Returns the
  /// number of requests completed.
  std::size_t execute_batch(std::uint64_t sid, std::vector<Request> batch) {
    Session<F>* sess;
    {
      std::lock_guard<std::mutex> lk(mu_);
      sess = sessions_.at(sid).get();
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (batch.size() > 1) {
      coalesced_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
    }
    const auto exec_start = std::chrono::steady_clock::now();

    // Batch control: earliest member deadline; cancellation stays
    // per-member (checked inside the session at the verify boundary and
    // here between degradation levels).
    util::Deadline batch_deadline;
    for (const auto& r : batch) {
      batch_deadline =
          util::Deadline::earlier(batch_deadline, r.control.deadline);
    }
    util::ExecControl batch_control(batch_deadline);
    std::vector<const std::vector<E>*> rhs;
    std::vector<const util::ExecControl*> member_controls;
    rhs.reserve(batch.size());
    member_controls.reserve(batch.size());
    for (const auto& r : batch) {
      rhs.push_back(&r.b);
      member_controls.push_back(&r.control);
    }

    // Level 0: the coalesced batched route.  An injected kServiceBatch
    // fault skips it entirely, forcing the degradation path.
    SessionBatchResult<F> batched;
    bool batched_ran = false;
    if (!KP_FAULT_POINT(util::Stage::kServiceBatch)) {
      batched = sess->solve_many(rhs, &batch_control, &member_controls);
      batched_ran = true;
    } else {
      batched.items.resize(batch.size());
      for (auto& item : batched.items) {
        item.status = util::Status::Injected(util::FailureKind::kInjectedFault,
                                             util::Stage::kServiceBatch);
      }
    }

    const auto finish_one = [&](Request& req, SessionItem<F>&& item,
                                int attempts) {
      const auto exec_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - exec_start)
              .count();
      complete(req, std::move(item.status), std::move(item.x), item.level,
               batch.size(), attempts, batched.diags, exec_ns);
    };

    for (std::size_t k = 0; k < batch.size(); ++k) {
      Request& req = batch[k];
      SessionItem<F> item = std::move(batched.items[k]);
      int attempts = batched_ran ? 1 : 0;
      // Final outcomes that must not degrade: success, open circuit
      // breaker, malformed input -- and control failures, but only when the
      // MEMBER's own token tripped.  The batch ran under the earliest
      // member deadline, so a batch-level kDeadlineExceeded may reflect a
      // different member's deadline; anyone whose own token is still live
      // deserves the solo retry.
      bool final_outcome =
          item.status.ok() ||
          item.status.kind() == util::FailureKind::kSessionQuarantined ||
          item.status.kind() == util::FailureKind::kInvalidArgument;
      if (!final_outcome && util::is_control_failure(item.status.kind())) {
        final_outcome = !control_ok(req.control);
      }
      if (!final_outcome) {
        // Level 1: solo retry.  The injected kServiceExecute fault forces
        // the drop to the dense baseline.
        if (control_ok(req.control) &&
            !KP_FAULT_POINT(util::Stage::kServiceExecute)) {
          item = sess->solve_one(req.b, &req.control);
          ++attempts;
        } else if (!control_ok(req.control)) {
          item.status = req.control.check(util::Stage::kServiceExecute);
          item.x.clear();
        } else {
          item.status = util::Status::Injected(
              util::FailureKind::kInjectedFault, util::Stage::kServiceExecute);
          item.x.clear();
        }
      }
      if (!item.status.ok() && !util::is_control_failure(item.status.kind()) &&
          item.status.kind() != util::FailureKind::kSessionQuarantined &&
          item.status.kind() != util::FailureKind::kInvalidArgument) {
        // Level 2: deterministic dense settle -- exact answer or a proven
        // kSingularInput, no Las Vegas loop left to spin.
        if (control_ok(req.control)) {
          item = sess->solve_dense(req.b);
          ++attempts;
        }
      }
      finish_one(req, std::move(item), attempts);
    }

    {
      std::lock_guard<std::mutex> lk(mu_);
      busy_sessions_.erase(sid);
    }
    cv_.notify_all();
    return batch.size();
  }

  static bool control_ok(const util::ExecControl& ctl) {
    return ctl.check(util::Stage::kServiceExecute).ok();
  }

  void dispatcher_loop() {
    for (;;) {
      std::vector<Request> batch;
      std::uint64_t sid = 0;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
        if (stopping_) return;
        if (!take_batch(lk, batch, sid)) {
          // Everything runnable is held by busy sessions; wait for one to
          // retire (or for new work) instead of spinning.
          cv_.wait_for(lk, std::chrono::milliseconds(1));
          continue;
        }
      }
      execute_batch(sid, std::move(batch));
    }
  }

  F f_;
  ServiceConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  std::map<std::uint64_t, std::unique_ptr<Session<F>>> sessions_;
  std::unordered_set<std::uint64_t> busy_sessions_;
  std::vector<std::thread> dispatchers_;
  bool stopping_ = false;
  std::uint64_t next_session_id_ = 1;

  std::atomic<std::uint64_t> next_request_id_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_overflow_{0};
  std::atomic<std::uint64_t> completed_ok_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> quarantine_rejections_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> coalesced_requests_{0};
  std::atomic<std::uint64_t> degraded_single_{0};
  std::atomic<std::uint64_t> degraded_dense_{0};
};

}  // namespace kp::core

// Theorem-2 preconditioning: A-tilde = A * H * D.
//
// H is a random Hankel matrix and D a random diagonal, both with entries
// drawn uniformly from the sample set S.  Theorem 2 shows all leading
// principal minors of A*H are non-zero with probability >= 1 - n(n-1)/(2|S|),
// and Wiedemann's estimate (1) shows the extra diagonal makes the minimum
// polynomial of A-tilde equal its characteristic polynomial with probability
// >= 1 - n(2n-2)/|S|; together with Lemma 2 this gives the paper's combined
// failure bound 3n^2/|S| (estimate (2)).
//
// det(H) is recovered with the Theorem-3 Toeplitz machinery through the
// row-mirror trick of section 4, so the whole pipeline stays within the
// stated complexity.
#pragma once

#include <cstdint>
#include <vector>

#include "field/concepts.h"
#include "matrix/blackbox.h"
#include "matrix/dense.h"
#include "matrix/structured.h"
#include "poly/poly.h"
#include "seq/newton_toeplitz.h"
#include "util/fault.h"
#include "util/prng.h"

namespace kp::core {

/// The random preconditioner pair (H, D) of Theorem 2.
template <kp::field::Field F>
struct Preconditioner {
  matrix::Hankel<F> hankel;
  matrix::Diagonal<F> diagonal;

  /// Draws H and D with entries from the canonical sample set of size s.
  static Preconditioner draw(const F& f, std::size_t n, kp::util::Prng& prng,
                             std::uint64_t s) {
    return {matrix::Hankel<F>::random(f, n, prng, s),
            matrix::Diagonal<F>::random(f, n, prng, s)};
  }

  /// Dense A * H * D.  A*H is computed row-by-row with Hankel-vector
  /// products (H is symmetric), so forming A-tilde costs O(n^2 polylog n)
  /// on top of the inputs rather than a full O(n^omega) product.  The n row
  /// products share H's cached symbol transform and batch their varying-side
  /// transforms over the pool (Hankel::apply_many).
  matrix::Matrix<F> apply_dense(const F& f, const kp::poly::PolyRing<F>& ring,
                                const matrix::Matrix<F>& a) const {
    const std::size_t n = hankel.dim();
    matrix::Matrix<F> out(n, n, f.zero());
    const auto& d = diagonal.entries();
    // row_i(A*H) = H * row_i(A) by symmetry of H.
    std::vector<std::vector<typename F::Element>> rows(n);
    std::vector<const std::vector<typename F::Element>*> ptrs(n);
    for (std::size_t i = 0; i < n; ++i) {
      rows[i].assign(a.row(i), a.row(i) + n);
      ptrs[i] = &rows[i];
    }
    auto hrows = hankel.apply_many(ring, ptrs);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        out.at(i, j) = f.mul(hrows[i][j], d[j]);
      }
    }
    return out;
  }

  /// Lazy A-tilde = A * H * D over any black-box operator: each product is
  /// one product with A plus O(M(n)); the dense n x n A-tilde is never
  /// formed.  The returned box views `a` (and this preconditioner's H, D by
  /// value), so `a` must outlive it.
  template <matrix::LinOp B>
  matrix::PreconditionedBox<F, B> box(const F& f,
                                      const kp::poly::PolyRing<F>& ring,
                                      const B& a) const {
    return matrix::PreconditionedBox<F, B>(f, ring, a, hankel, diagonal);
  }

  /// x = H * (D * y): maps a solution of A-tilde x-tilde = b back to the
  /// solution of A x = b.
  std::vector<typename F::Element> unprecondition(
      const F& f, const kp::poly::PolyRing<F>& ring,
      const std::vector<typename F::Element>& y) const {
    return hankel.apply(ring, diagonal.apply(f, y));
  }

  /// det(H * D).  det(H) goes through the Toeplitz row-mirror and Theorem 3;
  /// det(D) is a product of the diagonal entries.
  typename F::Element det(const F& f,
                          seq::NewtonIdentityMethod method =
                              seq::NewtonIdentityMethod::kTriangularSolve) const {
    // Fault site: a zero return exercises the caller's det(H D) = 0 branch,
    // which cannot trigger organically once g(0) != 0 is established.
    if (KP_FAULT_POINT(util::Stage::kPrecondition)) return f.zero();
    const auto t = hankel.row_mirror_toeplitz();
    auto det_t = seq::toeplitz_det(f, t, method);
    if (hankel.mirror_det_sign() < 0) det_t = f.neg(det_t);
    return f.mul(det_t, diagonal.det(f));
  }
};

}  // namespace kp::core

// Section-5 extensions: rank, singular systems, nullspace bases, and
// least-squares solutions.
//
// All of them follow the paper's recipes:
//   * rank        -- precondition so that exactly the first r leading
//                    principal minors are non-zero, then binary-search the
//                    largest non-singular leading principal submatrix.
//   * nullspace   -- for random non-singular U, V the product UAV has its
//                    r x r leading principal submatrix non-singular; the
//                    kernel is spanned by V * (-Ahat_r^{-1} B ; I_{n-r}).
//   * singular solve -- one vector of the solution manifold through the
//                    same leading-block factorization.
//   * least squares -- x = (A^T A)^{-1} A^T b for full-column-rank A over a
//                    field of characteristic zero (Pan 1990a).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/solver.h"
#include "field/concepts.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "matrix/matmul.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp::core {

/// Monte Carlo rank: for random U, V with entries from S, rank(A) equals,
/// with probability >= 1 - O(n^2)/|S|, the largest r such that the r-th
/// leading principal minor of U A V is non-zero -- located by binary search
/// over log n determinant evaluations (cf. Borodin et al. 1982).
template <kp::field::Field F>
std::size_t rank_randomized(const F& f, const matrix::Matrix<F>& a,
                            kp::util::Prng& prng, std::uint64_t s) {
  const std::size_t n = a.rows();
  const std::size_t m = a.cols();
  const auto u = matrix::sample_matrix(f, n, n, prng, s);
  const auto v = matrix::sample_matrix(f, m, m, prng, s);
  const auto uav = matrix::mat_mul(f, matrix::mat_mul(f, u, a), v);

  const std::size_t rmax = std::min(n, m);
  // Binary search the largest r with det(leading r) != 0; valid because the
  // preconditioning makes minors 1..rank nonzero and minors > rank are
  // always zero.
  std::size_t lo = 0, hi = rmax;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    const auto minor = matrix::leading_principal(f, uav, mid);
    if (!f.is_zero(matrix::det_gauss(f, minor))) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

/// Result of the randomized kernel computation.
template <kp::field::Field F>
struct NullspaceResult {
  bool ok = false;
  std::size_t rank = 0;
  matrix::Matrix<F> basis;  ///< n x (n - rank); columns span ker(A)
  util::Status status;      ///< Ok, or why the computation was rejected
};

/// Basis of the right nullspace by the section-5 construction.  Las Vegas:
/// the basis is verified (A N = 0 and N has full column rank) and the draw
/// is retried on bad randomness.
template <kp::field::Field F>
NullspaceResult<F> nullspace_randomized(const F& f, const matrix::Matrix<F>& a,
                                        kp::util::Prng& prng, std::uint64_t s,
                                        int max_attempts = 3) {
  const std::size_t n = a.rows();
  NullspaceResult<F> res;
  res.status = util::Require(a.is_square(), util::FailureKind::kInvalidArgument,
                             util::Stage::kNone,
                             "section-5 construction stated for square A");
  if (!res.status.ok()) return res;
  res.status = util::Status::Fail(util::FailureKind::kVerifyMismatch,
                                  util::Stage::kVerify,
                                  "all attempts failed verification");

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const auto u = matrix::sample_matrix(f, n, n, prng, s);
    const auto v = matrix::sample_matrix(f, n, n, prng, s);
    if (f.is_zero(matrix::det_gauss(f, u)) || f.is_zero(matrix::det_gauss(f, v))) {
      continue;
    }
    const auto ahat = matrix::mat_mul(f, matrix::mat_mul(f, u, a), v);

    // Find r = largest non-singular leading block (== rank w.h.p.).
    std::size_t r = 0;
    for (std::size_t k = n; k >= 1; --k) {
      if (!f.is_zero(matrix::det_gauss(f, matrix::leading_principal(f, ahat, k)))) {
        r = k;
        break;
      }
    }
    if (r == n) {  // full rank: empty kernel
      res.ok = true;
      res.rank = n;
      res.basis = matrix::Matrix<F>(n, 0, f.zero());
      res.status = util::Status::Ok();
      return res;
    }

    // Solve Ahat_r X = B for B the top-right r x (n-r) block, then
    // W = (-X ; I_{n-r}) spans ker(Ahat); ker(A) = V W.
    const auto ar = matrix::leading_principal(f, ahat, r);
    matrix::Matrix<F> w(n, n - r, f.zero());
    bool bad = false;
    for (std::size_t col = 0; col < n - r && !bad; ++col) {
      std::vector<typename F::Element> b(r, f.zero());
      for (std::size_t i = 0; i < r; ++i) b[i] = ahat.at(i, r + col);
      auto x = matrix::solve_gauss(f, ar, b);
      if (!x) {
        bad = true;
        break;
      }
      for (std::size_t i = 0; i < r; ++i) w.at(i, col) = f.neg((*x)[i]);
      w.at(r + col, col) = f.one();
    }
    if (bad) continue;
    auto basis = matrix::mat_mul(f, v, w);

    // Las Vegas verification: A * basis = 0 and full column rank.
    const auto prod = matrix::mat_mul(f, a, basis);
    if (!matrix::mat_eq(f, prod, matrix::zero_matrix(f, n, n - r))) continue;
    if (matrix::rank_gauss(f, basis) != n - r) continue;

    res.ok = true;
    res.rank = r;
    res.basis = std::move(basis);
    res.status = util::Status::Ok();
    return res;
  }
  return res;
}

/// One solution of a (possibly singular) consistent square system A x = b,
/// via the same leading-block factorization; nullopt when the system is
/// detected to be inconsistent or the randomness is unlucky.
template <kp::field::Field F>
std::optional<std::vector<typename F::Element>> singular_solve_randomized(
    const F& f, const matrix::Matrix<F>& a,
    const std::vector<typename F::Element>& b, kp::util::Prng& prng,
    std::uint64_t s, int max_attempts = 3) {
  const std::size_t n = a.rows();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const auto u = matrix::sample_matrix(f, n, n, prng, s);
    const auto v = matrix::sample_matrix(f, n, n, prng, s);
    const auto ahat = matrix::mat_mul(f, matrix::mat_mul(f, u, a), v);
    const auto ub = matrix::mat_vec(f, u, b);

    std::size_t r = 0;
    for (std::size_t k = n; k >= 1; --k) {
      if (!f.is_zero(matrix::det_gauss(f, matrix::leading_principal(f, ahat, k)))) {
        r = k;
        break;
      }
    }
    // Solve the leading block against the first r entries of U b, pad with
    // zeros, map back through V.
    std::vector<typename F::Element> y(n, f.zero());
    if (r > 0) {
      const auto ar = matrix::leading_principal(f, ahat, r);
      std::vector<typename F::Element> rhs(ub.begin(),
                                           ub.begin() + static_cast<std::ptrdiff_t>(r));
      auto top = matrix::solve_gauss(f, ar, rhs);
      if (!top) continue;
      for (std::size_t i = 0; i < r; ++i) y[i] = (*top)[i];
    }
    auto x = matrix::mat_vec(f, v, y);
    if (matrix::mat_vec(f, a, x) == b) return x;  // Las Vegas verification
    // Either unlucky randomness or the system is inconsistent; retry.
  }
  return std::nullopt;
}

/// Least-squares solution over a characteristic-zero field (Pan 1990a):
/// for full-column-rank A (m x n, m >= n), x = (A^T A)^{-1} A^T b minimizes
/// ||A x - b||^2 formally.  nullopt when A^T A is singular (rank-deficient).
template <kp::field::Field F>
std::optional<std::vector<typename F::Element>> least_squares(
    const F& f, const matrix::Matrix<F>& a,
    const std::vector<typename F::Element>& b) {
  // Meaningful only over characteristic zero; reject instead of asserting.
  if (f.characteristic() != 0 || a.rows() != b.size()) return std::nullopt;
  const auto atr = matrix::mat_transpose(f, a);
  const auto normal = matrix::mat_mul(f, atr, a);
  const auto rhs = matrix::mat_vec(f, atr, b);
  return matrix::solve_gauss(f, normal, rhs);
}

/// The processor-efficient least squares the paper's last sentence promises:
/// "the techniques of Pan (1990a) combined with the processor efficient
/// algorithms for linear system solving presented here" -- the normal
/// equations solved by the Theorem-4 pipeline.  Requires full column rank.
template <kp::field::Field F>
std::optional<std::vector<typename F::Element>> least_squares_randomized(
    const F& f, const matrix::Matrix<F>& a,
    const std::vector<typename F::Element>& b, kp::util::Prng& prng) {
  // Meaningful only over characteristic zero; reject instead of asserting.
  if (f.characteristic() != 0 || a.rows() != b.size()) return std::nullopt;
  const auto atr = matrix::mat_transpose(f, a);
  const auto normal = matrix::mat_mul(f, atr, a);
  const auto rhs = matrix::mat_vec(f, atr, b);
  auto res = kp_solve(f, normal, rhs, prng);
  if (!res.ok) return std::nullopt;
  return std::move(res.x);
}

}  // namespace kp::core

// CRT recombination and rational reconstruction for multi-prime sharding.
//
// The CRT sharding engine (core/crt_shard.h) solves one integer system
// modulo many independent word-size NTT primes; this header turns the
// per-prime residues back into exact answers over Q:
//
//   * CrtCombiner -- incremental Garner CRT over batches of primes.  Within
//     a batch the residues are merged by a product tree, so every internal
//     node's modular inverse is computed ONCE and reused for all n + 1
//     tracked slots (the n solution entries plus the determinant); across
//     batches a single Garner fold extends the running accumulator.
//   * rational_reconstruct -- Wang's algorithm: the half-extended Euclid run
//     on (M, x) stopped at the first remainder <= N yields the unique
//     n/d = x (mod M) with |n| <= N, 0 < d <= D whenever 2 N D < M.  Plain
//     iterative Euclid (no half-GCD): reconstruction is a vanishing
//     fraction of total work next to the shard solves, and the simple loop
//     is what the early-termination proof sketch in DESIGN.md section 13
//     reasons about.
//   * Hadamard-style bit bounds -- a priori caps on how many primes a solve
//     can possibly need, which is both the fallback cap on K and the
//     certification threshold for the determinant.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "field/bigint.h"
#include "field/rational.h"

namespace kp::core {

/// a^{-1} mod m for m >= 2, in [0, m); nullopt when gcd(a, m) != 1.
inline std::optional<field::BigInt> bigint_invmod(const field::BigInt& a,
                                                  const field::BigInt& m) {
  using field::BigInt;
  BigInt r0 = m, r1 = a % m;
  if (r1.is_negative()) r1 += m;
  BigInt t0(0), t1(1);
  while (!r1.is_zero()) {
    const BigInt q = r0 / r1;
    BigInt r2 = r0 - q * r1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    BigInt t2 = t0 - q * t1;
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (r0 != BigInt(1)) return std::nullopt;
  if (t0.is_negative()) t0 += m;
  return t0;
}

/// The representative of x mod m in (-m/2, m/2] -- how a signed integer
/// (e.g. a determinant) is read off a CRT accumulator once the modulus
/// exceeds twice its magnitude.
inline field::BigInt symmetric_residue(const field::BigInt& x,
                                       const field::BigInt& m) {
  field::BigInt r = x % m;
  if (r.is_negative()) r += m;
  if (r + r > m) r -= m;
  return r;
}

/// Wang rational reconstruction: the unique n/d with n/d = x (mod m),
/// |n| <= num_bound, 0 < d <= den_bound, gcd(n, d) = 1 -- or nullopt when no
/// fraction within the bounds matches.  Uniqueness needs
/// 2 * num_bound * den_bound < m (balanced_bounds below guarantees it);
/// under early termination the caller additionally verifies the candidate
/// against the original system, so a premature (wrong) candidate can never
/// escape.
inline std::optional<field::Rational> rational_reconstruct(
    const field::BigInt& x, const field::BigInt& m,
    const field::BigInt& num_bound, const field::BigInt& den_bound) {
  using field::BigInt;
  BigInt r0 = m, r1 = x % m;
  if (r1.is_negative()) r1 += m;
  BigInt t0(0), t1(1);
  // Invariant: t_i * x = r_i (mod m), with |t_i| growing as r_i shrinks.
  // Stopping at the FIRST r_i <= num_bound is exactly Wang's criterion.
  while (r1 > num_bound) {
    const BigInt q = r0 / r1;
    BigInt r2 = r0 - q * r1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    BigInt t2 = t0 - q * t1;
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  BigInt n = std::move(r1), d = std::move(t1);
  if (d.is_zero()) return std::nullopt;
  if (d.is_negative()) {
    n = -n;
    d = -d;
  }
  if (d > den_bound) return std::nullopt;
  if (BigInt::gcd(n, d) != BigInt(1)) return std::nullopt;
  return field::Rational(std::move(n), std::move(d));
}

/// Balanced Wang bounds for a modulus M: N = D = 2^((bits(M) - 2) / 2), so
/// 2 N D <= 2^(bits(M) - 1) <= M.  Bit-shift only -- no BigInt square root.
struct RatBounds {
  field::BigInt num;
  field::BigInt den;
};

inline RatBounds balanced_bounds(const field::BigInt& modulus) {
  const std::size_t bits = modulus.bit_length();
  const std::size_t k = bits >= 2 ? (bits - 2) / 2 : 0;
  field::BigInt bound = field::BigInt(1).shl(k);
  return {bound, bound};
}

/// Bit length of the Hadamard bound |det A| <= n^(n/2) * 2^(n * entry_bits)
/// for an n x n integer matrix whose entries have magnitude < 2^entry_bits.
/// Slight over-estimate (uses ceil(log2 n)); used to cap the shard count and
/// to certify the reconstructed determinant.
inline std::size_t hadamard_det_bits(std::size_t n, std::size_t entry_bits) {
  if (n == 0) return 1;
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;  // ceil(log2 n)
  return n * log2n / 2 + n * entry_bits + 2;
}

/// Bit budget that certainly suffices to reconstruct every entry of the
/// solution of A x = b by Cramer's rule: numerators are determinants of A
/// with one column replaced by b, denominators divide det(A), and Wang needs
/// 2 N D < M on top.
inline std::size_t solution_modulus_bits(std::size_t n, std::size_t entry_bits,
                                         std::size_t rhs_bits) {
  const std::size_t num_bits =
      hadamard_det_bits(n, entry_bits > rhs_bits ? entry_bits : rhs_bits);
  const std::size_t den_bits = hadamard_det_bits(n, entry_bits);
  return num_bits + den_bits + 2;
}

/// Incremental Garner CRT over a fixed set of tracked slots.  All slots
/// share the same prime set, so the expensive per-merge modular inverses are
/// computed once per batch and amortized across every slot.
class CrtCombiner {
 public:
  explicit CrtCombiner(std::size_t slots)
      : modulus_(1), values_(slots, field::BigInt(0)) {}

  std::size_t slots() const { return values_.size(); }
  /// Product of every folded prime.
  const field::BigInt& modulus() const { return modulus_; }
  /// Slot value in [0, modulus).
  const field::BigInt& value(std::size_t slot) const { return values_[slot]; }

  /// Folds one batch: primes must be pairwise distinct, coprime to the
  /// accumulated modulus; residues[slot][j] is slot's value mod primes[j].
  void fold_batch(const std::vector<std::uint64_t>& primes,
                  const std::vector<std::vector<std::uint64_t>>& residues) {
    using field::BigInt;
    assert(residues.size() == values_.size());
    if (primes.empty()) return;
    // Product-tree combine of the batch: shared moduli + inverses, per-slot
    // values.
    std::vector<BigInt> batch_vals(values_.size());
    const BigInt batch_mod = merge_range(primes, residues, 0, primes.size(),
                                         batch_vals);
    // One Garner fold of the whole batch into the running accumulator:
    //   X' = X + M * ((X_b - X) * M^{-1} mod M_b),   M' = M * M_b.
    const auto inv = bigint_invmod(modulus_ % batch_mod, batch_mod);
    assert(inv.has_value() && "batch primes not coprime to accumulator");
    for (std::size_t s = 0; s < values_.size(); ++s) {
      BigInt delta = ((batch_vals[s] - values_[s]) * *inv) % batch_mod;
      if (delta.is_negative()) delta += batch_mod;
      values_[s] += modulus_ * delta;
    }
    modulus_ *= batch_mod;
  }

 private:
  /// Combines primes[lo, hi) bottom-up; returns the range's modulus and
  /// writes each slot's residue mod that modulus into vals.
  static field::BigInt merge_range(
      const std::vector<std::uint64_t>& primes,
      const std::vector<std::vector<std::uint64_t>>& residues, std::size_t lo,
      std::size_t hi, std::vector<field::BigInt>& vals) {
    using field::BigInt;
    if (hi - lo == 1) {
      for (std::size_t s = 0; s < vals.size(); ++s) {
        vals[s] = BigInt(static_cast<std::int64_t>(residues[s][lo]));
      }
      return BigInt(static_cast<std::int64_t>(primes[lo]));
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    std::vector<BigInt> right_vals(vals.size());
    const BigInt ml = merge_range(primes, residues, lo, mid, vals);
    const BigInt mr = merge_range(primes, residues, mid, hi, right_vals);
    const auto inv = bigint_invmod(ml % mr, mr);
    assert(inv.has_value() && "duplicate prime in batch");
    for (std::size_t s = 0; s < vals.size(); ++s) {
      BigInt delta = ((right_vals[s] - vals[s]) * *inv) % mr;
      if (delta.is_negative()) delta += mr;
      vals[s] += ml * delta;
    }
    return ml * mr;
  }

  field::BigInt modulus_;
  std::vector<field::BigInt> values_;
};

}  // namespace kp::core

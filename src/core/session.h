// Solver sessions: register an operator once, stream right-hand sides.
//
// The Theorem-4 pipeline splits naturally into a per-OPERATOR phase -- draw
// the Theorem-2 preconditioner, run the Krylov projection, recover the
// characteristic polynomial g of A-tilde = A H D -- and a per-RHS phase: the
// Cayley-Hamilton finish x-tilde = -(1/g_0) sum_j g_{j+1} A-tilde^j b, one
// unpreconditioning, one Las Vegas verification.  A Session pins everything
// the first phase produced:
//
//   * ONE PreconditionedBox instance, so the Hankel symbol spectrum and any
//     TransformedPoly caches inside it stay warm across every solve (the
//     box holds H and D by value; copying it would drop the cached spectra,
//     which is why the session is immovable and hands out batch solves
//     rather than the box);
//   * the charpoly transcript: g, the combination coefficients q_j, det(A),
//     and the seeds that drew the preconditioner -- a solve failure is
//     replayable in isolation;
//   * for Q (RationalSession below), the CRT prime set and shard transcript
//     a previous solve certified, warm-starting the next one.
//
// The second phase is BATCHED: solve_many advances all pending right-hand
// sides through the annihilator recurrence together (apply_columns, so the
// operator's apply_many / shared-spectrum paths fire once per step for the
// whole batch) and verifies them in one batched apply.  Per-column failures
// stay per-column: a verify mismatch re-draws the transcript and retries
// only the failed columns, under a bounded retry budget with exponential
// backoff; repeated mismatches open the session's circuit breaker
// (kSessionQuarantined) so a poisoned session fails fast instead of burning
// pool time.  Cooperative deadlines/cancellation (util/deadline.h) are
// checked at the same boundaries the one-shot pipeline checks them.
//
// Sessions are NOT thread-safe: the service layer (core/service.h) owns the
// locking and the cross-request coalescing; a session is the single-owner
// execution object underneath it.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/annihilator.h"
#include "core/crt_shard.h"
#include "core/preconditioners.h"
#include "core/solver.h"
#include "matrix/blackbox.h"
#include "matrix/gauss.h"
#include "util/deadline.h"
#include "util/fault.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp::core {

/// How far a request's execution was degraded from the preferred route.
enum class DegradationLevel : std::uint8_t {
  kBatched = 0,        ///< coalesced multi-RHS annihilator finish
  kSingleRhs = 1,      ///< solo retry after a batch-level failure
  kDenseBaseline = 2,  ///< deterministic Gaussian elimination settle
};

inline const char* to_string(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kBatched: return "batched";
    case DegradationLevel::kSingleRhs: return "single-rhs";
    case DegradationLevel::kDenseBaseline: return "dense-baseline";
  }
  return "unknown";
}

/// Per-session knobs (embedded in ServiceConfig for service-made sessions).
struct SessionOptions {
  /// Pipeline knobs for the prepare phase (sample size, attempts, route...).
  /// `control` on it is ignored -- callers pass controls per call.
  SolverOptions solver;
  /// Re-draws of the pinned transcript one solve_many call may spend on
  /// verify mismatches before giving up on the still-failing columns.
  int retry_budget = 3;
  /// Base of the exponential backoff between those re-draws (doubling per
  /// retry, capped at 100x base).  Zero disables sleeping -- tests and
  /// deterministic drivers want retries without wall-clock coupling.
  std::chrono::nanoseconds backoff_base{0};
  /// Consecutive solve-level verify mismatches that open the circuit
  /// breaker.  A quarantined session fails every request fast with
  /// kSessionQuarantined until reset_quarantine() is called.
  int quarantine_threshold = 3;
};

/// One right-hand side's outcome within a session batch.
template <kp::field::Field F>
struct SessionItem {
  util::Status status;
  std::vector<typename F::Element> x;
  DegradationLevel level = DegradationLevel::kBatched;
};

/// Outcome of one solve_many call.
template <kp::field::Field F>
struct SessionBatchResult {
  std::vector<SessionItem<F>> items;  ///< one per input column, same order
  std::vector<util::Diag> diags;      ///< prepare/retry records of this call
  int transcript_redraws = 0;         ///< re-prepares this call performed
};

/// A registered operator with its pinned pipeline state.  Immovable: the
/// PreconditionedBox holds a pointer to the session's own AnyBox member.
template <kp::field::Field F>
class Session {
 public:
  using E = typename F::Element;

  Session(const F& f, matrix::AnyBox<F> a, std::uint64_t seed,
          SessionOptions opt = {})
      : f_(f),
        ring_(f),
        a_(std::move(a)),
        n_(a_.dim()),
        opt_(opt),
        prng_(seed) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  std::size_t dim() const { return n_; }
  bool prepared() const { return prepared_; }
  bool quarantined() const { return quarantined_; }
  const util::Diag& quarantine_diag() const { return quarantine_diag_; }
  int verify_mismatch_streak() const { return mismatch_streak_; }
  std::uint64_t prepares() const { return prepares_; }
  std::uint64_t solves_completed() const { return solves_completed_; }
  /// det(A) from the pinned transcript (valid once prepared()).
  const E& det() const { return det_; }

  /// Closes the circuit breaker and forces a fresh transcript: the operator
  /// owner vouched for the session again (e.g. after fixing a faulty
  /// backend).  The mismatch streak restarts from zero.
  void reset_quarantine() {
    quarantined_ = false;
    mismatch_streak_ = 0;
    prepared_ = false;
  }

  /// Phase 1: draw the preconditioner and recover the charpoly transcript.
  /// Las Vegas with full redraws and |S| escalation (the stage-targeted
  /// variant lives in the one-shot solver; sessions prefer the simpler
  /// policy because a redraw here is amortized over many solves).  Also
  /// detects singular operators: g(0) = 0 on every attempt surfaces as the
  /// usual kZeroConstantTerm failure and the dense path can prove
  /// kSingularInput.
  util::Status prepare(const util::ExecControl* control = nullptr) {
    using util::FailureKind;
    using util::Stage;
    using util::Status;
    prepared_ = false;
    if (n_ == 0) {
      return Status::Fail(FailureKind::kInvalidArgument, Stage::kNone,
                          "operator dimension is zero");
    }
    std::uint64_t s = opt_.solver.sample_size;
    Status last = Status::Fail(FailureKind::kNone, Stage::kNone);
    const int attempts = opt_.solver.max_attempts < 1
                             ? 1
                             : opt_.solver.max_attempts;
    for (int attempt = 1; attempt <= attempts; ++attempt) {
      kp::util::fault::AttemptScope attempt_scope(attempt);
      kp::util::OpScope ops;
      util::Diag diag;
      diag.attempt = attempt;
      diag.sample_size = s;
      diag.redrew_precondition = true;
      diag.redrew_projection = true;
      ++prepares_;

      const Status st = [&]() -> Status {
        if (Status ctl = util::ExecControl::check(control, Stage::kDraw);
            !ctl.ok()) {
          return ctl;
        }
        if (KP_FAULT_POINT(Stage::kDraw)) {
          return Status::Injected(FailureKind::kInjectedFault, Stage::kDraw);
        }
        kp::util::Prng draw =
            prng_.fork(0x73657373696f6e00ULL + static_cast<std::uint64_t>(
                                                   ++transcript_serial_));
        diag.precondition_seed = diag.projection_seed = draw.seed();
        pre_ = Preconditioner<F>::draw(f_, n_, draw, s);
        if (KP_FAULT_POINT(Stage::kPrecondition)) {
          return Status::Injected(FailureKind::kSingularPrecondition,
                                  Stage::kPrecondition);
        }
        for (const auto& d : pre_->diagonal.entries()) {
          if (f_.is_zero(d)) {
            return Status::Fail(FailureKind::kSingularPrecondition,
                                Stage::kPrecondition,
                                "zero diagonal entry: det(D) = 0");
          }
        }
        // Rebuild the pinned box from the fresh H, D.  This is THE box every
        // subsequent batch runs through -- its cached Hankel spectrum warms
        // on the first product and stays for the session's lifetime.
        box_.emplace(f_, ring_, a_, pre_->hankel, pre_->diagonal);

        std::vector<E> u(n_), v(n_);
        for (auto& e : u) e = f_.sample(draw, s);
        for (auto& e : v) e = f_.sample(draw, s);
        const auto seq =
            matrix::krylov_sequence_iterative(f_, *box_, u, v, 2 * n_);
        if (KP_FAULT_POINT(Stage::kProjection)) {
          return Status::Injected(FailureKind::kDegenerateProjection,
                                  Stage::kProjection);
        }
        if (Status ctl =
                util::ExecControl::check(control, Stage::kCharpoly);
            !ctl.ok()) {
          return ctl;
        }
        std::vector<E> g;
        Status gst = detail::generator_from_sequence_status(
            f_, seq, n_, opt_.solver, ring_, g);
        if (!gst.ok()) return gst;

        const auto det_hd = pre_->det(f_, opt_.solver.newton);
        if (f_.is_zero(det_hd)) {
          return Status::Fail(FailureKind::kSingularPrecondition,
                              Stage::kPrecondition, "det(H D) = 0");
        }
        const auto det_at = (n_ % 2 == 0) ? g[0] : f_.neg(g[0]);
        det_ = f_.div(det_at, det_hd);
        q_ = solution_combination(f_, g);
        if (q_.empty()) {
          return Status::Fail(FailureKind::kZeroConstantTerm, Stage::kCharpoly,
                              "g(0) = 0: A-tilde singular");
        }
        g_ = std::move(g);
        return Status::Ok();
      }();

      diag.kind = st.kind();
      diag.stage = st.stage();
      diag.injected = st.injected();
      diag.ops = ops.counts();
      prepare_diags_.push_back(diag);
      if (st.ok()) {
        prepared_ = true;
        return st;
      }
      last = st;
      if (util::is_control_failure(st.kind())) return st;
      if (s < (std::uint64_t{1} << 62)) s *= 2;
    }
    return last;
  }

  /// Diag records of every prepare attempt this session ever ran.
  const std::vector<util::Diag>& prepare_diags() const {
    return prepare_diags_;
  }

  /// Phase 2: solve A x_k = b_k for a batch of right-hand sides through the
  /// pinned transcript.  `control` bounds the whole batch (the service
  /// passes the earliest member deadline); `member_controls`, when given,
  /// carries each column's own token, checked before that column's
  /// verification so a cancelled request never claims a result.
  SessionBatchResult<F> solve_many(
      const std::vector<const std::vector<E>*>& rhs,
      const util::ExecControl* control = nullptr,
      const std::vector<const util::ExecControl*>* member_controls = nullptr) {
    using util::FailureKind;
    using util::Stage;
    using util::Status;
    SessionBatchResult<F> out;
    out.items.resize(rhs.size());

    auto fail_all_pending = [&](const std::vector<std::size_t>& pending,
                                const Status& st) {
      for (const std::size_t k : pending) out.items[k].status = st;
    };

    if (quarantined_) {
      Status st = Status::Fail(FailureKind::kSessionQuarantined,
                               Stage::kServiceAdmission,
                               "session circuit breaker open");
      for (auto& item : out.items) item.status = st;
      return out;
    }
    std::vector<std::size_t> pending;
    for (std::size_t k = 0; k < rhs.size(); ++k) {
      if (rhs[k] == nullptr || rhs[k]->size() != n_) {
        out.items[k].status =
            Status::Fail(FailureKind::kInvalidArgument, Stage::kServiceBatch,
                         "dim(b) != dim(A)");
      } else {
        pending.push_back(k);
      }
    }

    int redraws = 0;
    while (!pending.empty()) {
      if (Status ctl = util::ExecControl::check(control, Stage::kServiceBatch);
          !ctl.ok()) {
        fail_all_pending(pending, ctl);
        return out;
      }
      if (!prepared_) {
        const std::size_t before = prepare_diags_.size();
        const Status pst = prepare(control);
        out.diags.insert(out.diags.end(), prepare_diags_.begin() + before,
                         prepare_diags_.end());
        if (!pst.ok()) {
          fail_all_pending(pending, pst);
          return out;
        }
      }

      // The coalesced Cayley-Hamilton finish: every pending column advances
      // through the same A-tilde power, so the operator's batch path (one
      // diagonal pass, one shared-spectrum Hankel product, one inner batch
      // apply) fires once per step for the whole batch.
      std::vector<std::vector<E>> w;
      w.reserve(pending.size());
      std::vector<std::vector<E>> x(pending.size(),
                                    std::vector<E>(n_, f_.zero()));
      for (const std::size_t k : pending) w.push_back(*rhs[k]);
      bool aborted = false;
      Status abort_status;
      for (std::size_t j = 0; j < q_.size(); ++j) {
        if ((j & 15u) == 0) {
          if (Status ctl =
                  util::ExecControl::check(control, Stage::kServiceExecute);
              !ctl.ok()) {
            aborted = true;
            abort_status = ctl;
            break;
          }
        }
        if (j) w = matrix::apply_columns(*box_, w);
        if (f_.eq(q_[j], f_.zero())) continue;
        for (std::size_t c = 0; c < pending.size(); ++c) {
          for (std::size_t i = 0; i < n_; ++i) {
            x[c][i] = f_.add(x[c][i], f_.mul(q_[j], w[c][i]));
          }
        }
      }
      if (aborted) {
        fail_all_pending(pending, abort_status);
        return out;
      }

      // Unprecondition and verify -- batched through the ORIGINAL operator,
      // so a wrong transcript can never leak a wrong answer (Las Vegas).
      std::vector<std::vector<E>> xs(pending.size());
      for (std::size_t c = 0; c < pending.size(); ++c) {
        xs[c] = pre_->unprecondition(f_, ring_, x[c]);
      }
      std::vector<std::size_t> verify_cols;
      std::vector<const std::vector<E>*> verify_ptrs;
      for (std::size_t c = 0; c < pending.size(); ++c) {
        const std::size_t k = pending[c];
        const util::ExecControl* member =
            member_controls != nullptr && k < member_controls->size()
                ? (*member_controls)[k]
                : nullptr;
        if (Status ctl = util::ExecControl::check(member, Stage::kVerify);
            !ctl.ok()) {
          out.items[k].status = ctl;  // cancelled mid-batch: result dropped
          continue;
        }
        verify_cols.push_back(c);
        verify_ptrs.push_back(&xs[c]);
      }
      const auto ax = matrix::apply_columns(a_, verify_ptrs);
      std::vector<std::size_t> mismatched;
      for (std::size_t m = 0; m < verify_cols.size(); ++m) {
        const std::size_t c = verify_cols[m];
        const std::size_t k = pending[c];
        const bool injected = KP_FAULT_POINT(Stage::kVerify);
        if (injected || ax[m] != *rhs[k]) {
          mismatched.push_back(k);
          out.items[k].status =
              injected ? Status::Injected(FailureKind::kVerifyMismatch,
                                          Stage::kVerify)
                       : Status::Fail(FailureKind::kVerifyMismatch,
                                      Stage::kVerify, "A x != b");
          util::Diag d;
          d.kind = FailureKind::kVerifyMismatch;
          d.stage = Stage::kVerify;
          d.attempt = redraws + 1;
          d.injected = injected;
          out.diags.push_back(d);
        } else {
          out.items[k].status = Status::Ok();
          out.items[k].x = std::move(xs[c]);
          out.items[k].level = pending.size() > 1
                                   ? DegradationLevel::kBatched
                                   : DegradationLevel::kSingleRhs;
          ++solves_completed_;
        }
      }

      if (mismatched.empty()) return out;

      // Verify mismatches: count the streak toward quarantine, then spend
      // the retry budget on a fresh transcript for ONLY the failed columns.
      ++mismatch_streak_;
      if (mismatch_streak_ >= opt_.quarantine_threshold) {
        quarantined_ = true;
        quarantine_diag_ = util::Diag{};
        quarantine_diag_.kind = FailureKind::kVerifyMismatch;
        quarantine_diag_.stage = Stage::kVerify;
        quarantine_diag_.attempt = mismatch_streak_;
        Status st = Status::Fail(FailureKind::kSessionQuarantined,
                                 Stage::kServiceBatch,
                                 "verify-mismatch streak tripped quarantine");
        fail_all_pending(mismatched, st);
        return out;
      }
      if (redraws >= opt_.retry_budget) return out;  // statuses already set
      backoff(redraws, control);
      ++redraws;
      ++out.transcript_redraws;
      prepared_ = false;  // force a fresh transcript on the next loop pass
      pending = std::move(mismatched);
    }
    return out;
  }

  /// Convenience single-RHS wrapper (degradation level kSingleRhs).
  SessionItem<F> solve_one(const std::vector<E>& b,
                           const util::ExecControl* control = nullptr) {
    std::vector<const std::vector<E>*> rhs{&b};
    auto r = solve_many(rhs, control);
    auto item = std::move(r.items.front());
    item.level = DegradationLevel::kSingleRhs;
    return item;
  }

  /// The deterministic settle path (degradation level kDenseBaseline):
  /// materialize once, then Gaussian elimination per request.  Exact, no
  /// retries, proves kSingularInput; the service falls back here when the
  /// randomized route keeps failing.  A successful Las Vegas streak never
  /// pays the materialization.
  SessionItem<F> solve_dense(const std::vector<E>& b) {
    SessionItem<F> item;
    item.level = DegradationLevel::kDenseBaseline;
    if (b.size() != n_) {
      item.status = util::Status::Fail(util::FailureKind::kInvalidArgument,
                                       util::Stage::kServiceExecute,
                                       "dim(b) != dim(A)");
      return item;
    }
    if (!dense_) dense_ = matrix::materialize_dense(f_, a_);
    auto x = matrix::solve_gauss(f_, *dense_, b);
    if (!x) {
      item.status = util::Status::Fail(util::FailureKind::kSingularInput,
                                       util::Stage::kServiceExecute,
                                       "Gaussian elimination: no solution");
      return item;
    }
    item.x = *std::move(x);
    item.status = util::Status::Ok();
    ++solves_completed_;
    return item;
  }

 private:
  /// Exponential backoff before transcript redraw r (0-based), bounded by
  /// the control deadline so a backoff never sleeps past the point where
  /// the caller stopped caring.
  void backoff(int r, const util::ExecControl* control) const {
    if (opt_.backoff_base.count() <= 0) return;
    auto d = opt_.backoff_base * (std::int64_t{1} << (r < 7 ? r : 7));
    const auto cap = opt_.backoff_base * 100;
    if (d > cap) d = cap;
    if (control != nullptr && control->deadline.has_deadline()) {
      const auto left = control->deadline.remaining();
      if (left <= std::chrono::nanoseconds::zero()) return;
      if (d > left) d = std::chrono::duration_cast<std::chrono::nanoseconds>(left);
    }
    std::this_thread::sleep_for(d);
  }

  F f_;
  kp::poly::PolyRing<F> ring_;
  matrix::AnyBox<F> a_;
  std::size_t n_;
  SessionOptions opt_;
  kp::util::Prng prng_;
  std::uint64_t transcript_serial_ = 0;

  // The pinned transcript.
  std::optional<Preconditioner<F>> pre_;
  std::optional<matrix::PreconditionedBox<F, matrix::AnyBox<F>>> box_;
  std::vector<E> g_;  ///< charpoly of A-tilde
  std::vector<E> q_;  ///< combination coefficients -g_{j+1}/g_0
  E det_{};
  bool prepared_ = false;
  std::optional<matrix::Matrix<F>> dense_;  ///< lazy baseline materialization

  // Circuit breaker.
  bool quarantined_ = false;
  int mismatch_streak_ = 0;
  util::Diag quarantine_diag_;

  std::vector<util::Diag> prepare_diags_;
  std::uint64_t prepares_ = 0;
  std::uint64_t solves_completed_ = 0;
};

/// The Q-side session: pins the CRT prime set and shard transcript that the
/// first solve certified (CrtOptions::pinned_primes), so repeat solves over
/// the same operator skip the next_ntt_prime certification sweep and replay
/// the shard randomness that is already known to work for this matrix.  A
/// prime that turns bad for a new right-hand side (the row-scaled integer
/// image depends on b's denominators) is still detected and redrawn -- the
/// pin is a warm start, never a correctness assumption.
class RationalSession {
 public:
  RationalSession(const field::RationalField& f,
                  matrix::Matrix<field::RationalField> a, std::uint64_t seed,
                  CrtOptions opt = {})
      : f_(f), a_(std::move(a)), opt_(std::move(opt)), prng_(seed) {}

  CrtSolveResult solve(const std::vector<field::Rational>& b) {
    CrtSolveResult res = crt_solve(f_, a_, &b, prng_, opt_);
    if (res.ok && !res.primes.empty()) {
      opt_.pinned_primes = res.primes;
      opt_.pinned_transcript_seed = res.transcript_seed;
    }
    return res;
  }

  const std::vector<std::uint64_t>& pinned_primes() const {
    return opt_.pinned_primes;
  }
  std::uint64_t pinned_transcript_seed() const {
    return opt_.pinned_transcript_seed;
  }

 private:
  field::RationalField f_;
  matrix::Matrix<field::RationalField> a_;
  CrtOptions opt_;
  util::Prng prng_;
};

}  // namespace kp::core

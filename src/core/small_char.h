// Section-5 small-characteristic characteristic polynomial of a Toeplitz
// matrix -- the complexity-(12) result.
//
// Leverrier's step divides by 2..n, so Theorems 3/4/6 require char(K) = 0 or
// > n.  The paper's remedy "is to appeal to Chistov's (1985) method ... in
// conjunction with computing for all i <= n by the algorithm of section 3
// the entry ((I_i - lambda T_i)^{-1})_{i,i} mod lambda^{n+1}".
// A factor n more work (O(n^3 polylog)), but valid over ANY field --
// including GF(2^k), which the tests and bench_small_char exercise.
#pragma once

#include <vector>

#include "field/concepts.h"
#include "matrix/structured.h"
#include "poly/poly.h"
#include "seq/newton_toeplitz.h"

namespace kp::core {

/// Leading principal i x i submatrix of a Toeplitz matrix (also Toeplitz).
template <kp::field::Field F>
matrix::Toeplitz<F> leading_toeplitz(const matrix::Toeplitz<F>& t, std::size_t i) {
  const std::size_t n = t.dim();
  assert(i >= 1 && i <= n);
  // Diagonal band a[n-i .. n+i-2] of the parent's diagonal vector.
  std::vector<typename F::Element> d(
      t.diagonals().begin() + static_cast<std::ptrdiff_t>(n - i),
      t.diagonals().begin() + static_cast<std::ptrdiff_t>(n + i - 1));
  return matrix::Toeplitz<F>(i, std::move(d));
}

/// Characteristic polynomial of a Toeplitz matrix over a field of ANY
/// characteristic (monic, little-endian, length n+1), by Chistov's telescoped
/// product evaluated with the section-3 Newton iteration per leading block:
///
///   det(I - lambda T) = prod_{i=1..n} 1 / r_i,
///   r_i = ((I_i - lambda T_i)^{-1})_{i,i} mod lambda^{n+1}.
template <kp::field::Field F>
std::vector<typename F::Element> toeplitz_charpoly_any_char(
    const F& f, const matrix::Toeplitz<F>& t) {
  const std::size_t n = t.dim();
  const std::size_t prec = n + 1;
  kp::poly::PolyRing<F> ring(f);

  auto prod_r = ring.one();
  for (std::size_t i = 1; i <= n; ++i) {
    const auto ti = leading_toeplitz(t, i);
    auto inv = seq::toeplitz_series_inverse(f, ti, prec);
    // ((I_i - lambda T_i)^{-1})_{i,i} is the last entry of the last column.
    auto ri = inv.last_col[i - 1];
    ring.strip(ri);
    prod_r = ring.truncate(ring.mul(prod_r, ri), prec);
  }

  auto q = kp::poly::series_inverse(ring, prod_r, prec);
  std::vector<typename F::Element> p(n + 1, f.zero());
  for (std::size_t k = 0; k <= n && k < q.size(); ++k) p[n - k] = q[k];
  return p;
}

/// Determinant over any characteristic: det(T) = (-1)^n p(0).
template <kp::field::Field F>
typename F::Element toeplitz_det_any_char(const F& f,
                                          const matrix::Toeplitz<F>& t) {
  const auto p = toeplitz_charpoly_any_char(f, t);
  return (t.dim() % 2 == 0) ? p[0] : f.neg(p[0]);
}

}  // namespace kp::core

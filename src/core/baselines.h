// Characteristic-polynomial / determinant baselines the paper positions
// itself against (section 1):
//
//   * Csanky/Leverrier ('76)      -- power sums by explicit matrix powers,
//                                    then Newton identities.  NC^2 but
//                                    ~n^{omega+1} work; divides by 2..n.
//   * Faddeev-LeVerrier           -- the classical O(n^4) adjoint recursion;
//                                    divides by 2..n; also yields A^{-1}.
//   * Berkowitz ('84)             -- division-free, works over ANY
//                                    commutative ring; O(n^4) work.
//   * Chistov ('85)               -- division-free except unit power series,
//                                    works in ANY characteristic; the
//                                    section-5 small-characteristic route.
//
// All return the monic characteristic polynomial det(lambda I - A),
// little-endian, length n+1; bench_comparison measures their work against
// the Theorem-3/4 pipeline.
#pragma once

#include <vector>

#include "field/concepts.h"
#include "matrix/dense.h"
#include "matrix/matmul.h"
#include "poly/poly.h"
#include "seq/newton_identities.h"
#include "util/status.h"

namespace kp::core {

/// Shared precondition of the charpoly baselines: a square input.  The entry
/// points return an empty polynomial on violation (release builds included);
/// callers that want the reason call this directly.
template <class R>
util::Status validate_charpoly_input(const R&, const matrix::Matrix<R>& a) {
  return util::Require(a.is_square(), util::FailureKind::kInvalidArgument,
                       util::Stage::kCharpoly, "A must be square");
}

/// Csanky's method: s_i = Trace(A^i) for i = 1..n via explicit powers, then
/// the Newton-identity solve.  Requires char(K) = 0 or > n.
template <kp::field::Field F>
std::vector<typename F::Element> charpoly_csanky(
    const F& f, const matrix::Matrix<F>& a,
    matrix::MatMulStrategy strategy = matrix::MatMulStrategy::kClassical) {
  if (!validate_charpoly_input(f, a).ok()) return {};
  const std::size_t n = a.rows();
  std::vector<typename F::Element> s(n, f.zero());
  auto pw = a;
  for (std::size_t k = 1; k <= n; ++k) {
    if (k > 1) pw = matrix::mat_mul(f, pw, a, strategy);
    auto tr = f.zero();
    for (std::size_t i = 0; i < n; ++i) tr = f.add(tr, pw.at(i, i));
    s[k - 1] = tr;
  }
  return seq::charpoly_from_power_sums(f, s);
}

/// Faddeev-LeVerrier recursion; also exposes the adjoint-based inverse.
/// Requires char(K) = 0 or > n.
template <kp::field::Field F>
struct FaddeevResult {
  std::vector<typename F::Element> charpoly;  ///< monic, little-endian
  matrix::Matrix<F> adjoint_like;  ///< N_{n-1}; A^{-1} = N_{n-1} / c_n
  typename F::Element c_n{};       ///< det-scale: det(A) = +- c_n
};

template <kp::field::Field F>
FaddeevResult<F> faddeev_leverrier(const F& f, const matrix::Matrix<F>& a) {
  if (!validate_charpoly_input(f, a).ok()) return {};
  const std::size_t n = a.rows();
  // N_0 = I; M_k = A N_{k-1}; c_k = tr(M_k)/k; N_k = M_k - c_k I.
  auto nk = matrix::identity_matrix(f, n);
  std::vector<typename F::Element> c(n + 1, f.zero());
  matrix::Matrix<F> n_prev = nk;
  for (std::size_t k = 1; k <= n; ++k) {
    n_prev = nk;
    auto m = matrix::mat_mul(f, a, nk);
    auto tr = f.zero();
    for (std::size_t i = 0; i < n; ++i) tr = f.add(tr, m.at(i, i));
    c[k] = f.div(tr, f.from_int(static_cast<std::int64_t>(k)));
    nk = m;
    for (std::size_t i = 0; i < n; ++i) nk.at(i, i) = f.sub(nk.at(i, i), c[k]);
  }
  // charpoly = x^n - c_1 x^{n-1} - ... - c_n.
  std::vector<typename F::Element> p(n + 1, f.zero());
  p[n] = f.one();
  for (std::size_t k = 1; k <= n; ++k) p[n - k] = f.neg(c[k]);
  return {std::move(p), std::move(n_prev), c[n]};
}

/// Berkowitz's division-free algorithm (clow sequences / Samuelson).
/// Works over any commutative ring; O(n^4) ring operations.
template <kp::field::CommutativeRing R>
std::vector<typename R::Element> charpoly_berkowitz(const R& r,
                                                    const matrix::Matrix<R>& a) {
  if (!validate_charpoly_input(r, a).ok()) return {};
  using E = typename R::Element;
  const std::size_t n = a.rows();
  // q holds the charpoly of the leading principal r x r submatrix,
  // big-endian (leading coefficient first).
  std::vector<E> q{r.one(), r.neg(a.at(0, 0))};
  for (std::size_t m = 1; m < n; ++m) {
    // Row R = A[m][0..m-1], column C = A[0..m-1][m], corner a = A[m][m].
    // Transfer column t = (1, -a, -R C, -R A_m C, -R A_m^2 C, ...),
    // length m+2; q_{m+1}[i] = sum_j t[i-j] q_m[j]  (lower-tri Toeplitz).
    std::vector<E> t(m + 2, r.zero());
    t[0] = r.one();
    t[1] = r.neg(a.at(m, m));
    std::vector<E> w(m);  // w = A_m^k C
    for (std::size_t i = 0; i < m; ++i) w[i] = a.at(i, m);
    for (std::size_t k = 0; k + 2 < t.size(); ++k) {
      if (k > 0) {
        // w <- A_m w
        std::vector<E> nw(m, r.zero());
        for (std::size_t i = 0; i < m; ++i) {
          auto acc = r.zero();
          for (std::size_t j = 0; j < m; ++j) {
            acc = r.add(acc, r.mul(a.at(i, j), w[j]));
          }
          nw[i] = std::move(acc);
        }
        w = std::move(nw);
      }
      auto rc = r.zero();
      for (std::size_t j = 0; j < m; ++j) {
        rc = r.add(rc, r.mul(a.at(m, j), w[j]));
      }
      t[k + 2] = r.neg(rc);
    }
    std::vector<E> next(m + 2, r.zero());
    for (std::size_t i = 0; i < next.size(); ++i) {
      auto acc = r.zero();
      for (std::size_t j = 0; j < q.size() && j <= i; ++j) {
        if (i - j < t.size()) acc = r.add(acc, r.mul(t[i - j], q[j]));
      }
      next[i] = std::move(acc);
    }
    q = std::move(next);
  }
  // Convert big-endian q to little-endian monic charpoly.
  return std::vector<E>(q.rbegin(), q.rend());
}

/// Chistov's method: works over any field.  Uses
///   det(I - lambda A) = prod_{i=1..n} 1 / r_i,
///   r_i = ((I_i - lambda A_i)^{-1})_{i,i} mod lambda^{n+1},
/// with r_i read off the Neumann series sum_k lambda^k (A_i^k)_{i,i};
/// the only divisions are power-series inversions of units.
template <kp::field::Field F>
std::vector<typename F::Element> charpoly_chistov(const F& f,
                                                  const matrix::Matrix<F>& a) {
  if (!validate_charpoly_input(f, a).ok()) return {};
  const std::size_t n = a.rows();
  const std::size_t prec = n + 1;
  kp::poly::PolyRing<F> ring(f);

  // prod_r = prod r_i mod lambda^prec.
  auto prod_r = ring.one();
  for (std::size_t i = 1; i <= n; ++i) {
    // w_k = A_i^k e_i; r_i[k] = (w_k)_i.
    std::vector<typename F::Element> w(i, f.zero());
    w[i - 1] = f.one();
    typename kp::poly::PolyRing<F>::Element ri(prec, f.zero());
    ri[0] = f.one();
    for (std::size_t k = 1; k < prec; ++k) {
      std::vector<typename F::Element> nw(i, f.zero());
      for (std::size_t row = 0; row < i; ++row) {
        auto acc = f.zero();
        for (std::size_t col = 0; col < i; ++col) {
          acc = f.add(acc, f.mul(a.at(row, col), w[col]));
        }
        nw[row] = std::move(acc);
      }
      w = std::move(nw);
      ri[k] = w[i - 1];
    }
    ring.strip(ri);
    prod_r = ring.truncate(ring.mul(prod_r, ri), prec);
  }

  // det(I - lambda A) = 1 / prod_r; charpoly = reverse to length n+1.
  auto q = kp::poly::series_inverse(ring, prod_r, prec);
  std::vector<typename F::Element> p(n + 1, f.zero());
  for (std::size_t k = 0; k <= n && k < q.size(); ++k) p[n - k] = q[k];
  return p;
}

}  // namespace kp::core

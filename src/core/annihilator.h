// Solving A x = b from an annihilating polynomial of A (or of the Krylov
// sequence of b): the Cayley-Hamilton finish used by both Wiedemann's
// black-box solver and the Theorem-4 pipeline.
//
// If g(lambda) = g_0 + g_1 lambda + ... + lambda^d annihilates the sequence
// {A^i b} and g_0 != 0 (guaranteed for non-singular A and the minimal g),
// then
//     0 = g(A) b  =>  A^{-1} b = -(1/g_0) (g_1 b + g_2 A b + ... + A^{d-1} b).
#pragma once

#include <vector>

#include "field/concepts.h"
#include "matrix/blackbox.h"
#include "matrix/dense.h"
#include "util/status.h"

namespace kp::core {

/// Precondition of the Cayley-Hamilton finish: the annihilator must be
/// non-trivial with a non-zero constant term (else A is not invertible
/// through g).  Public entry points call this instead of asserting, so
/// malformed inputs are rejected in every build type.
template <kp::field::Field F>
util::Status validate_annihilator(const F& f,
                                  const std::vector<typename F::Element>& g) {
  if (g.size() < 2) {
    return util::Status::Fail(util::FailureKind::kInvalidArgument,
                              util::Stage::kSolveFinish,
                              "annihilator must have degree >= 1");
  }
  if (f.eq(g[0], f.zero())) {
    return util::Status::Fail(util::FailureKind::kZeroConstantTerm,
                              util::Stage::kSolveFinish,
                              "annihilator constant term is zero");
  }
  return util::Status::Ok();
}

/// Coefficients q of the solution combination: x = sum_j q_j A^j b, derived
/// from a monic annihilator g with g_0 != 0; q_j = -g_{j+1} / g_0.
/// Returns an empty vector when g fails validate_annihilator.
template <kp::field::Field F>
std::vector<typename F::Element> solution_combination(
    const F& f, const std::vector<typename F::Element>& g) {
  if (!validate_annihilator(f, g).ok()) return {};
  const auto scale = f.neg(f.inv(g[0]));
  std::vector<typename F::Element> q(g.size() - 1, f.zero());
  for (std::size_t j = 0; j + 1 < g.size(); ++j) {
    q[j] = f.mul(scale, g[j + 1]);
  }
  return q;
}

/// Black-box solve from an annihilator: d-1 products with the box.
/// Returns an empty vector when g fails validate_annihilator.
template <kp::field::Field F, matrix::LinOp B>
std::vector<typename F::Element> solve_from_annihilator(
    const F& f, const B& box, const std::vector<typename F::Element>& g,
    const std::vector<typename F::Element>& b) {
  const auto q = solution_combination(f, g);
  if (q.empty()) return {};
  std::vector<typename F::Element> w = b;
  std::vector<typename F::Element> x(b.size(), f.zero());
  for (std::size_t j = 0; j < q.size(); ++j) {
    if (j) w = box.apply(w);
    if (f.eq(q[j], f.zero())) continue;
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = f.add(x[i], f.mul(q[j], w[i]));
    }
  }
  return x;
}

}  // namespace kp::core

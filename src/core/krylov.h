// The Krylov doubling step -- equation (9) of the paper.
//
//   A^{2^i} (v  Av  ...  A^{2^i - 1} v) = (A^{2^i} v  ...  A^{2^{i+1}-1} v)
//
// Repeated squaring of A interleaved with block products produces the whole
// Krylov block (v, Av, ..., A^{count-1} v) in O(log count) matrix products,
// i.e. O(n^omega log n) work and O(log^2 n) depth -- this is where the
// pipeline earns its processor efficiency over the naive 2n sequential
// matrix-vector products (route (8), which krylov_block_iterative provides
// for black-box operators whose products are cheaper than dense ones).
// KrylovRoute names the two routes; the Theorem-4 solver picks per operator
// structure.
#pragma once

#include <vector>

#include "matrix/blackbox.h"
#include "matrix/dense.h"
#include "matrix/matmul.h"
#include "pram/parallel_for.h"
#include "util/status.h"

namespace kp::core {

/// Precondition of the Krylov block builders: square operator, matching
/// start vector.  Entry points return an EMPTY block (0 x 0) on violation
/// instead of asserting, so release builds reject malformed inputs; callers
/// that want the reason use this validator directly.
template <kp::field::Field F>
util::Status validate_krylov_input(const F&, std::size_t rows,
                                   std::size_t cols, std::size_t vec) {
  if (rows != cols) {
    return util::Status::Fail(util::FailureKind::kInvalidArgument,
                              util::Stage::kProjection, "A must be square");
  }
  if (rows != vec) {
    return util::Status::Fail(util::FailureKind::kInvalidArgument,
                              util::Stage::kProjection, "dim(v) != dim(A)");
  }
  return util::Status::Ok();
}

/// Which route produces the Krylov data of the Theorem-4 pipeline.
enum class KrylovRoute {
  kAuto,       ///< doubling for dense operators, iterative otherwise
  kDoubling,   ///< equation (9): O(log n) matrix products
  kIterative,  ///< route (8): 2n black-box products
};

/// Resolves kAuto against the operator's structure hint: a dense operator
/// amortizes into the doubling route, while for sparse/structured operators
/// n black-box products beat an O(n^omega log n) dense doubling.
inline KrylovRoute resolve_route(KrylovRoute requested,
                                 matrix::BoxStructure structure) {
  if (requested != KrylovRoute::kAuto) return requested;
  return structure == matrix::BoxStructure::kDense ? KrylovRoute::kDoubling
                                                   : KrylovRoute::kIterative;
}

/// Returns the n x count Krylov block K with K(:, i) = A^i v, built by
/// doubling.
template <kp::field::Field F>
matrix::Matrix<F> krylov_block(const F& f, const matrix::Matrix<F>& a,
                               const std::vector<typename F::Element>& v,
                               std::size_t count,
                               matrix::MatMulStrategy strategy =
                                   matrix::MatMulStrategy::kClassical) {
  if (!validate_krylov_input(f, a.rows(), a.cols(), v.size()).ok()) {
    return matrix::Matrix<F>(0, 0, f.zero());
  }
  const std::size_t n = a.rows();
  matrix::Matrix<F> block(n, 1, f.zero());
  for (std::size_t i = 0; i < n; ++i) block.at(i, 0) = v[i];
  if (count <= 1) return block;

  matrix::Matrix<F> pw = a;  // A^{2^j}
  while (block.cols() < count) {
    // [block | A^{2^j} * block]: the merge copies disjoint rows, so it runs
    // on the pooled ExecutionContext for large blocks.
    const auto ext = matrix::mat_mul(f, pw, block, strategy);
    matrix::Matrix<F> merged(n, 2 * block.cols(), f.zero());
    const std::size_t cols = block.cols();
    auto merge_row = [&](std::size_t i) {
      for (std::size_t j = 0; j < cols; ++j) {
        merged.at(i, j) = block.at(i, j);
        merged.at(i, cols + j) = ext.at(i, j);
      }
    };
    if (kp::field::concurrent_ops_v<F> && n * cols >= matrix::kParallelGrain) {
      kp::pram::parallel_for(0, n, merge_row);
    } else {
      for (std::size_t i = 0; i < n; ++i) merge_row(i);
    }
    block = std::move(merged);
    if (block.cols() < count) pw = matrix::mat_mul(f, pw, pw, strategy);
  }
  if (block.cols() > count) {
    matrix::Matrix<F> trimmed(n, count, f.zero());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < count; ++j) trimmed.at(i, j) = block.at(i, j);
    }
    block = std::move(trimmed);
  }
  return block;
}

/// The same n x count Krylov block built with count-1 black-box products
/// (route (8)) -- the right choice when one product costs o(n^2), e.g.
/// O(nnz) sparse or O(M(n)) structured operators.
template <kp::field::Field F, matrix::LinOp B>
matrix::Matrix<F> krylov_block_iterative(const F& f, const B& box,
                                         const std::vector<typename F::Element>& v,
                                         std::size_t count) {
  if (!validate_krylov_input(f, box.dim(), box.dim(), v.size()).ok()) {
    return matrix::Matrix<F>(0, 0, f.zero());
  }
  const std::size_t n = box.dim();
  matrix::Matrix<F> block(n, count ? count : 1, f.zero());
  auto x = v;
  for (std::size_t j = 0; j < count; ++j) {
    if (j) x = box.apply(x);
    for (std::size_t i = 0; i < n; ++i) block.at(i, j) = x[i];
  }
  return block;
}

/// The projected sequence a_i = u A^i v, i < count, via one doubling block
/// and a single vector-matrix product.
template <kp::field::Field F>
std::vector<typename F::Element> krylov_sequence_doubling(
    const F& f, const matrix::Matrix<F>& a,
    const std::vector<typename F::Element>& u,
    const std::vector<typename F::Element>& v, std::size_t count,
    matrix::MatMulStrategy strategy = matrix::MatMulStrategy::kClassical) {
  const auto block = krylov_block(f, a, v, count, strategy);
  return matrix::vec_mat(f, u, block);
}

/// K * c for a Krylov block K: evaluates (sum_i c_i A^i) v from the block
/// columns -- the Cayley-Hamilton finish of the Theorem-4 solver.  Rows are
/// contiguous, so word-sized prime fields take the fused delayed-reduction
/// dot (same canonical values, same per-row mul/add charges).
template <kp::field::Field F>
std::vector<typename F::Element> krylov_combine(
    const F& f, const matrix::Matrix<F>& block,
    const std::vector<typename F::Element>& coeffs) {
  if (coeffs.size() > block.cols()) return {};  // malformed: block too narrow
  std::vector<typename F::Element> out(block.rows(), f.zero());
  if constexpr (kp::field::kernels::FastField<F>) {
    for (std::size_t i = 0; i < block.rows(); ++i) {
      out[i] = kp::field::kernels::dot(f, block.row(i), coeffs.data(),
                                       coeffs.size());
    }
    return out;
  }
  std::vector<typename F::Element> terms;
  terms.reserve(coeffs.size());
  for (std::size_t i = 0; i < block.rows(); ++i) {
    terms.clear();
    for (std::size_t j = 0; j < coeffs.size(); ++j) {
      terms.push_back(f.mul(block.at(i, j), coeffs[j]));
    }
    out[i] = matrix::balanced_sum(f, terms);
  }
  return out;
}

}  // namespace kp::core

// The Krylov doubling step -- equation (9) of the paper.
//
//   A^{2^i} (v  Av  ...  A^{2^i - 1} v) = (A^{2^i} v  ...  A^{2^{i+1}-1} v)
//
// Repeated squaring of A interleaved with block products produces the whole
// Krylov block (v, Av, ..., A^{count-1} v) in O(log count) matrix products,
// i.e. O(n^omega log n) work and O(log^2 n) depth -- this is where the
// pipeline earns its processor efficiency over the naive 2n sequential
// matrix-vector products (which matrix/blackbox.h provides as the
// sequential baseline, ablated in bench_ablation).
#pragma once

#include <cassert>
#include <vector>

#include "matrix/dense.h"
#include "matrix/matmul.h"

namespace kp::core {

/// Returns the n x count Krylov block K with K(:, i) = A^i v, built by
/// doubling.
template <kp::field::Field F>
matrix::Matrix<F> krylov_block(const F& f, const matrix::Matrix<F>& a,
                               const std::vector<typename F::Element>& v,
                               std::size_t count,
                               matrix::MatMulStrategy strategy =
                                   matrix::MatMulStrategy::kClassical) {
  assert(a.is_square() && a.rows() == v.size());
  const std::size_t n = a.rows();
  matrix::Matrix<F> block(n, 1, f.zero());
  for (std::size_t i = 0; i < n; ++i) block.at(i, 0) = v[i];
  if (count <= 1) return block;

  matrix::Matrix<F> pw = a;  // A^{2^j}
  while (block.cols() < count) {
    // [block | A^{2^j} * block]
    const auto ext = matrix::mat_mul(f, pw, block, strategy);
    matrix::Matrix<F> merged(n, 2 * block.cols(), f.zero());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < block.cols(); ++j) {
        merged.at(i, j) = block.at(i, j);
        merged.at(i, block.cols() + j) = ext.at(i, j);
      }
    }
    block = std::move(merged);
    if (block.cols() < count) pw = matrix::mat_mul(f, pw, pw, strategy);
  }
  if (block.cols() > count) {
    matrix::Matrix<F> trimmed(n, count, f.zero());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < count; ++j) trimmed.at(i, j) = block.at(i, j);
    }
    block = std::move(trimmed);
  }
  return block;
}

/// The projected sequence a_i = u A^i v, i < count, via one doubling block
/// and a single vector-matrix product.
template <kp::field::Field F>
std::vector<typename F::Element> krylov_sequence_doubling(
    const F& f, const matrix::Matrix<F>& a,
    const std::vector<typename F::Element>& u,
    const std::vector<typename F::Element>& v, std::size_t count,
    matrix::MatMulStrategy strategy = matrix::MatMulStrategy::kClassical) {
  const auto block = krylov_block(f, a, v, count, strategy);
  return matrix::vec_mat(f, u, block);
}

/// K * c for a Krylov block K: evaluates (sum_i c_i A^i) v from the block
/// columns -- the Cayley-Hamilton finish of the Theorem-4 solver.
template <kp::field::Field F>
std::vector<typename F::Element> krylov_combine(
    const F& f, const matrix::Matrix<F>& block,
    const std::vector<typename F::Element>& coeffs) {
  assert(coeffs.size() <= block.cols());
  std::vector<typename F::Element> out(block.rows(), f.zero());
  std::vector<typename F::Element> terms;
  terms.reserve(coeffs.size());
  for (std::size_t i = 0; i < block.rows(); ++i) {
    terms.clear();
    for (std::size_t j = 0; j < coeffs.size(); ++j) {
      terms.push_back(f.mul(block.at(i, j), coeffs[j]));
    }
    out[i] = matrix::balanced_sum(f, terms);
  }
  return out;
}

}  // namespace kp::core

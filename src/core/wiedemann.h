// Wiedemann's black-box algorithms (section 2 of the paper).
//
// All of them share one step: project the Krylov sequence of the operator
// through random vectors u, b drawn from the sample set S, and read off its
// minimum polynomial f_u^{A,b} with Berlekamp-Massey.  Lemma 2 bounds the
// probability that the projection loses information by 2 deg(f^A) / |S|.
//
//   * wiedemann_minpoly       -- minimum polynomial of the projected sequence
//   * wiedemann_singular_test -- Las Vegas "det(A) = 0" certificate
//   * wiedemann_solve         -- non-singular solve, Las Vegas (verifies Ax=b)
//   * wiedemann_det           -- determinant via the Theorem-2 preconditioner
//
// The Las Vegas entries thread util::Status through their retry loops
// (wiedemann_solve_status / wiedemann_det keep per-attempt Diag records and
// re-draw only the implicated component); the optional-returning forms stay
// as thin wrappers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/annihilator.h"
#include "core/block_krylov.h"
#include "core/preconditioners.h"
#include "field/concepts.h"
#include "matrix/blackbox.h"
#include "seq/berlekamp_massey.h"
#include "seq/matrix_berlekamp_massey.h"
#include "util/fault.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp::core {

/// Minimum polynomial of {u A^i b} for random u, b sampled from S; equals
/// the minimum polynomial of A with probability >= 1 - 2 deg(f^A)/|S|.
template <kp::field::Field F, matrix::LinOp B>
std::vector<typename F::Element> wiedemann_minpoly(const F& f, const B& box,
                                                   kp::util::Prng& prng,
                                                   std::uint64_t s) {
  const std::size_t n = box.dim();
  std::vector<typename F::Element> u(n), b(n);
  for (auto& e : u) e = f.sample(prng, s);
  for (auto& e : b) e = f.sample(prng, s);
  const auto seq = matrix::krylov_sequence_iterative(f, box, u, b, 2 * n);
  return seq::berlekamp_massey(f, seq);
}

/// One-sided Las Vegas singularity test: returns true ("singular") when
/// lambda divides the projected minimum polynomial.  For non-singular A the
/// answer is always false; for singular A it is true with probability
/// >= 1 - 2n/|S|.
template <kp::field::Field F, matrix::LinOp B>
bool wiedemann_singular_test(const F& f, const B& box, kp::util::Prng& prng,
                             std::uint64_t s) {
  const auto mp = wiedemann_minpoly(f, box, prng, s);
  return mp.size() >= 2 && f.eq(mp[0], f.zero());
}

/// Status-carrying outcome of the Las Vegas black-box solve.
template <kp::field::Field F>
struct WiedemannSolveResult {
  bool ok = false;
  std::vector<typename F::Element> x;
  int attempts = 0;
  util::Status status;
  std::vector<util::Diag> diags;  ///< one record per attempt
};

/// Solves A x = b for non-singular A through the minimum polynomial of the
/// sequence {A^i b}, with the full failure taxonomy.  The only randomness is
/// the projection vector u, so every retry is a projection re-draw (Lemma 2
/// is the only bound in play); failure after max_attempts has probability
/// <= (2n/|S|)^attempts for non-singular A.
template <kp::field::Field F, matrix::LinOp B>
WiedemannSolveResult<F> wiedemann_solve_status(
    const F& f, const B& box, const std::vector<typename F::Element>& b,
    kp::util::Prng& prng, std::uint64_t s, int max_attempts = 3) {
  using util::FailureKind;
  using util::Stage;
  using util::Status;
  WiedemannSolveResult<F> res;
  const std::size_t n = box.dim();
  const Status valid =
      util::Require(b.size() == n && max_attempts >= 1,
                    FailureKind::kInvalidArgument, Stage::kNone,
                    "dim(b) != dim(A) or max_attempts < 1");
  if (!valid.ok()) {
    res.status = valid;
    return res;
  }

  Status last = Status::Fail(FailureKind::kDegenerateProjection,
                             Stage::kProjection, "no attempt run");
  for (res.attempts = 1; res.attempts <= max_attempts; ++res.attempts) {
    kp::util::fault::AttemptScope attempt_scope(res.attempts);
    kp::util::OpScope ops;
    util::Diag diag;
    diag.attempt = res.attempts;
    diag.sample_size = s;
    diag.redrew_projection = true;  // u is the attempt's only randomness

    const Status st = [&]() -> Status {
      // Project {A^i b} through a random u; the sequence's minimum
      // polynomial f_u^{A,b} divides f^{A,b} and equals it w.h.p.
      // (Theorem 1 / Lemma 2).
      kp::util::Prng r = prng.fork(static_cast<std::uint64_t>(res.attempts));
      diag.projection_seed = r.seed();
      std::vector<typename F::Element> u(n);
      for (auto& e : u) e = f.sample(r, s);
      const auto seq = matrix::krylov_sequence_iterative(f, box, u, b, 2 * n);
      if (KP_FAULT_POINT(Stage::kProjection)) {
        return Status::Injected(FailureKind::kDegenerateProjection,
                                Stage::kProjection);
      }
      auto g = seq::berlekamp_massey(f, seq);
      if (g.size() < 2) {
        return Status::Fail(FailureKind::kDegenerateProjection,
                            Stage::kCharpoly, "trivial minimum polynomial");
      }
      if (KP_FAULT_POINT(Stage::kCharpoly)) {
        return Status::Injected(FailureKind::kZeroConstantTerm,
                                Stage::kCharpoly);
      }
      if (f.eq(g[0], f.zero())) {
        return Status::Fail(FailureKind::kZeroConstantTerm, Stage::kCharpoly,
                            "f_u(0) = 0: A singular or unlucky projection");
      }
      auto x = solve_from_annihilator(f, box, g, b);
      if (KP_FAULT_POINT(Stage::kVerify)) {
        return Status::Injected(FailureKind::kVerifyMismatch, Stage::kVerify);
      }
      if (box.apply(x) != b) {
        return Status::Fail(FailureKind::kVerifyMismatch, Stage::kVerify,
                            "A x != b");
      }
      res.x = std::move(x);
      return Status::Ok();
    }();

    diag.kind = st.kind();
    diag.stage = st.stage();
    diag.injected = st.injected();
    diag.ops = ops.counts();
    res.diags.push_back(diag);
    if (st.ok()) {
      res.ok = true;
      res.status = st;
      return res;
    }
    last = st;
  }
  res.status = last;
  return res;
}

/// Legacy optional-returning form of wiedemann_solve_status.
template <kp::field::Field F, matrix::LinOp B>
std::optional<std::vector<typename F::Element>> wiedemann_solve(
    const F& f, const B& box, const std::vector<typename F::Element>& b,
    kp::util::Prng& prng, std::uint64_t s, int max_attempts = 3) {
  auto res = wiedemann_solve_status(f, box, b, prng, s, max_attempts);
  if (!res.ok) return std::nullopt;
  return std::move(res.x);
}

/// Result of the randomized determinant.
template <kp::field::Field F>
struct DetResult {
  bool ok = false;                 ///< false: unlucky randomness (or singular)
  typename F::Element value{};     ///< det(A) when ok
  int attempts = 0;
  util::Status status;
  std::vector<util::Diag> diags;   ///< one record per attempt
};

/// Determinant of a non-singular A by Wiedemann's method with the
/// Saunders/Theorem-2 preconditioner: A-tilde = A H D, the projected minimum
/// polynomial of A-tilde is its characteristic polynomial w.h.p., and
/// det(A) = (-1)^n f(0)-style recovery divided by det(H) det(D).
/// Failure probability <= 3n^2/|S| per attempt (estimate (2)).  Retries are
/// stage-targeted like the Theorem-4 solver: deg f_u < n re-draws only the
/// projection pair, a zero constant term or singular H/D re-draws only the
/// preconditioner, and a repeat of the same component restarts both.
template <kp::field::Field F>
DetResult<F> wiedemann_det(const F& f, const matrix::Matrix<F>& a,
                           kp::util::Prng& prng, std::uint64_t s,
                           int max_attempts = 3) {
  using util::FailureKind;
  using util::Stage;
  using util::Status;
  DetResult<F> res;
  const std::size_t n = a.rows();
  const Status valid =
      util::Require(a.is_square() && n > 0 && max_attempts >= 1,
                    FailureKind::kInvalidArgument, Stage::kNone,
                    "A must be square and max_attempts >= 1");
  if (!valid.ok()) {
    res.status = valid;
    return res;
  }
  kp::poly::PolyRing<F> ring(f);

  kp::util::Prng pre_stream = prng.fork(0x7072652d48440000ULL);   // "pre-HD"
  kp::util::Prng proj_stream = prng.fork(0x70726f6a2d757600ULL);  // "proj-uv"
  std::optional<Preconditioner<F>> pre;
  std::optional<matrix::Matrix<F>> at;
  std::uint64_t pre_seed = 0, proj_seed = 0;
  bool redraw_pre = true, redraw_proj = true;
  bool pre_alone = false, proj_alone = false;
  Status last = Status::Fail(FailureKind::kDegenerateProjection,
                             Stage::kProjection, "no attempt run");

  for (res.attempts = 1; res.attempts <= max_attempts; ++res.attempts) {
    kp::util::fault::AttemptScope attempt_scope(res.attempts);
    kp::util::OpScope ops;
    util::Diag diag;
    diag.attempt = res.attempts;
    diag.sample_size = s;

    const Status st = [&]() -> Status {
      if (redraw_pre) {
        kp::util::Prng r = pre_stream.fork(static_cast<std::uint64_t>(res.attempts));
        pre_seed = r.seed();
        pre = Preconditioner<F>::draw(f, n, r, s);
        at = pre->apply_dense(f, ring, a);
      }
      diag.precondition_seed = pre_seed;
      diag.redrew_precondition = redraw_pre;
      diag.redrew_projection = redraw_proj;

      matrix::DenseBox<F> box(f, *at);
      // A kept projection replays its recorded seed bit-for-bit (fork()
      // consumes parent state, so re-forking would NOT reproduce it).
      if (redraw_proj) {
        proj_seed =
            proj_stream.fork(static_cast<std::uint64_t>(res.attempts)).seed();
      }
      kp::util::Prng r{proj_seed};
      diag.projection_seed = proj_seed;
      if (KP_FAULT_POINT(Stage::kProjection)) {
        return Status::Injected(FailureKind::kDegenerateProjection,
                                Stage::kProjection);
      }
      const auto g = wiedemann_minpoly(f, box, r, s);
      // Failure: deg < n (projection lost information) or g(0) = 0 (the
      // paper's explicit failure report -- A or the preconditioner).
      if (g.size() != n + 1) {
        return Status::Fail(FailureKind::kDegenerateProjection,
                            Stage::kProjection, "deg f_u < n");
      }
      if (KP_FAULT_POINT(Stage::kCharpoly)) {
        return Status::Injected(FailureKind::kZeroConstantTerm,
                                Stage::kCharpoly);
      }
      if (f.eq(g[0], f.zero())) {
        return Status::Fail(FailureKind::kZeroConstantTerm, Stage::kCharpoly,
                            "f_u(0) = 0: A-tilde singular");
      }
      // g is the characteristic polynomial of A-tilde:
      // det(A-tilde) = (-1)^n g(0).
      const auto det_at = (n % 2 == 0) ? g[0] : f.neg(g[0]);
      const auto det_hd = pre->det(f);
      if (f.eq(det_hd, f.zero())) {
        // Cannot happen organically when g(0) != 0; reachable via the
        // Preconditioner::det fault site.
        return Status::Fail(FailureKind::kSingularPrecondition,
                            Stage::kPrecondition, "det(H D) = 0");
      }
      res.value = f.div(det_at, det_hd);
      return Status::Ok();
    }();

    diag.kind = st.kind();
    diag.stage = st.stage();
    diag.injected = st.injected();
    diag.ops = ops.counts();
    res.diags.push_back(diag);
    if (st.ok()) {
      res.ok = true;
      res.status = st;
      return res;
    }
    last = st;

    bool want_pre, want_proj;
    switch (st.kind()) {
      case FailureKind::kDegenerateProjection:
        want_pre = false;
        want_proj = true;
        break;
      case FailureKind::kSingularPrecondition:
      case FailureKind::kZeroConstantTerm:
        want_pre = true;
        want_proj = false;
        break;
      default:
        want_pre = true;
        want_proj = true;
        break;
    }
    if (!want_pre && proj_alone) want_pre = true;
    if (!want_proj && pre_alone) want_proj = true;
    if (want_pre && want_proj) {
      pre_alone = proj_alone = false;
    } else if (want_proj) {
      proj_alone = true;
    } else {
      pre_alone = true;
    }
    redraw_pre = want_pre;
    redraw_proj = want_proj;
  }
  res.status = last;
  return res;
}

namespace detail {

/// One block-Wiedemann charpoly attempt: draw U (b x n rows) and V (b
/// columns) from `r`, run the block Krylov sequence and the sigma-basis,
/// and return det G normalized monic.  For the Theorem-2 preconditioned
/// operator (minpoly = charpoly, degree n) the minimal generator's
/// determinant is a scalar multiple of the characteristic polynomial
/// w.h.p.; the caller enforces deg = n.  Fault sites cover both new stages
/// so the retry paths are deterministically reachable.
template <kp::field::Field F, matrix::LinOp B>
  requires std::same_as<typename B::Element, typename F::Element>
kp::util::StatusOr<std::vector<typename F::Element>> block_charpoly_candidate(
    const F& f, const B& box, std::size_t block_width, kp::util::Prng& r,
    std::uint64_t s) {
  using util::FailureKind;
  using util::Stage;
  using util::Status;
  const std::size_t n = box.dim();
  const std::size_t bw = block_width < n ? block_width : n;
  const auto ut = random_block_rows(f, bw, n, r, s);
  const auto v = random_block_columns(f, bw, n, r, s);
  const std::size_t count = 2 * ((n + bw - 1) / bw) + 2;
  const auto sq = block_krylov_sequence(f, box, ut, v, count);
  if (KP_FAULT_POINT(Stage::kBlockProjection)) {
    return Status::Injected(FailureKind::kDegenerateProjection,
                            Stage::kBlockProjection);
  }
  auto gen = seq::matrix_berlekamp_massey(f, sq);
  if (!gen.ok()) return gen.status();
  if (KP_FAULT_POINT(Stage::kBlockGenerator)) {
    return Status::Injected(FailureKind::kDegenerateProjection,
                            Stage::kBlockGenerator);
  }
  auto det = detail::generator_determinant(f, gen.value());
  if (!det.ok()) return det.status();
  auto g = det.take();
  if (!f.eq(g.back(), f.one())) {
    const auto ilc = f.inv(g.back());
    for (auto& e : g) e = f.mul(e, ilc);
  }
  return g;
}

}  // namespace detail

/// Block-Wiedemann solve of A x = b for non-singular A (Coppersmith).  The
/// right block is V = [b | A z_1 | ... | A z_{bw-1}] for random z_k, so a
/// generator column c with (c_0)_1 != 0 yields sum_j A^j V c_j = 0 and the
/// solution reads off by Horner:
///
///   x = -(1/(c_0)_1) (Z c_0' + sum_{j>=1} A^{j-1} V c_j)
///
/// with only deg(c) <= ceil(n/bw) + 1 single-vector products in the finish
/// -- versus ~n in the scalar route's Cayley-Hamilton combination.  The
/// sequence phase runs ~2 ceil(n/bw) block steps, each one batched
/// apply_many plus a b x b SIMD projection, instead of 2n serial applies.
/// Every candidate is Las-Vegas-verified (A x = b); degenerate blocks
/// surface as kDegenerateProjection and re-draw U, V, Z from the attempt's
/// forked, replayable seed.  block_width <= 1 falls back to the scalar
/// route (identical results and diagnostics).
template <kp::field::Field F, matrix::LinOp B>
WiedemannSolveResult<F> block_wiedemann_solve_status(
    const F& f, const B& box, const std::vector<typename F::Element>& b,
    kp::util::Prng& prng, std::uint64_t s, std::size_t block_width,
    int max_attempts = 3) {
  using E = typename F::Element;
  using util::FailureKind;
  using util::Stage;
  using util::Status;
  const std::size_t n = box.dim();
  if (block_width <= 1 || n <= 1) {
    return wiedemann_solve_status(f, box, b, prng, s, max_attempts);
  }
  const std::size_t bw = block_width < n ? block_width : n;

  WiedemannSolveResult<F> res;
  const Status valid =
      util::Require(b.size() == n && max_attempts >= 1,
                    FailureKind::kInvalidArgument, Stage::kNone,
                    "dim(b) != dim(A) or max_attempts < 1");
  if (!valid.ok()) {
    res.status = valid;
    return res;
  }

  Status last = Status::Fail(FailureKind::kDegenerateProjection,
                             Stage::kBlockProjection, "no attempt run");
  for (res.attempts = 1; res.attempts <= max_attempts; ++res.attempts) {
    kp::util::fault::AttemptScope attempt_scope(res.attempts);
    kp::util::OpScope ops;
    util::Diag diag;
    diag.attempt = res.attempts;
    diag.sample_size = s;
    diag.redrew_projection = true;  // U, V, Z are the attempt's randomness

    const Status st = [&]() -> Status {
      kp::util::Prng r = prng.fork(static_cast<std::uint64_t>(res.attempts));
      diag.projection_seed = r.seed();
      const auto ut = random_block_rows(f, bw, n, r, s);
      const auto z = random_block_columns(f, bw - 1, n, r, s);
      // V = [b | A Z]: Coppersmith's construction, so the x^0 coefficient
      // of a generator column carries b's contribution explicitly.
      std::vector<std::vector<E>> v;
      v.reserve(bw);
      v.push_back(b);
      for (auto& az : matrix::apply_columns(box, z)) v.push_back(std::move(az));
      const std::size_t count = 2 * ((n + bw - 1) / bw) + 2;
      const auto sq = block_krylov_sequence(f, box, ut, v, count);
      if (KP_FAULT_POINT(Stage::kBlockProjection)) {
        return Status::Injected(FailureKind::kDegenerateProjection,
                                Stage::kBlockProjection);
      }
      auto gen_or = seq::matrix_berlekamp_massey(f, sq);
      if (!gen_or.ok()) return gen_or.status();
      if (KP_FAULT_POINT(Stage::kBlockGenerator)) {
        return Status::Injected(FailureKind::kDegenerateProjection,
                                Stage::kBlockGenerator);
      }
      const auto& gen = gen_or.value();
      // First (lowest-degree) column whose constant coefficient touches b.
      std::size_t pick = gen.columns.size();
      for (std::size_t c = 0; c < gen.columns.size(); ++c) {
        if (!f.eq(gen.columns[c][0][0], f.zero())) {
          pick = c;
          break;
        }
      }
      if (pick == gen.columns.size()) {
        return Status::Fail(FailureKind::kDegenerateProjection,
                            Stage::kBlockGenerator,
                            "no generator column usable for extraction");
      }
      const auto& col = gen.columns[pick];
      const std::size_t d = col.size() - 1;
      // w = sum_{j>=1} A^{j-1} V c_j by Horner: d block combinations and
      // d - 1 single-vector products.
      std::vector<E> w(n, f.zero());
      if (d >= 1) {
        w = block_combine(f, v, col[d]);
        for (std::size_t j = d; j-- > 1;) {
          w = box.apply(w);
          const auto vc = block_combine(f, v, col[j]);
          for (std::size_t i = 0; i < n; ++i) w[i] = f.add(w[i], vc[i]);
        }
      }
      if (bw > 1) {
        const std::vector<E> ctail(col[0].begin() + 1, col[0].end());
        const auto zc = block_combine(f, z, ctail);
        for (std::size_t i = 0; i < n; ++i) w[i] = f.add(w[i], zc[i]);
      }
      const E scale = f.neg(f.inv(col[0][0]));
      std::vector<E> x(n);
      for (std::size_t i = 0; i < n; ++i) x[i] = f.mul(scale, w[i]);
      if (KP_FAULT_POINT(Stage::kVerify)) {
        return Status::Injected(FailureKind::kVerifyMismatch, Stage::kVerify);
      }
      if (box.apply(x) != b) {
        return Status::Fail(FailureKind::kVerifyMismatch, Stage::kVerify,
                            "A x != b");
      }
      res.x = std::move(x);
      return Status::Ok();
    }();

    diag.kind = st.kind();
    diag.stage = st.stage();
    diag.injected = st.injected();
    diag.ops = ops.counts();
    res.diags.push_back(diag);
    if (st.ok()) {
      res.ok = true;
      res.status = st;
      return res;
    }
    last = st;
  }
  res.status = last;
  return res;
}

/// Legacy optional-returning form of block_wiedemann_solve_status.
template <kp::field::Field F, matrix::LinOp B>
std::optional<std::vector<typename F::Element>> block_wiedemann_solve(
    const F& f, const B& box, const std::vector<typename F::Element>& b,
    kp::util::Prng& prng, std::uint64_t s, std::size_t block_width,
    int max_attempts = 3) {
  auto res =
      block_wiedemann_solve_status(f, box, b, prng, s, block_width, max_attempts);
  if (!res.ok) return std::nullopt;
  return std::move(res.x);
}

/// Determinant by the block-Wiedemann route: the Theorem-2 preconditioner
/// makes minpoly = charpoly w.h.p., the block generator's determinant is
/// then a scalar multiple of the charpoly of A-tilde, and
/// det(A) = (-1)^n g(0) / det(H D) exactly as in the scalar route.  Retries
/// are stage-targeted with the same policy switch as wiedemann_det:
/// degenerate block projections / generators re-draw only U, V, a zero
/// constant term or singular H/D re-draws only the preconditioner.  Fields
/// too small for the det-by-interpolation step (characteristic <= 2n + 1)
/// and block_width <= 1 fall back to the scalar route.
template <kp::field::Field F>
DetResult<F> block_wiedemann_det(const F& f, const matrix::Matrix<F>& a,
                                 kp::util::Prng& prng, std::uint64_t s,
                                 std::size_t block_width, int max_attempts = 3) {
  using util::FailureKind;
  using util::Stage;
  using util::Status;
  const std::size_t n = a.rows();
  const std::uint64_t p = f.characteristic();
  if (block_width <= 1 || n <= 1 || (p != 0 && p < 2 * n + 2)) {
    return wiedemann_det(f, a, prng, s, max_attempts);
  }
  const std::size_t bw = block_width < n ? block_width : n;

  DetResult<F> res;
  const Status valid =
      util::Require(a.is_square() && n > 0 && max_attempts >= 1,
                    FailureKind::kInvalidArgument, Stage::kNone,
                    "A must be square and max_attempts >= 1");
  if (!valid.ok()) {
    res.status = valid;
    return res;
  }
  kp::poly::PolyRing<F> ring(f);

  kp::util::Prng pre_stream = prng.fork(0x7072652d48440000ULL);   // "pre-HD"
  kp::util::Prng proj_stream = prng.fork(0x70726f6a2d757600ULL);  // "proj-uv"
  std::optional<Preconditioner<F>> pre;
  std::optional<matrix::Matrix<F>> at;
  std::uint64_t pre_seed = 0, proj_seed = 0;
  bool redraw_pre = true, redraw_proj = true;
  bool pre_alone = false, proj_alone = false;
  Status last = Status::Fail(FailureKind::kDegenerateProjection,
                             Stage::kBlockProjection, "no attempt run");

  for (res.attempts = 1; res.attempts <= max_attempts; ++res.attempts) {
    kp::util::fault::AttemptScope attempt_scope(res.attempts);
    kp::util::OpScope ops;
    util::Diag diag;
    diag.attempt = res.attempts;
    diag.sample_size = s;

    const Status st = [&]() -> Status {
      if (redraw_pre) {
        kp::util::Prng r =
            pre_stream.fork(static_cast<std::uint64_t>(res.attempts));
        pre_seed = r.seed();
        pre = Preconditioner<F>::draw(f, n, r, s);
        at = pre->apply_dense(f, ring, a);
      }
      diag.precondition_seed = pre_seed;
      diag.redrew_precondition = redraw_pre;
      diag.redrew_projection = redraw_proj;

      matrix::DenseBox<F> box(f, *at);
      // A kept projection replays its recorded seed bit-for-bit (fork()
      // consumes parent state, so re-forking would NOT reproduce it).
      if (redraw_proj) {
        proj_seed =
            proj_stream.fork(static_cast<std::uint64_t>(res.attempts)).seed();
      }
      kp::util::Prng r{proj_seed};
      diag.projection_seed = proj_seed;
      auto g_or = detail::block_charpoly_candidate(f, box, bw, r, s);
      if (!g_or.ok()) return g_or.status();
      const auto& g = g_or.value();
      if (g.size() != n + 1) {
        return Status::Fail(FailureKind::kDegenerateProjection,
                            Stage::kBlockGenerator, "deg det G != n");
      }
      if (KP_FAULT_POINT(Stage::kCharpoly)) {
        return Status::Injected(FailureKind::kZeroConstantTerm,
                                Stage::kCharpoly);
      }
      if (f.eq(g[0], f.zero())) {
        return Status::Fail(FailureKind::kZeroConstantTerm, Stage::kCharpoly,
                            "g(0) = 0: A-tilde singular");
      }
      const auto det_at = (n % 2 == 0) ? g[0] : f.neg(g[0]);
      const auto det_hd = pre->det(f);
      if (f.eq(det_hd, f.zero())) {
        return Status::Fail(FailureKind::kSingularPrecondition,
                            Stage::kPrecondition, "det(H D) = 0");
      }
      res.value = f.div(det_at, det_hd);
      return Status::Ok();
    }();

    diag.kind = st.kind();
    diag.stage = st.stage();
    diag.injected = st.injected();
    diag.ops = ops.counts();
    res.diags.push_back(diag);
    if (st.ok()) {
      res.ok = true;
      res.status = st;
      return res;
    }
    last = st;

    bool want_pre, want_proj;
    switch (st.kind()) {
      case FailureKind::kDegenerateProjection:
        want_pre = false;
        want_proj = true;
        break;
      case FailureKind::kSingularPrecondition:
      case FailureKind::kZeroConstantTerm:
        want_pre = true;
        want_proj = false;
        break;
      default:
        want_pre = true;
        want_proj = true;
        break;
    }
    if (!want_pre && proj_alone) want_pre = true;
    if (!want_proj && pre_alone) want_proj = true;
    if (want_pre && want_proj) {
      pre_alone = proj_alone = false;
    } else if (want_proj) {
      proj_alone = true;
    } else {
      pre_alone = true;
    }
    redraw_pre = want_pre;
    redraw_proj = want_proj;
  }
  res.status = last;
  return res;
}

}  // namespace kp::core

// Wiedemann's black-box algorithms (section 2 of the paper).
//
// All of them share one step: project the Krylov sequence of the operator
// through random vectors u, b drawn from the sample set S, and read off its
// minimum polynomial f_u^{A,b} with Berlekamp-Massey.  Lemma 2 bounds the
// probability that the projection loses information by 2 deg(f^A) / |S|.
//
//   * wiedemann_minpoly       -- minimum polynomial of the projected sequence
//   * wiedemann_singular_test -- Las Vegas "det(A) = 0" certificate
//   * wiedemann_solve         -- non-singular solve, Las Vegas (verifies Ax=b)
//   * wiedemann_det           -- determinant via the Theorem-2 preconditioner
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/annihilator.h"
#include "core/preconditioners.h"
#include "field/concepts.h"
#include "matrix/blackbox.h"
#include "seq/berlekamp_massey.h"
#include "util/prng.h"

namespace kp::core {

/// Minimum polynomial of {u A^i b} for random u, b sampled from S; equals
/// the minimum polynomial of A with probability >= 1 - 2 deg(f^A)/|S|.
template <kp::field::Field F, matrix::LinOp B>
std::vector<typename F::Element> wiedemann_minpoly(const F& f, const B& box,
                                                   kp::util::Prng& prng,
                                                   std::uint64_t s) {
  const std::size_t n = box.dim();
  std::vector<typename F::Element> u(n), b(n);
  for (auto& e : u) e = f.sample(prng, s);
  for (auto& e : b) e = f.sample(prng, s);
  const auto seq = matrix::krylov_sequence_iterative(f, box, u, b, 2 * n);
  return seq::berlekamp_massey(f, seq);
}

/// One-sided Las Vegas singularity test: returns true ("singular") when
/// lambda divides the projected minimum polynomial.  For non-singular A the
/// answer is always false; for singular A it is true with probability
/// >= 1 - 2n/|S|.
template <kp::field::Field F, matrix::LinOp B>
bool wiedemann_singular_test(const F& f, const B& box, kp::util::Prng& prng,
                             std::uint64_t s) {
  const auto mp = wiedemann_minpoly(f, box, prng, s);
  return mp.size() >= 2 && f.eq(mp[0], f.zero());
}

/// Solves A x = b for non-singular A through the minimum polynomial of the
/// sequence {A^i b}.  Las Vegas: the candidate is verified and retried with
/// fresh randomness (up to max_attempts); nullopt means every attempt
/// failed, which for non-singular A has probability <= (2n/|S|)^attempts.
template <kp::field::Field F, matrix::LinOp B>
std::optional<std::vector<typename F::Element>> wiedemann_solve(
    const F& f, const B& box, const std::vector<typename F::Element>& b,
    kp::util::Prng& prng, std::uint64_t s, int max_attempts = 3) {
  const std::size_t n = box.dim();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Project {A^i b} through a random u; the sequence's minimum polynomial
    // f_u^{A,b} divides f^{A,b} and equals it w.h.p. (Theorem 1 / Lemma 2).
    std::vector<typename F::Element> u(n);
    for (auto& e : u) e = f.sample(prng, s);
    const auto seq = matrix::krylov_sequence_iterative(f, box, u, b, 2 * n);
    auto g = seq::berlekamp_massey(f, seq);
    if (g.size() < 2 || f.eq(g[0], f.zero())) continue;  // unlucky projection
    auto x = solve_from_annihilator(f, box, g, b);
    if (box.apply(x) == b) return x;  // Las Vegas verification
  }
  return std::nullopt;
}

/// Result of the randomized determinant.
template <kp::field::Field F>
struct DetResult {
  bool ok = false;                 ///< false: unlucky randomness (or singular)
  typename F::Element value{};     ///< det(A) when ok
};

/// Determinant of a non-singular A by Wiedemann's method with the
/// Saunders/Theorem-2 preconditioner: A-tilde = A H D, the projected minimum
/// polynomial of A-tilde is its characteristic polynomial w.h.p., and
/// det(A) = (-1)^n f(0)-style recovery divided by det(H) det(D).
/// Failure probability <= 3n^2/|S| per attempt (estimate (2)).
template <kp::field::Field F>
DetResult<F> wiedemann_det(const F& f, const matrix::Matrix<F>& a,
                           kp::util::Prng& prng, std::uint64_t s,
                           int max_attempts = 3) {
  const std::size_t n = a.rows();
  kp::poly::PolyRing<F> ring(f);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const auto pre = Preconditioner<F>::draw(f, n, prng, s);
    const auto at = pre.apply_dense(f, ring, a);
    matrix::DenseBox<F> box(f, at);
    const auto g = wiedemann_minpoly(f, box, prng, s);
    // Failure: deg < n or g(0) = 0 (the paper's explicit failure report).
    if (g.size() != n + 1 || f.eq(g[0], f.zero())) continue;
    // g is the characteristic polynomial of A-tilde:
    // det(A-tilde) = (-1)^n g(0).
    auto det_at = (n % 2 == 0) ? g[0] : f.neg(g[0]);
    const auto det_hd = pre.det(f);
    if (f.eq(det_hd, f.zero())) continue;  // cannot happen when g(0) != 0
    return {true, f.div(det_at, det_hd)};
  }
  return {};
}

}  // namespace kp::core

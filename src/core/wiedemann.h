// Wiedemann's black-box algorithms (section 2 of the paper).
//
// All of them share one step: project the Krylov sequence of the operator
// through random vectors u, b drawn from the sample set S, and read off its
// minimum polynomial f_u^{A,b} with Berlekamp-Massey.  Lemma 2 bounds the
// probability that the projection loses information by 2 deg(f^A) / |S|.
//
//   * wiedemann_minpoly       -- minimum polynomial of the projected sequence
//   * wiedemann_singular_test -- Las Vegas "det(A) = 0" certificate
//   * wiedemann_solve         -- non-singular solve, Las Vegas (verifies Ax=b)
//   * wiedemann_det           -- determinant via the Theorem-2 preconditioner
//
// The Las Vegas entries thread util::Status through their retry loops
// (wiedemann_solve_status / wiedemann_det keep per-attempt Diag records and
// re-draw only the implicated component); the optional-returning forms stay
// as thin wrappers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/annihilator.h"
#include "core/preconditioners.h"
#include "field/concepts.h"
#include "matrix/blackbox.h"
#include "seq/berlekamp_massey.h"
#include "util/fault.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp::core {

/// Minimum polynomial of {u A^i b} for random u, b sampled from S; equals
/// the minimum polynomial of A with probability >= 1 - 2 deg(f^A)/|S|.
template <kp::field::Field F, matrix::LinOp B>
std::vector<typename F::Element> wiedemann_minpoly(const F& f, const B& box,
                                                   kp::util::Prng& prng,
                                                   std::uint64_t s) {
  const std::size_t n = box.dim();
  std::vector<typename F::Element> u(n), b(n);
  for (auto& e : u) e = f.sample(prng, s);
  for (auto& e : b) e = f.sample(prng, s);
  const auto seq = matrix::krylov_sequence_iterative(f, box, u, b, 2 * n);
  return seq::berlekamp_massey(f, seq);
}

/// One-sided Las Vegas singularity test: returns true ("singular") when
/// lambda divides the projected minimum polynomial.  For non-singular A the
/// answer is always false; for singular A it is true with probability
/// >= 1 - 2n/|S|.
template <kp::field::Field F, matrix::LinOp B>
bool wiedemann_singular_test(const F& f, const B& box, kp::util::Prng& prng,
                             std::uint64_t s) {
  const auto mp = wiedemann_minpoly(f, box, prng, s);
  return mp.size() >= 2 && f.eq(mp[0], f.zero());
}

/// Status-carrying outcome of the Las Vegas black-box solve.
template <kp::field::Field F>
struct WiedemannSolveResult {
  bool ok = false;
  std::vector<typename F::Element> x;
  int attempts = 0;
  util::Status status;
  std::vector<util::Diag> diags;  ///< one record per attempt
};

/// Solves A x = b for non-singular A through the minimum polynomial of the
/// sequence {A^i b}, with the full failure taxonomy.  The only randomness is
/// the projection vector u, so every retry is a projection re-draw (Lemma 2
/// is the only bound in play); failure after max_attempts has probability
/// <= (2n/|S|)^attempts for non-singular A.
template <kp::field::Field F, matrix::LinOp B>
WiedemannSolveResult<F> wiedemann_solve_status(
    const F& f, const B& box, const std::vector<typename F::Element>& b,
    kp::util::Prng& prng, std::uint64_t s, int max_attempts = 3) {
  using util::FailureKind;
  using util::Stage;
  using util::Status;
  WiedemannSolveResult<F> res;
  const std::size_t n = box.dim();
  const Status valid =
      util::Require(b.size() == n && max_attempts >= 1,
                    FailureKind::kInvalidArgument, Stage::kNone,
                    "dim(b) != dim(A) or max_attempts < 1");
  if (!valid.ok()) {
    res.status = valid;
    return res;
  }

  Status last = Status::Fail(FailureKind::kDegenerateProjection,
                             Stage::kProjection, "no attempt run");
  for (res.attempts = 1; res.attempts <= max_attempts; ++res.attempts) {
    kp::util::fault::AttemptScope attempt_scope(res.attempts);
    kp::util::OpScope ops;
    util::Diag diag;
    diag.attempt = res.attempts;
    diag.sample_size = s;
    diag.redrew_projection = true;  // u is the attempt's only randomness

    const Status st = [&]() -> Status {
      // Project {A^i b} through a random u; the sequence's minimum
      // polynomial f_u^{A,b} divides f^{A,b} and equals it w.h.p.
      // (Theorem 1 / Lemma 2).
      kp::util::Prng r = prng.fork(static_cast<std::uint64_t>(res.attempts));
      diag.projection_seed = r.seed();
      std::vector<typename F::Element> u(n);
      for (auto& e : u) e = f.sample(r, s);
      const auto seq = matrix::krylov_sequence_iterative(f, box, u, b, 2 * n);
      if (KP_FAULT_POINT(Stage::kProjection)) {
        return Status::Injected(FailureKind::kDegenerateProjection,
                                Stage::kProjection);
      }
      auto g = seq::berlekamp_massey(f, seq);
      if (g.size() < 2) {
        return Status::Fail(FailureKind::kDegenerateProjection,
                            Stage::kCharpoly, "trivial minimum polynomial");
      }
      if (KP_FAULT_POINT(Stage::kCharpoly)) {
        return Status::Injected(FailureKind::kZeroConstantTerm,
                                Stage::kCharpoly);
      }
      if (f.eq(g[0], f.zero())) {
        return Status::Fail(FailureKind::kZeroConstantTerm, Stage::kCharpoly,
                            "f_u(0) = 0: A singular or unlucky projection");
      }
      auto x = solve_from_annihilator(f, box, g, b);
      if (KP_FAULT_POINT(Stage::kVerify)) {
        return Status::Injected(FailureKind::kVerifyMismatch, Stage::kVerify);
      }
      if (box.apply(x) != b) {
        return Status::Fail(FailureKind::kVerifyMismatch, Stage::kVerify,
                            "A x != b");
      }
      res.x = std::move(x);
      return Status::Ok();
    }();

    diag.kind = st.kind();
    diag.stage = st.stage();
    diag.injected = st.injected();
    diag.ops = ops.counts();
    res.diags.push_back(diag);
    if (st.ok()) {
      res.ok = true;
      res.status = st;
      return res;
    }
    last = st;
  }
  res.status = last;
  return res;
}

/// Legacy optional-returning form of wiedemann_solve_status.
template <kp::field::Field F, matrix::LinOp B>
std::optional<std::vector<typename F::Element>> wiedemann_solve(
    const F& f, const B& box, const std::vector<typename F::Element>& b,
    kp::util::Prng& prng, std::uint64_t s, int max_attempts = 3) {
  auto res = wiedemann_solve_status(f, box, b, prng, s, max_attempts);
  if (!res.ok) return std::nullopt;
  return std::move(res.x);
}

/// Result of the randomized determinant.
template <kp::field::Field F>
struct DetResult {
  bool ok = false;                 ///< false: unlucky randomness (or singular)
  typename F::Element value{};     ///< det(A) when ok
  int attempts = 0;
  util::Status status;
  std::vector<util::Diag> diags;   ///< one record per attempt
};

/// Determinant of a non-singular A by Wiedemann's method with the
/// Saunders/Theorem-2 preconditioner: A-tilde = A H D, the projected minimum
/// polynomial of A-tilde is its characteristic polynomial w.h.p., and
/// det(A) = (-1)^n f(0)-style recovery divided by det(H) det(D).
/// Failure probability <= 3n^2/|S| per attempt (estimate (2)).  Retries are
/// stage-targeted like the Theorem-4 solver: deg f_u < n re-draws only the
/// projection pair, a zero constant term or singular H/D re-draws only the
/// preconditioner, and a repeat of the same component restarts both.
template <kp::field::Field F>
DetResult<F> wiedemann_det(const F& f, const matrix::Matrix<F>& a,
                           kp::util::Prng& prng, std::uint64_t s,
                           int max_attempts = 3) {
  using util::FailureKind;
  using util::Stage;
  using util::Status;
  DetResult<F> res;
  const std::size_t n = a.rows();
  const Status valid =
      util::Require(a.is_square() && n > 0 && max_attempts >= 1,
                    FailureKind::kInvalidArgument, Stage::kNone,
                    "A must be square and max_attempts >= 1");
  if (!valid.ok()) {
    res.status = valid;
    return res;
  }
  kp::poly::PolyRing<F> ring(f);

  kp::util::Prng pre_stream = prng.fork(0x7072652d48440000ULL);   // "pre-HD"
  kp::util::Prng proj_stream = prng.fork(0x70726f6a2d757600ULL);  // "proj-uv"
  std::optional<Preconditioner<F>> pre;
  std::optional<matrix::Matrix<F>> at;
  std::uint64_t pre_seed = 0, proj_seed = 0;
  bool redraw_pre = true, redraw_proj = true;
  bool pre_alone = false, proj_alone = false;
  Status last = Status::Fail(FailureKind::kDegenerateProjection,
                             Stage::kProjection, "no attempt run");

  for (res.attempts = 1; res.attempts <= max_attempts; ++res.attempts) {
    kp::util::fault::AttemptScope attempt_scope(res.attempts);
    kp::util::OpScope ops;
    util::Diag diag;
    diag.attempt = res.attempts;
    diag.sample_size = s;

    const Status st = [&]() -> Status {
      if (redraw_pre) {
        kp::util::Prng r = pre_stream.fork(static_cast<std::uint64_t>(res.attempts));
        pre_seed = r.seed();
        pre = Preconditioner<F>::draw(f, n, r, s);
        at = pre->apply_dense(f, ring, a);
      }
      diag.precondition_seed = pre_seed;
      diag.redrew_precondition = redraw_pre;
      diag.redrew_projection = redraw_proj;

      matrix::DenseBox<F> box(f, *at);
      // A kept projection replays its recorded seed bit-for-bit (fork()
      // consumes parent state, so re-forking would NOT reproduce it).
      if (redraw_proj) {
        proj_seed =
            proj_stream.fork(static_cast<std::uint64_t>(res.attempts)).seed();
      }
      kp::util::Prng r{proj_seed};
      diag.projection_seed = proj_seed;
      if (KP_FAULT_POINT(Stage::kProjection)) {
        return Status::Injected(FailureKind::kDegenerateProjection,
                                Stage::kProjection);
      }
      const auto g = wiedemann_minpoly(f, box, r, s);
      // Failure: deg < n (projection lost information) or g(0) = 0 (the
      // paper's explicit failure report -- A or the preconditioner).
      if (g.size() != n + 1) {
        return Status::Fail(FailureKind::kDegenerateProjection,
                            Stage::kProjection, "deg f_u < n");
      }
      if (KP_FAULT_POINT(Stage::kCharpoly)) {
        return Status::Injected(FailureKind::kZeroConstantTerm,
                                Stage::kCharpoly);
      }
      if (f.eq(g[0], f.zero())) {
        return Status::Fail(FailureKind::kZeroConstantTerm, Stage::kCharpoly,
                            "f_u(0) = 0: A-tilde singular");
      }
      // g is the characteristic polynomial of A-tilde:
      // det(A-tilde) = (-1)^n g(0).
      const auto det_at = (n % 2 == 0) ? g[0] : f.neg(g[0]);
      const auto det_hd = pre->det(f);
      if (f.eq(det_hd, f.zero())) {
        // Cannot happen organically when g(0) != 0; reachable via the
        // Preconditioner::det fault site.
        return Status::Fail(FailureKind::kSingularPrecondition,
                            Stage::kPrecondition, "det(H D) = 0");
      }
      res.value = f.div(det_at, det_hd);
      return Status::Ok();
    }();

    diag.kind = st.kind();
    diag.stage = st.stage();
    diag.injected = st.injected();
    diag.ops = ops.counts();
    res.diags.push_back(diag);
    if (st.ok()) {
      res.ok = true;
      res.status = st;
      return res;
    }
    last = st;

    bool want_pre, want_proj;
    switch (st.kind()) {
      case FailureKind::kDegenerateProjection:
        want_pre = false;
        want_proj = true;
        break;
      case FailureKind::kSingularPrecondition:
      case FailureKind::kZeroConstantTerm:
        want_pre = true;
        want_proj = false;
        break;
      default:
        want_pre = true;
        want_proj = true;
        break;
    }
    if (!want_pre && proj_alone) want_pre = true;
    if (!want_proj && pre_alone) want_proj = true;
    if (want_pre && want_proj) {
      pre_alone = proj_alone = false;
    } else if (want_proj) {
      proj_alone = true;
    } else {
      pre_alone = true;
    }
    redraw_pre = want_pre;
    redraw_proj = want_proj;
  }
  res.status = last;
  return res;
}

}  // namespace kp::core

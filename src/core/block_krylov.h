// Block Krylov projections for the block-Wiedemann route.
//
// The scalar iterative route drives 2n sequential black-box products
// u A^i v one vector at a time; at sparse sizes below the parallel grain
// every one of them runs serial and the pool sits idle.  Blocking by b
// (Coppersmith's block Wiedemann; Kaltofen's analysis and
// Eberly-Giesbrecht-Giorgi-Storjohann-Villard's block projections,
// PAPERS.md) replaces them with ~2n/b block steps
//
//   S_i = Ut . A^i . V          (S_i is b x b, Ut is b x n, V is n x b)
//
// where each step is one apply_many over the right block -- one parallel
// region across the (vector, row) grid of a CSR product, one batched
// mul_many against a cached Toeplitz/Hankel spectrum -- plus a b x b batch
// of SIMD dot products for the left projection.  Total apply work is
// unchanged; the win is that every step saturates the ExecutionContext pool
// and traverses the operator's data once per block instead of once per
// vector.  All chunk boundaries depend only on (n, b), never on the worker
// count: results are bit-identical for 1..N workers.
//
// The b x b sequence feeds seq::matrix_berlekamp_massey; the solve / det /
// charpoly recovery on top lives in core/wiedemann.h.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "field/concepts.h"
#include "field/kernels.h"
#include "matrix/blackbox.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "poly/interp.h"
#include "poly/poly.h"
#include "pram/parallel_for.h"
#include "seq/matrix_berlekamp_massey.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp::core {

namespace detail {

/// dst[i] += coef * src[i]; fused bulk-counted loop for word-sized prime
/// fields, element-identical generic loop otherwise (see field/kernels.h
/// contract).
template <kp::field::Field F>
void axpy_add(const F& f, typename F::Element* dst,
              const typename F::Element* src, std::size_t len,
              const typename F::Element& coef) {
  if (len == 0) return;
  if constexpr (kp::field::kernels::FastField<F>) {
    kp::util::count_muls(len);
    kp::util::count_adds(len);
    const std::uint64_t p = kp::field::FieldKernels<F>::barrett(f).p;
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint64_t t = kp::field::kernels::mul_uncounted(f, coef, src[i]);
      const std::uint64_t s = dst[i] + t;
      dst[i] = s >= p ? s - p : s;
    }
  } else {
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] = f.add(dst[i], f.mul(coef, src[i]));
    }
  }
}

/// Contiguous inner product of length n (the left-projection kernel): the
/// SIMD dot for word-sized prime fields, the linear chain otherwise.
template <kp::field::Field F>
typename F::Element row_dot(const F& f, const typename F::Element* a,
                            const typename F::Element* b, std::size_t n) {
  if constexpr (kp::field::kernels::FastField<F>) {
    return kp::field::kernels::dot(f, a, b, n);
  } else {
    auto acc = f.zero();
    for (std::size_t i = 0; i < n; ++i) acc = f.add(acc, f.mul(a[i], b[i]));
    return acc;
  }
}

}  // namespace detail

/// Draws a b x n block of left-projection rows with entries from the sample
/// set S (the rows are the b left vectors, stored contiguously so the
/// projection dots are stride-1 on both sides).
template <kp::field::Field F>
matrix::Matrix<F> random_block_rows(const F& f, std::size_t b, std::size_t n,
                                    kp::util::Prng& prng, std::uint64_t s) {
  matrix::Matrix<F> ut(b, n, f.zero());
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < n; ++j) ut.at(i, j) = f.sample(prng, s);
  }
  return ut;
}

/// Draws b random n-vectors with entries from the sample set S.
template <kp::field::Field F>
std::vector<std::vector<typename F::Element>> random_block_columns(
    const F& f, std::size_t b, std::size_t n, kp::util::Prng& prng,
    std::uint64_t s) {
  std::vector<std::vector<typename F::Element>> v(b);
  for (auto& col : v) {
    col.resize(n);
    for (auto& e : col) e = f.sample(prng, s);
  }
  return v;
}

/// The b x b left projection Ut . X of a block X of columns.  The b^2 dots
/// are independent; above the parallel grain they are chunked over the pool
/// with boundaries that depend only on (b, n).
template <kp::field::Field F>
matrix::Matrix<F> block_project(
    const F& f, const matrix::Matrix<F>& ut,
    const std::vector<std::vector<typename F::Element>>& x) {
  const std::size_t b = ut.rows();
  const std::size_t n = ut.cols();
  matrix::Matrix<F> s(b, x.size(), f.zero());
  auto cell = [&](std::size_t idx) {
    const std::size_t r = idx / x.size();
    const std::size_t c = idx % x.size();
    assert(x[c].size() == n);
    s.at(r, c) = detail::row_dot(f, ut.row(r), x[c].data(), n);
  };
  if (kp::field::concurrent_ops_v<F> && b * x.size() > 1 &&
      b * x.size() * n >= matrix::kParallelGrain) {
    kp::pram::parallel_for(0, b * x.size(), cell);
  } else {
    for (std::size_t idx = 0; idx < b * x.size(); ++idx) cell(idx);
  }
  return s;
}

/// Computes the block Krylov sequence {S_i = Ut . A^i . V : 0 <= i < count}
/// iteratively: (count - 1) block applies (each one apply_many through the
/// operator's batch path) and count b x b projection batches.
template <kp::field::Field F, matrix::LinOp B>
  requires std::same_as<typename B::Element, typename F::Element>
std::vector<matrix::Matrix<F>> block_krylov_sequence(
    const F& f, const B& box,
    const matrix::Matrix<F>& ut,
    const std::vector<std::vector<typename F::Element>>& v,
    std::size_t count) {
  std::vector<matrix::Matrix<F>> seq;
  seq.reserve(count);
  auto x = v;
  for (std::size_t i = 0; i < count; ++i) {
    if (i) x = matrix::apply_columns(box, x);
    seq.push_back(block_project(f, ut, x));
  }
  return seq;
}

/// The same sequence built from the left: W_0 = rows of Ut,
/// W_i = A^T W_{i-1}, S_i(r, c) = W_i[r] . v_c.  Exercises the
/// transpose-side batch path (cached transpose spectra, one CSR pass per
/// block); values are identical to block_krylov_sequence by associativity.
template <kp::field::Field F, matrix::TransposableLinOp B>
  requires std::same_as<typename B::Element, typename F::Element>
std::vector<matrix::Matrix<F>> block_krylov_sequence_transposed(
    const F& f, const B& box,
    const matrix::Matrix<F>& ut,
    const std::vector<std::vector<typename F::Element>>& v,
    std::size_t count) {
  const std::size_t b = ut.rows();
  const std::size_t n = ut.cols();
  std::vector<std::vector<typename F::Element>> w(b);
  for (std::size_t r = 0; r < b; ++r) {
    w[r].assign(ut.row(r), ut.row(r) + n);
  }
  std::vector<matrix::Matrix<F>> seq;
  seq.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i) w = matrix::apply_transpose_columns(box, w);
    matrix::Matrix<F> s(b, v.size(), f.zero());
    for (std::size_t r = 0; r < b; ++r) {
      for (std::size_t c = 0; c < v.size(); ++c) {
        s.at(r, c) = detail::row_dot(f, w[r].data(), v[c].data(), n);
      }
    }
    seq.push_back(std::move(s));
  }
  return seq;
}

/// V . c: the n-vector sum_k c[k] v_k of a block against a K^b coefficient.
template <kp::field::Field F>
std::vector<typename F::Element> block_combine(
    const F& f, const std::vector<std::vector<typename F::Element>>& v,
    const std::vector<typename F::Element>& coeff) {
  assert(!v.empty() && coeff.size() == v.size());
  std::vector<typename F::Element> out(v[0].size(), f.zero());
  for (std::size_t k = 0; k < v.size(); ++k) {
    if (f.eq(coeff[k], f.zero())) continue;
    detail::axpy_add(f, out.data(), v[k].data(), out.size(), coeff[k]);
  }
  return out;
}

namespace detail {

/// det G(x) of the first b generator columns, computed by evaluation at
/// deg+1 distinct points (Horner per column, det_gauss per point, points
/// chunked over the pool) and interpolation.  For the preconditioned
/// operator of Theorem 2 the minimal generator's determinant is a scalar
/// multiple of the characteristic polynomial (the b x b block analogue of
/// Lemma 2's f_u = f^A), which is exactly what the solve / det recovery
/// needs.  Fails with kSampleSetTooSmall when the field has fewer than
/// deg+1 distinct points of the canonical from_int enumeration.
template <kp::field::Field F>
kp::util::StatusOr<std::vector<typename F::Element>> generator_determinant(
    const F& f, const seq::BlockGenerator<F>& gen) {
  using E = typename F::Element;
  using kp::util::FailureKind;
  using kp::util::Stage;
  using kp::util::Status;

  const std::size_t b = gen.block;
  if (gen.columns.size() < b) {
    return Status::Fail(FailureKind::kDegenerateProjection,
                        Stage::kBlockGenerator,
                        "fewer than b verified generator columns");
  }
  std::size_t deg = 0;
  for (std::size_t c = 0; c < b; ++c) deg += gen.degrees[c];
  const std::uint64_t p = f.characteristic();
  if (p != 0 && p < deg + 1) {
    return Status::Fail(FailureKind::kSampleSetTooSmall,
                        Stage::kBlockGenerator,
                        "field too small for det-by-interpolation");
  }

  std::vector<E> points(deg + 1);
  for (std::size_t i = 0; i <= deg; ++i) {
    points[i] = f.from_int(static_cast<std::int64_t>(i));
  }
  std::vector<E> values(deg + 1, f.zero());
  auto eval_point = [&](std::size_t i) {
    matrix::Matrix<F> g(b, b, f.zero());
    for (std::size_t c = 0; c < b; ++c) {
      const auto& col = gen.columns[c];
      std::vector<E> acc(b, f.zero());
      for (std::size_t j = col.size(); j-- > 0;) {
        for (std::size_t r = 0; r < b; ++r) {
          acc[r] = f.add(f.mul(acc[r], points[i]), col[j][r]);
        }
      }
      for (std::size_t r = 0; r < b; ++r) g.at(r, c) = acc[r];
    }
    values[i] = matrix::det_gauss(f, g);
  };
  if (kp::field::concurrent_ops_v<F> && deg > 0 &&
      (deg + 1) * b * b * b >= matrix::kParallelGrain) {
    kp::pram::parallel_for(0, deg + 1, eval_point);
  } else {
    for (std::size_t i = 0; i <= deg; ++i) eval_point(i);
  }

  kp::poly::PolyRing<F> ring(f);
  auto det = kp::poly::interpolate(ring, points, values);
  ring.strip(det);
  if (det.empty()) {
    return Status::Fail(FailureKind::kDegenerateProjection,
                        Stage::kBlockGenerator, "det of generator is zero");
  }
  return det;
}

}  // namespace detail

}  // namespace kp::core

// Block Krylov projections for the block-Wiedemann route.
//
// The scalar iterative route drives 2n sequential black-box products
// u A^i v one vector at a time; at sparse sizes below the parallel grain
// every one of them runs serial and the pool sits idle.  Blocking by b
// (Coppersmith's block Wiedemann; Kaltofen's analysis and
// Eberly-Giesbrecht-Giorgi-Storjohann-Villard's block projections,
// PAPERS.md) replaces them with ~2n/b block steps
//
//   S_i = Ut . A^i . V          (S_i is b x b, Ut is b x n, V is n x b)
//
// where each step is one apply_many over the right block -- one parallel
// region across the (vector, row) grid of a CSR product, one batched
// mul_many against a cached Toeplitz/Hankel spectrum -- plus a b x b batch
// of SIMD dot products for the left projection.  Total apply work is
// unchanged; the win is that every step saturates the ExecutionContext pool
// and traverses the operator's data once per block instead of once per
// vector.  All chunk boundaries depend only on (n, b), never on the worker
// count: results are bit-identical for 1..N workers.
//
// The b x b sequence feeds seq::matrix_berlekamp_massey; the solve / det /
// charpoly recovery on top lives in core/wiedemann.h.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "field/concepts.h"
#include "field/kernels.h"
#include "matrix/blackbox.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "matrix/matpoly.h"
#include "poly/poly.h"
#include "poly/poly_ring.h"
#include "pram/parallel_for.h"
#include "seq/matrix_berlekamp_massey.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp::core {

namespace detail {

/// dst[i] += coef * src[i]; fused bulk-counted loop for word-sized prime
/// fields, element-identical generic loop otherwise (see field/kernels.h
/// contract).
template <kp::field::Field F>
void axpy_add(const F& f, typename F::Element* dst,
              const typename F::Element* src, std::size_t len,
              const typename F::Element& coef) {
  if (len == 0) return;
  if constexpr (kp::field::kernels::FastField<F>) {
    kp::util::count_muls(len);
    kp::util::count_adds(len);
    const std::uint64_t p = kp::field::FieldKernels<F>::barrett(f).p;
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint64_t t = kp::field::kernels::mul_uncounted(f, coef, src[i]);
      const std::uint64_t s = dst[i] + t;
      dst[i] = s >= p ? s - p : s;
    }
  } else {
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] = f.add(dst[i], f.mul(coef, src[i]));
    }
  }
}

/// Contiguous inner product of length n (the left-projection kernel): the
/// SIMD dot for word-sized prime fields, the linear chain otherwise.
template <kp::field::Field F>
typename F::Element row_dot(const F& f, const typename F::Element* a,
                            const typename F::Element* b, std::size_t n) {
  if constexpr (kp::field::kernels::FastField<F>) {
    return kp::field::kernels::dot(f, a, b, n);
  } else {
    auto acc = f.zero();
    for (std::size_t i = 0; i < n; ++i) acc = f.add(acc, f.mul(a[i], b[i]));
    return acc;
  }
}

}  // namespace detail

/// Draws a b x n block of left-projection rows with entries from the sample
/// set S (the rows are the b left vectors, stored contiguously so the
/// projection dots are stride-1 on both sides).
template <kp::field::Field F>
matrix::Matrix<F> random_block_rows(const F& f, std::size_t b, std::size_t n,
                                    kp::util::Prng& prng, std::uint64_t s) {
  matrix::Matrix<F> ut(b, n, f.zero());
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t j = 0; j < n; ++j) ut.at(i, j) = f.sample(prng, s);
  }
  return ut;
}

/// Draws b random n-vectors with entries from the sample set S.
template <kp::field::Field F>
std::vector<std::vector<typename F::Element>> random_block_columns(
    const F& f, std::size_t b, std::size_t n, kp::util::Prng& prng,
    std::uint64_t s) {
  std::vector<std::vector<typename F::Element>> v(b);
  for (auto& col : v) {
    col.resize(n);
    for (auto& e : col) e = f.sample(prng, s);
  }
  return v;
}

/// The b x b left projection Ut . X of a block X of columns.  The b^2 dots
/// are independent; above the parallel grain they are chunked over the pool
/// with boundaries that depend only on (b, n).
template <kp::field::Field F>
matrix::Matrix<F> block_project(
    const F& f, const matrix::Matrix<F>& ut,
    const std::vector<std::vector<typename F::Element>>& x) {
  const std::size_t b = ut.rows();
  const std::size_t n = ut.cols();
  matrix::Matrix<F> s(b, x.size(), f.zero());
  auto cell = [&](std::size_t idx) {
    const std::size_t r = idx / x.size();
    const std::size_t c = idx % x.size();
    assert(x[c].size() == n);
    s.at(r, c) = detail::row_dot(f, ut.row(r), x[c].data(), n);
  };
  if (kp::field::concurrent_ops_v<F> && b * x.size() > 1 &&
      b * x.size() * n >= matrix::kParallelGrain) {
    kp::pram::parallel_for(0, b * x.size(), cell);
  } else {
    for (std::size_t idx = 0; idx < b * x.size(); ++idx) cell(idx);
  }
  return s;
}

/// Computes the block Krylov sequence {S_i = Ut . A^i . V : 0 <= i < count}
/// iteratively: (count - 1) block applies (each one apply_many through the
/// operator's batch path) and count b x b projection batches.
template <kp::field::Field F, matrix::LinOp B>
  requires std::same_as<typename B::Element, typename F::Element>
std::vector<matrix::Matrix<F>> block_krylov_sequence(
    const F& f, const B& box,
    const matrix::Matrix<F>& ut,
    const std::vector<std::vector<typename F::Element>>& v,
    std::size_t count) {
  std::vector<matrix::Matrix<F>> seq;
  seq.reserve(count);
  auto x = v;
  for (std::size_t i = 0; i < count; ++i) {
    if (i) x = matrix::apply_columns(box, x);
    seq.push_back(block_project(f, ut, x));
  }
  return seq;
}

/// The same sequence built from the left: W_0 = rows of Ut,
/// W_i = A^T W_{i-1}, S_i(r, c) = W_i[r] . v_c.  Exercises the
/// transpose-side batch path (cached transpose spectra, one CSR pass per
/// block); values are identical to block_krylov_sequence by associativity.
template <kp::field::Field F, matrix::TransposableLinOp B>
  requires std::same_as<typename B::Element, typename F::Element>
std::vector<matrix::Matrix<F>> block_krylov_sequence_transposed(
    const F& f, const B& box,
    const matrix::Matrix<F>& ut,
    const std::vector<std::vector<typename F::Element>>& v,
    std::size_t count) {
  const std::size_t b = ut.rows();
  const std::size_t n = ut.cols();
  std::vector<std::vector<typename F::Element>> w(b);
  for (std::size_t r = 0; r < b; ++r) {
    w[r].assign(ut.row(r), ut.row(r) + n);
  }
  std::vector<matrix::Matrix<F>> seq;
  seq.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i) w = matrix::apply_transpose_columns(box, w);
    matrix::Matrix<F> s(b, v.size(), f.zero());
    for (std::size_t r = 0; r < b; ++r) {
      for (std::size_t c = 0; c < v.size(); ++c) {
        s.at(r, c) = detail::row_dot(f, w[r].data(), v[c].data(), n);
      }
    }
    seq.push_back(std::move(s));
  }
  return seq;
}

/// V . c: the n-vector sum_k c[k] v_k of a block against a K^b coefficient.
template <kp::field::Field F>
std::vector<typename F::Element> block_combine(
    const F& f, const std::vector<std::vector<typename F::Element>>& v,
    const std::vector<typename F::Element>& coeff) {
  assert(!v.empty() && coeff.size() == v.size());
  std::vector<typename F::Element> out(v[0].size(), f.zero());
  for (std::size_t k = 0; k < v.size(); ++k) {
    if (f.eq(coeff[k], f.zero())) continue;
    detail::axpy_add(f, out.data(), v[k].data(), out.size(), coeff[k]);
  }
  return out;
}

namespace detail {

/// det G(x) of the first b generator columns, computed by the Berkowitz
/// division-free determinant over the commutative ring K[x]: the iterated
/// Toeplitz chain produces the characteristic polynomial of G (in a formal
/// variable lambda, coefficients in K[x]) and det G = (-1)^b * its constant
/// coefficient.  Every K[x] matrix product in the chain -- the A_sub^i
/// applies behind the principal-minor sums and the (k+2) x (k+1) Toeplitz
/// steps -- runs through matrix::matpoly_mul, i.e. batched NTT transforms
/// with pointwise transform-domain accumulation (short operands fall back
/// to mat_mul inside matpoly_mul itself).  For the preconditioned operator
/// of Theorem 2 the minimal generator's determinant is a scalar multiple of
/// the characteristic polynomial (the b x b block analogue of Lemma 2's
/// f_u = f^A), which is exactly what the solve / det recovery needs.
/// Being division-free, this also lifts the old det-by-interpolation
/// restriction to fields with at least deg+1 enumeration points.
template <kp::field::Field F>
kp::util::StatusOr<std::vector<typename F::Element>> generator_determinant(
    const F& f, const seq::BlockGenerator<F>& gen) {
  using kp::util::FailureKind;
  using kp::util::Stage;
  using kp::util::Status;
  using PR = kp::poly::PolyRing<F>;
  using P = typename PR::Element;

  const std::size_t b = gen.block;
  if (gen.columns.size() < b) {
    return Status::Fail(FailureKind::kDegenerateProjection,
                        Stage::kBlockGenerator,
                        "fewer than b verified generator columns");
  }

  const PR ring(f);
  // M[r][c](x) = sum_j columns[c][j][r] x^j.
  matrix::Matrix<PR> m(b, b, ring.zero());
  for (std::size_t c = 0; c < b; ++c) {
    const auto& col = gen.columns[c];
    for (std::size_t r = 0; r < b; ++r) {
      P e(col.size(), f.zero());
      for (std::size_t j = 0; j < col.size(); ++j) e[j] = col[j][r];
      ring.strip(e);
      m.at(r, c) = std::move(e);
    }
  }

  // Berkowitz: v starts as [1]; step k multiplies by the (k+2) x (k+1)
  // Toeplitz matrix built from a = M[k][k] and the principal-minor sums
  // s_i = M[k, 0..k) . M[0..k, 0..k)^i . M[0..k, k).  After b steps v holds
  // the charpoly coefficients, leading first.
  std::vector<P> v{ring.one()};
  for (std::size_t k = 0; k < b; ++k) {
    std::vector<P> s(k, ring.zero());
    if (k > 0) {
      matrix::Matrix<PR> sub(k, k, ring.zero());
      matrix::Matrix<PR> w(k, 1, ring.zero());
      matrix::Matrix<PR> row(1, k, ring.zero());
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) sub.at(i, j) = m.at(i, j);
        w.at(i, 0) = m.at(i, k);
        row.at(0, i) = m.at(k, i);
      }
      for (std::size_t i = 0; i < k; ++i) {
        if (i > 0) w = matrix::matpoly_mul(ring, sub, w);
        s[i] = matrix::matpoly_mul(ring, row, w).at(0, 0);
      }
    }
    matrix::Matrix<PR> t(k + 2, k + 1, ring.zero());
    const P neg_a = ring.neg(m.at(k, k));
    for (std::size_t i = 0; i <= k; ++i) {
      t.at(i, i) = ring.one();
      t.at(i + 1, i) = neg_a;
    }
    for (std::size_t i = 0; i < k + 2; ++i) {
      for (std::size_t j = 0; j + 2 <= i; ++j) t.at(i, j) = ring.neg(s[i - j - 2]);
    }
    matrix::Matrix<PR> vm(k + 1, 1, ring.zero());
    for (std::size_t i = 0; i <= k; ++i) vm.at(i, 0) = std::move(v[i]);
    auto next = matrix::matpoly_mul(ring, t, vm);
    v.resize(k + 2);
    for (std::size_t i = 0; i < k + 2; ++i) v[i] = std::move(next.at(i, 0));
  }

  // charpoly(lambda) = det(lambda I - M); det M = (-1)^b charpoly(0).
  P det = std::move(v[b]);
  if (b & 1) det = ring.neg(det);
  ring.strip(det);
  if (det.empty()) {
    return Status::Fail(FailureKind::kDegenerateProjection,
                        Stage::kBlockGenerator, "det of generator is zero");
  }
  return det;
}

}  // namespace detail

}  // namespace kp::core

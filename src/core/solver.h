// The Theorem-4 solver and determinant: the paper's main result.
//
// Pipeline (section 3, "From Theorem 3 we can obtain ... size-efficient
// randomized circuits for solving general non-singular systems"):
//
//   1. Draw the random Hankel H, diagonal D, row vector u, column vector v
//      with entries from S; form A-tilde = A H D.               [Theorem 2]
//   2. a_i = u A-tilde^i v for i < 2n, either via Krylov doubling (9)
//      [O(n^w log n), the processor-efficient dense route] or via 2n
//      black-box products (8) [the cheap route when one product costs
//      o(n^2): sparse O(nnz), structured O(M(n))].
//   3. T = Toeplitz(a_0..a_{2n-2}) (Lemma 1); find charpoly(T)  [Theorem 3]
//      and solve T c = (a_n..a_{2n-1}) by Cayley-Hamilton on T.
//   4. c is w.h.p. the characteristic polynomial of A-tilde     [est. (2)];
//      Cayley-Hamilton on A-tilde (through the Krylov block of b) gives
//      x-tilde = A-tilde^{-1} b, and x = H D x-tilde.
//   5. det(A) = (-1)^n g(0) / (det(H) det(D)), det(H) via the row-mirror
//      Toeplitz and Theorem 3.
//
// Every stage touches A only through matrix-vector products, so kp_solve /
// kp_det accept any matrix::LinOp; dense matrix::Matrix<F> call sites keep
// working through an adapter overload that wraps a DenseBox.  The
// preconditioned operator is composed lazily (PreconditionedBox); only the
// dense doubling route materializes A-tilde.
//
// Failure (a would-be division by zero in the circuit model) is detected
// and reported; on non-singular inputs its probability is <= 3n^2/|S| per
// attempt.  The returned solution is verified (Las Vegas) when
// options.verify is set.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/annihilator.h"
#include "core/krylov.h"
#include "core/preconditioners.h"
#include "field/concepts.h"
#include "matrix/blackbox.h"
#include "matrix/dense.h"
#include "matrix/matmul.h"
#include "seq/newton_toeplitz.h"
#include "util/prng.h"

namespace kp::core {

/// Tuning knobs for the Theorem-4 pipeline.
struct SolverOptions {
  std::uint64_t sample_size = 1ULL << 30;  ///< card(S); bound is 3n^2/|S|
  int max_attempts = 3;                    ///< Las Vegas retries
  bool verify = true;                      ///< check A x = b before returning
  matrix::MatMulStrategy matmul = matrix::MatMulStrategy::kClassical;
  seq::NewtonIdentityMethod newton = seq::NewtonIdentityMethod::kTriangularSolve;
  /// How the Krylov data of steps 2 and 4 is produced.  kAuto keys off the
  /// operator's BoxStructure: doubling (9) for dense operators, iterative
  /// (8) for sparse/structured ones where n black-box products beat an
  /// O(n^omega log n) dense doubling.
  KrylovRoute route = KrylovRoute::kAuto;
  /// Replace the two O(n)-deep sequential finishes (the Toeplitz
  /// Cayley-Hamilton iteration and the triangular Newton-identity solve)
  /// with their doubling / power-series counterparts, so that the realized
  /// CIRCUIT has poly-logarithmic depth as Theorem 4 states.  Costs a
  /// little more work; the default optimizes sequential work instead.
  bool depth_optimal = false;
};

/// Outcome of one pipeline run.
template <kp::field::Field F>
struct SolveResult {
  bool ok = false;                          ///< false: singular or unlucky
  std::vector<typename F::Element> x;       ///< solution of A x = b
  typename F::Element det{};                ///< det(A) (always computed)
  std::vector<typename F::Element> charpoly_at;  ///< charpoly of A-tilde
  int attempts = 0;
  KrylovRoute route_used = KrylovRoute::kAuto;   ///< resolved route
};

namespace detail {

/// Steps 3-4a of one attempt: from the projected sequence a_0..a_{2n-1} of
/// the preconditioned operator, recover the generator (monic, degree n,
/// g(0) != 0) through Lemma 1 and the Theorem-3 Toeplitz machinery; empty on
/// failure (unlucky projection or singular input).
template <kp::field::Field F>
std::vector<typename F::Element> generator_from_sequence(
    const F& f, const std::vector<typename F::Element>& seq, std::size_t n,
    const SolverOptions& opt, const kp::poly::PolyRing<F>& ring) {
  // Lemma 1: T = T_n of the sequence; solve T y = (a_n .. a_{2n-1}) through
  // the Theorem-3 characteristic polynomial of T.
  auto t = matrix::Toeplitz<F>::from_sequence(n, seq);
  std::vector<typename F::Element> rhs(seq.begin() + static_cast<std::ptrdiff_t>(n),
                                       seq.end());
  std::vector<typename F::Element> y;
  if (opt.depth_optimal) {
    // Same Cayley-Hamilton solve, but through a doubling Krylov block on
    // the dense T, as the paper does ("Again from (9) we deduce ..."):
    // depth O(log^2 n) instead of the O(n)-deep iterated Toeplitz applies.
    const auto p = seq::toeplitz_charpoly(f, t, opt.newton);
    if (f.is_zero(p[0])) return {};
    const auto q = solution_combination(f, p);
    const auto block = krylov_block(f, t.to_dense(f), rhs, n, opt.matmul);
    y = krylov_combine(f, block, q);
  } else {
    y = seq::toeplitz_solve_charpoly(f, t, rhs, ring, opt.newton);
  }
  if (y.empty()) return {};  // T singular: deg(f_u) < n, unlucky projection

  // y = (c_{n-1}, ..., c_0); generator g = x^n - c_{n-1} x^{n-1} - ... - c_0.
  std::vector<typename F::Element> g(n + 1, f.zero());
  g[n] = f.one();
  for (std::size_t i = 0; i < n; ++i) g[n - 1 - i] = f.neg(y[i]);
  if (f.eq(g[0], f.zero())) return {};  // f(0) = 0: report failure
  return g;
}

/// Dense A-tilde for the doubling route: the O(n^2 polylog) Hankel-product
/// formation when the box exposes its dense matrix, otherwise n black-box
/// products (identical values either way -- exact arithmetic).
template <kp::field::Field F, matrix::LinOp B>
matrix::Matrix<F> dense_preconditioned(const F& f,
                                       const kp::poly::PolyRing<F>& ring,
                                       const B& a, const Preconditioner<F>& pre) {
  if constexpr (requires {
                  { a.matrix() } -> std::convertible_to<const matrix::Matrix<F>&>;
                }) {
    return pre.apply_dense(f, ring, a.matrix());
  } else {
    return matrix::materialize_dense(f, pre.box(f, ring, a));
  }
}

}  // namespace detail

/// Solves A x = b (and computes det A) with the Theorem-4 pipeline, for any
/// black-box operator A.
template <kp::field::Field F, matrix::LinOp B>
  requires std::same_as<typename B::Element, typename F::Element>
SolveResult<F> kp_solve(const F& f, const B& a,
                        const std::vector<typename F::Element>& b,
                        kp::util::Prng& prng, SolverOptions opt = {}) {
  const std::size_t n = a.dim();
  SolveResult<F> res;
  kp::poly::PolyRing<F> ring(f);
  const auto route = resolve_route(opt.route, matrix::box_structure(a));
  res.route_used = route;

  for (res.attempts = 1; res.attempts <= opt.max_attempts; ++res.attempts) {
    const auto pre = Preconditioner<F>::draw(f, n, prng, opt.sample_size);
    std::vector<typename F::Element> u(n), v(n);
    for (auto& e : u) e = f.sample(prng, opt.sample_size);
    for (auto& e : v) e = f.sample(prng, opt.sample_size);

    std::vector<typename F::Element> xt;  // A-tilde^{-1} b
    std::vector<typename F::Element> g;   // charpoly of A-tilde
    if (route == KrylovRoute::kDoubling) {
      const auto at = detail::dense_preconditioned(f, ring, a, pre);
      // a_i = u A-tilde^i v by doubling (9).
      const auto seq = krylov_sequence_doubling(f, at, u, v, 2 * n, opt.matmul);
      g = detail::generator_from_sequence(f, seq, n, opt, ring);
      if (g.empty()) continue;
      // Cayley-Hamilton solve of A-tilde xt = b through the Krylov block.
      const auto q = solution_combination(f, g);
      const auto block = krylov_block(f, at, b, n, opt.matmul);
      xt = krylov_combine(f, block, q);
    } else {
      // Route (8): 2n products with the lazily composed A*H*D.
      const auto at = pre.box(f, ring, a);
      const auto seq = matrix::krylov_sequence_iterative(f, at, u, v, 2 * n);
      g = detail::generator_from_sequence(f, seq, n, opt, ring);
      if (g.empty()) continue;
      xt = solve_from_annihilator(f, at, g, b);
    }

    auto x = pre.unprecondition(f, ring, xt);
    if (opt.verify && a.apply(x) != b) continue;

    // det(A-tilde) = (-1)^n g(0); divide out the preconditioner.
    auto det_at = (n % 2 == 0) ? g[0] : f.neg(g[0]);
    res.det = f.div(det_at, pre.det(f, opt.newton));
    res.x = std::move(x);
    res.charpoly_at = std::move(g);
    res.ok = true;
    return res;
  }
  return res;
}

/// Determinant only (same pipeline, no right-hand side).
template <kp::field::Field F, matrix::LinOp B>
  requires std::same_as<typename B::Element, typename F::Element>
SolveResult<F> kp_det(const F& f, const B& a, kp::util::Prng& prng,
                      SolverOptions opt = {}) {
  const std::size_t n = a.dim();
  SolveResult<F> res;
  kp::poly::PolyRing<F> ring(f);
  const auto route = resolve_route(opt.route, matrix::box_structure(a));
  res.route_used = route;
  for (res.attempts = 1; res.attempts <= opt.max_attempts; ++res.attempts) {
    const auto pre = Preconditioner<F>::draw(f, n, prng, opt.sample_size);
    std::vector<typename F::Element> u(n), v(n);
    for (auto& e : u) e = f.sample(prng, opt.sample_size);
    for (auto& e : v) e = f.sample(prng, opt.sample_size);

    std::vector<typename F::Element> seq;
    if (route == KrylovRoute::kDoubling) {
      const auto at = detail::dense_preconditioned(f, ring, a, pre);
      seq = krylov_sequence_doubling(f, at, u, v, 2 * n, opt.matmul);
    } else {
      const auto at = pre.box(f, ring, a);
      seq = matrix::krylov_sequence_iterative(f, at, u, v, 2 * n);
    }
    auto g = detail::generator_from_sequence(f, seq, n, opt, ring);
    if (g.empty()) continue;
    auto det_at = (n % 2 == 0) ? g[0] : f.neg(g[0]);
    res.det = f.div(det_at, pre.det(f, opt.newton));
    res.charpoly_at = std::move(g);
    res.ok = true;
    return res;
  }
  return res;
}

/// Dense-matrix adapter: existing call sites keep their signature; the
/// matrix is wrapped in a DenseBox (kAuto then resolves to the doubling
/// route, reproducing the historical dense pipeline exactly).
template <kp::field::Field F>
SolveResult<F> kp_solve(const F& f, const matrix::Matrix<F>& a,
                        const std::vector<typename F::Element>& b,
                        kp::util::Prng& prng, SolverOptions opt = {}) {
  const matrix::DenseViewBox<F> box(f, a);
  return kp_solve(f, box, b, prng, opt);
}

/// Dense-matrix adapter for the determinant.
template <kp::field::Field F>
SolveResult<F> kp_det(const F& f, const matrix::Matrix<F>& a,
                      kp::util::Prng& prng, SolverOptions opt = {}) {
  const matrix::DenseViewBox<F> box(f, a);
  return kp_det(f, box, prng, opt);
}

}  // namespace kp::core
